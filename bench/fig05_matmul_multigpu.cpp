// Figure 5: Matrix multiply on the multi-GPU node.
// Sweep: GPUs {1,2,4} x cache {nocache, wt, wb} x scheduler {bf, dep,
// affinity}.  Paper shape: nocache < wt < wb, and at 4 GPUs the
// locality-aware/dependency schedulers beat breadth-first by up to ~2x under
// write-back.
#include "apps/matmul/matmul.hpp"
#include "bench_common.hpp"

namespace {

apps::matmul::Params params() {
  apps::matmul::Params p;
  // Paper operating point: 12288^2 floats in 1024^2 tiles -> 12x12 tiles.
  p.nb = static_cast<int>(bench::env_knob("MATMUL_NB", 12));
  p.bs_phys = static_cast<std::size_t>(bench::env_knob("MATMUL_BS", 48));
  p.bs_logical = 12288.0 / p.nb;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 5 — Matmul, multi-GPU node", "GFLOPS");
  auto p = params();

  for (const char* cache : {"nocache", "wt", "wb"}) {
    for (const char* sched : {"bf", "dep", "affinity"}) {
      for (int gpus : {1, 2, 4}) {
        std::string series = std::string(cache) + "/" + sched;
        std::string name = "fig05/matmul/" + series + "/gpus:" + std::to_string(gpus);
        benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
          double gflops = 0;
          for (auto _ : st) {
            auto cfg = apps::multi_gpu_node(gpus, p.byte_scale());
            cfg.scheduler = sched;
            cfg.cache_policy = cache;
            // Runtime defaults, like the paper's Fig. 5: overlap/prefetch off
            // (their impact is measured separately in abl01/abl02).
            ompss::Env env(cfg);
            auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSeq);
            st.SetIterationTime(r.seconds);
            gflops = r.gflops;
          }
          st.counters["GFLOPS"] = gflops;
          table.add(series, std::to_string(gpus) + "gpu", gflops);
        })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
      }
    }
  }
  return bench::run_and_print(argc, argv, table);
}
