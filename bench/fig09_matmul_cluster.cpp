// Figure 9: Matrix multiply on the GPU cluster.
// Sweep: nodes {1,2,4,8} x {MtoS, StoS} x init {seq, smp, gpu} x presend
// {0,1,2}.  Paper shape: slave-to-slave transfers are a must for
// scalability; parallel initialization (smp best, gpu next) beats sequential
// master-side initialization; presend helps as node counts grow, provided
// StoS keeps the master NIC free.
#include "apps/matmul/matmul.hpp"
#include "bench_common.hpp"

namespace {

apps::matmul::Params params() {
  apps::matmul::Params p;
  p.nb = static_cast<int>(bench::env_knob("MATMUL_NB", 12));
  p.bs_phys = static_cast<std::size_t>(bench::env_knob("MATMUL_BS", 48));
  p.bs_logical = 12288.0 / p.nb;
  return p;
}

const char* init_name(apps::matmul::InitMode m) {
  switch (m) {
    case apps::matmul::InitMode::kSeq: return "seq";
    case apps::matmul::InitMode::kSmp: return "smp";
    case apps::matmul::InitMode::kGpu: return "gpu";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 9 — Matmul, GPU cluster", "GFLOPS");
  auto p = params();
  using apps::matmul::InitMode;

  for (bool stos : {false, true}) {
    for (InitMode init : {InitMode::kSeq, InitMode::kSmp, InitMode::kGpu}) {
      for (int presend : {0, 1, 2}) {
        for (int nodes : {1, 2, 4, 8}) {
          std::string series = std::string(stos ? "StoS" : "MtoS") + "/" + init_name(init) +
                               "/ps" + std::to_string(presend);
          std::string name = "fig09/matmul/" + series + "/nodes:" + std::to_string(nodes);
          benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
            double gflops = 0;
            for (auto _ : st) {
              auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
              cfg.slave_to_slave = stos;
              cfg.presend = presend;
              // Best single-node parameters (paper §IV-B2): write-back +
              // overlap/prefetch on the GPUs.
              cfg.node.cache_policy = "wb";
              cfg.node.overlap = true;
              cfg.node.prefetch = true;
              ompss::Env env(cfg);
              auto r = apps::matmul::run_ompss(env, p, init);
              st.SetIterationTime(r.seconds);
              gflops = r.gflops;
            }
            st.counters["GFLOPS"] = gflops;
            table.add(series, std::to_string(nodes) + "n", gflops);
          })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
  return bench::run_and_print(argc, argv, table);
}
