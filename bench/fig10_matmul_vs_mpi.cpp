// Figure 10: Matrix multiply — OmpSs (best setup) vs MPI+CUDA (SUMMA).
// Paper shape: MPI wins at 1–2 nodes (no runtime overhead), OmpSs overtakes
// at 4–8 nodes thanks to asynchronous transfers and presend.
#include "apps/matmul/matmul.hpp"
#include "bench_common.hpp"

namespace {

apps::matmul::Params params() {
  apps::matmul::Params p;
  p.nb = static_cast<int>(bench::env_knob("MATMUL_NB", 12));
  p.bs_phys = static_cast<std::size_t>(bench::env_knob("MATMUL_BS", 48));
  p.bs_logical = 12288.0 / p.nb;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 10 — Matmul: OmpSs vs MPI+CUDA", "GFLOPS");
  auto p = params();

  for (int nodes : {1, 2, 4, 8}) {
    std::string name = "fig10/matmul/ompss/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
      double gflops = 0;
      for (auto _ : st) {
        // Best setup from Fig. 9: StoS + smp init + presend 2.
        auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
        cfg.slave_to_slave = true;
        cfg.presend = 2;
        cfg.node.cache_policy = "wb";
        cfg.node.overlap = true;
        cfg.node.prefetch = true;
        ompss::Env env(cfg);
        auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSmp);
        st.SetIterationTime(r.seconds);
        gflops = r.gflops;
      }
      st.counters["GFLOPS"] = gflops;
      table.add("OmpSs", std::to_string(nodes) + "n", gflops);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  for (int nodes : {1, 2, 4, 8}) {
    std::string name = "fig10/matmul/mpicuda/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
      double gflops = 0;
      for (auto _ : st) {
        vt::Clock clock;
        auto r = apps::matmul::run_mpicuda(p, clock, nodes, apps::qdr_infiniband(p.byte_scale()),
                                           apps::gtx480(p.byte_scale()));
        st.SetIterationTime(r.seconds);
        gflops = r.gflops;
      }
      st.counters["GFLOPS"] = gflops;
      table.add("MPI+CUDA", std::to_string(nodes) + "n", gflops);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return bench::run_and_print(argc, argv, table);
}
