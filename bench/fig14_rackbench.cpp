// fig14: rack-aware scaling on a two-tier fabric — the rack-conscious
// scheduler (rack credit + in-rack tie rotation + rack-local sources) against
// the same cluster with rack awareness switched off, swept over node count
// and core-layer oversubscription.
//
// Workload: a producer/consumer exchange that is transfer-bound by design.
// P = nodes*rpn producers each write a private 256 KB region; the affinity
// policy has nothing to score for fresh regions, so the chunked round robin
// block-distributes them (rpn consecutive regions per node).  P consumers
// then each read TWO producer regions — region p = (i*7919) % P and its
// next-node neighbour p+rpn — plus a 64 B private sink.  The two inputs are
// equal-sized, so their holders tie on affinity bytes:
//
//  * rack-blind — the tie falls through to the global round robin, so the
//    consumer is scattered anywhere in the machine and drags ~512 KB across
//    the oversubscribed core with probability (racks-1)/racks.
//  * rack-aware — the holders' rack out-scores every other rack (quarter-
//    weight rack credit) and the in-rack tie rotation lands the consumer ON
//    one of the holders; the remaining input is one switch hop away, so the
//    core layer sees ~1/8 of the bytes.
//
// Both legs report VIRTUAL time (spawn -> quiesce, write-back flush
// excluded, same protocol everywhere): the ratio isolates placement policy
// against fabric shape.  Rack shape is nodes/8 racks of 8; rack links run at
// nodes_per_rack x the 1 GB/s NIC and the core link is sized for the swept
// oversubscription (core_bw = racks * rack_bw / oversub), so 8-node runs are
// single-rack (flat fabric, ratio ~1) and the contrast grows with both axes.
//
// A flat-equivalence leg runs the same 16-node workload with racks=1 plus
// absurdly low fabric caps against a default (topology-free) configuration:
// a single-rack fabric must be inert, so the two times must agree.
//
// Knobs: OMPSS_BENCH_NODES caps the node sweep (default 128),
// OMPSS_BENCH_RPN regions/node (default 4), OMPSS_BENCH_GATE (percent,
// 150 = 1.50x) gates the aware/blind speedup at 4:1 oversubscription on the
// largest swept node count <= 64, and OMPSS_BENCH_FLAT (percent, default 5)
// bounds the flat-equivalence drift.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nanos/cluster.hpp"
#include "vt/clock.hpp"

namespace {

constexpr std::size_t kRegionFloats = 64 * 1024;  // 256 KB per producer region
constexpr std::size_t kSinkFloats = 16;           // 64 B consumer sink
constexpr int kNodesPerRack = 8;

nanos::ClusterConfig cluster(int nodes, int oversub, bool aware, long rpn) {
  nanos::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node_scheduler = "affinity";  // producers: chunked rr; consumers: scored
  cfg.rr_chunk = static_cast<int>(rpn);
  cfg.segment_bytes = 64u << 20;
  cfg.presend = 8;  // pipeline transfers so the fabric, not the window, limits
  cfg.node.smp_workers = 2;
  cfg.node.scheduler = "dep";
  cfg.node.cache_policy = "wb";
  cfg.node.verify = "off";
  cfg.node.gpus.clear();
  cfg.link.bandwidth = 1e9;
  // An 8:1 core under a transfer burst backs flows up for tens of
  // milliseconds; the leg measures fabric cost, not detection policy, so the
  // failure detector is off for BOTH configurations (as in over02's
  // throughput leg — detection is certified by resilience_test).
  cfg.resilience.heartbeat_period = 0;
  if (oversub > 0) {
    const int racks = nodes / kNodesPerRack;
    cfg.topology.racks = racks;
    cfg.topology.nodes_per_rack = kNodesPerRack;
    cfg.topology.rack_link_bw = kNodesPerRack * 1e9;
    cfg.topology.core_link_bw = racks * cfg.topology.rack_link_bw / oversub;
  }
  cfg.rack_aware = aware;
  return cfg;
}

struct RunResult {
  double seconds = 0;
  double rack_gb = 0;       // payload bytes that stayed on rack links
  double core_gb = 0;       // payload bytes that crossed the core layer
  double uplink_busy = 0;   // mean uplink busy fraction over the run
  double rack_sources = 0;  // fetches served by a same-rack holder
};

RunResult run_leg(nanos::ClusterConfig cfg, long rpn) {
  const int nodes = cfg.nodes;
  const long producers = rpn * nodes;
  std::vector<float> data(static_cast<std::size_t>(producers) * kRegionFloats, 0.0f);
  std::vector<float> sinks(static_cast<std::size_t>(producers) * kSinkFloats, 0.0f);
  vt::Clock clock;
  RunResult r;
  nanos::ClusterRuntime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "bench", [&] {
    for (long p = 0; p < producers; ++p) {
      nanos::TaskDesc d;
      d.device = nanos::DeviceKind::kSmp;
      d.accesses = {nanos::Access::out(&data[static_cast<std::size_t>(p) * kRegionFloats],
                                       kRegionFloats * sizeof(float))};
      d.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; };
      rt.spawn(std::move(d));
    }
    // Barrier (no flush: producer regions stay on their nodes).  The timed
    // window is the consumer exchange alone, so every fetch flow lands on
    // the fabric at once and the shared tiers see their true concurrency —
    // without the barrier the fetches trickle in producer-completion order
    // and the core never saturates.
    rt.taskwait(false);
    const double t0 = clock.now();
    for (long i = 0; i < producers; ++i) {
      const long p = (i * 7919) % producers;
      const long q = (p + rpn) % producers;
      nanos::TaskDesc d;
      d.device = nanos::DeviceKind::kSmp;
      d.accesses = {nanos::Access::in(&data[static_cast<std::size_t>(p) * kRegionFloats],
                                      kRegionFloats * sizeof(float)),
                    nanos::Access::in(&data[static_cast<std::size_t>(q) * kRegionFloats],
                                      kRegionFloats * sizeof(float)),
                    nanos::Access::out(&sinks[static_cast<std::size_t>(i) * kSinkFloats],
                                       kSinkFloats * sizeof(float))};
      d.fn = [](nanos::TaskContext& c) {
        c.data_as<float>(2)[0] = c.data_as<float>(0)[0] + c.data_as<float>(1)[0];
      };
      rt.spawn(std::move(d));
    }
    // The write-back flush of producer regions and consumer sinks happens
    // after the clock stops (a microbenchmark artifact, same in both
    // configurations).
    rt.taskwait(false);
    r.seconds = clock.now() - t0;
    rt.taskwait();
  });
  driver.join();
  r.rack_gb = rt.stats().sum("net.rack_bytes") / 1e9;
  r.core_gb = rt.stats().sum("net.core_bytes") / 1e9;
  const double pubs = rt.stats().count("net.uplink_busy_frac");
  if (pubs > 0) r.uplink_busy = rt.stats().sum("net.uplink_busy_frac") / pubs;
  r.rack_sources = rt.stats().sum("cluster.rack_local_sources");
  return r;
}

std::string run_key(int oversub, int nodes, bool aware) {
  return std::to_string(oversub) + "/" + std::to_string(nodes) + (aware ? "/a" : "/b");
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("fig14 — rack fabric sweep, virtual time", "ms");
  bench::FigureTable ratio_table("fig14 — rack-aware speedup over rack-blind", "x");

  const long rpn = std::max(1L, bench::env_knob("RPN", 4));
  const long max_nodes = bench::env_knob("NODES", 128);

  std::vector<int> sweep;
  for (int n : {8, 16, 32, 64, 128}) {
    if (n <= max_nodes && n >= kNodesPerRack) sweep.push_back(n);
  }
  const int gate_nodes = [&] {
    int g = 0;
    for (int n : sweep) {
      if (n <= 64) g = n;
    }
    return g;
  }();

  // Main sweep: node count x core oversubscription x {aware, blind}.
  static std::map<std::string, double> seconds;  // "over/nodes/aware" -> s
  for (const int oversub : {1, 2, 4, 8}) {
    for (const int nodes : sweep) {
      for (const bool aware : {false, true}) {
        const std::string mode = aware ? "aware" : "blind";
        const std::string series = mode + "/over:" + std::to_string(oversub);
        const std::string key = run_key(oversub, nodes, aware);
        std::string name = "fig14/" + series + "/nodes:" + std::to_string(nodes);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=, &table, &ratio_table](benchmark::State& st) {
              RunResult r;
              for (auto _ : st) {
                r = run_leg(cluster(nodes, oversub, aware, rpn), rpn);
                st.SetIterationTime(r.seconds);
              }
              seconds[key] = r.seconds;
              st.counters["rack_GB"] = r.rack_gb;
              st.counters["core_GB"] = r.core_gb;
              st.counters["uplink_busy_frac"] = r.uplink_busy;
              st.counters["rack_local_sources"] = r.rack_sources;
              table.add(series, std::to_string(nodes) + "n", r.seconds * 1e3);
              const std::string other = run_key(oversub, nodes, !aware);
              if (aware && seconds.count(other) != 0) {
                ratio_table.add("speedup/over:" + std::to_string(oversub),
                                std::to_string(nodes) + "n", seconds[other] / r.seconds);
              }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }

  // Flat-equivalence leg: a racks=1 fabric with absurdly low caps must time
  // identically to the default (topology-free) configuration.
  static std::map<std::string, double> flat_s;
  if (max_nodes >= 16) {
    for (const bool capped : {false, true}) {
      const std::string leg = capped ? "racks1" : "default";
      std::string name = "fig14/flat/" + leg + "/nodes:16";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=](benchmark::State& st) {
            for (auto _ : st) {
              // Virtual time is schedule-dependent at the few-percent level
              // (placement order races with task completion), so compare
              // min-of-5 envelopes, not single samples.
              double best = 0;
              for (int rep = 0; rep < 5; ++rep) {
                auto cfg = cluster(16, 0, true, rpn);
                if (capped) {
                  cfg.topology.racks = 1;
                  cfg.topology.nodes_per_rack = 16;
                  cfg.topology.rack_link_bw = 1.0;  // would stall everything if live
                  cfg.topology.core_link_bw = 1.0;
                }
                const RunResult r = run_leg(std::move(cfg), rpn);
                if (rep == 0 || r.seconds < best) best = r.seconds;
              }
              st.SetIterationTime(best);
              flat_s[leg] = best;
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  int rc = bench::run_and_print(argc, argv, table);
  ratio_table.print();

  // CI acceptance gates (see header comment).
  const long gate = bench::env_knob("GATE", 0);
  if (rc == 0 && gate > 0) {
    const std::string a = "4/" + std::to_string(gate_nodes) + "/a";
    const std::string b = "4/" + std::to_string(gate_nodes) + "/b";
    if (gate_nodes >= 2 * kNodesPerRack && seconds.count(a) != 0 && seconds.count(b) != 0) {
      const double speedup = seconds[b] / seconds[a];
      std::fprintf(stderr,
                   "fig14 gate: rack-aware %.2fx rack-blind at %d nodes, 4:1 core "
                   "(limit %.2fx)\n",
                   speedup, gate_nodes, static_cast<double>(gate) / 100.0);
      if (speedup < static_cast<double>(gate) / 100.0) {
        std::fprintf(stderr, "fig14 gate: FAILED — rack awareness buys too little\n");
        rc = 1;
      }
    }
    if (flat_s.count("racks1") != 0 && flat_s.count("default") != 0) {
      const double limit = static_cast<double>(bench::env_knob("FLAT", 5)) / 100.0;
      const double drift = std::abs(flat_s["racks1"] - flat_s["default"]) / flat_s["default"];
      std::fprintf(stderr, "fig14 gate: flat-equivalence drift %.4f (limit %.2f)\n", drift, limit);
      if (drift > limit) {
        std::fprintf(stderr, "fig14 gate: FAILED — racks=1 fabric is not inert\n");
        rc = 1;
      }
    }
  }
  return rc;
}
