// Ablation 3: the cache replacement mechanism under memory pressure.
// Isolates what drives Fig. 8's inversion: with the eviction bookkeeping
// cost modelled (the paper's "replacement mechanism"), the caching policies
// lose to no-cache on the pressured N-Body; with it zeroed, caching wins
// again — demonstrating that the inversion is a replacement-cost effect,
// not a data-volume effect.
#include "apps/nbody/nbody.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::FigureTable table("Ablation 3 — replacement mechanism cost", "GFLOPS");

  apps::nbody::Params p;
  p.n_phys = 1024;
  p.n_logical = 20000.0;
  p.nb = 8;
  p.iters = 10;

  for (double overhead : {0.0, 20e-6, 50e-6}) {
    for (const char* cache : {"nocache", "wb"}) {
      std::string series = std::string(cache);
      std::string x = overhead == 0 ? "free" : (std::to_string(static_cast<int>(overhead * 1e6)) + "us");
      std::string name = "abl03/nbody/" + series + "/evict_" + x;
      benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
        double gflops = 0;
        for (auto _ : st) {
          auto cfg = apps::multi_gpu_node(4, p.byte_scale());
          cfg.cache_policy = cache;
          cfg.eviction_overhead = overhead;
          std::size_t generation = p.block_bytes() * static_cast<std::size_t>(2 * p.nb);
          for (auto& g : cfg.gpus) g.memory_bytes = generation;
          ompss::Env env(cfg);
          auto r = apps::nbody::run_ompss(env, p);
          st.SetIterationTime(r.seconds);
          gflops = r.gflops;
        }
        st.counters["GFLOPS"] = gflops;
        table.add(series, x, gflops);
      })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_print(argc, argv, table);
}
