// Shared benchmark-harness pieces.
//
// Each fig*_ binary registers one google-benchmark entry per configuration
// the corresponding paper figure sweeps, reports the *virtual* execution
// time as manual time, and exposes the figure's metric (GFLOPS, GB/s,
// MPixels/s) as a counter.  After the benchmarks run, a paper-style table —
// one row per series, one column per x-axis point — is printed so the
// figure's shape can be eyeballed directly and captured in EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace bench {

/// Collects (series, x, value) points and prints them as an aligned table.
class FigureTable {
public:
  FigureTable(std::string title, std::string metric)
      : title_(std::move(title)), metric_(std::move(metric)) {}

  void add(const std::string& series, const std::string& x, double value) {
    if (std::find(xs_.begin(), xs_.end(), x) == xs_.end()) xs_.push_back(x);
    if (std::find(series_order_.begin(), series_order_.end(), series) == series_order_.end())
      series_order_.push_back(series);
    values_[series][x] = value;
  }

  void print() const {
    std::printf("\n=== %s [%s] ===\n", title_.c_str(), metric_.c_str());
    std::printf("%-34s", "series");
    for (const auto& x : xs_) std::printf("%12s", x.c_str());
    std::printf("\n");
    for (const auto& s : series_order_) {
      std::printf("%-34s", s.c_str());
      for (const auto& x : xs_) {
        auto it = values_.at(s).find(x);
        if (it == values_.at(s).end()) {
          std::printf("%12s", "-");
        } else {
          std::printf("%12.2f", it->second);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

private:
  std::string title_;
  std::string metric_;
  std::vector<std::string> xs_;
  std::vector<std::string> series_order_;
  std::map<std::string, std::map<std::string, double>> values_;
};

/// Integer knob overridable from the environment (OMPSS_BENCH_<NAME>).
inline long env_knob(const char* name, long def) {
  std::string var = std::string("OMPSS_BENCH_") + name;
  const char* v = std::getenv(var.c_str());
  return v != nullptr ? std::atol(v) : def;
}

/// Standard main body: run benchmarks, then print the table.
inline int run_and_print(int argc, char** argv, const FigureTable& table) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  table.print();
  return 0;
}

}  // namespace bench
