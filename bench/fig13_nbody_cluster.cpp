// Figure 13: N-Body on the GPU cluster — OmpSs vs MPI+CUDA.
// Paper shape: the all-to-all of positions after every step leaves little to
// overlap; MPI+CUDA is ahead at 1–2 nodes, but the OmpSs version scales
// better towards 4–8 nodes.
#include "apps/nbody/nbody.hpp"
#include "bench_common.hpp"

namespace {

apps::nbody::Params params() {
  apps::nbody::Params p;
  p.n_phys = static_cast<int>(bench::env_knob("NBODY_N", 1024));
  p.n_logical = 20000.0;
  p.nb = static_cast<int>(bench::env_knob("NBODY_NB", 8));
  p.iters = static_cast<int>(bench::env_knob("NBODY_ITERS", 10));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 13 — N-Body, GPU cluster", "GFLOPS");
  auto p = params();

  for (int nodes : {1, 2, 4, 8}) {
    std::string name = "fig13/nbody/ompss/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
      double gflops = 0;
      for (auto _ : st) {
        auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
        cfg.slave_to_slave = true;
        cfg.presend = 1;
        cfg.node.cache_policy = "wb";
        cfg.node.overlap = true;
        cfg.node.prefetch = true;
        cfg.rr_chunk = std::max(1, p.nb / nodes);  // spread first-touch blocks
        ompss::Env env(cfg);
        auto r = apps::nbody::run_ompss(env, p);
        st.SetIterationTime(r.seconds);
        gflops = r.gflops;
      }
      st.counters["GFLOPS"] = gflops;
      table.add("OmpSs", std::to_string(nodes) + "n", gflops);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  for (int nodes : {1, 2, 4, 8}) {
    std::string name = "fig13/nbody/mpicuda/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
      double gflops = 0;
      for (auto _ : st) {
        vt::Clock clock;
        auto r = apps::nbody::run_mpicuda(p, clock, nodes, apps::qdr_infiniband(p.byte_scale()),
                                          apps::gtx480(p.byte_scale()));
        st.SetIterationTime(r.seconds);
        gflops = r.gflops;
      }
      st.counters["GFLOPS"] = gflops;
      table.add("MPI+CUDA", std::to_string(nodes) + "n", gflops);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return bench::run_and_print(argc, argv, table);
}
