// Overhead microbenchmark (BOTS/taskbench-style): per-task runtime overhead.
//
// The paper's pitch (§III-C, Table I) is that the runtime absorbs data
// movement and scheduling without the programmer paying for it — which only
// holds if per-task overhead stays flat as the task graph grows.  This
// benchmark stresses the metadata hot paths (dependency directory, scheduler
// queues) with trivial task bodies and *dependence-only* accesses, so what is
// measured is the runtime itself, not the simulated platform:
//
//  * independent — N tasks, each writing its own region (pure fan; the
//    region directory grows to N records).
//  * chain       — N tasks inout on one region (serial release path).
//  * wavefront   — W×W 2-D dependency front, task (i,j) after (i-1,j) and
//    (i,j-1) (the classic taskbench/Cholesky-like pattern).
//
// Unlike the fig* benchmarks, the metric here is REAL (host) time: task
// bodies cost zero virtual seconds, so wall-clock is runtime overhead.
// Reported per series/N: end-to-end tasks/s, submit-loop tasks/s, and
// per-task overhead in microseconds.  Sweep ceiling via OMPSS_BENCH_TASKS
// (default 100000).
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "ompss/ompss.hpp"

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct OverheadResult {
  double submit_s = 0;  // spawn loop only
  double total_s = 0;   // spawn loop + taskwait (graph fully drained)
};

nanos::RuntimeConfig node_config(const std::string& scheduler) {
  nanos::RuntimeConfig cfg;
  cfg.scheduler = scheduler;
  cfg.smp_workers = 4;  // no GPUs: SMP workers drain the trivial bodies
  return cfg;
}

OverheadResult run_independent(const std::string& scheduler, long n) {
  // One 64-byte region per task: the directory holds n disjoint records.
  std::vector<char> data(static_cast<std::size_t>(n) * 64);
  ompss::Env env(node_config(scheduler));
  OverheadResult r;
  env.run([&] {
    const double t0 = now_s();
    for (long i = 0; i < n; ++i) {
      ompss::task()
          .dep(&data[static_cast<std::size_t>(i) * 64], 64, nanos::AccessMode::kOut)
          .run([](ompss::Ctx&) {});
    }
    r.submit_s = now_s() - t0;
    ompss::taskwait_noflush();
    r.total_s = now_s() - t0;
  });
  return r;
}

OverheadResult run_chain(const std::string& scheduler, long n) {
  double cell = 0;
  ompss::Env env(node_config(scheduler));
  OverheadResult r;
  env.run([&] {
    const double t0 = now_s();
    for (long i = 0; i < n; ++i) {
      ompss::task().dep(&cell, sizeof(cell), nanos::AccessMode::kInout).run(
          [](ompss::Ctx&) {});
    }
    r.submit_s = now_s() - t0;
    ompss::taskwait_noflush();
    r.total_s = now_s() - t0;
  });
  return r;
}

OverheadResult run_wavefront(const std::string& scheduler, long n) {
  const long w = std::lround(std::floor(std::sqrt(static_cast<double>(n))));
  std::vector<double> grid(static_cast<std::size_t>(w) * static_cast<std::size_t>(w));
  auto cell = [&](long i, long j) { return &grid[static_cast<std::size_t>(i * w + j)]; };
  ompss::Env env(node_config(scheduler));
  OverheadResult r;
  env.run([&] {
    const double t0 = now_s();
    for (long i = 0; i < w; ++i) {
      for (long j = 0; j < w; ++j) {
        auto b = ompss::task();
        if (i > 0) b.dep(cell(i - 1, j), sizeof(double), nanos::AccessMode::kIn);
        if (j > 0) b.dep(cell(i, j - 1), sizeof(double), nanos::AccessMode::kIn);
        b.dep(cell(i, j), sizeof(double), nanos::AccessMode::kOut);
        b.run([](ompss::Ctx&) {});
      }
    }
    r.submit_s = now_s() - t0;
    ompss::taskwait_noflush();
    r.total_s = now_s() - t0;
  });
  return r;
}

std::string k_label(long n) {
  return n % 1000 == 0 ? std::to_string(n / 1000) + "k" : std::to_string(n);
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("over01 — task overhead, end-to-end", "ktasks/s");
  bench::FigureTable submit_table("over01 — submit throughput", "ktasks/s");
  bench::FigureTable overhead_table("over01 — per-task overhead", "us/task");

  // A garbage/zero knob would register an N=0 run (inf us/task); clamp.
  const long max_n = std::max(1000L, bench::env_knob("TASKS", 100000));
  std::vector<long> sweep;
  for (long n : {1000L, 10000L, 100000L}) {
    if (n <= max_n) sweep.push_back(n);
  }
  if (sweep.empty() || sweep.back() != max_n) sweep.push_back(max_n);

  struct Pattern {
    const char* name;
    const char* scheduler;
    OverheadResult (*fn)(const std::string&, long);
  };
  const Pattern patterns[] = {
      {"independent", "dep", run_independent},
      {"independent", "bf", run_independent},
      {"independent", "affinity", run_independent},
      {"chain", "dep", run_chain},
      {"wavefront", "dep", run_wavefront},
  };

  for (const Pattern& p : patterns) {
    for (long n : sweep) {
      std::string series = std::string(p.name) + "/" + p.scheduler;
      std::string name = "over01/" + series + "/" + std::to_string(n);
      auto fn = p.fn;
      std::string scheduler = p.scheduler;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=, &table, &submit_table, &overhead_table](benchmark::State& st) {
            OverheadResult r;
            for (auto _ : st) {
              r = fn(scheduler, n);
              st.SetIterationTime(r.total_s);
            }
            const double nd = static_cast<double>(n);
            st.counters["tasks/s"] = nd / r.total_s;
            st.counters["submit_tasks/s"] = nd / r.submit_s;
            st.counters["us/task"] = r.total_s / nd * 1e6;
            table.add(series, k_label(n), nd / r.total_s / 1e3);
            submit_table.add(series, k_label(n), nd / r.submit_s / 1e3);
            overhead_table.add(series, k_label(n), r.total_s / nd * 1e6);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  int rc = bench::run_and_print(argc, argv, table);
  submit_table.print();
  overhead_table.print();
  return rc;
}
