// ver01: taskcheck overhead — what verify=race / verify=all cost.
//
// The verifier is only usable as an always-on debug mode if its overhead
// stays within a small constant factor of the unchecked runtime.  Two legs:
//
//  * task-throughput (over01 patterns: independent / chain / wavefront with
//    trivial bodies and dependence-only accesses) — REAL time, so the
//    slowdown column is the oracle's per-task cost: chain-clock maintenance,
//    shadow-directory checks, and (under verify=all) the coherence invariant
//    walk at taskwait.  Acceptance gate: verify=race ≤ 2× on every pattern.
//  * cluster matmul (the fig09 shape, 2-node StoS) — virtual GFLOPS with the
//    checker on, showing the verifier does not distort the simulated
//    figures; the real-time ratio is reported alongside.
//
// Sweep ceiling via OMPSS_BENCH_TASKS (default 20000).
#include <chrono>
#include <cstdio>
#include <cmath>
#include <map>
#include <vector>

#include "apps/matmul/matmul.hpp"
#include "bench_common.hpp"
#include "ompss/ompss.hpp"

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

nanos::RuntimeConfig node_config(const std::string& verify) {
  nanos::RuntimeConfig cfg;
  cfg.scheduler = "dep";
  cfg.smp_workers = 4;
  cfg.verify = verify;
  return cfg;
}

double run_independent(const std::string& verify, long n) {
  std::vector<char> data(static_cast<std::size_t>(n) * 64);
  ompss::Env env(node_config(verify));
  double total = 0;
  env.run([&] {
    const double t0 = now_s();
    for (long i = 0; i < n; ++i) {
      ompss::task()
          .dep(&data[static_cast<std::size_t>(i) * 64], 64, nanos::AccessMode::kOut)
          .run([](ompss::Ctx&) {});
    }
    ompss::taskwait_noflush();
    total = now_s() - t0;
  });
  return total;
}

double run_chain(const std::string& verify, long n) {
  double cell = 0;
  ompss::Env env(node_config(verify));
  double total = 0;
  env.run([&] {
    const double t0 = now_s();
    for (long i = 0; i < n; ++i) {
      ompss::task().dep(&cell, sizeof(cell), nanos::AccessMode::kInout).run(
          [](ompss::Ctx&) {});
    }
    ompss::taskwait_noflush();
    total = now_s() - t0;
  });
  return total;
}

// Directory-heavy leg: unlike the throughput patterns above (dependence-only
// accesses that never enter the coherence directory), every task here carries
// a real copy access over a pool of live tiles, so under verify=all every
// release runs a coherence invariant walk against a populated directory.
// Three modes:
//   off        — unchecked wall-time baseline,
//   all        — the incremental (dirty-set) walk this series ships,
//   all+xcheck — verify_crosscheck=true runs a *full* directory walk at every
//                release on top of the incremental one: an upper bound that
//                stands in for the old full-rescan-per-release behavior.
// Acceptance gate: all ≤ 2× off (enforced when OMPSS_BENCH_GATE is set).
double run_directory(const std::string& verify, long n) {
  const bool xcheck = verify == "all+xcheck";
  nanos::RuntimeConfig cfg = node_config(xcheck ? "all" : verify);
  cfg.verify_crosscheck = xcheck;
  cfg.cache_policy = "wb";
  simcuda::DeviceProps props;
  props.memory_bytes = 64u << 20;
  props.gflops = 1000.0;
  props.pcie_bandwidth = 8e9;
  props.copy_overhead = 0;
  props.kernel_launch_overhead = 0;
  cfg.gpus.assign(2, props);
  constexpr long kTiles = 64;
  constexpr std::size_t kTileBytes = 4096;
  std::vector<char> data(static_cast<std::size_t>(kTiles) * kTileBytes);
  ompss::Env env(cfg);
  double total = 0;
  env.run([&] {
    const double t0 = now_s();
    const long steps = std::max(1L, n / kTiles);
    for (long s = 0; s < steps; ++s) {
      for (long t = 0; t < kTiles; ++t) {
        ompss::task()
            .device(ompss::Device::kCuda)
            .inout(&data[static_cast<std::size_t>(t) * kTileBytes], kTileBytes)
            .flops(1e3)
            .run([](ompss::Ctx&) {});
      }
      ompss::taskwait_noflush();
    }
    ompss::taskwait();
    total = now_s() - t0;
  });
  return total;
}

double run_wavefront(const std::string& verify, long n) {
  const long w = std::lround(std::floor(std::sqrt(static_cast<double>(n))));
  std::vector<double> grid(static_cast<std::size_t>(w) * static_cast<std::size_t>(w));
  auto cell = [&](long i, long j) { return &grid[static_cast<std::size_t>(i * w + j)]; };
  ompss::Env env(node_config(verify));
  double total = 0;
  env.run([&] {
    const double t0 = now_s();
    for (long i = 0; i < w; ++i) {
      for (long j = 0; j < w; ++j) {
        auto b = ompss::task();
        if (i > 0) b.dep(cell(i - 1, j), sizeof(double), nanos::AccessMode::kIn);
        if (j > 0) b.dep(cell(i, j - 1), sizeof(double), nanos::AccessMode::kIn);
        b.dep(cell(i, j), sizeof(double), nanos::AccessMode::kOut);
        b.run([](ompss::Ctx&) {});
      }
    }
    ompss::taskwait_noflush();
    total = now_s() - t0;
  });
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("ver01 — task throughput under taskcheck", "ktasks/s");
  bench::FigureTable slowdown_table("ver01 — slowdown vs verify=off", "x");
  bench::FigureTable cluster_table("ver01 — cluster matmul under taskcheck", "GFLOPS");

  const long n = std::max(1000L, bench::env_knob("TASKS", 20000));

  struct Pattern {
    const char* name;
    double (*fn)(const std::string&, long);
  };
  const Pattern patterns[] = {
      {"independent", run_independent},
      {"chain", run_chain},
      {"wavefront", run_wavefront},
  };
  // Baseline (verify=off) real time per pattern, filled by the first runs;
  // google-benchmark executes in registration order, so "off" is registered
  // (and runs) before the checked modes of the same pattern.
  static std::map<std::string, double> baseline;

  for (const Pattern& p : patterns) {
    for (const char* verify : {"off", "race", "all"}) {
      std::string series = std::string(p.name) + "/" + verify;
      std::string name = "ver01/" + series + "/" + std::to_string(n);
      auto fn = p.fn;
      std::string pattern = p.name;
      std::string mode = verify;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=, &table, &slowdown_table](benchmark::State& st) {
            double total = 0;
            for (auto _ : st) {
              total = fn(mode, n);
              st.SetIterationTime(total);
            }
            if (mode == "off") baseline[pattern] = total;
            const double base = baseline.count(pattern) ? baseline[pattern] : total;
            st.counters["tasks/s"] = static_cast<double>(n) / total;
            st.counters["slowdown"] = total / base;
            table.add(pattern, mode, static_cast<double>(n) / total / 1e3);
            slowdown_table.add(pattern, mode, total / base);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  // Directory-heavy leg (its own mode list: the race oracle is not what it
  // measures, the per-release coherence walk is).
  static std::map<std::string, double> dir_time;
  for (const char* verify : {"off", "all", "all+xcheck"}) {
    std::string series = std::string("directory/") + verify;
    std::string name = "ver01/" + series + "/" + std::to_string(n);
    std::string mode = verify;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=, &table, &slowdown_table](benchmark::State& st) {
          double total = 0;
          for (auto _ : st) {
            total = run_directory(mode, n);
            st.SetIterationTime(total);
          }
          dir_time[mode] = total;
          const double base = dir_time.count("off") ? dir_time["off"] : total;
          st.counters["tasks/s"] = static_cast<double>(n) / total;
          st.counters["slowdown"] = total / base;
          table.add("directory", mode, static_cast<double>(n) / total / 1e3);
          slowdown_table.add("directory", mode, total / base);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  // Cluster leg: the fig09 matmul shape with the checker on in every node
  // runtime and in the master oracle (cfg.node.verify drives both).
  apps::matmul::Params mp;
  mp.nb = static_cast<int>(bench::env_knob("MATMUL_NB", 8));
  mp.bs_phys = static_cast<std::size_t>(bench::env_knob("MATMUL_BS", 32));
  mp.bs_logical = 12288.0 / mp.nb;
  static std::map<int, double> cluster_baseline;  // nodes -> real seconds, verify=off
  for (const char* verify : {"off", "race", "all"}) {
    for (int nodes : {1, 2}) {
      std::string series = std::string("matmul/") + verify;
      std::string name = "ver01/cluster/" + series + "/nodes:" + std::to_string(nodes);
      std::string mode = verify;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [=, &cluster_table](benchmark::State& st) {
            double gflops = 0;
            double real_s = 0;
            for (auto _ : st) {
              auto cfg = apps::gpu_cluster(nodes, mp.byte_scale());
              cfg.slave_to_slave = true;
              cfg.node.cache_policy = "wb";
              cfg.node.verify = mode;
              ompss::Env env(cfg);
              const double t0 = now_s();
              auto r = apps::matmul::run_ompss(env, mp, apps::matmul::InitMode::kSmp);
              real_s = now_s() - t0;
              st.SetIterationTime(r.seconds);
              gflops = r.gflops;
            }
            if (mode == "off") cluster_baseline[nodes] = real_s;
            const double base =
                cluster_baseline.count(nodes) ? cluster_baseline[nodes] : real_s;
            st.counters["GFLOPS"] = gflops;
            st.counters["real_slowdown"] = real_s / base;
            cluster_table.add(series, std::to_string(nodes) + "n", gflops);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  int rc = bench::run_and_print(argc, argv, table);
  slowdown_table.print();
  cluster_table.print();

  // CI acceptance gate: OMPSS_BENCH_GATE is the largest tolerated
  // directory-pattern verify=all slowdown in percent of the unchecked run
  // (200 = 2.0×); unset or 0 disables the check.
  const long gate = bench::env_knob("GATE", 0);
  if (rc == 0 && gate > 0 && dir_time.count("off") && dir_time.count("all")) {
    const double slowdown = dir_time["all"] / dir_time["off"];
    std::fprintf(stderr, "ver01 gate: directory verify=all slowdown %.2fx (limit %.2fx)\n",
                 slowdown, static_cast<double>(gate) / 100.0);
    if (slowdown > static_cast<double>(gate) / 100.0) {
      std::fprintf(stderr, "ver01 gate: FAILED — verify=all is too expensive\n");
      rc = 1;
    }
  }
  return rc;
}
