// Ablation 2 (paper §III-D2): GPU data prefetch on vs off, with overlap
// enabled.  Once a kernel is launched, the GPU manager requests the next
// task and starts its transfers so the data is resident when the kernel
// finishes.  The paper notes prefetch is most effective combined with
// overlap, since otherwise CUDA serializes the copies after the kernel.
#include "apps/matmul/matmul.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bench::FigureTable table("Ablation 2 — GPU data prefetch", "GFLOPS");

  apps::matmul::Params p;
  p.nb = 8;
  p.bs_phys = 48;
  p.bs_logical = 1024.0;

  for (bool overlap : {false, true}) {
    for (bool prefetch : {false, true}) {
      std::string series = std::string(overlap ? "overlap" : "no-overlap");
      std::string x = prefetch ? "prefetch" : "no-prefetch";
      std::string name = "abl02/matmul/" + series + "/" + x;
      benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
        double gflops = 0;
        for (auto _ : st) {
          auto cfg = apps::multi_gpu_node(4, p.byte_scale());
          cfg.cache_policy = "wb";
          cfg.scheduler = "dep";
          cfg.overlap = overlap;
          cfg.prefetch = prefetch;
          ompss::Env env(cfg);
          auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSeq);
          st.SetIterationTime(r.seconds);
          gflops = r.gflops;
        }
        st.counters["GFLOPS"] = gflops;
        table.add(series, x, gflops);
      })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_print(argc, argv, table);
}
