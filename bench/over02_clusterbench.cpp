// over02: cluster protocol throughput and weak scaling — the decentralized
// master (sharded region directory + peer-to-peer staging + coalesced AMs)
// against the master-centric baseline it replaces.
//
// Both legs report VIRTUAL time: task bodies are priced in flops and every
// protocol message pays simnet overheads, so throughput measures the wire
// protocol, not the host.  Two legs:
//
//  * throughput — fixed node count (default 64), zero-flop tasks each
//    writing a private 64 B copy region, deep presend window, block task
//    placement (rr_chunk = tasks/node) so per-destination traffic is bursty.
//    In the centralized configuration (dir_sharding off, coalescing off,
//    master-relay staging) the master NIC serializes one NEW_TASK,
//    TASK_DONE and DONE_ACK per task; decentralized, commits go to hashed
//    home shards and the remaining master traffic rides coalesced batches
//    (100 us window), so the same burst costs a fraction of the AM
//    overheads.  The failure detector is off in this leg for both configs
//    (see run_leg) — it measures protocol cost, not detection policy.
//  * weak scaling — fixed tasks/node with 2 ms bodies, nodes swept
//    8 -> 128 under the decentralized protocol.  Ideal is flat time per
//    point; the reported efficiency is time(8n)/time(Nn).
//
// Knobs: OMPSS_BENCH_NODES caps the weak-scaling sweep (default 128),
// OMPSS_BENCH_THRU_NODES the throughput leg (default 64), OMPSS_BENCH_TPN
// tasks/node for both legs (default 16 weak, 64 throughput — scaled by
// OMPSS_BENCH_TPN/16).  OMPSS_BENCH_VERIFY=1 adds a 16-node weak-scaling
// point under verify=all, certifying the sharded protocol with the
// taskcheck oracle at scale.  OMPSS_BENCH_GATE (percent, 400 = 4.00x)
// gates the 64-node decentralized/centralized speedup and, together with
// OMPSS_BENCH_WEAK (percent, default 70), the 8 -> 64 weak-scaling
// efficiency.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nanos/cluster.hpp"
#include "vt/clock.hpp"

namespace {

constexpr std::size_t kRegionFloats = 16;  // 64 B per task's output region

nanos::ClusterConfig cluster(int nodes, bool decentralized, int presend) {
  nanos::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node_scheduler = "bf";  // block round robin: every node gets its share
  cfg.rr_chunk = presend;     // contiguous per-node blocks: bursts can coalesce
  cfg.segment_bytes = 32u << 20;
  cfg.presend = presend;  // deep pipeline: the protocol, not the window, limits
  cfg.node.smp_workers = 2;
  cfg.node.scheduler = "dep";
  cfg.node.cache_policy = "wb";
  cfg.node.gpus.clear();
  cfg.dir_sharding = decentralized;
  cfg.slave_to_slave = decentralized;
  if (decentralized) {
    // Protocol AMs to one destination arrive ~50-200 us apart once the
    // master fans out over 64 nodes; the default 5 us window never sees two
    // of them.  100 us amortizes the NIC overhead across near-full batches
    // while staying far below task granularity.
    cfg.link.coalesce_window = 100e-6;
  } else {
    cfg.link.coalesce_window = 0;
  }
  return cfg;
}

struct RunResult {
  double seconds = 0;
  double tasks_per_s = 0;
  double master_commit_share = 1.0;  // master's fraction of homed dir commits
  double batch_subs = 0;             // mean sub-messages per coalesced wire AM
};

RunResult run_leg(int nodes, bool decentralized, long tasks_per_node, double flops,
                  const std::string& verify, bool detector = true) {
  const long total = tasks_per_node * nodes;
  std::vector<float> data(static_cast<std::size_t>(total) * kRegionFloats, 0.0f);
  auto cfg = cluster(nodes, decentralized, static_cast<int>(tasks_per_node));
  cfg.node.verify = verify;
  // The throughput leg turns the failure detector off for BOTH configs: a
  // zero-flop burst drives the centralized master NIC into a 20+ ms backlog,
  // behind which its own pings queue until healthy-but-silent nodes are
  // falsely declared dead.  The leg measures protocol cost, not detection
  // policy; detection and recovery are certified by resilience_test and the
  // verify=all leg, which keep the default heartbeat.
  if (!detector) cfg.resilience.heartbeat_period = 0;
  vt::Clock clock;
  RunResult r;
  nanos::ClusterRuntime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "bench", [&] {
    const double t0 = clock.now();
    for (long i = 0; i < total; ++i) {
      nanos::TaskDesc d;
      d.device = nanos::DeviceKind::kSmp;
      d.accesses = {nanos::Access::out(&data[static_cast<std::size_t>(i) * kRegionFloats],
                                       kRegionFloats * sizeof(float))};
      d.cost.flops = flops;
      d.fn = [](nanos::TaskContext& c) {
        auto* f = c.data_as<float>(0);
        for (int k = 0; k < 16; ++k) f[k] = 1.0f;
      };
      rt.spawn(std::move(d));
    }
    // The timed window is spawn -> quiesce (all tasks committed and acked).
    // The write-back flush of every task's output region runs after the
    // clock stops: it is a bandwidth artifact of the microbenchmark's
    // never-consumed outputs, serialized at the master in both
    // configurations, and would only dilute the protocol ratio.
    rt.taskwait(false);
    r.seconds = clock.now() - t0;
    rt.taskwait();
  });
  driver.join();
  r.tasks_per_s = static_cast<double>(total) / r.seconds;

  // Master's share of HOMED directory commits — the wire-serialized ops the
  // sharded protocol distributes.  (cluster.dir_ops_local counts the
  // bookkeeping for master-executed tasks, which never crosses a NIC under
  // either protocol, so it is excluded from both sides of the ratio.)
  double homed = 0;
  double master_homed = 0;
  for (int n = 0; n < nodes; ++n) {
    const double h = rt.stats().sum("cluster.dir_ops_homed.n" + std::to_string(n));
    homed += h;
    if (n == 0) master_homed = h;
  }
  if (homed > 0) r.master_commit_share = master_homed / homed;
  double batches = 0, subs = 0;
  for (int n = 0; n < nodes; ++n) {
    batches += rt.network().endpoint(n).stats().sum("am_batch");
    subs += rt.network().endpoint(n).stats().sum("am_batch_subs");
  }
  if (batches > 0) r.batch_subs = subs / batches;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("over02 — cluster task throughput", "ktasks/s");
  bench::FigureTable weak_table("over02 — weak scaling efficiency vs 8 nodes", "x");

  const long tpn_knob = std::max(1L, bench::env_knob("TPN", 16));
  const int thru_nodes = static_cast<int>(bench::env_knob("THRU_NODES", 64));
  const long max_nodes = bench::env_knob("NODES", 128);

  // Throughput leg: protocol-bound bursts, centralized vs decentralized.
  static std::map<std::string, double> thru;  // config -> tasks/s
  static double thru_share = 1.0;             // decentralized master commit share
  const long thru_tpn = 4 * tpn_knob;
  for (const bool decentralized : {false, true}) {
    std::string series = decentralized ? "decentralized" : "centralized";
    std::string name = "over02/throughput/" + series + "/nodes:" + std::to_string(thru_nodes);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=, &table](benchmark::State& st) {
          RunResult r;
          for (auto _ : st) {
            r = run_leg(thru_nodes, decentralized, thru_tpn, 0.0, "off",
                        /*detector=*/false);
            st.SetIterationTime(r.seconds);
          }
          thru[series] = r.tasks_per_s;
          if (decentralized) thru_share = r.master_commit_share;
          st.counters["tasks/s"] = r.tasks_per_s;
          st.counters["master_commit_share"] = r.master_commit_share;
          st.counters["batch_subs"] = r.batch_subs;
          table.add("throughput/" + series, std::to_string(thru_nodes) + "n",
                    r.tasks_per_s / 1e3);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  // Weak-scaling leg: 2 ms bodies, fixed tasks/node, decentralized protocol.
  static std::map<int, double> weak_s;  // nodes -> virtual seconds
  std::vector<int> sweep;
  for (int n : {8, 16, 32, 64, 128}) {
    if (n <= max_nodes) sweep.push_back(n);
  }
  for (int nodes : sweep) {
    std::string name = "over02/weak/decentralized/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=, &table, &weak_table](benchmark::State& st) {
          RunResult r;
          for (auto _ : st) {
            r = run_leg(nodes, true, tpn_knob, 2.0e7, "off");
            st.SetIterationTime(r.seconds);
          }
          weak_s[nodes] = r.seconds;
          const double base = weak_s.count(8) ? weak_s[8] : r.seconds;
          st.counters["tasks/s"] = r.tasks_per_s;
          st.counters["efficiency"] = base / r.seconds;
          st.counters["master_commit_share"] = r.master_commit_share;
          table.add("weak/decentralized", std::to_string(nodes) + "n", r.tasks_per_s / 1e3);
          weak_table.add("weak/decentralized", std::to_string(nodes) + "n", base / r.seconds);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  // Optional taskcheck leg: the decentralized protocol at 16 nodes with the
  // full verifier on — the run aborts on any oracle violation, so finishing
  // at all is the result; the counter shows what the checker costs.
  if (bench::env_knob("VERIFY", 0) != 0) {
    benchmark::RegisterBenchmark(
        "over02/verify_all/decentralized/nodes:16",
        [=, &table](benchmark::State& st) {
          RunResult r;
          for (auto _ : st) {
            r = run_leg(16, true, tpn_knob, 2.0e7, "all");
            st.SetIterationTime(r.seconds);
          }
          st.counters["tasks/s"] = r.tasks_per_s;
          table.add("verify=all/decentralized", "16n", r.tasks_per_s / 1e3);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  int rc = bench::run_and_print(argc, argv, table);
  weak_table.print();

  // CI acceptance gates (see header comment).
  const long gate = bench::env_knob("GATE", 0);
  if (rc == 0 && gate > 0) {
    if (thru.count("decentralized") != 0 && thru.count("centralized") != 0) {
      const double speedup = thru["decentralized"] / thru["centralized"];
      std::fprintf(stderr,
                   "over02 gate: decentralized throughput %.2fx centralized at %d nodes "
                   "(limit %.2fx)\n",
                   speedup, thru_nodes, static_cast<double>(gate) / 100.0);
      if (speedup < static_cast<double>(gate) / 100.0) {
        std::fprintf(stderr, "over02 gate: FAILED — decentralization speedup too small\n");
        rc = 1;
      }
      // Sharding spread: the master must serve no more than 2/N of the
      // homed directory commits, or ownership has re-centralized.
      const double share_limit = 2.0 / thru_nodes;
      std::fprintf(stderr, "over02 gate: master homed-commit share %.4f (limit %.4f)\n",
                   thru_share, share_limit);
      if (thru_share > share_limit) {
        std::fprintf(stderr, "over02 gate: FAILED — directory commits re-centralized\n");
        rc = 1;
      }
    }
    const double weak_limit = static_cast<double>(bench::env_knob("WEAK", 70)) / 100.0;
    if (weak_s.count(8) != 0 && weak_s.count(64) != 0) {
      const double eff = weak_s[8] / weak_s[64];
      std::fprintf(stderr, "over02 gate: weak scaling 8->64 efficiency %.2f (limit %.2f)\n",
                   eff, weak_limit);
      if (eff < weak_limit) {
        std::fprintf(stderr, "over02 gate: FAILED — weak scaling efficiency too low\n");
        rc = 1;
      }
    }
  }
  return rc;
}
