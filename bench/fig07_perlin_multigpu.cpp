// Figure 7: Perlin noise on the multi-GPU node.
// Sweep: GPUs {1,2,4} x {Flush, NoFlush} x cache {nocache, wt, wb}.
// Paper shape: minimizing transfers wins — NoFlush clearly beats Flush
// (which pays the image round trip every step).
#include "apps/perlin/perlin.hpp"
#include "bench_common.hpp"

namespace {

apps::perlin::Params params(bool flush) {
  apps::perlin::Params p;
  p.dim_phys = static_cast<int>(bench::env_knob("PERLIN_DIM", 512));
  p.dim_logical = 1024;  // the paper's image
  p.bands = static_cast<int>(bench::env_knob("PERLIN_BANDS", 16));
  p.steps = static_cast<int>(bench::env_knob("PERLIN_STEPS", 10));
  p.flush = flush;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 7 — Perlin noise, multi-GPU node", "MPixels/s");

  for (bool flush : {true, false}) {
    for (const char* cache : {"nocache", "wt", "wb"}) {
      for (int gpus : {1, 2, 4}) {
        std::string series = std::string(flush ? "flush" : "noflush") + "/" + cache;
        std::string name = "fig07/perlin/" + series + "/gpus:" + std::to_string(gpus);
        benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
          double mpps = 0;
          for (auto _ : st) {
            auto p = params(flush);
            auto cfg = apps::multi_gpu_node(gpus, p.byte_scale());
            cfg.cache_policy = cache;
            ompss::Env env(cfg);
            auto r = apps::perlin::run_ompss(env, p);
            st.SetIterationTime(r.seconds);
            mpps = r.mpixels_per_s;
          }
          st.counters["MPixps"] = mpps;
          table.add(series, std::to_string(gpus) + "gpu", mpps);
        })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
      }
    }
  }
  return bench::run_and_print(argc, argv, table);
}
