// Table I: productivity comparison — useful lines of code of the four
// shipped versions of each benchmark, with the percentage increase over the
// serial version.  The counts are computed from the actual sources in this
// repository (stripping blank and comment-only lines), so the table
// regenerates itself as the code evolves.  Shared per-app kernels
// (kernels.cpp) play the role of CUBLAS / user-provided CUDA kernels in the
// paper and are excluded from every version, as the paper excludes the
// kernel bodies it does not generate.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef OMPSS_SOURCE_DIR
#error "OMPSS_SOURCE_DIR must be defined by the build"
#endif

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Counts "useful" lines: not blank, not comment-only (// or /*...*/ spans),
/// not a lone brace — approximating the paper's methodology of counting
/// lines that carry code.
int count_useful_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "table1: cannot open %s\n", path.c_str());
    return -1;
  }
  int count = 0;
  bool in_block_comment = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string t = trim(line);
    if (in_block_comment) {
      auto end = t.find("*/");
      if (end == std::string::npos) continue;
      t = trim(t.substr(end + 2));
      in_block_comment = false;
    }
    if (t.rfind("/*", 0) == 0) {
      auto end = t.find("*/", 2);
      if (end == std::string::npos) {
        in_block_comment = true;
        continue;
      }
      t = trim(t.substr(end + 2));
    }
    if (t.empty()) continue;
    if (t.rfind("//", 0) == 0) continue;
    if (t == "{" || t == "}" || t == "};" || t == "});") continue;
    ++count;
  }
  return count;
}

/// Counts useful lines and, separately, OmpSs pragma lines in a file.
struct PragmaCount {
  int useful = 0;
  int pragmas = 0;
};

PragmaCount count_with_pragmas(const std::string& path) {
  std::ifstream in(path);
  PragmaCount c;
  if (!in) {
    std::fprintf(stderr, "table1: cannot open %s\n", path.c_str());
    c.useful = -1;
    return c;
  }
  std::string line;
  bool joining = false;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    std::string t = trim(line);
    if (in_block_comment) {
      auto end = t.find("*/");
      if (end == std::string::npos) continue;
      t = trim(t.substr(end + 2));
      in_block_comment = false;
    }
    if (t.rfind("/*", 0) == 0) {
      auto end = t.find("*/", 2);
      if (end == std::string::npos) {
        in_block_comment = true;
        continue;
      }
      t = trim(t.substr(end + 2));
    }
    if (t.empty() || t.rfind("//", 0) == 0) continue;
    if (t == "{" || t == "}" || t == "};" || t == "});") continue;
    bool is_pragma = joining || t.rfind("#pragma omp", 0) == 0;
    joining = is_pragma && !t.empty() && t.back() == '\\';
    ++c.useful;
    if (is_pragma) ++c.pragmas;
  }
  return c;
}

struct Row {
  const char* name;
  const char* dir;
};

}  // namespace

int main() {
  const std::string base = std::string(OMPSS_SOURCE_DIR) + "/src/apps/";
  const Row rows[] = {
      {"Matmul", "matmul"}, {"STREAM", "stream"}, {"Perlin", "perlin"}, {"Nbody", "nbody"}};

  std::printf("\n=== Table I — useful lines of code per version ===\n");
  std::printf("%-10s %8s %14s %14s %14s\n", "Benchmark", "Serial", "CUDA", "MPI+CUDA",
              "OmpSs+CUDA");
  for (const Row& row : rows) {
    int serial = count_useful_lines(base + row.dir + "/serial.cpp");
    int cuda = count_useful_lines(base + row.dir + "/cuda.cpp");
    int mpicuda = count_useful_lines(base + row.dir + "/mpicuda.cpp");
    int ompss = count_useful_lines(base + row.dir + "/ompss.cpp");
    auto pct = [serial](int v) { return 100.0 * (v - serial) / serial; };
    std::printf("%-10s %8d %8d(%+4.0f%%) %8d(%+4.0f%%) %8d(%+4.0f%%)\n", row.name, serial, cuda,
                pct(cuda), mpicuda, pct(mpicuda), ompss, pct(ompss));
  }
  std::printf(
      "\nNote: the OmpSs column above counts the library-form versions (C++ lambda\n"
      "syntax), which is wordier than the paper's pragma dialect.  The faithful\n"
      "measure of the paper's claim is the pragma form below: the OmpSs version is\n"
      "the serial program plus directives.\n");

  std::printf("\n=== Table I (pragma form) — annotated programs via mcc ===\n");
  std::printf("%-10s %8s %16s\n", "Benchmark", "Serial", "OmpSs (pragmas)");
  const char* annotated[][2] = {{"Matmul", "annotated_matmul.ompss.c"},
                                {"STREAM", "annotated_stream.ompss.c"},
                                {"Perlin", "annotated_perlin.ompss.c"},
                                {"Nbody", "annotated_nbody.ompss.c"}};
  for (const auto& row : annotated) {
    PragmaCount c =
        count_with_pragmas(std::string(OMPSS_SOURCE_DIR) + "/examples/" + row[1]);
    int serial = c.useful - c.pragmas;
    std::printf("%-10s %8d %10d(%+4.0f%%)\n", row[0], serial, c.useful,
                100.0 * c.pragmas / serial);
  }
  std::printf(
      "\nPaper's trend to reproduce: CUDA adds lines over serial, MPI+CUDA adds the\n"
      "most, OmpSs adds the least (directives only; the runtime moves the data).\n\n");
  return 0;
}
