// Figure 6: STREAM on the multi-GPU node.
// Sweep: GPUs {1,2,4} x cache {nocache, wt, wb} x scheduler {bf, dep,
// affinity}.  Paper shape: memory management dominates — no-cache and
// write-through drown in useless transfers, write-back performs well; the
// scheduler barely matters (the task structure is trivial).
#include "apps/stream/stream.hpp"
#include "bench_common.hpp"

namespace {

apps::stream::Params params(int gpus) {
  apps::stream::Params p;
  p.gpus = gpus;  // the paper allocates 768 MB per GPU
  p.blocks_per_gpu = static_cast<int>(bench::env_knob("STREAM_BLOCKS", 32));
  p.block_phys = static_cast<std::size_t>(bench::env_knob("STREAM_BS", 2048));
  p.block_logical = 768.0e6 / 3.0 / sizeof(double) / p.blocks_per_gpu;
  p.ntimes = static_cast<int>(bench::env_knob("STREAM_NTIMES", 10));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 6 — STREAM, multi-GPU node", "GB/s (logical)");

  for (const char* cache : {"nocache", "wt", "wb"}) {
    for (const char* sched : {"bf", "dep", "affinity"}) {
      for (int gpus : {1, 2, 4}) {
        std::string series = std::string(cache) + "/" + sched;
        std::string name = "fig06/stream/" + series + "/gpus:" + std::to_string(gpus);
        benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
          double gbps = 0;
          for (auto _ : st) {
            auto p = params(gpus);
            auto cfg = apps::multi_gpu_node(gpus, p.byte_scale());
            cfg.scheduler = sched;
            cfg.cache_policy = cache;
            ompss::Env env(cfg);
            auto r = apps::stream::run_ompss(env, p);
            st.SetIterationTime(r.seconds);
            gbps = r.gbps;
          }
          st.counters["GBps"] = gbps;
          table.add(series, std::to_string(gpus) + "gpu", gbps);
        })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
      }
    }
  }
  return bench::run_and_print(argc, argv, table);
}
