// Figure 11: STREAM on the GPU cluster — OmpSs vs MPI+CUDA.
// Paper shape: no inter-node traffic, so both scale essentially linearly
// and reach comparable rates.
#include "apps/stream/stream.hpp"
#include "bench_common.hpp"

namespace {

apps::stream::Params params(int nodes) {
  apps::stream::Params p;
  p.gpus = nodes;  // 768 MB per node's GPU
  p.blocks_per_gpu = static_cast<int>(bench::env_knob("STREAM_BLOCKS", 32));
  p.block_phys = static_cast<std::size_t>(bench::env_knob("STREAM_BS", 2048));
  p.block_logical = 768.0e6 / 3.0 / sizeof(double) / p.blocks_per_gpu;
  p.ntimes = static_cast<int>(bench::env_knob("STREAM_NTIMES", 10));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 11 — STREAM, GPU cluster", "GB/s (logical)");

  for (int nodes : {1, 2, 4, 8}) {
    std::string name = "fig11/stream/ompss/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
      double gbps = 0;
      for (auto _ : st) {
        auto p = params(nodes);
        auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
        cfg.node.cache_policy = "wb";
        ompss::Env env(cfg);
        auto r = apps::stream::run_ompss(env, p);
        st.SetIterationTime(r.seconds);
        gbps = r.gbps;
      }
      st.counters["GBps"] = gbps;
      table.add("OmpSs", std::to_string(nodes) + "n", gbps);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  for (int nodes : {1, 2, 4, 8}) {
    std::string name = "fig11/stream/mpicuda/nodes:" + std::to_string(nodes);
    benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
      double gbps = 0;
      for (auto _ : st) {
        auto p = params(nodes);
        vt::Clock clock;
        auto r = apps::stream::run_mpicuda(p, clock, nodes, apps::qdr_infiniband(p.byte_scale()),
                                           apps::gtx480(p.byte_scale()));
        st.SetIterationTime(r.seconds);
        gbps = r.gbps;
      }
      st.counters["GBps"] = gbps;
      table.add("MPI+CUDA", std::to_string(nodes) + "n", gbps);
    })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
  }
  return bench::run_and_print(argc, argv, table);
}
