// Ablation 1 (paper §III-D2): transfer/computation overlap on vs off.
// With overlap the runtime stages copies through page-locked buffers so the
// copy engine runs them concurrently with kernels; without it, CUDA
// serializes the (unpinned) copies after kernel execution.  The paper notes
// the mechanism is off by default because the extra staging is not always
// worth it — this ablation quantifies both sides: a transfer-heavy workload
// (no-cache matmul) gains, a compute-bound one barely moves.
#include "apps/matmul/matmul.hpp"
#include "bench_common.hpp"

namespace {

apps::matmul::Params params(bool transfer_heavy) {
  apps::matmul::Params p;
  p.nb = 8;
  p.bs_phys = 48;
  // Transfer-heavy: the paper's 1024 tiles; compute-bound: 4x the flops.
  p.bs_logical = transfer_heavy ? 1024.0 : 2048.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Ablation 1 — transfer/compute overlap", "GFLOPS");

  for (bool heavy : {true, false}) {
    for (bool overlap : {false, true}) {
      std::string series = std::string(heavy ? "transfer-heavy" : "compute-bound");
      std::string x = overlap ? "overlap" : "no-overlap";
      std::string name = "abl01/matmul/" + series + "/" + x;
      auto p = params(heavy);
      benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
        double gflops = 0;
        for (auto _ : st) {
          auto cfg = apps::multi_gpu_node(4, p.byte_scale());
          // Transfer pressure comes from the no-cache policy; the
          // compute-bound case uses write-back, where transfers are rare and
          // overlapping them buys little (the paper's "not always worth it").
          cfg.cache_policy = heavy ? "nocache" : "wb";
          cfg.scheduler = "dep";
          cfg.overlap = overlap;
          cfg.prefetch = overlap;  // prefetch needs overlap to pay off
          ompss::Env env(cfg);
          auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSeq);
          st.SetIterationTime(r.seconds);
          gflops = r.gflops;
        }
        st.counters["GFLOPS"] = gflops;
        table.add(series, x, gflops);
      })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_print(argc, argv, table);
}
