// res01 — price of resilience on the GPU cluster (docs/resilience.md).
//
// Three matmul runs on the same cluster shape answer two questions:
//
//  * What does the failure detector cost when nothing fails?  Compare
//    heartbeat-off (resilience machinery fully disabled) against
//    resilience=retry with the default heartbeat.  Pings are short AMs a few
//    times per lease, so the expected overhead is ~0.
//  * What does surviving a node failure cost?  Kill one slave mid-run with
//    resilience=retry: the run must complete with a verified checksum, and
//    the slowdown over the fault-free baseline is the recovery price (lost
//    work re-executed on the survivors plus regeneration of dead copies).
#include <cmath>
#include <cstdio>

#include "apps/matmul/matmul.hpp"
#include "apps/platform.hpp"
#include "bench_common.hpp"

namespace {

apps::matmul::Params params() {
  apps::matmul::Params p;
  p.nb = static_cast<int>(bench::env_knob("MATMUL_NB", 8));
  p.bs_phys = static_cast<std::size_t>(bench::env_knob("MATMUL_BS", 32));
  p.bs_logical = 12288.0 / p.nb;
  return p;
}

nanos::ClusterConfig base_config(int nodes, const apps::matmul::Params& p) {
  auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
  cfg.slave_to_slave = true;
  cfg.node.cache_policy = "wb";
  cfg.node.overlap = true;
  cfg.node.prefetch = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("res01 — Matmul under faults", "GFLOPS");
  const auto p = params();
  const int nodes = static_cast<int>(bench::env_knob("NODES", 4));

  // Reference run (no heartbeat, no faults): duration sets the kill time,
  // checksum is the ground truth the faulted run must reproduce.
  double ref_seconds = 0;
  double ref_checksum = 0;
  {
    auto cfg = base_config(nodes, p);
    cfg.resilience.heartbeat_period = 0;  // detector fully off
    ompss::Env env(cfg);
    auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSmp);
    ref_seconds = r.seconds;
    ref_checksum = r.checksum;
  }

  benchmark::RegisterBenchmark("res01/fault-free/heartbeat-off",
                               [=, &table](benchmark::State& st) {
    double gflops = 0;
    for (auto _ : st) {
      auto cfg = base_config(nodes, p);
      cfg.resilience.heartbeat_period = 0;
      ompss::Env env(cfg);
      auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSmp);
      st.SetIterationTime(r.seconds);
      gflops = r.gflops;
    }
    st.counters["GFLOPS"] = gflops;
    table.add("fault-free/heartbeat-off", std::to_string(nodes) + "n", gflops);
  })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("res01/fault-free/heartbeat-on",
                               [=, &table](benchmark::State& st) {
    double gflops = 0;
    for (auto _ : st) {
      auto cfg = base_config(nodes, p);
      cfg.resilience.mode = "retry";  // default heartbeat/lease
      ompss::Env env(cfg);
      auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSmp);
      st.SetIterationTime(r.seconds);
      gflops = r.gflops;
    }
    st.counters["GFLOPS"] = gflops;
    table.add("fault-free/heartbeat-on", std::to_string(nodes) + "n", gflops);
  })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

  benchmark::RegisterBenchmark("res01/node-kill/retry",
                               [=, &table](benchmark::State& st) {
    double gflops = 0;
    for (auto _ : st) {
      auto cfg = base_config(nodes, p);
      cfg.resilience.mode = "retry";
      simnet::FaultPlan::NodeKill kill;
      kill.node = nodes > 2 ? 2 : 1;
      kill.time = 0.5 * ref_seconds;  // mid-run, well past startup
      cfg.faults.kills.push_back(kill);
      ompss::Env env(cfg);
      auto r = apps::matmul::run_ompss(env, p, apps::matmul::InitMode::kSmp);
      if (std::abs(r.checksum - ref_checksum) >
          1e-6 * std::max(1.0, std::abs(ref_checksum))) {
        st.SkipWithError("checksum mismatch after recovery");
        return;
      }
      const common::Stats& s = env.cluster()->stats();
      st.counters["detected"] = static_cast<double>(s.count("res.failures_detected"));
      st.counters["retried"] = static_cast<double>(s.count("res.tasks_retried"));
      st.counters["regions_lost"] = static_cast<double>(s.count("res.regions_lost"));
      st.counters["regions_recovered"] =
          static_cast<double>(s.count("res.regions_recovered"));
      st.counters["recovery_vt_ms"] = 1e3 * s.sum("res.recovery_vt");
      st.SetIterationTime(r.seconds);
      gflops = r.gflops;
    }
    st.counters["GFLOPS"] = gflops;
    table.add("node-kill/retry", std::to_string(nodes) + "n", gflops);
  })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

  std::printf("reference: %.3f virtual ms, checksum %.6g\n", 1e3 * ref_seconds,
              ref_checksum);
  return bench::run_and_print(argc, argv, table);
}
