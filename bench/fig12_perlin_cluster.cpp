// Figure 12: Perlin noise on the GPU cluster — Flush/NoFlush, OmpSs vs
// MPI+CUDA.  Paper shape: the Flush variant's per-step image round trip
// cannot be overlapped, so it saturates; NoFlush scales.  OmpSs and MPI+CUDA
// face the same wall and end up comparable.
#include "apps/perlin/perlin.hpp"
#include "bench_common.hpp"

namespace {

apps::perlin::Params params(bool flush, int nodes) {
  apps::perlin::Params p;
  p.dim_phys = static_cast<int>(bench::env_knob("PERLIN_DIM", 512));
  p.dim_logical = 1024;
  p.bands = static_cast<int>(bench::env_knob("PERLIN_BANDS", 16));
  p.steps = static_cast<int>(bench::env_knob("PERLIN_STEPS", 10));
  p.flush = flush;
  (void)nodes;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 12 — Perlin noise, GPU cluster", "MPixels/s");

  for (bool flush : {true, false}) {
    for (int nodes : {1, 2, 4, 8}) {
      std::string series = std::string("ompss/") + (flush ? "flush" : "noflush");
      std::string name = "fig12/perlin/" + series + "/nodes:" + std::to_string(nodes);
      benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
        double mpps = 0;
        for (auto _ : st) {
          auto p = params(flush, nodes);
          auto cfg = apps::gpu_cluster(nodes, p.byte_scale());
          cfg.node.cache_policy = "wb";
          cfg.node.overlap = true;
          cfg.node.prefetch = true;
          cfg.presend = 2;
          cfg.rr_chunk = std::max(1, p.bands / nodes);  // spread first-touch bands
          ompss::Env env(cfg);
          auto r = apps::perlin::run_ompss(env, p);
          st.SetIterationTime(r.seconds);
          mpps = r.mpixels_per_s;
        }
        st.counters["MPixps"] = mpps;
        table.add(series, std::to_string(nodes) + "n", mpps);
      })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  for (bool flush : {true, false}) {
    for (int nodes : {1, 2, 4, 8}) {
      std::string series = std::string("mpicuda/") + (flush ? "flush" : "noflush");
      std::string name = "fig12/perlin/" + series + "/nodes:" + std::to_string(nodes);
      benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
        double mpps = 0;
        for (auto _ : st) {
          auto p = params(flush, nodes);
          vt::Clock clock;
          auto r = apps::perlin::run_mpicuda(p, clock, nodes, apps::qdr_infiniband(p.byte_scale()),
                                             apps::gtx480(p.byte_scale()));
          st.SetIterationTime(r.seconds);
          mpps = r.mpixels_per_s;
        }
        st.counters["MPixps"] = mpps;
        table.add(series, std::to_string(nodes) + "n", mpps);
      })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_print(argc, argv, table);
}
