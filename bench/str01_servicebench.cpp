// str01 — streaming service bench: continuous task ingestion with admission
// control, and the early-release payoff on chain-heavy request streams.
//
// A long-running service never sees its task graph whole: requests arrive
// forever, and the runtime must sustain them in bounded memory.  Two legs:
//
//  * service — `window` request slots, a stream of N requests.  Admission
//    control is taskwait_on(slot): a slot is reused only once its previous
//    request has responded, so the spawned-but-unretired window stays bounded
//    by the slot pool no matter how long the stream runs (asserted, not just
//    reported).
//  * chain — every request depends on the previous response (one slot, depth
//    N).  Each body bumps the payload, *releases* the slot — the response —
//    and then models post-response teardown (logging, serialization back to
//    the client) as virtual tail time.  With early_release=on the next
//    request proceeds at the release point and the tails overlap across the
//    worker pool; with it off the chain serializes body+tail.  This is the
//    CI-gated leg: on must beat off by OMPSS_BENCH_GATE percent (130 = 1.3×).
//
// Time is VIRTUAL (tails are clock sleeps), so the gate is stable on shared
// runners.  Knobs: OMPSS_BENCH_REQUESTS (stream length, default 2000),
// OMPSS_BENCH_WINDOW (slot pool, default 16), OMPSS_BENCH_GATE (percent).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ompss/ompss.hpp"

namespace {

constexpr std::size_t kSlotBytes = 64;
constexpr double kTailSeconds = 100e-6;  // post-response work per request

struct ServiceResult {
  double seconds = 0;      // virtual makespan of the whole stream
  long max_in_flight = 0;  // peak spawned-but-unfinished requests
};

nanos::RuntimeConfig service_config(bool early) {
  nanos::RuntimeConfig cfg;
  cfg.scheduler = "dep";
  cfg.smp_workers = 4;
  cfg.early_release = early;
  return cfg;
}

// One request body: produce the response into the slot, release it, then pay
// the post-response tail.  Touching the slot after release() would be the
// program error the race oracle flags; the tail only sleeps.
void request_body(ompss::Ctx& ctx, char* slot, std::atomic<long>* finished) {
  ++*reinterpret_cast<unsigned char*>(ctx.data(0));
  ctx.release(slot, kSlotBytes);
  ctx.runtime().clock().sleep_for(kTailSeconds);
  finished->fetch_add(1, std::memory_order_relaxed);
}

ServiceResult run_chain(bool early, long n) {
  std::vector<char> slot(kSlotBytes, 0);
  ompss::Env env(service_config(early));
  ServiceResult r;
  std::atomic<long> finished{0};
  env.run([&] {
    const double t0 = env.clock().now();
    char* p = slot.data();
    for (long i = 0; i < n; ++i) {
      ompss::task().inout(p, kSlotBytes).run(
          [p, &finished](ompss::Ctx& ctx) { request_body(ctx, p, &finished); });
    }
    ompss::taskwait_noflush();
    r.seconds = env.clock().now() - t0;
  });
  r.max_in_flight = n;  // the chain leg ingests the whole stream up front
  return r;
}

ServiceResult run_service(bool early, long n, long window) {
  std::vector<char> slots(static_cast<std::size_t>(window) * kSlotBytes, 0);
  ompss::Env env(service_config(early));
  ServiceResult r;
  std::atomic<long> finished{0};
  env.run([&] {
    const double t0 = env.clock().now();
    for (long i = 0; i < n; ++i) {
      char* p = slots.data() + static_cast<std::size_t>(i % window) * kSlotBytes;
      // Admission control: the slot pool is the memory budget — stall the
      // ingest loop until this slot's previous request has responded.
      if (i >= window) ompss::taskwait_on(p, kSlotBytes);
      r.max_in_flight =
          std::max(r.max_in_flight, i - finished.load(std::memory_order_relaxed));
      ompss::task().inout(p, kSlotBytes).run(
          [p, &finished](ompss::Ctx& ctx) { request_body(ctx, p, &finished); });
    }
    ompss::taskwait_noflush();
    r.seconds = env.clock().now() - t0;
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("str01 — streaming service", "kreq/s");
  const long n = std::max(100L, bench::env_knob("REQUESTS", 2000));
  const long window = std::max(2L, bench::env_knob("WINDOW", 16));

  std::map<std::string, double> chain_time;
  long service_peak = 0;

  for (const bool early : {false, true}) {
    const std::string mode = early ? "early-on" : "early-off";
    benchmark::RegisterBenchmark(
        ("str01/chain/" + mode).c_str(),
        [=, &table, &chain_time](benchmark::State& st) {
          ServiceResult r;
          for (auto _ : st) {
            r = run_chain(early, n);
            st.SetIterationTime(r.seconds);
          }
          const double kreq_s = static_cast<double>(n) / r.seconds / 1e3;
          st.counters["kreq/s"] = kreq_s;
          chain_time[mode] = r.seconds;
          table.add("chain/" + mode, std::to_string(n), kreq_s);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);

    benchmark::RegisterBenchmark(
        ("str01/service/" + mode).c_str(),
        [=, &table, &service_peak](benchmark::State& st) {
          ServiceResult r;
          for (auto _ : st) {
            r = run_service(early, n, window);
            st.SetIterationTime(r.seconds);
          }
          const double kreq_s = static_cast<double>(n) / r.seconds / 1e3;
          st.counters["kreq/s"] = kreq_s;
          st.counters["max_in_flight"] = static_cast<double>(r.max_in_flight);
          service_peak = std::max(service_peak, r.max_in_flight);
          table.add("service/" + mode, std::to_string(n), kreq_s);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }

  int rc = bench::run_and_print(argc, argv, table);

  // Bounded-memory assertion: the admission window, not the stream length,
  // bounds the in-flight population.  Early release can let the ingest loop
  // run ahead of the tails by about a worker pool's worth — allow that, but
  // nothing that scales with N.
  if (rc == 0 && service_peak > 0) {
    const long bound = 2 * window + 8;
    std::fprintf(stderr, "str01 window: peak in-flight %ld (bound %ld, stream %ld)\n",
                 service_peak, bound, n);
    if (service_peak > bound) {
      std::fprintf(stderr, "str01 window: FAILED — admission control is not bounding memory\n");
      rc = 1;
    }
  }

  // CI acceptance gate: OMPSS_BENCH_GATE is the minimum tolerated chain-leg
  // speedup of early_release=on over off, in percent (130 = 1.3×); unset or
  // 0 disables the check.
  const long gate = bench::env_knob("GATE", 0);
  if (rc == 0 && gate > 0 && chain_time.count("early-on") && chain_time.count("early-off")) {
    const double speedup = chain_time["early-off"] / chain_time["early-on"];
    std::fprintf(stderr, "str01 gate: chain-leg early-release speedup %.2fx (floor %.2fx)\n",
                 speedup, static_cast<double>(gate) / 100.0);
    if (speedup < static_cast<double>(gate) / 100.0) {
      std::fprintf(stderr, "str01 gate: FAILED — early release is not paying for itself\n");
      rc = 1;
    }
  }
  return rc;
}
