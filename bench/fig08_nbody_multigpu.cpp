// Figure 8: N-Body on the multi-GPU node.
// Sweep: GPUs {1,2,4} x cache {nocache, wt, wb}.
// Paper shape (singular, unlike the other apps): the no-cache policy
// *outperforms* the caching policies.  The all-to-all working set fills the
// GPUs' memory; write-back/write-through keep stale position buffers around,
// triggering the replacement machinery (eviction write-backs) on the
// critical path, while no-cache keeps device memory free.
//
// The paper's exact memory footprint is not derivable from the text (20000
// bodies are small); we reproduce the reported *pressure* by sizing the
// device-memory preset to ~1.25x one ping-pong generation of blocks, so
// caching policies run into replacement exactly as described.  See DESIGN.md.
#include "apps/nbody/nbody.hpp"
#include "bench_common.hpp"

namespace {

apps::nbody::Params params() {
  apps::nbody::Params p;
  p.n_phys = static_cast<int>(bench::env_knob("NBODY_N", 1024));
  p.n_logical = 20000.0;  // the paper's system
  p.nb = static_cast<int>(bench::env_knob("NBODY_NB", 8));
  p.iters = static_cast<int>(bench::env_knob("NBODY_ITERS", 10));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureTable table("Fig. 8 — N-Body, multi-GPU node", "GFLOPS");
  auto p = params();

  for (const char* cache : {"nocache", "wt", "wb"}) {
    for (int gpus : {1, 2, 4}) {
      std::string series = cache;
      std::string name = "fig08/nbody/" + series + "/gpus:" + std::to_string(gpus);
      benchmark::RegisterBenchmark(name.c_str(), [=, &table](benchmark::State& st) {
        double gflops = 0;
        for (auto _ : st) {
          auto cfg = apps::multi_gpu_node(gpus, p.byte_scale());
          cfg.cache_policy = cache;
          // Memory pressure: capacity ~1 generation of position blocks +
          // velocities (see header comment).
          std::size_t generation = p.block_bytes() * static_cast<std::size_t>(2 * p.nb);
          for (auto& g : cfg.gpus)
            g.memory_bytes = static_cast<std::size_t>(1.0 * static_cast<double>(generation));
          ompss::Env env(cfg);
          auto r = apps::nbody::run_ompss(env, p);
          st.SetIterationTime(r.seconds);
          gflops = r.gflops;
        }
        st.counters["GFLOPS"] = gflops;
        table.add(series, std::to_string(gpus) + "gpu", gflops);
      })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return bench::run_and_print(argc, argv, table);
}
