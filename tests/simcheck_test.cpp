// simcheck detection tests: the schedule-space explorer must (a) cover the
// 3-node commit/vouch/stage scenario broadly and cleanly, (b) catch each
// seeded protocol mutant with a minimized, replayable counterexample within
// a CI-sized budget, and (c) reproduce a recorded schedule id
// bit-deterministically.  See docs/simcheck.md.
#include <gtest/gtest.h>

#include <string>

#include "nanos/verify/simcheck.hpp"

namespace {

using nanos::verify::Counterexample;
using nanos::verify::ExploreReport;
using nanos::verify::ScheduleResult;
using nanos::verify::SimOptions;

bool has_violation(const ScheduleResult& r, const std::string& kind) {
  for (const auto& v : r.violations)
    if (v.kind == kind) return true;
  return false;
}

// Replays the counterexample's schedule id under the same options and checks
// the hunt finds it and both executions hash identically.
void expect_replayable(const std::string& scenario, const Counterexample& cx,
                       const SimOptions& opts) {
  auto rr = nanos::verify::replay(scenario, cx.result.schedule_id, opts);
  ASSERT_TRUE(rr.has_value()) << "schedule id not reached by the replay hunt";
  EXPECT_TRUE(rr->deterministic);
  EXPECT_EQ(rr->first.trace_hash, rr->second.trace_hash);
  EXPECT_EQ(rr->first.trace_hash, cx.result.trace_hash);
  EXPECT_EQ(rr->first.violations.size(), cx.result.violations.size());
}

// The unmutated protocol must be violation-free across a broad sweep of the
// commit/vouch/stage schedule space.  SIMCHECK_BUDGET (the CI smoke knob)
// scales the sweep; the default explores ~1500 schedules in a few seconds.
TEST(SimcheckTest, CleanCommit3ExploresBroadlyAndCleanly) {
  SimOptions opts = SimOptions::from_env();
  ExploreReport rep = nanos::verify::explore("commit3", opts);
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_GE(rep.distinct, 1000) << rep.summary();
  EXPECT_EQ(rep.runs, rep.dfs_runs + rep.sampled_runs);
}

TEST(SimcheckTest, CleanKillScenarioToleratesNodeDeath) {
  SimOptions opts;
  opts.max_schedules = 80;
  ExploreReport rep = nanos::verify::explore("kill", opts);
  EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(SimcheckTest, DropVouchMutantCaught) {
  SimOptions opts;
  opts.max_schedules = 60;
  opts.max_steps = 1024;
  opts.mutation.drop_first_vouch = true;
  ExploreReport rep = nanos::verify::explore("commit3", opts);
  ASSERT_FALSE(rep.counterexamples.empty()) << rep.summary();
  const Counterexample& cx = rep.counterexamples.front();
  EXPECT_TRUE(has_violation(cx.result, "termination"));
  expect_replayable("commit3", cx, opts);
}

TEST(SimcheckTest, DoubleCommitMutantCaught) {
  SimOptions opts;
  opts.max_schedules = 60;
  opts.mutation.double_first_commit = true;
  ExploreReport rep = nanos::verify::explore("commit3", opts);
  ASSERT_FALSE(rep.counterexamples.empty()) << rep.summary();
  const Counterexample& cx = rep.counterexamples.front();
  EXPECT_TRUE(has_violation(cx.result, "commit-exactly-once"));
  // Minimization may not beat the discovery run, but it must never *add*
  // non-default choices.
  int nondefault_min = 0, nondefault_orig = 0;
  for (int c : cx.result.choices) nondefault_min += c != 0;
  for (int c : cx.original_choices) nondefault_orig += c != 0;
  EXPECT_LE(nondefault_min, nondefault_orig);
  expect_replayable("commit3", cx, opts);
}

TEST(SimcheckTest, SuppressedReplayMutantCaught) {
  SimOptions opts;
  // Every schedule under this mutant runs to the step cap, so keep both
  // budgets tight: the counterexample appears on the first run.
  opts.max_schedules = 8;
  opts.max_steps = 1024;
  opts.mutation.suppress_first_replay = true;
  opts.mutation.drop_first_done = true;
  ExploreReport rep = nanos::verify::explore("replaydrop", opts);
  ASSERT_FALSE(rep.counterexamples.empty()) << rep.summary();
  const Counterexample& cx = rep.counterexamples.front();
  EXPECT_TRUE(has_violation(cx.result, "termination"));
  expect_replayable("replaydrop", cx, opts);
}

// The drop alone is healed by the overdue-completion replay path: coverage
// that the detector reacts to the *suppression*, not to the drop itself.
TEST(SimcheckTest, DroppedDoneAloneIsHealedByReplay) {
  SimOptions opts;
  opts.max_schedules = 40;
  opts.mutation.drop_first_done = true;
  ExploreReport rep = nanos::verify::explore("replaydrop", opts);
  EXPECT_TRUE(rep.clean()) << rep.summary();
}

// A recorded clean schedule id replays to the identical trace hash twice in
// a row — the bit-determinism contract counterexample ids rely on.
TEST(SimcheckTest, CleanScheduleReplaysBitDeterministically) {
  SimOptions opts;
  opts.max_schedules = 40;
  ScheduleResult r = nanos::verify::run_schedule("commit3", {}, opts);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(r.violations.empty());
  auto rr = nanos::verify::replay("commit3", r.schedule_id, opts);
  ASSERT_TRUE(rr.has_value());
  EXPECT_TRUE(rr->deterministic);
  EXPECT_EQ(rr->first.trace_hash, r.trace_hash);
  EXPECT_EQ(rr->second.trace_hash, r.trace_hash);
}

}  // namespace
