// Coherence-layer tests: directory versioning, the three cache policies,
// eviction with write-back, flushes, and affinity scoring.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "nanos/coherence.hpp"
#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace {

using nanos::Access;
using nanos::CachePolicy;
using nanos::CoherenceManager;
using nanos::Task;
using nanos::TaskDesc;

constexpr int kHost = CoherenceManager::kHostSpace;

class CoherenceTest : public ::testing::Test {
protected:
  CoherenceTest() = default;

  void init(CachePolicy policy, int gpus = 2, std::size_t dev_mem = 1u << 20,
            bool overlap = false) {
    simcuda::DeviceProps props;
    props.memory_bytes = dev_mem;
    props.pcie_bandwidth = 1e9;
    props.copy_overhead = 0;
    props.kernel_launch_overhead = 0;
    platform_ = std::make_unique<simcuda::Platform>(
        clock_, std::vector<simcuda::DeviceProps>(static_cast<std::size_t>(gpus), props));
    coh_ = std::make_unique<CoherenceManager>(clock_, *platform_, policy, overlap, 8e9, stats_);
    // taskcheck: every protocol operation in these tests is self-checking —
    // with no sink set, an invariant violation throws at the walk site.
    coh_->set_verify(nanos::verify::VerifyMode::kAll, nullptr);
    guard_ = std::make_unique<vt::AttachGuard>(clock_, "main");
  }

  Task* make_task(std::vector<Access> accesses) {
    TaskDesc d;
    d.accesses = std::move(accesses);
    tasks_.push_back(std::make_unique<Task>(next_id_++, std::move(d), clock_));
    return tasks_.back().get();
  }

  // Runs one task's data protocol on `space` and lets `mutate` stand in for
  // the kernel body.
  std::vector<void*> run(Task* t, int space, const std::function<void(std::vector<void*>&)>& body = nullptr) {
    auto ptrs = coh_->acquire(*t, space);
    coh_->sync_transfers(space);
    if (body) body(ptrs);
    coh_->release(*t, space);
    return ptrs;
  }

  vt::Clock clock_;
  common::Stats stats_;
  std::unique_ptr<simcuda::Platform> platform_;
  std::unique_ptr<CoherenceManager> coh_;
  std::unique_ptr<vt::AttachGuard> guard_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::uint64_t next_id_ = 1;
};

TEST_F(CoherenceTest, HostAccessReturnsOriginalPointers) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(256, 1.0f);
  Task* t = make_task({Access::inout(a.data(), a.size() * sizeof(float))});
  auto ptrs = run(t, kHost);
  EXPECT_EQ(ptrs[0], a.data());
}

TEST_F(CoherenceTest, GpuAcquireCopiesInputData) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(256);
  std::iota(a.begin(), a.end(), 0.0f);
  Task* t = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  auto ptrs = run(t, 1);
  ASSERT_NE(ptrs[0], static_cast<void*>(a.data()));  // device copy
  EXPECT_TRUE(platform_->device(0).owns(ptrs[0]));
  EXPECT_EQ(std::memcmp(ptrs[0], a.data(), a.size() * sizeof(float)), 0);
}

TEST_F(CoherenceTest, WriteBackKeepsDataOnGpuUntilFlush) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(256, 0.0f);
  Task* w = make_task({Access::inout(a.data(), a.size() * sizeof(float))});
  run(w, 1, [](std::vector<void*>& p) {
    auto* f = static_cast<float*>(p[0]);
    for (int i = 0; i < 256; ++i) f[i] = 7.0f;
  });
  // Host copy is stale under write-back…
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  EXPECT_EQ(stats_.count("coh.d2h"), 0u);
  // …until a flush brings it home.
  coh_->flush_all();
  EXPECT_FLOAT_EQ(a[0], 7.0f);
  EXPECT_EQ(stats_.count("coh.d2h"), 1u);
}

TEST_F(CoherenceTest, WriteThroughPropagatesOnRelease) {
  init(CachePolicy::kWriteThrough);
  std::vector<float> a(256, 0.0f);
  Task* w = make_task({Access::inout(a.data(), a.size() * sizeof(float))});
  run(w, 1, [](std::vector<void*>& p) { static_cast<float*>(p[0])[0] = 3.5f; });
  EXPECT_FLOAT_EQ(a[0], 3.5f);  // already home, no flush needed
  EXPECT_EQ(stats_.count("coh.d2h"), 1u);
}

TEST_F(CoherenceTest, WriteThroughKeepsReadCopyForReuse) {
  init(CachePolicy::kWriteThrough);
  std::vector<float> a(256, 1.0f);
  Task* r1 = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  Task* r2 = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  run(r1, 1);
  run(r2, 1);
  EXPECT_EQ(stats_.count("coh.h2d"), 1u);  // second read hits the cache
  EXPECT_EQ(stats_.count("coh.hits"), 1u);
}

TEST_F(CoherenceTest, NoCacheMovesDataEveryTime) {
  init(CachePolicy::kNoCache);
  std::vector<float> a(256, 1.0f);
  Task* r1 = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  Task* r2 = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  run(r1, 1);
  run(r2, 1);
  EXPECT_EQ(stats_.count("coh.h2d"), 2u);  // no reuse
  // And device memory is returned after each task.
  EXPECT_EQ(platform_->device(0).free_bytes(), platform_->device(0).capacity());
}

TEST_F(CoherenceTest, NoCacheWritebackHappensImmediately) {
  init(CachePolicy::kNoCache);
  std::vector<float> a(16, 0.0f);
  Task* w = make_task({Access::out(a.data(), a.size() * sizeof(float))});
  run(w, 1, [](std::vector<void*>& p) { static_cast<float*>(p[0])[3] = 9.0f; });
  EXPECT_FLOAT_EQ(a[3], 9.0f);
}

TEST_F(CoherenceTest, GpuToGpuGoesThroughHost) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(64, 0.0f);
  Task* w = make_task({Access::out(a.data(), a.size() * sizeof(float))});
  run(w, 1, [](std::vector<void*>& p) { static_cast<float*>(p[0])[0] = 5.0f; });
  Task* r = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  auto ptrs = run(r, 2);
  // The read on GPU 1 staged via the host: one d2h (writeback) + one h2d.
  EXPECT_EQ(stats_.count("coh.d2h"), 1u);
  EXPECT_GE(stats_.count("coh.h2d"), 1u);
  EXPECT_FLOAT_EQ(static_cast<float*>(ptrs[0])[0], 5.0f);
  EXPECT_FLOAT_EQ(a[0], 5.0f);  // the staging also refreshed the host
}

TEST_F(CoherenceTest, HostWriteInvalidatesGpuCopies) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(64, 1.0f);
  Task* r = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  run(r, 1);
  // An SMP task rewrites the data on the host.
  Task* w = make_task({Access::inout(a.data(), a.size() * sizeof(float))});
  run(w, kHost, [](std::vector<void*>& p) { static_cast<float*>(p[0])[0] = 2.0f; });
  // The GPU copy is now stale: a new GPU read must transfer again.
  Task* r2 = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  auto ptrs = run(r2, 1);
  EXPECT_EQ(stats_.count("coh.h2d"), 2u);
  EXPECT_FLOAT_EQ(static_cast<float*>(ptrs[0])[0], 2.0f);
}

TEST_F(CoherenceTest, SmpReadAfterGpuWriteFetchesToHost) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(64, 0.0f);
  Task* w = make_task({Access::out(a.data(), a.size() * sizeof(float))});
  run(w, 1, [](std::vector<void*>& p) { static_cast<float*>(p[0])[1] = 4.0f; });
  Task* r = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  run(r, kHost);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
}

TEST_F(CoherenceTest, EvictionWritesBackDirtyVictim) {
  // Device holds 1 MiB; two 384 KiB regions fit, the third forces eviction.
  init(CachePolicy::kWriteBack, /*gpus=*/1, /*dev_mem=*/1u << 20);
  constexpr std::size_t kN = (384u << 10) / sizeof(float);
  std::vector<float> a(kN, 0.0f), b(kN, 0.0f), c(kN, 0.0f);
  auto write_task = [&](std::vector<float>& v, float val) {
    Task* t = make_task({Access::inout(v.data(), v.size() * sizeof(float))});
    run(t, 1, [val](std::vector<void*>& p) { static_cast<float*>(p[0])[0] = val; });
  };
  write_task(a, 1.0f);
  write_task(b, 2.0f);
  EXPECT_EQ(stats_.count("coh.evictions"), 0u);
  write_task(c, 3.0f);  // evicts `a` (LRU), writing it back first
  EXPECT_GE(stats_.count("coh.evictions"), 1u);
  EXPECT_FLOAT_EQ(a[0], 1.0f);  // the dirty victim reached the host
  // And `a` can still be read back correctly later.
  Task* r = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  auto ptrs = run(r, 1);
  EXPECT_FLOAT_EQ(static_cast<float*>(ptrs[0])[0], 1.0f);
}

TEST_F(CoherenceTest, OversizedRegionThrows) {
  init(CachePolicy::kWriteBack, /*gpus=*/1, /*dev_mem=*/1u << 16);
  std::vector<float> big((1u << 18) / sizeof(float));
  Task* t = make_task({Access::in(big.data(), big.size() * sizeof(float))});
  EXPECT_THROW(coh_->acquire(*t, 1), std::runtime_error);
  // Nothing was transient: the failure is immediate, never a retry loop.
  EXPECT_EQ(stats_.count("coh.evict_retries"), 0u);
}

TEST_F(CoherenceTest, OomWaitsOutTransientlyPinnedVictim) {
  // 64 KiB device; two 40 KiB regions can never coexist.  A concurrent task
  // holds the first region pinned for a while — the second acquire must
  // wait-and-rescan (not hard-OOM) and succeed once the pin drops.
  init(CachePolicy::kWriteBack, /*gpus=*/1, /*dev_mem=*/1u << 16);
  constexpr std::size_t kN = (40u << 10) / sizeof(float);
  std::vector<float> a(kN, 0.0f), b(kN, 0.0f);
  vt::Flag held(clock_);
  Task* ta = make_task({Access::out(a.data(), a.size() * sizeof(float))});
  vt::Thread holder(clock_, "holder", [&] {
    auto ptrs = coh_->acquire(*ta, 1);
    static_cast<float*>(ptrs[0])[0] = 7.0f;
    held.set();
    // Keep the pin for many backoff periods of virtual time, then let go.
    clock_.sleep_for(1e-4);
    coh_->release(*ta, 1);
  });
  held.wait();
  Task* tb = make_task({Access::out(b.data(), b.size() * sizeof(float))});
  auto ptrs = coh_->acquire(*tb, 1);  // spins in the bounded retry loop
  holder.join();
  ASSERT_NE(ptrs[0], static_cast<void*>(b.data()));
  EXPECT_TRUE(platform_->device(0).owns(ptrs[0]));
  EXPECT_GE(stats_.count("coh.evict_retries"), 1u);
  EXPECT_GE(stats_.count("coh.evictions"), 1u);
  // The dirty victim was written back before its slot was reused.
  EXPECT_FLOAT_EQ(a[0], 7.0f);
  coh_->release(*tb, 1);
}

TEST_F(CoherenceTest, OomGivesUpAfterBoundedRetriesWhenPinNeverDrops) {
  init(CachePolicy::kWriteBack, /*gpus=*/1, /*dev_mem=*/1u << 16);
  constexpr std::size_t kN = (40u << 10) / sizeof(float);
  std::vector<float> a(kN, 0.0f), b(kN, 0.0f);
  vt::Flag held(clock_), done(clock_);
  Task* ta = make_task({Access::out(a.data(), a.size() * sizeof(float))});
  vt::Thread holder(clock_, "holder", [&] {
    coh_->acquire(*ta, 1);
    held.set();
    done.wait();  // never releases while the other acquire is trying
    coh_->release(*ta, 1);
  });
  held.wait();
  Task* tb = make_task({Access::out(b.data(), b.size() * sizeof(float))});
  std::string msg;
  try {
    coh_->acquire(*tb, 1);
  } catch (const std::runtime_error& e) {
    msg = e.what();
  }
  done.set();
  holder.join();
  ASSERT_FALSE(msg.empty()) << "acquire should give up once the retry budget is spent";
  EXPECT_NE(msg.find("eviction retries"), std::string::npos) << msg;
  EXPECT_GE(stats_.count("coh.evict_retries"), 64u);
}

TEST_F(CoherenceTest, SelfPinnedWorkingSetFailsFastNotAfterRetries) {
  // One task whose own accesses exceed device memory: the first two regions
  // fit and get pinned, the third finds only victims pinned by the acquiring
  // task itself.  Those pins can never drop while this acquire waits, so the
  // failure must be an immediate hard OOM naming the self-pin cause — not 64
  // futile wait-and-rescan rounds ending in the generic retry message.
  init(CachePolicy::kWriteBack, /*gpus=*/1, /*dev_mem=*/1u << 16);
  constexpr std::size_t kN = (24u << 10) / sizeof(float);
  std::vector<float> a(kN), b(kN), c(kN);
  Task* t = make_task({Access::out(a.data(), a.size() * sizeof(float)),
                       Access::out(b.data(), b.size() * sizeof(float)),
                       Access::out(c.data(), c.size() * sizeof(float))});
  std::string msg;
  try {
    coh_->acquire(*t, 1);
  } catch (const std::runtime_error& e) {
    msg = e.what();
  }
  ASSERT_FALSE(msg.empty()) << "an over-device-memory working set must throw";
  EXPECT_NE(msg.find("pinned by the acquiring task itself"), std::string::npos) << msg;
  EXPECT_EQ(stats_.count("coh.evict_retries"), 0u);
}

TEST_F(CoherenceTest, PartialOverlapRejected) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(128);
  Task* t1 = make_task({Access::in(a.data(), 64 * sizeof(float))});
  run(t1, 1);
  Task* t2 = make_task({Access::in(a.data() + 32, 64 * sizeof(float))});
  EXPECT_THROW(coh_->acquire(*t2, 1), std::logic_error);
}

TEST_F(CoherenceTest, RegionReuseWithDifferentSizeRejected) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(128);
  Task* t1 = make_task({Access::in(a.data(), 64 * sizeof(float))});
  run(t1, 1);
  Task* t2 = make_task({Access::in(a.data(), 128 * sizeof(float))});
  EXPECT_THROW(coh_->acquire(*t2, 1), std::logic_error);
}

TEST_F(CoherenceTest, AffinityBytesTracksResidency) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(256), b(256);
  Task* ra = make_task({Access::in(a.data(), a.size() * sizeof(float))});
  run(ra, 1);  // a now on GPU 0 (space 1)
  Task* t = make_task({Access::in(a.data(), a.size() * sizeof(float)),
                       Access::in(b.data(), b.size() * sizeof(float))});
  EXPECT_DOUBLE_EQ(coh_->affinity_bytes(*t, 1), 256 * sizeof(float));  // only a
  EXPECT_DOUBLE_EQ(coh_->affinity_bytes(*t, 2), 0.0);
  EXPECT_DOUBLE_EQ(coh_->affinity_bytes(*t, kHost), 2 * 256 * sizeof(float));
}

TEST_F(CoherenceTest, FlushRegionBringsOnlyThatRegionHome) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(64, 0.0f), b(64, 0.0f);
  auto write_on_gpu = [&](std::vector<float>& v, float val) {
    Task* t = make_task({Access::out(v.data(), v.size() * sizeof(float))});
    run(t, 1, [val](std::vector<void*>& p) { static_cast<float*>(p[0])[0] = val; });
  };
  write_on_gpu(a, 1.0f);
  write_on_gpu(b, 2.0f);
  coh_->flush_region(common::Region(a.data(), a.size() * sizeof(float)));
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(b[0], 0.0f);  // untouched
}

TEST_F(CoherenceTest, OverlapModeProducesSameData) {
  init(CachePolicy::kWriteBack, /*gpus=*/1, /*dev_mem=*/1u << 20, /*overlap=*/true);
  std::vector<float> a(256);
  std::iota(a.begin(), a.end(), 0.0f);
  Task* t = make_task({Access::inout(a.data(), a.size() * sizeof(float))});
  run(t, 1, [](std::vector<void*>& p) {
    auto* f = static_cast<float*>(p[0]);
    for (int i = 0; i < 256; ++i) f[i] += 1.0f;
  });
  coh_->flush_all();
  for (int i = 0; i < 256; ++i) ASSERT_FLOAT_EQ(a[static_cast<std::size_t>(i)], i + 1.0f);
  // All pinned staging buffers were freed.
  EXPECT_EQ(platform_->pinned_bytes(), 0u);
}

TEST_F(CoherenceTest, DependenceOnlyAccessIsUntouched) {
  init(CachePolicy::kWriteBack);
  std::vector<float> a(64, 1.0f);
  nanos::Access dep_only;
  dep_only.region = common::Region(a.data(), a.size() * sizeof(float));
  dep_only.mode = nanos::AccessMode::kInout;
  dep_only.copy = false;
  Task* t = make_task({dep_only});
  auto ptrs = run(t, 1);
  EXPECT_EQ(ptrs[0], static_cast<void*>(a.data()));  // raw pointer, no copy
  EXPECT_EQ(stats_.count("coh.h2d"), 0u);
}

}  // namespace
