// Failure injection: task bodies that throw must not kill workers or device
// engines; the first error surfaces at the next taskwait and the runtime
// (and the rest of the task graph) keeps working.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "nanos/cluster.hpp"
#include "nanos/runtime.hpp"

namespace {

using nanos::Access;
using nanos::DeviceKind;
using nanos::TaskDesc;

nanos::RuntimeConfig small_runtime(int gpus) {
  nanos::RuntimeConfig cfg;
  cfg.smp_workers = 2;
  // taskcheck rides along with the fault tests: injected failures must not
  // corrupt the schedule's happens-before or the caches' coherence state.
  cfg.verify = "all";
  simcuda::DeviceProps props;
  props.memory_bytes = 1u << 20;
  cfg.gpus.assign(static_cast<std::size_t>(gpus), props);
  return cfg;
}

TaskDesc throwing_task(DeviceKind kind) {
  TaskDesc d;
  d.device = kind;
  d.label = "boom";
  d.fn = [](nanos::TaskContext&) { throw std::runtime_error("injected failure"); };
  return d;
}

TEST(FailureTest, SmpTaskThrowSurfacesAtTaskwait) {
  vt::Clock clock;
  nanos::Runtime rt(clock, small_runtime(0));
  bool caught = false;
  vt::Thread driver(clock, "app", [&] {
    rt.spawn(throwing_task(DeviceKind::kSmp));
    try {
      rt.taskwait();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "injected failure";
    }
  });
  driver.join();
  EXPECT_TRUE(caught);
}

TEST(FailureTest, GpuKernelThrowDoesNotKillEngine) {
  vt::Clock clock;
  nanos::Runtime rt(clock, small_runtime(1));
  std::vector<float> a(32, 0.0f);
  bool caught = false;
  vt::Thread driver(clock, "app", [&] {
    rt.spawn(throwing_task(DeviceKind::kCuda));
    try {
      rt.taskwait();
    } catch (const std::runtime_error&) {
      caught = true;
    }
    // The engine survived: subsequent kernels still execute.
    TaskDesc ok;
    ok.device = DeviceKind::kCuda;
    ok.accesses = {Access::inout(a.data(), a.size() * sizeof(float))};
    ok.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 9.0f; };
    rt.spawn(std::move(ok));
    rt.taskwait();
  });
  driver.join();
  EXPECT_TRUE(caught);
  EXPECT_FLOAT_EQ(a[0], 9.0f);
  EXPECT_EQ(rt.stats().count("tasks.failed"), 1u);
}

TEST(FailureTest, OtherTasksStillCompleteAroundFailure) {
  vt::Clock clock;
  nanos::Runtime rt(clock, small_runtime(1));
  std::vector<int> done(10, 0);
  int errors = 0;
  vt::Thread driver(clock, "app", [&] {
    for (int i = 0; i < 10; ++i) {
      if (i == 4) {
        rt.spawn(throwing_task(DeviceKind::kSmp));
        continue;
      }
      TaskDesc d;
      d.device = (i % 2 == 0) ? DeviceKind::kSmp : DeviceKind::kCuda;
      d.accesses = {Access::inout(&done[static_cast<std::size_t>(i)], sizeof(int))};
      d.fn = [](nanos::TaskContext& c) { *c.data_as<int>(0) = 1; };
      rt.spawn(std::move(d));
    }
    try {
      rt.taskwait();
    } catch (const std::runtime_error&) {
      errors++;
    }
    // Error consumed: a second taskwait is clean.
    rt.taskwait();
  });
  driver.join();
  EXPECT_EQ(errors, 1);
  int completed = 0;
  for (int v : done) completed += v;
  EXPECT_EQ(completed, 9);
}

TEST(FailureTest, FirstOfManyErrorsWins) {
  vt::Clock clock;
  nanos::Runtime rt(clock, small_runtime(0));
  int caught = 0;
  vt::Thread driver(clock, "app", [&] {
    for (int i = 0; i < 5; ++i) rt.spawn(throwing_task(DeviceKind::kSmp));
    try {
      rt.taskwait();
    } catch (const std::runtime_error&) {
      caught++;
    }
  });
  driver.join();
  EXPECT_EQ(caught, 1);
  EXPECT_EQ(rt.stats().count("tasks.failed"), 5u);
}

TEST(FailureTest, DeviceKernelAbortSurfacesAtTaskwait) {
  vt::Clock clock;
  nanos::Runtime rt(clock, small_runtime(1));
  simcuda::DeviceFaults f;
  f.abort_kernel = 0;  // first kernel launch aborts
  rt.gpu_platform().device(0).inject_faults(f);
  std::vector<float> a(32, 0.0f);
  bool caught = false;
  vt::Thread driver(clock, "app", [&] {
    TaskDesc d;
    d.device = DeviceKind::kCuda;
    d.accesses = {Access::inout(a.data(), a.size() * sizeof(float))};
    d.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; };
    rt.spawn(std::move(d));
    try {
      rt.taskwait();
    } catch (const simcuda::DeviceError&) {
      caught = true;
    }
    // The engine survived the abort: later kernels still execute.
    TaskDesc ok;
    ok.device = DeviceKind::kCuda;
    ok.accesses = {Access::inout(a.data(), a.size() * sizeof(float))};
    ok.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[1] = 7.0f; };
    rt.spawn(std::move(ok));
    rt.taskwait();
  });
  driver.join();
  EXPECT_TRUE(caught);
  EXPECT_FLOAT_EQ(a[1], 7.0f);
}

TEST(FailureTest, DeviceFailedCopySurfacesAtTaskwait) {
  vt::Clock clock;
  nanos::Runtime rt(clock, small_runtime(1));
  simcuda::DeviceFaults f;
  f.fail_copy = 0;  // first h2d/d2h copy fails
  rt.gpu_platform().device(0).inject_faults(f);
  std::vector<float> a(32, 2.0f);
  bool caught = false;
  vt::Thread driver(clock, "app", [&] {
    TaskDesc d;
    d.device = DeviceKind::kCuda;
    d.accesses = {Access::inout(a.data(), a.size() * sizeof(float))};
    d.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] += 1.0f; };
    rt.spawn(std::move(d));
    try {
      rt.taskwait();
    } catch (const simcuda::DeviceError&) {
      caught = true;
    }
  });
  driver.join();
  EXPECT_TRUE(caught);
}

TEST(FailureTest, RemoteTaskThrowSurfacesAtClusterTaskwait) {
  vt::Clock clock;
  nanos::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node_scheduler = "bf";
  cfg.rr_chunk = 1;
  cfg.node = small_runtime(1);
  nanos::ClusterRuntime rt(clock, cfg);
  bool caught = false;
  vt::Thread driver(clock, "app", [&] {
    rt.spawn(throwing_task(DeviceKind::kSmp));  // node 0
    rt.spawn(throwing_task(DeviceKind::kSmp));  // node 1 (remote)
    try {
      rt.taskwait();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  driver.join();
  EXPECT_TRUE(caught);
}

TEST(FailureTest, RemoteDeviceFaultSurfacesAtClusterTaskwait) {
  vt::Clock clock;
  nanos::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node_scheduler = "bf";
  cfg.rr_chunk = 1;
  cfg.node = small_runtime(1);
  nanos::ClusterRuntime rt(clock, cfg);
  simcuda::DeviceFaults f;
  f.abort_kernel = 0;  // node 1's first kernel launch aborts
  rt.node_runtime(1).gpu_platform().device(0).inject_faults(f);
  std::vector<float> a(32, 0.0f), b(32, 0.0f);
  bool caught = false;
  vt::Thread driver(clock, "app", [&] {
    TaskDesc d0;  // node 0: clean
    d0.device = DeviceKind::kCuda;
    d0.accesses = {Access::inout(a.data(), a.size() * sizeof(float))};
    d0.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; };
    rt.spawn(std::move(d0));
    TaskDesc d1;  // node 1: kernel aborts on the remote device
    d1.device = DeviceKind::kCuda;
    d1.accesses = {Access::inout(b.data(), b.size() * sizeof(float))};
    d1.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; };
    rt.spawn(std::move(d1));
    try {
      rt.taskwait();
    } catch (const std::runtime_error&) {
      caught = true;  // the remote device fault reached the master
    }
  });
  driver.join();
  EXPECT_TRUE(caught);
}

}  // namespace
