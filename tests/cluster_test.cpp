// Cluster-layer tests: remote execution, data staging (master-to-slave and
// slave-to-slave), write-back at node level, presend, taskwait flush, and
// remote subtask spawning.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "nanos/cluster.hpp"
#include "vt/clock.hpp"

namespace {

using nanos::Access;
using nanos::ClusterConfig;
using nanos::ClusterRuntime;
using nanos::DeviceKind;
using nanos::TaskDesc;

ClusterConfig base_cluster(int nodes, const std::string& placement = "affinity") {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node_scheduler = placement;
  cfg.rr_chunk = 1;  // these tests rely on strict per-task alternation
  cfg.segment_bytes = 32u << 20;
  cfg.node.smp_workers = 2;
  cfg.node.scheduler = "dep";
  cfg.node.cache_policy = "wb";
  // taskcheck: run the race oracle and coherence invariant walks under every
  // cluster test — a clean suite certifies the protocol, not just outputs.
  cfg.node.verify = "all";
  simcuda::DeviceProps props;
  props.memory_bytes = 8u << 20;
  props.gflops = 1000.0;
  props.pcie_bandwidth = 1e9;
  props.copy_overhead = 0;
  props.kernel_launch_overhead = 0;
  cfg.node.gpus.assign(1, props);
  cfg.link.bandwidth = 1e9;
  return cfg;
}

void run_app(ClusterConfig cfg, const std::function<void(ClusterRuntime&)>& body) {
  vt::Clock clock;
  ClusterRuntime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "app", [&] { body(rt); });
  driver.join();
}

TaskDesc gpu_task(std::vector<Access> acc, nanos::TaskFn fn, double flops = 1e6) {
  TaskDesc d;
  d.device = DeviceKind::kCuda;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.cost.flops = flops;
  return d;
}

TaskDesc smp_task(std::vector<Access> acc, nanos::TaskFn fn, double flops = 0) {
  TaskDesc d;
  d.device = DeviceKind::kSmp;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.cost.flops = flops;
  return d;
}

TEST(ClusterTest, SingleNodeBehavesLikeLocalRuntime) {
  std::vector<float> a(256, 1.0f);
  run_app(base_cluster(1), [&](ClusterRuntime& rt) {
    rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& c) {
                        auto* f = c.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                      }));
    rt.taskwait();
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 2.0f);
}

TEST(ClusterTest, RemoteTaskExecutesAndResultsComeHome) {
  std::vector<float> a(256);
  std::iota(a.begin(), a.end(), 0.0f);
  run_app(base_cluster(2, "bf"), [&](ClusterRuntime& rt) {
    // Round-robin placement: spawn two tasks so one lands on node 1.
    std::vector<float> b(256, 0.0f);
    int nodes_seen[2] = {0, 0};
    std::mutex mu;
    auto mark = [&](nanos::TaskContext& c) {
      std::lock_guard<std::mutex> lk(mu);
      nodes_seen[c.node()]++;
    };
    rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                      [&](nanos::TaskContext& c) {
                        mark(c);
                        auto* f = c.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] *= 2.0f;
                      }));
    rt.spawn(gpu_task({Access::inout(b.data(), b.size() * sizeof(float))},
                      [&](nanos::TaskContext& c) {
                        mark(c);
                        auto* f = c.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] = 1.0f;
                      }));
    rt.taskwait();
    EXPECT_EQ(nodes_seen[0], 1);
    EXPECT_EQ(nodes_seen[1], 1);
    for (float v : b) ASSERT_FLOAT_EQ(v, 1.0f);
  });
  for (int i = 0; i < 256; ++i) ASSERT_FLOAT_EQ(a[static_cast<std::size_t>(i)], 2.0f * i);
}

TEST(ClusterTest, RemoteTaskSeesStagedInputs) {
  std::vector<float> in(512), out(512, 0.0f);
  std::iota(in.begin(), in.end(), 10.0f);
  run_app(base_cluster(2, "bf"), [&](ClusterRuntime& rt) {
    // Force both tasks through round robin; the dependent one may run on
    // either node — its input must be staged correctly in both cases.
    rt.spawn(smp_task({Access::inout(in.data(), in.size() * sizeof(float))},
                      [](nanos::TaskContext& c) {
                        auto* f = c.data_as<float>(0);
                        for (int i = 0; i < 512; ++i) f[i] += 1.0f;
                      }));
    rt.spawn(gpu_task({Access::in(in.data(), in.size() * sizeof(float)),
                       Access::out(out.data(), out.size() * sizeof(float))},
                      [](nanos::TaskContext& c) {
                        auto* src = c.data_as<float>(0);
                        auto* dst = c.data_as<float>(1);
                        for (int i = 0; i < 512; ++i) dst[i] = src[i] * 3.0f;
                      }));
    rt.taskwait();
  });
  for (int i = 0; i < 512; ++i)
    ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(i)], (10.0f + i + 1.0f) * 3.0f);
}

TEST(ClusterTest, WriteBackAtNodeLevel) {
  // Without a flush, remotely produced data stays remote.
  std::vector<float> a(128, 0.0f);
  run_app(base_cluster(2, "bf"), [&](ClusterRuntime& rt) {
    rt.spawn(smp_task({}, [](nanos::TaskContext&) {}));  // occupies node 0 slot
    rt.spawn(gpu_task({Access::out(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& c) {
                        auto* f = c.data_as<float>(0);
                        for (int i = 0; i < 128; ++i) f[i] = 6.0f;
                      }));
    rt.taskwait(/*flush=*/false);
    EXPECT_FLOAT_EQ(a[0], 0.0f);  // still on node 1
    rt.taskwait(/*flush=*/true);
    EXPECT_FLOAT_EQ(a[0], 6.0f);
  });
}

TEST(ClusterTest, ChainAcrossNodesStaysCoherent) {
  // A chain of +1 tasks forced across nodes by round robin: every hop moves
  // the data (slave-to-slave or via the master) and the sum must be exact.
  std::vector<float> a(256, 0.0f);
  for (bool stos : {false, true}) {
    std::fill(a.begin(), a.end(), 0.0f);
    ClusterConfig cfg = base_cluster(4, "bf");
    cfg.slave_to_slave = stos;
    run_app(cfg, [&](ClusterRuntime& rt) {
      for (int step = 0; step < 8; ++step) {
        rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                          [](nanos::TaskContext& c) {
                            auto* f = c.data_as<float>(0);
                            for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                          }));
      }
      rt.taskwait();
    });
    for (float v : a) ASSERT_FLOAT_EQ(v, 8.0f) << "stos=" << stos;
  }
}

TEST(ClusterTest, SlaveToSlaveReducesMasterTraffic) {
  auto run_chain = [&](bool stos) {
    std::vector<float> data(4096, 0.0f);
    ClusterConfig cfg = base_cluster(4, "bf");
    cfg.slave_to_slave = stos;
    double master_tx = 0;
    run_app(cfg, [&](ClusterRuntime& rt) {
      for (int step = 0; step < 12; ++step) {
        rt.spawn(gpu_task({Access::inout(data.data(), data.size() * sizeof(float))},
                          [](nanos::TaskContext& c) { c.data_as<float>(0)[0] += 1.0f; }));
      }
      rt.taskwait();
      master_tx = rt.network().endpoint(0).stats().sum("tx_bytes");
    });
    return master_tx;
  };
  double mtos_bytes = run_chain(false);
  double stos_bytes = run_chain(true);
  EXPECT_LT(stos_bytes, mtos_bytes * 0.7);  // the relay traffic disappears
}

TEST(ClusterTest, AffinityPlacementChainsOnProducerNode) {
  std::vector<float> a(1024, 0.0f);
  std::vector<int> nodes_used;
  std::mutex mu;
  run_app(base_cluster(4, "affinity"), [&](ClusterRuntime& rt) {
    for (int step = 0; step < 6; ++step) {
      rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                        [&](nanos::TaskContext& c) {
                          std::lock_guard<std::mutex> lk(mu);
                          nodes_used.push_back(c.node());
                        }));
    }
    rt.taskwait();
  });
  ASSERT_EQ(nodes_used.size(), 6u);
  // After the first write establishes ownership, all successors follow it.
  for (std::size_t i = 1; i < nodes_used.size(); ++i)
    EXPECT_EQ(nodes_used[i], nodes_used[1]) << "task " << i;
}

TEST(ClusterTest, PresendKeepsMultipleTasksInFlight) {
  // Independent tasks bound for one node: with presend the transfers of
  // queued tasks overlap the running one, shortening the makespan.
  auto run_with_presend = [&](int presend) {
    constexpr int kTasks = 6;
    constexpr std::size_t kFloats = (1u << 20) / sizeof(float);
    static std::vector<std::vector<float>> blocks;
    blocks.assign(kTasks, std::vector<float>(kFloats, 1.0f));
    ClusterConfig cfg = base_cluster(2, "bf");
    cfg.presend = presend;
    cfg.node.overlap = true;
    cfg.node.prefetch = true;
    double elapsed = 0;
    run_app(cfg, [&](ClusterRuntime& rt) {
      double t0 = rt.clock().now();
      for (int i = 0; i < kTasks; ++i) {
        // Forced to node 1: round robin over 2 nodes with 2*i spawns… instead
        // use affinity-defeating independent regions and let bf alternate;
        // only measure total makespan.
        rt.spawn(gpu_task(
            {Access::inout(blocks[static_cast<std::size_t>(i)].data(), kFloats * sizeof(float))},
            [](nanos::TaskContext& c) { c.data_as<float>(0)[0] += 1.0f; },
            /*flops=*/5e9));  // 5 ms kernel vs ~1 ms transfer
      }
      rt.taskwait(/*flush=*/false);
      elapsed = rt.clock().now() - t0;
    });
    return elapsed;
  };
  double t_nopresend = run_with_presend(0);
  double t_presend = run_with_presend(2);
  EXPECT_LT(t_presend, t_nopresend);  // communication hides behind compute
}

TEST(ClusterTest, RemoteTaskSpawnsLocalSubtasks) {
  std::vector<float> a(256, 0.0f);
  run_app(base_cluster(2, "bf"), [&](ClusterRuntime& rt) {
    rt.spawn(smp_task({}, [](nanos::TaskContext&) {}));  // node 0
    rt.spawn(smp_task(
        {Access::inout(a.data(), a.size() * sizeof(float))},
        [](nanos::TaskContext& ctx) {
          // Runs on node 1; decomposes its block into two local GPU subtasks
          // through its node's own runtime (paper: scalable decomposition).
          auto* base = ctx.data_as<float>(0);
          EXPECT_EQ(ctx.node(), 1);
          for (int half = 0; half < 2; ++half) {
            TaskDesc sub;
            sub.device = DeviceKind::kCuda;
            sub.accesses = {Access::inout(base + half * 128, 128 * sizeof(float))};
            sub.fn = [](nanos::TaskContext& c) {
              auto* f = c.data_as<float>(0);
              for (int i = 0; i < 128; ++i) f[i] += 2.0f;
            };
            ctx.runtime().spawn(std::move(sub));
          }
          // Parent waits implicitly for children before completing.
        }));
    rt.taskwait();
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 2.0f);
}

TEST(ClusterTest, ManyTasksAcrossFourNodes) {
  static constexpr int kBlocks = 16;
  static constexpr int kSteps = 4;
  static constexpr std::size_t kFloats = 256;
  std::vector<std::vector<float>> blocks(kBlocks, std::vector<float>(kFloats, 1.0f));
  run_app(base_cluster(4, "affinity"), [&](ClusterRuntime& rt) {
    for (int s = 0; s < kSteps; ++s) {
      for (int b = 0; b < kBlocks; ++b) {
        rt.spawn(gpu_task(
            {Access::inout(blocks[static_cast<std::size_t>(b)].data(), kFloats * sizeof(float))},
            [](nanos::TaskContext& c) {
              auto* f = c.data_as<float>(0);
              for (std::size_t i = 0; i < kFloats; ++i) f[i] *= 2.0f;
            }));
      }
    }
    rt.taskwait();
  });
  for (const auto& blk : blocks)
    for (float v : blk) ASSERT_FLOAT_EQ(v, 16.0f);
}

TEST(ClusterTest, MixedDependentGraphMatchesReference) {
  // y = sum of x blocks, computed via per-block scale on various nodes and a
  // final SMP reduction that must gather every block.
  static constexpr int kBlocks = 8;
  static constexpr std::size_t kFloats = 512;
  std::vector<std::vector<float>> x(kBlocks, std::vector<float>(kFloats));
  for (int b = 0; b < kBlocks; ++b)
    std::iota(x[static_cast<std::size_t>(b)].begin(), x[static_cast<std::size_t>(b)].end(),
              static_cast<float>(b));
  double expected = 0;
  for (const auto& blk : x)
    for (float v : blk) expected += 2.0 * v;

  double sum = 0;
  run_app(base_cluster(4, "bf"), [&](ClusterRuntime& rt) {
    for (int b = 0; b < kBlocks; ++b) {
      rt.spawn(gpu_task(
          {Access::inout(x[static_cast<std::size_t>(b)].data(), kFloats * sizeof(float))},
          [](nanos::TaskContext& c) {
            auto* f = c.data_as<float>(0);
            for (std::size_t i = 0; i < kFloats; ++i) f[i] *= 2.0f;
          }));
    }
    std::vector<Access> acc;
    acc.reserve(kBlocks);
    for (int b = 0; b < kBlocks; ++b)
      acc.push_back(Access::in(x[static_cast<std::size_t>(b)].data(), kFloats * sizeof(float)));
    rt.spawn(smp_task(acc, [&](nanos::TaskContext& c) {
      for (int b = 0; b < kBlocks; ++b) {
        auto* f = static_cast<const float*>(c.data(static_cast<std::size_t>(b)));
        for (std::size_t i = 0; i < kFloats; ++i) sum += f[i];
      }
    }));
    rt.taskwait();
  });
  EXPECT_NEAR(sum, expected, 1e-3);
}

TEST(ClusterTest, TaskwaitOnPullsOnlyThatRegion) {
  std::vector<float> a(128, 0.0f), b(128, 0.0f);
  run_app(base_cluster(2, "bf"), [&](ClusterRuntime& rt) {
    rt.spawn(smp_task({}, [](nanos::TaskContext&) {}));  // occupies node 0 slot
    rt.spawn(gpu_task({Access::out(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 3.0f; },
                      /*flops=*/1e6));
    rt.spawn(smp_task({}, [](nanos::TaskContext&) {}));  // keep rr phase aligned
    rt.spawn(gpu_task({Access::out(b.data(), b.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 4.0f; },
                      /*flops=*/1e12));  // still running at the wait
    rt.taskwait_on(common::Region(a.data(), a.size() * sizeof(float)));
    EXPECT_FLOAT_EQ(a[0], 3.0f);  // pulled home from node 1
    EXPECT_FLOAT_EQ(b[0], 0.0f);  // untouched, producer still running
    rt.taskwait();
    EXPECT_FLOAT_EQ(b[0], 4.0f);
  });
}

TEST(ClusterTest, MultipleCommThreadsProduceSameResults) {
  static constexpr int kBlocks2 = 12;
  static constexpr std::size_t kF = 256;
  auto run_with = [&](int comm_threads) {
    std::vector<std::vector<float>> blocks(kBlocks2, std::vector<float>(kF, 1.0f));
    ClusterConfig cfg = base_cluster(4, "affinity");
    cfg.comm_threads = comm_threads;
    cfg.presend = 1;
    run_app(cfg, [&](ClusterRuntime& rt) {
      for (int s = 0; s < 3; ++s) {
        for (int blk = 0; blk < kBlocks2; ++blk) {
          rt.spawn(gpu_task(
              {Access::inout(blocks[static_cast<std::size_t>(blk)].data(), kF * sizeof(float))},
              [](nanos::TaskContext& c) {
                auto* f = c.data_as<float>(0);
                for (std::size_t i = 0; i < kF; ++i) f[i] += 2.0f;
              }));
        }
      }
      rt.taskwait();
    });
    double sum = 0;
    for (const auto& blk : blocks)
      for (float v : blk) sum += v;
    return sum;
  };
  double one = run_with(1);
  double three = run_with(3);
  EXPECT_DOUBLE_EQ(one, three);
  EXPECT_DOUBLE_EQ(one, kBlocks2 * static_cast<double>(kF) * 7.0);  // 1 + 3*2
}

TEST(ClusterTest, StatsDistinguishLocalAndRemote) {
  run_app(base_cluster(2, "bf"), [&](ClusterRuntime& rt) {
    for (int i = 0; i < 4; ++i) rt.spawn(smp_task({}, [](nanos::TaskContext&) {}));
    rt.taskwait();
    EXPECT_EQ(rt.stats().count("cluster.tasks"), 4u);
    EXPECT_EQ(rt.stats().count("cluster.local_tasks"), 2u);
    EXPECT_EQ(rt.stats().count("cluster.remote_tasks"), 2u);
  });
}

TEST(ClusterTest, ShardedDirectoryDistributesCommitsAcrossHomes) {
  // Many independent single-write tasks across distinct regions: with the
  // sharded directory every remote completion commits at the written
  // region's hash-assigned home node, not at the master.
  constexpr int kNodes = 8;
  constexpr int kTasks = 128;
  constexpr std::size_t kFloats = 256;
  std::vector<float> data(kTasks * kFloats, 0.0f);
  std::uint64_t homed_total = 0, homed_master = 0, local = 0;
  run_app(base_cluster(kNodes, "bf"), [&](ClusterRuntime& rt) {
    for (int t = 0; t < kTasks; ++t) {
      float* block = data.data() + static_cast<std::size_t>(t) * kFloats;
      rt.spawn(smp_task({Access::out(block, kFloats * sizeof(float))},
                        [](nanos::TaskContext& c) {
                          auto* f = c.data_as<float>(0);
                          for (std::size_t i = 0; i < 256; ++i) f[i] = 1.0f;
                        }));
    }
    rt.taskwait();
    for (int n = 0; n < kNodes; ++n) {
      const std::uint64_t c = rt.stats().count("cluster.dir_ops_homed.n" + std::to_string(n));
      homed_total += c;
      if (n == 0) homed_master = c;
    }
    local = rt.stats().count("cluster.dir_ops_local");
  });
  for (float v : data) ASSERT_FLOAT_EQ(v, 1.0f);
  // Every task commits its single written region exactly once — remote ones
  // at a home node, master-local ones in the spawn path.
  EXPECT_GT(homed_total, 0u);
  EXPECT_EQ(homed_total + local, static_cast<std::uint64_t>(kTasks));
  // Decentralization criterion: the master serves no more than 2/N of the
  // directory commits (hash homing spreads them ~uniformly across nodes).
  EXPECT_LE(homed_master, 2u * (homed_total + local) / kNodes);
}

TEST(ClusterTest, ShardingOffKeepsCommitsAtMaster) {
  constexpr int kTasks = 16;
  constexpr std::size_t kFloats = 64;
  std::vector<float> data(kTasks * kFloats, 0.0f);
  ClusterConfig cfg = base_cluster(4, "bf");
  cfg.dir_sharding = false;
  run_app(cfg, [&](ClusterRuntime& rt) {
    for (int t = 0; t < kTasks; ++t) {
      float* block = data.data() + static_cast<std::size_t>(t) * kFloats;
      rt.spawn(smp_task({Access::out(block, kFloats * sizeof(float))},
                        [](nanos::TaskContext& c) {
                          auto* f = c.data_as<float>(0);
                          for (std::size_t i = 0; i < 64; ++i) f[i] = 2.0f;
                        }));
    }
    rt.taskwait();
    for (int n = 0; n < 4; ++n)
      EXPECT_EQ(rt.stats().count("cluster.dir_ops_homed.n" + std::to_string(n)), 0u) << n;
  });
  for (float v : data) ASSERT_FLOAT_EQ(v, 2.0f);
}

TEST(ClusterTest, VectoredDoneAcksConvergeWithoutReplays) {
  // A burst of remote completions over a coalescing link: the master must
  // ack the DONE tickets as count-prefixed batches riding the coalesce
  // window, every ticket must be acked exactly once (no replay pressure),
  // and the per-batch mean must show actual vectoring.
  constexpr int kNodes = 8;
  constexpr int kTasks = 96;
  constexpr std::size_t kFloats = 64;
  std::vector<float> data(kTasks * kFloats, 0.0f);
  ClusterConfig cfg = base_cluster(kNodes, "bf");
  cfg.link.coalesce_window = 5e-5;
  cfg.presend = 3;  // several tasks in flight per node -> DONEs arrive in bursts
  std::uint64_t replays = 0, batches = 0, remote = 0;
  double tickets = 0;
  run_app(cfg, [&](ClusterRuntime& rt) {
    for (int t = 0; t < kTasks; ++t) {
      float* block = data.data() + static_cast<std::size_t>(t) * kFloats;
      rt.spawn(smp_task({Access::out(block, kFloats * sizeof(float))},
                        [](nanos::TaskContext& c) {
                          auto* f = c.data_as<float>(0);
                          for (std::size_t i = 0; i < 64; ++i) f[i] = 3.0f;
                        }));
    }
    rt.taskwait();
    replays = rt.stats().count("cluster.done_replays");
    batches = rt.stats().count("cluster.ack_batches");
    tickets = rt.stats().sum("cluster.ack_batch_tickets");
    remote = rt.stats().count("cluster.remote_tasks");
  });
  for (float v : data) ASSERT_FLOAT_EQ(v, 3.0f);
  // Convergence: every remote completion was acked on the first try.
  EXPECT_EQ(replays, 0u);
  EXPECT_EQ(tickets, static_cast<double>(remote));
  // Vectoring: the burst actually amortized acks across tickets.
  ASSERT_GT(batches, 0u);
  EXPECT_GT(tickets / static_cast<double>(batches), 1.5);
  EXPECT_LT(batches, remote);
}

}  // namespace
