// Tests for the active-message network: delivery, FIFO ordering, the NIC
// occupancy model (the mechanism behind the paper's master-bottleneck and
// slave-to-slave results), latency, and completion callbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "simnet/simnet.hpp"
#include "vt/clock.hpp"

namespace {

using simnet::LinkProps;
using simnet::Network;

LinkProps fast_link() {
  LinkProps p;
  p.bandwidth = 1.0e9;  // 1 GB/s
  p.latency = 1.0e-6;
  p.am_overhead = 0.0;  // most tests want pure bandwidth arithmetic
  return p;
}

TEST(SimNetTest, ShortMessageDeliversPayload) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  vt::Flag got(clock);
  int seen_src = -1;
  std::vector<char> seen;
  net.endpoint(1).register_handler(7, [&](int src, const void* p, std::size_t n) {
    seen_src = src;
    seen.assign(static_cast<const char*>(p), static_cast<const char*>(p) + n);
    got.set();
  });
  const char msg[] = "hello";
  net.endpoint(0).am_short(1, 7, msg, sizeof(msg));
  got.wait();
  EXPECT_EQ(seen_src, 0);
  EXPECT_EQ(std::memcmp(seen.data(), msg, sizeof(msg)), 0);
}

TEST(SimNetTest, ShortMessagePaysLatency) {
  vt::Clock clock;
  LinkProps p = fast_link();
  p.latency = 5e-6;
  p.am_overhead = 2e-6;
  Network net(clock, 2, p);
  vt::Flag got(clock);
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) { got.set(); });
  net.endpoint(0).am_short(1, 0, nullptr, 0);
  got.wait();
  // tx overhead happens [0,2us]; rx waits until latency(5us) then rx overhead.
  EXPECT_NEAR(clock.now(), 5e-6 + 2e-6, 1e-9);
}

TEST(SimNetTest, PutWritesRemoteMemoryAndFiresCompletions) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<float> src(1024);
  std::iota(src.begin(), src.end(), 1.0f);
  std::vector<float> dst(1024, 0.0f);
  vt::Flag local_done(clock), remote_done(clock);
  net.endpoint(0).put(
      1, dst.data(), src.data(), src.size() * sizeof(float), [&] { local_done.set(); },
      [&] { remote_done.set(); });
  local_done.wait();
  remote_done.wait();
  EXPECT_EQ(src, dst);
}

TEST(SimNetTest, PutWithHandlerActsAsAmLong) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<char> dst(16, 0);
  vt::Flag got(clock);
  const void* handler_addr = nullptr;
  std::size_t handler_bytes = 0;
  net.endpoint(1).register_handler(3, [&](int src, const void* p, std::size_t n) {
    EXPECT_EQ(src, 0);
    handler_addr = p;
    handler_bytes = n;
    got.set();
  });
  std::vector<char> src(16, 42);
  net.endpoint(0).put(1, dst.data(), src.data(), src.size(), nullptr, nullptr, /*handler=*/3);
  got.wait();
  EXPECT_EQ(handler_addr, dst.data());       // handler sees the landed buffer
  EXPECT_EQ(handler_bytes, src.size());
  EXPECT_EQ(dst[0], 42);
}

TEST(SimNetTest, TransferTimeMatchesBandwidth) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<char> src(1u << 20), dst(1u << 20);  // 1 MiB at 1 GB/s ≈ 1.049 ms
  vt::Flag done(clock);
  net.endpoint(0).put(1, dst.data(), src.data(), src.size(), nullptr, [&] { done.set(); });
  done.wait();
  // Store-and-forward: tx occupancy then rx occupancy; the 1 us wire latency
  // is absorbed inside the tx window for bulk messages.
  double expect = 2.0 * static_cast<double>(src.size()) / 1e9;
  EXPECT_NEAR(clock.now(), expect, 1e-7);
}

TEST(SimNetTest, OutboundNicSerializesSends) {
  // One sender, two receivers: the sender's TX NIC is the bottleneck, so the
  // second transfer completes ~one transfer-time later than the first.
  vt::Clock clock;
  Network net(clock, 3, fast_link());
  std::vector<char> src(1u << 20), dst1(1u << 20), dst2(1u << 20);
  vt::Flag done1(clock), done2(clock);
  double t1 = 0, t2 = 0;
  {
    vt::Hold hold(clock);  // both sends queued before any transmission
    net.endpoint(0).put(1, dst1.data(), src.data(), src.size(), nullptr, [&] {
      t1 = clock.now();
      done1.set();
    });
    net.endpoint(0).put(2, dst2.data(), src.data(), src.size(), nullptr, [&] {
      t2 = clock.now();
      done2.set();
    });
  }
  done1.wait();
  done2.wait();
  double unit = static_cast<double>(src.size()) / 1e9;
  EXPECT_NEAR(t2 - t1, unit, unit * 0.05);  // serialized at the source
}

TEST(SimNetTest, InboundNicSerializesReceives) {
  // Two senders, one receiver: both transmit in parallel, but the receiver's
  // RX NIC takes them one at a time.
  vt::Clock clock;
  Network net(clock, 3, fast_link());
  std::vector<char> src1(1u << 20), src2(1u << 20);
  std::vector<char> dst1(1u << 20), dst2(1u << 20);
  vt::CountLatch latch(clock);
  latch.add(2);
  {
    vt::Hold hold(clock);  // both transfers must be issued at t=0
    net.endpoint(1).put(0, dst1.data(), src1.data(), src1.size(), nullptr, [&] { latch.done(); });
    net.endpoint(2).put(0, dst2.data(), src2.data(), src2.size(), nullptr, [&] { latch.done(); });
  }
  latch.wait();
  double unit = static_cast<double>(src1.size()) / 1e9;
  // TX in parallel ≈ unit, then RX serializes: total ≈ 3 * unit.
  EXPECT_GT(clock.now(), 2.8 * unit);
  EXPECT_LT(clock.now(), 3.3 * unit);
}

TEST(SimNetTest, DisjointPairsTransferInParallel) {
  // 0->1 and 2->3 share nothing: total time ≈ one transfer.
  vt::Clock clock;
  Network net(clock, 4, fast_link());
  std::vector<char> a(1u << 20), b(1u << 20), da(1u << 20), db(1u << 20);
  vt::CountLatch latch(clock);
  latch.add(2);
  {
    vt::Hold hold(clock);  // both transfers must be issued at t=0
    net.endpoint(0).put(1, da.data(), a.data(), a.size(), nullptr, [&] { latch.done(); });
    net.endpoint(2).put(3, db.data(), b.data(), b.size(), nullptr, [&] { latch.done(); });
  }
  latch.wait();
  double unit = static_cast<double>(a.size()) / 1e9;
  EXPECT_LT(clock.now(), 2.3 * unit);  // ≈ 2*unit (tx+rx pipeline), not 4.
}

TEST(SimNetTest, PairwiseFifoOrdering) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<int> order;
  vt::CountLatch latch(clock);
  latch.add(10);
  net.endpoint(1).register_handler(0, [&](int, const void* p, std::size_t) {
    order.push_back(*static_cast<const int*>(p));
    latch.done();
  });
  for (int i = 0; i < 10; ++i) net.endpoint(0).am_short(1, 0, &i, sizeof(i));
  latch.wait();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimNetTest, ShortsBypassQueuedBulk) {
  // Control messages interleave with bulk data at packet granularity: a
  // short AM behind *queued* puts overtakes them (it can only wait for the
  // put already on the wire).  Without this, completion acks would suffer
  // multi-transfer head-of-line blocking that real interconnects don't have.
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<char> src(1u << 20), dst1(1u << 20), dst2(1u << 20);
  vt::Flag got(clock);
  vt::CountLatch puts_done(clock);
  puts_done.add(2);
  double short_arrival = -1;
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) {
    short_arrival = clock.now();  // delivery time, read on the RX thread
    got.set();
  });
  {
    vt::Hold hold(clock);  // queue both puts and the short before any send
    net.endpoint(0).put(1, dst1.data(), src.data(), src.size(), nullptr,
                        [&] { puts_done.done(); });
    net.endpoint(0).put(1, dst2.data(), src.data(), src.size(), nullptr,
                        [&] { puts_done.done(); });
    net.endpoint(0).am_short(1, 0, nullptr, 0);
  }
  got.wait();
  double unit = static_cast<double>(src.size()) / 1e9;
  // At most one put (the one already on the wire when the short was queued)
  // delays the short on each NIC side.
  EXPECT_LT(short_arrival, 2.5 * unit);
  puts_done.wait();  // drain before the buffers leave scope
}

TEST(SimNetTest, SelfSendIsImmediateAndDelivered) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  vt::Flag got(clock);
  net.endpoint(0).register_handler(1, [&](int src, const void*, std::size_t) {
    EXPECT_EQ(src, 0);
    got.set();
  });
  net.endpoint(0).am_short(0, 1, nullptr, 0);
  got.wait();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // loopback costs nothing
}

TEST(SimNetTest, StatsAccounting) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<char> src(4096), dst(4096);
  vt::Flag done(clock);
  net.endpoint(0).put(1, dst.data(), src.data(), src.size(), nullptr, [&] { done.set(); });
  done.wait();
  EXPECT_EQ(net.endpoint(0).stats().count("put_ops"), 1u);
  EXPECT_DOUBLE_EQ(net.endpoint(0).stats().sum("tx_bytes"), 4096.0);
  EXPECT_DOUBLE_EQ(net.endpoint(1).stats().sum("rx_bytes"), 4096.0);
}

TEST(SimNetTest, UnregisteredHandlerIsLoggedNotFatal) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  net.endpoint(0).am_short(1, 99, nullptr, 0);  // never registered
  // Drain: a subsequent message must still get through.
  vt::Flag got(clock);
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) { got.set(); });
  net.endpoint(0).am_short(1, 0, nullptr, 0);
  got.wait();
}

TEST(SimNetTest, BadNodeCountThrows) {
  vt::Clock clock;
  EXPECT_THROW(Network(clock, 0), std::invalid_argument);
}

TEST(SimNetTest, HandlerCanSendFromRxContext) {
  // An AM handler that replies (the protocol style the cluster layer uses:
  // TASK_DONE / STAGE_DONE are sent from handlers).
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  vt::Flag round_trip(clock);
  net.endpoint(1).register_handler(0, [&](int src, const void*, std::size_t) {
    net.endpoint(1).am_short(src, 1, nullptr, 0);
  });
  net.endpoint(0).register_handler(1, [&](int, const void*, std::size_t) { round_trip.set(); });
  net.endpoint(0).am_short(1, 0, nullptr, 0);
  round_trip.wait();
}

TEST(SimNetTest, ZeroByteControlPutBypassesBulk) {
  // minimpi barriers use zero-byte puts: they must class as control traffic.
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  std::vector<char> src(1u << 20), dst(1u << 20);
  vt::CountLatch bulk_done(clock);
  bulk_done.add(2);
  vt::Flag ctrl_done(clock);
  double ctrl_at = 0;
  {
    vt::Hold hold(clock);  // queue everything before any transmission
    net.endpoint(0).put(1, dst.data(), src.data(), src.size(), nullptr, [&] { bulk_done.done(); });
    net.endpoint(0).put(1, dst.data(), src.data(), src.size(), nullptr, [&] { bulk_done.done(); });
    net.endpoint(0).put(1, nullptr, nullptr, 0, nullptr, [&] {
      ctrl_at = clock.now();
      ctrl_done.set();
    });
  }
  ctrl_done.wait();
  double unit = static_cast<double>(src.size()) / 1e9;
  EXPECT_LT(ctrl_at, 2.5 * unit);  // did not wait for both bulk puts
  bulk_done.wait();  // drain before the buffers leave scope
}

TEST(SimNetTest, ManyConcurrentPairsStress) {
  // All-to-all small puts among 6 nodes: everything must arrive exactly once.
  vt::Clock clock;
  constexpr int kNodes = 6;
  Network net(clock, kNodes, fast_link());
  std::vector<std::vector<int>> inbox(kNodes, std::vector<int>(kNodes, -1));
  vt::CountLatch latch(clock);
  latch.add(kNodes * (kNodes - 1));
  for (int dst = 0; dst < kNodes; ++dst) {
    net.endpoint(dst).register_handler(0, [&, dst](int src, const void* p, std::size_t) {
      inbox[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)] =
          *static_cast<const int*>(p);
      latch.done();
    });
  }
  for (int src = 0; src < kNodes; ++src) {
    for (int dst = 0; dst < kNodes; ++dst) {
      if (src == dst) continue;
      int v = src * 100 + dst;
      net.endpoint(src).am_short(dst, 0, &v, sizeof(v));
    }
  }
  latch.wait();
  for (int dst = 0; dst < kNodes; ++dst) {
    for (int src = 0; src < kNodes; ++src) {
      if (src != dst) {
        EXPECT_EQ(inbox[static_cast<std::size_t>(dst)][static_cast<std::size_t>(src)],
                  src * 100 + dst);
      }
    }
  }
}

TEST(SimNetTest, NegativeHandlerIdRejected) {
  vt::Clock clock;
  Network net(clock, 2, fast_link());
  EXPECT_THROW(net.endpoint(0).register_handler(-1, [](int, const void*, std::size_t) {}),
               std::invalid_argument);
}

TEST(SimNetTest, CoalescedMessagesBatchIntoOneWireAm) {
  // Eight am_coalesced sends inside one flush window travel as ONE wire AM:
  // one am_overhead on each NIC instead of eight, every sub-message still
  // delivered in order with its own payload.
  vt::Clock clock;
  LinkProps p = fast_link();
  p.am_overhead = 2e-6;
  p.coalesce_window = 5e-6;
  p.coalesce_max_msgs = 64;  // watermark out of the way: flush by age
  Network net(clock, 2, p);
  vt::CountLatch latch(clock);
  latch.add(8);
  std::vector<int> seen;
  net.endpoint(1).register_handler(0, [&](int src, const void* pay, std::size_t n) {
    EXPECT_EQ(src, 0);
    ASSERT_EQ(n, sizeof(int));
    seen.push_back(*static_cast<const int*>(pay));
    latch.done();
  });
  {
    vt::Hold hold(clock);  // the whole burst lands inside one flush window
    for (int i = 0; i < 8; ++i) net.endpoint(0).am_coalesced(1, 0, &i, sizeof(i));
  }
  latch.wait();
  ASSERT_EQ(seen.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(net.endpoint(0).stats().count("am_batch"), 1u);
  EXPECT_DOUBLE_EQ(net.endpoint(0).stats().sum("am_batch_subs"), 8.0);
  // window (5us) + one tx overhead + latency + one rx overhead + payload wire
  // time — far under the 8 * (2+2)us eight separate AMs would serialize to.
  EXPECT_GT(clock.now(), 5e-6);
  EXPECT_LT(clock.now(), 11e-6);
}

TEST(SimNetTest, CoalesceWatermarkFlushesBeforeWindow) {
  vt::Clock clock;
  LinkProps p = fast_link();
  p.am_overhead = 2e-6;
  p.coalesce_window = 1e-3;  // enormous: only the count watermark can flush
  p.coalesce_max_msgs = 4;
  Network net(clock, 2, p);
  vt::CountLatch latch(clock);
  latch.add(4);
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) { latch.done(); });
  {
    vt::Hold hold(clock);  // the whole burst lands before the window can age
    for (int i = 0; i < 4; ++i) net.endpoint(0).am_coalesced(1, 0, &i, sizeof(i));
  }
  latch.wait();
  EXPECT_EQ(net.endpoint(0).stats().count("am_batch"), 1u);
  EXPECT_LT(clock.now(), 1e-4);  // did not wait out the window
}

TEST(SimNetTest, PlainShortDoesNotOvertakePendingBatch) {
  // FIFO across classes: a plain short sent after coalesced traffic to the
  // same destination forces the batch onto the wire ahead of itself.
  vt::Clock clock;
  LinkProps p = fast_link();
  p.coalesce_window = 1e-3;  // batch would otherwise sit pending
  Network net(clock, 2, p);
  vt::CountLatch latch(clock);
  latch.add(3);
  std::vector<int> order;
  net.endpoint(1).register_handler(0, [&](int, const void* pay, std::size_t) {
    order.push_back(*static_cast<const int*>(pay));
    latch.done();
  });
  int a = 1, b = 2, c = 3;
  {
    vt::Hold hold(clock);  // all three sends land before the window can expire
    net.endpoint(0).am_coalesced(1, 0, &a, sizeof(a));
    net.endpoint(0).am_coalesced(1, 0, &b, sizeof(b));
    net.endpoint(0).am_short(1, 0, &c, sizeof(c));
  }
  latch.wait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_LT(clock.now(), 1e-4);  // the short's send flushed the batch early
}

TEST(SimNetTest, LoneCoalescedSubTravelsAsPlainShort) {
  vt::Clock clock;
  LinkProps p = fast_link();
  p.coalesce_window = 5e-6;
  Network net(clock, 2, p);
  vt::Flag got(clock);
  int v = -1;
  net.endpoint(1).register_handler(0, [&](int, const void* pay, std::size_t n) {
    ASSERT_EQ(n, sizeof(int));
    v = *static_cast<const int*>(pay);
    got.set();
  });
  int msg = 42;
  net.endpoint(0).am_coalesced(1, 0, &msg, sizeof(msg));
  got.wait();
  EXPECT_EQ(v, 42);
  EXPECT_EQ(net.endpoint(0).stats().count("am_batch"), 0u);  // no batch framing
  EXPECT_GE(clock.now(), 5e-6);  // but it did wait out the window
}

TEST(SimNetTest, CoalescedSelfSendBypassesWindow) {
  vt::Clock clock;
  LinkProps p = fast_link();
  p.coalesce_window = 1e-3;
  Network net(clock, 2, p);
  vt::Flag got(clock);
  net.endpoint(0).register_handler(0, [&](int, const void*, std::size_t) { got.set(); });
  net.endpoint(0).am_coalesced(0, 0, nullptr, 0);
  got.wait();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // loopback: no batching, no wire cost
}

TEST(SimNetTest, DisabledWindowDegradesToPlainShort) {
  vt::Clock clock;
  LinkProps p = fast_link();
  p.coalesce_window = 0.0;
  Network net(clock, 2, p);
  vt::CountLatch latch(clock);
  latch.add(2);
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) { latch.done(); });
  int v = 0;
  net.endpoint(0).am_coalesced(1, 0, &v, sizeof(v));
  net.endpoint(0).am_coalesced(1, 0, &v, sizeof(v));
  latch.wait();
  EXPECT_EQ(net.endpoint(0).stats().count("am_batch"), 0u);
  EXPECT_EQ(net.endpoint(0).stats().count("am_short"), 2u);
}

// ---------------------------------------------------------------------------
// Two-tier topology: the rack fabric behind the per-node NICs.

using simnet::TopologyConfig;

TEST(TopologyTest, DistanceMatchesRackShape) {
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 4;
  t.nodes_per_rack = 4;
  Network net(clock, 16, fast_link(), t);
  const simnet::Topology& topo = net.topology();
  EXPECT_FALSE(topo.flat());
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(3), 0);
  EXPECT_EQ(topo.rack_of(4), 1);
  EXPECT_EQ(topo.rack_of(15), 3);
  EXPECT_TRUE(topo.same_rack(0, 3));
  EXPECT_FALSE(topo.same_rack(3, 4));
  EXPECT_EQ(topo.distance(5, 5), 0);
  EXPECT_EQ(topo.distance(0, 3), 1);
  EXPECT_EQ(topo.distance(0, 4), 2);
}

TEST(TopologyTest, OversubscriptionRatioFromConfig) {
  TopologyConfig t;
  t.racks = 4;
  t.rack_link_bw = 4e9;
  t.core_link_bw = 4e9;
  EXPECT_DOUBLE_EQ(t.oversubscription(), 4.0);
  t.core_link_bw = 16e9;
  EXPECT_DOUBLE_EQ(t.oversubscription(), 1.0);
  TopologyConfig flat;
  EXPECT_TRUE(flat.flat());
  EXPECT_DOUBLE_EQ(flat.oversubscription(), 1.0);
}

TEST(TopologyTest, SharedUplinkHalvesConcurrentCrossRackFlows) {
  // Two 1 MB puts leave rack 0 together: each gets half the 1 GB/s uplink,
  // so the transit stage stretches from 1 ms to 2 ms.  tx (1 ms) + shared
  // transit (2 ms) + rx (1 ms) = 4 ms, against 3 ms for a lone flow.
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 2;
  t.nodes_per_rack = 2;
  t.rack_link_bw = 1e9;
  t.core_link_bw = 2e9;
  Network net(clock, 4, fast_link(), t);
  std::vector<char> a(1u << 20), b(1u << 20), da(1u << 20), db(1u << 20);
  vt::CountLatch latch(clock);
  latch.add(2);
  {
    vt::Hold hold(clock);  // both cross-rack flows must be issued at t=0
    net.endpoint(0).put(2, da.data(), a.data(), a.size(), nullptr, [&] { latch.done(); });
    net.endpoint(1).put(3, db.data(), b.data(), b.size(), nullptr, [&] { latch.done(); });
  }
  latch.wait();
  const double unit = static_cast<double>(a.size()) / 1e9;
  EXPECT_NEAR(clock.now(), 4.0 * unit, 0.1 * unit);
  EXPECT_DOUBLE_EQ(net.topology().stats().sum("core_bytes"),
                   static_cast<double>(a.size() + b.size()));
  EXPECT_EQ(net.topology().stats().count("transits"), 2u);
  EXPECT_GT(net.topology().uplink_busy_frac(clock.now()), 0.0);
}

TEST(TopologyTest, LoneCrossRackFlowPaysOneTransitStage) {
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 2;
  t.nodes_per_rack = 2;
  t.rack_link_bw = 1e9;
  t.core_link_bw = 2e9;
  Network net(clock, 4, fast_link(), t);
  std::vector<char> a(1u << 20), da(1u << 20);
  vt::Flag done(clock);
  net.endpoint(0).put(2, da.data(), a.data(), a.size(), nullptr, [&] { done.set(); });
  done.wait();
  const double unit = static_cast<double>(a.size()) / 1e9;
  EXPECT_NEAR(clock.now(), 3.0 * unit, 0.1 * unit);  // tx + transit + rx
}

TEST(TopologyTest, IntraRackFlowIgnoresCoreContention) {
  // Two cross-rack flows saturate the 1 GB/s core while an intra-rack flow
  // rides only its own NICs: the local transfer lands at ~2 ms while the
  // cross traffic takes ~4 ms.
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 2;
  t.nodes_per_rack = 3;
  t.rack_link_bw = 2e9;
  t.core_link_bw = 1e9;
  Network net(clock, 6, fast_link(), t);
  std::vector<char> a(1u << 20), b(1u << 20), c(1u << 20);
  std::vector<char> da(1u << 20), db(1u << 20), dc(1u << 20);
  vt::CountLatch latch(clock);
  latch.add(3);
  double t_local = 0, t_cross1 = 0, t_cross2 = 0;
  {
    vt::Hold hold(clock);  // all three flows must be issued at t=0
    net.endpoint(0).put(3, da.data(), a.data(), a.size(), nullptr, [&] {
      t_cross1 = clock.now();
      latch.done();
    });
    net.endpoint(1).put(4, db.data(), b.data(), b.size(), nullptr, [&] {
      t_cross2 = clock.now();
      latch.done();
    });
    net.endpoint(2).put(0, dc.data(), c.data(), c.size(), nullptr, [&] {
      t_local = clock.now();
      latch.done();
    });
  }
  latch.wait();
  const double unit = static_cast<double>(a.size()) / 1e9;
  EXPECT_NEAR(t_local, 2.0 * unit, 0.1 * unit);  // tx + rx only, no fabric
  EXPECT_NEAR(t_cross1, 4.0 * unit, 0.2 * unit);
  EXPECT_NEAR(t_cross2, 4.0 * unit, 0.2 * unit);
  EXPECT_DOUBLE_EQ(net.topology().stats().sum("rack_bytes"), static_cast<double>(c.size()));
}

TEST(TopologyTest, HotRackPlanDegradesUplinkDeterministically) {
  // FaultPlan::hot_rack halves rack 0's uplink before traffic starts: the
  // lone cross-rack transit stretches from 1 ms to 2 ms.
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 2;
  t.nodes_per_rack = 2;
  t.rack_link_bw = 1e9;
  t.core_link_bw = 2e9;
  Network net(clock, 4, fast_link(), t);
  net.set_fault_plan(simnet::FaultPlan::hot_rack(0, 0.0, 0.5));
  std::vector<char> a(1u << 20), da(1u << 20);
  vt::Flag done(clock);
  vt::Thread driver(clock, "app", [&] {
    clock.sleep_for(1e-4);  // let the plan apply first
    net.endpoint(0).put(2, da.data(), a.data(), a.size(), nullptr, [&] { done.set(); });
    done.wait();
  });
  driver.join();
  const double unit = static_cast<double>(a.size()) / 1e9;
  EXPECT_NEAR(clock.now(), 1e-4 + 4.0 * unit, 0.1 * unit);
  EXPECT_EQ(net.topology().stats().count("rack_degrades"), 1u);
}

TEST(TopologyTest, RackKillSilencesEveryMember) {
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 2;
  t.nodes_per_rack = 2;
  Network net(clock, 4, fast_link(), t);
  std::atomic<int> received{0};
  for (int n = 0; n < 4; ++n)
    net.endpoint(n).register_handler(0, [&](int, const void*, std::size_t) { ++received; });
  simnet::FaultPlan plan;
  plan.kill_rack(1, 1e-3);
  net.set_fault_plan(plan);
  vt::Thread driver(clock, "app", [&] {
    int x = 0;
    net.endpoint(0).am_short(2, 0, &x, sizeof(x));  // before the kill: lands
    clock.sleep_for(2e-3);
    EXPECT_FALSE(net.node_dead(0));
    EXPECT_FALSE(net.node_dead(1));
    EXPECT_TRUE(net.node_dead(2));
    EXPECT_TRUE(net.node_dead(3));
    net.endpoint(0).am_short(2, 0, &x, sizeof(x));  // to the dead rack: vanishes
    net.endpoint(3).am_short(0, 0, &x, sizeof(x));  // from the dead rack: vanishes
    clock.sleep_for(2e-3);
  });
  driver.join();
  net.shutdown();
  EXPECT_EQ(received.load(), 1);
}

TEST(TopologyTest, CrossRackShortPaysCoreLatency) {
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 2;
  t.nodes_per_rack = 2;
  t.core_latency = 5e-6;
  Network net(clock, 4, fast_link(), t);
  double t_local = 0, t_cross = 0;
  vt::CountLatch latch(clock);
  latch.add(2);
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) {
    t_local = clock.now();
    latch.done();
  });
  net.endpoint(2).register_handler(0, [&](int, const void*, std::size_t) {
    t_cross = clock.now();
    latch.done();
  });
  int x = 0;
  {
    vt::Hold hold(clock);
    net.endpoint(0).am_short(1, 0, &x, sizeof(x));
    net.endpoint(0).am_short(2, 0, &x, sizeof(x));
  }
  latch.wait();
  EXPECT_NEAR(t_local, 1e-6, 1e-9);          // NIC latency only
  EXPECT_NEAR(t_cross, 1e-6 + 5e-6, 1e-9);   // plus the extra switch hops
}

TEST(TopologyTest, FlatConfigIsInert) {
  // racks <= 1 disables the fabric even with bandwidth caps configured: the
  // timing must match the plain flat network exactly.
  vt::Clock clock;
  TopologyConfig t;
  t.racks = 1;
  t.rack_link_bw = 1.0;  // absurdly small; must be ignored
  t.core_link_bw = 1.0;
  Network net(clock, 2, fast_link(), t);
  EXPECT_TRUE(net.topology().flat());
  std::vector<char> a(1u << 20), da(1u << 20);
  vt::Flag done(clock);
  net.endpoint(0).put(1, da.data(), a.data(), a.size(), nullptr, [&] { done.set(); });
  done.wait();
  const double unit = static_cast<double>(a.size()) / 1e9;
  EXPECT_NEAR(clock.now(), 2.0 * unit, 1e-7);  // identical to the NIC-only model
}

}  // namespace
