// mcc translator tests: pragma parsing, function-header parsing, wrapper
// generation, and a full translate→host-compile→execute round trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mcc/funcsig.hpp"
#include "mcc/lint.hpp"
#include "mcc/pragma.hpp"
#include "mcc/translate.hpp"

namespace {

using mcc::DepMode;
using mcc::parse_function_header;
using mcc::parse_pragma;
using mcc::PragmaKind;

// ---------------------------------------------------------------------------
// pragma parsing

TEST(MccPragmaTest, TargetDeviceCuda) {
  auto p = parse_pragma("#pragma omp target device(cuda) copy_deps");
  EXPECT_EQ(p.kind, PragmaKind::kTarget);
  EXPECT_EQ(p.device, "cuda");
  EXPECT_TRUE(p.copy_deps);
}

TEST(MccPragmaTest, TargetDefaultsToSmp) {
  auto p = parse_pragma("#pragma omp target copy_deps");
  EXPECT_EQ(p.device, "smp");
}

TEST(MccPragmaTest, TaskWithArraySections) {
  auto p = parse_pragma("#pragma omp task input([n] a, [n] b) output([n] c)");
  EXPECT_EQ(p.kind, PragmaKind::kTask);
  ASSERT_EQ(p.deps.size(), 3u);
  EXPECT_EQ(p.deps[0].mode, DepMode::kIn);
  EXPECT_EQ(p.deps[0].name, "a");
  EXPECT_EQ(p.deps[0].size_expr, "n");
  EXPECT_EQ(p.deps[2].mode, DepMode::kOut);
  EXPECT_EQ(p.deps[2].name, "c");
}

TEST(MccPragmaTest, TaskScalarAndInout) {
  auto p = parse_pragma("#pragma omp task inout(x)");
  ASSERT_EQ(p.deps.size(), 1u);
  EXPECT_EQ(p.deps[0].mode, DepMode::kInout);
  EXPECT_EQ(p.deps[0].name, "x");
  EXPECT_TRUE(p.deps[0].size_expr.empty());
}

TEST(MccPragmaTest, TaskSizeExpression) {
  auto p = parse_pragma("#pragma omp task input([bs*bs] tile)");
  ASSERT_EQ(p.deps.size(), 1u);
  EXPECT_EQ(p.deps[0].size_expr, "bs * bs");
}

TEST(MccPragmaTest, BlockSectionBounds) {
  // [lo:len] and the OmpSs [lo;len] spelling: len elements from element lo.
  auto p = parse_pragma("#pragma omp task input([lo:len] a) output([i0;bs] b)");
  ASSERT_EQ(p.deps.size(), 2u);
  EXPECT_EQ(p.deps[0].start_expr, "lo");
  EXPECT_EQ(p.deps[0].size_expr, "len");
  EXPECT_EQ(p.deps[1].start_expr, "i0");
  EXPECT_EQ(p.deps[1].size_expr, "bs");
  // A plain [size] section has no start.
  auto q = parse_pragma("#pragma omp task input([n] a)");
  EXPECT_TRUE(q.deps[0].start_expr.empty());
}

TEST(MccPragmaTest, BlockSectionSeparatorOnlyAtTopDepth) {
  // ':' inside nested brackets/parens is expression text (ternaries, index
  // expressions), not the section separator.
  auto p = parse_pragma("#pragma omp task input([(f ? 1 : 0):n] a, [b[i]:m] c)");
  ASSERT_EQ(p.deps.size(), 2u);
  EXPECT_EQ(p.deps[0].start_expr, "( f ? 1 : 0 )");
  EXPECT_EQ(p.deps[0].size_expr, "n");
  EXPECT_EQ(p.deps[1].start_expr, "b [ i ]");
  EXPECT_EQ(p.deps[1].size_expr, "m");
}

TEST(MccPragmaTest, MalformedBlockSectionThrows) {
  EXPECT_THROW(parse_pragma("#pragma omp task input([lo:] a)"), std::runtime_error);
  EXPECT_THROW(parse_pragma("#pragma omp task input([:n] a)"), std::runtime_error);
  EXPECT_THROW(parse_pragma("#pragma omp task input([a:b:c] x)"), std::runtime_error);
}

TEST(MccPragmaTest, CostExtension) {
  auto p = parse_pragma("#pragma omp task input([n] a) cost(2.0*n)");
  EXPECT_EQ(p.cost_expr, "2.0 * n");
}

TEST(MccPragmaTest, TaskwaitVariants) {
  EXPECT_EQ(parse_pragma("#pragma omp taskwait").kind, PragmaKind::kTaskwait);
  EXPECT_TRUE(parse_pragma("#pragma omp taskwait noflush").noflush);
  EXPECT_EQ(parse_pragma("#pragma omp taskwait on(a)").on_expr, "a");
}

TEST(MccPragmaTest, ForeignPragmaIsOther) {
  EXPECT_EQ(parse_pragma("#pragma once").kind, PragmaKind::kOther);
  EXPECT_EQ(parse_pragma("#pragma omp parallel for").kind, PragmaKind::kOther);
}

TEST(MccPragmaTest, UnknownClauseThrows) {
  EXPECT_THROW(parse_pragma("#pragma omp task frobnicate(a)"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// function headers

TEST(MccFuncSigTest, PointerAndValueParams) {
  auto sig = parse_function_header("void add(const double *a, double *c, int n)");
  EXPECT_EQ(sig.name, "add");
  ASSERT_EQ(sig.params.size(), 3u);
  EXPECT_EQ(sig.params[0].type, "const double*");
  EXPECT_TRUE(sig.params[0].is_pointer);
  EXPECT_EQ(sig.params[2].type, "int");
  EXPECT_FALSE(sig.params[2].is_pointer);
  EXPECT_EQ(sig.param_index("c"), 1);
  EXPECT_EQ(sig.param_index("zz"), -1);
}

TEST(MccFuncSigTest, NoParams) {
  EXPECT_TRUE(parse_function_header("void f()").params.empty());
  EXPECT_TRUE(parse_function_header("void f(void)").params.empty());
}

TEST(MccFuncSigTest, NonVoidReturnRejected) {
  EXPECT_THROW(parse_function_header("int f(int x)"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// translation

TEST(MccTranslateTest, GeneratesWrapperForDeclaration) {
  std::string out = mcc::translate(
      "#pragma omp target device(cuda) copy_deps\n"
      "#pragma omp task input([n] a) output([n] c)\n"
      "void copy(double *a, double *c, int n);\n");
  EXPECT_NE(out.find("void copy__task_impl(double* a, double* c, int n);"), std::string::npos);
  EXPECT_NE(out.find(".device(ompss::Device::kCuda)"), std::string::npos);
  EXPECT_NE(out.find(".in(a, (n) * sizeof(*a))"), std::string::npos);
  EXPECT_NE(out.find(".out(c, (n) * sizeof(*c))"), std::string::npos);
  EXPECT_NE(out.find("copy__task_impl(static_cast<double*>(mcc_ctx.data(0))"), std::string::npos);
}

TEST(MccTranslateTest, RenamesLaterDefinition) {
  std::string out = mcc::translate(
      "#pragma omp task inout([n] a)\n"
      "void bump(double *a, int n);\n"
      "void bump(double *a, int n) {\n"
      "  for (int i = 0; i < n; ++i) a[i] += 1;\n"
      "}\n");
  EXPECT_NE(out.find("void bump__task_impl(double *a, int n) {"), std::string::npos);
}

TEST(MccTranslateTest, DefinitionAnnotatedDirectly) {
  std::string out = mcc::translate(
      "#pragma omp task output([n] a)\n"
      "void zero(double *a, int n) {\n"
      "  for (int i = 0; i < n; ++i) a[i] = 0;\n"
      "}\n");
  // Renamed impl with the body, then the wrapper after the closing brace.
  auto impl = out.find("void zero__task_impl(double* a, int n) {");
  auto wrapper = out.find("void zero(double* a, int n) {");
  ASSERT_NE(impl, std::string::npos);
  ASSERT_NE(wrapper, std::string::npos);
  EXPECT_LT(impl, wrapper);
}

TEST(MccTranslateTest, TaskwaitForms) {
  std::string out = mcc::translate(
      "#pragma omp taskwait\n"
      "#pragma omp taskwait noflush\n"
      "#pragma omp taskwait on(a)\n");
  EXPECT_NE(out.find("ompss::taskwait();"), std::string::npos);
  EXPECT_NE(out.find("ompss::taskwait_noflush();"), std::string::npos);
  EXPECT_NE(out.find("ompss::taskwait_on(a, 1);"), std::string::npos);
}

TEST(MccTranslateTest, MainIsWrappedInEnv) {
  std::string out = mcc::translate("int main() {\n  return 0;\n}\n");
  EXPECT_NE(out.find("int mcc_user_main()"), std::string::npos);
  EXPECT_NE(out.find("ompss::Env env(cfg);"), std::string::npos);
  EXPECT_NE(out.find("env.run([&] { rc = mcc_user_main(); });"), std::string::npos);
}

TEST(MccTranslateTest, BlockSectionOffsetsClausePointer) {
  std::string out = mcc::translate(
      "#pragma omp task input([off:n] a) output([off;n] c)\n"
      "void shift(double *a, double *c, int off, int n);\n");
  EXPECT_NE(out.find(".in(a + (off), (n) * sizeof(*a))"), std::string::npos) << out;
  EXPECT_NE(out.find(".out(c + (off), (n) * sizeof(*c))"), std::string::npos) << out;
}

TEST(MccTranslateTest, BodyAccessesBecomeObserveCalls) {
  // A directly-annotated definition: the lint resolves the body's pointer
  // uses and the wrapper observes them for the runtime race oracle.
  std::string out = mcc::translate(
      "#pragma omp task input([n] a) output([n] c)\n"
      "void copy(const double *a, double *c, int n) {\n"
      "  for (int i = 0; i < n; ++i) c[i] = a[i];\n"
      "}\n");
  EXPECT_NE(out.find("mcc_ctx.observe(a, (n) * sizeof(*a), nanos::AccessMode::kIn);"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("mcc_ctx.observe(c, (n) * sizeof(*c), nanos::AccessMode::kOut);"),
            std::string::npos)
      << out;
  // The observes land inside the spawned lambda, before the impl call.
  EXPECT_LT(out.find("mcc_ctx.observe("), out.find("copy__task_impl(static_cast"));
}

TEST(MccTranslateTest, ObserveModeTracksBodyNotClause) {
  // The body *reads and writes* c (`+=`): the observe must say kInout even
  // though the clause says output — that gap is what the oracle checks.
  std::string out = mcc::translate(
      "#pragma omp task input([n] a) output([n] c)\n"
      "void acc(const double *a, double *c, int n) {\n"
      "  for (int i = 0; i < n; ++i) c[i] += a[i];\n"
      "}\n");
  EXPECT_NE(out.find("mcc_ctx.observe(c, (n) * sizeof(*c), nanos::AccessMode::kInout);"),
            std::string::npos)
      << out;
}

TEST(MccTranslateTest, DeclarationWithoutBodyEmitsNoObserve) {
  // No body anywhere in the unit: nothing to resolve, nothing observed.
  std::string out = mcc::translate(
      "#pragma omp task input([n] a) output([n] c)\n"
      "void copy(double *a, double *c, int n);\n");
  EXPECT_EQ(out.find("mcc_ctx.observe("), std::string::npos) << out;
}

TEST(MccTranslateTest, OutOfLineBodyStillObserved) {
  std::string out = mcc::translate(
      "#pragma omp task inout([n] a)\n"
      "void bump(double *a, int n);\n"
      "void bump(double *a, int n) {\n"
      "  for (int i = 0; i < n; ++i) a[i] += 1;\n"
      "}\n");
  EXPECT_NE(out.find("mcc_ctx.observe(a, (n) * sizeof(*a), nanos::AccessMode::kInout);"),
            std::string::npos)
      << out;
}

TEST(MccTranslateTest, DeclaredRegionsReleasedAfterImplCall) {
  // Every declared dep is released once the body returns, so successors can
  // unblock before the end-of-task bookkeeping (a no-op unless early_release
  // is armed).  The releases land after the impl call, inside the lambda.
  std::string out = mcc::translate(
      "#pragma omp task input([n] a) output([n] c)\n"
      "void copy(const double *a, double *c, int n) {\n"
      "  for (int i = 0; i < n; ++i) c[i] = a[i];\n"
      "}\n");
  EXPECT_NE(out.find("mcc_ctx.release(a, (n) * sizeof(*a));"), std::string::npos) << out;
  EXPECT_NE(out.find("mcc_ctx.release(c, (n) * sizeof(*c));"), std::string::npos) << out;
  EXPECT_LT(out.find("copy__task_impl(static_cast"), out.find("mcc_ctx.release("));
  EXPECT_LT(out.find("mcc_ctx.release("), out.find("});"));
}

TEST(MccTranslateTest, BlockSectionReleaseUsesClauseOffsets) {
  std::string out = mcc::translate(
      "#pragma omp task inout([off:n] a)\n"
      "void shift(double *a, int off, int n);\n");
  EXPECT_NE(out.find("mcc_ctx.release(a + (off), (n) * sizeof(*a));"), std::string::npos)
      << out;
}

TEST(MccTranslateTest, DanglingTaskPragmaThrows) {
  EXPECT_THROW(mcc::translate("#pragma omp task input([n] a)\n"), std::runtime_error);
}

TEST(MccTranslateTest, DependenceOnUnknownParamThrows) {
  EXPECT_THROW(mcc::translate("#pragma omp task input([n] zz)\n"
                              "void f(double *a, int n);\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// end to end: translate an annotated STREAM-like program, compile it with the
// host compiler against the ompss libraries, run it, check its output.

// ---------------------------------------------------------------------------
// --lint: the static clause lint (taskcheck pass 3)

/// Collects just the messages, asserting every diagnostic carries a line.
std::vector<std::string> lint_messages(const std::string& src) {
  std::vector<std::string> msgs;
  for (const mcc::LintDiagnostic& d : mcc::lint(src)) {
    EXPECT_GT(d.line, 0) << d.message;
    msgs.push_back(d.message);
  }
  return msgs;
}

bool any_contains(const std::vector<std::string>& msgs, const std::string& needle) {
  for (const std::string& m : msgs) {
    if (m.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(MccLintTest, UndeclaredPointerReferenceFlagged) {
  auto msgs = lint_messages(R"(#pragma omp task input([n] a) output([n] b)
void f(const float *a, float *b, float *extra, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i] + extra[i];
}
)");
  ASSERT_EQ(msgs.size(), 1u) << (msgs.empty() ? "" : msgs[0]);
  EXPECT_TRUE(any_contains(msgs, "pointer parameter 'extra'")) << msgs[0];
  EXPECT_TRUE(any_contains(msgs, "no input/output/inout clause")) << msgs[0];
  EXPECT_EQ(mcc::lint(R"(#pragma omp task input([n] a) output([n] b)
void f(const float *a, float *b, float *extra, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i];
}
)").size(), 0u);  // unreferenced undeclared pointer is fine
}

TEST(MccLintTest, DeadClauseFlagged) {
  auto msgs = lint_messages(R"(#pragma omp task input([n] a, [n] unused) output([n] b)
void f(const float *a, const float *unused, float *b, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i];
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "input clause on 'unused' is dead")) << msgs[0];
}

TEST(MccLintTest, OutReadBeforeWriteFlagged) {
  auto msgs = lint_messages(R"(#pragma omp task input([n] a) output([n] c)
void acc(const float *a, float *c, int n) {
  for (int i = 0; i < n; ++i) c[i] += a[i];
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "output parameter 'c' is read before its first write"))
      << msgs[0];
  EXPECT_TRUE(any_contains(msgs, "should be inout")) << msgs[0];
  // inout on the same body is the fix, and must be clean.
  EXPECT_EQ(mcc::lint(R"(#pragma omp task input([n] a) inout([n] c)
void acc(const float *a, float *c, int n) {
  for (int i = 0; i < n; ++i) c[i] += a[i];
}
)").size(), 0u);
}

TEST(MccLintTest, HelperWriteIsAcceptedAsFirstWrite) {
  // `fill` only writes its pointer parameter, so routing the output region
  // through it is a valid first write, not a read.
  auto msgs = lint_messages(R"(void fill(float *dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = 0.0f;
}
#pragma omp task input([n] a) output([n] c)
void axpy(const float *a, float *c, int n) {
  fill(c, n);
  for (int i = 0; i < n; ++i) c[i] += a[i];
}
)");
  EXPECT_EQ(msgs.size(), 0u) << (msgs.empty() ? "" : msgs[0]);
}

TEST(MccLintTest, HelperReadBeforeWriteFlagged) {
  // `checksum` only reads its pointer parameter, so handing it the output
  // region before any write is still a read-before-write.
  auto msgs = lint_messages(R"(void checksum(const float *src, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) s += src[i];
}
#pragma omp task output([n] c)
void produce(float *c, int n) {
  checksum(c, n);
  for (int i = 0; i < n; ++i) c[i] = 0.0f;
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "output parameter 'c' is read before its first write"))
      << msgs[0];
}

TEST(MccLintTest, TransitiveHelperEffectsResolveThroughCallChains) {
  // `prep` forwards to `fill`, which writes — the chained first use is a
  // clean write.  The mutually recursive `ping`/`pong` pair must not hang
  // the resolver, and the read buried inside the cycle still surfaces.
  auto msgs = lint_messages(R"(void fill(float *dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = 0.0f;
}
void prep(float *buf, int n) {
  fill(buf, n);
}
#pragma omp task output([n] c)
void ok(float *c, int n) {
  prep(c, n);
  c[0] = 1.0f;
}
void ping(float *p, int n);
void pong(float *p, int n) {
  if (n > 0) ping(p, n - 1);
  float v = p[0];
}
void ping(float *p, int n) {
  if (n > 0) pong(p, n - 1);
}
#pragma omp task output([n] d)
void bad(float *d, int n) {
  ping(d, n);
  d[0] = 1.0f;
}
)");
  ASSERT_EQ(msgs.size(), 1u) << (msgs.empty() ? "" : msgs[0]);
  EXPECT_TRUE(any_contains(msgs, "output parameter 'd' is read before its first write"))
      << msgs[0];
}

TEST(MccLintTest, UnproducedTaskwaitOnFlagged) {
  auto msgs = lint_messages(R"(#pragma omp task input([n] a) output([n] b)
void f(const float *a, float *b, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i];
}
int main() {
  float x[8], y[8], z[8];
  f(x, y, 8);
#pragma omp taskwait on(z)
  return 0;
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "taskwait on(z)")) << msgs[0];
  EXPECT_TRUE(any_contains(msgs, "no prior task produces")) << msgs[0];
}

TEST(MccLintTest, ProducedTaskwaitOnClean) {
  EXPECT_EQ(mcc::lint(R"(#pragma omp task input([n] a) output([n] b)
void f(const float *a, float *b, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i];
}
int main() {
  float x[8], y[8];
  f(x, y, 8);
#pragma omp taskwait on(y)
  return 0;
}
)").size(), 0u);
}

TEST(MccLintTest, OutOfLineDefinitionIsMatchedToAnnotatedDeclaration) {
  // The matmul idiom: annotated declaration, plain definition later.  The
  // definition's body reads `a` (declared) and `c` via `+=` on an inout —
  // clean; dropping `a` from the clause list must flag the body reference.
  EXPECT_EQ(mcc::lint(R"(#pragma omp task input([n] a) inout([n] c)
void tile(const float *a, float *c, int n);
void tile(const float *a, float *c, int n) {
  for (int i = 0; i < n; ++i) c[i] += a[i];
}
)").size(), 0u);
  auto msgs = lint_messages(R"(#pragma omp task inout([n] c)
void tile(const float *a, float *c, int n);
void tile(const float *a, float *c, int n) {
  for (int i = 0; i < n; ++i) c[i] += a[i];
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "pointer parameter 'a'")) << msgs[0];
}

TEST(MccLintTest, CommentsStringsAndContinuationsAreHandled) {
  // 'b' only appears in a comment and a string: still a dead clause.  The
  // pragma uses a backslash continuation, nbody-style.
  auto msgs = lint_messages(R"(#pragma omp task input([n] a) \
    output([n] b)
void f(const float *a, float *b, int n) {
  /* b[0] = a[0]; */
  const char *s = "b[0]";
  (void)s;
  (void)a;
  (void)n;
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "output clause on 'b' is dead")) << msgs[0];
}

TEST(MccLintTest, BlockSectionClausesResolveToTheirParameter) {
  // Section syntax must not confuse clause/body matching: [0:n] a still
  // declares `a`, so a body that uses it is clean and one that doesn't is a
  // dead clause.
  EXPECT_EQ(mcc::lint(R"(#pragma omp task input([0:n] a) output([0;n] b)
void f(const float *a, float *b, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i];
}
)").size(), 0u);
  auto msgs = lint_messages(R"(#pragma omp task input([0:n] a, [0:n] unused) output([0;n] b)
void f(const float *a, const float *unused, float *b, int n) {
  for (int i = 0; i < n; ++i) b[i] = a[i];
}
)");
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "input clause on 'unused' is dead")) << msgs[0];
}

TEST(MccLintTest, OverlappingLoopSectionsFlagged) {
  // Stride 8 against 16-element sections: consecutive iterations write the
  // same elements — broken tiling math (diagnostic 5).
  auto msgs = lint_messages(R"(#pragma omp task input([len] a) output([off:len] b)
void stage(const float *a, float *b, int off, int len);

int main() {
  float a[64], b[64];
  for (int i = 0; i < 4; ++i)
    stage(a, b, i * 8, 16);
  return 0;
}
)");
  ASSERT_EQ(msgs.size(), 1u) << (msgs.empty() ? "" : msgs[0]);
  EXPECT_TRUE(any_contains(msgs, "sections of 'b' overlap across loop iterations")) << msgs[0];
  EXPECT_TRUE(any_contains(msgs, "[0:16] at i=0 vs [8:16] at i=1")) << msgs[0];
  EXPECT_TRUE(any_contains(msgs, "stride 8 < length 16")) << msgs[0];
}

TEST(MccLintTest, DisjointStridedLoopSectionsClean) {
  // The canonical tiled spawn: stride equals the section length, pointer
  // arithmetic at the call site (`&b[j]`), bounds behind #define constants.
  EXPECT_EQ(mcc::lint(R"(#define N 64
#define BS 16
#pragma omp task input([0:n] a) output([0:n] b)
void tile(const float *a, float *b, int n);

int main() {
  float a[N], b[N];
  for (int j = 0; j < N; j += BS)
    tile(&a[j], &b[j], BS);
  return 0;
}
)").size(), 0u);
}

TEST(MccLintTest, OverlapThroughPointerArithmeticFlagged) {
  // The loop-varying part can live in the call-site pointer expression
  // rather than the clause: `&b[i * 4]` with fixed [0:8] sections overlaps
  // just the same.
  auto msgs = lint_messages(R"(#pragma omp task inout([0:8] b)
void halo(float *b);

int main() {
  float b[64];
  for (int i = 0; i < 8; i++)
    halo(&b[i * 4]);
  return 0;
}
)");
  ASSERT_EQ(msgs.size(), 1u) << (msgs.empty() ? "" : msgs[0]);
  EXPECT_TRUE(any_contains(msgs, "inout sections of 'b'")) << msgs[0];
  EXPECT_TRUE(any_contains(msgs, "[0:8] at i=0 vs [4:8] at i=1")) << msgs[0];
}

TEST(MccLintTest, LoopSectionEdgeCasesStayQuiet) {
  // Exact-repeat sections (stride 0) are the serialized accumulate idiom;
  // input-mode overlap is harmless; non-constant bounds are unprovable;
  // distinct rows of a 2D array never overlap.  None of these may warn.
  EXPECT_EQ(mcc::lint(R"(#pragma omp task input([0:n] a) inout([0:n] acc)
void add(const float *a, float *acc, int n);
#pragma omp task input([i0:16] src) output([n] dst)
void gather(const float *src, float *dst, int i0, int n);

static float M[8][32];
#pragma omp task inout([32] row)
void rowop(float *row);

int main(int argc, char **argv) {
  float a[64], acc[16], dst[16];
  for (int i = 0; i < 4; ++i)
    add(&a[i * 16], acc, 16);
  for (int i = 0; i < 4; ++i)
    gather(&a[i * 8], dst, 0, 16);
  for (int i = 0; i < argc; ++i)
    rowop(&a[i * 8]);
  for (int i = 0; i < 8; ++i)
    rowop(M[i]);
  return 0;
}
)").size(), 0u);
}

TEST(MccLintTest, AnnotatedExamplesAreClean) {
#ifdef MCC_SOURCE_DIR
  const char* names[] = {"annotated_matmul.ompss.c", "annotated_stream.ompss.c",
                         "annotated_nbody.ompss.c", "annotated_perlin.ompss.c"};
  for (const char* name : names) {
    std::ifstream in(std::string(MCC_SOURCE_DIR) + "/examples/" + name);
    ASSERT_TRUE(in) << name;
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(mcc::lint(ss.str()).size(), 0u) << name;
  }
#endif
}

TEST(MccEndToEndTest, TranslateCompileRun) {
#ifndef MCC_E2E_ENABLED
  GTEST_SKIP() << "end-to-end harness not configured";
#else
  const std::string src_dir = MCC_SOURCE_DIR;
  const std::string build_dir = MCC_BINARY_DIR;
  const std::string work = ::testing::TempDir() + "/mcc_e2e";
  ASSERT_EQ(std::system(("mkdir -p " + work).c_str()), 0);

  // Translate the shipped annotated example.
  std::string cmd = build_dir + "/src/mcc/mcc " + src_dir +
                    "/examples/annotated_stream.ompss.c -o " + work + "/gen.cpp";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // Host-compile against the project libraries.
  std::string compile =
      "c++ -std=c++20 -I" + src_dir + "/src " + work + "/gen.cpp " +
      build_dir + "/src/ompss/libompss_api.a " + build_dir + "/src/nanos/libnanos.a " +
      build_dir + "/src/simcuda/libsimcuda.a " + build_dir + "/src/simnet/libsimnet.a " +
      build_dir + "/src/vt/libompss_vt.a " + build_dir + "/src/common/libompss_common.a " +
      "-lpthread -o " + work + "/prog";
  ASSERT_EQ(std::system(compile.c_str()), 0) << compile;

  // Run with two simulated GPUs and verify the program's own check passes.
  std::string run = "OMPSS_ARGS='gpus=2' " + work + "/prog > " + work + "/out.txt";
  ASSERT_EQ(std::system(run.c_str()), 0) << run;
  std::ifstream out(work + "/out.txt");
  std::stringstream ss;
  ss << out.rdbuf();
  EXPECT_NE(ss.str().find("STREAM check: PASS"), std::string::npos) << ss.str();
#endif
}

}  // namespace
