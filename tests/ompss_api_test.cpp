// Tests for the public ompss:: API layer (Env, TaskBuilder, taskwait forms).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ompss/ompss.hpp"

namespace {

common::Config gpu_config(int gpus, int nodes = 1) {
  common::Config c;
  c.set_int("gpus", gpus);
  c.set_int("nodes", nodes);
  c.set_int("smp_workers", 2);
  return c;
}

TEST(OmpssEnvTest, SingleNodeFromConfig) {
  ompss::Env env(gpu_config(2));
  EXPECT_FALSE(env.is_cluster());
  EXPECT_EQ(env.node_count(), 1);
  EXPECT_EQ(env.node_runtime(0).gpu_count(), 2);
  EXPECT_THROW(env.node_runtime(1), std::out_of_range);
}

TEST(OmpssEnvTest, ClusterFromConfig) {
  ompss::Env env(gpu_config(1, 4));
  EXPECT_TRUE(env.is_cluster());
  EXPECT_EQ(env.node_count(), 4);
  EXPECT_NE(env.cluster(), nullptr);
}

TEST(OmpssEnvTest, CurrentIsSetOnlyDuringRun) {
  ompss::Env env(gpu_config(0));
  EXPECT_EQ(ompss::Env::current(), nullptr);
  env.run([&] { EXPECT_EQ(ompss::Env::current(), &env); });
  EXPECT_EQ(ompss::Env::current(), nullptr);
}

TEST(OmpssEnvTest, TaskOutsideRunThrows) {
  EXPECT_THROW(ompss::task().run([](ompss::Ctx&) {}), std::logic_error);
  EXPECT_THROW(ompss::taskwait(), std::logic_error);
}

TEST(OmpssBuilderTest, ClausesReachTheTask) {
  ompss::Env env(gpu_config(1));
  std::vector<float> a(64, 1.0f), b(64, 0.0f);
  env.run([&] {
    nanos::Task* t = ompss::task()
                         .device(ompss::Device::kCuda)
                         .in(a.data(), a.size() * sizeof(float))
                         .out(b.data(), b.size() * sizeof(float))
                         .flops(123.0)
                         .bytes(456.0)
                         .label("probe")
                         .run([](ompss::Ctx& ctx) {
                           auto* src = ctx.data_as<const float>(0);
                           auto* dst = ctx.data_as<float>(1);
                           for (int i = 0; i < 64; ++i) dst[i] = src[i] * 2;
                         });
    EXPECT_EQ(t->device(), ompss::Device::kCuda);
    EXPECT_EQ(t->accesses().size(), 2u);
    EXPECT_DOUBLE_EQ(t->desc().cost.flops, 123.0);
    EXPECT_DOUBLE_EQ(t->desc().cost.bytes, 456.0);
    EXPECT_EQ(t->label(), "probe");
    ompss::taskwait();
  });
  for (float v : b) ASSERT_FLOAT_EQ(v, 2.0f);
}

TEST(OmpssBuilderTest, DependenceOnlyAccess) {
  ompss::Env env(gpu_config(0));
  int order = 0, first = 0, second = 0;
  double token = 0;
  env.run([&] {
    ompss::task().dep(&token, sizeof(token), nanos::AccessMode::kOut).run([&](ompss::Ctx&) {
      first = ++order;
    });
    ompss::task().dep(&token, sizeof(token), nanos::AccessMode::kIn).run([&](ompss::Ctx&) {
      second = ++order;
    });
    ompss::taskwait();
  });
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(OmpssTaskwaitTest, NoflushLeavesDeviceDataAndFlushBringsIt) {
  ompss::Env env(gpu_config(1));
  std::vector<float> a(32, 0.0f);
  env.run([&] {
    ompss::task()
        .device(ompss::Device::kCuda)
        .inout(a.data(), a.size() * sizeof(float))
        .run([](ompss::Ctx& ctx) { ctx.data_as<float>(0)[0] = 7.0f; });
    ompss::taskwait_noflush();
    EXPECT_FLOAT_EQ(a[0], 0.0f);  // still on the device (write-back default)
    ompss::taskwait();
    EXPECT_FLOAT_EQ(a[0], 7.0f);
  });
}

TEST(OmpssTaskwaitTest, TaskwaitOnSpecificRegion) {
  ompss::Env env(gpu_config(1));
  std::vector<float> a(32, 0.0f), b(32, 0.0f);
  env.run([&] {
    ompss::task()
        .device(ompss::Device::kCuda)
        .out(a.data(), a.size() * sizeof(float))
        .flops(1e3)
        .run([](ompss::Ctx& ctx) { ctx.data_as<float>(0)[0] = 1.0f; });
    ompss::task()
        .device(ompss::Device::kCuda)
        .out(b.data(), b.size() * sizeof(float))
        .flops(1e10)  // long-running
        .run([](ompss::Ctx& ctx) { ctx.data_as<float>(0)[0] = 2.0f; });
    ompss::taskwait_on(a.data(), a.size() * sizeof(float));
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    ompss::taskwait();
    EXPECT_FLOAT_EQ(b[0], 2.0f);
  });
}

TEST(OmpssEnvTest, RunsOnClusterUnchangedCode) {
  // The paper's headline: identical task code on 1 GPU or a 4-node cluster.
  auto body = [](ompss::Env& env, std::vector<float>& v) {
    env.run([&] {
      for (int blk = 0; blk < 8; ++blk) {
        float* p = v.data() + blk * 128;
        ompss::task()
            .device(ompss::Device::kCuda)
            .inout(p, 128 * sizeof(float))
            .flops(1e6)
            .run([](ompss::Ctx& ctx) {
              auto* f = ctx.data_as<float>(0);
              for (int i = 0; i < 128; ++i) f[i] += 1.0f;
            });
      }
      ompss::taskwait();
    });
  };
  std::vector<float> v1(1024, 0.0f), v2(1024, 0.0f);
  {
    ompss::Env env(gpu_config(1));
    body(env, v1);
  }
  {
    ompss::Env env(gpu_config(1, 4));
    body(env, v2);
  }
  EXPECT_EQ(v1, v2);
  for (float x : v1) ASSERT_FLOAT_EQ(x, 1.0f);
}

TEST(OmpssBuilderTest, NestedTasksInsideClusterTaskStayOnNode) {
  // A remote task decomposes its block into subtasks via the *same* ompss::
  // API (what mcc-generated code does); the children must run on the
  // executing node, not round-trip through the master.
  ompss::Env env(gpu_config(1, 2));
  std::vector<float> a(256, 0.0f);
  std::vector<int> child_nodes(2, -1);
  env.run([&] {
    ompss::task().run([](ompss::Ctx&) {});  // occupies node 0 (round robin)
    ompss::task()
        .inout(a.data(), a.size() * sizeof(float))
        .run([&](ompss::Ctx& parent) {
          float* base = parent.data_as<float>(0);
          int my_node = parent.node();
          for (int half = 0; half < 2; ++half) {
            ompss::task()
                .device(ompss::Device::kCuda)
                .inout(base + half * 128, 128 * sizeof(float))
                .run([&child_nodes, half, my_node](ompss::Ctx& c) {
                  EXPECT_EQ(c.node(), my_node);
                  child_nodes[static_cast<std::size_t>(half)] = c.node();
                  auto* f = c.data_as<float>(0);
                  for (int i = 0; i < 128; ++i) f[i] += 1.0f;
                });
          }
          ompss::taskwait();  // waits only this task's children, on-node
        });
    ompss::taskwait();
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 1.0f);
  EXPECT_NE(child_nodes[0], -1);
  EXPECT_EQ(child_nodes[0], child_nodes[1]);
}

TEST(OmpssEnvTest, SequentialEnvsAreIndependent) {
  for (int i = 0; i < 3; ++i) {
    ompss::Env env(gpu_config(1));
    int ran = 0;
    env.run([&] {
      ompss::task().run([&](ompss::Ctx&) { ran = 1; });
      ompss::taskwait();
    });
    EXPECT_EQ(ran, 1);
    EXPECT_GE(env.clock().now(), 0.0);
  }
}

}  // namespace
