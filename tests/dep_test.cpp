// Dependency-layer tests: RAW/WAR/WAW arcs, readiness callbacks, taskwait
// semantics, conservative overlap handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "nanos/dep.hpp"
#include "nanos/task.hpp"
#include "vt/clock.hpp"

namespace {

using nanos::Access;
using nanos::DependencyDomain;
using nanos::Task;
using nanos::TaskDesc;

class DepTest : public ::testing::Test {
protected:
  DepTest()
      : domain_(clock_, [this](Task* t, Task* releaser) {
          ready_.push_back(t);
          releasers_.push_back(releaser);
        }) {}

  Task* make_task(std::vector<Access> accesses) {
    TaskDesc d;
    d.accesses = std::move(accesses);
    tasks_.push_back(std::make_unique<Task>(next_id_++, std::move(d), clock_));
    return tasks_.back().get();
  }

  bool is_ready(Task* t) const {
    return std::find(ready_.begin(), ready_.end(), t) != ready_.end();
  }

  vt::Clock clock_;
  std::vector<Task*> ready_;
  std::vector<Task*> releasers_;
  std::vector<std::unique_ptr<Task>> tasks_;
  DependencyDomain domain_;
  std::uint64_t next_id_ = 1;
};

double data_a[64], data_b[64], data_c[64];

TEST_F(DepTest, IndependentTasksAreImmediatelyReady) {
  Task* t1 = make_task({Access::out(data_a, sizeof(data_a))});
  Task* t2 = make_task({Access::out(data_b, sizeof(data_b))});
  domain_.submit(t1);
  domain_.submit(t2);
  EXPECT_TRUE(is_ready(t1));
  EXPECT_TRUE(is_ready(t2));
  EXPECT_EQ(releasers_[0], nullptr);
}

TEST_F(DepTest, RawChainReleasesInOrder) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  Task* r = make_task({Access::in(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.submit(r);
  EXPECT_TRUE(is_ready(w));
  EXPECT_FALSE(is_ready(r));  // blocked on the writer
  domain_.on_complete(w);
  EXPECT_TRUE(is_ready(r));
  EXPECT_EQ(releasers_.back(), w);  // released by w — the "dep" policy hint
}

TEST_F(DepTest, TwoReadersRunInParallelAfterWriter) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  Task* r1 = make_task({Access::in(data_a, sizeof(data_a))});
  Task* r2 = make_task({Access::in(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.submit(r1);
  domain_.submit(r2);
  domain_.on_complete(w);
  EXPECT_TRUE(is_ready(r1));
  EXPECT_TRUE(is_ready(r2));
}

TEST_F(DepTest, WarBlocksWriterUntilReadersFinish) {
  Task* w1 = make_task({Access::out(data_a, sizeof(data_a))});
  Task* r1 = make_task({Access::in(data_a, sizeof(data_a))});
  Task* r2 = make_task({Access::in(data_a, sizeof(data_a))});
  Task* w2 = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w1);
  domain_.submit(r1);
  domain_.submit(r2);
  domain_.submit(w2);
  domain_.on_complete(w1);
  EXPECT_FALSE(is_ready(w2));
  domain_.on_complete(r1);
  EXPECT_FALSE(is_ready(w2));  // one reader still outstanding
  domain_.on_complete(r2);
  EXPECT_TRUE(is_ready(w2));
}

TEST_F(DepTest, WawSerializesWriters) {
  Task* w1 = make_task({Access::out(data_a, sizeof(data_a))});
  Task* w2 = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w1);
  domain_.submit(w2);
  EXPECT_FALSE(is_ready(w2));
  domain_.on_complete(w1);
  EXPECT_TRUE(is_ready(w2));
}

TEST_F(DepTest, InoutActsAsReadAndWrite) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  Task* io = make_task({Access::inout(data_a, sizeof(data_a))});
  Task* r = make_task({Access::in(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.submit(io);
  domain_.submit(r);
  EXPECT_FALSE(is_ready(io));
  EXPECT_FALSE(is_ready(r));
  domain_.on_complete(w);
  EXPECT_TRUE(is_ready(io));
  EXPECT_FALSE(is_ready(r));  // reads the *new* version produced by io
  domain_.on_complete(io);
  EXPECT_TRUE(is_ready(r));
}

TEST_F(DepTest, DisjointRegionsOfSameArrayAreIndependent) {
  Task* w1 = make_task({Access::out(data_a, 32 * sizeof(double))});
  Task* w2 = make_task({Access::out(data_a + 32, 32 * sizeof(double))});
  domain_.submit(w1);
  domain_.submit(w2);
  EXPECT_TRUE(is_ready(w1));
  EXPECT_TRUE(is_ready(w2));
}

TEST_F(DepTest, OverlappingRegionsAreConservativelyOrdered) {
  // [0,48) and [32,64): distinct regions, byte overlap — must be ordered.
  Task* w1 = make_task({Access::out(data_a, 48 * sizeof(double))});
  Task* w2 = make_task({Access::out(data_a + 32, 32 * sizeof(double))});
  domain_.submit(w1);
  domain_.submit(w2);
  EXPECT_TRUE(is_ready(w1));
  EXPECT_FALSE(is_ready(w2));
  domain_.on_complete(w1);
  EXPECT_TRUE(is_ready(w2));
}

TEST_F(DepTest, MultiAccessTaskDependsOnAllProducers) {
  Task* wa = make_task({Access::out(data_a, sizeof(data_a))});
  Task* wb = make_task({Access::out(data_b, sizeof(data_b))});
  Task* sum = make_task({Access::in(data_a, sizeof(data_a)), Access::in(data_b, sizeof(data_b)),
                         Access::out(data_c, sizeof(data_c))});
  domain_.submit(wa);
  domain_.submit(wb);
  domain_.submit(sum);
  domain_.on_complete(wa);
  EXPECT_FALSE(is_ready(sum));
  domain_.on_complete(wb);
  EXPECT_TRUE(is_ready(sum));
}

TEST_F(DepTest, DependenceOnlyAccessesStillOrder) {
  auto dep_only = [](void* p, std::size_t n, nanos::AccessMode m) {
    Access a;
    a.region = common::Region(p, n);
    a.mode = m;
    a.copy = false;
    return a;
  };
  Task* w = make_task({dep_only(data_a, sizeof(data_a), nanos::AccessMode::kOut)});
  Task* r = make_task({dep_only(data_a, sizeof(data_a), nanos::AccessMode::kIn)});
  domain_.submit(w);
  domain_.submit(r);
  EXPECT_FALSE(is_ready(r));
  domain_.on_complete(w);
  EXPECT_TRUE(is_ready(r));
}

TEST_F(DepTest, WaitOnBlocksUntilProducerCompletes) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w);
  vt::Flag reached(clock_);
  // Hold: this (unattached) test thread drives completion, so the waiter
  // blocking alone must not be declared a deadlock.
  std::optional<vt::Hold> hold;
  hold.emplace(clock_);
  vt::Thread waiter(clock_, "waiter", [&] {
    domain_.wait_on(common::Region(data_a, sizeof(data_a)));
    reached.set();
  });
  EXPECT_FALSE(reached.is_set());
  domain_.on_complete(w);
  hold.reset();
  reached.wait();
  waiter.join();
}

TEST_F(DepTest, WaitAllWaitsForEveryTask) {
  Task* t1 = make_task({Access::out(data_a, sizeof(data_a))});
  Task* t2 = make_task({Access::out(data_b, sizeof(data_b))});
  domain_.submit(t1);
  domain_.submit(t2);
  EXPECT_EQ(domain_.live_tasks(), 2u);
  domain_.on_complete(t1);
  EXPECT_EQ(domain_.live_tasks(), 1u);
  domain_.on_complete(t2);
  EXPECT_EQ(domain_.live_tasks(), 0u);
  domain_.wait_all();  // returns immediately
}

TEST_F(DepTest, CompletedProducersCreateNoArcs) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.on_complete(w);
  Task* r = make_task({Access::in(data_a, sizeof(data_a))});
  domain_.submit(r);
  EXPECT_TRUE(is_ready(r));  // the producer is done; no arc against it
}

TEST_F(DepTest, LongChainPropagatesOneAtATime) {
  constexpr int kLen = 20;
  std::vector<Task*> chain;
  for (int i = 0; i < kLen; ++i)
    chain.push_back(make_task({Access::inout(data_a, sizeof(data_a))}));
  for (Task* t : chain) domain_.submit(t);
  for (int i = 0; i < kLen; ++i) {
    ASSERT_TRUE(is_ready(chain[static_cast<std::size_t>(i)])) << "link " << i;
    if (i + 1 < kLen) {
      EXPECT_FALSE(is_ready(chain[static_cast<std::size_t>(i + 1)]));
    }
    domain_.on_complete(chain[static_cast<std::size_t>(i)]);
  }
}

// --- scaling regressions -----------------------------------------------------
// The directory used to walk every earlier record per submit and purge the
// whole map per completion (O(n²) for n tasks).  These tests pin the fixed
// behaviour: records scanned stays O(1) per lookup, and large graphs release
// in the right order even through the swap-erase / epoch-invalidation paths.

TEST_F(DepTest, TenThousandLinkChainScansO1RecordsPerTask) {
  constexpr std::size_t kLen = 10000;
  std::vector<Task*> chain;
  chain.reserve(kLen);
  for (std::size_t i = 0; i < kLen; ++i)
    chain.push_back(make_task({Access::inout(data_a, sizeof(data_a))}));
  for (Task* t : chain) domain_.submit(t);
  // One record exists; each submit must visit just it, not all predecessors.
  EXPECT_EQ(domain_.lookups(), kLen);
  EXPECT_LE(domain_.records_scanned(), 2 * domain_.lookups());
  // Completion releases exactly one successor at a time, in chain order.
  ASSERT_EQ(ready_.size(), 1u);
  for (std::size_t i = 0; i < kLen; ++i) {
    ASSERT_EQ(ready_.size(), i + 1) << "link " << i;
    ASSERT_EQ(ready_[i], chain[i]) << "link " << i;
    domain_.on_complete(chain[i]);
  }
  EXPECT_EQ(ready_.size(), kLen);
}

TEST_F(DepTest, TenThousandReaderFanBulkClearsOnNextWriter) {
  constexpr std::size_t kFan = 10000;
  Task* w1 = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w1);
  std::vector<Task*> readers;
  readers.reserve(kFan);
  for (std::size_t i = 0; i < kFan; ++i) {
    readers.push_back(make_task({Access::in(data_a, sizeof(data_a))}));
    domain_.submit(readers.back());
  }
  // w2 carries a WAR arc from every reader; registering it bulk-clears the
  // readers list, so the readers later detach through the stale-epoch path.
  Task* w2 = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w2);
  EXPECT_LE(domain_.records_scanned(), 2 * domain_.lookups());
  ASSERT_EQ(ready_.size(), 1u);  // only w1 so far
  domain_.on_complete(w1);
  EXPECT_EQ(ready_.size(), 1 + kFan);  // the whole fan released at once
  for (std::size_t i = kFan; i-- > 0;) {
    EXPECT_NE(ready_.back(), w2) << "writer released with readers pending";
    domain_.on_complete(readers[i]);
  }
  EXPECT_EQ(ready_.back(), w2);  // last reader's completion released it
}

TEST_F(DepTest, ReaderFanRetiringOutOfOrderKeepsDirectoryConsistent) {
  // No trailing writer this time: each reader's completion swap-erases it
  // from the live readers list (repairing the moved entry's back-reference).
  constexpr std::size_t kFan = 1000;
  std::vector<Task*> readers;
  readers.reserve(kFan);
  for (std::size_t i = 0; i < kFan; ++i) {
    readers.push_back(make_task({Access::in(data_a, sizeof(data_a))}));
    domain_.submit(readers.back());
  }
  // Retire evens front-to-back, then odds back-to-front.
  for (std::size_t i = 0; i < kFan; i += 2) domain_.on_complete(readers[i]);
  for (int i = static_cast<int>(kFan) - 1; i >= 1; i -= 2)
    domain_.on_complete(readers[static_cast<std::size_t>(i)]);
  // A writer submitted now must see no live readers (arcs to retired tasks
  // would deadlock it).
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w);
  EXPECT_TRUE(is_ready(w));
}

TEST_F(DepTest, DisjointTileWavesScanO1RecordsPerSubmit) {
  constexpr std::size_t kTiles = 4096;
  static std::vector<double> big(kTiles * 8);
  auto tile = [&](std::size_t i) { return big.data() + i * 8; };
  std::vector<Task*> wave1, wave2;
  for (std::size_t i = 0; i < kTiles; ++i) {
    wave1.push_back(make_task({Access::out(tile(i), 8 * sizeof(double))}));
    domain_.submit(wave1.back());
  }
  EXPECT_EQ(ready_.size(), kTiles);  // disjoint tiles: all independent
  const std::uint64_t scanned_wave1 = domain_.records_scanned();
  for (std::size_t i = 0; i < kTiles; ++i) {
    wave2.push_back(make_task({Access::out(tile(i), 8 * sizeof(double))}));
    domain_.submit(wave2.back());
  }
  // With 4096 records live, each wave-2 submit must still only touch its own
  // tile's record — not walk the directory.
  EXPECT_LE(domain_.records_scanned() - scanned_wave1, 3 * kTiles);
  EXPECT_EQ(ready_.size(), kTiles);  // every wave-2 writer WAW-blocked
  domain_.on_complete(wave1[7]);
  ASSERT_EQ(ready_.size(), kTiles + 1);
  EXPECT_EQ(ready_.back(), wave2[7]);  // releasing a tile releases *its* writer
}

// -- early dependency release (release_region) --------------------------------

TEST_F(DepTest, EarlyReleaseUnblocksOnlyCoveredSuccessors) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a)), Access::out(data_b, sizeof(data_b))});
  Task* ra = make_task({Access::in(data_a, sizeof(data_a))});
  Task* rb = make_task({Access::in(data_b, sizeof(data_b))});
  domain_.submit(w);
  domain_.submit(ra);
  domain_.submit(rb);
  domain_.release_region(w, common::Region(data_a, sizeof(data_a)));
  EXPECT_TRUE(is_ready(ra));  // its producing region released mid-task
  EXPECT_FALSE(is_ready(rb));  // b still owned by the running producer
  EXPECT_EQ(releasers_.back(), w);
  domain_.on_complete(w);
  EXPECT_TRUE(is_ready(rb));
}

TEST_F(DepTest, PartialRangeReleasesNothing) {
  // Released bytes must *cover* an access to drop its arc — a prefix of the
  // region keeps the successor blocked.
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  Task* r = make_task({Access::in(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.submit(r);
  domain_.release_region(w, common::Region(data_a, sizeof(data_a) / 2));
  EXPECT_FALSE(is_ready(r));
  domain_.on_complete(w);
  EXPECT_TRUE(is_ready(r));
}

TEST_F(DepTest, DoubleReleaseThenCompleteFiresReadyOnce) {
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  Task* r = make_task({Access::in(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.submit(r);
  domain_.release_region(w, common::Region(data_a, sizeof(data_a)));
  domain_.release_region(w, common::Region(data_a, sizeof(data_a)));
  domain_.on_complete(w);
  EXPECT_EQ(std::count(ready_.begin(), ready_.end(), r), 1);
}

TEST_F(DepTest, ReaderEarlyReleaseDropsWarArc) {
  Task* r = make_task({Access::in(data_a, sizeof(data_a))});
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(r);
  domain_.submit(w);
  EXPECT_FALSE(is_ready(w));  // WAR: writer waits for the live reader
  domain_.release_region(r, common::Region(data_a, sizeof(data_a)));
  EXPECT_TRUE(is_ready(w));
}

TEST_F(DepTest, LaterWriterSkipsEarlyReleasedProducer) {
  // Once w released a, it no longer appears in a's directory record: a writer
  // submitted afterwards must not grow an arc to the still-running w.
  Task* w = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w);
  domain_.release_region(w, common::Region(data_a, sizeof(data_a)));
  Task* w2 = make_task({Access::out(data_a, sizeof(data_a))});
  domain_.submit(w2);
  EXPECT_TRUE(is_ready(w2));
  domain_.on_complete(w);  // must not double-release or crash
  EXPECT_EQ(std::count(ready_.begin(), ready_.end(), w2), 1);
}

}  // namespace
