// Instrumentation-layer tests: event recording, resource attribution,
// Chrome-JSON rendering, and end-to-end wiring through the runtime.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "nanos/runtime.hpp"
#include "nanos/trace.hpp"

namespace {

TEST(TraceRecorderTest, RecordsIntervalsInVirtualTime) {
  vt::Clock clock;
  nanos::TraceRecorder trace(clock);
  vt::AttachGuard guard(clock, "main");
  double t0 = trace.begin();
  clock.sleep_for(0.25);
  trace.record("task", "smp0", "work", t0);
  auto evs = trace.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "work");
  EXPECT_EQ(evs[0].resource, "smp0");
  EXPECT_DOUBLE_EQ(evs[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(evs[0].end, 0.25);
}

TEST(TraceRecorderTest, ChromeJsonHasEventsAndThreadNames) {
  vt::Clock clock;
  nanos::TraceRecorder trace(clock);
  trace.record("task", "gpu0", "sgemm", 0.0);
  trace.record("transfer", "gpu0.xfer", "h2d", 0.0);
  std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"sgemm\""), std::string::npos);
  EXPECT_NE(json.find("\"h2d\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"gpu0.xfer\""), std::string::npos);
}

TEST(TraceTest, RuntimeWritesTraceFileOnShutdown) {
  std::string path = ::testing::TempDir() + "/ompss_trace_test.json";
  std::remove(path.c_str());
  {
    nanos::RuntimeConfig cfg;
    cfg.smp_workers = 2;
    simcuda::DeviceProps props;
    props.memory_bytes = 1u << 20;
    cfg.gpus.assign(1, props);
    cfg.trace_path = path;
    vt::Clock clock;
    nanos::Runtime rt(clock, cfg);
    ASSERT_NE(rt.trace(), nullptr);
    std::vector<float> a(64, 0.0f);
    vt::Thread driver(clock, "app", [&] {
      nanos::TaskDesc d;
      d.device = nanos::DeviceKind::kCuda;
      d.label = "traced-kernel";
      d.accesses = {nanos::Access::inout(a.data(), a.size() * sizeof(float))};
      d.cost.flops = 1e6;
      d.fn = [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; };
      rt.spawn(std::move(d));
      rt.taskwait();
    });
    driver.join();
    // Task + at least one transfer were recorded.
    EXPECT_GE(rt.trace()->event_count(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("traced-kernel"), std::string::npos);
  EXPECT_NE(ss.str().find("gpu0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, DisabledByDefault) {
  nanos::RuntimeConfig cfg;
  cfg.smp_workers = 1;
  vt::Clock clock;
  nanos::Runtime rt(clock, cfg);
  EXPECT_EQ(rt.trace(), nullptr);
}

TEST(TraceTest, ConfigKeyEnablesTracing) {
  common::Config c;
  c.parse_args("trace=/tmp/x.json");
  auto cfg = nanos::RuntimeConfig::from(c);
  EXPECT_EQ(cfg.trace_path, "/tmp/x.json");
}

}  // namespace
