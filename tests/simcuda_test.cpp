// Tests for the simulated CUDA platform: allocator behaviour, stream
// ordering, engine overlap, the pinned-memory rule for async copies, and the
// cost model's virtual-time accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "simcuda/simcuda.hpp"
#include "vt/clock.hpp"

namespace {

using simcuda::Device;
using simcuda::DeviceProps;
using simcuda::KernelCost;
using simcuda::Platform;

DeviceProps small_props() {
  DeviceProps p;
  p.memory_bytes = 1u << 20;  // 1 MiB
  p.gflops = 1000.0;          // 1 TFLOP/s
  p.pcie_bandwidth = 1.0e9;   // 1 GB/s: 1 MB ≈ 1 ms
  p.mem_bandwidth = 100.0e9;
  p.kernel_launch_overhead = 0.0;
  p.copy_overhead = 0.0;
  return p;
}

class SimCudaTest : public ::testing::Test {
protected:
  SimCudaTest() : platform_(clock_, {small_props(), small_props()}) {}

  vt::Clock clock_;
  Platform platform_;
};

TEST_F(SimCudaTest, DeviceCountAndProps) {
  EXPECT_EQ(platform_.device_count(), 2);
  EXPECT_EQ(platform_.device(0).id(), 0);
  EXPECT_EQ(platform_.device(1).id(), 1);
  EXPECT_EQ(platform_.device(0).capacity(), 1u << 20);
}

TEST_F(SimCudaTest, AllocatorBasicAllocFree) {
  Device& d = platform_.device(0);
  void* a = d.malloc(1000);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(d.owns(a));
  std::size_t free_after = d.free_bytes();
  EXPECT_LT(free_after, d.capacity());
  d.free(a);
  EXPECT_EQ(d.free_bytes(), d.capacity());
}

TEST_F(SimCudaTest, AllocatorReturnsNullOnExhaustion) {
  Device& d = platform_.device(0);
  void* a = d.malloc(900u << 10);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(d.malloc(200u << 10), nullptr);  // no room left
  d.free(a);
  EXPECT_NE(a = d.malloc(200u << 10), nullptr);
  d.free(a);
}

TEST_F(SimCudaTest, AllocatorCoalescesFreedNeighbors) {
  Device& d = platform_.device(0);
  void* a = d.malloc(256u << 10);
  void* b = d.malloc(256u << 10);
  void* c = d.malloc(256u << 10);
  ASSERT_TRUE(a && b && c);
  // Largest free block now is the tail (< 256 KiB + change).
  d.free(a);
  d.free(c);
  // a and c are not adjacent: freeing b must merge all three + tail.
  d.free(b);
  EXPECT_EQ(d.largest_free_block(), d.capacity());
}

TEST_F(SimCudaTest, AllocatorZeroBytesReturnsNull) {
  EXPECT_EQ(platform_.device(0).malloc(0), nullptr);
}

TEST_F(SimCudaTest, FreeingForeignPointerThrows) {
  Device& d = platform_.device(0);
  char local;
  EXPECT_THROW(d.free(&local), std::invalid_argument);
}

TEST_F(SimCudaTest, DeviceIsolation) {
  // A pointer from device 0 does not belong to device 1.
  void* a = platform_.device(0).malloc(128);
  EXPECT_TRUE(platform_.device(0).owns(a));
  EXPECT_FALSE(platform_.device(1).owns(a));
  platform_.device(0).free(a);
}

TEST_F(SimCudaTest, SyncCopiesRoundTrip) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  std::vector<float> src(1024);
  std::iota(src.begin(), src.end(), 0.0f);
  std::vector<float> dst(1024, -1.0f);
  void* dev = d.malloc(src.size() * sizeof(float));
  ASSERT_NE(dev, nullptr);
  d.memcpy_h2d(dev, src.data(), src.size() * sizeof(float));
  d.memcpy_d2h(dst.data(), dev, src.size() * sizeof(float));
  EXPECT_EQ(src, dst);
  d.free(dev);
}

TEST_F(SimCudaTest, CopyTimeMatchesBandwidthModel) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  std::vector<char> host(512u << 10);
  void* dev = d.malloc(host.size());
  double t0 = clock_.now();
  d.memcpy_h2d(dev, host.data(), host.size());  // 512 KiB at 1 GB/s
  double elapsed = clock_.now() - t0;
  EXPECT_NEAR(elapsed, static_cast<double>(host.size()) / 1e9, 1e-9);
  d.free(dev);
}

TEST_F(SimCudaTest, KernelDurationFollowsCostModel) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  double t0 = clock_.now();
  // 2 GFLOP at 1 TFLOP/s = 2 ms (compute-bound)
  d.launch_kernel(d.default_stream(), KernelCost{2e9, 0.0}, [] {});
  d.default_stream().synchronize();
  EXPECT_NEAR(clock_.now() - t0, 2e-3, 1e-9);
  // Memory-bound: 1 GB at 100 GB/s = 10 ms > flops time.
  t0 = clock_.now();
  d.launch_kernel(d.default_stream(), KernelCost{1e6, 1e9}, [] {});
  d.default_stream().synchronize();
  EXPECT_NEAR(clock_.now() - t0, 1e-2, 1e-9);
}

TEST_F(SimCudaTest, KernelsRunRealPayloads) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  constexpr std::size_t kN = 256;
  auto* dev = static_cast<float*>(d.malloc(kN * sizeof(float)));
  std::vector<float> init(kN, 2.0f);
  d.memcpy_h2d(dev, init.data(), kN * sizeof(float));
  d.launch_kernel(d.default_stream(), KernelCost{static_cast<double>(kN), 0.0}, [dev] {
    for (std::size_t i = 0; i < kN; ++i) dev[i] *= 3.0f;
  });
  std::vector<float> out(kN);
  d.memcpy_d2h(out.data(), dev, kN * sizeof(float));
  for (float v : out) EXPECT_FLOAT_EQ(v, 6.0f);
  d.free(dev);
}

TEST_F(SimCudaTest, SameStreamOpsSerialize) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  double t0 = clock_.now();
  for (int i = 0; i < 3; ++i)
    d.launch_kernel(d.default_stream(), KernelCost{1e9, 0.0}, [] {});  // 1 ms each
  d.default_stream().synchronize();
  EXPECT_NEAR(clock_.now() - t0, 3e-3, 1e-9);
}

TEST_F(SimCudaTest, DistinctStreamCopiesAndKernelsOverlap) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  simcuda::Stream* s1 = d.create_stream();
  simcuda::Stream* s2 = d.create_stream();
  void* dev = d.malloc(512u << 10);
  void* pin = platform_.host_alloc_pinned(512u << 10);

  // 512 KiB copy ≈ 0.512 ms on the copy engine, 1 GFLOP kernel = 1 ms on the
  // kernel engine.  In different streams they overlap: total ≈ max, not sum.
  double t0 = clock_.now();
  d.memcpy_h2d_async(*s1, dev, pin, 512u << 10);
  d.launch_kernel(*s2, KernelCost{1e9, 0.0}, [] {});
  d.synchronize();
  double elapsed = clock_.now() - t0;
  EXPECT_NEAR(elapsed, 1e-3, 1e-7);

  // In the *same* stream they serialize.
  t0 = clock_.now();
  d.memcpy_h2d_async(*s1, dev, pin, 512u << 10);
  d.launch_kernel(*s1, KernelCost{1e9, 0.0}, [] {});
  d.synchronize();
  elapsed = clock_.now() - t0;
  EXPECT_NEAR(elapsed, 1e-3 + static_cast<double>(512u << 10) / 1e9, 1e-7);

  platform_.host_free_pinned(pin);
  d.free(dev);
  d.destroy_stream(s1);
  d.destroy_stream(s2);
}

TEST_F(SimCudaTest, UnpinnedAsyncCopyBlocksCaller) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  std::vector<char> unpinned(256u << 10);
  void* dev = d.malloc(unpinned.size());
  double t0 = clock_.now();
  d.memcpy_h2d_async(d.default_stream(), dev, unpinned.data(), unpinned.size());
  // The call itself must have consumed the transfer time (synchronous).
  EXPECT_GT(clock_.now() - t0, 0.0);
  EXPECT_NEAR(clock_.now() - t0, static_cast<double>(256u << 10) / 1e9, 1e-7);
  EXPECT_EQ(d.stats().count("h2d_unpinned_ops"), 1u);
  d.free(dev);
}

TEST_F(SimCudaTest, PinnedAsyncCopyReturnsImmediately) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  void* pin = platform_.host_alloc_pinned(256u << 10);
  void* dev = d.malloc(256u << 10);
  double t0 = clock_.now();
  d.memcpy_h2d_async(d.default_stream(), dev, pin, 256u << 10);
  EXPECT_DOUBLE_EQ(clock_.now(), t0);  // returned without blocking
  d.default_stream().synchronize();
  EXPECT_GT(clock_.now(), t0);
  EXPECT_EQ(d.stats().count("h2d_unpinned_ops"), 0u);
  platform_.host_free_pinned(pin);
  d.free(dev);
}

TEST_F(SimCudaTest, PinnedRegistryTracksSubranges) {
  char* pin = static_cast<char*>(platform_.host_alloc_pinned(4096));
  EXPECT_TRUE(platform_.is_pinned(pin, 4096));
  EXPECT_TRUE(platform_.is_pinned(pin + 1024, 1024));
  EXPECT_FALSE(platform_.is_pinned(pin + 2048, 4096));  // runs past the end
  char local[16];
  EXPECT_FALSE(platform_.is_pinned(local, sizeof(local)));
  EXPECT_EQ(platform_.pinned_bytes(), 4096u);
  platform_.host_free_pinned(pin);
  EXPECT_EQ(platform_.pinned_bytes(), 0u);
  EXPECT_THROW(platform_.host_free_pinned(local), std::invalid_argument);
}

TEST_F(SimCudaTest, EventsRecordCompletionTimestamps) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  simcuda::Event ev(clock_);
  d.launch_kernel(d.default_stream(), KernelCost{1e9, 0.0}, [] {});  // 1 ms
  d.record_event(d.default_stream(), ev);
  EXPECT_FALSE(ev.query());
  ev.synchronize();
  EXPECT_TRUE(ev.query());
  EXPECT_NEAR(ev.timestamp(), 1e-3, 1e-9);
}

TEST_F(SimCudaTest, CallbacksRunAfterPriorWork) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  std::vector<int> sequence;
  d.launch_kernel(d.default_stream(), KernelCost{1e9, 0.0}, [&] { sequence.push_back(1); });
  d.add_callback(d.default_stream(), [&] { sequence.push_back(2); });
  d.launch_kernel(d.default_stream(), KernelCost{1e9, 0.0}, [&] { sequence.push_back(3); });
  d.synchronize();
  EXPECT_EQ(sequence, (std::vector<int>{1, 2, 3}));
}

TEST_F(SimCudaTest, TwoDevicesRunConcurrently) {
  vt::AttachGuard guard(clock_, "main");
  double t0 = clock_.now();
  platform_.device(0).launch_kernel(platform_.device(0).default_stream(), KernelCost{5e9, 0.0},
                                    [] {});
  platform_.device(1).launch_kernel(platform_.device(1).default_stream(), KernelCost{5e9, 0.0},
                                    [] {});
  platform_.device(0).synchronize();
  platform_.device(1).synchronize();
  // Two 5 ms kernels on two devices: 5 ms total, not 10.
  EXPECT_NEAR(clock_.now() - t0, 5e-3, 1e-9);
}

TEST_F(SimCudaTest, StatsCountTransfers) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  std::vector<char> buf(1024);
  void* dev = d.malloc(1024);
  d.memcpy_h2d(dev, buf.data(), 1024);
  d.memcpy_d2h(buf.data(), dev, 1024);
  d.memcpy_d2h(buf.data(), dev, 1024);
  EXPECT_EQ(d.stats().count("h2d_ops"), 1u);
  EXPECT_EQ(d.stats().count("d2h_ops"), 2u);
  EXPECT_DOUBLE_EQ(d.stats().sum("d2h_bytes"), 2048.0);
  d.free(dev);
}

TEST_F(SimCudaTest, ManyStreamsInterleaveFairly) {
  // Four streams with 4 kernels each: FIFO within a stream, round-robin
  // across streams; all 16 complete and the total equals the serial sum on
  // the single kernel engine.
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  std::vector<simcuda::Stream*> streams;
  std::atomic<int> ran{0};
  for (int s = 0; s < 4; ++s) streams.push_back(d.create_stream());
  double t0 = clock_.now();
  for (int k = 0; k < 4; ++k)
    for (auto* s : streams)
      d.launch_kernel(*s, KernelCost{1e9, 0.0}, [&ran] { ran++; });  // 1 ms each
  d.synchronize();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_NEAR(clock_.now() - t0, 16e-3, 1e-6);
  for (auto* s : streams) d.destroy_stream(s);
}

TEST_F(SimCudaTest, DestroyDefaultStreamRejected) {
  Device& d = platform_.device(0);
  EXPECT_THROW(d.destroy_stream(&d.default_stream()), std::invalid_argument);
}

TEST_F(SimCudaTest, AllocationStressAgainstCapacity) {
  // Fill, free every other, refill smaller: the allocator must track
  // capacity exactly and never hand out overlapping blocks.
  Device& d = platform_.device(0);
  std::vector<void*> blocks;
  for (;;) {
    void* p = d.malloc(64u << 10);
    if (p == nullptr) break;
    for (void* q : blocks) EXPECT_NE(p, q);
    blocks.push_back(p);
  }
  EXPECT_EQ(blocks.size(), (1u << 20) / (64u << 10));
  for (std::size_t i = 0; i < blocks.size(); i += 2) d.free(blocks[i]);
  std::size_t refilled = 0;
  while (d.malloc(32u << 10) != nullptr) ++refilled;
  EXPECT_EQ(refilled, blocks.size());  // two 32K per freed 64K hole
  for (std::size_t i = 1; i < blocks.size(); i += 2) d.free(blocks[i]);
}

TEST_F(SimCudaTest, EventOrderingAcrossStreams) {
  vt::AttachGuard guard(clock_, "main");
  Device& d = platform_.device(0);
  simcuda::Stream* s1 = d.create_stream();
  simcuda::Stream* s2 = d.create_stream();
  simcuda::Event e1(clock_), e2(clock_);
  d.launch_kernel(*s1, KernelCost{2e9, 0.0}, [] {});  // 2 ms
  d.record_event(*s1, e1);
  d.launch_kernel(*s2, KernelCost{1e9, 0.0}, [] {});  // 1 ms — but same engine!
  d.record_event(*s2, e2);
  e1.synchronize();
  e2.synchronize();
  // One kernel engine: the s2 kernel runs after s1's (round-robin pick saw
  // s1 first), so e2 completes last.
  EXPECT_GT(e2.timestamp(), e1.timestamp());
  d.destroy_stream(s1);
  d.destroy_stream(s2);
}

TEST_F(SimCudaTest, LaunchOverheadIsCharged) {
  DeviceProps p = small_props();
  p.kernel_launch_overhead = 5e-6;
  vt::Clock clock;
  Platform platform(clock, {p});
  vt::AttachGuard guard(clock, "main");
  Device& d = platform.device(0);
  double t0 = clock.now();
  d.launch_kernel(d.default_stream(), KernelCost{0.0, 0.0}, [] {});
  d.default_stream().synchronize();
  EXPECT_NEAR(clock.now() - t0, 5e-6, 1e-12);
}

}  // namespace
