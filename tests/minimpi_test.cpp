// Tests for the MPI-like layer used by the paper's baseline applications.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "minimpi/minimpi.hpp"
#include "vt/clock.hpp"

namespace {

using minimpi::Comm;
using minimpi::World;

// Runs `body(rank_comm)` on `n` vt threads, one per rank, and joins them.
void run_ranks(vt::Clock& clock, World& world, int n,
               const std::function<void(Comm)>& body) {
  std::vector<vt::Thread> ranks;
  ranks.reserve(static_cast<std::size_t>(n));
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  for (int r = 0; r < n; ++r)
    ranks.emplace_back(clock, "rank" + std::to_string(r), [&, r] { body(world.comm(r)); });
  hold.reset();
  for (auto& t : ranks) t.join();
}

struct MpiFixture {
  MpiFixture(int nodes, simnet::LinkProps props = {}) : net(clock, nodes, props), world(net) {}
  vt::Clock clock;
  simnet::Network net;
  World world;
};

TEST(MiniMpiTest, BlockingSendRecv) {
  MpiFixture f(2);
  std::vector<int> received(4, 0);
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 0) {
      std::vector<int> data{1, 2, 3, 4};
      c.send(1, 42, data.data(), data.size() * sizeof(int));
    } else {
      c.recv(0, 42, received.data(), received.size() * sizeof(int));
    }
  });
  EXPECT_EQ(received, (std::vector<int>{1, 2, 3, 4}));
}

TEST(MiniMpiTest, RecvPostedBeforeSend) {
  MpiFixture f(2);
  int value = 0;
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 1) {
      c.recv(0, 7, &value, sizeof(value));  // parks first
    } else {
      f.clock.sleep_for(0.01);
      int v = 99;
      c.send(1, 7, &v, sizeof(v));
    }
  });
  EXPECT_EQ(value, 99);
}

TEST(MiniMpiTest, TagMatchingSelectsRightMessage) {
  MpiFixture f(2);
  int a = 0, b = 0;
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 0) {
      int x = 10, y = 20;
      c.send(1, /*tag=*/1, &x, sizeof(x));
      c.send(1, /*tag=*/2, &y, sizeof(y));
    } else {
      // Receive in reverse tag order: matching must pair by tag, not arrival.
      c.recv(0, 2, &b, sizeof(b));
      c.recv(0, 1, &a, sizeof(a));
    }
  });
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 20);
}

TEST(MiniMpiTest, AnySourceAndAnyTag) {
  MpiFixture f(3);
  std::vector<int> got;
  std::mutex mu;
  run_ranks(f.clock, f.world, 3, [&](Comm c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        c.recv(minimpi::kAnySource, minimpi::kAnyTag, &v, sizeof(v));
        std::lock_guard<std::mutex> lk(mu);
        got.push_back(v);
      }
    } else {
      int v = c.rank() * 100;
      c.send(0, c.rank(), &v, sizeof(v));
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 300);
}

TEST(MiniMpiTest, NonblockingOverlap) {
  MpiFixture f(2);
  std::vector<char> big(1u << 20);
  std::vector<char> in(1u << 20);
  double compute_done_at = 0.0;
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 0) {
      auto req = c.isend(1, 0, big.data(), big.size());
      f.clock.sleep_for(0.05);  // "compute" while the transfer flies
      compute_done_at = f.clock.now();
      req.wait();
    } else {
      c.recv(0, 0, in.data(), in.size());
    }
  });
  // The 1 MiB transfer (~2 ms) fits entirely inside the 50 ms of compute.
  EXPECT_NEAR(f.clock.now(), compute_done_at, 1e-6);
}

TEST(MiniMpiTest, SendrecvExchangesWithoutDeadlock) {
  MpiFixture f(2);
  int got0 = 0, got1 = 0;
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    int mine = (c.rank() + 1) * 11;
    int peer = 1 - c.rank();
    int* out = c.rank() == 0 ? &got0 : &got1;
    c.sendrecv(peer, 5, &mine, sizeof(mine), peer, 5, out, sizeof(*out));
  });
  EXPECT_EQ(got0, 22);
  EXPECT_EQ(got1, 11);
}

TEST(MiniMpiTest, BarrierSynchronizesRanks) {
  MpiFixture f(4);
  std::atomic<int> arrived{0};
  std::atomic<int> min_seen{100};
  run_ranks(f.clock, f.world, 4, [&](Comm c) {
    f.clock.sleep_for(0.001 * (c.rank() + 1));
    arrived++;
    c.barrier();
    // After the barrier everyone must observe all four arrivals.
    int seen = arrived.load();
    int cur = min_seen.load();
    while (seen < cur && !min_seen.compare_exchange_weak(cur, seen)) {
    }
  });
  EXPECT_EQ(min_seen.load(), 4);
}

TEST(MiniMpiTest, BcastDistributesFromRoot) {
  MpiFixture f(4);
  std::vector<std::vector<int>> bufs(4, std::vector<int>(8, 0));
  run_ranks(f.clock, f.world, 4, [&](Comm c) {
    if (c.rank() == 2) std::iota(bufs[2].begin(), bufs[2].end(), 5);
    c.bcast(bufs[static_cast<std::size_t>(c.rank())].data(), 8 * sizeof(int), /*root=*/2);
  });
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 8; ++i) EXPECT_EQ(bufs[static_cast<std::size_t>(r)][i], 5 + i);
  }
}

TEST(MiniMpiTest, AllgatherCollectsRankMajor) {
  MpiFixture f(3);
  std::vector<std::vector<double>> out(3, std::vector<double>(3, 0.0));
  run_ranks(f.clock, f.world, 3, [&](Comm c) {
    double mine = 1.5 * c.rank();
    c.allgather(&mine, sizeof(mine), out[static_cast<std::size_t>(c.rank())].data());
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][0], 0.0);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][1], 1.5);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][2], 3.0);
  }
}

TEST(MiniMpiTest, ReduceSumAtRoot) {
  MpiFixture f(4);
  std::vector<double> result(2, 0.0);
  run_ranks(f.clock, f.world, 4, [&](Comm c) {
    std::vector<double> mine{static_cast<double>(c.rank()), 1.0};
    c.reduce_sum(mine.data(), result.data(), 2, /*root=*/0);
  });
  EXPECT_DOUBLE_EQ(result[0], 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(result[1], 4.0);
}

TEST(MiniMpiTest, TooSmallReceiveBufferThrows) {
  MpiFixture f(2);
  std::atomic<bool> threw{false};
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 0) {
      std::vector<char> data(64);
      try {
        c.send(1, 0, data.data(), data.size());
      } catch (const std::length_error&) {
        threw = true;
      }
    } else {
      char tiny[8];
      try {
        c.recv(0, 0, tiny, sizeof(tiny));
      } catch (const std::length_error&) {
        threw = true;
      }
    }
  });
  EXPECT_TRUE(threw.load());
}

TEST(MiniMpiTest, RequestTestReportsCompletion) {
  MpiFixture f(2);
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 0) {
      std::vector<char> big(256u << 10);  // above the eager limit: rendezvous
      auto req = c.isend(1, 0, big.data(), big.size());
      EXPECT_FALSE(req.test());  // receiver hasn't posted yet
      f.clock.sleep_for(1.0);    // receiver posts at 0.5 and drains
      EXPECT_TRUE(req.test());
      req.wait();
    } else {
      f.clock.sleep_for(0.5);
      std::vector<char> in(256u << 10);
      c.recv(0, 0, in.data(), in.size());
    }
  });
}

TEST(MiniMpiTest, EagerSendCompletesBeforeRecvPosted) {
  MpiFixture f(2);
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    if (c.rank() == 0) {
      int v = 5;
      auto req = c.isend(1, 0, &v, sizeof(v));  // small: eager
      EXPECT_TRUE(req.test());                  // buffer reusable immediately
      v = 999;  // must not corrupt the in-flight message (it was copied)
      req.wait();
    } else {
      f.clock.sleep_for(0.25);
      int got = 0;
      c.recv(0, 0, &got, sizeof(got));
      EXPECT_EQ(got, 5);
    }
  });
}

TEST(MiniMpiTest, LargeMessageUsesRendezvousTiming) {
  // A 1 MiB message over a 1 GB/s link costs ~2.1 ms (tx+rx) once matched.
  simnet::LinkProps link;
  link.bandwidth = 1e9;
  link.latency = 0;
  link.am_overhead = 0;
  MpiFixture f(2, link);
  double recv_done = 0;
  run_ranks(f.clock, f.world, 2, [&](Comm c) {
    std::vector<char> buf(1u << 20);
    if (c.rank() == 0) {
      c.send(1, 0, buf.data(), buf.size());
    } else {
      c.recv(0, 0, buf.data(), buf.size());
      recv_done = f.clock.now();
    }
  });
  EXPECT_NEAR(recv_done, 2.0 * (1u << 20) / 1e9, 1e-5);
}

TEST(MiniMpiTest, BadRankThrows) {
  MpiFixture f(2);
  EXPECT_THROW(f.world.comm(2), std::out_of_range);
  EXPECT_THROW(f.world.comm(-1), std::out_of_range);
}

TEST(MiniMpiTest, ManyMessagesStress) {
  MpiFixture f(4);
  constexpr int kMsgs = 50;
  std::vector<long long> sums(4, 0);
  run_ranks(f.clock, f.world, 4, [&](Comm c) {
    // Each rank sends kMsgs integers to every other rank and sums what it
    // receives from everyone.
    std::vector<minimpi::Request> reqs;
    std::vector<std::vector<int>> inbox(4, std::vector<int>(kMsgs));
    for (int r = 0; r < 4; ++r) {
      if (r == c.rank()) continue;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(c.irecv(r, i, &inbox[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)], sizeof(int)));
    }
    std::vector<int> payload(kMsgs);
    for (int i = 0; i < kMsgs; ++i) payload[static_cast<std::size_t>(i)] = c.rank() * 1000 + i;
    for (int r = 0; r < 4; ++r) {
      if (r == c.rank()) continue;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(c.isend(r, i, &payload[static_cast<std::size_t>(i)], sizeof(int)));
    }
    for (auto& q : reqs) q.wait();
    long long sum = 0;
    for (int r = 0; r < 4; ++r) {
      if (r == c.rank()) continue;
      for (int i = 0; i < kMsgs; ++i) sum += inbox[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
    }
    sums[static_cast<std::size_t>(c.rank())] = sum;
  });
  // Expected: sum over other ranks r of sum_i (r*1000 + i).
  auto expect_for = [&](int me) {
    long long s = 0;
    for (int r = 0; r < 4; ++r) {
      if (r == me) continue;
      for (int i = 0; i < kMsgs; ++i) s += r * 1000 + i;
    }
    return s;
  };
  for (int r = 0; r < 4; ++r) EXPECT_EQ(sums[static_cast<std::size_t>(r)], expect_for(r));
}

}  // namespace
