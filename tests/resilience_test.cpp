// Resilience subsystem tests: deterministic fault injection (simnet fault
// plans), heartbeat failure detection, and node-failure recovery in the
// cluster runtime — both policies (resilience=off fails fast with a clean
// error at taskwait; resilience=retry re-executes affected tasks and
// regenerates lost regions on surviving nodes).
//
// All faults are virtual-time scheduled, so every scenario here is exactly
// reproducible; the property test at the bottom leans on that to sweep a
// family of random single-node crash schedules.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "nanos/cluster.hpp"
#include "simnet/simnet.hpp"
#include "vt/clock.hpp"

namespace {

using nanos::Access;
using nanos::ClusterConfig;
using nanos::ClusterRuntime;
using nanos::DeviceKind;
using nanos::TaskDesc;

ClusterConfig base_cluster(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node_scheduler = "bf";  // chunked round robin: deterministic spread
  cfg.rr_chunk = 1;
  cfg.segment_bytes = 32u << 20;
  cfg.node.smp_workers = 2;
  cfg.node.smp_gflops = 1.0;  // 1e9 flop/s: cost.flops = duration in ns
  cfg.node.scheduler = "dep";
  cfg.node.cache_policy = "wb";
  // taskcheck rides along: node loss and recovery replay must preserve the
  // directory invariants (lost/recovering entries are skipped mid-repair).
  cfg.node.verify = "all";
  cfg.link.bandwidth = 1e9;
  return cfg;
}

void run_app(ClusterConfig cfg, const std::function<void(ClusterRuntime&, vt::Clock&)>& body) {
  vt::Clock clock;
  ClusterRuntime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "app", [&] { body(rt, clock); });
  driver.join();
}

/// SMP task of `ms` virtual milliseconds (smp_gflops=1 above).
TaskDesc smp_task(std::vector<Access> acc, nanos::TaskFn fn, double ms) {
  TaskDesc d;
  d.device = DeviceKind::kSmp;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.cost.flops = ms * 1e6;
  return d;
}

// ---------------------------------------------------------------------------
// simnet fault plans are deterministic.

/// Sends `n` numbered shorts 0->1 through a lossy network and returns the
/// delivered sequence.
std::vector<int> lossy_sequence(const simnet::FaultPlan& plan, int n) {
  vt::Clock clock;
  std::vector<int> seen;
  std::mutex mu;
  simnet::Network net(clock, 2);
  net.endpoint(1).register_handler(0, [&](int, const void* p, std::size_t) {
    std::lock_guard<std::mutex> lk(mu);
    seen.push_back(*static_cast<const int*>(p));
  });
  net.set_fault_plan(plan);
  vt::Thread driver(clock, "app", [&] {
    for (int i = 0; i < n; ++i) net.endpoint(0).am_short(1, 0, &i, sizeof(i));
    // All messages are latency+overhead bound: one virtual second drains
    // everything that was not dropped.
    clock.sleep_for(1.0);
  });
  driver.join();
  net.shutdown();
  return seen;
}

TEST(FaultPlanTest, DropAndDuplicateAreDeterministicPerSeed) {
  simnet::FaultPlan plan;
  plan.drop_fraction = 0.2;
  plan.duplicate_fraction = 0.1;
  plan.seed = 42;
  const int n = 200;
  std::vector<int> a = lossy_sequence(plan, n);
  std::vector<int> b = lossy_sequence(plan, n);
  // Same plan, same traffic: the identical messages are dropped/duplicated.
  EXPECT_EQ(a, b);
  // The loss model actually did something.
  EXPECT_LT(a.size(), static_cast<std::size_t>(n));
  // A different seed perturbs a different subset.
  plan.seed = 43;
  std::vector<int> c = lossy_sequence(plan, n);
  EXPECT_NE(a, c);
}

TEST(FaultPlanTest, NodeKillSilencesBothDirections) {
  vt::Clock clock;
  std::atomic<int> received{0};
  simnet::Network net(clock, 2);
  net.endpoint(0).register_handler(0, [&](int, const void*, std::size_t) { ++received; });
  net.endpoint(1).register_handler(0, [&](int, const void*, std::size_t) { ++received; });
  simnet::FaultPlan plan;
  plan.kills.push_back({1, 1e-3});
  net.set_fault_plan(plan);
  vt::Thread driver(clock, "app", [&] {
    int x = 0;
    net.endpoint(0).am_short(1, 0, &x, sizeof(x));  // before the kill: lands
    clock.sleep_for(2e-3);
    EXPECT_TRUE(net.node_dead(1));
    net.endpoint(0).am_short(1, 0, &x, sizeof(x));  // to a dead node: vanishes
    net.endpoint(1).am_short(0, 0, &x, sizeof(x));  // from a dead node: vanishes
    clock.sleep_for(2e-3);
  });
  driver.join();
  net.shutdown();
  EXPECT_EQ(received.load(), 1);
}

// ---------------------------------------------------------------------------
// Heartbeat detection.

TEST(ResilienceTest, HeartbeatDetectsKilledNodeWithinLease) {
  ClusterConfig cfg = base_cluster(3);
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  cfg.faults.kills.push_back({2, 5e-3});
  std::vector<float> a(64, 0.0f);
  std::uint64_t detected = 0, latency_count = 0;
  double latency = 0.0;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    // A chain on one region: the first task lands on node 0 (round robin
    // from zero) and affinity-by-dependence keeps the rest there, so the
    // kill of idle node 2 affects no work — only the detector notices.
    for (int i = 0; i < 8; ++i) {
      rt.spawn(smp_task({Access::inout(a.data(), a.size() * sizeof(float))},
                        [](nanos::TaskContext& c) { c.data_as<float>(0)[0] += 1.0f; },
                        /*ms=*/5.0));
    }
    rt.taskwait();  // resilience=off, but nothing ran on the dead node
    detected = rt.stats().count("res.failures_detected");
    latency_count = rt.stats().count("res.detect_latency");
    latency = rt.stats().get("res.detect_latency").max;
  });
  EXPECT_FLOAT_EQ(a[0], 8.0f);
  ASSERT_EQ(detected, 1u);
  ASSERT_EQ(latency_count, 1u);
  EXPECT_GT(latency, 0.0);
  // Bound: one lease of silence plus a few heartbeat periods of slack.
  EXPECT_LE(latency, 5e-3 + 3 * 1e-3);
}

// ---------------------------------------------------------------------------
// resilience=off: fail fast, never hang.

TEST(ResilienceTest, OffModeKillFailsCleanlyAtTaskwait) {
  ClusterConfig cfg = base_cluster(2);
  cfg.resilience.mode = "off";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  cfg.faults.kills.push_back({1, 2e-3});  // mid-run
  constexpr int kRegions = 4;
  std::vector<std::vector<float>> r(kRegions, std::vector<float>(64, 0.0f));
  bool threw = false;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    for (int i = 0; i < kRegions; ++i) {
      // Round robin: regions 1 and 3 run on node 1, which dies mid-task.
      rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                        [](nanos::TaskContext& c) { c.data_as<float>(0)[0] += 1.0f; },
                        /*ms=*/10.0));
    }
    try {
      rt.taskwait();
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("node failure"), std::string::npos) << e.what();
    }
    // The runtime survives the failure: master-local work still runs.
    rt.spawn(smp_task({Access::inout(r[0].data(), r[0].size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[1] = 7.0f; },
                      /*ms=*/1.0));
    rt.taskwait();
  });
  EXPECT_TRUE(threw);
  EXPECT_FLOAT_EQ(r[0][1], 7.0f);
}

// ---------------------------------------------------------------------------
// resilience=retry: the run completes with correct numerics.

TEST(ResilienceTest, RetryModeKillMidRunCompletesCorrectly) {
  ClusterConfig cfg = base_cluster(3);
  cfg.resilience.mode = "retry";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  cfg.faults.kills.push_back({1, 7e-3});
  constexpr int kRegions = 6;
  constexpr int kChain = 2;
  std::vector<std::vector<float>> r(kRegions, std::vector<float>(64, 0.0f));
  std::uint64_t detected = 0, retried = 0;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    for (int c = 0; c < kChain; ++c) {
      for (int i = 0; i < kRegions; ++i) {
        rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                          [](nanos::TaskContext& ctx) {
                            auto* f = ctx.data_as<float>(0);
                            for (int k = 0; k < 64; ++k) f[k] += 1.0f;
                          },
                          /*ms=*/5.0));
      }
    }
    rt.taskwait();
    detected = rt.stats().count("res.failures_detected");
    retried = rt.stats().count("res.tasks_retried");
  });
  for (int i = 0; i < kRegions; ++i) {
    for (float v : r[i]) ASSERT_FLOAT_EQ(v, static_cast<float>(kChain)) << "region " << i;
  }
  EXPECT_EQ(detected, 1u);
  EXPECT_GE(retried, 1u);
}

TEST(ResilienceTest, RetryRegeneratesRegionWhoseOnlyCopyDied) {
  ClusterConfig cfg = base_cluster(3);
  cfg.resilience.mode = "retry";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  // Node 1 dies after its producer committed but before anything pulled the
  // result home: the only copy of region b is lost and must be regenerated
  // from the redo log on a survivor.
  cfg.faults.kills.push_back({1, 10e-3});
  std::vector<float> pad(64, 0.0f);
  std::vector<float> b(64, 0.0f);
  std::uint64_t detected = 0, lost = 0, recovered = 0;
  bool committed_before_kill = false;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock& clk) {
    // Round robin: pad's task takes node 0, b's producer takes node 1.
    rt.spawn(smp_task({Access::inout(pad.data(), pad.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; },
                      /*ms=*/2.0));
    rt.spawn(smp_task({Access::inout(b.data(), b.size() * sizeof(float))},
                      [](nanos::TaskContext& c) {
                        auto* f = c.data_as<float>(0);
                        for (int k = 0; k < 64; ++k) f[k] = 3.0f;
                      },
                      /*ms=*/2.0));
    rt.taskwait(/*flush=*/false);  // producer committed; b still lives on node 1 only
    // taskwait can only return once the producer's DONE was processed, so
    // returning before the kill proves the sole copy on node 1 committed —
    // the redo-replay premise.  In the rare interleaving where the kill
    // swallowed the DONE instead, taskwait blocks until the task retry on a
    // survivor finishes (well past the kill) and no region is ever lost;
    // the replay-specific expectations are gated on the premise.
    committed_before_kill = clk.now() < 10e-3;
    clk.sleep_for(25e-3);          // node 1 dies and the lease expires meanwhile
    rt.taskwait();                 // flush must regenerate b — its holder is gone
    detected = rt.stats().count("res.failures_detected");
    lost = rt.stats().count("res.regions_lost");
    recovered = rt.stats().count("res.regions_recovered");
  });
  for (float v : b) ASSERT_FLOAT_EQ(v, 3.0f);
  EXPECT_EQ(detected, 1u);
  if (committed_before_kill) {
    EXPECT_GE(lost, 1u);
    EXPECT_GE(recovered, 1u);
  }
}

TEST(ResilienceTest, HomeNodeDeathRehomesShardsAndRecovers) {
  // With the sharded directory a killed node takes ~1/N of the directory's
  // home duty with it.  Its shard must move to survivors (re-homing), the
  // in-flight commits and transfers addressed to the old home must be
  // re-driven, and the post-recovery coherence walk (verify=all runs at
  // every taskwait) must come back clean — a violation or a lost update
  // would surface as a taskwait throw or a wrong sum below.
  ClusterConfig cfg = base_cluster(4);
  cfg.slave_to_slave = true;  // sharding needs peer transfers
  cfg.resilience.mode = "retry";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  cfg.faults.kills.push_back({2, 7e-3});
  constexpr int kRegions = 32;
  constexpr int kChain = 2;
  std::vector<std::vector<float>> r(kRegions, std::vector<float>(64, 0.0f));
  std::uint64_t detected = 0, rehomed = 0;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    for (int c = 0; c < kChain; ++c) {
      for (int i = 0; i < kRegions; ++i) {
        rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                          [](nanos::TaskContext& ctx) {
                            auto* f = ctx.data_as<float>(0);
                            for (int k = 0; k < 64; ++k) f[k] += 1.0f;
                          },
                          /*ms=*/2.0));
      }
    }
    rt.taskwait();
    detected = rt.stats().count("res.failures_detected");
    rehomed = rt.stats().count("cluster.shards_rehomed");
  });
  for (int i = 0; i < kRegions; ++i) {
    for (float v : r[i]) ASSERT_FLOAT_EQ(v, static_cast<float>(kChain)) << "region " << i;
  }
  EXPECT_EQ(detected, 1u);
  // 32 hash-homed regions over 4 nodes: the victim homes some of them with
  // overwhelming probability, and every one of its entries must have moved.
  EXPECT_GT(rehomed, 0u);
}

TEST(ResilienceTest, RackKillRehomesShardsAndRecovers) {
  // A whole rack dies at once (switch or power failure): every member must
  // be detected, every directory shard homed inside the dead rack must move
  // to survivors, and the retried work must still produce exact results.
  ClusterConfig cfg = base_cluster(6);
  cfg.topology.racks = 2;
  cfg.topology.nodes_per_rack = 3;  // master (node 0) lives in rack 0
  cfg.slave_to_slave = true;        // sharding needs peer transfers
  cfg.resilience.mode = "retry";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  cfg.faults.kill_rack(1, 7e-3);
  constexpr int kRegions = 32;
  constexpr int kChain = 2;
  std::vector<std::vector<float>> r(kRegions, std::vector<float>(64, 0.0f));
  std::uint64_t detected = 0, rehomed = 0;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    for (int c = 0; c < kChain; ++c) {
      for (int i = 0; i < kRegions; ++i) {
        rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                          [](nanos::TaskContext& ctx) {
                            auto* f = ctx.data_as<float>(0);
                            for (int k = 0; k < 64; ++k) f[k] += 1.0f;
                          },
                          /*ms=*/2.0));
      }
    }
    rt.taskwait();
    detected = rt.stats().count("res.failures_detected");
    rehomed = rt.stats().count("cluster.shards_rehomed");
  });
  for (int i = 0; i < kRegions; ++i) {
    for (float v : r[i]) ASSERT_FLOAT_EQ(v, static_cast<float>(kChain)) << "region " << i;
  }
  // All three members of rack 1 die together.
  EXPECT_EQ(detected, 3u);
  // 32 hash-homed regions over 6 nodes: rack 1 homes some of them with
  // overwhelming probability, and every one of its entries must have moved.
  EXPECT_GT(rehomed, 0u);
}

TEST(ResilienceTest, HotRackDegradeCompletesWithCorrectResults) {
  // The hot-rack preset collapses rack 1's uplink to a quarter of its
  // capacity mid-run.  Nothing fails — the fabric just gets slow — so the
  // run must complete exactly, and the taskwait flush must publish the
  // per-tier fabric counters it crossed.
  ClusterConfig cfg = base_cluster(4);
  cfg.topology.racks = 2;
  cfg.topology.nodes_per_rack = 2;
  cfg.topology.rack_link_bw = 1e9;
  cfg.topology.core_link_bw = 2e9;
  cfg.faults = simnet::FaultPlan::hot_rack(1, 2e-3, 0.25);
  constexpr int kRegions = 16;
  std::vector<std::vector<float>> r(kRegions, std::vector<float>(256, 1.0f));
  std::uint64_t published = 0;
  double core_bytes = 0;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    for (int i = 0; i < kRegions; ++i) {
      rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                        [](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (int k = 0; k < 256; ++k) f[k] *= 2.0f;
                        },
                        /*ms=*/1.0));
    }
    rt.taskwait();
    published = rt.stats().count("net.uplink_busy_frac");
    core_bytes = rt.stats().sum("net.core_bytes");
  });
  for (int i = 0; i < kRegions; ++i) {
    for (float v : r[i]) ASSERT_FLOAT_EQ(v, 2.0f) << "region " << i;
  }
  EXPECT_GE(published, 1u);    // taskwait published the fabric counters
  EXPECT_GT(core_bytes, 0.0);  // staging to rack 1 actually crossed the core
}

TEST(ResilienceTest, OffModeLostRegionFailsCleanly) {
  ClusterConfig cfg = base_cluster(2);
  cfg.resilience.mode = "off";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 5e-3;
  cfg.faults.kills.push_back({1, 10e-3});
  std::vector<float> pad(64, 0.0f);
  std::vector<float> b(64, 0.0f);
  bool threw = false;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock& clk) {
    rt.spawn(smp_task({Access::inout(pad.data(), pad.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; },
                      /*ms=*/2.0));
    rt.spawn(smp_task({Access::inout(b.data(), b.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 3.0f; },
                      /*ms=*/2.0));
    // If the kill swallowed the producer's DONE instead of its committed
    // copy, off-mode fails the task itself and the error surfaces at the
    // FIRST taskwait — either way a clean "lost" error, never a hang.
    try {
      rt.taskwait(/*flush=*/false);
      clk.sleep_for(25e-3);  // node 1 dies and the lease expires meanwhile
      rt.taskwait();  // flush needs node 1's sole copy of b — clean error
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("lost"), std::string::npos) << e.what();
    }
  });
  EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------------
// Message loss (no node death): retries mask a lossy wire.

TEST(ResilienceTest, MessageLossRetryCompletesCorrectly) {
  ClusterConfig cfg = base_cluster(2);
  cfg.resilience.mode = "retry";
  cfg.resilience.heartbeat_period = 1e-3;
  cfg.resilience.node_lease = 20e-3;  // pongs can be lost too: roomy lease
  cfg.faults.drop_fraction = 0.08;
  cfg.faults.duplicate_fraction = 0.05;
  cfg.faults.seed = 7;
  constexpr int kRegions = 8;
  std::vector<std::vector<float>> r(kRegions, std::vector<float>(64, 0.0f));
  std::uint64_t detected = 0;
  run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
    for (int i = 0; i < kRegions; ++i) {
      rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                        [](nanos::TaskContext& c) {
                          auto* f = c.data_as<float>(0);
                          for (int k = 0; k < 64; ++k) f[k] += 2.0f;
                        },
                        /*ms=*/3.0));
    }
    rt.taskwait();
    detected = rt.stats().count("res.failures_detected");
  });
  for (int i = 0; i < kRegions; ++i) {
    for (float v : r[i]) ASSERT_FLOAT_EQ(v, 2.0f) << "region " << i;
  }
  EXPECT_EQ(detected, 0u);
}

// ---------------------------------------------------------------------------
// Property: random single-node crash schedules all converge.

TEST(ResilienceTest, RandomCrashSchedulesConverge) {
  constexpr int kSchedules = 6;
  constexpr int kRegions = 5;
  constexpr int kChain = 3;
  for (int seed = 1; seed <= kSchedules; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    ClusterConfig cfg = base_cluster(3);
    cfg.resilience.mode = "retry";
    cfg.resilience.heartbeat_period = 1e-3;
    cfg.resilience.node_lease = 5e-3;
    const int victim = 1 + static_cast<int>(rng() % 2);
    const double when = 1e-3 + (static_cast<double>(rng() % 1000) / 1000.0) * 30e-3;
    cfg.faults.kills.push_back({victim, when});
    std::vector<std::vector<float>> r(kRegions, std::vector<float>(32, 0.0f));
    run_app(std::move(cfg), [&](ClusterRuntime& rt, vt::Clock&) {
      for (int c = 0; c < kChain; ++c) {
        for (int i = 0; i < kRegions; ++i) {
          rt.spawn(smp_task({Access::inout(r[i].data(), r[i].size() * sizeof(float))},
                            [](nanos::TaskContext& ctx) {
                              auto* f = ctx.data_as<float>(0);
                              for (int k = 0; k < 32; ++k) f[k] += 1.0f;
                            },
                            /*ms=*/4.0));
        }
      }
      rt.taskwait();
    });
    for (int i = 0; i < kRegions; ++i) {
      for (float v : r[i]) {
        ASSERT_FLOAT_EQ(v, static_cast<float>(kChain))
            << "seed " << seed << " victim " << victim << " t=" << when << " region " << i;
      }
    }
  }
}

}  // namespace
