// Matmul application tests: all four versions agree with the serial
// reference on every execution environment.
#include <gtest/gtest.h>

#include "apps/matmul/matmul.hpp"

namespace {

using apps::matmul::InitMode;
using apps::matmul::Params;
using apps::matmul::run_cuda;
using apps::matmul::run_mpicuda;
using apps::matmul::run_ompss;
using apps::matmul::run_serial;

Params small_params() {
  Params p;
  p.nb = 4;
  p.bs_phys = 32;
  p.bs_logical = 1024.0;
  return p;
}

TEST(MatmulTest, SerialChecksumIsDeterministic) {
  Params p = small_params();
  auto r1 = run_serial(p);
  auto r2 = run_serial(p);
  EXPECT_DOUBLE_EQ(r1.checksum, r2.checksum);
  EXPECT_NE(r1.checksum, 0.0);
}

TEST(MatmulTest, CudaMatchesSerial) {
  Params p = small_params();
  auto ref = run_serial(p);
  vt::Clock clock;
  auto r = run_cuda(p, clock, apps::tesla_s2050(p.byte_scale()));
  EXPECT_NEAR(r.checksum, ref.checksum, std::abs(ref.checksum) * 1e-5 + 1e-3);
  EXPECT_GT(r.gflops, 0.0);
}

TEST(MatmulTest, OmpssSingleGpuMatchesSerial) {
  Params p = small_params();
  auto ref = run_serial(p);
  ompss::Env env(apps::multi_gpu_node(1, p.byte_scale()));
  auto r = run_ompss(env, p, InitMode::kSeq);
  EXPECT_NEAR(r.checksum, ref.checksum, std::abs(ref.checksum) * 1e-5 + 1e-3);
}

TEST(MatmulTest, OmpssMultiGpuAllPoliciesMatchSerial) {
  Params p = small_params();
  auto ref = run_serial(p);
  for (const char* sched : {"bf", "dep", "affinity"}) {
    for (const char* cache : {"nocache", "wt", "wb"}) {
      auto cfg = apps::multi_gpu_node(4, p.byte_scale());
      cfg.scheduler = sched;
      cfg.cache_policy = cache;
      ompss::Env env(cfg);
      auto r = run_ompss(env, p, InitMode::kSeq);
      EXPECT_NEAR(r.checksum, ref.checksum, std::abs(ref.checksum) * 1e-5 + 1e-3)
          << sched << "/" << cache;
    }
  }
}

TEST(MatmulTest, OmpssClusterAllInitModesMatchSerial) {
  Params p = small_params();
  auto ref = run_serial(p);
  for (InitMode init : {InitMode::kSeq, InitMode::kSmp, InitMode::kGpu}) {
    for (bool stos : {false, true}) {
      auto cfg = apps::gpu_cluster(4, p.byte_scale());
      cfg.slave_to_slave = stos;
      cfg.presend = 1;
      ompss::Env env(cfg);
      auto r = run_ompss(env, p, init);
      EXPECT_NEAR(r.checksum, ref.checksum, std::abs(ref.checksum) * 1e-5 + 1e-3)
          << "init=" << static_cast<int>(init) << " stos=" << stos;
    }
  }
}

TEST(MatmulTest, MpiCudaMatchesSerialOnGrids) {
  Params p = small_params();
  auto ref = run_serial(p);
  for (int ranks : {1, 2, 4}) {
    vt::Clock clock;
    auto r = run_mpicuda(p, clock, ranks, apps::qdr_infiniband(p.byte_scale()),
                         apps::gtx480(p.byte_scale()));
    EXPECT_NEAR(r.checksum, ref.checksum, std::abs(ref.checksum) * 1e-5 + 1e-3)
        << ranks << " ranks";
  }
}

TEST(MatmulTest, MultiGpuIsFasterThanSingle) {
  Params p = small_params();
  auto run_with = [&](int gpus) {
    auto cfg = apps::multi_gpu_node(gpus, p.byte_scale());
    cfg.scheduler = "affinity";
    cfg.cache_policy = "wb";
    ompss::Env env(cfg);
    return run_ompss(env, p, InitMode::kSeq).seconds;
  };
  double t1 = run_with(1);
  double t4 = run_with(4);
  EXPECT_LT(t4, t1);
}

}  // namespace
