// Scheduler policy tests: FIFO order (bf), successor-first dispatch (dep),
// affinity placement and stealing (locality-aware).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "nanos/scheduler.hpp"
#include "vt/clock.hpp"

namespace {

using nanos::DeviceKind;
using nanos::Scheduler;
using nanos::Task;
using nanos::TaskDesc;

class SchedTest : public ::testing::Test {
protected:
  Task* make_task(DeviceKind kind, std::string label = "t") {
    TaskDesc d;
    d.device = kind;
    d.label = std::move(label);
    tasks_.push_back(std::make_unique<Task>(next_id_++, std::move(d), clock_));
    return tasks_.back().get();
  }

  vt::Clock clock_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::uint64_t next_id_ = 1;
};

TEST_F(SchedTest, FactoryRejectsUnknownPolicy) {
  EXPECT_THROW(Scheduler::create("fancy", clock_, {DeviceKind::kSmp}, nullptr),
               std::invalid_argument);
}

TEST_F(SchedTest, BreadthFirstIsFifoPerKind) {
  auto s = Scheduler::create("bf", clock_, {DeviceKind::kSmp, DeviceKind::kCuda}, nullptr);
  Task* a = make_task(DeviceKind::kSmp);
  Task* b = make_task(DeviceKind::kCuda);
  Task* c = make_task(DeviceKind::kSmp);
  s->submit(a, -1);
  s->submit(b, -1);
  s->submit(c, -1);
  EXPECT_EQ(s->queued(), 3u);
  EXPECT_EQ(s->try_get(0), a);  // smp resource sees smp tasks in order
  EXPECT_EQ(s->try_get(1), b);  // cuda resource sees cuda tasks
  EXPECT_EQ(s->try_get(0), c);
  EXPECT_EQ(s->try_get(0), nullptr);
  EXPECT_EQ(s->queued(), 0u);
}

TEST_F(SchedTest, KindsNeverCross) {
  auto s = Scheduler::create("bf", clock_, {DeviceKind::kSmp, DeviceKind::kCuda}, nullptr);
  Task* gpu_task = make_task(DeviceKind::kCuda);
  s->submit(gpu_task, -1);
  EXPECT_EQ(s->try_get(0), nullptr);  // smp resource cannot take a cuda task
  EXPECT_EQ(s->try_get(1), gpu_task);
}

TEST_F(SchedTest, GetBlocksUntilSubmission) {
  auto s = Scheduler::create("bf", clock_, {DeviceKind::kSmp}, nullptr);
  Task* t = make_task(DeviceKind::kSmp);
  Task* got = nullptr;
  std::optional<vt::Hold> hold;
  hold.emplace(clock_);
  vt::Thread worker(clock_, "worker", [&] { got = s->get(0); });
  s->submit(t, -1);
  hold.reset();
  worker.join();
  EXPECT_EQ(got, t);
}

TEST_F(SchedTest, ShutdownReleasesBlockedGetters) {
  auto s = Scheduler::create("bf", clock_, {DeviceKind::kSmp}, nullptr);
  Task* got = reinterpret_cast<Task*>(0x1);
  std::optional<vt::Hold> hold;
  hold.emplace(clock_);
  vt::Thread worker(clock_, "worker", [&] { got = s->get(0); });
  s->shutdown();
  hold.reset();
  worker.join();
  EXPECT_EQ(got, nullptr);
}

TEST_F(SchedTest, DependenciesPolicyPrefersReleasedSuccessor) {
  auto s = Scheduler::create("dep", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, nullptr);
  Task* queued1 = make_task(DeviceKind::kCuda);
  Task* queued2 = make_task(DeviceKind::kCuda);
  Task* successor = make_task(DeviceKind::kCuda);
  s->submit(queued1, -1);
  s->submit(queued2, -1);
  // `successor` was released by a task that ran on resource 0: it must be the
  // next pick for resource 0 even though queued1/2 arrived earlier.
  s->submit(successor, /*releaser_resource=*/0);
  EXPECT_EQ(s->try_get(0), successor);
  EXPECT_EQ(s->try_get(0), queued1);
  EXPECT_EQ(s->try_get(1), queued2);
}

TEST_F(SchedTest, DependenciesPolicySuccessorSlotDoesNotLeakAcrossResources) {
  auto s = Scheduler::create("dep", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, nullptr);
  Task* successor = make_task(DeviceKind::kCuda);
  s->submit(successor, /*releaser_resource=*/1);
  // The successor is reserved in resource 1's slot, and 1 drains its own
  // slot before the shared queue or any peer's.
  EXPECT_EQ(s->try_get(1), successor);
}

TEST_F(SchedTest, DependenciesPolicyIdlePeerStealsParkedSuccessor) {
  // A successor parked in a busy releaser's slot must not be invisible to
  // idle peers.  This is the early-release stall: the releaser keeps running
  // its tail long after parking the successor, so if peers can't steal it,
  // the whole chain serializes onto one resource.
  common::Stats stats;
  auto s = Scheduler::create("dep", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, nullptr,
                             nullptr, &stats);
  Task* successor = make_task(DeviceKind::kCuda);
  s->submit(successor, /*releaser_resource=*/0);
  // Resource 0 is still executing the releaser; idle resource 1 asks and
  // must take the parked successor, re-homing it.
  EXPECT_EQ(s->try_get(1), successor);
  EXPECT_EQ(successor->resource, 1);
  EXPECT_EQ(s->try_get(0), nullptr);
  s->shutdown();
  EXPECT_EQ(stats.sum("sched.steals"), 1.0);
}

TEST_F(SchedTest, DependenciesPolicyKindMismatchFallsBack) {
  // A CUDA successor released by an SMP resource goes to the global queue.
  auto s = Scheduler::create("dep", clock_, {DeviceKind::kSmp, DeviceKind::kCuda}, nullptr);
  Task* cuda_succ = make_task(DeviceKind::kCuda);
  s->submit(cuda_succ, /*releaser_resource=*/0);  // resource 0 is SMP
  EXPECT_EQ(s->try_get(1), cuda_succ);
}

TEST_F(SchedTest, AffinityPlacesOnBestResource) {
  std::map<const Task*, std::map<int, double>> scores;
  auto oracle = [&](const Task& t, int r) -> double {
    auto it = scores.find(&t);
    if (it == scores.end()) return 0.0;
    auto jt = it->second.find(r);
    return jt == it->second.end() ? 0.0 : jt->second;
  };
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, oracle);
  Task* t0 = make_task(DeviceKind::kCuda);
  Task* t1 = make_task(DeviceKind::kCuda);
  scores[t0] = {{0, 1024.0}, {1, 0.0}};
  scores[t1] = {{0, 0.0}, {1, 4096.0}};
  s->submit(t0, -1);
  s->submit(t1, -1);
  // Each resource drains its own local queue first.
  EXPECT_EQ(s->try_get(1), t1);
  EXPECT_EQ(s->try_get(0), t0);
}

TEST_F(SchedTest, AffinityTieGoesToGlobalQueue) {
  auto oracle = [](const Task&, int) { return 512.0; };  // identical everywhere
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, oracle);
  Task* t = make_task(DeviceKind::kCuda);
  s->submit(t, -1);
  // No clear winner: any resource can take it from the global queue.
  EXPECT_EQ(s->try_get(1), t);
}

TEST_F(SchedTest, AffinityZeroScoreGoesToGlobalQueue) {
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda},
                             [](const Task&, int) { return 0.0; });
  Task* t = make_task(DeviceKind::kCuda);
  s->submit(t, -1);
  EXPECT_EQ(s->try_get(0), t);
}

TEST_F(SchedTest, AffinityStealsFromBusyPeer) {
  std::map<const Task*, std::map<int, double>> scores;
  auto oracle = [&](const Task& t, int r) -> double {
    auto it = scores.find(&t);
    return it != scores.end() && it->second.count(r) ? it->second[r] : 0.0;
  };
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, oracle);
  Task* t0 = make_task(DeviceKind::kCuda);
  Task* t1 = make_task(DeviceKind::kCuda);
  scores[t0] = {{0, 100.0}};
  scores[t1] = {{0, 100.0}};  // both pile onto resource 0
  s->submit(t0, -1);
  s->submit(t1, -1);
  // Resource 1 has nothing local or global: it steals from resource 0's
  // queue.  The lock-free ring is single-ended, so the thief takes the
  // oldest entry (longest-waiting work).
  EXPECT_EQ(s->try_get(1), t0);
  EXPECT_EQ(s->try_get(0), t1);
}

TEST_F(SchedTest, StealPathPublishesCounterToStats) {
  common::Stats stats;
  std::map<const Task*, std::map<int, double>> scores;
  auto oracle = [&](const Task& t, int r) -> double {
    auto it = scores.find(&t);
    return it != scores.end() && it->second.count(r) ? it->second[r] : 0.0;
  };
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda}, oracle,
                             nullptr, &stats);
  Task* t0 = make_task(DeviceKind::kCuda);
  Task* t1 = make_task(DeviceKind::kCuda);
  scores[t0] = {{0, 100.0}};
  scores[t1] = {{0, 100.0}};
  s->submit(t0, -1);
  s->submit(t1, -1);
  EXPECT_EQ(s->try_get(1), t0);  // resource 1 steals from resource 0's queue
  EXPECT_EQ(s->try_get(0), t1);  // own-queue pick, not a steal
  s->shutdown();
  EXPECT_EQ(stats.sum("sched.steals"), 1.0);
}

TEST_F(SchedTest, BatchOracleDrivesPlacement) {
  // When a batch oracle is supplied it prices all resources in one call; the
  // per-resource oracle would claim resource 0, the batch oracle resource 1 —
  // batch must win.
  auto per_resource = [](const Task&, int r) { return r == 0 ? 50.0 : 0.0; };
  auto batch = [](const Task&) { return std::vector<double>{0.0, 50.0}; };
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda},
                             per_resource, batch);
  Task* t = make_task(DeviceKind::kCuda);
  s->submit(t, -1);
  // t sits in resource 1's local queue: resource 1 gets it from its own
  // queue even though resource 0 asks first (0 would have to steal).
  EXPECT_EQ(s->try_get(1), t);
}

TEST_F(SchedTest, FlushStatsPublishesWithoutShutdown) {
  // Short runs and simcheck scenarios quiesce without shutting the scheduler
  // down; flush_stats() must surface the counters then, and shutdown must
  // not double-count the already-published delta.
  common::Stats stats;
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kCuda, DeviceKind::kCuda},
                             [](const Task&, int r) { return r == 0 ? 100.0 : 0.0; }, nullptr,
                             &stats);
  Task* t = make_task(DeviceKind::kCuda);
  s->submit(t, -1);
  EXPECT_EQ(s->try_get(1), t);  // steal
  s->flush_stats();
  EXPECT_EQ(stats.sum("sched.steals"), 1.0);
  s->shutdown();
  EXPECT_EQ(stats.sum("sched.steals"), 1.0);
}

TEST_F(SchedTest, OverflowPreservesFifoAndCount) {
  // More tasks than the lock-free ring holds: the overflow list engages and
  // the pop order must stay FIFO across the ring/overflow boundary.
  auto s = Scheduler::create("bf", clock_, {DeviceKind::kSmp}, nullptr);
  constexpr int kTasks = 1500;  // ring capacity is 512
  std::vector<Task*> submitted;
  for (int i = 0; i < kTasks; ++i) {
    Task* t = make_task(DeviceKind::kSmp);
    submitted.push_back(t);
    s->submit(t, -1);
  }
  EXPECT_EQ(s->queued(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(s->try_get(0), submitted[static_cast<std::size_t>(i)]) << "at " << i;
  }
  EXPECT_EQ(s->try_get(0), nullptr);
}

TEST_F(SchedTest, SpuriousWakesStayNearZero) {
  // One notify_one per published task: parked workers wake only when there
  // is (almost certainly) work for them.  The old notify_all woke every
  // parked worker on every submit — a thundering herd that would score
  // hundreds of spurious wakes here.
  common::Stats stats;
  auto s = Scheduler::create("bf", clock_,
                             {DeviceKind::kSmp, DeviceKind::kSmp, DeviceKind::kSmp,
                              DeviceKind::kSmp},
                             nullptr, nullptr, &stats);
  constexpr int kTasks = 200;
  std::atomic<int> picked{0};
  // The Hold marks this (unattached) thread as an active external actor, so
  // the virtual clock doesn't declare deadlock while all workers are parked
  // between bursts.
  std::optional<vt::Hold> hold;
  hold.emplace(clock_);
  std::vector<std::unique_ptr<vt::Thread>> workers;
  for (int r = 0; r < 4; ++r) {
    workers.push_back(std::make_unique<vt::Thread>(clock_, "worker", [&, r] {
      while (s->get(r) != nullptr) picked.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  // Lockstep: one submit at a time, drained before the next, with a brief
  // real-time pause so the picking worker re-parks.  Every submit then finds
  // all four workers asleep — notify_all would wake all four and score ~3
  // spurious wakes per task (~600 here); notify_one stays near zero (the
  // residue is the rare race where the previous picker re-enters get() and
  // snatches the task from the freshly woken worker).
  for (int i = 0; i < kTasks; ++i) {
    s->submit(make_task(DeviceKind::kSmp), -1);
    while (s->queued() > 0) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  s->shutdown();
  hold.reset();
  for (auto& w : workers) w->join();
  EXPECT_EQ(picked.load(), kTasks);
  EXPECT_LE(stats.sum("sched.spurious_wakes"), 20.0);
}

TEST_F(SchedTest, AffinityStealRespectsKind) {
  auto s = Scheduler::create("affinity", clock_, {DeviceKind::kSmp, DeviceKind::kCuda},
                             [](const Task&, int r) { return r == 0 ? 10.0 : 0.0; });
  Task* smp_task = make_task(DeviceKind::kSmp);
  s->submit(smp_task, -1);
  EXPECT_EQ(s->try_get(1), nullptr);  // cuda resource won't steal smp work
  EXPECT_EQ(s->try_get(0), smp_task);
}

}  // namespace
