// taskcheck tests: the dependency-race oracle (verify=race) and the
// coherence invariant checker (verify=all) catching seeded bugs — an
// under-declared clause in single-node and cluster runs (the diagnostic must
// name the overlapping byte range), and a deliberately corrupted cache
// entry.  Clean-schedule cases pin down the oracle's no-false-positive
// guarantees: declared ordering, taskwait joins, and hierarchical
// parent/child decomposition.
#include <gtest/gtest.h>

#include <vector>

#include "nanos/cluster.hpp"
#include "nanos/runtime.hpp"
#include "nanos/verify/verify.hpp"
#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace {

using nanos::Access;
using nanos::AccessMode;
using nanos::ClusterConfig;
using nanos::ClusterRuntime;
using nanos::DeviceKind;
using nanos::Runtime;
using nanos::RuntimeConfig;
using nanos::TaskDesc;

RuntimeConfig verified_config(const std::string& verify, int gpus = 0) {
  RuntimeConfig cfg;
  cfg.scheduler = "dep";
  cfg.cache_policy = "wb";
  cfg.smp_workers = 2;
  cfg.verify = verify;
  simcuda::DeviceProps props;
  props.memory_bytes = 8u << 20;
  props.gflops = 1000.0;
  props.pcie_bandwidth = 1e9;
  props.copy_overhead = 0;
  props.kernel_launch_overhead = 0;
  cfg.gpus.assign(static_cast<std::size_t>(gpus), props);
  return cfg;
}

ClusterConfig verified_cluster(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node_scheduler = "bf";
  cfg.rr_chunk = 1;
  cfg.segment_bytes = 32u << 20;
  cfg.node.smp_workers = 2;
  cfg.node.scheduler = "dep";
  cfg.node.cache_policy = "wb";
  cfg.node.verify = "all";
  simcuda::DeviceProps props;
  props.memory_bytes = 8u << 20;
  props.gflops = 1000.0;
  props.pcie_bandwidth = 1e9;
  props.copy_overhead = 0;
  props.kernel_launch_overhead = 0;
  cfg.node.gpus.assign(1, props);
  cfg.link.bandwidth = 1e9;
  return cfg;
}

void run_app(RuntimeConfig cfg, const std::function<void(Runtime&)>& body) {
  vt::Clock clock;
  Runtime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "app", [&] { body(rt); });
  driver.join();
}

void run_cluster_app(ClusterConfig cfg, const std::function<void(ClusterRuntime&)>& body) {
  vt::Clock clock;
  ClusterRuntime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "app", [&] { body(rt); });
  driver.join();
}

TaskDesc smp_task(std::vector<Access> acc, nanos::TaskFn fn, const std::string& label) {
  TaskDesc d;
  d.device = DeviceKind::kSmp;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.label = label;
  return d;
}

TaskDesc gpu_task(std::vector<Access> acc, nanos::TaskFn fn, const std::string& label) {
  TaskDesc d;
  d.device = DeviceKind::kCuda;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.label = label;
  d.cost.flops = 1e6;
  return d;
}

/// Runs `body` and returns the race diagnostic the taskwait surfaced, or ""
/// if the schedule verified clean.
std::string race_message(RuntimeConfig cfg, const std::function<void(Runtime&)>& body) {
  std::string msg;
  run_app(std::move(cfg), [&](Runtime& rt) {
    try {
      body(rt);
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
  });
  return msg;
}

TEST(RaceOracleTest, UndeclaredWriteIsFlaggedWithOverlapRange) {
  std::vector<float> a(256, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  // writer_a declares (and performs) a write of the whole buffer; sneaky
  // declares nothing that overlaps it, but its body touches 64 bytes in the
  // middle — the paper's "forgot a clause" bug, undetectable by the
  // dependency graph alone.  writer_a's body holds until both tasks are
  // spawned: the pair is then concurrent on every physical schedule (a
  // schedule where one happens to finish before the other is submitted is a
  // genuine mutex-mediated ordering the oracle rightly accepts).
  common::Region sneaky_region(a.data() + 64, 64);
  std::string msg;
  run_app(verified_config("race"), [&](Runtime& rt) {
    vt::Flag both_spawned(rt.clock());
    try {
      rt.spawn(smp_task({Access::inout(a.data(), bytes)},
                        [&](nanos::TaskContext& ctx) {
                          both_spawned.wait();
                          ctx.observe(a.data(), bytes, AccessMode::kInout);
                        },
                        "writer_a"));
      rt.spawn(smp_task({},
                        [&](nanos::TaskContext& ctx) {
                          ctx.observe(a.data() + 64, 64, AccessMode::kOut);
                        },
                        "sneaky"));
      both_spawned.set();
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
  });
  ASSERT_FALSE(msg.empty()) << "oracle missed an undeclared overlapping write";
  EXPECT_NE(msg.find("dependency race"), std::string::npos) << msg;
  EXPECT_NE(msg.find("writer_a"), std::string::npos) << msg;
  EXPECT_NE(msg.find("sneaky"), std::string::npos) << msg;
  // The diagnostic names the exact overlapping byte range.
  EXPECT_NE(msg.find(sneaky_region.to_string()), std::string::npos) << msg;
}

TEST(RaceOracleTest, UndeclaredReadSuggestsInputClause) {
  std::vector<float> a(64, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  std::string msg;
  run_app(verified_config("race"), [&](Runtime& rt) {
    vt::Flag both_spawned(rt.clock());
    try {
      rt.spawn(smp_task({Access::out(a.data(), bytes)},
                        [&](nanos::TaskContext&) { both_spawned.wait(); },
                        "producer"));
      rt.spawn(smp_task({},
                        [&](nanos::TaskContext& ctx) {
                          ctx.observe(a.data(), bytes, AccessMode::kIn);
                        },
                        "silent_reader"));
      both_spawned.set();
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
  });
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("missing input clause"), std::string::npos) << msg;
}

TEST(RaceOracleTest, DeclaredOrderingIsNotARace) {
  std::vector<float> a(256, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  std::string msg = race_message(verified_config("race"), [&](Runtime& rt) {
    rt.spawn(smp_task({Access::out(a.data(), bytes)},
                      [&](nanos::TaskContext& ctx) {
                        ctx.observe(a.data(), bytes, AccessMode::kOut);
                      },
                      "producer"));
    rt.spawn(smp_task({Access::in(a.data(), bytes)},
                      [&](nanos::TaskContext& ctx) {
                        ctx.observe(a.data(), bytes, AccessMode::kIn);
                      },
                      "consumer"));
  });
  EXPECT_TRUE(msg.empty()) << msg;
}

TEST(RaceOracleTest, TaskwaitOrdersUnrelatedTasks) {
  std::vector<float> a(64, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  std::string msg = race_message(verified_config("race"), [&](Runtime& rt) {
    rt.spawn(smp_task({Access::out(a.data(), bytes)},
                      [&](nanos::TaskContext& ctx) {
                        ctx.observe(a.data(), bytes, AccessMode::kOut);
                      },
                      "before"));
    rt.taskwait();
    // No clause relates this task to the first one: only the taskwait join
    // orders them.
    rt.spawn(smp_task({},
                      [&](nanos::TaskContext& ctx) {
                        ctx.observe(a.data(), bytes, AccessMode::kOut);
                      },
                      "after"));
  });
  EXPECT_TRUE(msg.empty()) << msg;
}

TEST(RaceOracleTest, ParentChildDecompositionIsExempt) {
  std::vector<float> a(256, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  // The hierarchical pattern: the parent declares the whole array, children
  // subdivide it.  Parent and child overlap by construction; lineal pairs
  // must not be reported.
  std::string msg = race_message(verified_config("race"), [&](Runtime& rt) {
    rt.spawn(smp_task({Access::inout(a.data(), bytes)},
                      [&](nanos::TaskContext& ctx) {
                        for (int c = 0; c < 4; ++c) {
                          ctx.runtime().spawn(smp_task(
                              {Access::inout(a.data() + 64 * c, 64 * sizeof(float))},
                              [&, c](nanos::TaskContext& cctx) {
                                cctx.observe(a.data() + 64 * c, 64 * sizeof(float),
                                             AccessMode::kInout);
                              },
                              "child"));
                        }
                        ctx.runtime().taskwait();
                      },
                      "parent"));
  });
  EXPECT_TRUE(msg.empty()) << msg;
}

TEST(RaceOracleTest, SiblingsWithDisjointClausesButOverlappingWritesRace) {
  std::vector<float> a(256, 0.0f);
  // Declared regions are disjoint (so the graph runs them in parallel) but
  // task_b's body strays 32 floats into task_a's half.
  std::string msg;
  run_app(verified_config("race"), [&](Runtime& rt) {
    vt::Flag both_spawned(rt.clock());
    try {
      rt.spawn(smp_task({Access::out(a.data(), 128 * sizeof(float))},
                        [&](nanos::TaskContext& ctx) {
                          both_spawned.wait();
                          ctx.observe(a.data(), 128 * sizeof(float), AccessMode::kOut);
                        },
                        "task_a"));
      rt.spawn(smp_task({Access::out(a.data() + 128, 128 * sizeof(float))},
                        [&](nanos::TaskContext& ctx) {
                          ctx.observe(a.data() + 96, 160 * sizeof(float), AccessMode::kOut);
                        },
                        "task_b"));
      both_spawned.set();
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
  });
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("task_a"), std::string::npos) << msg;
  EXPECT_NE(msg.find("task_b"), std::string::npos) << msg;
}

TEST(ClusterVerifyTest, UndeclaredOverlapFlaggedAcrossNodes) {
  std::vector<float> a(512, 1.0f);
  common::Region overlap(a.data() + 128, 128 * sizeof(float));
  std::string msg;
  run_cluster_app(verified_cluster(2), [&](ClusterRuntime& rt) {
    vt::Flag both_spawned(rt.clock());
    try {
      // Disjoint declared halves (placed breadth-first on two nodes), but
      // the second body observes a write reaching into the first half.
      // left_half holds until both are spawned, so the racing pair is
      // concurrent on every physical schedule.
      rt.spawn(gpu_task({Access::inout(a.data(), 256 * sizeof(float))},
                        [&](nanos::TaskContext& ctx) {
                          both_spawned.wait();
                          auto* f = ctx.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                          ctx.observe(a.data(), 256 * sizeof(float), AccessMode::kInout);
                        },
                        "left_half"));
      rt.spawn(gpu_task({Access::inout(a.data() + 256, 256 * sizeof(float))},
                        [&](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                          ctx.observe(a.data() + 128, 256 * sizeof(float),
                                      AccessMode::kInout);
                        },
                        "right_half"));
      both_spawned.set();
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
  });
  ASSERT_FALSE(msg.empty()) << "cluster oracle missed the undeclared overlap";
  EXPECT_NE(msg.find("left_half"), std::string::npos) << msg;
  EXPECT_NE(msg.find("right_half"), std::string::npos) << msg;
  EXPECT_NE(msg.find(overlap.to_string()), std::string::npos) << msg;
  // The replay token pins the config, fabric seed and observed schedule so
  // the violation can be re-run bit-identically (docs/verifier.md).
  EXPECT_NE(msg.find("[replay cfg=0x"), std::string::npos) << msg;
  EXPECT_NE(msg.find(" seed="), std::string::npos) << msg;
  EXPECT_NE(msg.find(" sched=0x"), std::string::npos) << msg;
}

TEST(ClusterVerifyTest, CleanClusterRunStaysClean) {
  std::vector<float> a(512, 1.0f);
  run_cluster_app(verified_cluster(2), [&](ClusterRuntime& rt) {
    for (int h = 0; h < 2; ++h) {
      rt.spawn(gpu_task({Access::inout(a.data() + 256 * h, 256 * sizeof(float))},
                        [](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                        },
                        "half"));
    }
    rt.taskwait();
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 2.0f);
}

TEST(CoherenceCheckTest, CorruptedCacheEntryIsCaught) {
  std::vector<float> a(256, 1.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  bool caught = false;
  run_app(verified_config("all", /*gpus=*/1), [&](Runtime& rt) {
    rt.spawn(gpu_task({Access::inout(a.data(), bytes)},
                      [](nanos::TaskContext& ctx) {
                        auto* f = ctx.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                      },
                      "warm"));
    rt.taskwait();
    // Corrupt the directory entry behind the protocol's back: the next
    // quiesce walk must refuse to certify the state.
    rt.coherence().debug_corrupt_region(common::Region(a.data(), bytes));
    try {
      rt.spawn(smp_task({}, [](nanos::TaskContext&) {}, "noop"));
      rt.taskwait();
    } catch (const nanos::verify::CoherenceInvariantError& e) {
      caught = true;
      EXPECT_NE(std::string(e.what()).find("no copy"), std::string::npos) << e.what();
    }
  });
  EXPECT_TRUE(caught) << "checker accepted a corrupted cache entry";
}

TEST(CoherenceCheckTest, CleanRunPassesEveryInvariantWalk) {
  std::vector<float> a(256, 1.0f);
  run_app(verified_config("all", /*gpus=*/2), [&](Runtime& rt) {
    for (int step = 0; step < 3; ++step) {
      for (int h = 0; h < 2; ++h) {
        rt.spawn(gpu_task({Access::inout(a.data() + 128 * h, 128 * sizeof(float))},
                          [](nanos::TaskContext& ctx) {
                            auto* f = ctx.data_as<float>(0);
                            for (int i = 0; i < 128; ++i) f[i] += 1.0f;
                          },
                          "tile"));
      }
      rt.taskwait();
    }
    EXPECT_EQ(rt.stats().count("verify.coherence_violations"), 0u);
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 4.0f);
}

TEST(CoherenceCheckTest, IncrementalWalkCatchesCorruptionAtRelease) {
  // Equivalence of the incremental walk with the full directory walk: a
  // corruption whose entry is in a shard dirty set must be caught by the
  // *release-time* incremental walk, before any taskwait full walk runs.
  std::vector<float> a(256, 1.0f), b(256, 1.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  std::string msg;
  run_app(verified_config("all", /*gpus=*/1), [&](Runtime& rt) {
    rt.spawn(gpu_task({Access::inout(a.data(), bytes)},
                      [](nanos::TaskContext& ctx) {
                        auto* f = ctx.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                      },
                      "warm"));
    rt.taskwait();
    // Corrupt a's entry and leave it in its shard's dirty set (mark=true):
    // the next release's incremental walk must find it without a full scan.
    rt.coherence().debug_corrupt_region(common::Region(a.data(), bytes));
    try {
      rt.spawn(gpu_task({Access::inout(b.data(), bytes)},
                        [](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                        },
                        "trigger"));
      rt.taskwait();
    } catch (const nanos::verify::CoherenceInvariantError& e) {
      msg = e.what();
    }
    EXPECT_GT(rt.stats().sum("verify.incr_walks"), 0.0);
  });
  ASSERT_FALSE(msg.empty()) << "incremental walk accepted a corrupted entry";
  // The violation site is the release-time incremental walk, not the
  // taskwait quiesce — proof the dirty-set path delivered it first.
  EXPECT_NE(msg.find("at release"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no copy"), std::string::npos) << msg;
}

TEST(CoherenceCheckTest, IncrementalWalkChecksOnlyTouchedEntries) {
  // Eight live regions; each release's incremental walk should check only
  // the entries that release touched, not the whole directory.
  constexpr int kBufs = 8;
  std::vector<std::vector<float>> bufs(kBufs, std::vector<float>(256, 1.0f));
  run_app(verified_config("all", /*gpus=*/1), [&](Runtime& rt) {
    for (auto& buf : bufs) {
      rt.spawn(gpu_task({Access::inout(buf.data(), buf.size() * sizeof(float))},
                        [](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                        },
                        "warm"));
    }
    rt.taskwait();
    // One more task over a single buffer: its release walks O(1) entries
    // even though the directory holds kBufs.
    rt.spawn(gpu_task({Access::inout(bufs[0].data(), bufs[0].size() * sizeof(float))},
                      [](nanos::TaskContext& ctx) {
                        auto* f = ctx.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                      },
                      "touch_one"));
    rt.taskwait();
    const double walks = rt.stats().sum("verify.incr_walks");
    const double entries = rt.stats().sum("verify.incr_entries_checked");
    EXPECT_GT(walks, 0.0);
    // A full-rescan-per-release implementation would check kBufs entries on
    // (at least) the last walk; the incremental one stays near one per walk.
    EXPECT_LT(entries, walks * kBufs);
    EXPECT_LE(entries, walks * 2);
    EXPECT_EQ(rt.stats().count("verify.coherence_violations"), 0u);
  });
}

TEST(CoherenceCheckTest, CrosscheckCatchesUnmarkedMutation) {
  // debug_corrupt_region(mark=false) simulates a mutation path that forgot
  // to record its touched region: the incremental walk misses it, and the
  // crosscheck full walk must report the discrepancy.
  std::vector<float> a(256, 1.0f), b(256, 1.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  auto cfg = verified_config("all", /*gpus=*/1);
  cfg.verify_crosscheck = true;
  std::string msg;
  run_app(std::move(cfg), [&](Runtime& rt) {
    rt.spawn(gpu_task({Access::inout(a.data(), bytes)},
                      [](nanos::TaskContext& ctx) {
                        auto* f = ctx.data_as<float>(0);
                        for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                      },
                      "warm"));
    rt.taskwait();
    rt.coherence().debug_corrupt_region(common::Region(a.data(), bytes), /*mark=*/false);
    try {
      rt.spawn(gpu_task({Access::inout(b.data(), bytes)},
                        [](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] += 1.0f;
                        },
                        "trigger"));
      rt.taskwait();
    } catch (const nanos::verify::CoherenceInvariantError& e) {
      msg = e.what();
    }
  });
  ASSERT_FALSE(msg.empty()) << "crosscheck accepted an unmarked corruption";
  EXPECT_NE(msg.find("crosscheck"), std::string::npos) << msg;
}

TEST(RaceOracleTest, SampleOfOneStillCatchesSeededRace) {
  // verify_sample=1 (check every task) must behave exactly like the
  // unsampled oracle: the under-declared write still fires.
  std::vector<float> a(256, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  auto cfg = verified_config("race");
  cfg.verify_sample = 1;
  std::string msg;
  run_app(std::move(cfg), [&](Runtime& rt) {
    vt::Flag both_spawned(rt.clock());
    try {
      rt.spawn(smp_task({Access::inout(a.data(), bytes)},
                        [&](nanos::TaskContext& ctx) {
                          both_spawned.wait();
                          ctx.observe(a.data(), bytes, AccessMode::kInout);
                        },
                        "writer_a"));
      rt.spawn(smp_task({},
                        [&](nanos::TaskContext& ctx) {
                          ctx.observe(a.data() + 64, 64, AccessMode::kOut);
                        },
                        "sneaky"));
      both_spawned.set();
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
    EXPECT_EQ(rt.stats().sum("verify.sample_skipped"), 0.0);
  });
  ASSERT_FALSE(msg.empty()) << "sample=1 oracle missed the seeded race";
  EXPECT_NE(msg.find("sneaky"), std::string::npos) << msg;
}

TEST(RaceOracleTest, SamplingSkipsDeterministicallyAndStaysClean) {
  // A large sampling divisor skips most tasks (counted, not silent) and a
  // clean program stays clean.  Task ids are deterministic under virtual
  // time, so the skip count is exact across runs.
  std::vector<float> a(256, 0.0f);
  auto cfg = verified_config("race");
  cfg.verify_sample = 64;
  double skipped = 0;
  std::string msg = race_message(std::move(cfg), [&](Runtime& rt) {
    for (int i = 0; i < 8; ++i) {
      rt.spawn(smp_task({Access::inout(a.data() + 16 * i, 16 * sizeof(float))},
                        [&, i](nanos::TaskContext& ctx) {
                          ctx.observe(a.data() + 16 * i, 16 * sizeof(float),
                                      AccessMode::kInout);
                        },
                        "tile"));
    }
    rt.taskwait();
    skipped = rt.stats().sum("verify.sample_skipped");
  });
  EXPECT_TRUE(msg.empty()) << msg;
  EXPECT_GT(skipped, 0.0);
}

// -- early dependency release under the oracle --------------------------------

TEST(EarlyReleaseVerifyTest, TailWriteAfterReleaseIsFlagged) {
  // The producer releases the whole buffer mid-body and then touches it again
  // — the exact program error release() documents.  The consumer's clock
  // joined the producer's *release* stamp, not its completion, so the tail
  // write is logically concurrent with the consumer's read and must be
  // flagged no matter how the physical schedule falls.
  std::vector<float> a(256, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  auto cfg = verified_config("all");
  cfg.early_release = true;
  std::string msg;
  run_app(std::move(cfg), [&](Runtime& rt) {
    try {
      rt.spawn(smp_task({Access::out(a.data(), bytes)},
                        [&](nanos::TaskContext& ctx) {
                          ctx.observe(a.data(), bytes, AccessMode::kOut);
                          ctx.release(a.data(), bytes);
                          ctx.observe(a.data(), 64, AccessMode::kOut);  // program error
                        },
                        "leaky_producer"));
      rt.spawn(smp_task({Access::in(a.data(), bytes)},
                        [&](nanos::TaskContext& ctx) {
                          ctx.observe(a.data(), bytes, AccessMode::kIn);
                        },
                        "consumer"));
      rt.taskwait();
    } catch (const nanos::verify::RaceViolation& e) {
      msg = e.what();
    }
  });
  ASSERT_FALSE(msg.empty()) << "oracle missed the tail access after release";
  EXPECT_NE(msg.find("leaky_producer"), std::string::npos) << msg;
  EXPECT_NE(msg.find("consumer"), std::string::npos) << msg;
}

TEST(EarlyReleaseVerifyTest, CleanEarlyReleaseChainStaysClean) {
  // A well-formed chain — every body's last touch precedes its release — must
  // survive verify=all with the early path armed: released accesses commit
  // through the host, the walk runs at each commit, and the oracle sequences
  // release stamps per region.
  std::vector<float> a(256, 0.0f);
  const std::size_t bytes = a.size() * sizeof(float);
  auto cfg = verified_config("all");
  cfg.early_release = true;
  double released = 0;
  std::string msg = race_message(std::move(cfg), [&](Runtime& rt) {
    for (int s = 0; s < 4; ++s) {
      rt.spawn(smp_task({Access::inout(a.data(), bytes)},
                        [&](nanos::TaskContext& ctx) {
                          auto* f = ctx.data_as<float>(0);
                          for (std::size_t i = 0; i < a.size(); ++i) f[i] += 1.0f;
                          ctx.observe(a.data(), bytes, AccessMode::kInout);
                          ctx.release(a.data(), bytes);
                        },
                        "link"));
    }
    rt.taskwait();
    released = rt.stats().sum("tasks.early_releases");
  });
  EXPECT_TRUE(msg.empty()) << msg;
  EXPECT_EQ(released, 4.0);
  for (float v : a) ASSERT_FLOAT_EQ(v, 4.0f);
}

TEST(EarlyReleaseVerifyTest, CleanClusterEarlyReleaseStaysClean) {
  // Eight per-block producer→consumer chains across an 8-node fabric with the
  // full protocol armed (early commit at the region's home, vouch to the
  // master, release before TASK_DONE).  verify=all on every node must stay
  // silent and the data must arrive intact.
  std::vector<float> a(8 * 64, 0.0f);
  const std::size_t block = 64 * sizeof(float);
  ClusterConfig cfg = verified_cluster(8);
  cfg.node.early_release = true;
  run_cluster_app(std::move(cfg), [&](ClusterRuntime& rt) {
    for (int step = 0; step < 3; ++step) {
      for (int b = 0; b < 8; ++b) {
        float* p = a.data() + 64 * b;
        rt.spawn(smp_task({Access::inout(p, block)},
                          [p, block](nanos::TaskContext& ctx) {
                            auto* f = ctx.data_as<float>(0);
                            for (int i = 0; i < 64; ++i) f[i] += 1.0f;
                            ctx.observe(p, block, AccessMode::kInout);
                            ctx.release(p, block);
                          },
                          "chain"));
      }
    }
    rt.taskwait();
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 3.0f);
}

TEST(VerifyConfigTest, ModeParsing) {
  using nanos::verify::VerifyMode;
  EXPECT_EQ(nanos::verify::parse_verify_mode("off"), VerifyMode::kOff);
  EXPECT_EQ(nanos::verify::parse_verify_mode(""), VerifyMode::kOff);
  EXPECT_EQ(nanos::verify::parse_verify_mode("race"), VerifyMode::kRace);
  EXPECT_EQ(nanos::verify::parse_verify_mode("coherence"), VerifyMode::kCoherence);
  EXPECT_EQ(nanos::verify::parse_verify_mode("all"), VerifyMode::kAll);
  EXPECT_THROW(nanos::verify::parse_verify_mode("bogus"), std::invalid_argument);
}

}  // namespace
