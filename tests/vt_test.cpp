// Tests for the virtual-time layer.  These validate the properties every
// other module leans on: time advances only when all attached threads block,
// sleeps wake in timestamp order, monitors hand wakeups through the clock,
// and deadlocks are detected and cancelled.
//
// Idiom under test everywhere: an unattached orchestrator (like these test
// bodies) takes a vt::Hold while constructing threads, so virtual time cannot
// advance in the window between two constructions.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace {

TEST(VtClockTest, StartsAtZero) {
  vt::Clock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VtClockTest, SleepAdvancesExactly) {
  vt::Clock clock;
  vt::AttachGuard guard(clock, "main");
  clock.sleep_for(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.sleep_until(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.sleep_until(1.0);  // already past: no-op
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(VtClockTest, NegativeSleepThrows) {
  vt::Clock clock;
  vt::AttachGuard guard(clock, "main");
  EXPECT_THROW(clock.sleep_for(-1.0), std::invalid_argument);
}

TEST(VtClockTest, SleepFromUnattachedThreadThrows) {
  vt::Clock clock;
  EXPECT_THROW(clock.sleep_for(1.0), std::logic_error);
}

TEST(VtClockTest, ParallelSleepsOverlap) {
  // Two threads sleeping 1s "in parallel" take 1s of virtual time, not 2s.
  vt::Clock clock;
  std::atomic<int> done{0};
  {
    std::optional<vt::Hold> hold;
    hold.emplace(clock);
    vt::Thread a(clock, "a", [&] { clock.sleep_for(1.0); done++; });
    vt::Thread b(clock, "b", [&] { clock.sleep_for(1.0); done++; });
    hold.reset();
    a.join();
    b.join();
  }
  EXPECT_EQ(done.load(), 2);
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(VtClockTest, HoldPreventsAdvancement) {
  vt::Clock clock;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "a", [&] { clock.sleep_for(1.0); });
  // Give the sleeper ample real time: virtual time must not move under Hold.
  for (int spin = 0; spin < 100000; ++spin) {
    asm volatile("");
  }
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  hold.reset();
  a.join();
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(VtClockTest, WakeupsHonorTimestampOrder) {
  vt::Clock clock;
  std::mutex mu;
  std::vector<std::string> order;
  auto sleeper = [&](const std::string& name, double t) {
    return [&, name, t] {
      clock.sleep_for(t);
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(name);
    };
  };
  {
    std::optional<vt::Hold> hold;
    hold.emplace(clock);
    vt::Thread c(clock, "c", sleeper("c", 3.0));
    vt::Thread a(clock, "a", sleeper("a", 1.0));
    vt::Thread b(clock, "b", sleeper("b", 2.0));
    hold.reset();
    a.join();
    b.join();
    c.join();
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(VtClockTest, SequentialDependentSleepsAccumulate) {
  // A thread that wakes and sleeps again: total = sum of both legs.
  vt::Clock clock;
  vt::Flag first_leg_done(clock);
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "a", [&] {
    clock.sleep_for(1.0);
    first_leg_done.set();
    clock.sleep_for(2.0);
  });
  vt::Thread b(clock, "b", [&] {
    first_leg_done.wait();
    clock.sleep_for(0.5);
  });
  hold.reset();
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(VtMonitorTest, NotifyWakesWaiter) {
  vt::Clock clock;
  std::mutex mu;
  vt::Monitor mon(clock);
  bool ready = false;
  bool observed = false;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread waiter(clock, "waiter", [&] {
    std::unique_lock<std::mutex> lk(mu);
    mon.wait(lk, [&] { return ready; });
    observed = true;
  });
  vt::Thread setter(clock, "setter", [&] {
    clock.sleep_for(1.0);
    {
      std::lock_guard<std::mutex> lk(mu);
      ready = true;
    }
    mon.notify_all();
  });
  hold.reset();
  waiter.join();
  setter.join();
  EXPECT_TRUE(observed);
  // Virtual time advanced to 1.0 while the waiter was event-blocked.
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(VtMonitorTest, WaitForTimesOutAtDeadline) {
  vt::Clock clock;
  vt::AttachGuard guard(clock, "main");
  std::mutex mu;
  vt::Monitor mon(clock);
  std::unique_lock<std::mutex> lk(mu);
  bool ok = mon.wait_for(lk, 2.5);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
}

TEST(VtMonitorTest, NotifyBeatsTimeout) {
  vt::Clock clock;
  std::mutex mu;
  vt::Monitor mon(clock);
  bool ready = false;
  bool result = false;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread waiter(clock, "waiter", [&] {
    std::unique_lock<std::mutex> lk(mu);
    result = mon.wait_for(lk, 100.0, [&] { return ready; });
  });
  vt::Thread setter(clock, "setter", [&] {
    clock.sleep_for(1.0);
    {
      std::lock_guard<std::mutex> lk(mu);
      ready = true;
    }
    mon.notify_all();
  });
  hold.reset();
  waiter.join();
  setter.join();
  EXPECT_TRUE(result);
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(VtMonitorTest, NotifyOneWakesSingleWaiter) {
  vt::Clock clock;
  std::mutex mu;
  vt::Monitor mon(clock);
  int token = 0;
  std::atomic<int> got{0};
  auto body = [&] {
    std::unique_lock<std::mutex> lk(mu);
    mon.wait(lk, [&] { return token > 0; });
    --token;
    ++got;
  };
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "a", body);
  vt::Thread b(clock, "b", body);
  vt::Thread producer(clock, "producer", [&] {
    clock.sleep_for(1.0);
    {
      std::lock_guard<std::mutex> lk(mu);
      token = 1;
    }
    mon.notify_one();
    clock.sleep_for(1.0);
    {
      std::lock_guard<std::mutex> lk(mu);
      token = 1;
    }
    mon.notify_one();
  });
  hold.reset();
  a.join();
  b.join();
  producer.join();
  EXPECT_EQ(got.load(), 2);
}

TEST(VtMonitorTest, UnattachedThreadCanWait) {
  // The benchmark driver thread is not part of the simulation; it still must
  // be able to block on a Flag set by simulated threads.
  vt::Clock clock;
  vt::Flag flag(clock);
  vt::Thread worker(clock, "worker", [&] {
    clock.sleep_for(3.0);
    flag.set();
  });
  flag.wait();  // main test thread is unattached
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  worker.join();
}

TEST(VtFlagTest, SetBeforeWaitDoesNotBlock) {
  vt::Clock clock;
  vt::Flag flag(clock);
  flag.set();
  flag.wait();
  EXPECT_TRUE(flag.is_set());
  flag.reset();
  EXPECT_FALSE(flag.is_set());
}

TEST(VtBarrierTest, ReleasesAllParties) {
  vt::Clock clock;
  vt::Barrier barrier(clock, 3);
  std::atomic<int> before{0}, after{0};
  auto body = [&](double delay) {
    return [&, delay] {
      clock.sleep_for(delay);
      before++;
      barrier.arrive_and_wait();
      after++;
    };
  };
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "a", body(1.0));
  vt::Thread b(clock, "b", body(2.0));
  vt::Thread c(clock, "c", body(3.0));
  hold.reset();
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(before.load(), 3);
  EXPECT_EQ(after.load(), 3);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);  // barrier releases when the slowest arrives
}

TEST(VtBarrierTest, IsReusable) {
  vt::Clock clock;
  vt::Barrier barrier(clock, 2);
  std::atomic<int> rounds{0};
  auto body = [&] {
    for (int i = 0; i < 5; ++i) {
      barrier.arrive_and_wait();
      rounds++;
    }
  };
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "a", body);
  vt::Thread b(clock, "b", body);
  hold.reset();
  a.join();
  b.join();
  EXPECT_EQ(rounds.load(), 10);
}

TEST(VtCountLatchTest, WaitsForZero) {
  vt::Clock clock;
  vt::CountLatch latch(clock);
  latch.add(2);
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "a", [&] {
    clock.sleep_for(1.0);
    latch.done();
  });
  vt::Thread b(clock, "b", [&] {
    clock.sleep_for(2.0);
    latch.done();
  });
  hold.reset();
  latch.wait();
  EXPECT_EQ(latch.pending(), 0u);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  a.join();
  b.join();
}

TEST(VtDeadlockTest, DetectsAllBlockedAndCancels) {
  vt::Clock clock;
  std::atomic<bool> reported{false};
  std::string report;
  clock.set_deadlock_handler([&](const std::string& r) {
    reported = true;
    report = r;
  });
  std::mutex mu;
  vt::Monitor mon(clock);
  std::atomic<int> cancelled{0};
  auto body = [&] {
    std::unique_lock<std::mutex> lk(mu);
    try {
      mon.wait(lk);  // nobody will ever notify
    } catch (const vt::Cancelled&) {
      cancelled++;
      throw;  // vt::Thread swallows it
    }
  };
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread a(clock, "stuck-a", body);
  vt::Thread b(clock, "stuck-b", body);
  hold.reset();
  a.join();
  b.join();
  EXPECT_TRUE(reported.load());
  EXPECT_EQ(cancelled.load(), 2);
  EXPECT_NE(report.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(report.find("stuck-a"), std::string::npos);
  EXPECT_NE(report.find("stuck-b"), std::string::npos);
}

TEST(VtStressTest, ManyThreadsManySleeps) {
  vt::Clock clock;
  constexpr int kThreads = 16;
  constexpr int kIters = 50;
  std::vector<vt::Thread> threads;
  threads.reserve(kThreads);
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(clock, "w" + std::to_string(i), [&clock, i] {
      for (int k = 0; k < kIters; ++k) clock.sleep_for(0.001 * ((i + k) % 7 + 1));
    });
  }
  hold.reset();
  for (auto& t : threads) t.join();
  // Longest single-thread schedule bounds the final virtual time.
  EXPECT_GT(clock.now(), 0.0);
  EXPECT_LT(clock.now(), 0.001 * 7 * kIters + 1e-9);
}

TEST(VtClockTest, DoubleAttachThrows) {
  vt::Clock clock;
  vt::AttachGuard guard(clock, "main");
  EXPECT_THROW(clock.attach("again"), std::logic_error);
}

TEST(VtClockTest, AttachedCountTracksThreads) {
  vt::Clock clock;
  EXPECT_EQ(clock.attached_count(), 0u);
  {
    vt::AttachGuard guard(clock, "main");
    EXPECT_EQ(clock.attached_count(), 1u);
    vt::Flag go(clock);
    vt::Thread t(clock, "t", [&] { go.wait(); });
    EXPECT_EQ(clock.attached_count(), 2u);
    go.set();
    t.join();
  }
  EXPECT_EQ(clock.attached_count(), 0u);
}

TEST(VtClockTest, CancelAllUnblocksWaiters) {
  vt::Clock clock;
  std::mutex mu;
  vt::Monitor mon(clock);
  std::atomic<int> cancelled{0};
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread t(clock, "t", [&] {
    std::unique_lock<std::mutex> lk(mu);
    try {
      mon.wait(lk);
    } catch (const vt::Cancelled&) {
      cancelled++;
      throw;
    }
  });
  // Give the thread real time to block, then cancel everything.
  for (int spin = 0; spin < 200000; ++spin) {
    asm volatile("");
  }
  clock.cancel_all();
  hold.reset();
  t.join();
  EXPECT_EQ(cancelled.load(), 1);
}

TEST(VtMonitorTest, CrossClockWaitThrows) {
  vt::Clock a, b;
  vt::Monitor mon_b(b);
  vt::AttachGuard guard(a, "main");  // attached to clock a
  std::mutex mu;
  std::unique_lock<std::mutex> lk(mu);
  EXPECT_THROW(mon_b.wait(lk), std::logic_error);
}

TEST(VtMonitorTest, WaitUntilPastDeadlineReturnsImmediately) {
  vt::Clock clock;
  vt::AttachGuard guard(clock, "main");
  clock.sleep_for(1.0);
  std::mutex mu;
  vt::Monitor mon(clock);
  std::unique_lock<std::mutex> lk(mu);
  EXPECT_FALSE(mon.wait_until(lk, 0.5));  // already past: immediate timeout
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(VtClockTest, ServiceThreadsAloneAreIdleNotDeadlock) {
  // A blocked service thread with no other work is "idle", not a deadlock:
  // the handler must NOT fire.
  vt::Clock clock;
  bool reported = false;
  clock.set_deadlock_handler([&](const std::string&) { reported = true; });
  std::mutex mu;
  vt::Monitor mon(clock);
  bool stop = false;
  vt::Thread service(
      clock, "svc",
      [&] {
        std::unique_lock<std::mutex> lk(mu);
        mon.wait(lk, [&] { return stop; });
      },
      /*service=*/true);
  // Let it block; idle detection must not trigger the handler.
  for (int spin = 0; spin < 200000; ++spin) {
    asm volatile("");
  }
  EXPECT_FALSE(reported);
  {
    std::lock_guard<std::mutex> lk(mu);
    stop = true;
  }
  mon.notify_all();
  service.join();
  EXPECT_FALSE(reported);
}

TEST(VtStressTest, ProducerConsumerChain) {
  // Items flow through a 3-stage pipeline of monitors; the virtual clock has
  // to keep every handoff alive without false deadlocks.
  vt::Clock clock;
  constexpr int kItems = 200;
  struct Stage {
    std::mutex mu;
    vt::Monitor mon;
    std::vector<int> queue;
    explicit Stage(vt::Clock& c) : mon(c) {}
  };
  Stage s1(clock), s2(clock);
  std::vector<int> sink;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  vt::Thread producer(clock, "producer", [&] {
    for (int i = 0; i < kItems; ++i) {
      clock.sleep_for(0.001);
      {
        std::lock_guard<std::mutex> lk(s1.mu);
        s1.queue.push_back(i);
      }
      s1.mon.notify_one();
    }
  });
  vt::Thread middle(clock, "middle", [&] {
    for (int i = 0; i < kItems; ++i) {
      int v;
      {
        std::unique_lock<std::mutex> lk(s1.mu);
        s1.mon.wait(lk, [&] { return !s1.queue.empty(); });
        v = s1.queue.front();
        s1.queue.erase(s1.queue.begin());
      }
      clock.sleep_for(0.0005);
      {
        std::lock_guard<std::mutex> lk(s2.mu);
        s2.queue.push_back(v * 2);
      }
      s2.mon.notify_one();
    }
  });
  vt::Thread consumer(clock, "consumer", [&] {
    for (int i = 0; i < kItems; ++i) {
      std::unique_lock<std::mutex> lk(s2.mu);
      s2.mon.wait(lk, [&] { return !s2.queue.empty(); });
      sink.push_back(s2.queue.front());
      s2.queue.erase(s2.queue.begin());
    }
  });
  hold.reset();
  producer.join();
  middle.join();
  consumer.join();
  ASSERT_EQ(sink.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(sink[i], i * 2);
}

}  // namespace
