// Application tests for STREAM, Perlin and N-Body: every version of every
// app must agree with its serial reference, in every execution environment.
#include <gtest/gtest.h>

#include "apps/nbody/nbody.hpp"
#include "apps/perlin/perlin.hpp"
#include "apps/stream/stream.hpp"

namespace {

// ---------------------------------------------------------------------------
// STREAM

apps::stream::Params stream_params(int gpus = 1) {
  apps::stream::Params p;
  p.blocks_per_gpu = 8;
  p.gpus = gpus;
  p.block_phys = 512;
  p.ntimes = 3;
  return p;
}

TEST(StreamTest, SerialIsDeterministic) {
  auto p = stream_params();
  EXPECT_DOUBLE_EQ(apps::stream::run_serial(p).checksum, apps::stream::run_serial(p).checksum);
}

TEST(StreamTest, CudaMatchesSerial) {
  auto p = stream_params();
  auto ref = apps::stream::run_serial(p);
  vt::Clock clock;
  auto r = apps::stream::run_cuda(p, clock, apps::tesla_s2050(p.byte_scale()));
  EXPECT_DOUBLE_EQ(r.checksum, ref.checksum);
  EXPECT_GT(r.gbps, 0.0);
}

TEST(StreamTest, OmpssMatchesSerialAllCaches) {
  for (const char* cache : {"nocache", "wt", "wb"}) {
    auto p = stream_params(2);
    auto ref = apps::stream::run_serial(p);
    auto cfg = apps::multi_gpu_node(2, p.byte_scale());
    cfg.cache_policy = cache;
    ompss::Env env(cfg);
    auto r = apps::stream::run_ompss(env, p);
    EXPECT_DOUBLE_EQ(r.checksum, ref.checksum) << cache;
  }
}

TEST(StreamTest, OmpssClusterMatchesSerial) {
  auto p = stream_params(4);
  auto ref = apps::stream::run_serial(p);
  ompss::Env env(apps::gpu_cluster(4, p.byte_scale()));
  auto r = apps::stream::run_ompss(env, p);
  EXPECT_DOUBLE_EQ(r.checksum, ref.checksum);
}

TEST(StreamTest, MpiCudaMatchesSerial) {
  auto p = stream_params(2);  // 2 ranks worth of data
  auto ref = apps::stream::run_serial(p);
  vt::Clock clock;
  auto r = apps::stream::run_mpicuda(p, clock, 2, apps::qdr_infiniband(p.byte_scale()),
                                     apps::gtx480(p.byte_scale()));
  EXPECT_DOUBLE_EQ(r.checksum, ref.checksum);
}

// ---------------------------------------------------------------------------
// Perlin

apps::perlin::Params perlin_params(bool flush) {
  apps::perlin::Params p;
  p.dim_phys = 128;
  p.bands = 8;
  p.steps = 4;
  p.flush = flush;
  return p;
}

TEST(PerlinTest, SerialIsDeterministic) {
  auto p = perlin_params(true);
  EXPECT_DOUBLE_EQ(apps::perlin::run_serial(p).checksum, apps::perlin::run_serial(p).checksum);
  EXPECT_GT(apps::perlin::run_serial(p).checksum, 0.0);
}

TEST(PerlinTest, CudaMatchesSerialBothVariants) {
  for (bool flush : {true, false}) {
    auto p = perlin_params(flush);
    auto ref = apps::perlin::run_serial(p);
    vt::Clock clock;
    auto r = apps::perlin::run_cuda(p, clock, apps::tesla_s2050(p.byte_scale()));
    EXPECT_DOUBLE_EQ(r.checksum, ref.checksum) << "flush=" << flush;
  }
}

TEST(PerlinTest, OmpssMatchesSerialBothVariants) {
  for (bool flush : {true, false}) {
    auto p = perlin_params(flush);
    auto ref = apps::perlin::run_serial(p);
    ompss::Env env(apps::multi_gpu_node(2, p.byte_scale()));
    auto r = apps::perlin::run_ompss(env, p);
    EXPECT_DOUBLE_EQ(r.checksum, ref.checksum) << "flush=" << flush;
  }
}

TEST(PerlinTest, OmpssClusterMatchesSerial) {
  for (bool flush : {true, false}) {
    auto p = perlin_params(flush);
    auto ref = apps::perlin::run_serial(p);
    ompss::Env env(apps::gpu_cluster(2, p.byte_scale()));
    auto r = apps::perlin::run_ompss(env, p);
    EXPECT_DOUBLE_EQ(r.checksum, ref.checksum) << "flush=" << flush;
  }
}

TEST(PerlinTest, MpiCudaMatchesSerial) {
  for (bool flush : {true, false}) {
    auto p = perlin_params(flush);
    auto ref = apps::perlin::run_serial(p);
    vt::Clock clock;
    auto r = apps::perlin::run_mpicuda(p, clock, 2, apps::qdr_infiniband(p.byte_scale()),
                                       apps::gtx480(p.byte_scale()));
    EXPECT_DOUBLE_EQ(r.checksum, ref.checksum) << "flush=" << flush;
  }
}

TEST(PerlinTest, NoFlushIsFasterThanFlush) {
  auto pf = perlin_params(true);
  auto pn = perlin_params(false);
  pf.steps = pn.steps = 8;
  double tf, tn;
  {
    ompss::Env env(apps::multi_gpu_node(2, pf.byte_scale()));
    tf = apps::perlin::run_ompss(env, pf).seconds;
  }
  {
    ompss::Env env(apps::multi_gpu_node(2, pn.byte_scale()));
    tn = apps::perlin::run_ompss(env, pn).seconds;
  }
  EXPECT_LT(tn, tf);
}

// ---------------------------------------------------------------------------
// N-Body

apps::nbody::Params nbody_params() {
  apps::nbody::Params p;
  p.n_phys = 256;
  p.nb = 4;
  p.iters = 3;
  return p;
}

TEST(NbodyTest, SerialIsDeterministic) {
  auto p = nbody_params();
  EXPECT_DOUBLE_EQ(apps::nbody::run_serial(p).checksum, apps::nbody::run_serial(p).checksum);
}

TEST(NbodyTest, CudaMatchesSerial) {
  auto p = nbody_params();
  auto ref = apps::nbody::run_serial(p);
  vt::Clock clock;
  auto r = apps::nbody::run_cuda(p, clock, apps::tesla_s2050(p.byte_scale()));
  EXPECT_DOUBLE_EQ(r.checksum, ref.checksum);
}

TEST(NbodyTest, OmpssMatchesSerialAllCaches) {
  for (const char* cache : {"nocache", "wt", "wb"}) {
    auto p = nbody_params();
    auto ref = apps::nbody::run_serial(p);
    auto cfg = apps::multi_gpu_node(2, p.byte_scale());
    cfg.cache_policy = cache;
    ompss::Env env(cfg);
    auto r = apps::nbody::run_ompss(env, p);
    EXPECT_DOUBLE_EQ(r.checksum, ref.checksum) << cache;
  }
}

TEST(NbodyTest, OmpssClusterMatchesSerial) {
  auto p = nbody_params();
  auto ref = apps::nbody::run_serial(p);
  ompss::Env env(apps::gpu_cluster(2, p.byte_scale()));
  auto r = apps::nbody::run_ompss(env, p);
  EXPECT_DOUBLE_EQ(r.checksum, ref.checksum);
}

TEST(NbodyTest, MpiCudaMatchesSerial) {
  auto p = nbody_params();
  auto ref = apps::nbody::run_serial(p);
  vt::Clock clock;
  auto r = apps::nbody::run_mpicuda(p, clock, 2, apps::qdr_infiniband(p.byte_scale()),
                                    apps::gtx480(p.byte_scale()));
  EXPECT_DOUBLE_EQ(r.checksum, ref.checksum);
}

}  // namespace
