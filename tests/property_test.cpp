// Property-based tests: randomized inputs exercised against reference
// oracles, parameterized over every runtime configuration.
//
//  * Random task DAGs (random regions, modes, device kinds) must produce
//    results bit-identical to serial spawn-order execution under every
//    scheduler x cache-policy x GPU-count combination, single-node and
//    cluster.  This holds by the OmpSs contract: any execution respecting
//    the RAW/WAR/WAW order over the declared accesses is serially
//    equivalent.
//  * Random alloc/free sequences on the first-fit allocator must never
//    overlap live blocks, never leak, and fully coalesce when drained.
//  * Random coherence traffic (serialized task protocol over random spaces
//    and policies) must leave host memory exactly as a plain CPU execution.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <tuple>
#include <vector>

#include "common/allocator.hpp"
#include "nanos/cluster.hpp"
#include "nanos/runtime.hpp"

namespace {

using nanos::Access;
using nanos::AccessMode;
using nanos::DeviceKind;
using nanos::TaskDesc;

// ---------------------------------------------------------------------------
// Random task DAGs vs serial oracle

struct RandomOp {
  // Per task: the regions it reads and writes plus its coefficient.
  std::vector<int> reads;
  std::vector<int> writes;   // subset semantics: inout when also in reads
  float coeff = 0;
  DeviceKind device = DeviceKind::kSmp;
};

constexpr int kRegions = 12;
constexpr int kFloats = 96;
constexpr int kTasks = 60;

std::vector<RandomOp> make_ops(unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<RandomOp> ops(kTasks);
  for (auto& op : ops) {
    std::uniform_int_distribution<int> nreads(0, 2), region(0, kRegions - 1);
    int nr = nreads(rng);
    for (int i = 0; i < nr; ++i) op.reads.push_back(region(rng));
    int nw = 1 + (rng() % 2);
    for (int i = 0; i < nw; ++i) {
      int r = region(rng);
      bool dup = false;
      for (int w : op.writes) dup |= (w == r);
      if (!dup) op.writes.push_back(r);
    }
    op.coeff = static_cast<float>(rng() % 1000) / 512.0f;
    op.device = (rng() % 2 == 0) ? DeviceKind::kSmp : DeviceKind::kCuda;
  }
  return ops;
}

// The task body: reads contribute a probe sum; each written region is
// updated elementwise.  Deterministic per task, order-sensitive per region.
void apply_op(const RandomOp& op, std::vector<float*> read_ptrs,
              std::vector<float*> write_ptrs) {
  float in_sum = 0;
  for (float* r : read_ptrs) in_sum += r[0] + r[kFloats - 1];
  for (std::size_t w = 0; w < write_ptrs.size(); ++w) {
    float* p = write_ptrs[w];
    for (int i = 0; i < kFloats; ++i)
      p[i] = p[i] * 0.5f + op.coeff + in_sum * 0.125f + static_cast<float>(i) * 0.001f;
  }
}

std::vector<std::vector<float>> initial_data() {
  std::vector<std::vector<float>> data(kRegions, std::vector<float>(kFloats));
  for (int r = 0; r < kRegions; ++r)
    for (int i = 0; i < kFloats; ++i)
      data[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          static_cast<float>(r) + static_cast<float>(i) * 0.01f;
  return data;
}

std::vector<std::vector<float>> serial_oracle(const std::vector<RandomOp>& ops) {
  auto data = initial_data();
  for (const RandomOp& op : ops) {
    std::vector<float*> reads, writes;
    for (int r : op.reads) reads.push_back(data[static_cast<std::size_t>(r)].data());
    for (int w : op.writes) writes.push_back(data[static_cast<std::size_t>(w)].data());
    apply_op(op, reads, writes);
  }
  return data;
}

TaskDesc make_task_desc(const RandomOp& op, std::vector<std::vector<float>>& data) {
  TaskDesc d;
  d.device = op.device;
  const std::size_t bytes = kFloats * sizeof(float);
  for (int r : op.reads)
    d.accesses.push_back(Access::in(data[static_cast<std::size_t>(r)].data(), bytes));
  for (int w : op.writes)
    d.accesses.push_back(Access::inout(data[static_cast<std::size_t>(w)].data(), bytes));
  std::size_t nreads = op.reads.size();
  std::size_t nwrites = op.writes.size();
  RandomOp op_copy = op;
  d.fn = [op_copy, nreads, nwrites](nanos::TaskContext& ctx) {
    std::vector<float*> reads, writes;
    for (std::size_t i = 0; i < nreads; ++i)
      reads.push_back(static_cast<float*>(ctx.data(i)));
    for (std::size_t i = 0; i < nwrites; ++i)
      writes.push_back(static_cast<float*>(ctx.data(nreads + i)));
    apply_op(op_copy, reads, writes);
  };
  d.cost.flops = 1e6;
  return d;
}

using GraphParam = std::tuple<unsigned /*seed*/, const char* /*sched*/, const char* /*cache*/>;

class RandomGraphTest : public ::testing::TestWithParam<GraphParam> {};

TEST_P(RandomGraphTest, SingleNodeMatchesSerialOracle) {
  auto [seed, sched, cache] = GetParam();
  auto ops = make_ops(seed);
  auto expect = serial_oracle(ops);

  auto data = initial_data();
  {
    nanos::RuntimeConfig cfg;
    cfg.scheduler = sched;
    cfg.cache_policy = cache;
    cfg.smp_workers = 3;
    simcuda::DeviceProps props;
    props.memory_bytes = 1u << 20;
    props.copy_overhead = 0;
    props.kernel_launch_overhead = 0;
    cfg.gpus.assign(3, props);
    cfg.overlap = (seed % 2) == 0;
    cfg.prefetch = cfg.overlap;
    vt::Clock clock;
    nanos::Runtime rt(clock, cfg);
    vt::Thread driver(clock, "app", [&] {
      for (const RandomOp& op : ops) rt.spawn(make_task_desc(op, data));
      rt.taskwait();
    });
    driver.join();
  }
  for (int r = 0; r < kRegions; ++r)
    for (int i = 0; i < kFloats; ++i)
      ASSERT_FLOAT_EQ(data[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                      expect[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)])
          << "region " << r << " index " << i;
}

TEST_P(RandomGraphTest, ClusterMatchesSerialOracle) {
  auto [seed, sched, cache] = GetParam();
  auto ops = make_ops(seed + 1000);
  auto expect = serial_oracle(ops);

  auto data = initial_data();
  {
    nanos::ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.node_scheduler = sched;
    cfg.rr_chunk = 2;
    cfg.presend = static_cast<int>(seed % 3);
    cfg.slave_to_slave = (seed % 2) == 0;
    cfg.segment_bytes = 8u << 20;
    cfg.node.scheduler = sched;
    cfg.node.cache_policy = cache;
    cfg.node.smp_workers = 2;
    simcuda::DeviceProps props;
    props.memory_bytes = 1u << 20;
    props.copy_overhead = 0;
    props.kernel_launch_overhead = 0;
    cfg.node.gpus.assign(1, props);
    vt::Clock clock;
    nanos::ClusterRuntime rt(clock, cfg);
    vt::Thread driver(clock, "app", [&] {
      for (const RandomOp& op : ops) {
        TaskDesc d = make_task_desc(op, data);
        rt.spawn(std::move(d));
      }
      rt.taskwait();
    });
    driver.join();
  }
  for (int r = 0; r < kRegions; ++r)
    for (int i = 0; i < kFloats; ++i)
      ASSERT_FLOAT_EQ(data[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                      expect[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)])
          << "region " << r << " index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomGraphTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values("bf", "dep", "affinity"),
                       ::testing::Values("nocache", "wt", "wb")),
    [](const ::testing::TestParamInfo<GraphParam>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_" + std::get<1>(info.param) +
             "_" + std::get<2>(info.param);
    });

// ---------------------------------------------------------------------------
// First-fit allocator against a reference model

TEST(AllocatorPropertyTest, RandomAllocFreeNeverOverlapsAndCoalesces) {
  for (unsigned seed : {11u, 22u, 33u}) {
    std::mt19937 rng(seed);
    common::FirstFitAllocator alloc(1u << 20, 64);
    std::map<std::size_t, std::size_t> live;  // offset -> requested size
    for (int step = 0; step < 2000; ++step) {
      bool do_alloc = live.empty() || (rng() % 3 != 0);
      if (do_alloc) {
        std::size_t want = 1 + rng() % 5000;
        auto off = alloc.allocate(want);
        if (off) {
          // No overlap with any live block.
          for (const auto& [o, s] : live) {
            std::size_t aligned = (s + 63) & ~std::size_t{63};
            ASSERT_TRUE(*off >= o + aligned || *off + want <= o)
                << "overlap at step " << step;
          }
          live[*off] = want;
        } else {
          // Failure implies genuinely insufficient contiguous space.
          ASSERT_LT(alloc.largest_free_block(), want);
        }
      } else {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng() % live.size()));
        alloc.deallocate(it->first);
        live.erase(it);
      }
    }
    for (const auto& [o, s] : live) alloc.deallocate(o);
    EXPECT_EQ(alloc.free_bytes(), 1u << 20);
    EXPECT_EQ(alloc.largest_free_block(), 1u << 20);  // fully coalesced
    EXPECT_EQ(alloc.allocated_blocks(), 0u);
  }
}

TEST(AllocatorPropertyTest, DoubleFreeAndBadOffsetThrow) {
  common::FirstFitAllocator alloc(4096);
  auto off = alloc.allocate(128);
  ASSERT_TRUE(off.has_value());
  alloc.deallocate(*off);
  EXPECT_THROW(alloc.deallocate(*off), std::invalid_argument);
  EXPECT_THROW(alloc.deallocate(12345), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Random serialized coherence traffic leaves host memory correct

TEST(CoherencePropertyTest, RandomTrafficMatchesCpuExecution) {
  using nanos::CachePolicy;
  for (CachePolicy policy :
       {CachePolicy::kNoCache, CachePolicy::kWriteThrough, CachePolicy::kWriteBack}) {
    for (unsigned seed : {5u, 6u}) {
      std::mt19937 rng(seed);
      constexpr int kRegs = 6;
      constexpr int kElems = 128;
      std::vector<std::vector<float>> data(kRegs, std::vector<float>(kElems, 1.0f));
      std::vector<std::vector<float>> expect = data;

      vt::Clock clock;
      simcuda::DeviceProps props;
      props.memory_bytes = 2u << 10 << 4;  // tight: forces eviction traffic
      props.copy_overhead = 0;
      props.kernel_launch_overhead = 0;
      simcuda::Platform platform(clock, {props, props});
      common::Stats stats;
      nanos::CoherenceManager coh(clock, platform, policy, false, 8e9, stats);
      vt::AttachGuard guard(clock, "main");

      std::vector<std::unique_ptr<nanos::Task>> tasks;
      for (int step = 0; step < 120; ++step) {
        int r = static_cast<int>(rng() % kRegs);
        int space = static_cast<int>(rng() % 3);  // host, gpu0, gpu1
        float add = static_cast<float>(rng() % 100) * 0.25f;
        TaskDesc d;
        d.accesses = {
            Access::inout(data[static_cast<std::size_t>(r)].data(), kElems * sizeof(float))};
        tasks.push_back(std::make_unique<nanos::Task>(static_cast<std::uint64_t>(step),
                                                      std::move(d), clock));
        nanos::Task& t = *tasks.back();
        auto ptrs = coh.acquire(t, space);
        coh.sync_transfers(space);
        auto* p = static_cast<float*>(ptrs[0]);
        for (int i = 0; i < kElems; ++i) p[i] += add;
        coh.release(t, space);
        for (int i = 0; i < kElems; ++i)
          expect[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] += add;
      }
      coh.flush_all();
      for (int r = 0; r < kRegs; ++r)
        for (int i = 0; i < kElems; ++i)
          ASSERT_FLOAT_EQ(data[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                          expect[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)])
              << "policy " << static_cast<int>(policy) << " region " << r;
    }
  }
}

}  // namespace
