// End-to-end runtime tests: task graphs executing on SMP workers and
// simulated GPUs, correctness under every scheduler × cache-policy
// combination, taskwait semantics, prefetch/overlap, and nesting.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "nanos/runtime.hpp"
#include "vt/clock.hpp"

namespace {

using nanos::Access;
using nanos::DeviceKind;
using nanos::Runtime;
using nanos::RuntimeConfig;
using nanos::TaskDesc;

RuntimeConfig base_config(int gpus, const std::string& sched = "dep",
                          const std::string& cache = "wb") {
  RuntimeConfig cfg;
  cfg.scheduler = sched;
  cfg.cache_policy = cache;
  cfg.smp_workers = 2;
  simcuda::DeviceProps props;
  props.memory_bytes = 8u << 20;
  props.gflops = 1000.0;
  props.pcie_bandwidth = 1e9;
  props.copy_overhead = 0;
  props.kernel_launch_overhead = 0;
  cfg.gpus.assign(static_cast<std::size_t>(gpus), props);
  return cfg;
}

/// Runs `body` on an attached driver thread against a fresh runtime.
void run_app(RuntimeConfig cfg, const std::function<void(Runtime&)>& body) {
  vt::Clock clock;
  Runtime rt(clock, std::move(cfg));
  vt::Thread driver(clock, "app", [&] { body(rt); });
  driver.join();
}

TaskDesc gpu_task(std::vector<Access> acc, nanos::TaskFn fn, double flops = 1e6) {
  TaskDesc d;
  d.device = DeviceKind::kCuda;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.cost.flops = flops;
  return d;
}

TaskDesc smp_task(std::vector<Access> acc, nanos::TaskFn fn, double flops = 0) {
  TaskDesc d;
  d.device = DeviceKind::kSmp;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  d.cost.flops = flops;
  return d;
}

TEST(RuntimeTest, SingleSmpTaskRuns) {
  int value = 0;
  run_app(base_config(0), [&](Runtime& rt) {
    rt.spawn(smp_task({}, [&](nanos::TaskContext&) { value = 42; }));
    rt.taskwait();
  });
  EXPECT_EQ(value, 42);
}

TEST(RuntimeTest, SingleGpuTaskComputesOnDeviceMemory) {
  std::vector<float> a(1024, 2.0f);
  run_app(base_config(1), [&](Runtime& rt) {
    rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& c) {
                        auto* f = c.data_as<float>(0);
                        for (int i = 0; i < 1024; ++i) f[i] *= 3.0f;
                        EXPECT_TRUE(c.device()->owns(f));
                      }));
    rt.taskwait();
  });
  for (float v : a) ASSERT_FLOAT_EQ(v, 6.0f);
}

TEST(RuntimeTest, DependentChainProducesSerialResult) {
  std::vector<float> a(256, 1.0f);
  run_app(base_config(2), [&](Runtime& rt) {
    for (int step = 0; step < 5; ++step) {
      rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                        [](nanos::TaskContext& c) {
                          auto* f = c.data_as<float>(0);
                          for (int i = 0; i < 256; ++i) f[i] = f[i] * 2.0f + 1.0f;
                        }));
    }
    rt.taskwait();
  });
  // x -> 2x+1 five times from 1.0: 1,3,7,15,31,63
  for (float v : a) ASSERT_FLOAT_EQ(v, 63.0f);
}

TEST(RuntimeTest, MixedSmpAndGpuGraph) {
  std::vector<float> a(128, 0.0f), b(128, 0.0f), c(128, 0.0f);
  run_app(base_config(1), [&](Runtime& rt) {
    rt.spawn(smp_task({Access::out(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& ctx) {
                        auto* f = ctx.data_as<float>(0);
                        for (int i = 0; i < 128; ++i) f[i] = static_cast<float>(i);
                      }));
    rt.spawn(gpu_task({Access::in(a.data(), a.size() * sizeof(float)),
                       Access::out(b.data(), b.size() * sizeof(float))},
                      [](nanos::TaskContext& ctx) {
                        auto* in = ctx.data_as<float>(0);
                        auto* out = ctx.data_as<float>(1);
                        for (int i = 0; i < 128; ++i) out[i] = in[i] * 10.0f;
                      }));
    rt.spawn(smp_task({Access::in(b.data(), b.size() * sizeof(float)),
                       Access::out(c.data(), c.size() * sizeof(float))},
                      [](nanos::TaskContext& ctx) {
                        auto* in = ctx.data_as<float>(0);
                        auto* out = ctx.data_as<float>(1);
                        for (int i = 0; i < 128; ++i) out[i] = in[i] + 1.0f;
                      }));
    rt.taskwait();
  });
  for (int i = 0; i < 128; ++i) ASSERT_FLOAT_EQ(c[static_cast<std::size_t>(i)], i * 10.0f + 1.0f);
}

TEST(RuntimeTest, IndependentGpuTasksRunConcurrently) {
  // Two 10ms kernels on two GPUs should take ~10ms of virtual time.
  std::vector<float> a(64), b(64);
  double elapsed = 0;
  run_app(base_config(2), [&](Runtime& rt) {
    double t0 = rt.clock().now();
    rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext&) {}, /*flops=*/1e10));
    rt.spawn(gpu_task({Access::inout(b.data(), b.size() * sizeof(float))},
                      [](nanos::TaskContext&) {}, /*flops=*/1e10));
    rt.taskwait();
    elapsed = rt.clock().now() - t0;
  });
  EXPECT_GT(elapsed, 9e-3);
  EXPECT_LT(elapsed, 13e-3);  // parallel, not 20 ms serial
}

TEST(RuntimeTest, TaskwaitNoflushLeavesDataOnDevice) {
  std::vector<float> a(256, 0.0f);
  run_app(base_config(1), [&](Runtime& rt) {
    rt.spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 5.0f; }));
    rt.taskwait(/*flush=*/false);
    EXPECT_FLOAT_EQ(a[0], 0.0f);  // still only on the GPU (write-back)
    rt.taskwait(/*flush=*/true);
    EXPECT_FLOAT_EQ(a[0], 5.0f);
  });
}

TEST(RuntimeTest, TaskwaitOnWaitsOnlyThatRegion) {
  std::vector<float> a(64, 0.0f), b(64, 0.0f);
  run_app(base_config(1), [&](Runtime& rt) {
    rt.spawn(gpu_task({Access::out(a.data(), a.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 1.0f; },
                      /*flops=*/1e6));
    rt.spawn(gpu_task({Access::out(b.data(), b.size() * sizeof(float))},
                      [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 2.0f; },
                      /*flops=*/1e12));  // 1 second: still running at wait-on
    rt.taskwait_on(common::Region(a.data(), a.size() * sizeof(float)));
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    rt.taskwait();
    EXPECT_FLOAT_EQ(b[0], 2.0f);
  });
}

TEST(RuntimeTest, NestedTasksCompleteBeforeParent) {
  std::vector<int> order;
  std::mutex mu;
  run_app(base_config(0), [&](Runtime& rt) {
    rt.spawn(smp_task({}, [&](nanos::TaskContext& ctx) {
      for (int i = 0; i < 3; ++i) {
        ctx.runtime().spawn(smp_task({}, [&, i](nanos::TaskContext&) {
          std::lock_guard<std::mutex> lk(mu);
          order.push_back(i);
        }));
      }
      // Parent returns; the runtime must wait for the children implicitly.
    }));
    rt.taskwait();
  });
  EXPECT_EQ(order.size(), 3u);
}

TEST(RuntimeTest, NestedTaskwaitInsideTask) {
  int observed = -1;
  std::vector<float> a(16, 0.0f);
  run_app(base_config(1), [&](Runtime& rt) {
    rt.spawn(smp_task({}, [&](nanos::TaskContext& ctx) {
      ctx.runtime().spawn(gpu_task({Access::inout(a.data(), a.size() * sizeof(float))},
                                   [](nanos::TaskContext& c) { c.data_as<float>(0)[0] = 9.0f; }));
      ctx.runtime().taskwait();  // waits only this task's children
      observed = static_cast<int>(a[0]);
    }));
    rt.taskwait();
  });
  EXPECT_EQ(observed, 9);
}

TEST(RuntimeTest, ManyIndependentTasksAllExecute) {
  constexpr int kN = 200;
  std::vector<int> flags(kN, 0);
  run_app(base_config(2), [&](Runtime& rt) {
    for (int i = 0; i < kN; ++i) {
      auto desc = (i % 2 == 0)
                      ? smp_task({Access::out(&flags[static_cast<std::size_t>(i)], sizeof(int))},
                                 [&flags, i](nanos::TaskContext&) { flags[static_cast<std::size_t>(i)] = 1; })
                      : gpu_task({Access::inout(&flags[static_cast<std::size_t>(i)], sizeof(int))},
                                 [](nanos::TaskContext& c) { *c.data_as<int>(0) = 1; });
      rt.spawn(std::move(desc));
    }
    rt.taskwait();
  });
  EXPECT_EQ(std::accumulate(flags.begin(), flags.end(), 0), kN);
}

TEST(RuntimeTest, StatsCountTasks) {
  run_app(base_config(1), [&](Runtime& rt) {
    for (int i = 0; i < 5; ++i) rt.spawn(smp_task({}, [](nanos::TaskContext&) {}));
    rt.taskwait();
    EXPECT_EQ(rt.stats().count("tasks.spawned"), 5u);
    EXPECT_EQ(rt.stats().count("tasks.executed"), 5u);
  });
}

TEST(RuntimeTest, ConfigFromCommonConfig) {
  common::Config c;
  c.parse_args("scheduler=affinity,cache=wt,overlap=true,prefetch=true,smp_workers=3,gpus=2,presend=2,stos=false");
  RuntimeConfig cfg = RuntimeConfig::from(c);
  EXPECT_EQ(cfg.scheduler, "affinity");
  EXPECT_EQ(cfg.cache_policy, "wt");
  EXPECT_TRUE(cfg.overlap);
  EXPECT_TRUE(cfg.prefetch);
  EXPECT_EQ(cfg.smp_workers, 3);
  EXPECT_EQ(cfg.gpus.size(), 2u);
  EXPECT_EQ(cfg.presend, 2);
  EXPECT_FALSE(cfg.slave_to_slave);
}

// ---------------------------------------------------------------------------
// Property test: a fixed blocked-stencil task graph must produce the serial
// result under every (scheduler × cache × gpus × overlap/prefetch) combo.

using PolicyParam = std::tuple<std::string, std::string, int, bool>;

class PolicyMatrixTest : public ::testing::TestWithParam<PolicyParam> {};

TEST_P(PolicyMatrixTest, BlockedPipelineMatchesSerialReference) {
  const auto& [sched, cache, gpus, overlap] = GetParam();

  static constexpr int kBlocks = 8;
  static constexpr int kBlockFloats = 512;
  static constexpr int kSteps = 4;

  // Serial reference.
  std::vector<float> ref(kBlocks * kBlockFloats);
  std::iota(ref.begin(), ref.end(), 0.0f);
  for (int s = 0; s < kSteps; ++s) {
    for (int b = 0; b < kBlocks; ++b) {
      for (int i = 0; i < kBlockFloats; ++i) {
        float& x = ref[static_cast<std::size_t>(b * kBlockFloats + i)];
        x = x * 1.5f + static_cast<float>(b);
      }
    }
    // Shift: block b reads block b-1's sum (cross-block dependence).
    for (int b = kBlocks - 1; b > 0; --b) {
      ref[static_cast<std::size_t>(b * kBlockFloats)] +=
          ref[static_cast<std::size_t>((b - 1) * kBlockFloats)];
    }
  }

  std::vector<float> data(kBlocks * kBlockFloats);
  std::iota(data.begin(), data.end(), 0.0f);

  RuntimeConfig cfg = base_config(gpus, sched, cache);
  cfg.overlap = overlap;
  cfg.prefetch = overlap;
  run_app(cfg, [&](Runtime& rt) {
    auto block = [&](int b) { return data.data() + b * kBlockFloats; };
    const std::size_t bytes = kBlockFloats * sizeof(float);
    for (int s = 0; s < kSteps; ++s) {
      for (int b = 0; b < kBlocks; ++b) {
        rt.spawn(gpu_task({Access::inout(block(b), bytes)}, [b](nanos::TaskContext& c) {
          auto* f = c.data_as<float>(0);
          for (int i = 0; i < kBlockFloats; ++i) f[i] = f[i] * 1.5f + static_cast<float>(b);
        }));
      }
      for (int b = kBlocks - 1; b > 0; --b) {
        rt.spawn(gpu_task(
            {Access::in(block(b - 1), bytes), Access::inout(block(b), bytes)},
            [](nanos::TaskContext& c) { c.data_as<float>(1)[0] += c.data_as<float>(0)[0]; }));
      }
    }
    rt.taskwait();
  });

  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_FLOAT_EQ(data[i], ref[i]) << "at index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyMatrixTest,
    ::testing::Combine(::testing::Values("bf", "dep", "affinity"),
                       ::testing::Values("nocache", "wt", "wb"), ::testing::Values(1, 2, 4),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<PolicyParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_g" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_ovl" : "_novl");
    });

}  // namespace
