#include <gtest/gtest.h>

#include <cstdlib>

#include <vector>

#include "common/config.hpp"
#include "common/interval_map.hpp"
#include "common/region.hpp"
#include "common/stats.hpp"

namespace {

using common::Config;
using common::ConfigError;
using common::IntervalMap;
using common::Region;
using common::Stats;

TEST(ConfigTest, ParseArgsBasic) {
  Config c;
  c.parse_args("scheduler=affinity,cache=wb,gpus=4");
  EXPECT_EQ(c.get_string("scheduler", ""), "affinity");
  EXPECT_EQ(c.get_string("cache", ""), "wb");
  EXPECT_EQ(c.get_int("gpus", 0), 4);
}

TEST(ConfigTest, ParseArgsTrimsWhitespace) {
  Config c;
  c.parse_args("  a = 1 ,  b = two  ");
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "two");
}

TEST(ConfigTest, LaterEntriesOverride) {
  Config c;
  c.parse_args("x=1,x=2");
  EXPECT_EQ(c.get_int("x", 0), 2);
}

TEST(ConfigTest, MalformedEntriesThrow) {
  Config c;
  EXPECT_THROW(c.parse_args("novalue"), ConfigError);
  EXPECT_THROW(c.parse_args("=5"), ConfigError);
}

TEST(ConfigTest, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_EQ(c.get_string("missing", "d"), "d");
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
}

TEST(ConfigTest, BoolParsing) {
  Config c;
  c.parse_args("a=true,b=No,c=ON,d=0");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  c.set("e", "maybe");
  EXPECT_THROW(c.get_bool("e", false), ConfigError);
}

TEST(ConfigTest, NumericValidation) {
  Config c;
  c.set("n", "12x");
  EXPECT_THROW(c.get_int("n", 0), ConfigError);
  c.set("d", "1.5.2");
  EXPECT_THROW(c.get_double("d", 0), ConfigError);
  c.set("neg", "-1");
  EXPECT_THROW(c.get_size("neg", 0), ConfigError);
}

TEST(ConfigTest, ParseEnvWithPrefix) {
  ::setenv("OMPSSTEST_SCHEDULER", "bf", 1);
  ::setenv("OMPSSTEST_PRESEND", "2", 1);
  ::setenv("OTHERVAR_X", "nope", 1);
  Config c;
  c.parse_env("OMPSSTEST_");
  EXPECT_EQ(c.get_string("scheduler", ""), "bf");
  EXPECT_EQ(c.get_int("presend", 0), 2);
  EXPECT_FALSE(c.has("x"));
  ::unsetenv("OMPSSTEST_SCHEDULER");
  ::unsetenv("OMPSSTEST_PRESEND");
  ::unsetenv("OTHERVAR_X");
}

TEST(ConfigTest, RoundTripToString) {
  Config c;
  c.parse_args("b=2,a=1");
  EXPECT_EQ(c.to_string(), "a=1,b=2");
  Config c2;
  c2.parse_args(c.to_string());
  EXPECT_EQ(c2.get_int("a", 0), 1);
}

TEST(RegionTest, OverlapCases) {
  Region a(reinterpret_cast<void*>(0x1000), 0x100);
  EXPECT_TRUE(a.overlaps(Region(std::uintptr_t{0x1080}, std::size_t{0x10})));   // inside
  EXPECT_TRUE(a.overlaps(Region(std::uintptr_t{0x0FF0}, std::size_t{0x20})));   // left edge
  EXPECT_TRUE(a.overlaps(Region(std::uintptr_t{0x10F0}, std::size_t{0x100})));  // right edge
  EXPECT_FALSE(a.overlaps(Region(std::uintptr_t{0x1100}, std::size_t{0x10})));  // adjacent
  EXPECT_FALSE(a.overlaps(Region(std::uintptr_t{0x0F00}, std::size_t{0x100}))); // before
  EXPECT_FALSE(a.overlaps(Region(std::uintptr_t{0x1080}, std::size_t{0})));     // empty
}

TEST(RegionTest, Contains) {
  Region a(std::uintptr_t{0x1000}, std::size_t{0x100});
  EXPECT_TRUE(a.contains(Region(std::uintptr_t{0x1000}, std::size_t{0x100})));
  EXPECT_TRUE(a.contains(Region(std::uintptr_t{0x1010}, std::size_t{0x10})));
  EXPECT_FALSE(a.contains(Region(std::uintptr_t{0x10FF}, std::size_t{0x2})));
  EXPECT_TRUE(a.contains(Region(std::uintptr_t{0x2000}, std::size_t{0})));  // empty always contained
}

TEST(RegionTest, OrderingAndEquality) {
  Region a(std::uintptr_t{0x1000}, std::size_t{8});
  Region b(std::uintptr_t{0x1000}, std::size_t{16});
  Region c(std::uintptr_t{0x2000}, std::size_t{8});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_EQ(a, Region(std::uintptr_t{0x1000}, std::size_t{8}));
}

TEST(StatsTest, AccumulatesValues) {
  Stats s;
  s.add("bytes", 10);
  s.add("bytes", 30);
  s.incr("count");
  auto v = s.get("bytes");
  EXPECT_EQ(v.count, 2u);
  EXPECT_DOUBLE_EQ(v.sum, 40);
  EXPECT_DOUBLE_EQ(v.min, 10);
  EXPECT_DOUBLE_EQ(v.max, 30);
  EXPECT_DOUBLE_EQ(v.mean(), 20);
  EXPECT_EQ(s.count("count"), 1u);
}

TEST(StatsTest, MissingIsZero) {
  Stats s;
  EXPECT_EQ(s.count("nope"), 0u);
  EXPECT_DOUBLE_EQ(s.sum("nope"), 0.0);
}

TEST(StatsTest, ClearResets) {
  Stats s;
  s.add("x", 1);
  s.clear();
  EXPECT_EQ(s.count("x"), 0u);
}

TEST(StatsTest, SnapshotIsConsistent) {
  Stats s;
  s.add("a", 1);
  s.add("b", 2);
  auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.at("b").sum, 2);
}

std::vector<Region> overlaps_of(IntervalMap<int>& m, Region r) {
  std::vector<Region> out;
  m.for_overlapping(r, [&](IntervalMap<int>::Entry& e) { out.push_back(e.region); });
  return out;
}

TEST(IntervalMapTest, FindsOverlapsAcrossSizes) {
  IntervalMap<int> m;
  m.try_emplace(Region(std::uintptr_t{0}, 100));     // giant early region
  m.try_emplace(Region(std::uintptr_t{200}, 50));
  m.try_emplace(Region(std::uintptr_t{300}, 50));
  auto hits = overlaps_of(m, Region(std::uintptr_t{40}, 10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].start, 0u);
  EXPECT_TRUE(overlaps_of(m, Region(std::uintptr_t{120}, 10)).empty());
  EXPECT_EQ(overlaps_of(m, Region(std::uintptr_t{240}, 100)).size(), 2u);
}

TEST(IntervalMapTest, EarlyRegionCoveringLaterOnesIsFound) {
  IntervalMap<int> m;
  // Insert tiles first, then a region spanning them from before — the prefix
  // max-end must carry the giant's reach past the tiles.
  for (std::uintptr_t s = 1000; s < 1500; s += 100) m.try_emplace(Region(s, 100));
  m.try_emplace(Region(std::uintptr_t{500}, 2000));
  auto hits = overlaps_of(m, Region(std::uintptr_t{1800}, 10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].start, 500u);
}

TEST(IntervalMapTest, DisjointTileScansVisitO1Records) {
  IntervalMap<int> m;
  constexpr std::uintptr_t kTiles = 1000;
  for (std::uintptr_t i = 0; i < kTiles; ++i) m.try_emplace(Region(i * 64, 64));
  // Querying one tile must not walk the 999 earlier records.
  std::size_t visited = m.for_overlapping(Region(kTiles / 2 * 64, 64),
                                          [](IntervalMap<int>::Entry&) {});
  EXPECT_LE(visited, 2u);
}

TEST(IntervalMapTest, UpdateExtentExtendsReach) {
  IntervalMap<int> m;
  auto [it, inserted] = m.try_emplace(Region(std::uintptr_t{0}, 10));
  ASSERT_TRUE(inserted);
  m.try_emplace(Region(std::uintptr_t{100}, 10));
  EXPECT_TRUE(overlaps_of(m, Region(std::uintptr_t{50}, 10)).empty());
  m.update_extent(it, 80);
  auto hits = overlaps_of(m, Region(std::uintptr_t{50}, 10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].size, 80u);
}

TEST(IntervalMapTest, EraseRepairsAugmentation) {
  IntervalMap<int> m;
  auto [giant, ins] = m.try_emplace(Region(std::uintptr_t{0}, 1000));
  ASSERT_TRUE(ins);
  m.try_emplace(Region(std::uintptr_t{100}, 10));
  m.try_emplace(Region(std::uintptr_t{200}, 10));
  m.erase(giant);
  EXPECT_TRUE(overlaps_of(m, Region(std::uintptr_t{500}, 10)).empty());
  // And the scan after erase prunes again instead of walking everything.
  std::size_t visited =
      m.for_overlapping(Region(std::uintptr_t{205}, 2), [](IntervalMap<int>::Entry&) {});
  EXPECT_LE(visited, 1u);
}

TEST(IntervalMapTest, ValuesAreNodeStable) {
  IntervalMap<int> m;
  auto [it, ins] = m.try_emplace(Region(std::uintptr_t{64}, 64));
  int* v = &it->second.value;
  *v = 7;
  for (std::uintptr_t i = 0; i < 100; ++i) m.try_emplace(Region(1000 + i * 64, 64));
  EXPECT_EQ(it->second.value, 7);
  EXPECT_EQ(&it->second.value, v);
}

}  // namespace
