// Minimal C tokenizer for the mcc source-to-source translator.
//
// mcc only needs to understand pragma lines and function headers; everything
// else passes through verbatim.  The lexer therefore handles identifiers,
// numbers, punctuation and (single-level) bracket matching — enough to parse
// clause argument lists and parameter declarations.
#pragma once

#include <string>
#include <vector>

namespace mcc {

enum class TokKind { kIdent, kNumber, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::size_t pos = 0;  // byte offset in the input

  bool is(const char* s) const { return text == s; }
};

/// Tokenizes `src`; throws std::runtime_error on characters it cannot handle.
std::vector<Token> tokenize(const std::string& src);

/// Cursor over a token vector with convenience matchers.
class TokenCursor {
public:
  explicit TokenCursor(const std::vector<Token>& toks) : toks_(toks) {}

  const Token& peek(std::size_t ahead = 0) const;
  const Token& next();
  bool at_end() const { return i_ >= toks_.size(); }
  /// Consumes the token if it matches `text`.
  bool accept(const char* text);
  /// Consumes a token that must match `text`; throws otherwise.
  void expect(const char* text);
  std::size_t position() const { return i_; }
  void rewind(std::size_t pos) { i_ = pos; }

private:
  const std::vector<Token>& toks_;
  std::size_t i_ = 0;
  Token end_{};
};

}  // namespace mcc
