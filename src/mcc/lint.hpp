// mcc --lint — static clause lint for annotated OmpSs sources (taskcheck
// pass 3, the compile-time face of the verifier; the runtime race oracle in
// nanos/verify catches what this pass cannot see).
//
// Five diagnostics, all clause mistakes on `#pragma omp task` functions:
//
//  1. undeclared reference — the task body references a pointer parameter
//     that appears in no input/output/inout clause, so the runtime never
//     tracks the region (a latent dependency race);
//  2. dead clause — a clause names a parameter the body never references,
//     which serializes tasks on a region nobody touches;
//  3. out read-before-write — an output() parameter's first use in the body
//     is a read (e.g. `c[i] += ...`), so the task consumes stale data the
//     runtime is free to leave behind; the clause should be inout;
//  4. unproduced taskwait on — `#pragma omp taskwait on(expr)` where no
//     earlier task call passes the named object through an output/inout
//     clause, so the wait synchronizes with nothing;
//  5. overlapping block sections — a constant-bound loop spawns sibling
//     tasks whose output/inout sections of the same buffer overlap across
//     iterations (stride smaller than section length): almost always broken
//     tiling math.  Disjoint strides (stride >= length) and exact-repeat
//     sections (stride 0 — the serialized accumulate idiom) are clean.
//     Object-like #define constants are folded; anything the constant
//     evaluator cannot resolve is skipped, never guessed.
//
// The lint is line-oriented like the translator: it strips comments and
// string/char literals (preserving newlines), joins pragma continuations,
// and matches a later plain definition to an annotated declaration the same
// way translate() does.  Scalar (non-pointer) parameters never need clauses
// and are never flagged.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mcc {

struct LintDiagnostic {
  int line = 0;  ///< 1-based source line
  std::string message;
};

/// Runs the clause lint over one annotated source.  Diagnostics come back
/// sorted by line; an empty vector means the file is clean.
std::vector<LintDiagnostic> lint(const std::string& source);

/// Formats one diagnostic compiler-style: "file:line: warning: message".
std::string format_diagnostic(const std::string& file, const LintDiagnostic& d);

/// How an annotated task's body uses one of its pointer parameters,
/// aggregated over every occurrence with the lint's read/write classifier.
struct BodyAccess {
  std::string param;
  bool read = false;
  bool written = false;
};

/// The pointer-parameter accesses each annotated task body performs, keyed
/// by task name (tasks whose body never appears are absent).  The translator
/// turns these into TaskContext::observe() calls so lint-clean pragma
/// programs get dynamic race checking of what the body *really* touches.
std::map<std::string, std::vector<BodyAccess>> resolve_body_accesses(
    const std::string& source);

}  // namespace mcc
