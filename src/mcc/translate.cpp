#include "mcc/translate.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mcc/funcsig.hpp"
#include "mcc/lint.hpp"
#include "mcc/pragma.hpp"

namespace mcc {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Pointer expression for a clause region: the parameter, offset to the
/// block section's first element when the clause carries one ([lo:len]).
std::string region_ptr_expr(const DepItem& d) {
  return d.start_expr.empty() ? d.name : d.name + " + (" + d.start_expr + ")";
}

/// Byte-count expression for a clause region.
std::string region_size_expr(const DepItem& d) {
  return d.size_expr.empty() ? "sizeof(*" + d.name + ")"
                             : "(" + d.size_expr + ") * sizeof(*" + d.name + ")";
}

/// Generates the spawning wrapper for an annotated task function.
/// `accesses` (may be null): the lint-resolved pointer uses of the task's
/// body, emitted as TaskContext::observe() annotations inside the spawned
/// lambda so the race oracle checks what the body *really* touches — a no-op
/// unless `verify` enables the race pass.
std::string make_wrapper(const FuncSig& sig, const Pragma& target, const Pragma& task,
                         const std::vector<BodyAccess>* accesses) {
  std::ostringstream os;
  // Wrapper signature: identical to the original.
  os << "void " << sig.name << "(";
  for (std::size_t i = 0; i < sig.params.size(); ++i) {
    if (i) os << ", ";
    os << sig.params[i].type << " " << sig.params[i].name;
  }
  os << ") {\n";
  os << "  ompss::task()\n";
  os << "      .device(ompss::Device::"
     << (target.device == "cuda" ? "kCuda" : "kSmp") << ")\n";
  for (const DepItem& d : task.deps) {
    int pi = sig.param_index(d.name);
    if (pi < 0)
      throw std::runtime_error("mcc: dependence clause names unknown parameter '" + d.name +
                               "' of task '" + sig.name + "'");
    if (!sig.params[static_cast<std::size_t>(pi)].is_pointer)
      throw std::runtime_error("mcc: dependence on non-pointer parameter '" + d.name + "'");
    const char* method = d.mode == DepMode::kIn    ? "in"
                         : d.mode == DepMode::kOut ? "out"
                                                   : "inout";
    os << "      ." << method << "(" << region_ptr_expr(d) << ", " << region_size_expr(d)
       << ")\n";
  }
  const std::string& cost = !task.cost_expr.empty() ? task.cost_expr : target.cost_expr;
  if (!cost.empty()) os << "      .flops(" << cost << ")\n";
  os << "      .label(\"" << sig.name << "\")\n";
  os << "      .run([=](ompss::Ctx& mcc_ctx) {\n";
  if (accesses != nullptr) {
    for (const BodyAccess& ba : *accesses) {
      int pi = sig.param_index(ba.param);
      if (pi < 0 || !sig.params[static_cast<std::size_t>(pi)].is_pointer) continue;
      const char* mode = ba.written ? (ba.read ? "kInout" : "kOut") : "kIn";
      const DepItem* decl = nullptr;
      for (const DepItem& d : task.deps) {
        if (d.name == ba.param) {
          decl = &d;
          break;
        }
      }
      // Observe the declared region (the captured parameter is the original
      // host pointer, which is what the oracle stamps); an undeclared
      // pointer — the lint's "undeclared reference" case — is observed as a
      // scalar, enough for the oracle to flag the untracked overlap.
      if (decl != nullptr) {
        os << "        mcc_ctx.observe(" << region_ptr_expr(*decl) << ", "
           << region_size_expr(*decl) << ", nanos::AccessMode::" << mode << ");\n";
      } else {
        os << "        mcc_ctx.observe(" << ba.param << ", sizeof(*" << ba.param
           << "), nanos::AccessMode::" << mode << ");\n";
      }
    }
  }
  os << "        " << sig.name << "__task_impl(";
  for (std::size_t i = 0; i < sig.params.size(); ++i) {
    if (i) os << ", ";
    const Param& p = sig.params[i];
    int dep_index = -1;
    for (std::size_t k = 0; k < task.deps.size(); ++k) {
      if (task.deps[k].name == p.name) {
        dep_index = static_cast<int>(k);
        break;
      }
    }
    if (dep_index >= 0) {
      os << "static_cast<" << p.type << ">(mcc_ctx.data(" << dep_index << "))";
    } else {
      os << p.name;
    }
  }
  os << ");\n";
  // The body returned: it is done with every declared region.  Release each
  // one so successors unblock before the end-of-task bookkeeping runs — a
  // no-op unless the `early_release` config key arms the fast path.
  for (const DepItem& d : task.deps) {
    os << "        mcc_ctx.release(" << region_ptr_expr(d) << ", " << region_size_expr(d)
       << ");\n";
  }
  os << "      });\n";
  os << "}\n";
  return os.str();
}

struct Translator {
  std::istringstream in;
  std::ostringstream out;

  /// Lint-resolved body accesses per task name (the observe() pre-pass).
  std::map<std::string, std::vector<BodyAccess>> body_accesses;

  std::optional<Pragma> pending_target;
  std::optional<Pragma> pending_task;
  std::string pending_wrapper;  // emitted when the definition's braces close
  int brace_depth = 0;
  bool have_user_main = false;
  bool user_main_has_args = false;
  std::vector<std::string> declared_tasks;  // declared-but-not-yet-defined

  explicit Translator(const std::string& src)
      : in(src), body_accesses(resolve_body_accesses(src)) {}

  void emit_header_and_wrapper(const std::string& header, bool is_definition) {
    FuncSig sig = parse_function_header(header);
    Pragma target = pending_target.value_or(Pragma{});
    Pragma task = *pending_task;
    pending_target.reset();
    pending_task.reset();

    auto acc = body_accesses.find(sig.name);
    std::string wrapper = make_wrapper(sig, target, task,
                                       acc != body_accesses.end() ? &acc->second : nullptr);
    if (is_definition) {
      out << "void " << sig.name << "__task_impl(";
      for (std::size_t i = 0; i < sig.params.size(); ++i) {
        if (i) out << ", ";
        out << sig.params[i].type << " " << sig.params[i].name;
      }
      out << ") {\n";
      brace_depth = 1;
      pending_wrapper = std::move(wrapper);
    } else {
      out << "void " << sig.name << "__task_impl(";
      for (std::size_t i = 0; i < sig.params.size(); ++i) {
        if (i) out << ", ";
        out << sig.params[i].type << " " << sig.params[i].name;
      }
      out << ");\n";
      out << wrapper;
      declared_tasks.push_back(sig.name);
    }
  }

  // Rewrites a later plain definition of a previously annotated declaration.
  bool try_rename_task_definition(const std::string& line) {
    std::string t = trim(line);
    if (!starts_with(t, "void ")) return false;
    for (const std::string& name : declared_tasks) {
      std::string needle = name;
      std::size_t pos = t.find(needle);
      if (pos == std::string::npos) continue;
      std::size_t after = pos + needle.size();
      // Must be followed (modulo spaces) by '(' and be a definition start.
      std::size_t q = after;
      while (q < t.size() && (t[q] == ' ' || t[q] == '\t')) ++q;
      if (q >= t.size() || t[q] != '(') continue;
      std::string renamed = line;
      std::size_t lpos = renamed.find(name);
      renamed.replace(lpos, name.size(), name + "__task_impl");
      out << renamed << "\n";
      update_depth(renamed);
      return true;
    }
    return false;
  }

  void update_depth(const std::string& line) {
    for (char c : line) {
      if (c == '{') ++brace_depth;
      if (c == '}') {
        --brace_depth;
        if (brace_depth == 0 && !pending_wrapper.empty()) {
          // flushed by caller after the line is printed
        }
      }
    }
  }

  void run() {
    out << "// Generated by mcc — the OmpSs source-to-source translator.\n";
    out << "#include \"ompss/ompss.hpp\"\n";
    out << "#include <cstdlib>\n\n";

    std::string line;
    while (std::getline(in, line)) {
      std::string t = trim(line);

      // Join pragma continuation lines.
      while (!t.empty() && t.back() == '\\') {
        std::string cont;
        if (!std::getline(in, cont)) break;
        t = t.substr(0, t.size() - 1) + " " + trim(cont);
      }

      if (starts_with(t, "#pragma")) {
        Pragma p = parse_pragma(t);
        switch (p.kind) {
          case PragmaKind::kTarget:
            pending_target = p;
            continue;
          case PragmaKind::kTask:
            pending_task = p;
            continue;
          case PragmaKind::kTaskwait:
            if (!p.on_expr.empty()) {
              out << "ompss::taskwait_on(" << p.on_expr << ", 1);\n";
            } else if (p.noflush) {
              out << "ompss::taskwait_noflush();\n";
            } else {
              out << "ompss::taskwait();\n";
            }
            continue;
          case PragmaKind::kOther:
            out << line << "\n";
            continue;
        }
      }

      if (pending_task.has_value() && !t.empty()) {
        // Accumulate the function header up to ';' or '{'.
        std::string header = line;
        while (header.find(';') == std::string::npos &&
               header.find('{') == std::string::npos) {
          std::string more;
          if (!std::getline(in, more))
            throw std::runtime_error("mcc: annotated declaration never terminated");
          header += " " + more;
        }
        bool is_definition = header.find('{') != std::string::npos &&
                             (header.find(';') == std::string::npos ||
                              header.find('{') < header.find(';'));
        std::size_t cut = is_definition ? header.find('{') : header.find(';');
        std::string rest = header.substr(cut + 1);
        header = header.substr(0, cut);
        emit_header_and_wrapper(trim(header), is_definition);
        if (!trim(rest).empty()) {
          out << rest << "\n";
          update_depth(rest);
          if (brace_depth == 0 && !pending_wrapper.empty()) {
            out << pending_wrapper;
            pending_wrapper.clear();
          }
        }
        continue;
      }

      // main() gets wrapped in an Env.
      if (starts_with(t, "int main")) {
        have_user_main = true;
        std::size_t lp = line.find('(');
        std::size_t rp = line.find(')');
        std::string args = lp != std::string::npos && rp != std::string::npos
                               ? trim(line.substr(lp + 1, rp - lp - 1))
                               : "";
        user_main_has_args = !args.empty() && args != "void";
        std::string renamed = line;
        renamed.replace(renamed.find("main"), 4, "mcc_user_main");
        out << renamed << "\n";
        update_depth(renamed);
        continue;
      }

      if (try_rename_task_definition(line)) {
        if (brace_depth == 0 && !pending_wrapper.empty()) {
          out << pending_wrapper;
          pending_wrapper.clear();
        }
        continue;
      }

      out << line << "\n";
      update_depth(line);
      if (brace_depth == 0 && !pending_wrapper.empty()) {
        out << pending_wrapper;
        pending_wrapper.clear();
      }
    }

    if (pending_task.has_value())
      throw std::runtime_error("mcc: task pragma not followed by a function");

    if (have_user_main) {
      out << "\nint main(int argc, char** argv) {\n";
      out << "  (void)argc; (void)argv;\n";
      out << "  common::Config cfg;\n";
      out << "  if (const char* args = std::getenv(\"OMPSS_ARGS\")) cfg.parse_args(args);\n";
      out << "  ompss::Env env(cfg);\n";
      out << "  int rc = 0;\n";
      if (user_main_has_args) {
        out << "  env.run([&] { rc = mcc_user_main(argc, argv); });\n";
      } else {
        out << "  env.run([&] { rc = mcc_user_main(); });\n";
      }
      out << "  return rc;\n";
      out << "}\n";
    }
  }
};

}  // namespace

std::string translate(const std::string& source) {
  Translator tr(source);
  tr.run();
  return tr.out.str();
}

}  // namespace mcc
