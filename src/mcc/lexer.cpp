#include "mcc/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace mcc {

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t b = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) ++i;
      out.push_back({TokKind::kIdent, src.substr(b, i - b), b});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t b = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > b &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E'))))
        ++i;
      out.push_back({TokKind::kNumber, src.substr(b, i - b), b});
      continue;
    }
    // Multi-character operators mcc cares about in expressions.
    static const char* two[] = {"->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
                                "-=", "*=", "/=", "::"};
    bool matched = false;
    for (const char* op : two) {
      if (src.compare(i, 2, op) == 0) {
        out.push_back({TokKind::kPunct, op, i});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string singles = "()[]{},;*&+-/%<>=!.?:|^~#";
    if (singles.find(c) != std::string::npos) {
      out.push_back({TokKind::kPunct, std::string(1, c), i});
      ++i;
      continue;
    }
    throw std::runtime_error("mcc: unexpected character '" + std::string(1, c) + "' in pragma or declaration");
  }
  return out;
}

const Token& TokenCursor::peek(std::size_t ahead) const {
  std::size_t k = i_ + ahead;
  return k < toks_.size() ? toks_[k] : end_;
}

const Token& TokenCursor::next() {
  if (i_ >= toks_.size()) return end_;
  return toks_[i_++];
}

bool TokenCursor::accept(const char* text) {
  if (!at_end() && toks_[i_].text == text) {
    ++i_;
    return true;
  }
  return false;
}

void TokenCursor::expect(const char* text) {
  if (!accept(text))
    throw std::runtime_error(std::string("mcc: expected '") + text + "', got '" +
                             (at_end() ? "<end>" : toks_[i_].text) + "'");
}

}  // namespace mcc
