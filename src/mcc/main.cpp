// mcc — command-line driver.
//
//   mcc input.c [-o output.cpp]
//
// Translates the annotated source to C++ against the ompss:: API.  The
// output is a regular translation unit: compile it with the host compiler
// and link against the ompss libraries (Mercurium's pipeline, §III-A).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "mcc/translate.hpp"

int main(int argc, char** argv) {
  const char* input = nullptr;
  const char* output = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 || std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: mcc input.c [-o output.cpp]\n");
      return 0;
    } else if (input == nullptr) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "mcc: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (input == nullptr) {
    std::fprintf(stderr, "mcc: no input file\n");
    return 2;
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "mcc: cannot open '%s'\n", input);
    return 1;
  }
  std::ostringstream src;
  src << in.rdbuf();

  std::string translated;
  try {
    translated = mcc::translate(src.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcc: %s\n", e.what());
    return 1;
  }

  if (output != nullptr) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "mcc: cannot write '%s'\n", output);
      return 1;
    }
    out << translated;
  } else {
    std::cout << translated;
  }
  return 0;
}
