// mcc — command-line driver.
//
//   mcc input.c [-o output.cpp]
//   mcc --lint input.c [more.c ...]
//
// Translates the annotated source to C++ against the ompss:: API.  The
// output is a regular translation unit: compile it with the host compiler
// and link against the ompss libraries (Mercurium's pipeline, §III-A).
// With --lint, runs the static clause lint instead and exits nonzero if any
// file draws a diagnostic — CI gates on it.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "mcc/lint.hpp"
#include "mcc/translate.hpp"

static int run_lint(const std::vector<const char*>& files) {
  int total = 0;
  for (const char* file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "mcc: cannot open '%s'\n", file);
      return 2;
    }
    std::ostringstream src;
    src << in.rdbuf();
    std::vector<mcc::LintDiagnostic> diags;
    try {
      diags = mcc::lint(src.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mcc: %s: %s\n", file, e.what());
      return 2;
    }
    for (const mcc::LintDiagnostic& d : diags) {
      std::fprintf(stderr, "%s\n", mcc::format_diagnostic(file, d).c_str());
    }
    total += static_cast<int>(diags.size());
  }
  return total == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  const char* input = nullptr;
  const char* output = nullptr;
  bool lint_mode = false;
  std::vector<const char*> lint_files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lint") == 0) {
      lint_mode = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 || std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: mcc input.c [-o output.cpp]\n"
                  "       mcc --lint input.c [more.c ...]\n");
      return 0;
    } else if (lint_mode) {
      lint_files.push_back(argv[i]);
    } else if (input == nullptr) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "mcc: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (lint_mode) {
    if (lint_files.empty()) {
      std::fprintf(stderr, "mcc: no input file\n");
      return 2;
    }
    return run_lint(lint_files);
  }
  if (input == nullptr) {
    std::fprintf(stderr, "mcc: no input file\n");
    return 2;
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "mcc: cannot open '%s'\n", input);
    return 1;
  }
  std::ostringstream src;
  src << in.rdbuf();

  std::string translated;
  try {
    translated = mcc::translate(src.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcc: %s\n", e.what());
    return 1;
  }

  if (output != nullptr) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "mcc: cannot write '%s'\n", output);
      return 1;
    }
    out << translated;
  } else {
    std::cout << translated;
  }
  return 0;
}
