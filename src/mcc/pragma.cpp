#include "mcc/pragma.hpp"

#include <stdexcept>

#include "mcc/lexer.hpp"

namespace mcc {

namespace {

// Collects the raw token text up to the matching ')' of an already-consumed
// '(' — used for expressions mcc keeps verbatim (sizes, cost).
std::string collect_until_close(TokenCursor& cur) {
  std::string out;
  int depth = 1;
  for (;;) {
    const Token& t = cur.next();
    if (t.kind == TokKind::kEnd) throw std::runtime_error("mcc: unterminated '(' in pragma");
    if (t.is("(") || t.is("[")) ++depth;
    if (t.is(")") || t.is("]")) {
      if (t.is(")") && --depth == 0) break;
      if (t.is("]")) --depth;
    }
    if (!out.empty()) out += ' ';
    out += t.text;
  }
  return out;
}

void parse_dep_items(TokenCursor& cur, DepMode mode, std::vector<DepItem>& out) {
  cur.expect("(");
  for (;;) {
    DepItem item;
    item.mode = mode;
    if (cur.accept("[")) {
      // [size] name — array section; [lo:len] name / [lo;len] name — block
      // section of len elements starting at element lo.  The separator is
      // only recognized at bracket depth 1 so index expressions like
      // `a[i ? 1 : 0]` inside the bounds stay intact.
      std::string size;
      std::string start;
      bool seen_sep = false;
      int depth = 1;
      for (;;) {
        const Token& t = cur.next();
        if (t.kind == TokKind::kEnd) throw std::runtime_error("mcc: unterminated '[' in clause");
        if (t.is("[") || t.is("(")) ++depth;
        if (t.is("]") || t.is(")")) {
          if (t.is("]") && depth == 1) break;
          --depth;
          // fallthrough: a nested ']' / ')' is part of the expression text
        } else if (depth == 1 && (t.is(":") || t.is(";"))) {
          if (seen_sep)
            throw std::runtime_error("mcc: more than one ':'/';' in array section");
          seen_sep = true;
          start = std::move(size);
          size.clear();
          continue;
        }
        if (!size.empty()) size += ' ';
        size += t.text;
      }
      if (seen_sep && (start.empty() || size.empty()))
        throw std::runtime_error("mcc: array section needs both bounds in [lo:len]");
      item.size_expr = size;
      item.start_expr = start;
    }
    const Token& name = cur.next();
    if (name.kind != TokKind::kIdent)
      throw std::runtime_error("mcc: expected parameter name in dependence clause");
    item.name = name.text;
    out.push_back(std::move(item));
    if (cur.accept(",")) continue;
    cur.expect(")");
    break;
  }
}

}  // namespace

Pragma parse_pragma(const std::string& line) {
  Pragma p;
  auto toks = tokenize(line);
  TokenCursor cur(toks);
  // "#" "pragma" omp ...
  cur.expect("#");
  if (!cur.accept("pragma")) return p;
  if (!cur.accept("omp")) return p;

  if (cur.accept("target")) {
    p.kind = PragmaKind::kTarget;
    while (!cur.at_end()) {
      if (cur.accept("device")) {
        cur.expect("(");
        const Token& d = cur.next();
        if (d.kind != TokKind::kIdent) throw std::runtime_error("mcc: bad device clause");
        p.device = d.text;
        cur.expect(")");
      } else if (cur.accept("copy_deps")) {
        p.copy_deps = true;
      } else if (cur.accept("cost")) {
        cur.expect("(");
        p.cost_expr = collect_until_close(cur);
      } else {
        throw std::runtime_error("mcc: unknown target clause '" + cur.peek().text + "'");
      }
    }
    return p;
  }

  if (cur.accept("task")) {
    p.kind = PragmaKind::kTask;
    while (!cur.at_end()) {
      if (cur.accept("input")) {
        parse_dep_items(cur, DepMode::kIn, p.deps);
      } else if (cur.accept("output")) {
        parse_dep_items(cur, DepMode::kOut, p.deps);
      } else if (cur.accept("inout")) {
        parse_dep_items(cur, DepMode::kInout, p.deps);
      } else if (cur.accept("cost")) {
        cur.expect("(");
        p.cost_expr = collect_until_close(cur);
      } else {
        throw std::runtime_error("mcc: unknown task clause '" + cur.peek().text + "'");
      }
    }
    return p;
  }

  if (cur.accept("taskwait")) {
    p.kind = PragmaKind::kTaskwait;
    while (!cur.at_end()) {
      if (cur.accept("noflush")) {
        p.noflush = true;
      } else if (cur.accept("on")) {
        cur.expect("(");
        p.on_expr = collect_until_close(cur);
      } else {
        throw std::runtime_error("mcc: unknown taskwait clause '" + cur.peek().text + "'");
      }
    }
    return p;
  }

  p.kind = PragmaKind::kOther;
  return p;
}

}  // namespace mcc
