// The mcc source-to-source translator (the Mercurium stand-in).
//
// mcc rewrites an annotated C-like source into C++ against the ompss:: API:
//
//  * `#pragma omp target` + `#pragma omp task` on a function definition (or
//    declaration): the function body is renamed to `<name>__task_impl` and a
//    wrapper with the original name is generated that spawns a task — so
//    every existing call site becomes a task spawn, exactly the paper's
//    function-task semantics (§II-A3).
//  * `#pragma omp taskwait [on(...)] [noflush]` becomes the corresponding
//    ompss:: call.
//  * `int main(...)` is renamed and re-emitted wrapped in an ompss::Env
//    whose configuration comes from the OMPSS_ARGS environment variable
//    (the NX_ARGS idiom).
//
// Everything else passes through verbatim; the output is a normal C++
// translation unit to hand to the host compiler — mirroring Mercurium's
// "source-to-source, then native backend" pipeline (§III-A).
#pragma once

#include <string>

namespace mcc {

/// Translates `source` (an annotated .c/.cpp text) to C++.  Throws
/// std::runtime_error with a message naming the offending construct.
std::string translate(const std::string& source);

}  // namespace mcc
