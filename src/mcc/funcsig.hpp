// Function-header parsing for annotated task functions.
//
// mcc accepts C-style headers of the form
//   void name(type1 p1, type2 *p2, ..., int n)
// Task functions must return void (the OmpSs rule: a task's results travel
// through its output clauses, not a return value).
#pragma once

#include <string>
#include <vector>

namespace mcc {

struct Param {
  std::string type;      ///< declared type, pointer stars included ("const double *")
  std::string name;
  bool is_pointer = false;
};

struct FuncSig {
  std::string name;
  std::vector<Param> params;
  /// Index of the parameter called `name`, or -1.
  int param_index(const std::string& pname) const;
};

/// Parses `header` — the text from the start of the declaration up to (and
/// excluding) the trailing ';' or '{'.  Throws std::runtime_error on headers
/// outside the supported subset.
FuncSig parse_function_header(const std::string& header);

}  // namespace mcc
