#include "mcc/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "mcc/funcsig.hpp"
#include "mcc/pragma.hpp"

namespace mcc {
namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

const char* mode_name(DepMode m) {
  switch (m) {
    case DepMode::kIn:
      return "input";
    case DepMode::kOut:
      return "output";
    default:
      return "inout";
  }
}

// Replaces comments and string/char literals with spaces, keeping newlines so
// diagnostics stay on the right source line.  (The mcc lexer refuses quotes;
// the lint never needs literal contents, only the code shape around them.)
std::string strip_literals(const std::string& src) {
  std::string out = src;
  size_t i = 0;
  while (i < out.size()) {
    char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < out.size() && !(out[i] == '*' && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 < out.size()) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      } else {
        i = out.size();
      }
    } else if (c == '"' || c == '\'') {
      char q = c;
      out[i++] = ' ';
      while (i < out.size() && out[i] != q && out[i] != '\n') {
        if (out[i] == '\\' && i + 1 < out.size() && out[i + 1] != '\n') {
          out[i] = out[i + 1] = ' ';
          i += 2;
          continue;
        }
        out[i++] = ' ';
      }
      if (i < out.size() && out[i] == q) out[i++] = ' ';
    } else {
      ++i;
    }
  }
  return out;
}

/// Finds `name` in `s` at or after `from` as a whole identifier.
size_t find_ident(const std::string& s, const std::string& name, size_t from) {
  size_t p = from;
  while ((p = s.find(name, p)) != std::string::npos) {
    bool left = p > 0 && ident_char(s[p - 1]);
    size_t e = p + name.size();
    bool right = e < s.size() && ident_char(s[e]);
    if (!left && !right) return p;
    p = e;
  }
  return std::string::npos;
}

/// First identifier in an expression: the object `&a[i]`, `pos[1 - c][b]`
/// etc. ultimately designate.
std::string base_identifier(const std::string& expr) {
  for (size_t i = 0; i < expr.size(); ++i) {
    char c = expr[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < expr.size() && ident_char(expr[j])) ++j;
      return expr.substr(i, j - i);
    }
  }
  return {};
}

/// Identifier immediately before the first '(' of a declaration header.
std::string function_name_of(const std::string& head) {
  size_t p = head.find('(');
  if (p == std::string::npos) return {};
  while (p > 0 && std::isspace(static_cast<unsigned char>(head[p - 1]))) --p;
  size_t b = p;
  while (b > 0 && ident_char(head[b - 1])) --b;
  return head.substr(b, p - b);
}

enum class UseKind { kRead, kWrite, kReadWrite };

/// Classifies the use of the identifier ending at `end`: a plain assignment
/// to it (after any subscripts) is a write; a compound assignment like `+=`
/// both reads and writes (and reads *first* — the lint's pass-3 distinction);
/// everything else — subexpression, argument — is a read.
UseKind classify_use(const std::string& s, size_t end) {
  size_t p = end;
  auto skip_ws = [&] {
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
  };
  skip_ws();
  while (p < s.size() && s[p] == '[') {
    int depth = 0;
    do {
      if (s[p] == '[') ++depth;
      else if (s[p] == ']') --depth;
      ++p;
    } while (p < s.size() && depth > 0);
    skip_ws();
  }
  if (p < s.size() && s[p] == '=' && (p + 1 >= s.size() || s[p + 1] != '=')) {
    return UseKind::kWrite;
  }
  static const char kCompound[] = "+-*/%&|^";
  if (p + 1 < s.size() && s[p + 1] == '=' &&
      std::string(kCompound).find(s[p]) != std::string::npos) {
    return UseKind::kReadWrite;
  }
  if (p + 2 < s.size() && s[p + 2] == '=' &&
      ((s[p] == '<' && s[p + 1] == '<') || (s[p] == '>' && s[p + 1] == '>'))) {
    return UseKind::kReadWrite;
  }
  return UseKind::kRead;
}

/// A captured task body: the joined text plus an offset→source-line map.
struct Body {
  std::string text;
  std::vector<std::pair<size_t, int>> line_map;  // (offset of line start, line no)

  void add(int line_no, const std::string& s) {
    line_map.emplace_back(text.size(), line_no);
    text += s;
    text += '\n';
  }
  int line_at(size_t pos) const {
    int ln = line_map.empty() ? 0 : line_map.front().second;
    for (const auto& [off, l] : line_map) {
      if (off <= pos) ln = l;
      else break;
    }
    return ln;
  }
};

struct TaskInfo {
  Pragma pragma;
  int pragma_line = 0;
  FuncSig sig;
  Body body;
  bool has_body = false;
};

/// Accumulates a declaration/definition header from lines[i] until a line
/// containing ';' or '{' (the translator's idiom); leaves i on that line.
std::string read_header_at(const std::vector<std::string>& lines, size_t& i) {
  std::string h = lines[i];
  while (h.find(';') == std::string::npos && h.find('{') == std::string::npos &&
         i + 1 < lines.size()) {
    h += ' ';
    h += lines[++i];
  }
  return h;
}

/// Captures the brace-balanced body whose '{' sits at lines[i][open];
/// leaves i on the line holding the matching '}'.
void capture_body_at(const std::vector<std::string>& lines, size_t& i, size_t open, Body& body) {
  int d = 0;
  size_t col = open;
  for (;; ++i, col = 0) {
    const std::string& s = lines[i];
    size_t start = col;
    size_t end = s.size();
    bool done = false;
    for (size_t k = col; k < s.size(); ++k) {
      if (s[k] == '{') {
        if (++d == 1) start = k + 1;
      } else if (s[k] == '}') {
        if (--d == 0) {
          end = k;
          done = true;
          break;
        }
      }
    }
    body.add(static_cast<int>(i) + 1, s.substr(start, end > start ? end - start : 0));
    if (done || i + 1 >= lines.size()) return;
  }
}

/// Shared front half of the lint and of observe auto-emission: strips
/// literals, joins pragma continuations, and captures every annotated task's
/// pragma, signature and (possibly out-of-line) body.  When `diags` is
/// non-null the scan also reports unproduced `taskwait on` clauses — the one
/// diagnostic that needs the call-site pass.
std::vector<TaskInfo> collect_tasks(const std::string& source,
                                    std::vector<LintDiagnostic>* diags) {
  std::vector<std::string> lines;
  {
    std::istringstream in(strip_literals(source));
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }

  std::vector<TaskInfo> tasks;
  std::map<std::string, size_t> task_by_name;
  std::set<std::string> produced;  // base identifiers written by some prior task call
  std::optional<Pragma> pending_task;
  int pending_line = 0;
  int depth = 0;

  auto count_braces = [&depth](const std::string& s) {
    for (char c : s) {
      if (c == '{') ++depth;
      else if (c == '}') --depth;
    }
  };

  // Scans `w` (extended across lines while a call's parens stay open) for
  // calls to declared tasks and records which objects their output/inout
  // arguments produce.
  auto scan_calls = [&](size_t& i, std::string& w) {
    for (const auto& [name, idx] : task_by_name) {
      const TaskInfo& info = tasks[idx];
      size_t pos = 0;
      while ((pos = find_ident(w, name, pos)) != std::string::npos) {
        size_t p = pos + name.size();
        while (p < w.size() && std::isspace(static_cast<unsigned char>(w[p]))) ++p;
        if (p >= w.size() || w[p] != '(') {
          pos = p;
          continue;
        }
        size_t q = p + 1;
        size_t item = q;
        int d = 1;
        std::vector<std::string> args;
        while (d > 0) {
          if (q >= w.size()) {
            if (i + 1 >= lines.size()) return;
            w += ' ';
            w += lines[++i];
            continue;
          }
          char c = w[q];
          if (c == '(' || c == '[') {
            ++d;
          } else if (c == ')' || c == ']') {
            if (--d == 0) break;
          } else if (c == ',' && d == 1) {
            args.push_back(w.substr(item, q - item));
            item = q + 1;
          }
          ++q;
        }
        args.push_back(w.substr(item, q - item));
        for (size_t k = 0; k < args.size() && k < info.sig.params.size(); ++k) {
          for (const DepItem& dcl : info.pragma.deps) {
            if (dcl.name == info.sig.params[k].name && dcl.mode != DepMode::kIn) {
              std::string base = base_identifier(args[k]);
              if (!base.empty()) produced.insert(base);
            }
          }
        }
        pos = q;
      }
    }
  };

  for (size_t i = 0; i < lines.size(); ++i) {
    std::string t = trim(lines[i]);
    if (t.empty()) continue;

    if (starts_with(t, "#pragma")) {
      int pline = static_cast<int>(i) + 1;
      while (!t.empty() && t.back() == '\\' && i + 1 < lines.size()) {
        t.pop_back();
        t += ' ';
        t += trim(lines[++i]);
      }
      Pragma p;
      try {
        p = parse_pragma(t);
      } catch (const std::exception&) {
        continue;
      }
      if (p.kind == PragmaKind::kTask) {
        pending_task = p;
        pending_line = pline;
      } else if (p.kind == PragmaKind::kTaskwait && !p.on_expr.empty()) {
        std::string base = base_identifier(p.on_expr);
        if (diags != nullptr && !base.empty() && produced.count(base) == 0) {
          diags->push_back({pline, "taskwait on(" + p.on_expr +
                                       ") waits on a region no prior task produces: no "
                                       "earlier task call passes '" +
                                       base + "' through an output or inout clause"});
        }
      }
      continue;
    }
    if (starts_with(t, "#")) continue;  // other preprocessor lines

    if (pending_task) {
      std::string header = read_header_at(lines, i);
      size_t semi = header.find(';');
      size_t open = header.find('{');
      TaskInfo info;
      info.pragma = std::move(*pending_task);
      info.pragma_line = pending_line;
      pending_task.reset();
      bool parsed = true;
      try {
        info.sig = parse_function_header(trim(header.substr(0, std::min(semi, open))));
      } catch (const std::exception&) {
        parsed = false;  // the translator will reject this header with context
      }
      if (open < semi) {
        Body scratch;
        capture_body_at(lines, i, lines[i].find('{'), parsed ? info.body : scratch);
        info.has_body = parsed;
      }
      if (parsed) {
        task_by_name[info.sig.name] = tasks.size();
        tasks.push_back(std::move(info));
      }
      continue;
    }

    if (depth == 0 && t.find('(') != std::string::npos) {
      // Possible out-of-line definition of an annotated task (declaration
      // carried the pragma; the body arrives later, translator-style).
      std::string header = read_header_at(lines, i);
      size_t semi = header.find(';');
      size_t open = header.find('{');
      auto it = task_by_name.find(function_name_of(header.substr(0, std::min(semi, open))));
      if (it != task_by_name.end() && open < semi) {
        TaskInfo& info = tasks[it->second];
        info.body = Body{};
        info.has_body = true;
        capture_body_at(lines, i, lines[i].find('{'), info.body);
        continue;
      }
      count_braces(header);
      continue;
    }

    std::string w = lines[i];
    if (!task_by_name.empty()) scan_calls(i, w);
    count_braces(w);
  }
  return tasks;
}

/// A file-scope `void name(...) { ... }` definition — the helpers a task
/// body may route its pointer parameters through.
struct FnDef {
  FuncSig sig;
  Body body;
};

/// What a function does to the region behind one of its pointer parameters.
struct ParamEffect {
  bool read = false;
  bool written = false;
};

/// Collects every parseable file-scope `void name(...) { ... }` definition.
/// Headers the translator's parser rejects (non-void return, `main`,
/// qualifiers) are skipped with their braces still counted so depth tracking
/// stays right.  Later definitions of the same name win, matching the body
/// resolution collect_tasks applies.
std::map<std::string, FnDef> collect_function_defs(const std::string& source) {
  std::vector<std::string> lines;
  {
    std::istringstream in(strip_literals(source));
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }

  std::map<std::string, FnDef> fns;
  int depth = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string t = trim(lines[i]);
    if (t.empty() || starts_with(t, "#")) continue;

    if (depth == 0 && t.find('(') != std::string::npos) {
      std::string header = read_header_at(lines, i);
      size_t semi = header.find(';');
      size_t open = header.find('{');
      if (open < semi) {
        FnDef def;
        bool parsed = true;
        try {
          def.sig = parse_function_header(trim(header.substr(0, open)));
        } catch (const std::exception&) {
          parsed = false;
        }
        Body scratch;
        capture_body_at(lines, i, lines[i].find('{'), parsed ? def.body : scratch);
        if (parsed) fns[def.sig.name] = std::move(def);
      } else {
        for (char c : header) {
          if (c == '{') ++depth;
          else if (c == '}') --depth;
        }
      }
      continue;
    }

    for (char c : lines[i]) {
      if (c == '{') ++depth;
      else if (c == '}') --depth;
    }
  }
  return fns;
}

/// Resolves what each occurrence of a pointer parameter actually does,
/// looking *through* calls to file-scope helpers: an argument position
/// inherits the callee's transitive effect on the matching parameter instead
/// of being classified as a plain read.
class EffectResolver {
 public:
  explicit EffectResolver(const std::map<std::string, FnDef>& fns) : fns_(fns) {}

  /// Transitive effect of `fn` on its pointer parameter `param`.  Recursion
  /// cycles contribute nothing at the back edge, so mutual recursion settles
  /// on the effects visible outside the cycle.
  ParamEffect effect(const std::string& fn, const std::string& param) {
    auto key = std::make_pair(fn, param);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    if (!active_.insert(key).second) return {};
    ParamEffect eff;
    auto fit = fns_.find(fn);
    if (fit != fns_.end()) {
      const Body& body = fit->second.body;
      std::map<size_t, ParamEffect> overrides = call_arg_effects(body);
      size_t pos = 0;
      while ((pos = find_ident(body.text, param, pos)) != std::string::npos) {
        ParamEffect u = use_at(body.text, pos, param.size(), overrides);
        eff.read = eff.read || u.read;
        eff.written = eff.written || u.written;
        pos += param.size();
      }
    }
    active_.erase(key);
    memo_[key] = eff;
    return eff;
  }

  /// Maps the base-identifier position of every argument in calls to known
  /// helpers onto the callee's effect for the matching pointer parameter.
  std::map<size_t, ParamEffect> call_arg_effects(const Body& body) {
    std::map<size_t, ParamEffect> out;
    const std::string& s = body.text;
    for (const auto& [name, def] : fns_) {
      size_t pos = 0;
      while ((pos = find_ident(s, name, pos)) != std::string::npos) {
        size_t p = pos + name.size();
        while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
        if (p >= s.size() || s[p] != '(') {
          pos = p;
          continue;
        }
        size_t q = p + 1;
        size_t item = q;
        int d = 1;
        std::vector<std::pair<size_t, size_t>> args;  // [start, end) per argument
        while (q < s.size() && d > 0) {
          char c = s[q];
          if (c == '(' || c == '[') {
            ++d;
          } else if (c == ')' || c == ']') {
            if (--d == 0) break;
          } else if (c == ',' && d == 1) {
            args.emplace_back(item, q);
            item = q + 1;
          }
          ++q;
        }
        args.emplace_back(item, q);
        for (size_t k = 0; k < args.size() && k < def.sig.params.size(); ++k) {
          const Param& cp = def.sig.params[k];
          if (!cp.is_pointer) continue;
          std::string base =
              base_identifier(s.substr(args[k].first, args[k].second - args[k].first));
          if (base.empty()) continue;
          size_t bpos = find_ident(s, base, args[k].first);
          if (bpos == std::string::npos || bpos >= args[k].second) continue;
          ParamEffect eff = effect(name, cp.name);
          ParamEffect& slot = out[bpos];
          slot.read = slot.read || eff.read;
          slot.written = slot.written || eff.written;
        }
        pos = q;
      }
    }
    return out;
  }

  /// Effect of the identifier occurrence at [pos, pos+len): a call-argument
  /// override wins; otherwise the plain syntactic classification.
  static ParamEffect use_at(const std::string& s, size_t pos, size_t len,
                            const std::map<size_t, ParamEffect>& overrides) {
    auto it = overrides.find(pos);
    if (it != overrides.end()) return it->second;
    switch (classify_use(s, pos + len)) {
      case UseKind::kWrite:
        return {false, true};
      case UseKind::kReadWrite:
        return {true, true};
      default:
        return {true, false};
    }
  }

 private:
  const std::map<std::string, FnDef>& fns_;
  std::map<std::pair<std::string, std::string>, ParamEffect> memo_;
  std::set<std::pair<std::string, std::string>> active_;
};

}  // namespace

std::vector<LintDiagnostic> lint(const std::string& source) {
  std::vector<LintDiagnostic> diags;
  std::vector<TaskInfo> tasks = collect_tasks(source, &diags);
  std::map<std::string, FnDef> fns = collect_function_defs(source);
  EffectResolver effects(fns);

  for (const TaskInfo& info : tasks) {
    if (!info.has_body) continue;
    const std::string& body = info.body.text;
    std::map<size_t, ParamEffect> overrides = effects.call_arg_effects(info.body);
    auto declared = [&info](const std::string& n) {
      for (const DepItem& d : info.pragma.deps) {
        if (d.name == n) return true;
      }
      return false;
    };

    // (1) pointer parameters the body touches but no clause names
    for (const Param& p : info.sig.params) {
      if (!p.is_pointer || declared(p.name)) continue;
      size_t pos = find_ident(body, p.name, 0);
      if (pos != std::string::npos) {
        diags.push_back({info.body.line_at(pos),
                         "task '" + info.sig.name + "' body references pointer parameter '" +
                             p.name +
                             "' that appears in no input/output/inout clause; the runtime "
                             "will not track this region"});
      }
    }
    for (const DepItem& d : info.pragma.deps) {
      size_t pos = find_ident(body, d.name, 0);
      // (2) clauses naming a parameter the body never references
      if (pos == std::string::npos) {
        diags.push_back({info.pragma_line, "task '" + info.sig.name + "': " +
                                               mode_name(d.mode) + " clause on '" + d.name +
                                               "' is dead: the task body never references it"});
        continue;
      }
      // (3) output regions consumed before the task ever writes them (a
      // compound assignment reads before it writes, so it counts).  Passing
      // the parameter to a file-scope helper counts as whatever the helper
      // transitively does with it: a write-only helper is a valid first
      // write, a reading helper trips the warning, and a helper that ignores
      // the parameter is skipped.
      if (d.mode == DepMode::kOut) {
        size_t p = pos;
        while (p != std::string::npos) {
          ParamEffect u = EffectResolver::use_at(body, p, d.name.size(), overrides);
          if (u.read) {
            diags.push_back({info.body.line_at(p),
                             "task '" + info.sig.name + "': output parameter '" + d.name +
                                 "' is read before its first write; the clause should be inout"});
            break;
          }
          if (u.written) break;
          p = find_ident(body, d.name, p + d.name.size());
        }
      }
    }
  }

  std::stable_sort(
      diags.begin(), diags.end(),
      [](const LintDiagnostic& a, const LintDiagnostic& b) { return a.line < b.line; });
  return diags;
}

std::string format_diagnostic(const std::string& file, const LintDiagnostic& d) {
  return file + ":" + std::to_string(d.line) + ": warning: " + d.message;
}

std::map<std::string, std::vector<BodyAccess>> resolve_body_accesses(
    const std::string& source) {
  std::map<std::string, std::vector<BodyAccess>> out;
  std::map<std::string, FnDef> fns = collect_function_defs(source);
  EffectResolver effects(fns);
  for (const TaskInfo& info : collect_tasks(source, nullptr)) {
    if (!info.has_body) continue;
    std::map<size_t, ParamEffect> overrides = effects.call_arg_effects(info.body);
    std::vector<BodyAccess> accs;
    for (const Param& p : info.sig.params) {
      if (!p.is_pointer) continue;
      BodyAccess ba;
      ba.param = p.name;
      // Aggregate over every occurrence with the same read/write
      // classification the lint applies, looking through helper calls: a
      // plain assignment or a write-only helper makes the parameter written,
      // any reading use makes it read.
      size_t pos = 0;
      while ((pos = find_ident(info.body.text, p.name, pos)) != std::string::npos) {
        ParamEffect u = EffectResolver::use_at(info.body.text, pos, p.name.size(), overrides);
        ba.read = ba.read || u.read;
        ba.written = ba.written || u.written;
        pos += p.name.size();
      }
      if (ba.read || ba.written) accs.push_back(std::move(ba));
    }
    // An out-of-line body replaces the declaration's (none), same as the
    // lint: the map ends up reflecting the last body seen per task name.
    out[info.sig.name] = std::move(accs);
  }
  return out;
}

}  // namespace mcc
