#include "mcc/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "mcc/funcsig.hpp"
#include "mcc/pragma.hpp"

namespace mcc {
namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

const char* mode_name(DepMode m) {
  switch (m) {
    case DepMode::kIn:
      return "input";
    case DepMode::kOut:
      return "output";
    default:
      return "inout";
  }
}

// Replaces comments and string/char literals with spaces, keeping newlines so
// diagnostics stay on the right source line.  (The mcc lexer refuses quotes;
// the lint never needs literal contents, only the code shape around them.)
std::string strip_literals(const std::string& src) {
  std::string out = src;
  size_t i = 0;
  while (i < out.size()) {
    char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < out.size() && !(out[i] == '*' && out[i + 1] == '/')) {
        if (out[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 < out.size()) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      } else {
        i = out.size();
      }
    } else if (c == '"' || c == '\'') {
      char q = c;
      out[i++] = ' ';
      while (i < out.size() && out[i] != q && out[i] != '\n') {
        if (out[i] == '\\' && i + 1 < out.size() && out[i + 1] != '\n') {
          out[i] = out[i + 1] = ' ';
          i += 2;
          continue;
        }
        out[i++] = ' ';
      }
      if (i < out.size() && out[i] == q) out[i++] = ' ';
    } else {
      ++i;
    }
  }
  return out;
}

/// Finds `name` in `s` at or after `from` as a whole identifier.
size_t find_ident(const std::string& s, const std::string& name, size_t from) {
  size_t p = from;
  while ((p = s.find(name, p)) != std::string::npos) {
    bool left = p > 0 && ident_char(s[p - 1]);
    size_t e = p + name.size();
    bool right = e < s.size() && ident_char(s[e]);
    if (!left && !right) return p;
    p = e;
  }
  return std::string::npos;
}

/// First identifier in an expression: the object `&a[i]`, `pos[1 - c][b]`
/// etc. ultimately designate.
std::string base_identifier(const std::string& expr) {
  for (size_t i = 0; i < expr.size(); ++i) {
    char c = expr[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < expr.size() && ident_char(expr[j])) ++j;
      return expr.substr(i, j - i);
    }
  }
  return {};
}

/// Identifier immediately before the first '(' of a declaration header.
std::string function_name_of(const std::string& head) {
  size_t p = head.find('(');
  if (p == std::string::npos) return {};
  while (p > 0 && std::isspace(static_cast<unsigned char>(head[p - 1]))) --p;
  size_t b = p;
  while (b > 0 && ident_char(head[b - 1])) --b;
  return head.substr(b, p - b);
}

enum class UseKind { kRead, kWrite, kReadWrite };

/// Classifies the use of the identifier ending at `end`: a plain assignment
/// to it (after any subscripts) is a write; a compound assignment like `+=`
/// both reads and writes (and reads *first* — the lint's pass-3 distinction);
/// everything else — subexpression, argument — is a read.
UseKind classify_use(const std::string& s, size_t end) {
  size_t p = end;
  auto skip_ws = [&] {
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
  };
  skip_ws();
  while (p < s.size() && s[p] == '[') {
    int depth = 0;
    do {
      if (s[p] == '[') ++depth;
      else if (s[p] == ']') --depth;
      ++p;
    } while (p < s.size() && depth > 0);
    skip_ws();
  }
  if (p < s.size() && s[p] == '=' && (p + 1 >= s.size() || s[p + 1] != '=')) {
    return UseKind::kWrite;
  }
  static const char kCompound[] = "+-*/%&|^";
  if (p + 1 < s.size() && s[p + 1] == '=' &&
      std::string(kCompound).find(s[p]) != std::string::npos) {
    return UseKind::kReadWrite;
  }
  if (p + 2 < s.size() && s[p + 2] == '=' &&
      ((s[p] == '<' && s[p + 1] == '<') || (s[p] == '>' && s[p + 1] == '>'))) {
    return UseKind::kReadWrite;
  }
  return UseKind::kRead;
}

/// A captured task body: the joined text plus an offset→source-line map.
struct Body {
  std::string text;
  std::vector<std::pair<size_t, int>> line_map;  // (offset of line start, line no)

  void add(int line_no, const std::string& s) {
    line_map.emplace_back(text.size(), line_no);
    text += s;
    text += '\n';
  }
  int line_at(size_t pos) const {
    int ln = line_map.empty() ? 0 : line_map.front().second;
    for (const auto& [off, l] : line_map) {
      if (off <= pos) ln = l;
      else break;
    }
    return ln;
  }
};

struct TaskInfo {
  Pragma pragma;
  int pragma_line = 0;
  FuncSig sig;
  Body body;
  bool has_body = false;
};

/// Accumulates a declaration/definition header from lines[i] until a line
/// containing ';' or '{' (the translator's idiom); leaves i on that line.
std::string read_header_at(const std::vector<std::string>& lines, size_t& i) {
  std::string h = lines[i];
  while (h.find(';') == std::string::npos && h.find('{') == std::string::npos &&
         i + 1 < lines.size()) {
    h += ' ';
    h += lines[++i];
  }
  return h;
}

/// Captures the brace-balanced body whose '{' sits at lines[i][open];
/// leaves i on the line holding the matching '}'.
void capture_body_at(const std::vector<std::string>& lines, size_t& i, size_t open, Body& body) {
  int d = 0;
  size_t col = open;
  for (;; ++i, col = 0) {
    const std::string& s = lines[i];
    size_t start = col;
    size_t end = s.size();
    bool done = false;
    for (size_t k = col; k < s.size(); ++k) {
      if (s[k] == '{') {
        if (++d == 1) start = k + 1;
      } else if (s[k] == '}') {
        if (--d == 0) {
          end = k;
          done = true;
          break;
        }
      }
    }
    body.add(static_cast<int>(i) + 1, s.substr(start, end > start ? end - start : 0));
    if (done || i + 1 >= lines.size()) return;
  }
}

/// Shared front half of the lint and of observe auto-emission: strips
/// literals, joins pragma continuations, and captures every annotated task's
/// pragma, signature and (possibly out-of-line) body.  When `diags` is
/// non-null the scan also reports unproduced `taskwait on` clauses — the one
/// diagnostic that needs the call-site pass.
std::vector<TaskInfo> collect_tasks(const std::string& source,
                                    std::vector<LintDiagnostic>* diags) {
  std::vector<std::string> lines;
  {
    std::istringstream in(strip_literals(source));
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }

  std::vector<TaskInfo> tasks;
  std::map<std::string, size_t> task_by_name;
  std::set<std::string> produced;  // base identifiers written by some prior task call
  std::optional<Pragma> pending_task;
  int pending_line = 0;
  int depth = 0;

  auto count_braces = [&depth](const std::string& s) {
    for (char c : s) {
      if (c == '{') ++depth;
      else if (c == '}') --depth;
    }
  };

  // Scans `w` (extended across lines while a call's parens stay open) for
  // calls to declared tasks and records which objects their output/inout
  // arguments produce.
  auto scan_calls = [&](size_t& i, std::string& w) {
    for (const auto& [name, idx] : task_by_name) {
      const TaskInfo& info = tasks[idx];
      size_t pos = 0;
      while ((pos = find_ident(w, name, pos)) != std::string::npos) {
        size_t p = pos + name.size();
        while (p < w.size() && std::isspace(static_cast<unsigned char>(w[p]))) ++p;
        if (p >= w.size() || w[p] != '(') {
          pos = p;
          continue;
        }
        size_t q = p + 1;
        size_t item = q;
        int d = 1;
        std::vector<std::string> args;
        while (d > 0) {
          if (q >= w.size()) {
            if (i + 1 >= lines.size()) return;
            w += ' ';
            w += lines[++i];
            continue;
          }
          char c = w[q];
          if (c == '(' || c == '[') {
            ++d;
          } else if (c == ')' || c == ']') {
            if (--d == 0) break;
          } else if (c == ',' && d == 1) {
            args.push_back(w.substr(item, q - item));
            item = q + 1;
          }
          ++q;
        }
        args.push_back(w.substr(item, q - item));
        for (size_t k = 0; k < args.size() && k < info.sig.params.size(); ++k) {
          for (const DepItem& dcl : info.pragma.deps) {
            if (dcl.name == info.sig.params[k].name && dcl.mode != DepMode::kIn) {
              std::string base = base_identifier(args[k]);
              if (!base.empty()) produced.insert(base);
            }
          }
        }
        pos = q;
      }
    }
  };

  for (size_t i = 0; i < lines.size(); ++i) {
    std::string t = trim(lines[i]);
    if (t.empty()) continue;

    if (starts_with(t, "#pragma")) {
      int pline = static_cast<int>(i) + 1;
      while (!t.empty() && t.back() == '\\' && i + 1 < lines.size()) {
        t.pop_back();
        t += ' ';
        t += trim(lines[++i]);
      }
      Pragma p;
      try {
        p = parse_pragma(t);
      } catch (const std::exception&) {
        continue;
      }
      if (p.kind == PragmaKind::kTask) {
        pending_task = p;
        pending_line = pline;
      } else if (p.kind == PragmaKind::kTaskwait && !p.on_expr.empty()) {
        std::string base = base_identifier(p.on_expr);
        if (diags != nullptr && !base.empty() && produced.count(base) == 0) {
          diags->push_back({pline, "taskwait on(" + p.on_expr +
                                       ") waits on a region no prior task produces: no "
                                       "earlier task call passes '" +
                                       base + "' through an output or inout clause"});
        }
      }
      continue;
    }
    if (starts_with(t, "#")) continue;  // other preprocessor lines

    if (pending_task) {
      std::string header = read_header_at(lines, i);
      size_t semi = header.find(';');
      size_t open = header.find('{');
      TaskInfo info;
      info.pragma = std::move(*pending_task);
      info.pragma_line = pending_line;
      pending_task.reset();
      bool parsed = true;
      try {
        info.sig = parse_function_header(trim(header.substr(0, std::min(semi, open))));
      } catch (const std::exception&) {
        parsed = false;  // the translator will reject this header with context
      }
      if (open < semi) {
        Body scratch;
        capture_body_at(lines, i, lines[i].find('{'), parsed ? info.body : scratch);
        info.has_body = parsed;
      }
      if (parsed) {
        task_by_name[info.sig.name] = tasks.size();
        tasks.push_back(std::move(info));
      }
      continue;
    }

    if (depth == 0 && t.find('(') != std::string::npos) {
      // Possible out-of-line definition of an annotated task (declaration
      // carried the pragma; the body arrives later, translator-style).
      std::string header = read_header_at(lines, i);
      size_t semi = header.find(';');
      size_t open = header.find('{');
      auto it = task_by_name.find(function_name_of(header.substr(0, std::min(semi, open))));
      if (it != task_by_name.end() && open < semi) {
        TaskInfo& info = tasks[it->second];
        info.body = Body{};
        info.has_body = true;
        capture_body_at(lines, i, lines[i].find('{'), info.body);
        continue;
      }
      count_braces(header);
      continue;
    }

    std::string w = lines[i];
    if (!task_by_name.empty()) scan_calls(i, w);
    count_braces(w);
  }
  return tasks;
}

/// A file-scope `void name(...) { ... }` definition — the helpers a task
/// body may route its pointer parameters through.
struct FnDef {
  FuncSig sig;
  Body body;
};

/// What a function does to the region behind one of its pointer parameters.
struct ParamEffect {
  bool read = false;
  bool written = false;
};

/// Collects every parseable file-scope `void name(...) { ... }` definition.
/// Headers the translator's parser rejects (non-void return, `main`,
/// qualifiers) are skipped with their braces still counted so depth tracking
/// stays right.  Later definitions of the same name win, matching the body
/// resolution collect_tasks applies.
std::map<std::string, FnDef> collect_function_defs(const std::string& source) {
  std::vector<std::string> lines;
  {
    std::istringstream in(strip_literals(source));
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }

  std::map<std::string, FnDef> fns;
  int depth = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string t = trim(lines[i]);
    if (t.empty() || starts_with(t, "#")) continue;

    if (depth == 0 && t.find('(') != std::string::npos) {
      std::string header = read_header_at(lines, i);
      size_t semi = header.find(';');
      size_t open = header.find('{');
      if (open < semi) {
        FnDef def;
        bool parsed = true;
        try {
          def.sig = parse_function_header(trim(header.substr(0, open)));
        } catch (const std::exception&) {
          parsed = false;
        }
        Body scratch;
        capture_body_at(lines, i, lines[i].find('{'), parsed ? def.body : scratch);
        if (parsed) fns[def.sig.name] = std::move(def);
      } else {
        for (char c : header) {
          if (c == '{') ++depth;
          else if (c == '}') --depth;
        }
      }
      continue;
    }

    for (char c : lines[i]) {
      if (c == '{') ++depth;
      else if (c == '}') --depth;
    }
  }
  return fns;
}

/// Resolves what each occurrence of a pointer parameter actually does,
/// looking *through* calls to file-scope helpers: an argument position
/// inherits the callee's transitive effect on the matching parameter instead
/// of being classified as a plain read.
class EffectResolver {
 public:
  explicit EffectResolver(const std::map<std::string, FnDef>& fns) : fns_(fns) {}

  /// Transitive effect of `fn` on its pointer parameter `param`.  Recursion
  /// cycles contribute nothing at the back edge, so mutual recursion settles
  /// on the effects visible outside the cycle.
  ParamEffect effect(const std::string& fn, const std::string& param) {
    auto key = std::make_pair(fn, param);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    if (!active_.insert(key).second) return {};
    ParamEffect eff;
    auto fit = fns_.find(fn);
    if (fit != fns_.end()) {
      const Body& body = fit->second.body;
      std::map<size_t, ParamEffect> overrides = call_arg_effects(body);
      size_t pos = 0;
      while ((pos = find_ident(body.text, param, pos)) != std::string::npos) {
        ParamEffect u = use_at(body.text, pos, param.size(), overrides);
        eff.read = eff.read || u.read;
        eff.written = eff.written || u.written;
        pos += param.size();
      }
    }
    active_.erase(key);
    memo_[key] = eff;
    return eff;
  }

  /// Maps the base-identifier position of every argument in calls to known
  /// helpers onto the callee's effect for the matching pointer parameter.
  std::map<size_t, ParamEffect> call_arg_effects(const Body& body) {
    std::map<size_t, ParamEffect> out;
    const std::string& s = body.text;
    for (const auto& [name, def] : fns_) {
      size_t pos = 0;
      while ((pos = find_ident(s, name, pos)) != std::string::npos) {
        size_t p = pos + name.size();
        while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
        if (p >= s.size() || s[p] != '(') {
          pos = p;
          continue;
        }
        size_t q = p + 1;
        size_t item = q;
        int d = 1;
        std::vector<std::pair<size_t, size_t>> args;  // [start, end) per argument
        while (q < s.size() && d > 0) {
          char c = s[q];
          if (c == '(' || c == '[') {
            ++d;
          } else if (c == ')' || c == ']') {
            if (--d == 0) break;
          } else if (c == ',' && d == 1) {
            args.emplace_back(item, q);
            item = q + 1;
          }
          ++q;
        }
        args.emplace_back(item, q);
        for (size_t k = 0; k < args.size() && k < def.sig.params.size(); ++k) {
          const Param& cp = def.sig.params[k];
          if (!cp.is_pointer) continue;
          std::string base =
              base_identifier(s.substr(args[k].first, args[k].second - args[k].first));
          if (base.empty()) continue;
          size_t bpos = find_ident(s, base, args[k].first);
          if (bpos == std::string::npos || bpos >= args[k].second) continue;
          ParamEffect eff = effect(name, cp.name);
          ParamEffect& slot = out[bpos];
          slot.read = slot.read || eff.read;
          slot.written = slot.written || eff.written;
        }
        pos = q;
      }
    }
    return out;
  }

  /// Effect of the identifier occurrence at [pos, pos+len): a call-argument
  /// override wins; otherwise the plain syntactic classification.
  static ParamEffect use_at(const std::string& s, size_t pos, size_t len,
                            const std::map<size_t, ParamEffect>& overrides) {
    auto it = overrides.find(pos);
    if (it != overrides.end()) return it->second;
    switch (classify_use(s, pos + len)) {
      case UseKind::kWrite:
        return {false, true};
      case UseKind::kReadWrite:
        return {true, true};
      default:
        return {true, false};
    }
  }

 private:
  const std::map<std::string, FnDef>& fns_;
  std::map<std::pair<std::string, std::string>, ParamEffect> memo_;
  std::set<std::pair<std::string, std::string>> active_;
};

// ---------------------------------------------------------------------------
// Diagnostic 5: cross-iteration block-section overlap.

/// Constant environment for the lint's integer evaluator: loop variables
/// bound to concrete values, plus the file's object-like #define constants
/// (resolved recursively, with a cycle guard so `#define A A` contributes
/// nothing).
class ConstEnv {
 public:
  ConstEnv(const std::map<std::string, std::string>& defines,
           const std::map<std::string, long long>& vars)
      : defines_(defines), vars_(vars) {}

  std::optional<long long> lookup(const std::string& name) const;

 private:
  const std::map<std::string, std::string>& defines_;
  const std::map<std::string, long long>& vars_;
  mutable std::set<std::string> active_;
};

/// Recursive-descent evaluator for integer constant expressions over
/// + - * / % and parentheses.  Identifiers resolve through `env`; anything
/// unresolvable (an unknown variable, a float, a function call) makes the
/// whole evaluation fail — rule 5 skips what it cannot prove.
class ConstEval {
 public:
  ConstEval(const std::string& s, const ConstEnv& env) : s_(s), env_(env) {}

  std::optional<long long> eval() {
    auto v = sum();
    skip_ws();
    if (!v || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  std::optional<long long> sum() {
    auto v = term();
    while (v) {
      skip_ws();
      if (pos_ >= s_.size() || (s_[pos_] != '+' && s_[pos_] != '-')) break;
      char op = s_[pos_++];
      auto r = term();
      if (!r) return std::nullopt;
      v = op == '+' ? *v + *r : *v - *r;
    }
    return v;
  }

  std::optional<long long> term() {
    auto v = atom();
    while (v) {
      skip_ws();
      if (pos_ >= s_.size() || (s_[pos_] != '*' && s_[pos_] != '/' && s_[pos_] != '%')) break;
      char op = s_[pos_++];
      auto r = atom();
      if (!r) return std::nullopt;
      if ((op == '/' || op == '%') && *r == 0) return std::nullopt;
      v = op == '*' ? *v * *r : op == '/' ? *v / *r : *v % *r;
    }
    return v;
  }

  std::optional<long long> atom() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    if (c == '-') {
      ++pos_;
      auto v = atom();
      if (!v) return std::nullopt;
      return -*v;
    }
    if (c == '(') {
      ++pos_;
      auto v = sum();
      skip_ws();
      if (!v || pos_ >= s_.size() || s_[pos_] != ')') return std::nullopt;
      ++pos_;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      long long v = 0;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
        v = v * 10 + (s_[pos_++] - '0');
      if (pos_ < s_.size() && (s_[pos_] == '.' || s_[pos_] == 'x' || s_[pos_] == 'X'))
        return std::nullopt;  // floats and hex are out of scope
      while (pos_ < s_.size() && std::strchr("uUlL", s_[pos_]) != nullptr) ++pos_;
      return v;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t b = pos_;
      while (pos_ < s_.size() && ident_char(s_[pos_])) ++pos_;
      std::string name = s_.substr(b, pos_ - b);
      skip_ws();
      if (pos_ < s_.size() && (s_[pos_] == '(' || s_[pos_] == '[')) return std::nullopt;
      return env_.lookup(name);
    }
    return std::nullopt;
  }

  const std::string& s_;
  const ConstEnv& env_;
  size_t pos_ = 0;
};

std::optional<long long> ConstEnv::lookup(const std::string& name) const {
  auto v = vars_.find(name);
  if (v != vars_.end()) return v->second;
  auto d = defines_.find(name);
  if (d == defines_.end()) return std::nullopt;
  if (!active_.insert(name).second) return std::nullopt;  // macro cycle
  auto r = ConstEval(d->second, *this).eval();
  active_.erase(name);
  return r;
}

/// Object-like `#define NAME expr` constants (function-like macros are
/// skipped: the evaluator has no expansion machinery for them).
std::map<std::string, std::string> collect_defines(const std::vector<std::string>& lines) {
  std::map<std::string, std::string> defines;
  for (const std::string& raw : lines) {
    std::string t = trim(raw);
    if (!starts_with(t, "#define")) continue;
    size_t p = 7;
    while (p < t.size() && std::isspace(static_cast<unsigned char>(t[p]))) ++p;
    size_t b = p;
    while (p < t.size() && ident_char(t[p])) ++p;
    if (p == b || (p < t.size() && t[p] == '(')) continue;  // no name / function-like
    std::string body = trim(t.substr(p));
    if (!body.empty()) defines[t.substr(b, p - b)] = std::move(body);
  }
  return defines;
}

/// A `for` loop the evaluator can reason about: a single integer variable
/// with constant first value, bound and (positive or negative) step.
struct LoopSpec {
  std::string var;
  long long first = 0;
  long long step = 0;
  long long count = 0;  ///< iterations executed
};

std::optional<LoopSpec> parse_for_header(const std::string& header, const ConstEnv& env) {
  std::vector<std::string> parts;
  size_t item = 0;
  int depth = 0;
  for (size_t i = 0; i <= header.size(); ++i) {
    if (i == header.size() || (header[i] == ';' && depth == 0)) {
      parts.push_back(trim(header.substr(item, i - item)));
      item = i + 1;
    } else if (header[i] == '(' || header[i] == '[') {
      ++depth;
    } else if (header[i] == ')' || header[i] == ']') {
      --depth;
    }
  }
  if (parts.size() != 3) return std::nullopt;

  LoopSpec spec;
  {  // init: [type] var = expr
    std::string s = parts[0];
    size_t eq = s.find('=');
    if (eq == std::string::npos) return std::nullopt;
    std::string lhs = trim(s.substr(0, eq));
    size_t sp = lhs.find_last_of(" \t");
    spec.var = sp == std::string::npos ? lhs : trim(lhs.substr(sp + 1));
    if (spec.var.empty() || !std::isalpha(static_cast<unsigned char>(spec.var[0]))) {
      if (spec.var.empty() || spec.var[0] != '_') return std::nullopt;
    }
    auto v = ConstEval(s.substr(eq + 1), env).eval();
    if (!v) return std::nullopt;
    spec.first = *v;
  }
  long long limit = 0;
  bool inclusive = false;
  {  // condition: var < expr | var <= expr
    std::string s = parts[1];
    size_t lt = s.find('<');
    if (lt == std::string::npos || trim(s.substr(0, lt)) != spec.var) return std::nullopt;
    size_t rhs = lt + 1;
    if (rhs < s.size() && s[rhs] == '=') {
      inclusive = true;
      ++rhs;
    }
    auto v = ConstEval(s.substr(rhs), env).eval();
    if (!v) return std::nullopt;
    limit = *v;
  }
  {  // increment: var++ | ++var | var += expr | var = var + expr
    std::string s = parts[2];
    if (s == spec.var + "++" || s == "++" + spec.var || s == spec.var + " ++") {
      spec.step = 1;
    } else {
      size_t pe = s.find("+=");
      if (pe != std::string::npos && trim(s.substr(0, pe)) == spec.var) {
        auto v = ConstEval(s.substr(pe + 2), env).eval();
        if (!v) return std::nullopt;
        spec.step = *v;
      } else {
        size_t eq = s.find('=');
        if (eq == std::string::npos || trim(s.substr(0, eq)) != spec.var) return std::nullopt;
        std::string rhs = trim(s.substr(eq + 1));
        size_t plus = rhs.find('+');
        if (plus == std::string::npos || trim(rhs.substr(0, plus)) != spec.var)
          return std::nullopt;
        auto v = ConstEval(rhs.substr(plus + 1), env).eval();
        if (!v) return std::nullopt;
        spec.step = *v;
      }
    }
  }
  if (spec.step <= 0) return std::nullopt;  // descending loops: out of scope
  long long span = limit - spec.first + (inclusive ? 1 : 0);
  spec.count = span <= 0 ? 0 : (span + spec.step - 1) / spec.step;
  return spec;
}

/// How a call-site pointer argument designates storage: a base buffer, an
/// optional row subscript (`m[expr]` — a pointer *element*, its own
/// dimension) and an element offset (`&a[expr]` / `a + expr`).
struct PointerArg {
  std::string base;
  bool has_row = false;
  std::string row_expr;
  std::string off_expr = "0";
};

std::optional<PointerArg> parse_pointer_arg(const std::string& raw) {
  std::string s = trim(raw);
  PointerArg out;
  bool address_of = false;
  if (!s.empty() && s[0] == '&') {
    address_of = true;
    s = trim(s.substr(1));
  }
  size_t p = 0;
  while (p < s.size() && ident_char(s[p])) ++p;
  if (p == 0) return std::nullopt;
  out.base = s.substr(0, p);
  std::string rest = trim(s.substr(p));
  if (rest.empty()) {
    if (address_of) return std::nullopt;  // &name: not a section designator
    return out;
  }
  if (rest[0] == '[') {
    int depth = 0;
    size_t q = 0;
    for (; q < rest.size(); ++q) {
      if (rest[q] == '[') ++depth;
      else if (rest[q] == ']' && --depth == 0) break;
    }
    if (q >= rest.size() || !trim(rest.substr(q + 1)).empty()) return std::nullopt;
    std::string idx = rest.substr(1, q - 1);
    if (address_of) {
      out.off_expr = idx;  // &a[i]: element offset i into a
    } else {
      out.has_row = true;  // m[i]: row i of m, offset 0 within the row
      out.row_expr = idx;
    }
    return out;
  }
  if (rest[0] == '+' && !address_of) {
    out.off_expr = rest.substr(1);  // a + i
    return out;
  }
  return std::nullopt;
}

/// Replaces each whole-identifier occurrence of a callee parameter with the
/// parenthesized call-site argument, turning the clause's section expression
/// into a call-site expression of loop variables and constants.
std::string substitute_args(const std::string& expr,
                            const std::map<std::string, std::string>& args) {
  std::string out;
  size_t i = 0;
  while (i < expr.size()) {
    char c = expr[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < expr.size() && ident_char(expr[j])) ++j;
      std::string name = expr.substr(i, j - i);
      auto it = args.find(name);
      if (it != args.end()) {
        out += '(';
        out += it->second;
        out += ')';
      } else {
        out += name;
      }
      i = j;
    } else {
      out += expr[i++];
    }
  }
  return out;
}

/// Scans `body` (one loop's statements) for calls to annotated tasks and
/// flags output/inout block sections of the same buffer that overlap between
/// consecutive iterations of `spec`.  Only provably-affine, provably-constant
/// section math is judged; everything else is skipped.
void check_loop_calls(const Body& body, const LoopSpec& spec,
                      const std::vector<TaskInfo>& tasks,
                      const std::map<std::string, size_t>& task_by_name,
                      const std::map<std::string, std::string>& defines,
                      std::vector<LintDiagnostic>& diags) {
  const std::string& s = body.text;
  auto eval_at = [&](const std::string& expr, long long iter) -> std::optional<long long> {
    std::map<std::string, long long> vars{{spec.var, iter}};
    ConstEnv env(defines, vars);
    return ConstEval(expr, env).eval();
  };

  for (const auto& [name, idx] : task_by_name) {
    const TaskInfo& info = tasks[idx];
    size_t pos = 0;
    while ((pos = find_ident(s, name, pos)) != std::string::npos) {
      size_t p = pos + name.size();
      while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
      if (p >= s.size() || s[p] != '(') {
        pos = p;
        continue;
      }
      size_t q = p + 1;
      size_t item = q;
      int d = 1;
      std::vector<std::string> call_args;
      while (q < s.size() && d > 0) {
        char c = s[q];
        if (c == '(' || c == '[') {
          ++d;
        } else if (c == ')' || c == ']') {
          if (--d == 0) break;
        } else if (c == ',' && d == 1) {
          call_args.push_back(s.substr(item, q - item));
          item = q + 1;
        }
        ++q;
      }
      call_args.push_back(s.substr(item, q - item));
      const size_t call_pos = pos;
      pos = q;
      if (call_args.size() != info.sig.params.size()) continue;

      std::map<std::string, std::string> argmap;
      for (size_t k = 0; k < call_args.size(); ++k)
        argmap[info.sig.params[k].name] = trim(call_args[k]);

      for (const DepItem& dep : info.pragma.deps) {
        if (dep.mode == DepMode::kIn || dep.size_expr.empty()) continue;
        size_t k = info.sig.params.size();
        for (size_t j = 0; j < info.sig.params.size(); ++j)
          if (info.sig.params[j].name == dep.name && info.sig.params[j].is_pointer) k = j;
        if (k == info.sig.params.size()) continue;
        auto parg = parse_pointer_arg(call_args[k]);
        if (!parg) continue;

        const std::string start =
            substitute_args(dep.start_expr.empty() ? "0" : dep.start_expr, argmap);
        const std::string len = substitute_args(dep.size_expr, argmap);
        const long long i0 = spec.first;
        const long long i1 = spec.first + spec.step;
        auto len0 = eval_at(len, i0), len1 = eval_at(len, i1);
        if (!len0 || !len1 || *len0 != *len1 || *len0 <= 0) continue;
        auto s0 = eval_at(start, i0), s1 = eval_at(start, i1);
        auto o0 = eval_at(parg->off_expr, i0), o1 = eval_at(parg->off_expr, i1);
        if (!s0 || !s1 || !o0 || !o1) continue;
        if (parg->has_row) {
          auto r0 = eval_at(parg->row_expr, i0), r1 = eval_at(parg->row_expr, i1);
          if (!r0 || !r1 || *r0 != *r1) continue;  // distinct rows never overlap
        }
        const long long a0 = *o0 + *s0;
        const long long a1 = *o1 + *s1;
        const long long stride = a1 - a0;
        if (spec.count >= 3) {  // affine check: constant second difference
          auto s2 = eval_at(start, spec.first + 2 * spec.step);
          auto o2 = eval_at(parg->off_expr, spec.first + 2 * spec.step);
          if (!s2 || !o2 || (*o2 + *s2) - a1 != stride) continue;
        }
        if (stride == 0 || std::abs(stride) >= *len0) continue;
        std::ostringstream os;
        os << "task '" << info.sig.name << "': " << mode_name(dep.mode) << " sections of '"
           << parg->base << "' overlap across loop iterations: [" << a0 << ":" << *len0
           << "] at " << spec.var << "=" << i0 << " vs [" << a1 << ":" << *len0 << "] at "
           << spec.var << "=" << i1 << " (stride " << stride << " < length " << *len0
           << "); sibling tasks touch the same elements";
        diags.push_back({body.line_at(call_pos), os.str()});
      }
    }
  }
}

/// Diagnostic 5 driver: finds every `for` loop with constant bounds that
/// executes at least twice, captures its body (braced or single-statement)
/// and checks the task calls inside it for cross-iteration section overlap.
void lint_loop_sections(const std::string& source, const std::vector<TaskInfo>& tasks,
                        std::vector<LintDiagnostic>& diags) {
  std::vector<std::string> lines;
  {
    std::istringstream in(strip_literals(source));
    std::string l;
    while (std::getline(in, l)) lines.push_back(l);
  }
  const std::map<std::string, std::string> defines = collect_defines(lines);
  std::map<std::string, size_t> task_by_name;
  for (size_t i = 0; i < tasks.size(); ++i) task_by_name[tasks[i].sig.name] = i;
  if (task_by_name.empty()) return;
  const std::map<std::string, long long> no_vars;
  ConstEnv const_env(defines, no_vars);

  for (size_t i = 0; i < lines.size(); ++i) {
    size_t fpos = find_ident(lines[i], "for", 0);
    if (fpos == std::string::npos) continue;
    // Join lines until the for-header parens balance.
    size_t li = i;
    std::string w = lines[li];
    size_t open = w.find('(', fpos);
    while (open == std::string::npos && li + 1 < lines.size()) {
      w += ' ';
      w += lines[++li];
      open = w.find('(', fpos);
    }
    if (open == std::string::npos) continue;
    size_t q = open;
    int d = 0;
    for (;;) {
      if (q >= w.size()) {
        if (li + 1 >= lines.size()) break;
        w += ' ';
        w += lines[++li];
        continue;
      }
      if (w[q] == '(') ++d;
      else if (w[q] == ')' && --d == 0) break;
      ++q;
    }
    if (q >= w.size()) continue;
    auto spec = parse_for_header(w.substr(open + 1, q - open - 1), const_env);
    if (!spec || spec->count < 2) continue;

    // Capture the body: a braced block or a single statement up to ';'.
    Body body;
    size_t after = q + 1;
    while (after < w.size() && std::isspace(static_cast<unsigned char>(w[after]))) ++after;
    if (after < w.size() && w[after] == '{') {
      size_t bi = li;
      // capture_body_at wants the '{' position within lines[bi]; the header
      // join may have glued lines, so locate the brace in the real line.
      size_t brace = lines[bi].find('{');
      while (brace == std::string::npos && bi + 1 < lines.size())
        brace = lines[++bi].find('{');
      if (brace == std::string::npos) continue;
      capture_body_at(lines, bi, brace, body);
    } else {
      // Single statement: from after the ')' to the next ';'.
      std::string stmt = w.substr(after);
      size_t bi = li;
      while (stmt.find(';') == std::string::npos && bi + 1 < lines.size()) {
        stmt += ' ';
        stmt += lines[++bi];
      }
      body.add(static_cast<int>(li) + 1, stmt);
    }
    check_loop_calls(body, *spec, tasks, task_by_name, defines, diags);
  }
}

}  // namespace

std::vector<LintDiagnostic> lint(const std::string& source) {
  std::vector<LintDiagnostic> diags;
  std::vector<TaskInfo> tasks = collect_tasks(source, &diags);
  std::map<std::string, FnDef> fns = collect_function_defs(source);
  EffectResolver effects(fns);

  for (const TaskInfo& info : tasks) {
    if (!info.has_body) continue;
    const std::string& body = info.body.text;
    std::map<size_t, ParamEffect> overrides = effects.call_arg_effects(info.body);
    auto declared = [&info](const std::string& n) {
      for (const DepItem& d : info.pragma.deps) {
        if (d.name == n) return true;
      }
      return false;
    };

    // (1) pointer parameters the body touches but no clause names
    for (const Param& p : info.sig.params) {
      if (!p.is_pointer || declared(p.name)) continue;
      size_t pos = find_ident(body, p.name, 0);
      if (pos != std::string::npos) {
        diags.push_back({info.body.line_at(pos),
                         "task '" + info.sig.name + "' body references pointer parameter '" +
                             p.name +
                             "' that appears in no input/output/inout clause; the runtime "
                             "will not track this region"});
      }
    }
    for (const DepItem& d : info.pragma.deps) {
      size_t pos = find_ident(body, d.name, 0);
      // (2) clauses naming a parameter the body never references
      if (pos == std::string::npos) {
        diags.push_back({info.pragma_line, "task '" + info.sig.name + "': " +
                                               mode_name(d.mode) + " clause on '" + d.name +
                                               "' is dead: the task body never references it"});
        continue;
      }
      // (3) output regions consumed before the task ever writes them (a
      // compound assignment reads before it writes, so it counts).  Passing
      // the parameter to a file-scope helper counts as whatever the helper
      // transitively does with it: a write-only helper is a valid first
      // write, a reading helper trips the warning, and a helper that ignores
      // the parameter is skipped.
      if (d.mode == DepMode::kOut) {
        size_t p = pos;
        while (p != std::string::npos) {
          ParamEffect u = EffectResolver::use_at(body, p, d.name.size(), overrides);
          if (u.read) {
            diags.push_back({info.body.line_at(p),
                             "task '" + info.sig.name + "': output parameter '" + d.name +
                                 "' is read before its first write; the clause should be inout"});
            break;
          }
          if (u.written) break;
          p = find_ident(body, d.name, p + d.name.size());
        }
      }
    }
  }

  // (5) sibling tasks spawned by a constant-bound loop with overlapping
  // output/inout block sections of the same buffer
  lint_loop_sections(source, tasks, diags);

  std::stable_sort(
      diags.begin(), diags.end(),
      [](const LintDiagnostic& a, const LintDiagnostic& b) { return a.line < b.line; });
  return diags;
}

std::string format_diagnostic(const std::string& file, const LintDiagnostic& d) {
  return file + ":" + std::to_string(d.line) + ": warning: " + d.message;
}

std::map<std::string, std::vector<BodyAccess>> resolve_body_accesses(
    const std::string& source) {
  std::map<std::string, std::vector<BodyAccess>> out;
  std::map<std::string, FnDef> fns = collect_function_defs(source);
  EffectResolver effects(fns);
  for (const TaskInfo& info : collect_tasks(source, nullptr)) {
    if (!info.has_body) continue;
    std::map<size_t, ParamEffect> overrides = effects.call_arg_effects(info.body);
    std::vector<BodyAccess> accs;
    for (const Param& p : info.sig.params) {
      if (!p.is_pointer) continue;
      BodyAccess ba;
      ba.param = p.name;
      // Aggregate over every occurrence with the same read/write
      // classification the lint applies, looking through helper calls: a
      // plain assignment or a write-only helper makes the parameter written,
      // any reading use makes it read.
      size_t pos = 0;
      while ((pos = find_ident(info.body.text, p.name, pos)) != std::string::npos) {
        ParamEffect u = EffectResolver::use_at(info.body.text, pos, p.name.size(), overrides);
        ba.read = ba.read || u.read;
        ba.written = ba.written || u.written;
        pos += p.name.size();
      }
      if (ba.read || ba.written) accs.push_back(std::move(ba));
    }
    // An out-of-line body replaces the declaration's (none), same as the
    // lint: the map ends up reflecting the last body seen per task name.
    out[info.sig.name] = std::move(accs);
  }
  return out;
}

}  // namespace mcc
