#include "mcc/funcsig.hpp"

#include <stdexcept>

#include "mcc/lexer.hpp"

namespace mcc {

int FuncSig::param_index(const std::string& pname) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == pname) return static_cast<int>(i);
  }
  return -1;
}

FuncSig parse_function_header(const std::string& header) {
  auto toks = tokenize(header);
  TokenCursor cur(toks);
  FuncSig sig;

  if (!cur.accept("void"))
    throw std::runtime_error("mcc: task functions must return void");
  const Token& name = cur.next();
  if (name.kind != TokKind::kIdent)
    throw std::runtime_error("mcc: expected function name after 'void'");
  sig.name = name.text;
  cur.expect("(");

  if (cur.accept(")")) return sig;  // no parameters
  if (cur.peek().is("void") && cur.peek(1).is(")")) {
    cur.next();
    cur.next();
    return sig;
  }

  for (;;) {
    // A parameter is: type tokens (idents, 'const', '*', 'unsigned', …)
    // ending with the parameter name; the name is the last identifier before
    // ',' or ')'.
    std::vector<Token> tokens;
    int depth = 0;
    for (;;) {
      const Token& t = cur.peek();
      if (t.kind == TokKind::kEnd)
        throw std::runtime_error("mcc: unterminated parameter list");
      if (depth == 0 && (t.is(",") || t.is(")"))) break;
      if (t.is("(") || t.is("[")) ++depth;
      if (t.is(")") || t.is("]")) --depth;
      tokens.push_back(cur.next());
    }
    if (tokens.empty() || tokens.back().kind != TokKind::kIdent)
      throw std::runtime_error("mcc: could not find parameter name");
    Param p;
    p.name = tokens.back().text;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!p.type.empty() && tokens[i].kind != TokKind::kPunct) p.type += ' ';
      p.type += tokens[i].text;
      if (tokens[i].is("*")) p.is_pointer = true;
    }
    if (p.type.empty()) throw std::runtime_error("mcc: parameter '" + p.name + "' has no type");
    sig.params.push_back(std::move(p));
    if (cur.accept(",")) continue;
    cur.expect(")");
    break;
  }
  if (!cur.at_end()) throw std::runtime_error("mcc: trailing tokens after parameter list");
  return sig;
}

}  // namespace mcc
