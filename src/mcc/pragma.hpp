// Parser for the OmpSs pragma dialect mcc understands (paper §II-A3):
//
//   #pragma omp target device(cuda|smp) [copy_deps] [cost(expr)]
//   #pragma omp task [input(items)] [output(items)] [inout(items)]
//   #pragma omp taskwait [on(name)] [noflush]
//
// A dependence item is `[size] name` (an array section of `size` elements
// starting at the pointer, the paper's Fig. 1/2 syntax), a block section
// `[lo:len] name` / `[lo;len] name` (`len` elements starting at element
// `lo`), or a bare `name` (a scalar).  `cost(expr)` is an mcc extension: the
// work volume in flops handed to the simulated platform's pricing model.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mcc {

enum class PragmaKind { kTarget, kTask, kTaskwait, kOther };

enum class DepMode { kIn, kOut, kInout };

struct DepItem {
  DepMode mode = DepMode::kIn;
  std::string name;       ///< the pointer/scalar parameter the clause names
  std::string size_expr;  ///< element count; empty for scalars
  std::string start_expr; ///< first element of a block section; empty: 0
};

struct Pragma {
  PragmaKind kind = PragmaKind::kOther;

  // target
  std::string device = "smp";  // device(...)
  bool copy_deps = false;
  std::string cost_expr;  // cost(...) extension

  // task
  std::vector<DepItem> deps;

  // taskwait
  bool noflush = false;
  std::string on_expr;  // taskwait on(expr)
};

/// Parses one logical `#pragma ...` line (continuations already joined).
/// Returns kOther for non-OmpSs pragmas (passed through untouched).
Pragma parse_pragma(const std::string& line);

}  // namespace mcc
