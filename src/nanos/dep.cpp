#include "nanos/dep.hpp"

#include <algorithm>
#include <cassert>

namespace nanos {

void DependencyDomain::submit(Task* t) {
  t->domain = this;
  live_.add();
  bool ready = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t->pending_preds = 0;
    for (const Access& a : t->accesses()) {
      // Arcs against the current state of every overlapping record.
      for (RegionRecord* rec : overlapping_locked(a.region)) {
        if (reads(a.mode)) add_arc_locked(rec->last_writer, t);  // RAW
        if (writes(a.mode)) {
          add_arc_locked(rec->last_writer, t);                   // WAW
          for (Task* r : rec->readers_since_write) add_arc_locked(r, t);  // WAR
        }
      }
      // State update.  Writers become the last writer of every overlapping
      // record; an exact record is created if none exists for this region.
      auto [it, inserted] = records_.try_emplace(a.region.start);
      if (inserted) {
        it->second.region = a.region;
      } else if (!(it->second.region == a.region)) {
        // Same start, different size: conservatively grow the record.
        it->second.region.size = std::max(it->second.region.size, a.region.size);
      }
      if (writes(a.mode)) {
        for (RegionRecord* rec : overlapping_locked(a.region)) {
          rec->last_writer = t;
          rec->readers_since_write.clear();
        }
      } else {
        it->second.readers_since_write.push_back(t);
      }
    }
    ready = t->pending_preds == 0;
  }
  if (ready) on_ready_(t, nullptr);
}

void DependencyDomain::on_complete(Task* t) {
  std::vector<Task*> released;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Purge the completed task from the region state so future arcs are not
    // created against it (its data is settled).
    for (auto& [start, rec] : records_) {
      if (rec.last_writer == t) rec.last_writer = nullptr;
      auto& rs = rec.readers_since_write;
      rs.erase(std::remove(rs.begin(), rs.end(), t), rs.end());
    }
    for (Task* succ : t->successors) {
      assert(succ->pending_preds > 0);
      if (--succ->pending_preds == 0) released.push_back(succ);
    }
    t->successors.clear();
  }
  t->done_flag().set();
  for (Task* succ : released) on_ready_(succ, t);
  live_.done();
}

void DependencyDomain::wait_all() { live_.wait(); }

void DependencyDomain::wait_on(const common::Region& r) {
  std::vector<Task*> producers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (RegionRecord* rec : overlapping_locked(r)) {
      if (rec->last_writer != nullptr) producers.push_back(rec->last_writer);
    }
  }
  for (Task* p : producers) p->done_flag().wait();
}

void DependencyDomain::add_arc_locked(Task* pred, Task* succ) {
  if (pred == nullptr || pred == succ) return;
  pred->successors.push_back(succ);
  ++succ->pending_preds;
}

std::vector<DependencyDomain::RegionRecord*> DependencyDomain::overlapping_locked(
    const common::Region& r) {
  std::vector<RegionRecord*> out;
  if (records_.empty() || r.empty()) return out;
  // Candidate records start strictly before r.end(); walk back from there.
  auto it = records_.lower_bound(r.end());
  while (it != records_.begin()) {
    --it;
    if (it->second.region.overlaps(r)) out.push_back(&it->second);
    // Records are sorted by start; once a record starts at/before r.start and
    // does not overlap, nothing earlier can overlap either — unless an
    // earlier record is larger.  Records may have arbitrary sizes, so keep
    // scanning; region counts are block counts (small) in practice.
  }
  return out;
}

}  // namespace nanos
