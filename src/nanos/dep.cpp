#include "nanos/dep.hpp"

#include <algorithm>
#include <cassert>

#include "nanos/runtime.hpp"
#include "nanos/verify/raceoracle.hpp"

namespace nanos {

DependencyDomain::~DependencyDomain() {
  std::lock_guard<std::mutex> lk(mu_);
  publish_stats_locked();
}

void DependencyDomain::submit(Task* t) {
  t->domain = this;
  // The oracle mutex is never taken while mu_ is held: spawn/ready/complete
  // hooks run outside it, and on_arc (the one hook inside) is lock-free.
  if (oracle_ != nullptr) oracle_->on_spawn(t, Runtime::current_task());
  live_.add();
  bool ready = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t->pending_preds = 0;
    for (const Access& a : t->accesses()) {
      ++lookups_;
      overlap_scratch_.clear();
      scanned_ += records_.for_overlapping(
          a.region, [this](auto& e) { overlap_scratch_.push_back(&e.value); });
      // Arcs against the current state of every overlapping record, each
      // tagged with the record's region (what early release matches on).
      for (detail::DepRecord* rec : overlap_scratch_) {
        if (reads(a.mode)) add_arc_locked(rec->last_writer, t, rec->region);  // RAW
        if (writes(a.mode)) {
          add_arc_locked(rec->last_writer, t, rec->region);                   // WAW
          for (Task* r : rec->readers_since_write)
            add_arc_locked(r, t, rec->region);  // WAR
        }
      }
      // State update.  Writers become the last writer of every overlapping
      // record; an exact record is created if none exists for this region.
      auto [it, inserted] = records_.try_emplace(a.region);
      if (inserted) it->second.value.region = a.region;
      if (!inserted && a.region.size > it->second.region.size) {
        // Same start, larger size: conservatively grow the record.
        records_.update_extent(it, a.region.size);
        it->second.value.region = it->second.region;
      }
      if (writes(a.mode)) {
        for (detail::DepRecord* rec : overlap_scratch_) become_writer_locked(*rec, t);
        if (inserted) become_writer_locked(it->second.value, t);
      } else {
        detail::DepRecord& rec = it->second.value;
        rec.readers_since_write.push_back(t);
        t->dep_refs.push_back(
            {&rec, rec.reader_epoch,
             static_cast<std::uint32_t>(rec.readers_since_write.size() - 1)});
      }
    }
    ready = t->pending_preds == 0;
  }
  if (ready) {
    if (oracle_ != nullptr) oracle_->on_ready(t);
    on_ready_(t, nullptr);
  }
}

void DependencyDomain::on_complete(Task* t) {
  // Fix the completed task's end clock *before* any successor is released: a
  // released successor's ready hook joins its predecessors' end clocks, which
  // must be final by then.  Release — here or on a sibling predecessor's
  // thread — only follows the pending-pred decrement under mu_ below, so
  // running the hook first (and outside mu_, keeping the two global locks
  // unnested) preserves that ordering.
  if (oracle_ != nullptr) oracle_->on_complete(t);
  std::vector<Task*> released;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Detach the completed task from the region state so future arcs are not
    // created against it (its data is settled).  The back-references make
    // this O(records the task appears in), not a directory purge.
    for (std::size_t i = 0; i < t->dep_refs.size(); ++i) {
      drop_ref_locked(t, t->dep_refs[i]);  // may repair later refs in place
    }
    t->dep_refs.clear();
    for (const DepArc& arc : t->successors) {
      assert(arc.succ->pending_preds > 0);
      if (--arc.succ->pending_preds == 0) released.push_back(arc.succ);
    }
    t->successors.clear();
  }
  t->done_flag().set();
  // Fix every released successor's ready clock before handing any of them to
  // the scheduler: once a successor starts running it may complete, and its
  // completion must sequence after the ready event of every sibling released
  // alongside it (tasks released together are concurrent by construction).
  if (oracle_ != nullptr) {
    for (Task* succ : released) oracle_->on_ready(succ);
  }
  for (Task* succ : released) on_ready_(succ, t);
  live_.done();
}

void DependencyDomain::release_region(Task* t, const common::Region& r) {
  // Sequence the release in the oracle *before* any successor can become
  // ready (mirrors on_complete: the hook fixes t's release clock, which a
  // released successor's ready hook joins).  Outside mu_, keeping the two
  // global locks unnested.
  if (oracle_ != nullptr) oracle_->on_release(t, r);
  std::vector<Task*> released;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Detach t from every covered record so later submits stop creating
    // arcs against it there — its data for those bytes is settled.  A
    // record that grew beyond the released range stays attached
    // (conservative: the arc may guard bytes t still owns).
    auto& refs = t->dep_refs;
    for (std::size_t i = 0; i < refs.size();) {
      if (refs[i].rec != nullptr && r.contains(refs[i].rec->region)) {
        const DepRef ref = refs[i];  // by value: drop may repair refs in place
        refs[i] = refs.back();
        refs.pop_back();
        drop_ref_locked(t, ref);
      } else {
        ++i;
      }
    }
    // Release the covered arcs; the rest wait for on_complete.
    auto& arcs = t->successors;
    for (std::size_t i = 0; i < arcs.size();) {
      if (r.contains(arcs[i].region)) {
        Task* succ = arcs[i].succ;
        assert(succ->pending_preds > 0);
        if (--succ->pending_preds == 0) released.push_back(succ);
        arcs[i] = arcs.back();
        arcs.pop_back();
      } else {
        ++i;
      }
    }
  }
  // Same two-phase ordering as on_complete: fix every released successor's
  // ready clock before handing any of them to the scheduler.
  if (oracle_ != nullptr) {
    for (Task* succ : released) oracle_->on_ready(succ);
  }
  for (Task* succ : released) on_ready_(succ, t);
}

void DependencyDomain::wait_all() {
  live_.wait();
  // The waiter's context now happens-after everything this domain ran.
  if (oracle_ != nullptr) oracle_->on_taskwait(Runtime::current_task(), this);
  if (stats_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    publish_stats_locked();
  }
}

void DependencyDomain::wait_on(const common::Region& r) {
  std::vector<Task*> producers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++lookups_;
    scanned_ += records_.for_overlapping(r, [&](auto& e) {
      if (e.value.last_writer != nullptr) producers.push_back(e.value.last_writer);
    });
  }
  for (Task* p : producers) p->done_flag().wait();
  if (oracle_ != nullptr) oracle_->on_wait_on(Runtime::current_task(), producers);
}

std::uint64_t DependencyDomain::lookups() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lookups_;
}

std::uint64_t DependencyDomain::records_scanned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return scanned_;
}

void DependencyDomain::add_arc_locked(Task* pred, Task* succ, const common::Region& region) {
  if (pred == nullptr || pred == succ) return;
  pred->successors.push_back({succ, region});
  ++succ->pending_preds;
  ++arcs_;
  if (oracle_ != nullptr) oracle_->on_arc(pred, succ);
}

void DependencyDomain::become_writer_locked(detail::DepRecord& rec, Task* t) {
  if (rec.last_writer != t) {
    rec.last_writer = t;
    t->dep_refs.push_back({&rec, 0, DepRef::kWriterRef});
  }
  if (!rec.readers_since_write.empty()) {
    // Bulk-clear: the cleared readers' back-references go stale via the
    // epoch bump instead of being hunted down one by one.
    rec.readers_since_write.clear();
    ++rec.reader_epoch;
  }
}

void DependencyDomain::drop_ref_locked(Task* t, DepRef ref) {
  detail::DepRecord& rec = *ref.rec;
  if (ref.index == DepRef::kWriterRef) {
    if (rec.last_writer == t) rec.last_writer = nullptr;
    return;
  }
  if (ref.epoch != rec.reader_epoch) return;  // readers were bulk-cleared
  auto& rs = rec.readers_since_write;
  std::uint32_t idx = ref.index;
  if (idx >= rs.size() || rs[idx] != t) {
    // Safety net for index bookkeeping going stale (should not happen):
    // fall back to a linear find rather than corrupt the readers list.
    auto found = std::find(rs.begin(), rs.end(), t);
    if (found == rs.end()) return;  // already detached
    idx = static_cast<std::uint32_t>(found - rs.begin());
  }
  const auto last = static_cast<std::uint32_t>(rs.size() - 1);
  if (idx != last) {
    Task* moved = rs.back();
    rs[idx] = moved;
    // Repair the moved task's back-reference (it may be `t` itself when the
    // task registered the same region through two accesses).
    for (DepRef& other : moved->dep_refs) {
      if (other.rec == ref.rec && other.epoch == ref.epoch && other.index == last) {
        other.index = idx;
        break;
      }
    }
  }
  rs.pop_back();
}

void DependencyDomain::publish_stats_locked() {
  if (stats_ == nullptr) return;
  if (lookups_ != published_lookups_) {
    stats_->add("dep.lookups", static_cast<double>(lookups_ - published_lookups_));
    published_lookups_ = lookups_;
  }
  if (scanned_ != published_scanned_) {
    stats_->add("dep.records_scanned", static_cast<double>(scanned_ - published_scanned_));
    published_scanned_ = scanned_;
  }
  if (arcs_ != published_arcs_) {
    stats_->add("dep.arcs", static_cast<double>(arcs_ - published_arcs_));
    published_arcs_ = arcs_;
  }
}

}  // namespace nanos
