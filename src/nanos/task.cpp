#include "nanos/task.hpp"

#include "nanos/dep.hpp"

namespace nanos {

Task::Task(std::uint64_t id, TaskDesc desc, vt::Clock& clock)
    : id_(id), desc_(std::move(desc)), done_(clock) {}

Task::~Task() = default;

}  // namespace nanos
