#include "nanos/task.hpp"

#include "nanos/dep.hpp"
#include "nanos/verify/raceoracle.hpp"

namespace nanos {

Task::Task(std::uint64_t id, TaskDesc desc, vt::Clock& clock)
    : id_(id), desc_(std::move(desc)), done_(clock) {}

Task::~Task() = default;

void TaskContext::observe(const void* p, std::size_t n, AccessMode mode) {
  // Cluster proxies report against the master-side task so the annotation
  // lands in the master's oracle alongside the declared (user-address)
  // clauses.  Runtime::current_task() is not usable here: GPU kernel payloads
  // run on device engine threads that never set it.
  Task* target = task_.desc().verify_alias != nullptr ? task_.desc().verify_alias : &task_;
  if (target->race_oracle == nullptr) return;
  target->race_oracle->observe(target, common::Region(p, n), mode);
}

}  // namespace nanos
