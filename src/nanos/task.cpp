#include "nanos/task.hpp"

#include <algorithm>

#include "nanos/dep.hpp"
#include "nanos/runtime.hpp"
#include "nanos/verify/raceoracle.hpp"

namespace nanos {

Task::Task(std::uint64_t id, TaskDesc desc, vt::Clock& clock)
    : id_(id), desc_(std::move(desc)), done_(clock) {}

Task::~Task() = default;

void TaskContext::observe(const void* p, std::size_t n, AccessMode mode) {
  // Cluster proxies report against the master-side task so the annotation
  // lands in the master's oracle alongside the declared (user-address)
  // clauses.  Runtime::current_task() is not usable here: GPU kernel payloads
  // run on device engine threads that never set it.
  Task* target = task_.desc().verify_alias != nullptr ? task_.desc().verify_alias : &task_;
  if (target->race_oracle == nullptr) return;
  target->race_oracle->observe(target, common::Region(p, n), mode);
}

void TaskContext::release(const void* p, std::size_t n) {
  // CUDA bodies run as kernel payloads: the cost model owns their completion
  // time, so their data is not settled in virtual time until the kernel ends
  // — nothing can be released from inside one.
  if (device_ != nullptr) return;
  const common::Region r(p, n);
  const Task* alias = task_.desc().verify_alias;
  if (alias != nullptr) {
    // Cluster proxy: the body names master/user addresses (mcc captures the
    // original parameters), but this task's accesses are the staged local
    // regions.  The access tables align 1:1, so translate per covered master
    // access and release the corresponding local region.
    const auto& master = alias->accesses();
    const auto& local = task_.accesses();
    const std::size_t count = std::min(master.size(), local.size());
    for (std::size_t i = 0; i < count; ++i) {
      if (!master[i].region.empty() && r.contains(master[i].region))
        rt_.early_release(task_, local[i].region);
    }
    return;
  }
  rt_.early_release(task_, r);
}

}  // namespace nanos
