// Task schedulers (paper §III-C2).
//
// Resources are the execution slots of one node: SMP worker threads and GPU
// manager threads, each typed by the device kind it can execute.  Three
// policies are provided:
//
//  * breadth-first ("bf")    — one global FIFO per device kind.
//  * dependencies ("dep")    — breadth-first, but when a finishing task
//    releases a successor, that successor runs next on the releasing
//    resource (it shares data with its predecessor, so this minimizes
//    transfers).  This is the runtime's default policy.
//  * locality-aware ("affinity") — on submission, an affinity score (bytes of
//    the task's data already resident, big data prioritized) is computed per
//    resource; the task goes to the queue of the best resource, or to a
//    global queue when no resource stands out.  Resources drain their local
//    queue first, then the global queue, then steal from peers.
//
// Locking: the publish/pick/steal hot path is mutex-free.  Every queue — one
// local queue per resource plus one shared queue per device kind — is a
// lock-free bounded ring with a mutex-guarded overflow list (ReadyQueue);
// the overflow lock is touched only when a ring actually fills.  Blocked
// getters park on a per-device-kind wait monitor; submitters touch it only
// when the kind's waiter count (a seq_cst counter, giving the store/load
// ordering that makes a missed-wakeup race impossible) says someone is
// actually parked, and then wake exactly ONE worker — a notify_all here is a
// thundering herd under streaming ingestion, with every wake but one finding
// nothing ("sched.spurious_wakes" counts those; sched_test asserts it stays
// near zero).  The affinity steal path sweeps all peers with non-blocking
// probes first; only when the whole pass came up empty AND an overflow-lock
// collision ("sched.lock_collisions") may have hidden work does it re-sweep
// with blocking pops — skipping outright could strand the only runnable task
// and deadlock the virtual clock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "nanos/readyqueue.hpp"
#include "nanos/task.hpp"
#include "vt/sync.hpp"

namespace nanos {

/// Affinity oracle: bytes of `task`'s data currently resident on `resource`.
/// Wired to CoherenceManager::affinity_bytes by the runtime.
using AffinityFn = std::function<double(const Task&, int resource)>;

/// Batch affinity oracle: scores for *all* resources in one call (one
/// directory pass instead of one per resource).  Wired to
/// CoherenceManager::affinity_bytes_all by the runtime; preferred over
/// AffinityFn when both are provided.
using AffinityBatchFn = std::function<std::vector<double>(const Task&)>;

class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Hands a ready task to the scheduler.  `releaser_resource` is the
  /// resource whose task completion released this one (-1 if none).
  virtual void submit(Task* t, int releaser_resource) = 0;

  /// Blocks until a task is available for `resource` (or shutdown; nullptr).
  virtual Task* get(int resource) = 0;

  /// Non-blocking variant used by the GPU prefetcher.
  virtual Task* try_get(int resource) = 0;

  /// Wakes all blocked get() calls with nullptr and publishes the scheduler
  /// counters into the stats sink.
  virtual void shutdown() = 0;

  /// Publishes the counter deltas ("sched.steals", "sched.lock_collisions",
  /// "sched.spurious_wakes") into the stats sink without shutting down.
  /// Called at quiesce points (taskwait) so short runs report true totals.
  virtual void flush_stats() = 0;

  /// Tasks queued but not yet picked (diagnostics).
  virtual std::size_t queued() const = 0;

  /// Factory. `policy` is one of "bf", "dep", "affinity";
  /// `resource_kinds[i]` is the device kind resource i executes.
  static std::unique_ptr<Scheduler> create(const std::string& policy, vt::Clock& clock,
                                           std::vector<DeviceKind> resource_kinds,
                                           AffinityFn affinity,
                                           AffinityBatchFn affinity_batch = nullptr,
                                           common::Stats* stats = nullptr);
};

namespace detail {

/// Common queue plumbing and blocking/shutdown machinery; policies implement
/// placement and picking on top of the lock-free queues.
class SchedulerBase : public Scheduler {
public:
  SchedulerBase(vt::Clock& clock, std::vector<DeviceKind> kinds, common::Stats* stats)
      : local_(kinds.size()),
        wait_smp_(clock),
        wait_cuda_(clock),
        kinds_(std::move(kinds)),
        stats_(stats) {}
  ~SchedulerBase() override;

  void submit(Task* t, int releaser_resource) final;
  Task* get(int resource) final;
  Task* try_get(int resource) final;
  void shutdown() final;
  void flush_stats() final;
  std::size_t queued() const final;

protected:
  // Placement/picking; called with NO lock held — queue operations are
  // individually lock-free (overflow locks aside).
  virtual void place(Task* t, int releaser_resource) = 0;
  virtual Task* pick(int resource) = 0;

  DeviceKind kind_of(int r) const { return kinds_.at(static_cast<std::size_t>(r)); }
  std::size_t resource_count() const { return kinds_.size(); }
  ReadyQueue& shared_for(DeviceKind k) {
    return k == DeviceKind::kCuda ? shared_cuda_ : shared_smp_;
  }

  void push_shared(Task* t) { shared_for(t->device()).push(t); }
  Task* pop_shared(int resource) {
    Task* t = shared_for(kind_of(resource)).try_pop();
    if (t != nullptr) t->resource = resource;
    return t;
  }

  common::Stats* stats() { return stats_; }

  /// Steal the oldest task from a same-kind peer's local queue (the ring is
  /// single-ended, so thieves take the task that has waited longest).  Shared
  /// by every policy with local queues: without it, a successor parked in a
  /// busy resource's slot is invisible to the idle resources — which stalls
  /// exactly the early-release case, where the releaser keeps running long
  /// after its successor became ready.
  Task* steal_local(int resource);

  /// Per-resource queues: successor slots for the "dep" policy, local
  /// affinity queues for "affinity".
  std::vector<ReadyQueue> local_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> lock_collisions_{0};
  std::atomic<std::uint64_t> spurious_wakes_{0};

private:
  /// Sleep/wake edge, one per device kind: workers of a kind park here; a
  /// submit of that kind wakes exactly one of them.
  struct WaitSlot {
    explicit WaitSlot(vt::Clock& clock) : mon(clock) {}
    std::mutex mu;
    vt::Monitor mon;  // over mu
    std::atomic<int> waiters{0};
  };
  WaitSlot& wait_for(DeviceKind k) { return k == DeviceKind::kCuda ? wait_cuda_ : wait_smp_; }

  void publish_stats_locked();

  WaitSlot wait_smp_;
  WaitSlot wait_cuda_;
  std::vector<DeviceKind> kinds_;
  common::Stats* stats_;
  ReadyQueue shared_smp_;
  ReadyQueue shared_cuda_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> queued_count_{0};
  std::mutex stats_mu_;  // serializes publish deltas (flush can race shutdown)
  std::uint64_t published_steals_ = 0;
  std::uint64_t published_collisions_ = 0;
  std::uint64_t published_spurious_ = 0;
};

class BreadthFirstScheduler : public SchedulerBase {
public:
  using SchedulerBase::SchedulerBase;

protected:
  void place(Task* t, int releaser_resource) override;
  Task* pick(int resource) override;
};

/// Breadth-first plus successor-first dispatch (the released successor is
/// parked in the releasing resource's local slot).
class DependenciesScheduler : public BreadthFirstScheduler {
public:
  using BreadthFirstScheduler::BreadthFirstScheduler;

protected:
  void place(Task* t, int releaser_resource) override;
  Task* pick(int resource) override;
};

class AffinityScheduler : public SchedulerBase {
public:
  AffinityScheduler(vt::Clock& clock, std::vector<DeviceKind> kinds, AffinityFn affinity,
                    AffinityBatchFn batch, common::Stats* stats)
      : SchedulerBase(clock, std::move(kinds), stats),
        affinity_(std::move(affinity)),
        batch_(std::move(batch)) {}

protected:
  void place(Task* t, int releaser_resource) override;
  Task* pick(int resource) override;

private:
  AffinityFn affinity_;
  AffinityBatchFn batch_;
};

}  // namespace detail
}  // namespace nanos
