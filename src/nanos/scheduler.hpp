// Task schedulers (paper §III-C2).
//
// Resources are the execution slots of one node: SMP worker threads and GPU
// manager threads, each typed by the device kind it can execute.  Three
// policies are provided:
//
//  * breadth-first ("bf")    — one global FIFO per device kind.
//  * dependencies ("dep")    — breadth-first, but when a finishing task
//    releases a successor, that successor runs next on the releasing
//    resource (it shares data with its predecessor, so this minimizes
//    transfers).  This is the runtime's default policy.
//  * locality-aware ("affinity") — on submission, an affinity score (bytes of
//    the task's data already resident, big data prioritized) is computed per
//    resource; the task goes to the queue of the best resource, or to a
//    global queue when no resource stands out.  Resources drain their local
//    queue first, then the global queue, then steal from peers.
//
// Locking: there is no global scheduler mutex.  Every queue — one local
// queue per resource plus one shared queue per device kind — carries its own
// lock, so submits and picks touching different queues run concurrently
// (submit throughput used to serialize every worker on one mutex; see
// bench/over01_taskbench).  Blocked getters park on a separate wait monitor;
// submitters only touch it when the waiter count (a seq_cst counter, giving
// the store/load ordering that makes a missed-wakeup race impossible) says
// someone is actually parked.  The affinity steal path try-locks peer queues
// and falls back to a blocking lock on collision — a collision is counted
// ("sched.lock_collisions"), never used to skip work, which could strand the
// only runnable task.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "nanos/task.hpp"
#include "vt/sync.hpp"

namespace nanos {

/// Affinity oracle: bytes of `task`'s data currently resident on `resource`.
/// Wired to CoherenceManager::affinity_bytes by the runtime.
using AffinityFn = std::function<double(const Task&, int resource)>;

/// Batch affinity oracle: scores for *all* resources in one call (one
/// directory pass instead of one per resource).  Wired to
/// CoherenceManager::affinity_bytes_all by the runtime; preferred over
/// AffinityFn when both are provided.
using AffinityBatchFn = std::function<std::vector<double>(const Task&)>;

class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Hands a ready task to the scheduler.  `releaser_resource` is the
  /// resource whose task completion released this one (-1 if none).
  virtual void submit(Task* t, int releaser_resource) = 0;

  /// Blocks until a task is available for `resource` (or shutdown; nullptr).
  virtual Task* get(int resource) = 0;

  /// Non-blocking variant used by the GPU prefetcher.
  virtual Task* try_get(int resource) = 0;

  /// Wakes all blocked get() calls with nullptr and publishes the scheduler
  /// counters ("sched.steals", "sched.lock_collisions") into the stats sink.
  virtual void shutdown() = 0;

  /// Tasks queued but not yet picked (diagnostics).
  virtual std::size_t queued() const = 0;

  /// Factory. `policy` is one of "bf", "dep", "affinity";
  /// `resource_kinds[i]` is the device kind resource i executes.
  static std::unique_ptr<Scheduler> create(const std::string& policy, vt::Clock& clock,
                                           std::vector<DeviceKind> resource_kinds,
                                           AffinityFn affinity,
                                           AffinityBatchFn affinity_batch = nullptr,
                                           common::Stats* stats = nullptr);
};

namespace detail {

/// Common queue plumbing and blocking/shutdown machinery; policies implement
/// placement and picking on top of the per-queue locks.
class SchedulerBase : public Scheduler {
public:
  SchedulerBase(vt::Clock& clock, std::vector<DeviceKind> kinds, common::Stats* stats)
      : local_(kinds.size()), mon_(clock), kinds_(std::move(kinds)), stats_(stats) {}
  ~SchedulerBase() override;

  void submit(Task* t, int releaser_resource) final;
  Task* get(int resource) final;
  Task* try_get(int resource) final;
  void shutdown() final;
  std::size_t queued() const final;

protected:
  struct TaskQueue {
    std::mutex mu;
    std::deque<Task*> q;
  };

  // Placement/picking; called with NO lock held — implementations take the
  // individual queue locks they need (at most one at a time).
  virtual void place(Task* t, int releaser_resource) = 0;
  virtual Task* pick(int resource) = 0;

  DeviceKind kind_of(int r) const { return kinds_.at(static_cast<std::size_t>(r)); }
  std::size_t resource_count() const { return kinds_.size(); }
  TaskQueue& shared_for(DeviceKind k) {
    return k == DeviceKind::kCuda ? shared_cuda_ : shared_smp_;
  }

  void push_shared(Task* t) {
    TaskQueue& tq = shared_for(t->device());
    std::lock_guard<std::mutex> lk(tq.mu);
    tq.q.push_back(t);
  }
  Task* pop_shared(int resource) {
    TaskQueue& tq = shared_for(kind_of(resource));
    std::lock_guard<std::mutex> lk(tq.mu);
    if (tq.q.empty()) return nullptr;
    Task* t = tq.q.front();
    tq.q.pop_front();
    t->resource = resource;
    return t;
  }

  common::Stats* stats() { return stats_; }

  /// Per-resource queues: successor slots for the "dep" policy, local
  /// affinity queues for "affinity".  Each guarded by its own mutex.
  std::vector<TaskQueue> local_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> lock_collisions_{0};

private:
  void publish_stats();

  std::mutex wait_mu_;
  vt::Monitor mon_;  // over wait_mu_
  std::vector<DeviceKind> kinds_;
  common::Stats* stats_;
  TaskQueue shared_smp_;
  TaskQueue shared_cuda_;
  std::atomic<int> waiters_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> queued_count_{0};
  std::uint64_t published_steals_ = 0;
  std::uint64_t published_collisions_ = 0;
};

class BreadthFirstScheduler : public SchedulerBase {
public:
  using SchedulerBase::SchedulerBase;

protected:
  void place(Task* t, int releaser_resource) override;
  Task* pick(int resource) override;
};

/// Breadth-first plus successor-first dispatch (the released successor is
/// parked in the releasing resource's local slot).
class DependenciesScheduler : public BreadthFirstScheduler {
public:
  using BreadthFirstScheduler::BreadthFirstScheduler;

protected:
  void place(Task* t, int releaser_resource) override;
  Task* pick(int resource) override;
};

class AffinityScheduler : public SchedulerBase {
public:
  AffinityScheduler(vt::Clock& clock, std::vector<DeviceKind> kinds, AffinityFn affinity,
                    AffinityBatchFn batch, common::Stats* stats)
      : SchedulerBase(clock, std::move(kinds), stats),
        affinity_(std::move(affinity)),
        batch_(std::move(batch)) {}

protected:
  void place(Task* t, int releaser_resource) override;
  Task* pick(int resource) override;

private:
  AffinityFn affinity_;
  AffinityBatchFn batch_;
};

}  // namespace detail
}  // namespace nanos
