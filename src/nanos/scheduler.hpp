// Task schedulers (paper §III-C2).
//
// Resources are the execution slots of one node: SMP worker threads and GPU
// manager threads, each typed by the device kind it can execute.  Three
// policies are provided:
//
//  * breadth-first ("bf")    — one global FIFO per device kind.
//  * dependencies ("dep")    — breadth-first, but when a finishing task
//    releases a successor, that successor runs next on the releasing
//    resource (it shares data with its predecessor, so this minimizes
//    transfers).  This is the runtime's default policy.
//  * locality-aware ("affinity") — on submission, an affinity score (bytes of
//    the task's data already resident, big data prioritized) is computed per
//    resource; the task goes to the queue of the best resource, or to a
//    global queue when no resource stands out.  Resources drain their local
//    queue first, then the global queue, then steal from peers.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nanos/task.hpp"
#include "vt/sync.hpp"

namespace nanos {

/// Affinity oracle: bytes of `task`'s data currently resident on `resource`.
/// Wired to CoherenceManager::affinity_bytes by the runtime.
using AffinityFn = std::function<double(const Task&, int resource)>;

class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Hands a ready task to the scheduler.  `releaser_resource` is the
  /// resource whose task completion released this one (-1 if none).
  virtual void submit(Task* t, int releaser_resource) = 0;

  /// Blocks until a task is available for `resource` (or shutdown; nullptr).
  virtual Task* get(int resource) = 0;

  /// Non-blocking variant used by the GPU prefetcher.
  virtual Task* try_get(int resource) = 0;

  /// Wakes all blocked get() calls with nullptr.
  virtual void shutdown() = 0;

  /// Tasks queued but not yet picked (diagnostics).
  virtual std::size_t queued() const = 0;

  /// Factory. `policy` is one of "bf", "dep", "affinity";
  /// `resource_kinds[i]` is the device kind resource i executes.
  static std::unique_ptr<Scheduler> create(const std::string& policy, vt::Clock& clock,
                                           std::vector<DeviceKind> resource_kinds,
                                           AffinityFn affinity);
};

namespace detail {

/// Common blocking/shutdown machinery; policies implement placement/picking.
class SchedulerBase : public Scheduler {
public:
  SchedulerBase(vt::Clock& clock, std::vector<DeviceKind> kinds)
      : mon_(clock), kinds_(std::move(kinds)) {}

  void submit(Task* t, int releaser_resource) final;
  Task* get(int resource) final;
  Task* try_get(int resource) final;
  void shutdown() final;
  std::size_t queued() const final;

protected:
  // Both run with mu_ held.
  virtual void place_locked(Task* t, int releaser_resource) = 0;
  virtual Task* pick_locked(int resource) = 0;

  DeviceKind kind_of(int r) const { return kinds_.at(static_cast<std::size_t>(r)); }
  std::size_t resource_count() const { return kinds_.size(); }

  mutable std::mutex mu_;
  std::size_t queued_count_ = 0;  // maintained by SchedulerBase

private:
  vt::Monitor mon_;
  std::vector<DeviceKind> kinds_;
  bool shutdown_ = false;
};

class BreadthFirstScheduler : public SchedulerBase {
public:
  using SchedulerBase::SchedulerBase;

protected:
  void place_locked(Task* t, int releaser_resource) override;
  Task* pick_locked(int resource) override;

  std::deque<Task*> smp_queue_;
  std::deque<Task*> cuda_queue_;
};

/// Breadth-first plus successor-first dispatch.
class DependenciesScheduler : public BreadthFirstScheduler {
public:
  DependenciesScheduler(vt::Clock& clock, std::vector<DeviceKind> kinds)
      : BreadthFirstScheduler(clock, kinds), next_for_(kinds.size()) {}

protected:
  void place_locked(Task* t, int releaser_resource) override;
  Task* pick_locked(int resource) override;

private:
  std::vector<std::deque<Task*>> next_for_;  // per-resource successor slots
};

class AffinityScheduler : public SchedulerBase {
public:
  AffinityScheduler(vt::Clock& clock, std::vector<DeviceKind> kinds, AffinityFn affinity)
      : SchedulerBase(clock, kinds), affinity_(std::move(affinity)), local_(kinds.size()) {}

protected:
  void place_locked(Task* t, int releaser_resource) override;
  Task* pick_locked(int resource) override;

private:
  AffinityFn affinity_;
  std::vector<std::deque<Task*>> local_;
  std::deque<Task*> global_smp_;
  std::deque<Task*> global_cuda_;
};

}  // namespace detail
}  // namespace nanos
