// taskcheck — shared definitions of the verification subsystem.
//
// The paper's contract (§II–III) is that declared input/output/inout regions
// are *sufficient*: the runtime infers RAW/WAR/WAW order from them and keeps
// the directory/cache hierarchy coherent.  The verify passes check both sides
// of that contract at runtime:
//
//  * race   — the dependency-race oracle (raceoracle.hpp): an independent
//             happens-before check over the executed schedule.
//  * coherence — directory/cache invariant checks at quiesce points.
//  * all    — both, with the coherence walk additionally run per event
//             (after every task release) instead of only at taskwaits.
//
// Selected by the `verify` config key (off|race|coherence|all).  Violations
// are recorded through the runtime's task-error path and rethrown at the
// next taskwait, exactly like device faults.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace nanos::verify {

enum class VerifyMode { kOff, kRace, kCoherence, kAll };

VerifyMode parse_verify_mode(const std::string& s);
const char* to_string(VerifyMode m);

inline bool races_enabled(VerifyMode m) {
  return m == VerifyMode::kRace || m == VerifyMode::kAll;
}
inline bool coherence_enabled(VerifyMode m) {
  return m == VerifyMode::kCoherence || m == VerifyMode::kAll;
}

/// Everything needed to re-run a violating execution: the configuration
/// digest pins every knob that shapes the schedule, the fault-plan seed pins
/// all fabric randomness, and the schedule hash fingerprints the interleaving
/// actually executed up to the violation (so a repro run can be checked
/// against the original, not just eyeballed).  Violation messages carry one
/// of these; docs/verifier.md documents the repro recipe.
struct ReplayToken {
  std::uint64_t config_digest = 0;  ///< FNV-1a of the canonical config rendering
  std::uint64_t net_seed = 0;       ///< simnet::FaultPlan::seed (fabric randomness)
  std::uint64_t schedule_hash = 0;  ///< executed-schedule hash at the violation
  std::string to_string() const;    // " [replay cfg=0x.. seed=N sched=0x..]"
};

/// FNV-1a over a string — the shared digest for canonical config renderings.
std::uint64_t fnv1a(const std::string& s);

/// Base of every taskcheck diagnostic.
class VerifyError : public std::runtime_error {
public:
  explicit VerifyError(const std::string& what) : std::runtime_error(what) {}
};

/// A dependency race: two tasks touch overlapping bytes, at least one writes,
/// and no happens-before path orders them.
class RaceViolation : public VerifyError {
public:
  explicit RaceViolation(const std::string& what) : VerifyError(what) {}
};

/// A directory/cache state that breaks a coherence-protocol invariant.
class CoherenceInvariantError : public VerifyError {
public:
  explicit CoherenceInvariantError(const std::string& what) : VerifyError(what) {}
};

/// Where violations go: the owning runtime's record_task_error, so they
/// surface (first one wins) at the next taskwait.  A null sink means throw
/// at the detection site instead (used by direct-driving tests).
using ErrorSink = std::function<void(std::exception_ptr)>;

}  // namespace nanos::verify
