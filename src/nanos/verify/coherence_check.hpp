// Coherence invariant checker (taskcheck pass 2).
//
// The checker walks the coherence metadata at quiesce points — every
// flush_all() (the taskwait flush), and after every release() under
// `verify=all` — and asserts the protocol invariants that must hold whenever
// no transfer is mutating an entry:
//
//  Node-local directory + device caches (CoherenceManager::verify_invariants):
//   * some space holds the current version (the data exists somewhere);
//   * every space in the valid set other than the host backs it with a live
//     device copy of the current version (multi-reader agreement);
//   * at most one copy is dirty (single-writer);
//   * a dirty copy IS the current version — a stale dirty copy shadowed by a
//     newer committed version would eventually write garbage back;
//   * no copy is ahead of the directory version, no pin count is negative;
//   * the directory version never moves backwards between quiesce points.
//
//  Cluster node directory (ClusterRuntime::verify_invariants):
//   * redo-log accounting: version == master_version + redo_log.size(), so a
//     recovery replay reconstructs exactly the missing versions;
//   * every node listed as a holder is alive and (slaves) has a segment
//     address for the copy;
//   * in-flight transfer bookkeeping is paired (a recorded source implies a
//     recorded in-flight destination);
//   * after a taskwait flush, master-directory/slave-cache agreement: a
//     region the node directory calls home (valid on node 0) is host-current
//     in node 0's coherence manager.
//
// Entries with a transfer in flight (busy / staging) and regions in
// lost/recovering states are skipped: their transient states are owned by
// the protocol code, not quiescent.
//
// Violations are CoherenceInvariantError, delivered through the error sink
// (recorded as the runtime's task error, rethrown at taskwait) or thrown in
// place when no sink is set (direct-driving tests).
#pragma once

#include <string>
#include <utility>

#include "common/stats.hpp"
#include "nanos/verify/verify.hpp"

namespace nanos::verify {

/// Shared delivery helper for the invariant walks: counts violations into
/// `stats` ("verify.coherence_violations") and hands each one to the sink —
/// or throws at the first when no sink is set.  `kTally` mode only counts:
/// the crosscheck's shadow full walk uses it to compare results against the
/// incremental walk without delivering (or double-counting) anything.
class InvariantReporter {
public:
  enum class Mode { kDeliver, kTally };

  /// `token`: optional replay-token suffix appended to every delivered
  /// violation (see ReplayToken; empty for direct-driving tests).
  InvariantReporter(const ErrorSink& sink, common::Stats* stats, const char* where,
                    Mode mode = Mode::kDeliver, std::string token = {})
      : sink_(sink), stats_(stats), where_(where), mode_(mode), token_(std::move(token)) {}

  void violation(const std::string& what) {
    ++count_;
    if (mode_ == Mode::kTally) return;
    if (stats_ != nullptr) stats_->incr("verify.coherence_violations");
    CoherenceInvariantError err("coherence invariant violated at " + std::string(where_) +
                                ": " + what + token_);
    if (sink_) {
      sink_(std::make_exception_ptr(err));
    } else {
      throw err;
    }
  }

  int count() const { return count_; }

private:
  const ErrorSink& sink_;
  common::Stats* stats_;
  const char* where_;
  Mode mode_;
  std::string token_;
  int count_ = 0;
};

}  // namespace nanos::verify
