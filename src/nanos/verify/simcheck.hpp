// simcheck: schedule-space model checking of the cluster protocol.
//
// The virtual-time fabric makes every run of a cluster scenario
// deterministic *given one schedule*: the only nondeterminism left in the
// simulation is which in-flight message is delivered next (plus, with
// coalescing enabled, when a batch is flushed, and — in fault scenarios —
// when a node dies).  simcheck turns those decision points into an explicit
// choice sequence and explores the space:
//
//   * A ScheduleArbiter (src/simnet DeliveryArbiter) holds every inbound
//     message.  The vt clock's choice gate wakes the arbiter exactly when
//     the simulation is globally quiescent — no thread running, no wakeup in
//     flight — so each delivery choice is made against a well-defined state.
//   * A ProtocolChecker (verify::ProtocolProbe) maintains a reference model
//     of the commit/vouch/retire state machine and flags divergences as
//     they happen: a commit applied twice, a directory version that fails to
//     advance, a DONE_ACK before retirement, a sole-copy region lost, a
//     ticket that never retires, a schedule that never quiesces.
//   * The explorer enumerates schedules bounded-exhaustively (iterative-
//     deepening DFS over choice prefixes) with a sleep-set-style reduction
//     that skips branches commuting with the default choice, then fills the
//     remaining budget with seeded random sampling.
//
// Every run has a stable 64-bit schedule id derived purely from the choice
// sequence (never from host pointers or wall time), so a violation found in
// CI is replayable anywhere: `simcheck --scenario=X --replay=<id>` re-runs
// the same deterministic exploration until the id is found, then executes it
// twice and checks the trace hashes agree bit-for-bit.  Counterexamples are
// shrunk by greedy delta debugging (re-running with each non-default choice
// reset) before they are reported.  See docs/simcheck.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nanos/verify/protocol_probe.hpp"

namespace nanos::verify {

/// Exploration budgets and knobs.  Defaults suit a CI smoke run.
struct SimOptions {
  /// Total schedules to execute per scenario (DFS + sampling; minimization
  /// runs are extra and bounded separately).
  int max_schedules = 1500;
  /// Per-run choice-step cap.  A schedule still making delivery choices past
  /// this bound is reported as a termination violation — honest runs of the
  /// bundled scenarios finish in well under a tenth of it.
  int max_steps = 4096;
  /// Seed for the random-sampling phase (and the hashed flush policy).
  std::uint64_t sample_seed = 0x9e3779b97f4a7c15ull;
  /// Skip sibling branches whose candidate commutes with the default choice
  /// (different destination node and different protocol resource).
  bool prune_commuting = true;
  /// Counterexamples kept per report (exploration continues regardless).
  int max_violations = 4;
  /// Shrink each counterexample by greedy delta debugging.
  bool minimize = true;
  /// Protocol fault seeds overlaid on the scenario (mutation testing).
  ProtocolMutation mutation;

  /// Defaults, with `max_schedules` overridden by the SIMCHECK_BUDGET
  /// environment variable when it is set and positive.
  static SimOptions from_env();
};

/// One invariant breach, named by a stable kind slug ("commit-exactly-once",
/// "termination", ...) plus human-readable detail.
struct Violation {
  std::string kind;
  std::string detail;
};

/// Outcome of executing one schedule.
struct ScheduleResult {
  std::uint64_t schedule_id = 0;  ///< stable identity of this schedule
  std::uint64_t trace_hash = 0;   ///< fold of every delivered fingerprint
  std::vector<int> choices;       ///< decision taken at each step
  std::vector<int> counts;        ///< candidates available at each step
  std::vector<std::string> labels;  ///< what each decision delivered
  std::vector<Violation> violations;
  bool terminated = false;  ///< the scenario body ran to completion
  int steps = 0;

  bool violating() const { return !violations.empty(); }
  /// The non-default decisions, one per line — empty for the default
  /// schedule.  This is the replayable counterexample trace.
  std::string trace() const;
};

/// A violating schedule, after minimization.
struct Counterexample {
  ScheduleResult result;             ///< the (shrunk) violating run
  std::vector<int> original_choices;  ///< as first discovered
  int shrink_runs = 0;                ///< delta-debugging executions spent
};

/// Aggregate result of exploring one scenario.
struct ExploreReport {
  std::string scenario;
  long long runs = 0;      ///< schedules executed
  long long distinct = 0;  ///< distinct schedule ids seen
  long long dfs_runs = 0;
  long long sampled_runs = 0;
  long long pruned = 0;            ///< branches skipped as commuting
  long long frontier_dropped = 0;  ///< branches beyond budget or stack cap
  long long steps_total = 0;
  std::vector<Counterexample> counterexamples;

  bool clean() const { return counterexamples.empty(); }
  std::string summary() const;
};

/// Names of the built-in protocol scenarios (see docs/simcheck.md).
std::vector<std::string> scenario_names();
/// One-line description of a scenario; empty if unknown.
std::string scenario_description(const std::string& name);

/// Explores the named scenario's schedule space under `opts`.  Throws
/// std::invalid_argument for an unknown scenario name.
ExploreReport explore(const std::string& scenario, const SimOptions& opts);

/// Executes one explicit schedule: choice `i` is `choices[i]` (taken modulo
/// the candidate count at that step); steps beyond the vector take the
/// default (first) candidate.
ScheduleResult run_schedule(const std::string& scenario, const std::vector<int>& choices,
                            const SimOptions& opts);

/// Re-executes schedule `id`: hunts for it through the same deterministic
/// exploration explore() performs (including each counterexample's
/// minimization runs), then runs it twice.  `deterministic` is true when
/// both executions produced identical trace hashes.  nullopt if the id was
/// not reached within the budget.
struct ReplayResult {
  ScheduleResult first;
  ScheduleResult second;
  bool deterministic = false;
};
std::optional<ReplayResult> replay(const std::string& scenario, std::uint64_t id,
                                   const SimOptions& opts);

}  // namespace nanos::verify
