// Protocol observation and mutation hooks for simcheck (docs/simcheck.md).
//
// ProtocolProbe is the cluster protocol's event tap: the cluster runtime
// reports each protocol-level transition — ticket lifecycle, directory
// commits and vouches, acknowledgements, failures — to an installed probe as
// it happens.  simcheck's checker maintains a reference model of the
// commit/vouch/retire state machine on top of these events and flags any
// divergence (a double-applied commit, a retirement without full vouch
// coverage, a lost sole-copy region) at the step where it occurs.
//
// ProtocolMutation is the matching fault seeder: each flag makes the runtime
// misbehave *once*, in a specific protocol-visible way, so detection tests
// can assert that the explorer actually catches the class of bug the
// invariant exists for.  All flags default to off; production configurations
// never set them.
#pragma once

#include <cstdint>

namespace nanos::verify {

/// Event tap over the cluster protocol.  Callbacks run on whatever thread
/// drives the transition (RX handlers, comm threads, the app thread) with the
/// cluster lock held — implementations must be cheap and must not call back
/// into the runtime.  All default to no-ops so probes implement only what
/// they check.
class ProtocolProbe {
public:
  virtual ~ProtocolProbe() = default;

  /// A remote task was assigned `ticket`, to execute on `exec_node`, with
  /// `expected_writes` distinct written regions gating its retirement.
  virtual void on_ticket_created(std::uint64_t ticket, int exec_node, int expected_writes) {
    (void)ticket;
    (void)exec_node;
    (void)expected_writes;
  }
  /// A home node applied `ticket`'s commit for the region starting at
  /// `region`, bumping the directory to `version`.
  virtual void on_commit_applied(std::uint64_t ticket, int home, std::uint64_t region,
                                 unsigned version) {
    (void)ticket;
    (void)home;
    (void)region;
    (void)version;
  }
  /// The master received a home's vouch for (`ticket`, `region`).
  virtual void on_vouch(std::uint64_t ticket, std::uint64_t region, int exec_node) {
    (void)ticket;
    (void)region;
    (void)exec_node;
  }
  /// `ticket` retired on the master (all expected vouches arrived, or the
  /// unsharded TASK_DONE landed).
  virtual void on_ticket_retired(std::uint64_t ticket) { (void)ticket; }
  /// The master queued a DONE_ACK for `ticket` towards `exec_node`.
  virtual void on_done_ack(std::uint64_t ticket, int exec_node) {
    (void)ticket;
    (void)exec_node;
  }
  /// The master-side directory advanced `region` to `version` with `node`
  /// holding the sole current copy.
  virtual void on_dir_version(std::uint64_t region, unsigned version, int node) {
    (void)region;
    (void)version;
    (void)node;
  }
  /// Recovery declared the region starting at `region` permanently lost.
  virtual void on_region_lost(std::uint64_t region) { (void)region; }
  /// Recovery rolled `region`'s directory back to `version` (the stale home
  /// base) before replaying its redo chain: the next commits legitimately
  /// re-advance the version from there.
  virtual void on_region_recovery(std::uint64_t region, unsigned version) {
    (void)region;
    (void)version;
  }
  /// The failure detector declared `node` dead.
  virtual void on_node_declared_dead(int node) { (void)node; }
};

/// One-shot protocol fault seeds (mutation testing for simcheck).  Each flag
/// arms a single deliberate misbehavior; the runtime trips it at the first
/// opportunity and never again.  See tests/simcheck_test.cpp for the
/// violation each mutant must produce.
struct ProtocolMutation {
  /// The first DIR_COMMIT a home applies discards one of its vouches: the
  /// master never completes the ticket (detected as non-termination when no
  /// retransmit path re-vouches).
  bool drop_first_vouch = false;
  /// The first DIR_COMMIT a home applies is applied twice: the region's
  /// version advances twice for one task write (detected as an exactly-once
  /// commit violation).
  bool double_first_commit = false;
  /// The first overdue completion replay is suppressed *and its unacked
  /// record erased*, as if the retransmit path believed it had resent: a
  /// dropped DONE is never recovered (detected as non-termination).
  bool suppress_first_replay = false;
  /// The first slave completion send is dropped before it reaches the wire —
  /// a deterministic stand-in for message loss, exercising the overdue
  /// replay path (clean protocol: recovered; with suppress_first_replay:
  /// lost forever).
  bool drop_first_done = false;

  bool any() const {
    return drop_first_vouch || double_first_commit || suppress_first_replay || drop_first_done;
  }
};

}  // namespace nanos::verify
