#include "nanos/verify/raceoracle.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "nanos/dep.hpp"

namespace nanos::verify {

VerifyMode parse_verify_mode(const std::string& s) {
  if (s.empty() || s == "off" || s == "none") return VerifyMode::kOff;
  if (s == "race") return VerifyMode::kRace;
  if (s == "coherence") return VerifyMode::kCoherence;
  if (s == "all") return VerifyMode::kAll;
  throw std::invalid_argument("verify: unknown mode '" + s +
                              "' (expected off|race|coherence|all)");
}

const char* to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kRace: return "race";
    case VerifyMode::kCoherence: return "coherence";
    case VerifyMode::kAll: return "all";
  }
  return "?";
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ReplayToken::to_string() const {
  std::ostringstream os;
  os << " [replay cfg=0x" << std::hex << config_digest << " seed=" << std::dec << net_seed
     << " sched=0x" << std::hex << schedule_hash << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// ChainClock

namespace {

inline ChainClock::Delta::const_iterator delta_find(const ChainClock::Delta& d,
                                                    std::uint32_t chain) {
  return std::lower_bound(
      d.begin(), d.end(), chain,
      [](const std::pair<std::uint32_t, std::uint32_t>& e, std::uint32_t c) {
        return e.first < c;
      });
}

}  // namespace

std::uint32_t ChainClock::value(std::uint32_t chain) const {
  std::uint32_t v = 0;
  auto it = delta_find(delta, chain);
  if (it != delta.end() && it->first == chain) v = it->second;
  if (base != nullptr) {
    auto bit = base->find(chain);
    if (bit != base->end() && bit->second > v) v = bit->second;
  }
  return v;
}

void ChainClock::raise(std::uint32_t chain, std::uint32_t pos) {
  auto it = delta.begin() + (delta_find(delta, chain) - delta.cbegin());
  if (it != delta.end() && it->first == chain) {
    if (pos > it->second) it->second = pos;
  } else {
    delta.insert(it, {chain, pos});
  }
}

void ChainClock::join(const ChainClock& o) {
  if (!o.delta.empty()) {
    if (delta.empty()) {
      delta = o.delta;
    } else {
      // Both deltas are sorted by chain: one linear merge, one allocation.
      Delta merged;
      merged.reserve(delta.size() + o.delta.size());
      std::size_t i = 0, j = 0;
      while (i < delta.size() && j < o.delta.size()) {
        if (delta[i].first < o.delta[j].first) {
          merged.push_back(delta[i++]);
        } else if (o.delta[j].first < delta[i].first) {
          merged.push_back(o.delta[j++]);
        } else {
          merged.emplace_back(delta[i].first, std::max(delta[i].second, o.delta[j].second));
          ++i;
          ++j;
        }
      }
      merged.insert(merged.end(), delta.begin() + static_cast<std::ptrdiff_t>(i), delta.end());
      merged.insert(merged.end(), o.delta.begin() + static_cast<std::ptrdiff_t>(j),
                    o.delta.end());
      delta = std::move(merged);
    }
  }
  if (o.base != nullptr && o.base != base) {
    for (const auto& [c, p] : *o.base) {
      if (base == nullptr || value(c) < p) raise(c, p);
    }
  }
}

// ---------------------------------------------------------------------------
// RaceOracle

RaceOracle::RaceOracle(ErrorSink sink, common::Stats* stats, std::uint64_t sample)
    : sink_(std::move(sink)), stats_(stats), sample_(sample == 0 ? 1 : sample) {}

RaceOracle::~RaceOracle() {
  std::lock_guard<std::mutex> lk(mu_);
  publish_stats_locked();
}

void RaceOracle::on_spawn(Task* t, Task* spawner) {
  std::lock_guard<std::mutex> lk(mu_);
  TaskClock& tc = clocks_.emplace_back();
  tc.task = t;
  tc.spawner = spawner != nullptr ? clock_of(spawner) : nullptr;
  tc.start_vc.base = context_locked(spawner).vc;
  t->race_oracle = this;
  t->vclock = &tc;
  ++tasks_;  // deferred stat: published at the next taskwait
}

void RaceOracle::on_arc(Task* pred, Task* succ) {
  // No oracle lock, by construction: every arc to `succ` is created under
  // its dependency domain's mutex during submit(succ), strictly before succ
  // can become ready — and on_ready, the only reader of `preds`, runs
  // happens-after via that same mutex (either on the submitting thread or on
  // a completing predecessor's thread after it saw the arc's pending-pred
  // count).  Taking mu_ here would nest the two hottest global locks on
  // every dependence arc.
  TaskClock* pc = clock_of(pred);
  TaskClock* sc = clock_of(succ);
  if (pc == nullptr || sc == nullptr) return;
  sc->preds.push_back(pc);
}

void RaceOracle::on_ready(Task* t) {
  std::lock_guard<std::mutex> lk(mu_);
  TaskClock* tc = clock_of(t);
  if (tc == nullptr || tc->ready) return;
  // Every declared predecessor settled the arcs that held this task back —
  // by completing (end clock final) or by an early release (release clock
  // covers every release so far, including the one that freed us; the dep
  // mutex orders that release before this ready).  Join what is final.
  for (TaskClock* p : tc->preds) {
    tc->start_vc.join(p->completed ? p->end_vc : (p->released ? p->release_vc : p->end_vc));
  }
  // Chain assignment: extend a predecessor's chain when that predecessor is
  // still its chain's tail; otherwise reuse a chain whose tail task has
  // completed.  Each earlier occupant of a reused chain completed before the
  // next occupant became ready (an arc releases its successor only after the
  // predecessor completes; the free pool admits only completed tails), so by
  // induction every stamp already on the chain is ordered before this task —
  // the raise() below claims exactly that.  An early-releasing predecessor
  // must NOT be extended while still running: it keeps stamping its chain at
  // positions this task's clock does not cover.
  TaskClock* tail_pred = nullptr;
  for (TaskClock* p : tc->preds) {
    if (p->completed && chain_tail_[p->chain] == p->end_pos) {
      tail_pred = p;
      break;
    }
  }
  tc->chain = tail_pred != nullptr ? tail_pred->chain : take_free_chain_locked();
  tc->start_pos = chain_tail_[tc->chain] + 1;
  tc->end_pos = tc->start_pos + 1;
  chain_tail_[tc->chain] = tc->end_pos;
  chain_tail_task_[tc->chain] = tc;
  tc->start_vc.raise(tc->chain, tc->start_pos);
  tc->ready = true;
  tc->ready_seq = ++seq_;
  mix_schedule_locked(t->id() * 2);
  // Race-check and record the task's declared clauses.  Accesses the body
  // performs beyond these arrive later through observe().  Under sampling,
  // an unsampled task skips the conflict hunt but still records its stamps:
  // any pair with at least one sampled member is still caught.
  const bool check = sampled_locked(*tc);
  if (!check) ++sample_skipped_;  // deferred stat: published at taskwait
  for (const Access& a : t->accesses()) check_access_locked(*tc, a.region, a.mode, check);
}

void RaceOracle::on_release(Task* t, const common::Region&) {
  std::lock_guard<std::mutex> lk(mu_);
  TaskClock* tc = clock_of(t);
  if (tc == nullptr || !tc->ready || tc->completed) return;
  // The release event settles everything the body stamped so far: stamps
  // carry end_pos, and raising the release clock to end_pos orders them
  // before any successor this release frees.  (Which arcs are freed is the
  // dependency layer's per-region decision; the clock event is chain-wide —
  // sound, since everything stamped so far physically precedes the release.)
  if (!tc->released) {
    tc->release_vc = tc->start_vc;
    tc->released = true;
  }
  tc->release_vc.raise(tc->chain, tc->end_pos);
  // Advance the stamp position: accesses after this release claim a chain
  // position the freed successors' clocks do NOT cover, so a producer
  // touching released bytes again races with the successor now allowed in.
  // The task stays its chain's tail while running (successors only extend
  // chains of *completed* tails), so the bump extends its own chain.
  tc->end_pos = chain_tail_[tc->chain] + 1;
  chain_tail_[tc->chain] = tc->end_pos;
  chain_tail_task_[tc->chain] = tc;
  // Top bit distinguishes release events from the ready (id*2) and complete
  // (id*2+1) points in the replay token's schedule hash.
  mix_schedule_locked((1ull << 63) | (t->id() * 2));
}

void RaceOracle::on_complete(Task* t) {
  std::lock_guard<std::mutex> lk(mu_);
  TaskClock* tc = clock_of(t);
  if (tc == nullptr || tc->completed) return;
  // The end clock is the task's knowledge when it finished: its start clock,
  // whatever its body joined via nested taskwaits (the body context), and its
  // own end event.  Children it did NOT wait for are deliberately excluded —
  // they are not ordered before the parent's successors.
  tc->end_vc = tc->start_vc;
  auto ctx = body_ctx_.find(t);
  if (ctx != body_ctx_.end() && ctx->second.vc != nullptr) {
    ChainClock joined;
    joined.base = ctx->second.vc;
    tc->end_vc.join(joined);
  }
  tc->end_vc.raise(tc->chain, tc->end_pos);
  tc->completed = true;
  tc->done_seq = ++seq_;
  mix_schedule_locked(t->id() * 2 + 1);
  // A completed tail frees its chain for the next ready task with no tail
  // predecessor (see the chain-reuse note in on_ready).
  if (chain_tail_[tc->chain] == tc->end_pos) free_chains_.push_back(tc->chain);
  // Fold the end clock into the per-domain join clock (what a taskwait over
  // the domain merges into the waiter).  Each shared base map is folded only
  // once, so a wide fan of siblings costs O(deltas), not O(tasks^2).
  DomainJoin& dj = domain_vc_[t->domain];
  const ChainClock::Map* base = tc->end_vc.base.get();
  if (base != nullptr && dj.folded_bases.insert(base).second) {
    dj.bases.push_back(tc->end_vc.base);  // keep the map alive
    for (const auto& [c, p] : *base) {
      std::uint32_t& slot = dj.acc[c];
      if (p > slot) slot = p;
    }
  }
  for (const auto& [c, p] : tc->end_vc.delta) {
    std::uint32_t& slot = dj.acc[c];
    if (p > slot) slot = p;
  }
}

void RaceOracle::on_taskwait(Task* waiter, DependencyDomain* domain) {
  std::lock_guard<std::mutex> lk(mu_);
  publish_stats_locked();  // quiesce point: flush the deferred counters
  auto it = domain_vc_.find(domain);
  if (it == domain_vc_.end()) return;  // no completed task yet
  join_into_context_locked(context_locked(waiter), it->second.acc);
}

void RaceOracle::on_wait_on(Task* waiter, const std::vector<Task*>& producers) {
  std::lock_guard<std::mutex> lk(mu_);
  Context& ctx = context_locked(waiter);
  for (Task* p : producers) {
    TaskClock* pc = clock_of(p);
    if (pc != nullptr && pc->completed) join_into_context_locked(ctx, pc->end_vc);
  }
}

void RaceOracle::observe(Task* t, const common::Region& r, AccessMode mode) {
  std::lock_guard<std::mutex> lk(mu_);
  TaskClock* tc = clock_of(t);
  if (tc == nullptr || !tc->ready) return;
  check_access_locked(*tc, r, mode, sampled_locked(*tc));
}

std::uint64_t RaceOracle::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_;
}

void RaceOracle::flush_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  publish_stats_locked();
}

TaskClock* RaceOracle::clock_of(Task* t) const {
  // The clock record rides on the task itself (set at spawn).  The oracle
  // check guards against a task tracked by a different runtime's oracle.
  return t != nullptr && t->race_oracle == this ? t->vclock : nullptr;
}

std::uint32_t RaceOracle::take_free_chain_locked() {
  while (!free_chains_.empty()) {
    const std::uint32_t c = free_chains_.back();
    free_chains_.pop_back();
    const TaskClock* tail = chain_tail_task_[c];
    if (tail != nullptr && tail->completed) return c;
    // Stale entry: an arc extended the chain after this entry was pushed and
    // the new tail is still running — its own completion re-pushes the chain.
  }
  const auto c = static_cast<std::uint32_t>(chain_tail_.size());
  chain_tail_.push_back(0);
  chain_tail_task_.push_back(nullptr);
  return c;
}

void RaceOracle::publish_stats_locked() {
  if (stats_ == nullptr) return;
  if (tasks_ != published_tasks_) {
    stats_->add("verify.tasks", static_cast<double>(tasks_ - published_tasks_));
    published_tasks_ = tasks_;
  }
  if (sample_skipped_ != published_skipped_) {
    stats_->add("verify.sample_skipped",
                static_cast<double>(sample_skipped_ - published_skipped_));
    published_skipped_ = sample_skipped_;
  }
}

RaceOracle::Context& RaceOracle::context_locked(Task* waiter) {
  if (waiter == nullptr) return root_ctx_;
  auto [it, inserted] = body_ctx_.try_emplace(waiter);
  if (inserted) {
    // First spawn/taskwait from this body: snapshot the task's start clock.
    // The body context then only grows through the body's own taskwaits.
    TaskClock* tc = clock_of(waiter);
    if (tc != nullptr) {
      auto flat = std::make_shared<ChainClock::Map>();
      if (tc->start_vc.base != nullptr) *flat = *tc->start_vc.base;
      for (const auto& [c, p] : tc->start_vc.delta) {
        std::uint32_t& slot = (*flat)[c];
        if (p > slot) slot = p;
      }
      it->second.vc = std::move(flat);
    }
  }
  return it->second;
}

void RaceOracle::join_into_context_locked(Context& ctx, const ChainClock::Map& m) {
  auto next = std::make_shared<ChainClock::Map>();
  if (ctx.vc != nullptr) *next = *ctx.vc;
  for (const auto& [c, p] : m) {
    std::uint32_t& slot = (*next)[c];
    if (p > slot) slot = p;
  }
  ctx.vc = std::move(next);  // fresh snapshot: tasks spawned later see it
}

void RaceOracle::join_into_context_locked(Context& ctx, const ChainClock& vc) {
  auto next = std::make_shared<ChainClock::Map>();
  if (ctx.vc != nullptr) *next = *ctx.vc;
  auto fold = [&next](std::uint32_t c, std::uint32_t p) {
    std::uint32_t& slot = (*next)[c];
    if (p > slot) slot = p;
  };
  if (vc.base != nullptr) {
    for (const auto& [c, p] : *vc.base) fold(c, p);
  }
  for (const auto& [c, p] : vc.delta) fold(c, p);
  ctx.vc = std::move(next);  // fresh snapshot: tasks spawned later see it
}

bool RaceOracle::ordered_before_locked(const AccessStamp& s, const TaskClock& t) const {
  return t.start_vc.value(s.chain) >= s.end_pos;
}

bool RaceOracle::lineal_locked(const TaskClock& a, const TaskClock& b) const {
  for (const TaskClock* p = a.spawner; p != nullptr; p = p->spawner) {
    if (p == &b) return true;
  }
  for (const TaskClock* p = b.spawner; p != nullptr; p = p->spawner) {
    if (p == &a) return true;
  }
  return false;
}

void RaceOracle::set_replay_context(std::uint64_t config_digest, std::uint64_t net_seed) {
  std::lock_guard<std::mutex> lk(mu_);
  token_.config_digest = config_digest;
  token_.net_seed = net_seed;
}

void RaceOracle::mix_schedule_locked(std::uint64_t event) {
  // splitmix64-style finalizer over (previous hash, event) — order-sensitive,
  // so two runs match iff the oracle saw the same ready/complete sequence.
  std::uint64_t h = token_.schedule_hash ^ (event + 0x9e3779b97f4a7c15ull);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  token_.schedule_hash = h ^ (h >> 31);
}

bool RaceOracle::sampled_locked(const TaskClock& tc) const {
  // Deterministic (id-based, RNG-free) so a sampled run is reproducible and
  // a test can place a racy task inside — or outside — the sample.
  return sample_ <= 1 || (tc.task != nullptr && tc.task->id() % sample_ == 0);
}

void RaceOracle::check_access_locked(TaskClock& tc, const common::Region& r, AccessMode mode,
                                     bool check) {
  if (r.empty()) return;
  hits_.clear();  // scratch buffer: one live use per call, mu_ held
  shadow_.for_overlapping(r, [&](auto& e) { hits_.emplace_back(e.region, &e.value); });
  auto conflicts = [&](const AccessStamp& s, common::Region* overlap) {
    if (s.owner == nullptr || s.owner == &tc) return false;
    if (!writes(s.mode) && !writes(mode)) return false;  // reader vs reader
    // A stamp covers only the bytes its access really touched, never the
    // whole cell — a subregion write must not implicate disjoint siblings.
    const std::uintptr_t lo = std::max(s.region.start, r.start);
    const std::uintptr_t hi = std::min(s.region.end(), r.end());
    if (lo >= hi) return false;
    // Parent/child pairs share the region by hierarchical decomposition
    // (the parent's clause covers what its children subdivide) — exempt.
    if (lineal_locked(*s.owner, tc)) return false;
    // Completion-before-ready is mutex-mediated happens-before inside the
    // runtime: the stamping task's body finished before ours could start,
    // so the pair cannot physically race even with no arc between them.
    if (s.owner->completed && s.owner->done_seq < tc.ready_seq) return false;
    if (ordered_before_locked(s, tc)) return false;
    *overlap = common::Region{lo, hi - lo};
    return true;
  };
  if (check) {
    for (const auto& [hr, cell] : hits_) {
      common::Region overlap;
      for (const AccessStamp& s : cell->writers) {
        if (conflicts(s, &overlap)) report_locked(s, tc, r, mode, overlap);
      }
      if (writes(mode)) {
        for (const AccessStamp& s : cell->readers) {
          if (conflicts(s, &overlap)) report_locked(s, tc, r, mode, overlap);
        }
      }
    }
  }
  // Record the access.  A write retires every stamp whose range it fully
  // covers (FastTrack-style forgetting: the superseded access was either
  // ordered before us or just reported) and lands on the exact cell, created
  // on demand; a read joins that cell's reader set.
  const AccessStamp me{&tc, tc.chain, tc.end_pos, mode, r};
  auto covered = [&r](const AccessStamp& s) {
    return s.region.start >= r.start && s.region.end() <= r.end();
  };
  auto retire = [&covered](std::vector<AccessStamp>& v) {
    v.erase(std::remove_if(v.begin(), v.end(), covered), v.end());
  };
  auto [it, inserted] = shadow_.try_emplace(r);
  if (!inserted && r.size > it->second.region.size) shadow_.update_extent(it, r.size);
  ShadowCell& exact = it->second.value;
  if (writes(mode)) {
    for (const auto& [hr, cell] : hits_) {
      retire(cell->writers);
      retire(cell->readers);
    }
    retire(exact.writers);  // the exact cell may be new (absent from hits)
    retire(exact.readers);
    exact.writers.push_back(me);
  } else {
    bool already = false;
    for (const AccessStamp& s : exact.readers) {
      // A previous stamp by us covering at least these bytes makes this read
      // redundant (our epoch only moves forward).
      already = already || (s.owner == &tc && s.region.start <= r.start &&
                            s.region.end() >= r.end());
    }
    if (!already) exact.readers.push_back(me);
  }
}

void RaceOracle::report_locked(const AccessStamp& earlier, const TaskClock& later,
                               const common::Region& later_region, AccessMode later_mode,
                               const common::Region& overlap) {
  // One report per unordered task pair — a pair racing on many cells would
  // otherwise flood the sink.
  Task* a = earlier.owner->task;
  Task* b = later.task;
  auto pair = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (!reported_.insert(pair).second) return;
  ++violations_;
  if (stats_ != nullptr) stats_->incr("verify.races");

  const bool earlier_writes = writes(earlier.mode);
  const bool later_writes = writes(later_mode);
  const char* kind = earlier_writes ? (later_writes ? "write-after-write" : "read-after-write")
                                    : "write-after-read";
  // The clause whose absence left the pair unordered: a pure read needed an
  // input clause on the racing bytes; anything writing needed inout.
  const char* missing = earlier_writes && !later_writes ? "input" : "inout";

  auto describe = [](Task* t, AccessMode m) {
    std::ostringstream os;
    os << "task '" << t->label() << "' (#" << t->id() << ", "
       << (writes(m) ? (reads(m) ? "inout" : "out") : "in") << ")";
    return os.str();
  };
  std::ostringstream os;
  os << "dependency race (" << kind << "): " << describe(b, later_mode) << " touching "
     << later_region.to_string() << " is unordered with " << describe(a, earlier.mode)
     << "; overlapping bytes " << overlap.to_string() << "; missing " << missing
     << " clause on one of the tasks" << token_.to_string();
  RaceViolation err(os.str());
  if (sink_) {
    sink_(std::make_exception_ptr(err));
  } else {
    throw err;
  }
}

}  // namespace nanos::verify
