// Implementation of taskcheck pass 2: the invariant walks live here, out of
// the protocol hot paths, but run as member functions — the invariants are
// over private metadata (directory entries, device copies, node directory).
#include "nanos/verify/coherence_check.hpp"

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nanos/cluster.hpp"
#include "nanos/coherence.hpp"

namespace nanos {

void CoherenceManager::set_verify(verify::VerifyMode mode, verify::ErrorSink sink,
                                  bool crosscheck) {
  verify_mode_ = mode;
  verify_sink_ = std::move(sink);
  verify_crosscheck_ = crosscheck;
}

void CoherenceManager::check_entry_locked(verify::InvariantReporter& rep, RegionInfo& info) {
  // Message construction is lazy: this runs per mutated entry per release
  // under verify=all, and the clean path must not allocate.
  auto id = [&info] { return info.region.to_string(); };
  auto cid = [&](int space) {
    return "region " + id() + " copy in space " + std::to_string(space);
  };

  // Version monotonicity between quiesce points.
  if (info.verify_seen && info.version < info.verify_last_version) {
    rep.violation("region " + id() + " version moved backwards (v" +
                  std::to_string(info.version) + " after v" +
                  std::to_string(info.verify_last_version) + ")");
  }
  info.verify_seen = true;
  info.verify_last_version = info.version;

  if (info.valid.empty()) {
    rep.violation("region " + id() + " has no valid copy in any space");
  }
  int dirty_copies = 0;
  for (const auto& [space, copy] : info.copies) {
    if (copy.version > info.version) {
      rep.violation(cid(space) + " is ahead of the directory (copy v" +
                    std::to_string(copy.version) + " > region v" +
                    std::to_string(info.version) + ")");
    }
    if (copy.pins < 0) {
      rep.violation(cid(space) + " has a negative pin count (" + std::to_string(copy.pins) +
                    ")");
    }
    if (copy.dirty) {
      ++dirty_copies;
      if (copy.version != info.version || info.valid.count(space) == 0) {
        rep.violation(cid(space) + " is dirty but stale (copy v" +
                      std::to_string(copy.version) + ", region v" +
                      std::to_string(info.version) +
                      "): shadowed by a newer committed version");
      }
    }
  }
  if (dirty_copies > 1) {
    rep.violation("region " + id() + " has " + std::to_string(dirty_copies) +
                  " dirty copies (single-writer violated)");
  }
  for (int space : info.valid) {
    if (space == kHostSpace) continue;
    auto it = info.copies.find(space);
    if (it == info.copies.end() || it->second.dev_ptr == nullptr) {
      rep.violation("region " + id() + " lists space " + std::to_string(space) +
                    " as valid but that space holds no copy");
    } else if (it->second.version != info.version) {
      rep.violation("region " + id() + " lists space " + std::to_string(space) +
                    " as valid but its copy is v" + std::to_string(it->second.version) +
                    " (region v" + std::to_string(info.version) + ")");
    }
  }
}

void CoherenceManager::full_walk_locked(verify::InvariantReporter& rep) {
  for (auto& [start, entry] : regions_) {
    RegionInfo& info = entry.value;
    std::lock_guard<std::mutex> cl(shard_of(info).mu);
    if (info.busy) continue;  // a wire operation owns this entry's state
    // The full walk subsumes any pending incremental check.  The entry may
    // linger in its shard's dirty vector; a re-check there is harmless.
    info.check_pending = false;
    check_entry_locked(rep, info);
  }
}

void CoherenceManager::verify_invariants(const char* where) {
  verify::InvariantReporter rep(verify_sink_, &stats_, where);
  std::lock_guard<std::mutex> ix(index_mu_);
  full_walk_locked(rep);
}

void CoherenceManager::verify_touched(const char* where) {
  verify::InvariantReporter rep(verify_sink_, &stats_, where);
  // No global lock: every entry is examined under its own shard mutex, and
  // the monotonicity state lives in the entry.  Releases on different shards
  // verify concurrently — the point of the incremental walk.
  std::uint64_t checked = 0;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    if (!sh.has_dirty.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> cl(sh.mu);
    std::vector<RegionInfo*> pending;
    pending.swap(sh.dirty);
    sh.has_dirty.store(false, std::memory_order_relaxed);
    for (RegionInfo* info : pending) {
      // A full walk since the enqueue already certified this entry (it
      // cleared check_pending but left the queued pointer behind): skip it
      // rather than re-deliver a check the directory no longer owes.
      if (!info->check_pending) continue;
      if (info->busy) {
        // A wire operation owns this entry's state: leave it queued so the
        // next walk (incremental or full) picks it up once quiescent.
        sh.dirty.push_back(info);
        continue;
      }
      info->check_pending = false;
      check_entry_locked(rep, *info);
      ++checked;
    }
    if (!sh.dirty.empty()) sh.has_dirty.store(true, std::memory_order_release);
  }
  // Deferred like the directory counters (published by the next flush /
  // teardown): a live Stats add here would dominate the walk's own cost.
  incr_entries_checked_.fetch_add(checked, std::memory_order_relaxed);
  incr_walks_.fetch_add(1, std::memory_order_relaxed);
  if (verify_crosscheck_) {
    // Debug assertion mode: a silent full walk must not find anything the
    // incremental walk (plus whatever it already delivered) did not.  A gap
    // means a protocol path mutated an entry without marking it dirty.
    verify::InvariantReporter tally(verify_sink_, nullptr, where,
                                    verify::InvariantReporter::Mode::kTally);
    std::lock_guard<std::mutex> ix(index_mu_);
    full_walk_locked(tally);
    if (tally.count() > rep.count()) {
      rep.violation("incremental walk missed " +
                    std::to_string(tally.count() - rep.count()) +
                    " violation(s) the full directory walk found — a mutation path is not "
                    "marking its touched regions (crosscheck)");
    }
  }
}

bool CoherenceManager::host_current(const common::Region& r) {
  std::lock_guard<std::mutex> ix(index_mu_);
  bool current = true;
  regions_.for_overlapping(r, [this, &current](common::IntervalMap<RegionInfo>::Entry& e) {
    RegionInfo& info = e.value;
    std::lock_guard<std::mutex> cl(shard_of(info).mu);
    if (!info.busy && info.valid.count(kHostSpace) == 0) current = false;
  });
  return current;
}

void CoherenceManager::debug_corrupt_region(const common::Region& r, bool mark) {
  std::lock_guard<std::mutex> ix(index_mu_);
  RegionInfo& info = lookup_locked(r);
  Shard& sh = shard_of(info);
  std::lock_guard<std::mutex> cl(sh.mu);
  // A space that backs no copy: breaks multi-reader agreement on the next
  // walk without perturbing any real data the run still needs.  `mark=false`
  // leaves the entry out of the dirty set — simulating a mutation path that
  // forgot to mark, which only the full walk (or the crosscheck) catches.
  info.valid.insert(platform_.device_count() + 17);
  if (mark) mark_dirty_locked(sh, info);
}

void ClusterRuntime::verify_invariants(const char* where, bool flushed) {
  Runtime* master = nodes_[0].rt.get();
  verify::ErrorSink sink = [master](std::exception_ptr e) {
    master->record_task_error(std::move(e));
  };
  std::vector<common::Region> home_regions;  // cross-layer checked outside mu_
  verify::ReplayToken token{config_digest_, cfg_.faults.seed, 0};
  {
    std::lock_guard<std::mutex> lk(mu_);
    token.schedule_hash = verify_sched_hash_;
  }
  verify::InvariantReporter rep(sink, &stats_, where, verify::InvariantReporter::Mode::kDeliver,
                                token.to_string());
  {
    std::lock_guard<std::mutex> lk(mu_);
    // One walk aggregates every shard: entries live in per-home-node maps
    // under sharding, but the invariants are global.
    for (auto& shard : dir_) {
      for (auto& [start, entry] : shard) {
        NodeDirEntry& e = entry.value;
        // Lost regions already surfaced an error; recovering ones are mid-
        // replay and deliberately hold version > what any copy has.
        if (e.lost || e.recovering) continue;
        const std::string id = "node-dir region " + e.region.to_string();

        auto [vit, first_seen] = verify_versions_.try_emplace(start, e.version);
        if (!first_seen) {
          if (e.version < vit->second) {
            rep.violation(id + " version moved backwards (v" + std::to_string(e.version) +
                          " after v" + std::to_string(vit->second) + ")");
          }
          vit->second = e.version;
        }

        if (e.version < e.master_version) {
          rep.violation(id + " home copy is ahead of the region (master v" +
                        std::to_string(e.master_version) + " > v" + std::to_string(e.version) +
                        ")");
        } else if (e.version != e.master_version + e.redo_log.size()) {
          rep.violation(id + " redo-log accounting broken: v" + std::to_string(e.version) +
                        " != master v" + std::to_string(e.master_version) + " + " +
                        std::to_string(e.redo_log.size()) + " logged writes");
        }
        if (e.valid.empty()) {
          rep.violation(id + " has no copy on any node");
        }
        for (int node : e.valid) {
          if (node < 0 || node >= cfg_.nodes) {
            rep.violation(id + " lists nonexistent node " + std::to_string(node) +
                          " as a holder");
            continue;
          }
          if (!node_alive_locked(node)) {
            rep.violation(id + " lists dead node " + std::to_string(node) + " as a holder");
          }
          if (node != 0 && e.addr.find(node) == e.addr.end()) {
            rep.violation(id + " holder node " + std::to_string(node) +
                          " has no segment address for the copy");
          }
        }
        for (const auto& [dst, src] : e.stage_src) {
          if (e.staging_to.find(dst) == e.staging_to.end()) {
            rep.violation(id + " records a transfer source for node " + std::to_string(dst) +
                          " with no in-flight transfer to it");
          }
        }
        if (flushed && e.staging_to.empty() && e.valid.count(0) != 0) {
          home_regions.push_back(e.region);
        }
      }
    }
  }
  // Master-directory/slave-cache agreement: after the taskwait flush, a
  // region the node directory calls home must be host-current inside node
  // 0's own coherence manager (not parked dirty on a master GPU).
  for (const common::Region& r : home_regions) {
    if (!master->coherence().host_current(r)) {
      rep.violation("node-dir region " + r.to_string() +
                    " is valid on node 0 but not host-current in node 0's caches");
    }
  }
}

}  // namespace nanos
