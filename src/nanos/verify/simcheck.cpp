// simcheck implementation: schedule arbiter, protocol reference model,
// scenario library and the explorer.  See simcheck.hpp and docs/simcheck.md
// for the model; the pieces here are:
//
//   ScheduleArbiter  — holds every inbound fabric message in per-(src, dst,
//                      class, handler, resource) FIFO queues and, each time
//                      the virtual clock reaches global quiescence, delivers
//                      the candidate selected by the current schedule.
//   ProtocolChecker  — a ProtocolProbe keeping the commit/vouch/retire
//                      reference model and recording invariant violations.
//   Scenario library — small fixed workloads (2-4 nodes) whose only freedom
//                      is the schedule.
//   Explorer         — bounded-exhaustive DFS over choice prefixes with a
//                      commuting-sibling reduction, seeded sampling beyond
//                      the DFS frontier, greedy counterexample shrinking and
//                      deterministic schedule-id replay.
#include "nanos/verify/simcheck.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "nanos/cluster.hpp"
#include "nanos/wire.hpp"
#include "simnet/simnet.hpp"
#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace nanos::verify {
namespace {

// ---------------------------------------------------------------------------
// Hashing: splitmix64-style mixing.  Schedule ids and trace hashes are built
// exclusively from schedule-stable values (choice indices, candidate counts,
// message fingerprints) — never from host pointers or wall-clock time — so
// they are reproducible across processes and machines.

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) { return mix64(h ^ mix64(v)); }

std::uint64_t schedule_id_of(int policy, const std::vector<int>& choices,
                             const std::vector<int>& counts) {
  std::uint64_t h = fold(0x73696d636865636bull /* "simcheck" */,
                         static_cast<std::uint64_t>(policy));
  for (std::size_t t = 0; t < choices.size(); ++t)
    h = fold(h, fold(static_cast<std::uint64_t>(t),
                     fold(static_cast<std::uint64_t>(choices[t]),
                          static_cast<std::uint64_t>(counts[t]))));
  return h;
}

// ---------------------------------------------------------------------------
// Candidate identity.  A held message is keyed by everything schedule-stable
// about it; messages with equal keys are interchangeable and stay FIFO within
// their queue.  `resource` is the protocol object the message is about — a
// completion ticket or a region offset relative to a scenario-registered
// arena — never a raw heap address (ASLR would break cross-process replay).

struct Key {
  int src = 0;
  int dst = 0;
  int cls = 0;  // 0 short AM, 1 put, 2 batch, 3 scenario event
  int handler = -1;
  std::uint64_t resource = 0;

  bool operator<(const Key& o) const {
    return std::tie(src, dst, cls, handler, resource) <
           std::tie(o.src, o.dst, o.cls, o.handler, o.resource);
  }
  bool is_event() const { return cls == 3; }
};

const char* handler_name(int h) {
  switch (h) {
    case ClusterRuntime::kNewTask: return "NEW_TASK";
    case ClusterRuntime::kTaskDone: return "TASK_DONE";
    case ClusterRuntime::kForward: return "FORWARD";
    case ClusterRuntime::kStageDone: return "STAGE_DONE";
    case ClusterRuntime::kPull: return "PULL";
    case ClusterRuntime::kPing: return "PING";
    case ClusterRuntime::kPong: return "PONG";
    case ClusterRuntime::kTaskRecv: return "TASK_RECV";
    case ClusterRuntime::kDoneAck: return "DONE_ACK";
    case ClusterRuntime::kDirCommit: return "DIR_COMMIT";
    case ClusterRuntime::kDoneVouch: return "DONE_VOUCH";
    case ClusterRuntime::kStageReq: return "STAGE_REQ";
    default: return "AM";
  }
}

// ---------------------------------------------------------------------------
// Schedule specification for one run.

enum class Mode { kDfs, kSample };

struct RunSpec {
  std::vector<int> prefix;  // choices to replay; past the end, see mode
  Mode mode = Mode::kDfs;   // kDfs: default (0) beyond prefix; kSample: hashed
  int flush_policy = 0;     // 0 deadline flush, 1 eager, 2 hashed (coalesce)
  std::uint64_t sample_seed = 0;
};

// ---------------------------------------------------------------------------
// ScheduleArbiter

class ScheduleArbiter final : public simnet::DeliveryArbiter {
 public:
  struct Event {
    std::string label;
    std::function<void()> fire;
    bool fired = false;
  };

  ScheduleArbiter(vt::Clock& clock, simnet::Network& net, RunSpec spec, int max_steps)
      : clock_(clock),
        net_(net),
        spec_(std::move(spec)),
        max_steps_(max_steps),
        gate_(clock) {}

  ~ScheduleArbiter() override = default;

  /// Registers [base, base+size) as arena `i` so region-addressed messages
  /// get stable resource keys.  Call from the scenario body before spawning.
  void add_arena(const void* base, std::size_t size) {
    std::lock_guard<std::mutex> lk(mu_);
    arenas_.push_back({reinterpret_cast<std::uintptr_t>(base), size});
  }

  /// Registers a scenario event (e.g. "kill node 3") as an extra candidate
  /// at every choice point until it fires.  Call before start().
  void add_event(std::string label, std::function<void()> fire) {
    events_.push_back({std::move(label), std::move(fire), false});
  }

  /// Installs the arbiter on the fabric and clock and starts the choosing
  /// thread.  Call under a vt::Hold, before any fabric traffic.
  void start() {
    net_.set_arbiter(this);
    clock_.set_choice_gate(&gate_, &pending_);
    thread_ = vt::Thread(clock_, "simcheck.arbiter", [this] { loop(); }, /*service=*/true);
  }

  /// Stops choosing and releases everything still held, in deterministic
  /// (key) order.  Called from the scenario driver thread at a fixed point
  /// in the schedule — the end of the body — so the recorded trace does not
  /// depend on host-side teardown timing.
  void freeze() {
    std::vector<simnet::MessagePtr> held;
    {
      std::lock_guard<std::mutex> lk(mu_);
      frozen_ = true;
      for (auto& [k, q] : queues_)
        for (auto& m : q) held.push_back(std::move(m));
      queues_.clear();
      pending_.store(0, std::memory_order_release);
    }
    for (auto& m : held) net_.admit(std::move(m));
  }

  /// Detaches from the fabric and clock and joins the choosing thread.
  /// Call after the driver thread finished, before runtime teardown.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      frozen_ = true;
    }
    gate_.notify_all();
    thread_.join();
    clock_.set_choice_gate(nullptr, nullptr);
    net_.set_arbiter(nullptr);
    // A cancelled run (deadlock, step cap) can leave messages held; release
    // them so payload buffers are not stranded.  The RX threads are already
    // unwound — the endpoint queues absorb and free them at teardown.
    std::vector<simnet::MessagePtr> held;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& [k, q] : queues_)
        for (auto& m : q) held.push_back(std::move(m));
      queues_.clear();
      pending_.store(0, std::memory_order_release);
    }
    for (auto& m : held) net_.admit(std::move(m));
  }

  // -- DeliveryArbiter ------------------------------------------------------

  bool intercept(const simnet::MessagePtr& m) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (frozen_) return false;
    queues_[key_of(*m)].push_back(m);
    pending_.fetch_add(1, std::memory_order_release);
    return true;
  }

  bool force_flush(int src, int dst, int batch_msgs, std::size_t batch_bytes) override {
    (void)batch_bytes;
    switch (spec_.flush_policy) {
      case 1: return true;  // eager: every sub-message flushes immediately
      case 2:               // hashed: a deterministic coin per batch state
        return (fold(fold(0xf1u, static_cast<std::uint64_t>(src) * 64 +
                                     static_cast<std::uint64_t>(dst)),
                     static_cast<std::uint64_t>(batch_msgs)) &
                1) != 0;
      default: return false;  // deadline flush only (the fabric's own timer)
    }
  }

  // -- results --------------------------------------------------------------

  int steps() const { return step_; }
  bool tripped_step_cap() const { return tripped_; }
  std::uint64_t trace_hash() const { return trace_hash_; }
  const std::vector<int>& choices() const { return choices_; }
  const std::vector<int>& counts() const { return counts_; }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::vector<std::vector<Key>>& candidates() const { return cands_; }

 private:
  struct Arena {
    std::uintptr_t base = 0;
    std::size_t size = 0;
  };

  std::uint64_t arena_offset(std::uintptr_t p) const {
    for (std::size_t i = 0; i < arenas_.size(); ++i)
      if (p >= arenas_[i].base && p < arenas_[i].base + arenas_[i].size)
        return ((static_cast<std::uint64_t>(i) + 1) << 48) | (p - arenas_[i].base);
    return 0;
  }

  std::uint64_t resource_of(const simnet::Message& m) const {
    using H = ClusterRuntime::Handler;
    namespace w = nanos::wire;
    if (m.is_put) {
      // Pull puts land in master memory (an arena); staging puts land in a
      // slave segment, which has no stable address — fall back to the source
      // side, then to 0 (interchangeable within the FIFO queue).
      std::uint64_t r = arena_offset(reinterpret_cast<std::uintptr_t>(m.dst_addr));
      if (r == 0) r = arena_offset(reinterpret_cast<std::uintptr_t>(m.src_addr));
      return r;
    }
    if (m.is_batch) return 0;
    const void* p = m.inline_payload.data();
    const std::size_t n = m.inline_payload.size();
    switch (m.handler) {
      case H::kNewTask:
      case H::kDirCommit: return ClusterRuntime::payload_ticket(p, n);
      case H::kTaskDone:
      case H::kTaskRecv: return w::read_msg<std::uint64_t>(p, n);
      case H::kDoneVouch: {
        const auto v = w::read_msg<w::VouchMsg>(p, n);
        return fold(v.ticket, arena_offset(v.start));
      }
      case H::kDoneAck: {
        w::DoneAckMsg a{};
        std::memcpy(&a, p, std::min(n, sizeof(a)));
        return a.count > 0 ? a.tickets[0] : 0;
      }
      case H::kStageDone: {
        const auto s = w::read_msg<w::StageDoneMsg>(p, n);
        return fold(arena_offset(s.start), static_cast<std::uint64_t>(s.node));
      }
      case H::kStageReq: {
        const auto s = w::read_msg<w::StageReqMsg>(p, n);
        return fold(arena_offset(s.start), static_cast<std::uint64_t>(s.dst_node));
      }
      case H::kForward: {
        const auto f = w::read_msg<w::ForwardMsg>(p, n);
        return fold(arena_offset(f.start), static_cast<std::uint64_t>(f.dst_node));
      }
      case H::kPull: {
        const auto q = w::read_msg<w::PullMsg>(p, n);
        return arena_offset(q.start);
      }
      default: return 0;  // PING/PONG and friends: node pair is identity enough
    }
  }

  Key key_of(const simnet::Message& m) const {
    Key k;
    k.src = m.src;
    k.dst = m.dst;
    k.cls = m.is_batch ? 2 : (m.is_put ? 1 : 0);
    k.handler = m.is_batch ? (m.subs.empty() ? -1 : m.subs.front().handler)
                           : (m.is_put ? -1 : m.handler);
    k.resource = resource_of(m);
    return k;
  }

  std::string describe(const Key& k, std::size_t bytes) const {
    std::ostringstream os;
    if (k.cls == 1)
      os << "put";
    else if (k.cls == 2)
      os << "batch[" << handler_name(k.handler) << "]";
    else
      os << handler_name(k.handler);
    os << " " << k.src << "->" << k.dst;
    if (k.resource != 0) os << " r=" << std::hex << k.resource << std::dec;
    os << " " << bytes << "B";
    return os.str();
  }

  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    try {
      for (;;) {
        if (stop_) return;
        gate_.wait(lk);  // woken by the clock at quiescence, or by stop()
        if (stop_) return;
        if (pending_.load(std::memory_order_acquire) == 0) continue;
        step_locked(lk);
      }
    } catch (const vt::Cancelled&) {
      // Deadlock cancellation (or our own step-cap cancel) unwound the wait.
    }
  }

  void step_locked(std::unique_lock<std::mutex>& lk) {
    // Snapshot the candidate set: the head of every non-empty queue, in key
    // order, plus any unfired scenario events.  The set is a deterministic
    // function of the choices taken so far — all senders are quiescent.
    std::vector<std::pair<Key, simnet::MessagePtr*>> heads;
    for (auto& [k, q] : queues_)
      if (!q.empty()) heads.push_back({k, &q.front()});
    std::vector<int> live_events;
    for (std::size_t i = 0; i < events_.size(); ++i)
      if (!events_[i].fired) live_events.push_back(static_cast<int>(i));
    const int n = static_cast<int>(heads.size() + live_events.size());
    if (n == 0) return;

    int choice = 0;
    if (step_ < static_cast<int>(spec_.prefix.size()))
      choice = spec_.prefix[static_cast<std::size_t>(step_)];
    else if (spec_.mode == Mode::kSample)
      choice = static_cast<int>(
          mix64(spec_.sample_seed ^ mix64(static_cast<std::uint64_t>(step_) + 1)) %
          static_cast<std::uint64_t>(n));
    choice = ((choice % n) + n) % n;

    counts_.push_back(n);
    choices_.push_back(choice);
    std::vector<Key> cand_keys;
    cand_keys.reserve(static_cast<std::size_t>(n));
    for (auto& [k, m] : heads) cand_keys.push_back(k);
    for (int ei : live_events) {
      Key ek;
      ek.src = -1;
      ek.dst = -1;
      ek.cls = 3;
      ek.handler = ei;
      cand_keys.push_back(ek);
    }
    cands_.push_back(std::move(cand_keys));
    ++step_;

    if (choice < static_cast<int>(heads.size())) {
      const Key k = heads[static_cast<std::size_t>(choice)].first;
      auto qit = queues_.find(k);
      simnet::MessagePtr m = std::move(qit->second.front());
      qit->second.pop_front();
      if (qit->second.empty()) queues_.erase(qit);
      pending_.fetch_sub(1, std::memory_order_release);
      trace_hash_ = fold(trace_hash_, fold(fold(static_cast<std::uint64_t>(k.src) * 64 +
                                                    static_cast<std::uint64_t>(k.dst),
                                                static_cast<std::uint64_t>(k.cls) * 256 +
                                                    static_cast<std::uint64_t>(k.handler + 1)),
                                           fold(k.resource, m->bytes)));
      labels_.push_back(describe(k, m->bytes));
      lk.unlock();
      net_.admit(std::move(m));
      lk.lock();
    } else {
      Event& e = events_[static_cast<std::size_t>(
          live_events[static_cast<std::size_t>(choice) - heads.size()])];
      e.fired = true;
      std::uint64_t lh = 0xe7e27ull;
      for (char c : e.label) lh = fold(lh, static_cast<std::uint64_t>(c));
      trace_hash_ = fold(trace_hash_, lh);
      labels_.push_back("event:" + e.label);
      lk.unlock();
      e.fire();
      lk.lock();
    }

    if (step_ >= max_steps_ && !tripped_) {
      // Step budget exceeded: the schedule is not terminating (heartbeat
      // scenarios march virtual time forever, so the clock's deadlock
      // detection never fires — the cap is the backstop).  Release what we
      // hold and cancel the simulation; the run reports non-termination.
      tripped_ = true;
      frozen_ = true;
      std::vector<simnet::MessagePtr> held;
      for (auto& [k, q] : queues_)
        for (auto& m : q) held.push_back(std::move(m));
      queues_.clear();
      pending_.store(0, std::memory_order_release);
      lk.unlock();
      for (auto& m : held) net_.admit(std::move(m));
      clock_.cancel_all();
      lk.lock();
    }
  }

  vt::Clock& clock_;
  simnet::Network& net_;
  const RunSpec spec_;
  const int max_steps_;

  std::mutex mu_;
  vt::Monitor gate_;
  std::atomic<long long> pending_{0};
  std::map<Key, std::deque<simnet::MessagePtr>> queues_;
  std::vector<Arena> arenas_;
  std::vector<Event> events_;
  bool frozen_ = false;
  bool stop_ = false;
  bool tripped_ = false;

  int step_ = 0;
  std::uint64_t trace_hash_ = 0x74726163ull;  // "trac"
  std::vector<int> choices_;
  std::vector<int> counts_;
  std::vector<std::string> labels_;
  std::vector<std::vector<Key>> cands_;

  vt::Thread thread_;
};

// ---------------------------------------------------------------------------
// ProtocolChecker: the reference model of the commit/vouch/retire machine.
// All probe callbacks arrive serialized under the cluster lock, but
// expect_kill() and finalize() come from other threads — everything takes
// the checker's own mutex.

class ProtocolChecker final : public ProtocolProbe {
 public:
  explicit ProtocolChecker(bool sharded) : sharded_(sharded) {}

  void on_ticket_created(std::uint64_t ticket, int exec_node, int expected_writes) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, fresh] = tickets_.try_emplace(ticket);
    if (!fresh) {
      add("ticket-reused", "ticket " + std::to_string(ticket) + " created twice");
      return;
    }
    it->second.exec_node = exec_node;
    it->second.expected = expected_writes;
  }

  void on_commit_applied(std::uint64_t ticket, int home, std::uint64_t region,
                         unsigned version) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
      add("commit-unknown-ticket",
          "home " + std::to_string(home) + " applied a commit for unknown ticket " +
              std::to_string(ticket));
      return;
    }
    if (!it->second.committed.insert(region).second) {
      std::ostringstream os;
      os << "ticket " << ticket << " region 0x" << std::hex << region << std::dec
         << " applied twice on home " << home << " (directory now at version " << version
         << ")";
      add("commit-exactly-once", os.str());
    }
  }

  void on_vouch(std::uint64_t ticket, std::uint64_t region, int exec_node) override {
    (void)exec_node;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end() || it->second.retired) return;  // late re-vouch: benign
    it->second.vouched.insert(region);
  }

  void on_ticket_retired(std::uint64_t ticket) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
      add("retire-unknown-ticket", "ticket " + std::to_string(ticket) + " retired but never created");
      return;
    }
    Ticket& t = it->second;
    if (t.retired) {
      add("retired-twice", "ticket " + std::to_string(ticket) + " retired twice");
      return;
    }
    if (sharded_ && t.expected > 0 && static_cast<int>(t.vouched.size()) < t.expected) {
      std::ostringstream os;
      os << "ticket " << ticket << " retired with " << t.vouched.size() << "/" << t.expected
         << " home vouches";
      add("retired-before-vouch-complete", os.str());
    }
    t.retired = true;
  }

  void on_done_ack(std::uint64_t ticket, int exec_node) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) return;  // ack for a pre-probe ticket: benign
    if (!it->second.retired) {
      std::ostringstream os;
      os << "DONE_ACK for ticket " << ticket << " queued towards node " << exec_node
         << " before the ticket retired";
      add("ack-before-retirement", os.str());
    }
  }

  void on_dir_version(std::uint64_t region, unsigned version, int node) override {
    std::lock_guard<std::mutex> lk(mu_);
    unsigned& cur = versions_[region];
    if (version <= cur) {
      std::ostringstream os;
      os << "region 0x" << std::hex << region << std::dec << " moved to version " << version
         << " from " << cur << " (write by node " << node << ")";
      add("version-monotonicity", os.str());
    }
    cur = version;
  }

  void on_region_lost(std::uint64_t region) override {
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    os << "region 0x" << std::hex << region << std::dec
       << " declared permanently lost (redo-log recovery failed)";
    add("sole-copy-lost", os.str());
  }

  void on_region_recovery(std::uint64_t region, unsigned version) override {
    // Redo-log recovery rolls the directory back to the stale home base and
    // replays commits forward: rebaseline so the replayed versions are not
    // misread as monotonicity breaks.
    std::lock_guard<std::mutex> lk(mu_);
    versions_[region] = version;
  }

  void on_node_declared_dead(int node) override {
    std::lock_guard<std::mutex> lk(mu_);
    declared_dead_.insert(node);
    if (!expected_dead_.count(node))
      add("false-positive-death",
          "node " + std::to_string(node) + " declared dead without an injected kill");
  }

  /// The scenario is about to kill `node`: its death (and its tickets' loss)
  /// is expected, not a violation.
  void expect_kill(int node) {
    std::lock_guard<std::mutex> lk(mu_);
    expected_dead_.insert(node);
  }

  /// Closes the model after the run.  `terminated`: the scenario body ran to
  /// completion.  `error`: non-empty if the body threw.
  void finalize(bool terminated, const std::string& error) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error.empty()) add("scenario-error", error);
    if (!terminated) {
      add("termination", "schedule did not quiesce (deadlock or step budget exceeded)");
      return;
    }
    for (const auto& [ticket, t] : tickets_) {
      if (t.retired) continue;
      if (declared_dead_.count(t.exec_node) || expected_dead_.count(t.exec_node)) continue;
      add("ticket-never-retired", "ticket " + std::to_string(ticket) + " on live node " +
                                      std::to_string(t.exec_node) +
                                      " never retired despite clean termination");
    }
  }

  std::vector<Violation> take() {
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(violations_);
  }

 private:
  struct Ticket {
    int exec_node = -1;
    int expected = 0;
    std::set<std::uint64_t> committed;
    std::set<std::uint64_t> vouched;
    bool retired = false;
  };

  void add(const char* kind, const std::string& detail) {
    if (violations_.size() < 32) violations_.push_back({kind, detail});
  }

  const bool sharded_;
  std::mutex mu_;
  std::map<std::uint64_t, Ticket> tickets_;
  std::map<std::uint64_t, unsigned> versions_;
  std::set<int> expected_dead_;
  std::set<int> declared_dead_;
  std::vector<Violation> violations_;
};

// ---------------------------------------------------------------------------
// Scenario library.

struct Scenario {
  std::string name;
  std::string description;
  std::function<ClusterConfig()> config;
  std::function<void(ClusterRuntime&, ScheduleArbiter&)> body;
  struct EventDef {
    std::string label;
    std::function<void(ClusterRuntime&, ProtocolChecker&)> fire;
  };
  std::vector<EventDef> events;
};

// ---------------------------------------------------------------------------
// Scenario buffer arena.  The cluster runtime hashes master-side region
// addresses — directory-home placement is mix_home(start) — so scenario
// buffers on the heap would reshape the protocol itself from run to run and
// from process to process, breaking both exploration determinism and
// schedule-id replay.  All scenario buffers therefore come from one mapping
// requested at a fixed address and bump-allocated in body order: every run
// sees byte-identical region identities.  If the kernel declines the address
// hint the mapping still lands somewhere stable for the process lifetime,
// preserving in-process determinism (cross-process replay then needs the
// hint to succeed, which it does on any Linux this targets).

class ScenarioArena {
 public:
  static ScenarioArena& instance() {
    static ScenarioArena arena;
    return arena;
  }

  void reset() { off_ = 0; }

  void* alloc(std::size_t bytes) {
    off_ = (off_ + 63) & ~static_cast<std::size_t>(63);
    if (off_ + bytes > kSize) throw std::bad_alloc();
    void* p = static_cast<char*>(base_) + off_;
    off_ += bytes;
    return p;
  }

 private:
  static constexpr std::uintptr_t kBase = 0x5150000000ull;
  static constexpr std::size_t kSize = 1u << 20;

  ScenarioArena() {
    base_ = ::mmap(reinterpret_cast<void*>(kBase), kSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base_ == MAP_FAILED) throw std::bad_alloc();
  }

  void* base_ = nullptr;
  std::size_t off_ = 0;
};

constexpr int kN = 16;  // elements per scenario region

/// A kN-element double buffer at a schedule-stable address, filled with
/// `init`.  Allocation order within the body fixes the address.
double* sim_buffer(double init) {
  auto* p = static_cast<double*>(
      ScenarioArena::instance().alloc(static_cast<std::size_t>(kN) * sizeof(double)));
  std::fill_n(p, kN, init);
  return p;
}

ClusterConfig sim_base(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.segment_bytes = 1u << 20;
  cfg.node.smp_workers = 1;
  cfg.node.scheduler = "dep";
  cfg.node.cache_policy = "wb";
  cfg.node.verify = "off";
  cfg.node_scheduler = "bf";  // strict round robin: placement is schedule-free
  cfg.rr_chunk = 1;
  cfg.comm_threads = 1;
  // A time-free fabric: transfers and staging memcpys cost zero virtual
  // time.  Timing costs would stagger the independent protocol chains (each
  // sleep parks its chain until the clock advances, and the clock only
  // advances once the arbiter has drained), collapsing most arbitration
  // points to a single candidate.  With zero-cost messaging every
  // concurrently-issued message reaches the arbiter in the same quiescent
  // epoch, so the real delivery-order choices become visible.
  cfg.link.bandwidth = std::numeric_limits<double>::infinity();
  cfg.link.latency = 0;
  cfg.link.am_overhead = 0;
  cfg.node.host_memcpy_bandwidth = std::numeric_limits<double>::infinity();
  // One message per AM: batch composition would otherwise depend on the
  // schedule taken so far, multiplying the space without adding protocol
  // coverage.  The `coalesce` scenario turns batching back on and explores
  // flush timing explicitly.
  cfg.link.coalesce_window = 0;
  // No heartbeats: with no timer ever pending, a stuck protocol is caught by
  // the clock's deadlock detection at the instant the last message delivers.
  cfg.resilience.heartbeat_period = 0;
  return cfg;
}

TaskDesc smp(std::vector<Access> acc, TaskFn fn) {
  TaskDesc d;
  d.device = DeviceKind::kSmp;
  d.accesses = std::move(acc);
  d.fn = std::move(fn);
  return d;
}

/// Writer: in-place bump of access 0.  Versioned staging makes re-execution
/// after a kill read the same input snapshot, so the workload stays
/// deterministic under retry.
TaskFn bump(double v) {
  return [v](TaskContext& t) {
    auto* p = t.data_as<double>(0);
    for (int i = 0; i < kN; ++i) p[i] += v;
  };
}

/// Reader/writer: access1 += access0.
void combine(TaskContext& t) {
  const auto* x = t.data_as<const double>(0);
  auto* y = t.data_as<double>(1);
  for (int i = 0; i < kN; ++i) y[i] += x[i];
}

void expect(const double* v, double want, const char* name) {
  for (int i = 0; i < kN; ++i)
    if (v[i] != want) {
      std::ostringstream os;
      os << "data mismatch: " << name << "[" << i << "] = " << v[i] << ", expected " << want;
      throw std::runtime_error(os.str());
    }
}

constexpr std::size_t kNB = kN * sizeof(double);

/// The core 3-node commit/vouch/stage scenario.  Wave 1 writes three
/// independent regions on three nodes concurrently — three full
/// dispatch/stage/commit/vouch chains in flight at once, which is where the
/// cross-pair delivery reorderings live.  Wave 2 rotates the regions across
/// nodes (each task reads its left neighbour's output), driving
/// slave-to-slave staging and second version bumps on every region.
void commit3_body(ClusterRuntime& rt, ScheduleArbiter& arb) {
  double* u = sim_buffer(1.0);
  double* v = sim_buffer(2.0);
  double* w = sim_buffer(3.0);
  arb.add_arena(u, kNB);
  arb.add_arena(v, kNB);
  arb.add_arena(w, kNB);
  rt.spawn(smp({Access::inout(u, kNB)}, bump(1)));                      // node 0: u = 2
  rt.spawn(smp({Access::inout(v, kNB)}, bump(2)));                      // node 1: v = 4
  rt.spawn(smp({Access::inout(w, kNB)}, bump(3)));                      // node 2: w = 6
  rt.spawn(smp({Access::in(v, kNB), Access::inout(u, kNB)}, combine));  // node 0: u = 6
  rt.spawn(smp({Access::in(w, kNB), Access::inout(v, kNB)}, combine));  // node 1: v = 10
  rt.spawn(smp({Access::in(u, kNB), Access::inout(w, kNB)}, combine));  // node 2: w = 12
  rt.taskwait();
  expect(u, 6.0, "u");
  expect(v, 10.0, "v");
  expect(w, 12.0, "w");
}

/// Heartbeat-on variant used for completion-replay coverage: the overdue
/// DONE replay path (and the drop_first_done / suppress_first_replay
/// mutants) need pings flowing.
ClusterConfig replaydrop_config() {
  ClusterConfig cfg = sim_base(3);
  cfg.resilience.heartbeat_period = 3e-4;
  cfg.resilience.node_lease = 1.0;  // effectively never: no failure declarations
  cfg.resilience.ack_timeout = 1e-4;
  return cfg;
}

void replaydrop_body(ClusterRuntime& rt, ScheduleArbiter& arb) {
  double* a = sim_buffer(1.0);
  double* b = sim_buffer(2.0);
  arb.add_arena(a, kNB);
  arb.add_arena(b, kNB);
  rt.spawn(smp({Access::inout(a, kNB)}, bump(1)));  // node 0
  rt.spawn(smp({Access::inout(b, kNB)}, bump(2)));  // node 1
  rt.spawn(smp({Access::inout(a, kNB)}, bump(3)));  // node 2
  rt.taskwait();
  expect(a, 5.0, "a");
  expect(b, 4.0, "b");
}

/// Kill scenario: 4 nodes under retry-mode resilience; the explorer chooses
/// the delivery step at which node 3's NIC goes silent (or never fires it).
ClusterConfig kill_config() {
  ClusterConfig cfg = sim_base(4);
  cfg.resilience.mode = "retry";
  cfg.resilience.heartbeat_period = 2e-4;
  cfg.resilience.node_lease = 8e-4;
  return cfg;
}

void kill_body(ClusterRuntime& rt, ScheduleArbiter& arb) {
  double* a = sim_buffer(1.0);
  double* b = sim_buffer(2.0);
  double* c = sim_buffer(0.0);
  arb.add_arena(a, kNB);
  arb.add_arena(b, kNB);
  arb.add_arena(c, kNB);
  rt.spawn(smp({Access::inout(a, kNB)}, bump(1)));                      // node 0: a = 2
  rt.spawn(smp({Access::inout(b, kNB)}, bump(2)));                      // node 1: b = 4
  rt.spawn(smp({Access::in(a, kNB), Access::inout(c, kNB)}, combine));  // node 2
  rt.spawn(smp({Access::inout(b, kNB)}, bump(1)));                      // node 3: b = 5
  rt.taskwait();
  expect(a, 2.0, "a");
  expect(b, 5.0, "b");
  expect(c, 2.0, "c");
}

const std::vector<Scenario>& scenario_table() {
  static const std::vector<Scenario> table = [] {
    std::vector<Scenario> t;
    t.push_back({"commit3",
                 "3 nodes, sharded directory: commit/vouch/stage interleavings",
                 [] { return sim_base(3); },
                 commit3_body,
                 {}});
    t.push_back({"coalesce",
                 "3 nodes with AM coalescing: flush-timing policies x delivery order",
                 [] {
                   ClusterConfig cfg = sim_base(3);
                   cfg.link.coalesce_window = 5e-6;  // fabric default batching
                   return cfg;
                 },
                 commit3_body,
                 {}});
    t.push_back({"replaydrop",
                 "3 nodes, heartbeats on: completion-replay path under delivery reordering",
                 replaydrop_config,
                 replaydrop_body,
                 {}});
    t.push_back({"kill",
                 "4 nodes, retry-mode resilience: node 3 dies at an explorer-chosen step",
                 kill_config,
                 kill_body,
                 {{"kill-node-3",
                   [](ClusterRuntime& rt, ProtocolChecker& chk) {
                     chk.expect_kill(3);
                     rt.network().kill_node(3);
                   }}}});
    return t;
  }();
  return table;
}

const Scenario& find_scenario(const std::string& name) {
  for (const Scenario& s : scenario_table())
    if (s.name == name) return s;
  throw std::invalid_argument("simcheck: unknown scenario '" + name + "'");
}

// ---------------------------------------------------------------------------
// One schedule execution.

struct RunRec {
  ScheduleResult pub;
  std::vector<std::vector<Key>> cands;
};

RunRec run_once(const Scenario& sc, const RunSpec& spec, const SimOptions& opts) {
  RunRec rec;
  // Runs execute strictly one at a time; rewinding the arena gives this
  // run's buffers the same addresses every run took before it.
  ScenarioArena::instance().reset();
  vt::Clock clock;
  // A stuck schedule is a *finding*, not a process failure: swallow the
  // report (the default handler aborts) and let cancellation unwind.
  clock.set_deadlock_handler([](const std::string&) {});

  ClusterConfig cfg = sc.config();
  cfg.mutation = opts.mutation;
  ProtocolChecker checker(cfg.dir_sharding && cfg.nodes > 1 && cfg.slave_to_slave);
  cfg.probe = &checker;

  bool body_done = false;
  std::string body_error;
  {
    // Hold virtual time across construction so no fabric traffic (e.g. the
    // first heartbeat) can move before the arbiter is installed.
    std::unique_ptr<ClusterRuntime> rt;
    std::unique_ptr<ScheduleArbiter> arb;
    vt::Thread driver;
    {
      vt::Hold hold(clock);
      rt = std::make_unique<ClusterRuntime>(clock, cfg);
      arb = std::make_unique<ScheduleArbiter>(clock, rt->network(), spec, opts.max_steps);
      for (const auto& ed : sc.events) {
        ClusterRuntime* rtp = rt.get();
        ProtocolChecker* chkp = &checker;
        const auto* edp = &ed;
        arb->add_event(ed.label, [rtp, chkp, edp] { edp->fire(*rtp, *chkp); });
      }
      arb->start();
      driver = vt::Thread(clock, "simcheck.driver", [&] {
        try {
          sc.body(*rt, *arb);
          arb->freeze();
          body_done = true;
        } catch (const vt::Cancelled&) {
          // Deadlock/step-cap cancellation: non-termination, recorded below.
        } catch (const std::exception& e) {
          body_error = e.what();
          arb->freeze();
        }
      });
    }
    driver.join();
    arb->stop();
    rec.pub.steps = arb->steps();
    rec.pub.choices = arb->choices();
    rec.pub.counts = arb->counts();
    rec.pub.labels = arb->labels();
    rec.pub.trace_hash = fold(arb->trace_hash(), static_cast<std::uint64_t>(spec.flush_policy));
    rec.pub.terminated = body_done && !arb->tripped_step_cap();
    rec.cands = arb->candidates();
  }
  // A body that threw (e.g. a data-correctness check) still *terminated*;
  // only a cancelled/capped run counts as non-termination.
  checker.finalize(body_done || !body_error.empty(), body_error);
  rec.pub.violations = checker.take();
  rec.pub.schedule_id = schedule_id_of(spec.flush_policy, rec.pub.choices, rec.pub.counts);
  return rec;
}

// ---------------------------------------------------------------------------
// Explorer.

/// Two candidate deliveries commute when swapping their order cannot change
/// any handler's observable state: different destination node (different
/// handler execution site) and different, known protocol resources.  Event
/// candidates never commute with anything.  This is a sleep-set-style
/// reduction: the deferred-delivery order is still reachable through later
/// steps of the default branch.
bool commutes(const Key& a, const Key& b) {
  if (a.is_event() || b.is_event()) return false;
  return a.dst != b.dst && a.resource != 0 && b.resource != 0 && a.resource != b.resource;
}

bool has_kind(const ScheduleResult& r, const std::string& kind) {
  for (const Violation& v : r.violations)
    if (v.kind == kind) return true;
  return false;
}

constexpr std::size_t kMaxStack = 20000;
constexpr int kMaxShrinkRuns = 64;

struct HuntState {
  std::uint64_t id = 0;
  bool found = false;
  std::vector<int> choices;
  int policy = 0;
};

/// The single deterministic exploration loop behind explore(), replay() and
/// the hunt: given the same (scenario, opts) it executes the exact same run
/// sequence, which is what makes schedule ids replayable across processes.
ExploreReport explore_impl(const Scenario& sc, const SimOptions& opts, HuntState* hunt) {
  ExploreReport rep;
  rep.scenario = sc.name;

  const bool coalesce = sc.config().link.coalesce_window > 0;
  std::vector<int> policies = coalesce ? std::vector<int>{0, 1, 2} : std::vector<int>{0};
  std::set<std::uint64_t> seen;
  std::set<std::uint64_t> reported;  // minimized ids: distinct violating runs
                                     // often shrink to the same counterexample

  auto observe = [&](const RunRec& r, int policy) {
    seen.insert(r.pub.schedule_id);
    rep.steps_total += r.pub.steps;
    if (hunt != nullptr && !hunt->found && r.pub.schedule_id == hunt->id) {
      hunt->found = true;
      hunt->choices = r.pub.choices;
      hunt->policy = policy;
    }
  };

  // Greedy delta debugging: re-run with each non-default choice reset to the
  // default; keep the reset whenever the same violation kind reproduces.
  auto shrink = [&](RunRec rec, int policy) {
    Counterexample cx;
    cx.original_choices = rec.pub.choices;
    if (opts.minimize && !rec.pub.violations.empty()) {
      const std::string kind = rec.pub.violations.front().kind;
      for (std::size_t t = 0; t < rec.pub.choices.size() && cx.shrink_runs < kMaxShrinkRuns;
           ++t) {
        if (rec.pub.choices[t] == 0) continue;
        std::vector<int> trial = rec.pub.choices;
        trial[t] = 0;
        RunRec rr = run_once(sc, {trial, Mode::kDfs, policy, 0}, opts);
        ++cx.shrink_runs;
        observe(rr, policy);
        if (has_kind(rr.pub, kind)) rec = std::move(rr);
      }
    }
    cx.result = std::move(rec.pub);
    return cx;
  };

  const long long budget = std::max(1, opts.max_schedules);
  const long long per_policy = std::max<long long>(1, budget / static_cast<long long>(policies.size()));

  for (int policy : policies) {
    long long runs_here = 0;
    std::vector<std::vector<int>> stack;
    stack.push_back({});  // the all-default schedule

    while (!stack.empty() && runs_here < per_policy) {
      if (hunt != nullptr && hunt->found) return rep;
      std::vector<int> prefix = std::move(stack.back());
      stack.pop_back();
      RunRec r = run_once(sc, {prefix, Mode::kDfs, policy, 0}, opts);
      ++runs_here;
      ++rep.runs;
      ++rep.dfs_runs;
      observe(r, policy);
      const std::vector<int> choices = r.pub.choices;
      const std::vector<int> counts = r.pub.counts;
      const std::vector<std::vector<Key>> cands = r.cands;
      if (r.pub.violating() &&
          static_cast<int>(rep.counterexamples.size()) < opts.max_violations) {
        Counterexample cx = shrink(std::move(r), policy);
        if (reported.insert(cx.result.schedule_id).second)
          rep.counterexamples.push_back(std::move(cx));
      }
      if (hunt != nullptr && hunt->found) return rep;
      // Branch at every step this run decided by default; alternatives at
      // earlier steps were enqueued when their prefix was explored.
      for (std::size_t t = prefix.size(); t < counts.size(); ++t) {
        for (int c = 1; c < counts[t]; ++c) {
          if (opts.prune_commuting &&
              commutes(cands[t][static_cast<std::size_t>(c)],
                       cands[t][static_cast<std::size_t>(choices[t])])) {
            ++rep.pruned;
            continue;
          }
          if (stack.size() >= kMaxStack) {
            ++rep.frontier_dropped;
            continue;
          }
          std::vector<int> p(choices.begin(),
                             choices.begin() + static_cast<std::ptrdiff_t>(t));
          p.push_back(c);
          stack.push_back(std::move(p));
        }
      }
    }
    rep.frontier_dropped += static_cast<long long>(stack.size());

    // DFS exhausted (or never filled) the budget: top up with seeded random
    // sampling — distinct-id counting dedups collisions.
    std::uint64_t sseq = 0;
    while (stack.empty() && runs_here < per_policy) {
      if (hunt != nullptr && hunt->found) return rep;
      const std::uint64_t seed =
          fold(opts.sample_seed, fold(static_cast<std::uint64_t>(policy), ++sseq));
      RunRec r = run_once(sc, {{}, Mode::kSample, policy, seed}, opts);
      ++runs_here;
      ++rep.runs;
      ++rep.sampled_runs;
      observe(r, policy);
      if (r.pub.violating() &&
          static_cast<int>(rep.counterexamples.size()) < opts.max_violations) {
        Counterexample cx = shrink(std::move(r), policy);
        if (reported.insert(cx.result.schedule_id).second)
          rep.counterexamples.push_back(std::move(cx));
      }
    }
  }

  rep.distinct = static_cast<long long>(seen.size());
  return rep;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public surface.

SimOptions SimOptions::from_env() {
  SimOptions opts;
  if (const char* b = std::getenv("SIMCHECK_BUDGET")) {
    const long v = std::strtol(b, nullptr, 10);
    if (v > 0) opts.max_schedules = static_cast<int>(v);
  }
  return opts;
}

std::string ScheduleResult::trace() const {
  std::ostringstream os;
  bool any = false;
  for (std::size_t t = 0; t < choices.size(); ++t) {
    if (choices[t] == 0) continue;
    any = true;
    os << "  step " << t << ": choice " << choices[t] << "/" << counts[t] << " -> "
       << (t < labels.size() ? labels[t] : "?") << "\n";
  }
  if (!any) os << "  (default schedule: every step took the first candidate)\n";
  return os.str();
}

std::string ExploreReport::summary() const {
  std::ostringstream os;
  os << "scenario " << scenario << ": " << runs << " schedules (" << dfs_runs << " dfs, "
     << sampled_runs << " sampled), " << distinct << " distinct, " << pruned
     << " branches pruned, " << frontier_dropped << " beyond budget, " << steps_total
     << " delivery steps; " << counterexamples.size() << " counterexample(s)";
  return os.str();
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const Scenario& s : scenario_table()) names.push_back(s.name);
  return names;
}

std::string scenario_description(const std::string& name) {
  for (const Scenario& s : scenario_table())
    if (s.name == name) return s.description;
  return {};
}

ExploreReport explore(const std::string& scenario, const SimOptions& opts) {
  return explore_impl(find_scenario(scenario), opts, nullptr);
}

ScheduleResult run_schedule(const std::string& scenario, const std::vector<int>& choices,
                            const SimOptions& opts) {
  return run_once(find_scenario(scenario), {choices, Mode::kDfs, 0, 0}, opts).pub;
}

std::optional<ReplayResult> replay(const std::string& scenario, std::uint64_t id,
                                   const SimOptions& opts) {
  const Scenario& sc = find_scenario(scenario);
  HuntState hunt;
  hunt.id = id;
  explore_impl(sc, opts, &hunt);
  if (!hunt.found) return std::nullopt;
  ReplayResult rr;
  rr.first = run_once(sc, {hunt.choices, Mode::kDfs, hunt.policy, 0}, opts).pub;
  rr.second = run_once(sc, {hunt.choices, Mode::kDfs, hunt.policy, 0}, opts).pub;
  rr.deterministic = rr.first.trace_hash == rr.second.trace_hash &&
                     rr.first.schedule_id == rr.second.schedule_id &&
                     rr.first.schedule_id == id;
  return rr;
}

}  // namespace nanos::verify
