// simcheck CLI: explore cluster-protocol schedule spaces, replay recorded
// schedule ids bit-deterministically.  See docs/simcheck.md.
//
//   simcheck --list
//   simcheck [--scenario=NAME|all] [--budget=N] [--max-steps=N] [--seed=S]
//            [--no-prune] [--no-minimize] [--mutate=FLAG[,FLAG...]]
//   simcheck --scenario=NAME --replay=ID [--budget=N] [--mutate=...]
//
// Exit status: 0 clean, 1 violations found (or replay mismatch), 2 usage.
// SIMCHECK_BUDGET in the environment sets the default schedule budget.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "nanos/verify/simcheck.hpp"

namespace {

using nanos::verify::Counterexample;
using nanos::verify::ExploreReport;
using nanos::verify::SimOptions;

int usage() {
  std::fprintf(stderr,
               "usage: simcheck [--list] [--scenario=NAME|all] [--budget=N] [--max-steps=N]\n"
               "                [--seed=S] [--no-prune] [--no-minimize]\n"
               "                [--mutate=drop_vouch|double_commit|suppress_replay|drop_done]\n"
               "                [--replay=ID]\n");
  return 2;
}

bool parse_mutation(const std::string& list, nanos::verify::ProtocolMutation* mut) {
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string flag = list.substr(pos, comma - pos);
    if (flag == "drop_vouch")
      mut->drop_first_vouch = true;
    else if (flag == "double_commit")
      mut->double_first_commit = true;
    else if (flag == "suppress_replay")
      mut->suppress_first_replay = true;
    else if (flag == "drop_done")
      mut->drop_first_done = true;
    else
      return false;
    pos = comma + 1;
  }
  return true;
}

void print_report(const ExploreReport& rep) {
  std::printf("%s\n", rep.summary().c_str());
  for (const Counterexample& cx : rep.counterexamples) {
    std::printf("counterexample: schedule id 0x%016" PRIx64 " (trace hash 0x%016" PRIx64
                ", %d steps, shrunk in %d runs)\n",
                cx.result.schedule_id, cx.result.trace_hash, cx.result.steps, cx.shrink_runs);
    for (const auto& v : cx.result.violations)
      std::printf("  violation [%s]: %s\n", v.kind.c_str(), v.detail.c_str());
    std::printf("  minimized trace:\n%s", cx.result.trace().c_str());
    std::printf("  replay: simcheck --scenario=%s --replay=0x%016" PRIx64 "\n",
                rep.scenario.c_str(), cx.result.schedule_id);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Fault scenarios kill nodes by the thousand; the runtime's per-death
  // warnings are expected there and would drown the report.  OMPSS_LOG can
  // still raise the level for debugging.
  if (std::getenv("OMPSS_LOG") == nullptr) common::Log::set_level(common::LogLevel::kError);
  SimOptions opts = SimOptions::from_env();
  std::string scenario = "all";
  bool list = false;
  bool trace_default = false;
  bool do_replay = false;
  std::uint64_t replay_id = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--trace") {
      trace_default = true;
    } else if (const char* v = value("--scenario=")) {
      scenario = v;
    } else if (const char* v = value("--budget=")) {
      opts.max_schedules = std::atoi(v);
    } else if (const char* v = value("--max-steps=")) {
      opts.max_steps = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      opts.sample_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--no-prune") {
      opts.prune_commuting = false;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else if (const char* v = value("--mutate=")) {
      if (!parse_mutation(v, &opts.mutation)) return usage();
    } else if (const char* v = value("--replay=")) {
      do_replay = true;
      replay_id = std::strtoull(v, nullptr, 0);
    } else {
      return usage();
    }
  }

  if (list) {
    for (const std::string& name : nanos::verify::scenario_names())
      std::printf("%-12s %s\n", name.c_str(), nanos::verify::scenario_description(name).c_str());
    return 0;
  }

  if (trace_default) {
    // Debug aid: execute the default schedule once and print every step.
    if (scenario == "all") return usage();
    auto r = nanos::verify::run_schedule(scenario, {}, opts);
    std::printf("schedule id 0x%016" PRIx64 " trace hash 0x%016" PRIx64 " steps %d\n",
                r.schedule_id, r.trace_hash, r.steps);
    for (std::size_t t = 0; t < r.labels.size(); ++t)
      std::printf("  step %zu [%d cand]: %s\n", t, r.counts[t], r.labels[t].c_str());
    for (const auto& v : r.violations)
      std::printf("  violation [%s]: %s\n", v.kind.c_str(), v.detail.c_str());
    return 0;
  }

  if (do_replay) {
    if (scenario == "all") {
      std::fprintf(stderr, "simcheck: --replay needs --scenario=NAME\n");
      return 2;
    }
    auto rr = nanos::verify::replay(scenario, replay_id, opts);
    if (!rr) {
      std::fprintf(stderr,
                   "simcheck: schedule 0x%016" PRIx64
                   " not reached within budget %d (same build, seed and mutation flags as "
                   "the recording run?)\n",
                   replay_id, opts.max_schedules);
      return 1;
    }
    std::printf("replay 0x%016" PRIx64 ": trace hash 0x%016" PRIx64 " / 0x%016" PRIx64
                " -> %s\n",
                replay_id, rr->first.trace_hash, rr->second.trace_hash,
                rr->deterministic ? "deterministic" : "MISMATCH");
    std::printf("%d steps, %zu violation(s)\n", rr->first.steps, rr->first.violations.size());
    for (const auto& v : rr->first.violations)
      std::printf("  violation [%s]: %s\n", v.kind.c_str(), v.detail.c_str());
    std::printf("trace:\n%s", rr->first.trace().c_str());
    return rr->deterministic ? 0 : 1;
  }

  std::vector<std::string> names =
      scenario == "all" ? nanos::verify::scenario_names() : std::vector<std::string>{scenario};
  bool clean = true;
  for (const std::string& name : names) {
    ExploreReport rep = nanos::verify::explore(name, opts);
    print_report(rep);
    clean = clean && rep.clean();
  }
  return clean ? 0 : 1;
}
