// Dependency-race oracle (taskcheck pass 1).
//
// An Archer-style happens-before checker specialized to task dependences:
// every task gets a vector clock derived from the *executed* schedule —
// task spawn (spawning context → task), dependence-release edges (the arcs
// the dependency layer actually created), implicit child joins (a parent
// completes only after its children) and taskwait joins — and for every pair
// of tasks touching overlapping bytes with at least one writer, the oracle
// asserts a happens-before path exists.  Because the edge set is exactly the
// synchronization the runtime provided, the oracle independently validates
// the dependency layer's RAW/WAR/WAW construction, sibling-only scoping and
// the interval-index directory — and it catches under-declared application
// clauses when a body registers the bytes it really touches via
// TaskContext::observe() (the OMPSS_SANITIZE-style annotation hook).
//
// Clocks are chain clocks: each task occupies two positions (start, end) on a
// chain; a task extends a predecessor's chain when that predecessor is the
// chain's current tail, failing that reuses a chain whose tail task has
// completed (completion-before-ready is a mutex-mediated happens-before edge
// inside the runtime — the same one the conflict check's done/ready sequence
// exemption relies on — so encoding it as a chain extension is sound), and
// only opens a new chain when neither exists.  Chain count is therefore
// bounded by the schedule's width (max in-flight tasks), not by total tasks
// — without reuse, iterative patterns whose producers complete and detach
// before the consumer is submitted (so no arc ever forms) would open a chain
// per task and grow every clock base map linearly with the run.  A vector
// clock is a shared immutable base (the spawning context's clock, which only
// changes at taskwait joins) plus a small per-task delta, so the common
// patterns — wide fans, chains, wavefronts — cost O(predecessors) per task,
// not O(tasks).
// Conflicts are found FastTrack-style through a shadow directory keyed by
// region (common::IntervalMap): each cell holds writer and reader stamps,
// each carrying its (chain, end position) epoch AND the exact byte range it
// covers — a stamp never claims the whole cell, so a subregion write (a
// child tile inside its parent's array, say) cannot make disjoint siblings
// appear to conflict.  A write retires every stamp its range fully covers.
//
// A violation reports both task labels, the overlapping byte range and the
// missing clause kind, through the error sink — i.e. it surfaces as a hard
// error at the next taskwait, on the same rethrow path as device faults.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/interval_map.hpp"
#include "common/stats.hpp"
#include "nanos/task.hpp"
#include "nanos/verify/verify.hpp"

namespace nanos {
class DependencyDomain;
}

namespace nanos::verify {

/// Sparse chain clock: value(c) = max(delta[c], (*base)[c]).  The base is an
/// immutable snapshot shared by every task spawned from the same context
/// window (between two taskwaits), so copying a clock is O(delta).  The
/// delta is a vector sorted by chain id: deltas are small (one entry per
/// chain the task transitively depends on), so a single contiguous
/// allocation with merge-joins beats a node-based map on every hot path.
struct ChainClock {
  using Map = std::unordered_map<std::uint32_t, std::uint32_t>;
  using Delta = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  std::shared_ptr<const Map> base;
  Delta delta;  // sorted by chain id, unique keys

  std::uint32_t value(std::uint32_t chain) const;
  /// delta[c] = max(delta[c], pos).
  void raise(std::uint32_t chain, std::uint32_t pos);
  /// Pointwise max with `o`.  Cheap when the bases are the same object.
  void join(const ChainClock& o);
};

/// Per-task oracle state; allocated at spawn, owned by the oracle
/// (Task::vclock points here so observe() is O(1)).
struct TaskClock {
  Task* task = nullptr;
  std::uint32_t chain = 0;
  std::uint32_t start_pos = 0;  ///< this task's start event on `chain`
  /// The task's NEXT settling event on `chain`: its end event when it never
  /// releases early, otherwise its next per-region release event.  Shadow
  /// stamps snapshot this value, so a stamp is ordered before a successor
  /// exactly when the successor's clock covers the release (or completion)
  /// that settled it; each release bumps it, leaving the body's later
  /// (post-release) stamps unordered with the successors released before
  /// them — the tail-access race early-release can introduce.
  std::uint32_t end_pos = 0;
  ChainClock start_vc;          ///< fixed when the task becomes ready
  ChainClock end_vc;            ///< fixed at completion (joins taskwaited work)
  /// Running clock of the task's early releases: start clock plus every
  /// release event so far.  What a successor freed by a release (rather
  /// than by completion) joins at ready.
  ChainClock release_vc;
  bool released = false;  ///< release_vc is live (at least one early release)
  std::vector<TaskClock*> preds;  ///< declared-dependence predecessors
  TaskClock* spawner = nullptr;   ///< task whose body spawned this one
  /// Oracle-global sequence numbers for the ready / complete events.  A task
  /// whose done_seq precedes another task's ready_seq finished before that
  /// task's body could start — a mutex-mediated happens-before edge the
  /// dependency directory does not materialize as an arc (a completed writer
  /// detaches, so a later same-region task gets no predecessor; the cluster
  /// TASK_DONE → release → forward path hits this constantly).
  std::uint64_t ready_seq = 0;
  std::uint64_t done_seq = 0;
  bool ready = false;
  bool completed = false;
};

class RaceOracle {
public:
  /// `sink`: where RaceViolation diagnostics go (null: throw in place).
  /// `sample`: conflict-check every Nth task (the `verify_sample` config
  /// key).  Deterministic by task id — task t is *checked* iff
  /// t->id() % sample == 0; every task's accesses are still *recorded*, so a
  /// racing pair with at least one sampled member is caught.  Clock
  /// maintenance is unaffected: 1 (the default) checks everything.
  RaceOracle(ErrorSink sink, common::Stats* stats, std::uint64_t sample = 1);
  ~RaceOracle();

  RaceOracle(const RaceOracle&) = delete;
  RaceOracle& operator=(const RaceOracle&) = delete;

  // -- schedule hooks (called by DependencyDomain / TaskContext) -------------

  /// Task submitted; `spawner` is the task whose body spawned it (nullptr:
  /// the application driver / root context).
  void on_spawn(Task* t, Task* spawner);
  /// The dependency layer created arc pred → succ.  Called under the
  /// dependency domain's mutex; deliberately does NOT take the oracle mutex
  /// (see the implementation for the happens-before argument).
  void on_arc(Task* pred, Task* succ);
  /// Every predecessor settled: fix the start clock, then race-check and
  /// record the task's declared accesses.
  void on_ready(Task* t);
  /// `t`'s still-running body released `r` early (before completion).  Fixes
  /// the release clock successors released by this event will join, then
  /// advances t's stamp position so accesses the body performs AFTER this
  /// release stay unordered with those successors — the oracle flags a
  /// producer touching bytes it already released.
  void on_release(Task* t, const common::Region& r);
  /// Task complete: fix the end clock (joining any children) and fold it
  /// into its domain's join clock.
  void on_complete(Task* t);
  /// `waiter` (nullptr: root context) finished a taskwait over `domain`.
  void on_taskwait(Task* waiter, DependencyDomain* domain);
  /// `waiter` finished a `taskwait on(...)` joining just `producers`.
  void on_wait_on(Task* waiter, const std::vector<Task*>& producers);

  /// Body-level access annotation: task `t` really touches `r` with `mode`.
  /// Declared clauses are observed implicitly; this is for the bytes a body
  /// touches *beyond* its clauses (or for sanitizer-style instrumentation).
  void observe(Task* t, const common::Region& r, AccessMode mode);

  /// Races detected so far (also exported as the "verify.races" stat).
  std::uint64_t violations() const;

  /// Publishes the deferred counters ("verify.tasks", "verify.sample_skipped")
  /// into the stats sink.  Taskwaits flush implicitly; quiesce/shutdown paths
  /// that never taskwait call this so short runs report true totals.
  void flush_stats();

  /// Arms the replay token printed with every violation: `config_digest` is
  /// the owning runtime's canonical-config digest, `net_seed` its fault-plan
  /// seed.  The token's schedule hash is maintained here — a running
  /// fingerprint of the ready/complete order the oracle observed — so the
  /// message pins the exact interleaving, not just the configuration.
  void set_replay_context(std::uint64_t config_digest, std::uint64_t net_seed);

private:
  struct AccessStamp {
    TaskClock* owner = nullptr;  ///< stamping task's clock record
    std::uint32_t chain = 0;
    std::uint32_t end_pos = 0;
    AccessMode mode = AccessMode::kIn;
    common::Region region;  ///< the bytes this stamp actually covers
  };
  struct ShadowCell {
    std::vector<AccessStamp> writers;  // live writes over distinct subranges
    std::vector<AccessStamp> readers;  // reads admitted since those writes
  };
  /// A spawning context: the driver thread (root) or one task's body.
  struct Context {
    std::shared_ptr<const ChainClock::Map> vc = nullptr;  // null: empty clock
  };

  /// Reads only task-resident pointers fixed at spawn — callable without mu_
  /// by a caller that happens-after the task's on_spawn.
  TaskClock* clock_of(Task* t) const;

  // All below require mu_ held.
  Context& context_locked(Task* waiter);
  void publish_stats_locked();
  /// A chain the ready task may extend: pops the free pool (chains whose
  /// tail task completed), opening a fresh chain when the pool is dry.
  std::uint32_t take_free_chain_locked();
  void join_into_context_locked(Context& ctx, const ChainClock::Map& m);
  void join_into_context_locked(Context& ctx, const ChainClock& vc);
  /// True iff the event (chain, pos) happens-before `t`'s start.
  bool ordered_before_locked(const AccessStamp& s, const TaskClock& t) const;
  /// True iff one task is an ancestor (transitive spawner) of the other.
  bool lineal_locked(const TaskClock& a, const TaskClock& b) const;
  /// True when `t` is in the deterministic sample (conflict-checked).
  bool sampled_locked(const TaskClock& tc) const;
  /// Folds one schedule event (task id, ready/complete bit) into the replay
  /// token's running schedule hash.
  void mix_schedule_locked(std::uint64_t event);
  /// Records the access in the shadow directory; hunts for conflicts first
  /// only when `check` (unsampled tasks record without checking).
  void check_access_locked(TaskClock& tc, const common::Region& r, AccessMode mode,
                           bool check);
  void report_locked(const AccessStamp& earlier, const TaskClock& later,
                     const common::Region& later_region, AccessMode later_mode,
                     const common::Region& overlap);

  ErrorSink sink_;
  common::Stats* stats_;
  std::uint64_t sample_;  // conflict-check every Nth task (1 = every task)
  ReplayToken token_;     // schedule_hash evolves under mu_; see set_replay_context

  mutable std::mutex mu_;
  std::deque<TaskClock> clocks_;                    // node-stable task state
  std::vector<std::uint32_t> chain_tail_;           // chain id -> tail position
  std::vector<TaskClock*> chain_tail_task_;         // chain id -> tail task
  /// Chains whose tail task has completed, reusable by the next ready task
  /// with no tail predecessor.  Entries go stale when an arc extends the
  /// chain first; take_free_chain_locked() revalidates against the current
  /// tail, so staleness costs a pop, never soundness.
  std::vector<std::uint32_t> free_chains_;
  common::IntervalMap<ShadowCell> shadow_;
  Context root_ctx_;
  std::unordered_map<Task*, Context> body_ctx_;     // task body contexts
  std::vector<std::pair<common::Region, ShadowCell*>> hits_;  // check scratch
  /// Per-domain join clock: the running join of every completed task of that
  /// domain, what a taskwait merges into the waiter's context.  The folded
  /// set tracks which shared bases are already merged, so folding a task is
  /// O(delta), not O(base).  The accumulator is a hash map, not a sorted
  /// delta: it grows to one entry per chain in the domain.
  struct DomainJoin {
    ChainClock::Map acc;
    std::unordered_set<const ChainClock::Map*> folded_bases;
    std::vector<std::shared_ptr<const ChainClock::Map>> bases;  // keep alive
  };
  std::unordered_map<const DependencyDomain*, DomainJoin> domain_vc_;
  std::set<std::pair<Task*, Task*>> reported_;  // one report per racing pair
  std::uint64_t seq_ = 0;  // ready/complete event sequencer (see TaskClock)
  std::uint64_t violations_ = 0;
  // Deferred stats (mu_-guarded), published at taskwaits and teardown: a live
  // Stats add per spawn would nest a second global lock inside the oracle's.
  std::uint64_t tasks_ = 0;
  std::uint64_t sample_skipped_ = 0;
  std::uint64_t published_tasks_ = 0;
  std::uint64_t published_skipped_ = 0;
};

}  // namespace nanos::verify
