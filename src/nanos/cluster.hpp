// Cluster layer (paper §III-D1): master/slave runtime images over active
// messages.
//
// Node 0 is the *master*: the application thread spawns tasks into its
// dependency domain.  When a task's dependences are satisfied, the master
// places it on a node (hierarchical scheduling at node granularity, honoring
// the configured policy); node 0 executes locally through its own Runtime,
// remote tasks are queued per node and driven by a single communication
// thread that polls the per-node queues round-robin.
//
// Before a remote task starts, the master stages each input region into the
// destination node's data segment: directly from master memory, or — when
// slave-to-slave transfers are enabled — by asking the holding slave to put
// the region straight to the destination (StoS); with StoS disabled the data
// relays through the master (MtoS), doubling master NIC pressure, exactly the
// contrast Fig. 9 measures.  The *presend* option keeps up to 1+presend tasks
// in flight per node, so transfers for queued tasks overlap the computation
// of running ones.
//
// A node-level directory tracks, per region, the current version, the nodes
// holding it and each node's segment address.  Write-back semantics apply at
// node level too: results stay on the producing node until someone needs
// them or a taskwait flush pulls them home.
//
// Remote tasks may spawn local subtasks on their node (the slave's own
// Runtime executes them; the parent waits implicitly), enabling the scalable
// data decomposition the paper describes.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/allocator.hpp"
#include "common/interval_map.hpp"
#include "nanos/runtime.hpp"
#include "simnet/simnet.hpp"

namespace nanos {

struct ClusterConfig {
  int nodes = 2;
  simnet::LinkProps link;
  std::size_t segment_bytes = 256u << 20;  ///< per-slave data segment
  RuntimeConfig node;                      ///< per-node runtime configuration
  int presend = 0;
  bool slave_to_slave = true;
  /// Communication threads driving remote dispatch on the master.  The
  /// paper uses one and notes the design allows more (§III-D1, fn. 2).
  int comm_threads = 1;
  /// Node placement policy: bf (round robin) | dep (releaser's node) |
  /// affinity (locality-aware on the node directory).
  std::string node_scheduler = "affinity";
  /// Tasks with no affinity anywhere (e.g. first-touch initialization) are
  /// distributed round-robin in chunks of this many consecutive tasks: a
  /// block distribution, so consecutive tiles land together and later
  /// affinity-scored tasks find coarse-grained locality.
  int rr_chunk = 8;
};

class ClusterRuntime {
public:
  ClusterRuntime(vt::Clock& clock, ClusterConfig cfg);
  ~ClusterRuntime();

  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  /// Spawns a task into the master's (cluster-wide) dependency domain.
  Task* spawn(TaskDesc desc);

  /// Waits for every spawned task; with `flush`, additionally pulls all
  /// remotely produced data back to master memory.
  void taskwait(bool flush = true);

  /// The paper's `taskwait on(...)` at cluster scope: waits only for the
  /// producers of `r`, pulls that region home, and flushes it off master
  /// GPUs — other tasks keep running.
  void taskwait_on(const common::Region& r);

  vt::Clock& clock() { return clock_; }
  simnet::Network& network() { return *net_; }
  Runtime& node_runtime(int node) { return *nodes_.at(static_cast<std::size_t>(node)).rt; }
  int node_count() const { return cfg_.nodes; }
  common::Stats& stats() { return stats_; }
  const ClusterConfig& config() const { return cfg_; }

private:
  // Active-message handler ids.
  enum Handler : int {
    kNewTask = 0,
    kTaskDone = 1,
    kForward = 2,    // master -> holder: put region to a third node
    kStageDone = 3,  // destination -> master: a staged region landed
    kPull = 4,       // master -> holder: put region back to master memory
  };

  struct NodeDirEntry {
    common::Region region;           // master-side identity
    unsigned version = 0;            // bumped on every task write
    std::set<int> valid{0};          // nodes holding the current version
    std::map<int, void*> addr;       // node -> local address of the copy
    std::map<int, double> staging_to;  // in-flight transfer destinations -> issue time
    /// Destinations waiting for an in-flight copy of this region to land so
    /// they can source from it (tree fan-out instead of serializing on one
    /// holder); only used with slave-to-slave transfers enabled.
    std::vector<int> deferred;
  };

  struct RemoteAccess {
    common::Region master_region;
    void* local_addr = nullptr;
    AccessMode mode = AccessMode::kIn;
    bool copy = true;
    bool freshly_staged = false;
  };
  /// Message body of kNewTask (same-process shortcut: a real implementation
  /// would serialize a task-table index the way Mercurium emits one).
  struct RemoteTaskInfo {
    std::uint64_t ticket = 0;
    Task* master_task = nullptr;
    std::vector<RemoteAccess> accesses;
    double dispatched_at = 0;  // staging began
    double sent_at = 0;        // NEW_TASK left the master
  };

  struct NodeState {
    std::unique_ptr<Runtime> rt;
    std::unique_ptr<char[]> segment;                   // slaves only
    std::unique_ptr<common::FirstFitAllocator> segalloc;  // master-side bookkeeping
    std::deque<Task*> queue;  // ready tasks placed on this node (remote only)
    /// Dispatch pipeline: tasks whose data is being staged (or that await a
    /// send slot), and tasks sent but not yet reported done.  Staging runs
    /// ahead of execution — that is what presend buys (paper §III-D1) — while
    /// the send window (1 + presend) bounds what the slave holds queued.
    int preparing = 0;
    int sent = 0;
    std::deque<RemoteTaskInfo*> ready_to_send;
    /// Slave-side service thread running forwarded-transfer work (region
    /// flush + put) off the RX thread, which must stay responsive.
    std::unique_ptr<vt::Thread> comm_worker;
    std::deque<std::function<void()>> comm_jobs;  // guarded by owner's mu_
  };

  // -- master-side logic -----------------------------------------------------
  void on_ready(Task* t, Task* releaser);
  int place_node(Task* t, Task* releaser);
  void comm_loop();
  /// Starts staging + dispatch of `t` on remote `node`; asynchronous.
  void dispatch_remote(Task* t, int node);
  /// Master-local dispatch: pulls any remotely held inputs home first, then
  /// hands the task to node 0's scheduler.
  void dispatch_local(Task* t, int releaser_resource);
  /// Ensures `node` eventually holds the current version of `region`.
  /// `done` fires (from an AM handler) once it does.  mu_ must be held; the
  /// returned action — wire operations that must not run under the lock —
  /// is to be invoked by the caller after releasing mu_ (may be null when
  /// an in-flight transfer was joined).
  std::function<void()> stage_region_locked(const common::Region& region, int node,
                                            std::function<void()> done);
  /// Builds the wire operation that moves `region` to `node` from wherever a
  /// current copy lives.  mu_ held; the returned action runs without it.
  std::function<void()> make_wire_action_locked(NodeDirEntry& e, const common::Region& region,
                                                int node);
  void* node_addr_locked(NodeDirEntry& e, int node);
  NodeDirEntry& dir_lookup_locked(const common::Region& r);
  void record_write_locked(const common::Region& r, int node);
  /// Region became valid on `node`: updates the directory and collects the
  /// staged-waiter callbacks and re-issued deferred transfers into `out`
  /// (run them after releasing mu_).
  void staged_locked(const common::Region& r, int node, std::vector<std::function<void()>>& out);

  // -- handlers (registered per node; run on that node's RX thread) ----------
  void handle_new_task(int node, const RemoteTaskInfo* info);
  void handle_task_done(std::uint64_t ticket);
  void handle_forward(int self, int src, const void* payload, std::size_t bytes);
  void handle_pull(int self, const void* payload, std::size_t bytes);

  /// Sends queued ready-to-send tasks to `node` while its send window
  /// (1 + presend) has room.  mu_ held.
  void try_send_locked(int node);
  /// Enqueues slave-side transfer work on `node`'s comm worker.
  void post_comm_job(int node, std::function<void()> job);
  void comm_worker_loop(int node);

  vt::Clock& clock_;
  ClusterConfig cfg_;
  common::Stats stats_;
  std::unique_ptr<simnet::Network> net_;
  std::vector<NodeState> nodes_;
  std::unique_ptr<DependencyDomain> domain_;

  std::mutex mu_;
  vt::Monitor comm_mon_;
  vt::Monitor worker_mon_;
  /// Node-level data directory, interval-indexed so lookups don't degrade as
  /// the region count grows (same structure as the node-local directories).
  common::IntervalMap<NodeDirEntry> dir_;
  std::map<std::uint64_t, RemoteTaskInfo*> in_flight_tasks_;  // ticket -> info
  /// (region start, node) -> callbacks to fire when that copy lands.
  std::multimap<std::pair<std::uintptr_t, int>, std::function<void()>> region_waiters_;
  std::uint64_t next_ticket_ = 1;
  int rr_cursor_ = 0;
  std::uint64_t holder_rr_ = 0;  // rotates transfer sources among copy holders
  bool shutdown_ = false;

  std::vector<vt::Thread> comm_threads_;
};

}  // namespace nanos
