// Cluster layer (paper §III-D1): master/slave runtime images over active
// messages.
//
// Node 0 is the *master*: the application thread spawns tasks into its
// dependency domain.  When a task's dependences are satisfied, the master
// places it on a node (hierarchical scheduling at node granularity, honoring
// the configured policy); node 0 executes locally through its own Runtime,
// remote tasks are queued per node and driven by a single communication
// thread that polls the per-node queues round-robin.
//
// Before a remote task starts, the master stages each input region into the
// destination node's data segment: directly from master memory, or — when
// slave-to-slave transfers are enabled — by asking the holding slave to put
// the region straight to the destination (StoS); with StoS disabled the data
// relays through the master (MtoS), doubling master NIC pressure, exactly the
// contrast Fig. 9 measures.  The *presend* option keeps up to 1+presend tasks
// in flight per node, so transfers for queued tasks overlap the computation
// of running ones.
//
// A node-level directory tracks, per region, the current version, the nodes
// holding it and each node's segment address.  Write-back semantics apply at
// node level too: results stay on the producing node until someone needs
// them or a taskwait flush pulls them home.
//
// Remote tasks may spawn local subtasks on their node (the slave's own
// Runtime executes them; the parent waits implicitly), enabling the scalable
// data decomposition the paper describes.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/allocator.hpp"
#include "common/interval_map.hpp"
#include "nanos/resilience/resilience.hpp"
#include "nanos/runtime.hpp"
#include "nanos/verify/protocol_probe.hpp"
#include "simnet/simnet.hpp"

namespace nanos {

struct ClusterConfig {
  int nodes = 2;
  simnet::LinkProps link;
  /// Fabric shape (racks behind oversubscribed uplinks); the default is a
  /// flat single-switch network, behaviorally identical to pre-topology
  /// builds.  See docs/simnet-topology.md.
  simnet::TopologyConfig topology;
  /// With a non-flat topology, weight placement, presend sources and
  /// directory homes by link distance (rack-local preferred).  Off, the
  /// scheduler is rack-blind and only the fabric's contention model applies
  /// — the control fig14 measures against.
  bool rack_aware = true;
  std::size_t segment_bytes = 256u << 20;  ///< per-slave data segment
  RuntimeConfig node;                      ///< per-node runtime configuration
  int presend = 0;
  bool slave_to_slave = true;
  /// Shard region-directory ownership across nodes by home-node hashing:
  /// version commits and transfer-source resolution for a region go to its
  /// home node instead of the master, which then only orchestrates task
  /// spawn/taskwait and the global quiesce.  Requires slave-to-slave
  /// transfers (the MtoS relay is inherently master-centric); forced off
  /// when they are disabled or on a single node.
  bool dir_sharding = true;
  /// Communication threads driving remote dispatch on the master.  The
  /// paper uses one and notes the design allows more (§III-D1, fn. 2).
  int comm_threads = 1;
  /// Node placement policy: bf (round robin) | dep (releaser's node) |
  /// affinity (locality-aware on the node directory).
  std::string node_scheduler = "affinity";
  /// Tasks with no affinity anywhere (e.g. first-touch initialization) are
  /// distributed round-robin in chunks of this many consecutive tasks: a
  /// block distribution, so consecutive tiles land together and later
  /// affinity-scored tasks find coarse-grained locality.
  int rr_chunk = 8;
  /// Injected network fault schedule (empty: fault-free run).
  simnet::FaultPlan faults;
  /// Failure detection/recovery knobs (see resilience/resilience.hpp).
  ResilienceConfig resilience;
  /// Protocol event tap for simcheck's reference model (docs/simcheck.md).
  /// Must outlive the runtime; null disables all probe calls.
  verify::ProtocolProbe* probe = nullptr;
  /// One-shot protocol fault seeds for mutation-detection tests.
  verify::ProtocolMutation mutation;
};

class ClusterRuntime {
public:
  ClusterRuntime(vt::Clock& clock, ClusterConfig cfg);
  ~ClusterRuntime();

  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  /// Spawns a task into the master's (cluster-wide) dependency domain.
  Task* spawn(TaskDesc desc);

  /// Waits for every spawned task; with `flush`, additionally pulls all
  /// remotely produced data back to master memory.
  void taskwait(bool flush = true);

  /// The paper's `taskwait on(...)` at cluster scope: waits only for the
  /// producers of `r`, pulls that region home, and flushes it off master
  /// GPUs — other tasks keep running.
  void taskwait_on(const common::Region& r);

  vt::Clock& clock() { return clock_; }
  simnet::Network& network() { return *net_; }
  Runtime& node_runtime(int node) { return *nodes_.at(static_cast<std::size_t>(node)).rt; }
  int node_count() const { return cfg_.nodes; }
  common::Stats& stats() { return stats_; }
  const ClusterConfig& config() const { return cfg_; }

  // Active-message handler ids.  Public so protocol-level tooling (simcheck's
  // message classifier, wire-trace decoders) can name what it sees on the
  // fabric; application code has no reason to touch these.
  enum Handler : int {
    kNewTask = 0,
    kTaskDone = 1,
    kForward = 2,    // master -> holder: put region to a third node
    kStageDone = 3,  // destination -> master: a staged region landed
    kPull = 4,       // master -> holder: put region back to master memory
    kPing = 5,       // master -> slave: liveness probe (lease renewal)
    kPong = 6,       // slave -> master: probe reply
    kTaskRecv = 7,   // slave -> master: NEW_TASK received (stops retransmits)
    kDoneAck = 8,    // master -> slave: TASK_DONE committed (stops resends)
    // -- sharded-directory protocol (dir_sharding on) ------------------------
    kDirCommit = 9,   // exec node -> home: commit a task's writes to the shard
    kDoneVouch = 10,  // home -> master: a region's commit is in the directory
    kStageReq = 11,   // master -> home: resolve a transfer source and forward
    // -- early dependency release (early_release on) -------------------------
    kEarlyCommit = 12,  // exec node -> home: a running task released a write
    kEarlyVouch = 13,   // home -> master: early commit applied, release arcs
  };

  /// The completion ticket carried by a kNewTask/kDirCommit payload (which is
  /// a RemoteTaskInfo pointer — see try_send_locked).  For simcheck's message
  /// classifier: the pointed-to info lives in the runtime's append-only pool,
  /// so the read is valid any time during the run.
  static std::uint64_t payload_ticket(const void* payload, std::size_t bytes);

private:
  struct NodeDirEntry {
    common::Region region;           // master-side identity
    unsigned version = 0;            // bumped on every task write
    std::set<int> valid{0};          // nodes holding the current version
    std::map<int, void*> addr;       // node -> local address of the copy
    std::map<int, double> staging_to;  // in-flight transfer destinations -> issue time
    /// Source node each in-flight transfer reads from (dst -> src).  A kill
    /// silently swallows transfers sourced from the dead node; on_node_failure
    /// re-issues exactly those from surviving holders — no timers involved.
    std::map<int, int> stage_src;
    /// Destinations waiting for an in-flight copy of this region to land so
    /// they can source from it (tree fan-out instead of serializing on one
    /// holder); only used with slave-to-slave transfers enabled.
    std::vector<int> deferred;

    // -- resilience state (see docs/resilience.md) ---------------------------
    /// Version held by the region's home copy in master memory.  The
    /// invariant version == master_version + redo_log.size() always holds:
    /// the redo log lists, in commit order, the producers of every version
    /// since the home copy was last current, each with the (region, version)
    /// pairs it read — enough to replay the chain from the stale home copy
    /// if all live copies die, and to detect when replay would be unsound.
    unsigned master_version = 0;
    struct Redo {
      Task* task = nullptr;
      std::vector<std::pair<common::Region, unsigned>> inputs;
    };
    std::vector<Redo> redo_log;
    bool lost = false;        ///< no live copy and regeneration impossible
    bool recovering = false;  ///< a regeneration chain is replaying
    std::deque<Task*> pending_regens;   ///< chain tasks not yet re-committed
    /// Stagings deferred while the region regenerates; run once recovered
    /// (they re-enter stage_region and fail cleanly if recovery gave up).
    std::vector<std::function<void()>> recovery_waiters;
    std::map<int, int> stage_retries;   ///< dst node -> transfer re-issues
    double recover_started = 0;
  };

  struct RemoteAccess {
    common::Region master_region;
    void* local_addr = nullptr;
    AccessMode mode = AccessMode::kIn;
    bool copy = true;
    bool freshly_staged = false;
  };
  /// Message body of kNewTask (same-process shortcut: a real implementation
  /// would serialize a task-table index the way Mercurium emits one).
  struct RemoteTaskInfo {
    std::uint64_t ticket = 0;
    Task* master_task = nullptr;
    std::vector<RemoteAccess> accesses;
    double dispatched_at = 0;  // staging began
    double sent_at = 0;        // NEW_TASK left the master
    int target_node = -1;
    bool regen = false;        // replaying a lost region's redo log
    common::Region regen_region;  // the region being regenerated
    bool recv_acked = false;   // slave acknowledged NEW_TASK receipt
    int send_attempts = 0;
    double last_send = 0;

    // -- sharded-directory completion (dir_sharding on) ----------------------
    /// Distinct regions this task writes; completion is gated on one home
    /// vouch per region, closing the stale-directory race where a successor
    /// stages before the home applied the commit.
    int expected_writes = 0;
    /// Region starts whose commit a home already applied (mu_ held).  Shared
    /// between homes through master memory, this makes re-sent commits —
    /// including ones re-routed after a home's shard was re-homed —
    /// exactly-once without a wire-level dedup table.
    std::set<std::uintptr_t> committed;
    std::set<std::uintptr_t> vouched;  ///< master side: homes heard from
  };

  struct NodeState {
    std::unique_ptr<Runtime> rt;
    std::unique_ptr<char[]> segment;                   // slaves only
    std::unique_ptr<common::FirstFitAllocator> segalloc;  // master-side bookkeeping
    std::deque<Task*> queue;  // ready tasks placed on this node (remote only)
    /// Dispatch pipeline: tasks whose data is being staged (or that await a
    /// send slot), and tasks sent but not yet reported done.  Staging runs
    /// ahead of execution — that is what presend buys (paper §III-D1) — while
    /// the send window (1 + presend) bounds what the slave holds queued.
    int preparing = 0;
    int sent = 0;
    std::deque<RemoteTaskInfo*> ready_to_send;
    /// Slave-side service thread running forwarded-transfer work (region
    /// flush + put) off the RX thread, which must stay responsive.
    std::unique_ptr<vt::Thread> comm_worker;
    std::deque<std::function<void()>> comm_jobs;  // guarded by owner's mu_

    // -- resilience state ----------------------------------------------------
    bool dead = false;  ///< declared dead by the failure detector (permanent)
    /// Slave-side NEW_TASK dedup: tickets already spawned, so a retransmitted
    /// NEW_TASK (ack lost) does not execute the task twice.
    std::set<std::uint64_t> seen_tickets;
    /// Slave-side completions not yet acknowledged by the master, keyed by
    /// ticket; the stored closure re-sends them when pinged (piggyback
    /// retransmission).  Only entries stale past the ack timeout are
    /// replayed — an entry merely awaiting its ack round trip must not be
    /// re-sent, or every ping multiplies in-flight commit traffic.
    /// Re-sends recompute region home nodes at send time, so commits reach
    /// a re-homed shard after its original home died.
    struct UnackedDone {
      std::function<void()> send;
      double sent_at = 0;  // virtual time of the last transmission
      int attempts = 0;    // resend count, drives exponential backoff
    };
    std::map<std::uint64_t, UnackedDone> unacked_done;

    /// Master-side vectored DONE_ACK buffer: completion tickets awaiting the
    /// ack flush to this node.  Tickets accumulate across the coalescing
    /// window and travel as one count-prefixed batch instead of one
    /// DONE_ACK wire message each (guarded by mu_).
    std::vector<std::uint64_t> ack_pending;
    double ack_deadline = 0;  ///< flush due time while ack_pending non-empty
  };

  // -- master-side logic -----------------------------------------------------
  void on_ready(Task* t, Task* releaser);
  int place_node(Task* t, Task* releaser);
  void comm_loop();
  /// Starts staging + dispatch of `t` on remote `node`; asynchronous.  With
  /// `regen`, the task is a redo-log replay of `regen_region` (bypasses that
  /// region's recovery deferral; no dependency-domain completion).
  void dispatch_remote(Task* t, int node, bool regen = false,
                       common::Region regen_region = {});
  /// Master-local dispatch: pulls any remotely held inputs home first, then
  /// hands the task to node 0's scheduler.
  void dispatch_local(Task* t, int releaser_resource);
  /// Ensures `node` eventually holds the current version of `region`.
  /// `done(ok)` fires (from an AM handler) once it does — or with ok=false
  /// when the region is lost or the transfer gave up.  mu_ must be held; the
  /// returned action — wire operations that must not run under the lock —
  /// is to be invoked by the caller after releasing mu_ (may be null when
  /// an in-flight transfer was joined or the staging was deferred).
  /// `for_recovery` bypasses the recovering-region deferral (used by the
  /// regeneration chain itself, which stages the stale home base copy).
  std::function<void()> stage_region_locked(const common::Region& region, int node,
                                            std::function<void(bool)> done,
                                            bool for_recovery = false);
  /// Lock-taking wrapper around stage_region_locked that also runs the wire
  /// action; used by deferred/retried stagings re-entering from callbacks.
  void stage_region_async(const common::Region& region, int node,
                          std::function<void(bool)> done, bool for_recovery = false);
  /// Builds the wire operation that moves `region` to `node` from wherever a
  /// current copy lives.  mu_ held; the returned action runs without it.
  std::function<void()> make_wire_action_locked(NodeDirEntry& e, const common::Region& region,
                                                int node);
  /// The resolving half of make_wire_action: picks a source holder from the
  /// directory entry and builds the wire operation.  `from` is the node doing
  /// the resolution (the region's home with sharding, the master otherwise):
  /// forwards leave its endpoint and stage acks return to it.
  std::function<void()> wire_action_resolved_locked(NodeDirEntry& e,
                                                    const common::Region& region, int node,
                                                    int from);
  void* node_addr_locked(NodeDirEntry& e, int node);
  /// Home node owning `start`'s directory shard: hash with linear probing
  /// that skips dead nodes.  Death is permanent and monotonic, so the answer
  /// only ever moves forward — and node 0 never dies, so it terminates.
  /// Always 0 without sharding.
  int home_node_locked(std::uintptr_t start) const;
  common::IntervalMap<NodeDirEntry>& shard_locked(std::uintptr_t start) {
    return dir_[static_cast<std::size_t>(home_node_locked(start))];
  }
  NodeDirEntry* dir_find_locked(std::uintptr_t start) {
    auto& shard = shard_locked(start);
    auto it = shard.find(start);
    return it == shard.end() ? nullptr : &it->second.value;
  }
  NodeDirEntry& dir_lookup_locked(const common::Region& r);
  void record_write_locked(const common::Region& r, int node, Task* producer = nullptr);
  /// Region became valid on `node`: updates the directory and collects the
  /// staged-waiter callbacks and re-issued deferred transfers into `out`
  /// (run them after releasing mu_).
  void staged_locked(const common::Region& r, int node, std::vector<std::function<void()>>& out);

  // -- handlers (registered per node; run on that node's RX thread) ----------
  void handle_new_task(int node, const RemoteTaskInfo* info);
  void handle_task_done(int src, std::uint64_t ticket);
  void handle_forward(int self, int src, const void* payload, std::size_t bytes);
  void handle_pull(int self, const void* payload, std::size_t bytes);
  /// Home-node side of a task commit: applies every written region homed on
  /// `self` to the local shard, then vouches each to the master.
  void handle_dir_commit(int self, int src, const RemoteTaskInfo* info);
  /// Master side of a home's vouch: completes the ticket once every written
  /// region has been vouched for by its home.
  void handle_done_vouch(std::uint64_t ticket, std::uintptr_t start, int exec_node);
  /// Home-node side of a staging request: resolve the transfer source from
  /// the local shard and issue the forward/put.
  void handle_stage_req(int self, const void* payload, std::size_t bytes);
  /// Home-node side of an early release: applies the region's version bump
  /// now (the running producer declared the bytes final) — exactly-once
  /// against the final DIR_COMMIT via the shared `committed` set — then
  /// vouches to the master with kEarlyVouch.  Never completes the ticket.
  void handle_early_commit(int self, const void* payload, std::size_t bytes);
  /// Master side of an early vouch: releases the region's dependence arcs in
  /// the master domain.  Deliberately does NOT touch the ticket's `vouched`
  /// set — completion stays gated on the end-of-task vouches, so a ticket can
  /// never retire while its task body is still running.
  void handle_early_vouch(const void* payload, std::size_t bytes);

  // -- resilience (implemented in resilience/recovery.cpp) -------------------
  friend class ResilienceManager;
  bool node_alive_locked(int node) const {
    return !nodes_[static_cast<std::size_t>(node)].dead;
  }
  /// Pings every live slave (resilience monitor thread; no lock held).
  void send_pings();
  /// Lease expired on `node`: purge its work and directory presence, then
  /// retry tasks / regenerate lost regions (mode retry) or fail them with a
  /// recorded error (mode off).  Idempotent; a node never rejoins.
  void on_node_failure(int node);
  /// Periodic retransmit scan: re-issues timed-out region transfers and
  /// unacknowledged NEW_TASK sends (bounded; fails the work past the bound).
  void monitor_tick();
  /// Re-places a task that lost its node (bounded by max_task_retries).
  void retry_or_fail_task(Task* t);
  /// Rebuilds `e` by replaying its redo log from the master's stale home
  /// copy; falls back to mark_lost_locked when the replay would be unsound.
  void schedule_recovery_locked(NodeDirEntry& e, std::vector<std::function<void()>>& actions);
  /// Dispatches the next pending regeneration (or completes the recovery).
  void advance_recovery_locked(NodeDirEntry& e, std::vector<std::function<void()>>& actions);
  int pick_regen_node_locked();
  /// Marks `e` permanently lost: records a master error and fails every
  /// waiter so dependents surface the error instead of hanging.
  void mark_lost_locked(NodeDirEntry& e, std::vector<std::function<void()>>& actions);
  // -- taskcheck (implemented in verify/coherence_check.cpp) -----------------
  /// Walks the node-level directory asserting the cluster coherence
  /// invariants (redo-log accounting, live holders, transfer bookkeeping);
  /// with `flushed`, additionally checks master-directory/slave-cache
  /// agreement against node 0's coherence manager.  Violations are recorded
  /// as master task errors (surfaced by the enclosing taskwait).
  void verify_invariants(const char* where, bool flushed);

  /// Fails the in-flight staging of `e` to `node`: waiters fire with
  /// ok=false, deferred destinations re-issue from surviving holders.
  void fail_staging_locked(NodeDirEntry& e, int node, std::vector<std::function<void()>>& out);
  void fail_staging_async(const common::Region& region, int node);
  /// Records a master-side error for `t`; the caller completes it in the
  /// dependency domain after releasing mu_.
  void fail_task_locked(Task* t, const std::string& why, std::vector<Task*>& to_complete);
  /// A dispatch whose staging failed: releases its window slot and fails the
  /// task (or gives up on the recovery chain it belonged to).
  void abort_dispatch(RemoteTaskInfo* info);

  /// Sends queued ready-to-send tasks to `node` while its send window
  /// (1 + presend) has room.  mu_ held.
  void try_send_locked(int node);
  // -- vectored DONE_ACKs ----------------------------------------------------
  /// Buffers `ticket` for the next vectored DONE_ACK to `node`; flushes
  /// immediately when the batch fills or coalescing is disabled.  mu_ held.
  void queue_done_ack_locked(int node, std::uint64_t ticket);
  /// Sends `node`'s buffered ack tickets as one batch.  mu_ held.
  void flush_done_acks_locked(int node);
  /// Earliest pending ack-flush deadline, or a negative value when no acks
  /// are buffered.  mu_ held.
  double next_ack_deadline_locked() const;
  // -- rack-aware placement (non-flat topology + rack_aware) -----------------
  /// Pins `start`'s directory home into `writer_node`'s rack, if the region
  /// has no directory entry yet (a pin cannot move an already-homed shard
  /// entry).  mu_ held.
  void pin_home_locked(std::uintptr_t start, int writer_node);
  /// Enqueues slave-side transfer work on `node`'s comm worker.
  void post_comm_job(int node, std::function<void()> job);
  void comm_worker_loop(int node);

  vt::Clock& clock_;
  ClusterConfig cfg_;
  common::Stats stats_;
  std::unique_ptr<simnet::Network> net_;
  std::vector<NodeState> nodes_;
  /// Cluster-wide race oracle over the master domain's schedule (tasks carry
  /// user addresses there, so remote observe() annotations compose).  Must
  /// outlive domain_, which holds a raw pointer to it.
  std::unique_ptr<verify::RaceOracle> oracle_;
  std::unique_ptr<DependencyDomain> domain_;
  verify::VerifyMode verify_mode_ = verify::VerifyMode::kOff;
  std::map<std::uintptr_t, unsigned> verify_versions_;  // mu_ held
  /// Replay-token ingredients (docs/verifier.md): the canonical-config digest
  /// is fixed at construction; the schedule hash evolves (mu_ held) with each
  /// committed TASK_DONE, fingerprinting the interleaving that was executed.
  std::uint64_t config_digest_ = 0;
  std::uint64_t verify_sched_hash_ = 0;  // mu_ held

  std::mutex mu_;
  vt::Monitor comm_mon_;
  vt::Monitor worker_mon_;
  /// Node-level data directory, interval-indexed so lookups don't degrade as
  /// the region count grows (same structure as the node-local directories).
  /// With dir_sharding the directory is physically split into one shard per
  /// node, owned by home_node_locked() hashing — commits and transfer
  /// resolution for a shard run on its home node's RX thread, so the master
  /// NIC carries none of that traffic.  All shards stay guarded by mu_ (the
  /// simulation shares one address space; routing, not locking, is what the
  /// decentralization changes).  One shard when sharding is off.
  std::vector<common::IntervalMap<NodeDirEntry>> dir_;
  bool sharded_ = false;  ///< dir_sharding effective for this configuration
  std::map<std::uint64_t, RemoteTaskInfo*> in_flight_tasks_;  // ticket -> info
  /// Owns every RemoteTaskInfo until shutdown: closures and wire messages
  /// hold raw pointers, and a retired ticket (node death, duplicate DONE)
  /// must never leave one dangling.  Same retention policy as Runtime's
  /// task list.
  std::deque<std::unique_ptr<RemoteTaskInfo>> info_pool_;
  /// (region start, node) -> callbacks to fire when that copy lands (true)
  /// or the transfer failed permanently (false).
  std::multimap<std::pair<std::uintptr_t, int>, std::function<void(bool)>> region_waiters_;
  /// In-flight (region start, dst node) transfers, so the retransmit scan
  /// doesn't walk the whole directory every heartbeat.
  std::set<std::pair<std::uintptr_t, int>> active_stagings_;
  std::uint64_t next_ticket_ = 1;
  int rr_cursor_ = 0;
  std::uint64_t holder_rr_ = 0;  // rotates transfer sources among copy holders
  std::uint64_t tie_rr_ = 0;     // rotates affinity ties within the best rack
  bool rack_local_ = false;      // rack_aware effective (non-flat topology)
  /// Rack-local home pins: region start -> home node chosen in the first
  /// writer's rack.  Consulted by home_node_locked ahead of the hash; falls
  /// back to rack-mates (then the global probe) when the pin target dies.
  std::map<std::uintptr_t, int> home_pin_;
  std::uint64_t regen_rr_ = 0;   // rotates regeneration chains over live slaves
  bool shutdown_ = false;

  // One-shot latches for cfg_.mutation (mu_ held): each seeded fault fires
  // exactly once per runtime, at the first opportunity.
  bool mut_vouch_dropped_ = false;
  bool mut_commit_doubled_ = false;
  bool mut_replay_suppressed_ = false;
  bool mut_done_dropped_ = false;

  std::vector<vt::Thread> comm_threads_;
  /// Declared last: its monitor thread pokes everything above, and is
  /// stopped first in the destructor.
  std::unique_ptr<ResilienceManager> resilience_;
};

}  // namespace nanos
