// Task model of the Nanos++ reimplementation.
//
// A task carries: the body to execute, its data accesses (the paper's
// input/output/inout clauses, optionally with copy semantics via copy_deps),
// the target device kind, and a cost model entry used by the simulated
// platform to price its execution.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/region.hpp"
#include "simcuda/simcuda.hpp"

namespace nanos {

class Runtime;
class Task;

namespace verify {
class RaceOracle;
struct TaskClock;
}

enum class DeviceKind { kSmp, kCuda };

enum class AccessMode { kIn, kOut, kInout };

inline bool reads(AccessMode m) { return m != AccessMode::kOut; }
inline bool writes(AccessMode m) { return m != AccessMode::kIn; }

/// One dependence/copy clause instance on a task.
struct Access {
  common::Region region;
  AccessMode mode = AccessMode::kIn;
  /// copy semantics (the paper's copy_in/copy_out/copy_deps): the coherence
  /// layer must materialize this region in the executing device's address
  /// space.  Dependence-only accesses (copy=false) still order tasks.
  bool copy = true;

  static Access in(const void* p, std::size_t n) { return {{p, n}, AccessMode::kIn, true}; }
  static Access out(void* p, std::size_t n) { return {{p, n}, AccessMode::kOut, true}; }
  static Access inout(void* p, std::size_t n) { return {{p, n}, AccessMode::kInout, true}; }
};

/// Handed to the task body at execution time.
class TaskContext {
public:
  TaskContext(Runtime& rt, Task& task, std::vector<void*> translated, simcuda::Device* device,
              simcuda::Stream* stream, int node)
      : rt_(rt), task_(task), translated_(std::move(translated)), device_(device),
        stream_(stream), node_(node) {}

  /// Pointer for access `i`, translated into the executing device's address
  /// space (device memory for CUDA tasks, the original host pointer for SMP).
  void* data(std::size_t i) const { return translated_.at(i); }
  template <typename T>
  T* data_as(std::size_t i) const {
    return static_cast<T*>(data(i));
  }

  Runtime& runtime() { return rt_; }
  Task& task() { return task_; }

  /// taskcheck annotation (sanitizer-style): declares that the body really
  /// touches `n` bytes at `p` with `mode` — including bytes *not* named in
  /// any clause, which is exactly what the race oracle needs to catch an
  /// under-declared dependence.  `p` is a master/user address (pass the
  /// original pointer, not a device-translated one).  No-op when `verify`
  /// is off; routed to the master oracle for cluster-remote bodies.
  void observe(const void* p, std::size_t n, AccessMode mode);
  /// Early dependency release: the body is done with every byte of
  /// [p, p+n) — it will not read or write them again.  Declared accesses
  /// fully covered by the range are committed (the written data becomes
  /// visible to successors) and their dependence arcs released immediately,
  /// instead of at task end.  No-op when the `early_release` config key is
  /// off, for CUDA tasks (the simulated kernel's cost model owns their
  /// completion time), and for ranges covering no declared access.
  /// Releasing bytes the body then touches again is a program error — with
  /// `verify` armed the race oracle flags exactly that.
  void release(const void* p, std::size_t n);
  /// Executing GPU, or nullptr for SMP tasks.
  simcuda::Device* device() const { return device_; }
  simcuda::Stream* stream() const { return stream_; }
  /// Cluster node executing the task (0 on a single node).
  int node() const { return node_; }

private:
  Runtime& rt_;
  Task& task_;
  std::vector<void*> translated_;
  simcuda::Device* device_;
  simcuda::Stream* stream_;
  int node_;
};

using TaskFn = std::function<void(TaskContext&)>;

/// Everything needed to create a task (what Mercurium would assemble from the
/// pragmas; what the ompss:: API builder assembles for the user).
struct TaskDesc {
  TaskFn fn;
  std::vector<Access> accesses;
  DeviceKind device = DeviceKind::kSmp;
  /// Work volume: drives the kernel duration for CUDA tasks and the modelled
  /// compute time for SMP tasks.
  simcuda::KernelCost cost;
  std::string label = "task";
  /// Invoked on the executing node right before the task is reported complete
  /// to its dependency domain.  The cluster layer uses it to update the
  /// node-level directory and to send TASK_DONE for remotely executed tasks.
  std::function<void()> completion_cb;
  /// taskcheck: for cluster proxy tasks, the master-side Task this proxy
  /// executes.  TaskContext::observe() reports against the alias (with
  /// master/user addresses) so remote bodies feed the master's race oracle.
  Task* verify_alias = nullptr;
  /// Cluster hook for TaskContext::release(): invoked (on the executing
  /// node) after the local commit, once per *freshly released access* with
  /// that access's exact region — never per released range, so overlapping
  /// release calls commit each access exactly once.  The cluster layer uses
  /// it to commit the bytes in the node directory and vouch them to the
  /// master ahead of task completion.
  std::function<void(const common::Region&)> release_cb;
};

class DependencyDomain;

namespace detail {
struct DepRecord;  // dependency-directory record (defined in dep.hpp)
}

/// Back-reference from a task to one dependency-directory record it appears
/// in, so completion can detach the task in O(1) instead of purging the whole
/// directory.  `index` is the task's slot in the record's readers list (or
/// kWriterRef when the task is the record's last writer); `epoch` matches the
/// record's reader epoch at registration time — a bumped epoch means the
/// readers list was bulk-cleared by a later writer and the reference is
/// stale.
struct DepRef {
  detail::DepRecord* rec = nullptr;
  std::uint64_t epoch = 0;
  std::uint32_t index = 0;
  static constexpr std::uint32_t kWriterRef = 0xffffffffu;
};

/// One dependence arc hanging off a predecessor, tagged with the directory
/// region whose conflict created it.  Early release walks a finishing
/// producer's arcs and releases exactly those whose region the released
/// range covers; task completion releases whatever remains.
struct DepArc {
  Task* succ = nullptr;
  common::Region region;
};

/// Runtime-internal task state.  Users interact through TaskDesc / ompss::.
class Task {
public:
  // Out of line: child_domain's type is incomplete at this point.
  Task(std::uint64_t id, TaskDesc desc, vt::Clock& clock);
  ~Task();

  std::uint64_t id() const { return id_; }
  const TaskDesc& desc() const { return desc_; }
  TaskDesc& mutable_desc() { return desc_; }
  const std::vector<Access>& accesses() const { return desc_.accesses; }
  DeviceKind device() const { return desc_.device; }
  const std::string& label() const { return desc_.label; }

  vt::Flag& done_flag() { return done_; }

  // -- dependency-graph state (owned by DependencyDomain) -------------------
  std::vector<DepArc> successors;
  std::size_t pending_preds = 0;
  std::vector<DepRef> dep_refs;  ///< directory records this task appears in
  DependencyDomain* domain = nullptr;
  bool submitted_to_sched = false;
  /// Bitmask of declared-access indices the body released early via
  /// TaskContext::release() (accesses beyond 64 never release early).  The
  /// end-of-task paths — coherence release, cluster commit, retry — skip the
  /// masked accesses: their data was already committed and their arcs
  /// dropped, and a successor may have overwritten the bytes since.
  std::atomic<std::uint64_t> released_mask{0};

  // -- scheduling state ------------------------------------------------------
  /// Resource the task ran on; -1 until placed.
  int resource = -1;
  /// Cluster node chosen by the master's scheduler; 0 = local.
  int target_node = 0;
  /// Times this task was re-placed after a node failure (resilience=retry).
  int retries = 0;

  /// Lazily created domain for this task's children (nested parallelism).
  std::unique_ptr<DependencyDomain> child_domain;

  /// Race oracle tracking this task (set by the oracle's spawn hook; null
  /// when `verify` is off).  Lets observe() route in O(1).
  verify::RaceOracle* race_oracle = nullptr;
  /// That oracle's clock record for this task (same lifetime as the oracle);
  /// saves a map lookup on every schedule hook.
  verify::TaskClock* vclock = nullptr;

private:
  std::uint64_t id_;
  TaskDesc desc_;
  vt::Flag done_;
};

}  // namespace nanos
