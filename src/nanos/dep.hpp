// Dependency layer: builds the task DAG from input/output/inout clauses.
//
// Arcs are created for read-after-write, write-after-read and
// write-after-write pairs (paper §III-C1).  The OmpSs model only connects
// *sibling* tasks: each parent task owns a DependencyDomain for its children,
// which is what makes the graph hierarchical and distributable.
//
// Region matching is conservative: any byte overlap creates a dependence.
// (The paper's implementation does not support *partial* overlap semantics;
// distinct-but-overlapping regions are therefore ordered, never split.)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "nanos/task.hpp"
#include "vt/sync.hpp"

namespace nanos {

/// Called when a task has no unsatisfied predecessors left and can be handed
/// to the scheduler.  `releaser` is the just-finished predecessor (nullptr
/// when the task was ready at submission) — the "dependencies" scheduling
/// policy uses it to run successors on the releasing resource.
using ReadyCallback = std::function<void(Task*, Task* releaser)>;

class DependencyDomain {
public:
  DependencyDomain(vt::Clock& clock, ReadyCallback on_ready)
      : clock_(clock), live_(clock), on_ready_(std::move(on_ready)) {}

  /// Adds `t` to the graph.  If all its predecessors already completed the
  /// ready callback fires inside this call.
  void submit(Task* t);

  /// Marks `t` complete; releases successors (firing ready callbacks for
  /// those whose last predecessor this was).
  void on_complete(Task* t);

  /// Blocks until every task submitted so far has completed (taskwait).
  void wait_all();

  /// Blocks until the data produced into `r` (by the last writer submitted so
  /// far) is available — the paper's `taskwait on(...)`.
  void wait_on(const common::Region& r);

  std::size_t live_tasks() const { return live_.pending(); }

private:
  struct RegionRecord {
    common::Region region;
    Task* last_writer = nullptr;
    std::vector<Task*> readers_since_write;
  };

  // Adds an arc pred -> succ unless pred already completed. mu_ held.
  void add_arc_locked(Task* pred, Task* succ);
  // All records overlapping r.  mu_ held.
  std::vector<RegionRecord*> overlapping_locked(const common::Region& r);

  vt::Clock& clock_;
  std::mutex mu_;
  vt::CountLatch live_;
  ReadyCallback on_ready_;
  std::map<std::uintptr_t, RegionRecord> records_;  // keyed by region start
  std::map<Task*, bool> completed_;                 // live graph nodes -> done?
};

}  // namespace nanos
