// Dependency layer: builds the task DAG from input/output/inout clauses.
//
// Arcs are created for read-after-write, write-after-read and
// write-after-write pairs (paper §III-C1).  The OmpSs model only connects
// *sibling* tasks: each parent task owns a DependencyDomain for its children,
// which is what makes the graph hierarchical and distributable.
//
// Region matching is conservative: any byte overlap creates a dependence.
// (The paper's implementation does not support *partial* overlap semantics;
// distinct-but-overlapping regions are therefore ordered, never split.)
//
// Scaling: the region directory is an interval index (common::IntervalMap),
// so finding the records overlapping an access is O(log n + k) rather than a
// walk over every earlier record; and each task keeps back-references
// (Task::dep_refs) to the records it appears in, so completion detaches it
// in O(refs) instead of purging the whole directory.  Both paths export
// scan counters — per-task work staying O(1) as the graph grows is what the
// over01_taskbench benchmark asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/interval_map.hpp"
#include "common/stats.hpp"
#include "nanos/task.hpp"
#include "vt/sync.hpp"

namespace nanos {

namespace verify {
class RaceOracle;
}

namespace detail {

/// Directory record for one clause region: the task that last wrote it and
/// the readers admitted since.  `reader_epoch` is bumped whenever the readers
/// list is bulk-cleared by a new writer, lazily invalidating the cleared
/// readers' back-references (see DepRef).
struct DepRecord {
  Task* last_writer = nullptr;
  std::vector<Task*> readers_since_write;
  std::uint64_t reader_epoch = 0;
  /// The directory region this record indexes (mirrors the interval-map
  /// entry, which back-references cannot reach).  Arcs created against the
  /// record are tagged with it, and early release matches released ranges
  /// against it.
  common::Region region;
};

}  // namespace detail

/// Called when a task has no unsatisfied predecessors left and can be handed
/// to the scheduler.  `releaser` is the just-finished predecessor (nullptr
/// when the task was ready at submission) — the "dependencies" scheduling
/// policy uses it to run successors on the releasing resource.
using ReadyCallback = std::function<void(Task*, Task* releaser)>;

class DependencyDomain {
public:
  /// `stats` (optional): receives the directory counters ("dep.lookups",
  /// "dep.records_scanned", "dep.arcs") on wait_all() and destruction.
  DependencyDomain(vt::Clock& clock, ReadyCallback on_ready, common::Stats* stats = nullptr)
      : clock_(clock), live_(clock), on_ready_(std::move(on_ready)), stats_(stats) {}
  ~DependencyDomain();

  /// Adds `t` to the graph.  If all its predecessors already completed the
  /// ready callback fires inside this call.
  void submit(Task* t);

  /// Marks `t` complete; releases successors (firing ready callbacks for
  /// those whose last predecessor this was).
  void on_complete(Task* t);

  /// Early (per-access) release: `t`'s still-running body is done with every
  /// byte of `r`.  Releases the arcs whose directory region `r` covers and
  /// detaches `t` from the covered records (so later submits stop ordering
  /// against it there), firing ready callbacks exactly like on_complete —
  /// but `t` itself stays live, and arcs over uncovered regions stay put
  /// until completion.  The caller must have committed the region's data
  /// first: a released successor may run (and overwrite the bytes)
  /// immediately.
  void release_region(Task* t, const common::Region& r);

  /// Blocks until every task submitted so far has completed (taskwait).
  void wait_all();

  /// Blocks until the data produced into `r` (by the last writer submitted so
  /// far) is available — the paper's `taskwait on(...)`.
  void wait_on(const common::Region& r);

  std::size_t live_tasks() const { return live_.pending(); }

  /// taskcheck: mirrors this domain's schedule events (spawn, arcs, ready,
  /// completion, taskwaits) into `oracle` so it can independently re-derive
  /// the happens-before order.  Call before the first submit().
  void set_race_oracle(verify::RaceOracle* oracle) { oracle_ = oracle; }
  verify::RaceOracle* race_oracle() const { return oracle_; }

  // Directory hot-path counters (cumulative; for tests and diagnostics).
  std::uint64_t lookups() const;          ///< overlap queries issued
  std::uint64_t records_scanned() const;  ///< directory records visited by them

private:
  // Adds an arc pred -> succ over `region` unless pred already completed.
  // mu_ held.
  void add_arc_locked(Task* pred, Task* succ, const common::Region& region);
  // Makes `t` the last writer of `rec`, clearing prior readers. mu_ held.
  void become_writer_locked(detail::DepRecord& rec, Task* t);
  // Detaches one back-reference of `t` (by value: the repair step may mutate
  // entries of t->dep_refs, which the caller is iterating). mu_ held.
  void drop_ref_locked(Task* t, DepRef ref);
  // Flushes counter deltas into stats_. mu_ held.
  void publish_stats_locked();

  vt::Clock& clock_;
  mutable std::mutex mu_;
  vt::CountLatch live_;
  ReadyCallback on_ready_;
  common::Stats* stats_;
  verify::RaceOracle* oracle_ = nullptr;
  common::IntervalMap<detail::DepRecord> records_;
  std::vector<detail::DepRecord*> overlap_scratch_;  // reused per submit; mu_ held

  // Hot-path counters; deltas are published to stats_ at wait points.
  std::uint64_t lookups_ = 0;
  std::uint64_t scanned_ = 0;
  std::uint64_t arcs_ = 0;
  std::uint64_t published_lookups_ = 0;
  std::uint64_t published_scanned_ = 0;
  std::uint64_t published_arcs_ = 0;
};

}  // namespace nanos
