#include "nanos/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

#include "common/log.hpp"
#include "nanos/wire.hpp"

namespace nanos {

// Wire-message layouts live in nanos/wire.hpp (shared with protocol tooling).
using namespace wire;

namespace {

// splitmix64-style mixer decorrelating region starts (which share alignment
// bits) across home nodes.
std::uint64_t mix_home(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Canonical rendering of every configuration knob that shapes the executed
// schedule, digested into the replay token (docs/verifier.md).  Key order is
// fixed; add new schedule-relevant knobs here when they grow.
std::string canonical_config(const ClusterConfig& c) {
  std::ostringstream os;
  os << "nodes=" << c.nodes << ";presend=" << c.presend << ";s2s=" << c.slave_to_slave
     << ";shard=" << c.dir_sharding << ";comm=" << c.comm_threads
     << ";sched=" << c.node_scheduler << ";rr=" << c.rr_chunk << ";rack=" << c.rack_aware
     << ";bw=" << c.link.bandwidth << ";lat=" << c.link.latency
     << ";ovh=" << c.link.am_overhead << ";coal=" << c.link.coalesce_window
     << ";er=" << c.node.early_release
     << ";verify=" << c.node.verify << ";sample=" << c.node.verify_sample
     << ";hb=" << c.resilience.heartbeat_period << ";lease=" << c.resilience.node_lease;
  return os.str();
}

}  // namespace

ClusterRuntime::ClusterRuntime(vt::Clock& clock, ClusterConfig cfg)
    : clock_(clock), cfg_(std::move(cfg)), comm_mon_(clock), worker_mon_(clock) {
  net_ = std::make_unique<simnet::Network>(clock_, cfg_.nodes, cfg_.link, cfg_.topology);
  if (!cfg_.faults.empty()) net_->set_fault_plan(cfg_.faults);
  // Distance-aware policies only engage on a real two-tier fabric; on a flat
  // network every pair is one hop and there is nothing to prefer.
  rack_local_ = cfg_.rack_aware && !net_->topology().flat();
  // Sharded ownership needs peer transfers; the MtoS relay keeps the legacy
  // centralized directory.
  sharded_ = cfg_.dir_sharding && cfg_.slave_to_slave && cfg_.nodes > 1;
  dir_.resize(static_cast<std::size_t>(sharded_ ? cfg_.nodes : 1));

  vt::Hold hold(clock_);
  nodes_.resize(static_cast<std::size_t>(cfg_.nodes));
  for (int i = 0; i < cfg_.nodes; ++i) {
    NodeState& ns = nodes_[static_cast<std::size_t>(i)];
    RuntimeConfig node_cfg = cfg_.node;
    node_cfg.node_id = i;
    // One trace file per runtime image (master and each slave).
    if (!node_cfg.trace_path.empty()) node_cfg.trace_path += ".node" + std::to_string(i);
    ns.rt = std::make_unique<Runtime>(clock_, std::move(node_cfg));
    if (i > 0) {
      ns.segment.reset(new char[cfg_.segment_bytes]);
      ns.segalloc = std::make_unique<common::FirstFitAllocator>(cfg_.segment_bytes);
      ns.comm_worker = std::make_unique<vt::Thread>(
          clock_, "node" + std::to_string(i) + ".comm",
          [this, i] { comm_worker_loop(i); }, /*service=*/true);
    }
  }

  // Handler registration.  Slave-side handlers run on each node's RX thread
  // (GASNet style); master-side handlers on node 0's RX thread.  With
  // dir_sharding, every node additionally serves the shard it homes:
  // commits, staging requests and stage acks for those regions arrive here
  // instead of at the master.
  //
  // Every message a slave gets through to the failure detector renews its
  // lease — pongs are just the fallback for quiet phases.  (A slave whose RX
  // thread is busy flushing GPU memory answers pings late but keeps emitting
  // STAGE_DONE / commits; counting only pongs would false-positive it.)
  // Home nodes feed the detector too: liveness the home learns from a commit
  // or stage ack counts, since with sharding that traffic bypasses the
  // master entirely.
  auto alive = [this](int src) {
    if (src > 0 && resilience_) resilience_->on_alive(src);
  };
  for (int i = 1; i < cfg_.nodes; ++i) {
    simnet::Endpoint& ep = net_->endpoint(i);
    ep.register_handler(kNewTask, [this, i](int, const void* p, std::size_t n) {
      handle_new_task(i, read_msg<RemoteTaskInfo*>(p, n));
    });
    ep.register_handler(kForward, [this, i](int src, const void* p, std::size_t n) {
      handle_forward(i, src, p, n);
    });
    ep.register_handler(kPull, [this, i](int, const void* p, std::size_t n) {
      handle_pull(i, p, n);
    });
    ep.register_handler(kPing, [this, i](int, const void*, std::size_t) {
      // Reply, and piggyback unacknowledged completions whose ack is
      // overdue (the original send was lost, or its home died mid-commit;
      // re-sends recompute the home and the commit is idempotent).  A
      // completion still inside its ack round trip is NOT replayed — under
      // bursty loads the unacked set is large and replaying it wholesale
      // multiplies commit traffic several-fold.
      simnet::Network* net = net_.get();
      int self = i;
      net->endpoint(i).am_short(0, kPong, &self, sizeof(self));
      std::vector<std::function<void()>> resend;
      {
        std::lock_guard<std::mutex> lk(mu_);
        const double now = clock_.now();
        const double base = std::max(cfg_.resilience.effective_ack_timeout(),
                                     8.0 * cfg_.link.latency);
        auto& unacked = nodes_[static_cast<std::size_t>(i)].unacked_done;
        for (auto it = unacked.begin(); it != unacked.end();) {
          NodeState::UnackedDone& ud = it->second;
          const int shift = std::min(ud.attempts, 6);
          if (now - ud.sent_at <= base * (1 << shift)) {
            ++it;
            continue;
          }
          if (cfg_.mutation.suppress_first_replay && !mut_replay_suppressed_) {
            // Seeded fault: act as if this overdue completion were replayed
            // while actually erasing it — the DONE is unrecoverable.
            mut_replay_suppressed_ = true;
            stats_.incr("cluster.mutation_replay_suppressed");
            it = unacked.erase(it);
            continue;
          }
          ud.sent_at = now;
          ++ud.attempts;
          stats_.incr("cluster.done_replays");
          resend.push_back(ud.send);
          ++it;
        }
      }
      for (auto& send : resend) send();
    });
    ep.register_handler(kDoneAck, [this, i](int, const void* p, std::size_t n) {
      // One vectored ack retires every listed completion ticket.
      DoneAckMsg msg;
      assert(n >= sizeof(std::uint64_t) && n <= sizeof(msg));
      std::memcpy(&msg, p, n);
      std::lock_guard<std::mutex> lk(mu_);
      auto& unacked = nodes_[static_cast<std::size_t>(i)].unacked_done;
      const std::uint64_t count = std::min<std::uint64_t>(msg.count, kAckVecMax);
      for (std::uint64_t k = 0; k < count; ++k) unacked.erase(msg.tickets[k]);
    });
  }
  // Shard-serving handlers: registered on every node — any node (the master
  // included) homes ~1/N of the regions.
  for (int i = 0; i < cfg_.nodes; ++i) {
    simnet::Endpoint& ep = net_->endpoint(i);
    ep.register_handler(kStageDone, [this, i, alive](int src, const void* p, std::size_t n) {
      alive(src);
      auto msg = read_msg<StageDoneMsg>(p, n);
      std::vector<std::function<void()>> cbs;
      {
        std::lock_guard<std::mutex> lk(mu_);
        staged_locked(common::Region(msg.start, msg.size), msg.node, cbs);
      }
      for (auto& cb : cbs) cb();
      (void)i;
    });
    ep.register_handler(kDirCommit, [this, i, alive](int src, const void* p, std::size_t n) {
      alive(src);
      handle_dir_commit(i, src, read_msg<const RemoteTaskInfo*>(p, n));
    });
    ep.register_handler(kStageReq, [this, i, alive](int src, const void* p, std::size_t n) {
      alive(src);
      handle_stage_req(i, p, n);
    });
    ep.register_handler(kEarlyCommit, [this, i, alive](int src, const void* p, std::size_t n) {
      alive(src);
      handle_early_commit(i, p, n);
    });
  }
  simnet::Endpoint& master = net_->endpoint(0);
  master.register_handler(kTaskDone, [this, alive](int src, const void* p, std::size_t n) {
    alive(src);
    handle_task_done(src, read_msg<std::uint64_t>(p, n));
  });
  master.register_handler(kDoneVouch, [this, alive](int src, const void* p, std::size_t n) {
    alive(src);
    auto msg = read_msg<VouchMsg>(p, n);
    handle_done_vouch(msg.ticket, msg.start, msg.exec_node);
  });
  master.register_handler(kEarlyVouch, [this, alive](int src, const void* p, std::size_t n) {
    alive(src);
    handle_early_vouch(p, n);
  });
  master.register_handler(kPong, [alive](int src, const void*, std::size_t) { alive(src); });
  master.register_handler(kTaskRecv, [this, alive](int src, const void* p, std::size_t n) {
    alive(src);
    auto tk = read_msg<std::uint64_t>(p, n);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(tk);
    if (it != in_flight_tasks_.end()) it->second->recv_acked = true;
  });

  domain_ = std::make_unique<DependencyDomain>(
      clock_, [this](Task* t, Task* releaser) { on_ready(t, releaser); }, &stats_);

  // taskcheck: the cluster-wide race oracle shadows the *master* domain, so
  // it sees every task at user addresses regardless of the executing node.
  // Violations land as master task errors and surface at taskwait.
  verify_mode_ = verify::parse_verify_mode(cfg_.node.verify);
  config_digest_ = verify::fnv1a(canonical_config(cfg_));
  if (verify::races_enabled(verify_mode_)) {
    Runtime* master = nodes_[0].rt.get();
    oracle_ = std::make_unique<verify::RaceOracle>(
        [master](std::exception_ptr e) { master->record_task_error(std::move(e)); }, &stats_,
        static_cast<std::uint64_t>(std::max(1, cfg_.node.verify_sample)));
    oracle_->set_replay_context(config_digest_, cfg_.faults.seed);
    domain_->set_race_oracle(oracle_.get());
  }

  // Cross-rack transits show up on the master's trace as fabric intervals,
  // next to the tasks and NIC transfers they contend with.
  if (TraceRecorder* tr = nodes_[0].rt->trace()) {
    net_->topology().set_trace([tr](int src_rack, int dst_rack, std::size_t bytes,
                                    double begin) {
      tr->record("transfer", "fabric.core",
                 "rack" + std::to_string(src_rack) + "->rack" + std::to_string(dst_rack) +
                     " " + std::to_string(bytes) + "B",
                 begin);
    });
  }

  const int n_comm = cfg_.comm_threads > 0 ? cfg_.comm_threads : 1;
  for (int i = 0; i < n_comm; ++i) {
    comm_threads_.emplace_back(clock_, "comm" + std::to_string(i), [this] { comm_loop(); },
                               /*service=*/true);
  }

  resilience_ = std::make_unique<ResilienceManager>(*this, clock_, cfg_.nodes,
                                                    cfg_.resilience);
  if (cfg_.nodes > 1 && cfg_.resilience.heartbeat_period > 0) resilience_->start();
}

ClusterRuntime::~ClusterRuntime() {
  if (resilience_) resilience_->stop();
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  comm_mon_.notify_all();
  worker_mon_.notify_all();
  for (auto& t : comm_threads_) t.join();
  for (auto& ns : nodes_) {
    if (ns.comm_worker) ns.comm_worker->join();
  }
  // Quiesce the wire before any member dies: heartbeat traffic (unlike app
  // traffic) flows right up to destruction, and an in-flight pong delivered
  // after resilience_ is destroyed would be a use-after-free.
  net_->shutdown();
}

void ClusterRuntime::post_comm_job(int node, std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    nodes_[static_cast<std::size_t>(node)].comm_jobs.push_back(std::move(job));
  }
  worker_mon_.notify_all();
}

void ClusterRuntime::comm_worker_loop(int node) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    worker_mon_.wait(lk, [&] { return shutdown_ || !ns.comm_jobs.empty(); });
    if (shutdown_) return;
    auto job = std::move(ns.comm_jobs.front());
    ns.comm_jobs.pop_front();
    lk.unlock();
    job();
    lk.lock();
  }
}

Task* ClusterRuntime::spawn(TaskDesc desc) {
  Task* t = nodes_[0].rt->allocate_task(std::move(desc));
  t->mutable_desc().completion_cb = [this, t] {
    // Runs on the master node right before dependency completion: record the
    // data this locally executed task wrote as living on node 0.  Accesses
    // the body released early were committed at release time — and a
    // successor may have produced a newer version since — so their bump is
    // skipped here.
    const std::uint64_t early = t->released_mask.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lk(mu_);
    const auto& accesses = t->accesses();
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const Access& a = accesses[i];
      if (i < 64 && (early & (1ull << i)) != 0) continue;
      if (a.copy && writes(a.mode)) {
        // The master is in the directory's address space, so its own tasks
        // commit straight into the owning shard — no wire round-trip.
        record_write_locked(a.region, 0);
        stats_.incr("cluster.dir_ops_local");
      }
    }
  };
  if (cfg_.node.early_release) {
    // Runtime::early_release invokes this once per freshly released access,
    // before the master domain drops the access's arcs: the directory must
    // show the new version before any released successor can stage it.
    t->mutable_desc().release_cb = [this, t](const common::Region& r) {
      std::lock_guard<std::mutex> lk(mu_);
      for (const Access& a : t->accesses()) {
        if (!a.copy || !writes(a.mode) || !(a.region == r)) continue;
        record_write_locked(a.region, 0);
        stats_.incr("cluster.dir_ops_local");
        stats_.incr("cluster.early_commits");
        break;
      }
    };
  }
  stats_.incr("cluster.tasks");
  domain_->submit(t);
  return t;
}

void ClusterRuntime::on_ready(Task* t, Task* releaser) {
  for (;;) {
    int node = place_node(t, releaser);
    t->target_node = node;
    if (node == 0) {
      stats_.incr("cluster.local_tasks");
      int hint = (releaser != nullptr && releaser->target_node == 0) ? releaser->resource : -1;
      dispatch_local(t, hint);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      // The chosen node may have been declared dead between placement and
      // enqueue; its queue was purged, so don't park the task there.
      if (!nodes_[static_cast<std::size_t>(node)].dead) {
        stats_.incr("cluster.remote_tasks");
        nodes_[static_cast<std::size_t>(node)].queue.push_back(t);
        break;
      }
    }
    releaser = nullptr;  // the placement hint pointed at the dead node
  }
  comm_mon_.notify_all();
}

int ClusterRuntime::place_node(Task* t, Task* releaser) {
  if (cfg_.nodes == 1) return 0;
  const std::string& policy = cfg_.node_scheduler;
  if (policy == "dep" && releaser != nullptr) {
    const int n = releaser->target_node;
    std::lock_guard<std::mutex> lk(mu_);
    if (n >= 0 && n < cfg_.nodes && node_alive_locked(n)) return n;
  }
  if (policy == "affinity") {
    std::lock_guard<std::mutex> lk(mu_);
    const simnet::Topology& topo = net_->topology();
    // One directory lookup per access; the entry's holder set fans the score
    // out to every node at once (the old loop re-walked the directory once
    // per candidate node).
    std::vector<double> score(static_cast<std::size_t>(cfg_.nodes), 0.0);
    // Distance weighting: bytes one switch hop away (same rack) earn the
    // holder's whole rack a quarter-weight credit, so near-misses land next
    // to the data instead of across the core — without ever outbidding the
    // holder itself.
    std::vector<double> rack_credit(
        static_cast<std::size_t>(rack_local_ ? topo.racks() : 0), 0.0);
    for (const Access& a : t->accesses()) {
      if (!a.copy) continue;
      const NodeDirEntry* e = dir_find_locked(a.region.start);
      if (e == nullptr || e->version == 0) continue;  // task-untouched data
      // Outputs dominate: chaining onto the producer of the written block
      // keeps accumulations local while inputs stream in.
      const double w = static_cast<double>(a.region.size) * (writes(a.mode) ? 4.0 : 1.0);
      for (int n : e->valid) {
        if (n >= 0 && n < cfg_.nodes && node_alive_locked(n)) {
          score[static_cast<std::size_t>(n)] += w;
          if (rack_local_) rack_credit[static_cast<std::size_t>(topo.rack_of(n))] += 0.25 * w;
        }
      }
    }
    if (rack_local_) {
      for (int n = 0; n < cfg_.nodes; ++n) {
        if (node_alive_locked(n))
          score[static_cast<std::size_t>(n)] +=
              rack_credit[static_cast<std::size_t>(topo.rack_of(n))];
      }
    }
    double best = 0.0;
    int best_node = -1;
    bool tie = false;
    for (int n = 0; n < cfg_.nodes; ++n) {
      const double s = score[static_cast<std::size_t>(n)];
      if (s > best) {
        best = s;
        best_node = n;
        tie = false;
      } else if (s == best && best > 0.0) {
        tie = true;
      }
    }
    if (best_node >= 0 && !tie) return best_node;
    if (rack_local_ && best_node >= 0 && tie) {
      // Rack credit already broke cross-rack symmetry, so the remaining ties
      // sit inside the data's rack (e.g. two equal holders): rotate among
      // them instead of falling back to the global round robin, which would
      // scatter the task far from its inputs.
      std::vector<int> tied;
      for (int n = 0; n < cfg_.nodes; ++n) {
        if (score[static_cast<std::size_t>(n)] == best) tied.push_back(n);
      }
      stats_.incr("cluster.rack_tie_breaks");
      return tied[static_cast<std::size_t>(tie_rr_++) % tied.size()];
    }
  }
  // bf / unscored affinity / dep-without-releaser: chunked round robin
  // (block distribution of first-touch work).
  std::lock_guard<std::mutex> lk(mu_);
  int chunk = cfg_.rr_chunk > 0 ? cfg_.rr_chunk : 1;
  for (int tries = 0; tries <= cfg_.nodes; ++tries) {
    int node = (rr_cursor_ / chunk) % cfg_.nodes;
    if (node_alive_locked(node)) {
      ++rr_cursor_;
      return node;
    }
    rr_cursor_ += chunk - (rr_cursor_ % chunk);  // skip the dead node's chunk
  }
  return 0;  // node 0 (the master) is never declared dead
}

void ClusterRuntime::queue_done_ack_locked(int node, std::uint64_t ticket) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  if (ns.dead) return;
  if (cfg_.probe != nullptr) cfg_.probe->on_done_ack(ticket, node);
  if (ns.ack_pending.empty())
    ns.ack_deadline = clock_.now() + std::max(0.0, cfg_.link.coalesce_window);
  ns.ack_pending.push_back(ticket);
  // A full batch flushes immediately; with coalescing disabled every ticket
  // does (one ack per DONE — the pre-vectoring wire behavior).
  if (static_cast<int>(ns.ack_pending.size()) >= kAckVecMax || cfg_.link.coalesce_window <= 0)
    flush_done_acks_locked(node);
}

void ClusterRuntime::flush_done_acks_locked(int node) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  if (ns.ack_pending.empty()) return;
  DoneAckMsg msg;
  msg.count = ns.ack_pending.size();
  std::copy(ns.ack_pending.begin(), ns.ack_pending.end(), msg.tickets);
  ns.ack_pending.clear();
  stats_.incr("cluster.ack_batches");
  stats_.add("cluster.ack_batch_tickets", static_cast<double>(msg.count));
  net_->endpoint(0).am_coalesced(node, kDoneAck, &msg, ack_msg_bytes(msg.count));
}

double ClusterRuntime::next_ack_deadline_locked() const {
  double deadline = -1.0;
  for (int n = 1; n < cfg_.nodes; ++n) {
    const NodeState& ns = nodes_[static_cast<std::size_t>(n)];
    if (ns.ack_pending.empty()) continue;
    if (deadline < 0 || ns.ack_deadline < deadline) deadline = ns.ack_deadline;
  }
  return deadline;
}

void ClusterRuntime::comm_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  int scan = 1;
  for (;;) {
    Task* task = nullptr;
    int node = -1;
    // Staging pipeline depth: data for up to this many tasks per node may be
    // in flight ahead of the send window, so transfers for later tasks
    // overlap the computation of earlier ones.
    const int stage_depth = 2 * (1 + cfg_.presend);
    auto pick = [&] {
      if (shutdown_) return true;
      // Round-robin over remote nodes (paper: one communication thread
      // polling the per-node task pool).
      for (int k = 1; k < cfg_.nodes; ++k) {
        int n = (scan + k - 1 - 1) % (cfg_.nodes - 1) + 1;
        NodeState& ns = nodes_[static_cast<std::size_t>(n)];
        if (ns.dead) continue;
        if (!ns.queue.empty() && ns.preparing < stage_depth) {
          task = ns.queue.front();
          ns.queue.pop_front();
          ++ns.preparing;
          node = n;
          return true;
        }
      }
      return false;
    };
    while (!pick()) {
      // Idle: sleep until new work, or until a buffered DONE_ACK batch ages
      // past its coalescing window and must go out.
      const double ack_deadline = next_ack_deadline_locked();
      if (ack_deadline < 0) {
        comm_mon_.wait(lk);
      } else if (!comm_mon_.wait_until(lk, ack_deadline)) {
        const double now = clock_.now();
        for (int n = 1; n < cfg_.nodes; ++n) {
          NodeState& ns = nodes_[static_cast<std::size_t>(n)];
          if (!ns.ack_pending.empty() && ns.ack_deadline <= now) flush_done_acks_locked(n);
        }
      }
    }
    if (shutdown_) return;
    scan = node + 1 > cfg_.nodes - 1 ? 1 : node + 1;
    lk.unlock();
    dispatch_remote(task, node);
    lk.lock();
  }
}

void* ClusterRuntime::node_addr_locked(NodeDirEntry& e, int node) {
  if (node == 0) return e.region.ptr();
  auto it = e.addr.find(node);
  if (it != e.addr.end()) return it->second;
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  auto offset = ns.segalloc->allocate(e.region.size);
  if (!offset)
    throw std::runtime_error("cluster: node data segment exhausted");
  void* addr = ns.segment.get() + *offset;
  e.addr[node] = addr;
  return addr;
}

int ClusterRuntime::home_node_locked(std::uintptr_t start) const {
  if (!sharded_) return 0;
  const std::uint64_t h = mix_home(static_cast<std::uint64_t>(start));
  auto pin = home_pin_.find(start);
  if (pin != home_pin_.end()) {
    if (!nodes_[static_cast<std::size_t>(pin->second)].dead) return pin->second;
    // The pinned home died: stay in its rack if any member survives (the
    // point of the pin is rack-local commit traffic), deterministically
    // probed so every caller re-homes the shard to the same node.
    const simnet::Topology& topo = net_->topology();
    if (!topo.flat()) {
      const int rack = topo.rack_of(pin->second);
      const int npr = topo.nodes_per_rack();
      for (int i = 0; i < npr; ++i) {
        const int n =
            rack * npr + static_cast<int>((h + static_cast<std::uint64_t>(i)) %
                                          static_cast<std::uint64_t>(npr));
        if (n < cfg_.nodes && !nodes_[static_cast<std::size_t>(n)].dead) return n;
      }
    }
    // Whole rack gone: fall through to the global probe.
  }
  for (int i = 0; i < cfg_.nodes; ++i) {
    const int n = static_cast<int>((h + static_cast<std::uint64_t>(i)) %
                                   static_cast<std::uint64_t>(cfg_.nodes));
    if (!nodes_[static_cast<std::size_t>(n)].dead) return n;
  }
  return 0;  // unreachable: the master is never declared dead
}

void ClusterRuntime::pin_home_locked(std::uintptr_t start, int writer_node) {
  if (!sharded_ || !rack_local_) return;
  if (home_pin_.count(start) != 0) return;
  // A pin may only be installed before the region's first directory entry
  // exists: re-routing the home of a live entry would strand it in the old
  // shard.  First writer wins.
  if (dir_find_locked(start) != nullptr) return;
  const simnet::Topology& topo = net_->topology();
  const int rack = topo.rack_of(writer_node);
  const int npr = topo.nodes_per_rack();
  const std::uint64_t h = mix_home(static_cast<std::uint64_t>(start));
  for (int i = 0; i < npr; ++i) {
    const int n = rack * npr + static_cast<int>((h + static_cast<std::uint64_t>(i)) %
                                                static_cast<std::uint64_t>(npr));
    if (n < cfg_.nodes && !nodes_[static_cast<std::size_t>(n)].dead) {
      home_pin_[start] = n;
      stats_.incr("cluster.rack_local_homes");
      return;
    }
  }
  // The writer's whole rack is dead: keep the hash-probed default home.
}

ClusterRuntime::NodeDirEntry& ClusterRuntime::dir_lookup_locked(const common::Region& r) {
  auto [it, inserted] = shard_locked(r.start).try_emplace(r);
  NodeDirEntry& e = it->second.value;
  if (inserted) {
    e.region = r;
  } else if (!(e.region == r)) {
    throw std::logic_error("cluster: copy region re-used with a different size");
  }
  return e;
}

void ClusterRuntime::record_write_locked(const common::Region& r, int node, Task* producer) {
  NodeDirEntry& e = dir_lookup_locked(r);
  ++e.version;
  e.valid.clear();
  e.valid.insert(node);
  e.lost = false;
  if (cfg_.probe != nullptr)
    cfg_.probe->on_dir_version(static_cast<std::uint64_t>(r.start), e.version, node);
  if (node == 0) {
    // The home copy is current again: nothing to replay.
    e.master_version = e.version;
    e.redo_log.clear();
  } else if (producer != nullptr) {
    // Append to the redo log: this producer, plus the version of every
    // non-self input it read — replaying it is only sound while those
    // versions are still reproducible (checked at recovery time).
    NodeDirEntry::Redo redo;
    redo.task = producer;
    for (const Access& a : producer->accesses()) {
      if (!a.copy || !reads(a.mode) || a.region == r) continue;
      const NodeDirEntry* ie = dir_find_locked(a.region.start);
      redo.inputs.emplace_back(a.region, ie != nullptr ? ie->version : 0u);
    }
    e.redo_log.push_back(std::move(redo));
  }
}

void ClusterRuntime::staged_locked(const common::Region& r, int node,
                                   std::vector<std::function<void()>>& out) {
  // A straggler ack from a node already declared dead must not re-insert it
  // as a holder: the purge removed it, and a later transfer sourced from it
  // would find no live copy anywhere.
  if (!node_alive_locked(node)) return;
  NodeDirEntry& e = dir_lookup_locked(r);
  e.valid.insert(node);
  if (node == 0 && !e.recovering) {
    // The current version was pulled home: the redo log is obsolete.
    e.master_version = e.version;
    e.redo_log.clear();
  }
  auto it = e.staging_to.find(node);
  if (it != e.staging_to.end()) {
    stats_.add("cluster.transfer_latency", clock_.now() - it->second);
    e.staging_to.erase(it);
  }
  e.stage_src.erase(node);
  active_stagings_.erase({r.start, node});
  e.stage_retries.erase(node);
  stats_.incr("cluster.stagings");
  // The landed copy can now serve the deferred destinations (tree fan-out).
  std::vector<int> deferred = std::move(e.deferred);
  e.deferred.clear();
  for (int d : deferred) {
    if (!node_alive_locked(d)) continue;
    auto a = make_wire_action_locked(e, r, d);
    if (a) out.push_back(std::move(a));
  }
  // Waiters for this (region, node) copy.
  auto range = region_waiters_.equal_range({r.start, node});
  for (auto w = range.first; w != range.second; ++w)
    out.push_back([cb = std::move(w->second)] { cb(true); });
  region_waiters_.erase(range.first, range.second);
}

namespace {
/// Barrier for a dispatch's input stagings: fires once every arm()ed staging
/// reported, with failed() true if any of them gave up.
struct DispatchBarrier {
  int pending = 1;
  bool failed = false;
  std::mutex mu;
};
}  // namespace

void ClusterRuntime::dispatch_local(Task* t, int releaser_resource) {
  // Inputs produced on remote nodes must come home before node 0 executes.
  auto bar = std::make_shared<DispatchBarrier>();
  Runtime* master = nodes_[0].rt.get();
  auto submit = [master, t, releaser_resource] { master->submit_external(t, releaser_resource); };
  auto fail = [this, master, t] {
    // An input was lost to a node failure and could not be regenerated: the
    // task cannot run.  Record the error and complete it so taskwait returns
    // (and throws) instead of hanging.
    std::vector<Task*> failures;
    {
      std::lock_guard<std::mutex> lk(mu_);
      fail_task_locked(t, "cluster: inputs of task '" + t->label() +
                              "' lost to node failure", failures);
    }
    for (Task* f : failures) domain_->on_complete(f);
  };
  auto done = [bar, submit, fail](bool ok) {
    bool fire, failed;
    {
      std::lock_guard<std::mutex> lk(bar->mu);
      if (!ok) bar->failed = true;
      fire = --bar->pending == 0;
      failed = bar->failed;
    }
    if (!fire) return;
    if (failed)
      fail();
    else
      submit();
  };

  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Access& a : t->accesses()) {
      if (!a.copy || !reads(a.mode)) continue;
      const NodeDirEntry* ep = dir_find_locked(a.region.start);
      if (ep == nullptr) continue;
      const NodeDirEntry& e = *ep;
      // During recovery the home copy is the stale replay base, not the
      // current version — treat it as absent and let the staging defer.
      if (e.valid.count(0) != 0 && !e.recovering && !e.lost) continue;
      {
        std::lock_guard<std::mutex> plk(bar->mu);
        ++bar->pending;
      }
      auto action = stage_region_locked(a.region, 0, done);
      if (action) actions.push_back(std::move(action));
    }
  }
  for (auto& action : actions) action();
  done(true);
}

void ClusterRuntime::dispatch_remote(Task* t, int node, bool regen,
                                     common::Region regen_region) {
  RemoteTaskInfo* info = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    NodeState& ns = nodes_[static_cast<std::size_t>(node)];
    if (ns.dead) {
      // The node died between placement and dispatch.
      if (!regen) --ns.preparing;  // comm_loop counted this dispatch
    } else {
      info_pool_.push_back(std::make_unique<RemoteTaskInfo>());
      info = info_pool_.back().get();
      if (regen) ++ns.preparing;  // queue-path dispatches were counted by comm_loop
    }
  }
  if (info == nullptr) {
    if (!regen) {
      on_ready(t, nullptr);  // re-place on a surviving node
    } else {
      // The regeneration chain lost its node before it even started; pick
      // another one (on_node_failure handles chains already in flight).
      std::vector<std::function<void()>> actions;
      {
        std::lock_guard<std::mutex> lk(mu_);
        NodeDirEntry* e = dir_find_locked(regen_region.start);
        if (e != nullptr && e->recovering) advance_recovery_locked(*e, actions);
      }
      for (auto& a : actions) a();
    }
    return;
  }
  info->dispatched_at = clock_.now();
  info->target_node = node;
  info->regen = regen;
  info->regen_region = regen_region;

  // The send fires once every input region is resident on the target node;
  // a failed staging (lost region, retries exhausted) aborts the dispatch.
  auto bar = std::make_shared<DispatchBarrier>();
  std::uint64_t ticket;
  // Once staged, the task moves to the node's ready-to-send list; the send
  // window (1 + presend outstanding on the slave) gates the actual send.
  auto send = [this, info, node] {
    {
      std::lock_guard<std::mutex> lk(mu_);
      nodes_[static_cast<std::size_t>(node)].ready_to_send.push_back(info);
      try_send_locked(node);
    }
    comm_mon_.notify_all();  // a staging slot may have opened
  };
  auto done = [this, bar, send, info](bool ok) {
    bool fire, failed;
    {
      std::lock_guard<std::mutex> lk(bar->mu);
      if (!ok) bar->failed = true;
      fire = --bar->pending == 0;
      failed = bar->failed;
    }
    if (!fire) return;
    if (failed)
      abort_dispatch(info);
    else
      send();
  };
  auto arm = [bar] {
    std::lock_guard<std::mutex> lk(bar->mu);
    ++bar->pending;
  };

  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ticket = next_ticket_++;
    info->ticket = ticket;
    info->master_task = t;
    std::set<std::uintptr_t> written;
    for (const Access& a : t->accesses()) {
      RemoteAccess ra;
      ra.master_region = a.region;
      ra.mode = a.mode;
      ra.copy = a.copy;
      if (a.copy) {
        if (writes(a.mode)) {
          written.insert(a.region.start);
          pin_home_locked(a.region.start, node);
        }
        NodeDirEntry& e = dir_lookup_locked(a.region);
        ra.local_addr = node_addr_locked(e, node);
        if (reads(a.mode) && e.valid.count(node) == 0) {
          ra.freshly_staged = true;
          arm();
          // A regeneration stages its own region's stale home base copy
          // despite the entry being mid-recovery; every other input defers
          // normally if it happens to be recovering too.
          const bool for_recovery = regen && a.region == regen_region;
          auto action = stage_region_locked(a.region, node, done, for_recovery);
          if (action) actions.push_back(std::move(action));
        }
      } else {
        ra.local_addr = a.region.ptr();
      }
      info->accesses.push_back(ra);
    }
    info->expected_writes = static_cast<int>(written.size());
    in_flight_tasks_[ticket] = info;
    if (cfg_.probe != nullptr)
      cfg_.probe->on_ticket_created(ticket, node, info->expected_writes);
  }
  for (auto& action : actions) action();
  done(true);  // drop the initial token; sends if nothing needed staging
}

void ClusterRuntime::stage_region_async(const common::Region& region, int node,
                                        std::function<void(bool)> done, bool for_recovery) {
  std::function<void()> action;
  {
    std::lock_guard<std::mutex> lk(mu_);
    action = stage_region_locked(region, node, std::move(done), for_recovery);
  }
  if (action) action();
}

std::function<void()> ClusterRuntime::stage_region_locked(const common::Region& region, int node,
                                                          std::function<void(bool)> done,
                                                          bool for_recovery) {
  NodeDirEntry& e = dir_lookup_locked(region);
  if (e.lost) {
    // No copy survives and regeneration gave up: fail outside the lock.
    return [cb = std::move(done)] { cb(false); };
  }
  if (e.recovering && !for_recovery) {
    // The region is being regenerated; re-enter once the chain finished
    // (or failed — the re-entry then hits e.lost above).
    e.recovery_waiters.push_back(
        [this, region, node, cb = std::move(done)] { stage_region_async(region, node, cb); });
    return nullptr;
  }
  if (e.valid.count(node) != 0) {
    // Already current at the destination — nothing to ship.  The dispatch
    // path normally filters these, but a recovery waiter restages blindly,
    // and the regeneration chain may have replayed on this very node.
    return [cb = std::move(done)] { cb(true); };
  }
  region_waiters_.emplace(std::make_pair(region.start, node), std::move(done));
  if (e.staging_to.count(node) != 0) return nullptr;  // join the in-flight transfer
  e.staging_to.emplace(node, clock_.now());
  active_stagings_.insert({region.start, node});
  // Tree fan-out: if another copy of this region is already on the wire,
  // wait for it and source from the new holder instead of piling onto the
  // current one (with StoS; under MtoS everything relays via the master
  // anyway, which is precisely its penalty).
  if (cfg_.slave_to_slave && node != 0 && !e.staging_to.empty() && e.staging_to.size() > 1) {
    e.deferred.push_back(node);
    return nullptr;
  }
  return make_wire_action_locked(e, region, node);
}

std::function<void()> ClusterRuntime::make_wire_action_locked(NodeDirEntry& e,
                                                              const common::Region& region,
                                                              int node) {
  if (sharded_ && node != 0) {
    const int home = home_node_locked(region.start);
    if (home != 0) {
      // Transfer-source resolution belongs to the region's home node: ask it
      // to pick a holder from its shard and issue the forward.  (A region the
      // master itself homes resolves inline below — the request would be a
      // free self-send anyway.)
      StageReqMsg msg{region.start, region.size, node};
      simnet::Network* net = net_.get();
      stats_.incr("cluster.stage_reqs");
      return [net, home, msg] {
        net->endpoint(0).am_coalesced(home, kStageReq, &msg, sizeof(msg));
      };
    }
  }
  return wire_action_resolved_locked(e, region, node, 0);
}

std::function<void()> ClusterRuntime::wire_action_resolved_locked(NodeDirEntry& e,
                                                                  const common::Region& region,
                                                                  int node, int from) {
  void* dst = node_addr_locked(e, node);
  const std::size_t size = region.size;

  // Slave nodes holding a current copy (rotating choice spreads source load
  // as copies proliferate — the directory knows every source).  Dead nodes
  // are purged from valid sets on failure, but a transfer may be re-issued
  // from a scan that raced the purge — never source from a dead node.
  std::vector<int> holders;
  for (int n : e.valid) {
    if (n != 0 && n != node && node_alive_locked(n)) holders.push_back(n);
  }
  if (rack_local_ && node != 0 && holders.size() > 1) {
    // Prefer a source inside the destination's rack: the copy is identical
    // everywhere, but an intra-rack hop never crosses the oversubscribed
    // core.  Cross-rack sourcing remains as the fallback.
    std::vector<int> near;
    const simnet::Topology& topo = net_->topology();
    for (int n : holders) {
      if (topo.same_rack(n, node)) near.push_back(n);
    }
    if (!near.empty()) holders.swap(near);
  }
  int holder = holders.empty()
                   ? -1
                   : holders[static_cast<std::size_t>(holder_rr_++) % holders.size()];
  if (rack_local_ && holder >= 0 && node != 0 && net_->topology().same_rack(holder, node)) {
    stats_.incr("cluster.rack_local_sources");
  }

  if (node == 0) {
    // Pull home (used by taskwait flush and the MtoS relay).
    if (holder < 0) throw std::logic_error("cluster: pull with no slave holder");
    e.stage_src[0] = holder;
    PullMsg msg{region.start, size, e.addr.at(holder), region.ptr()};
    simnet::Network* net = net_.get();
    return [net, holder, msg] {
      net->endpoint(0).am_short(holder, kPull, &msg, sizeof(msg));
    };
  }

  if (cfg_.slave_to_slave && holder >= 0) {
    // Direct slave-to-slave transfer (StoS).  Preferred over master-sourced
    // puts even when the master also holds a copy: its NIC must stay free
    // for control traffic and presends (paper §IV-B2).  The forward leaves
    // the resolving node's endpoint, and the landed copy is acknowledged
    // back to it (the home with sharding; the master otherwise).
    e.stage_src[node] = holder;
    ForwardMsg msg{region.start, size, e.addr.at(holder), node, dst, from};
    simnet::Network* net = net_.get();
    stats_.incr("cluster.stos_transfers");
    return [net, from, holder, msg] {
      net->endpoint(from).am_short(holder, kForward, &msg, sizeof(msg));
    };
  }

  if (e.valid.count(0) != 0) {
    // Master holds the current version (and either StoS is disabled or no
    // slave has a copy): flush it off master GPUs if needed, then put it
    // straight to the destination.
    e.stage_src[node] = 0;
    Runtime* master = nodes_[0].rt.get();
    simnet::Network* net = net_.get();
    return [this, master, net, region, node, dst, size, from] {
      master->coherence().flush_region(region);
      stats_.add("cluster.master_tx_bytes", static_cast<double>(size));
      net->endpoint(0).put(
          node, dst, region.ptr(), size, nullptr, [net, region, node, size, from] {
            // Destination RX thread: acknowledge to the resolver.
            StageDoneMsg msg{region.start, size, node};
            net->endpoint(node).am_coalesced(from, kStageDone, &msg, sizeof(msg));
          });
    };
  }
  if (holder < 0) {
    std::string dbg = "cluster: region valid nowhere [start=" + std::to_string(region.start) +
                      " dst=" + std::to_string(node) + " ver=" + std::to_string(e.version) +
                      " mver=" + std::to_string(e.master_version) +
                      " rec=" + std::to_string(e.recovering) + " lost=" + std::to_string(e.lost) +
                      " valid={";
    for (int n : e.valid) dbg += std::to_string(n) + ",";
    dbg += "} staging={";
    for (const auto& [n, ts] : e.staging_to) dbg += std::to_string(n) + ",";
    dbg += "} regens=" + std::to_string(e.pending_regens.size()) + "]";
    throw std::logic_error(dbg);
  }

  // MtoS relay: stage to the master first, then forward from master memory.
  stats_.incr("cluster.mtos_relays");
  bool master_pull_needed = e.staging_to.count(0) == 0;
  std::function<void()> pull_action;
  if (master_pull_needed) {
    e.staging_to.emplace(0, clock_.now());
    active_stagings_.insert({region.start, 0});
    e.stage_src[0] = holder;
    PullMsg msg{region.start, size, e.addr.at(holder), region.ptr()};
    simnet::Network* net = net_.get();
    pull_action = [net, holder, msg] {
      net->endpoint(0).am_short(holder, kPull, &msg, sizeof(msg));
    };
  }
  // Once home, send it out to `node` (the waiter fires off the master RX
  // thread with mu_ released).  If the pull fails permanently, the relay
  // destination's staging fails with it.
  e.stage_src[node] = 0;  // effective source is the master once the pull lands
  Runtime* master = nodes_[0].rt.get();
  simnet::Network* net = net_.get();
  region_waiters_.emplace(std::make_pair(region.start, 0),
                          [this, master, net, region, node, dst, size](bool ok) {
                            if (!ok) {
                              fail_staging_async(region, node);
                              return;
                            }
                            master->coherence().flush_region(region);
                            stats_.add("cluster.master_tx_bytes", static_cast<double>(size));
                            net->endpoint(0).put(node, dst, region.ptr(), size, nullptr,
                                                 [net, region, node, size] {
                                                   StageDoneMsg msg{region.start, size, node};
                                                   net->endpoint(node).am_coalesced(
                                                       0, kStageDone, &msg, sizeof(msg));
                                                 });
                          });
  return pull_action;
}

void ClusterRuntime::try_send_locked(int node) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  if (ns.dead) return;
  while (!ns.ready_to_send.empty() && ns.sent < 1 + cfg_.presend) {
    RemoteTaskInfo* info = ns.ready_to_send.front();
    ns.ready_to_send.pop_front();
    --ns.preparing;
    ++ns.sent;
    info->sent_at = clock_.now();
    info->last_send = info->sent_at;
    info->send_attempts = 1;
    stats_.add("cluster.stage_latency", info->sent_at - info->dispatched_at);
    RemoteTaskInfo* p = info;
    net_->endpoint(0).am_coalesced(node, kNewTask, &p, sizeof(p));
  }
}

std::uint64_t ClusterRuntime::payload_ticket(const void* payload, std::size_t bytes) {
  const RemoteTaskInfo* info = read_msg<const RemoteTaskInfo*>(payload, bytes);
  return info->ticket;
}

void ClusterRuntime::handle_new_task(int node, const RemoteTaskInfo* info) {
  const std::uint64_t recv_ticket = info->ticket;
  // Receipt ack first: stops master-side NEW_TASK retransmission.  Then
  // dedup — a retransmit whose original arrived must not run the task twice.
  net_->endpoint(node).am_coalesced(0, kTaskRecv, &recv_ticket, sizeof(recv_ticket));
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!nodes_[static_cast<std::size_t>(node)].seen_tickets.insert(recv_ticket).second)
      return;
  }
  Runtime& rt = *nodes_[static_cast<std::size_t>(node)].rt;
  TaskDesc d;
  const TaskDesc& master_desc = info->master_task->desc();
  d.fn = master_desc.fn;
  d.device = master_desc.device;
  d.cost = master_desc.cost;
  d.label = master_desc.label;
  // taskcheck: body-level observe() annotations in the remote proxy report
  // against the master-side task (and the master's oracle).
  d.verify_alias = info->master_task;
  for (const RemoteAccess& ra : info->accesses) {
    Access a;
    a.region = common::Region(ra.local_addr, ra.master_region.size);
    a.mode = ra.mode;
    a.copy = ra.copy;
    d.accesses.push_back(a);
    // Freshly staged bytes replace whatever the node's device caches held.
    if (ra.freshly_staged) rt.coherence().host_overwritten(a.region);
  }
  std::uint64_t ticket = info->ticket;
  simnet::Network* net = net_.get();
  // Completion is a closure so the ping-piggybacked resend path can replay
  // it verbatim: homes are recomputed at every send, which is what lets a
  // resent commit reach a re-homed shard after its original home died.
  std::function<void()> commit;
  if (sharded_ && info->expected_writes > 0) {
    const RemoteTaskInfo* cinfo = info;
    commit = [this, net, node, cinfo] {
      std::set<int> homes;
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (const RemoteAccess& ra : cinfo->accesses) {
          if (ra.copy && writes(ra.mode))
            homes.insert(home_node_locked(ra.master_region.start));
        }
      }
      const RemoteTaskInfo* p = cinfo;
      for (int h : homes) net->endpoint(node).am_coalesced(h, kDirCommit, &p, sizeof(p));
    };
  } else {
    commit = [net, node, ticket] {
      std::uint64_t tk = ticket;
      net->endpoint(node).am_coalesced(0, kTaskDone, &tk, sizeof(tk));
    };
  }
  if (cfg_.node.early_release) {
    // Early-release relay: the node runtime invokes this once per freshly
    // released access (node-local region) after its local commit.  Map the
    // access back to its master region and send the early commit to the
    // region's home — the home bumps the version and vouches to the master,
    // which releases the arcs while this task's body keeps running.  Reads
    // have no cluster-visible effect to commit; their master-side WAR arcs
    // wait for task completion (conservative).
    const RemoteTaskInfo* rinfo = info;
    d.release_cb = [this, net, node, rinfo](const common::Region& local) {
      for (const RemoteAccess& ra : rinfo->accesses) {
        if (!ra.copy || !writes(ra.mode)) continue;
        if (!(common::Region(ra.local_addr, ra.master_region.size) == local)) continue;
        int home;
        {
          std::lock_guard<std::mutex> lk(mu_);
          home = home_node_locked(ra.master_region.start);
        }
        EarlyCommitMsg msg{rinfo->ticket, ra.master_region.start, ra.master_region.size, node};
        stats_.incr("cluster.early_commits");
        net->endpoint(node).am_coalesced(home, kEarlyCommit, &msg, sizeof(msg));
        return;
      }
    };
  }
  d.completion_cb = [this, node, ticket, commit] {
    // Remember the DONE until the master acknowledges it, so a lost message
    // can be re-sent when the failure detector's next ping arrives.
    bool drop_send = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      nodes_[static_cast<std::size_t>(node)].unacked_done[ticket] =
          NodeState::UnackedDone{commit, clock_.now(), 0};
      if (cfg_.mutation.drop_first_done && !mut_done_dropped_) {
        // Seeded fault: the completion send vanishes before the wire — the
        // unacked record stays, so only the overdue replay path can save it.
        mut_done_dropped_ = true;
        stats_.incr("cluster.mutation_done_dropped");
        drop_send = true;
      }
    }
    if (!drop_send) commit();
  };
  rt.spawn(std::move(d));
}

void ClusterRuntime::handle_task_done(int src, std::uint64_t ticket) {
  RemoteTaskInfo* info = nullptr;
  Task* t = nullptr;
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(ticket);
    // A retired ticket (duplicate DONE, or the node was declared dead and
    // its work re-executed elsewhere) is ignored: commits are exactly-once.
    if (it != in_flight_tasks_.end()) {
      info = it->second;
      in_flight_tasks_.erase(it);
      if (cfg_.probe != nullptr) cfg_.probe->on_ticket_retired(ticket);
      // Replay token: the commit order of (ticket, node) pairs IS the
      // schedule the coherence verifier judged — fingerprint it.
      verify_sched_hash_ = verify::fnv1a(
          std::to_string(verify_sched_hash_) + ":" + std::to_string(ticket) + "@" +
          std::to_string(src));
      t = info->master_task;
      const int node = info->target_node;
      for (const RemoteAccess& ra : info->accesses) {
        // Regions the body released early were committed back then (the
        // `committed` set records them); bumping again would crown a version
        // no task produced — and clobber a successor's newer one.
        if (ra.copy && writes(ra.mode) && info->committed.count(ra.master_region.start) == 0)
          record_write_locked(ra.master_region, node, t);
      }
      stats_.add("cluster.exec_latency", clock_.now() - info->sent_at);
      --nodes_[static_cast<std::size_t>(node)].sent;
      try_send_locked(node);
      if (info->regen) {
        // One redo-log entry replayed: advance (or finish) the chain.
        NodeDirEntry& e = dir_lookup_locked(info->regen_region);
        if (!e.pending_regens.empty() && e.pending_regens.front() == t)
          e.pending_regens.pop_front();
        advance_recovery_locked(e, actions);
      }
    }
  }
  // Ack unconditionally: the slave must stop re-sending even if the ticket
  // was retired on this side.  The ticket rides the next vectored batch.
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_done_ack_locked(src, ticket);
  }
  if (info != nullptr && !info->regen) domain_->on_complete(t);
  for (auto& a : actions) a();
  comm_mon_.notify_all();
}

void ClusterRuntime::handle_dir_commit(int self, int src, const RemoteTaskInfo* cinfo) {
  // Home-node half of the sharded completion protocol: apply version bumps
  // for the written regions this node homes, then vouch to the master.  The
  // commit may arrive more than once (ping-piggybacked resends, or a resend
  // re-routed after this shard was re-homed); the shared `committed` set
  // keeps record_write exactly-once per region across all homes.
  std::vector<VouchMsg> vouches;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(cinfo->ticket);
    RemoteTaskInfo* live = it != in_flight_tasks_.end() ? it->second : nullptr;
    for (const RemoteAccess& ra : cinfo->accesses) {
      if (!ra.copy || !writes(ra.mode)) continue;
      const std::uintptr_t start = ra.master_region.start;
      if (home_node_locked(start) != self) continue;
      if (live == cinfo && live->committed.insert(start).second) {
        record_write_locked(ra.master_region, src, cinfo->master_task);
        stats_.incr("cluster.dir_ops_homed.n" + std::to_string(self));
        if (cfg_.probe != nullptr)
          cfg_.probe->on_commit_applied(cinfo->ticket, self, static_cast<std::uint64_t>(start),
                                        dir_lookup_locked(ra.master_region).version);
        if (cfg_.mutation.double_first_commit && !mut_commit_doubled_) {
          // Seeded fault: apply the same commit a second time, as a buggy
          // dedup path would — the region gains a version no task produced.
          mut_commit_doubled_ = true;
          stats_.incr("cluster.mutation_commit_doubled");
          record_write_locked(ra.master_region, src, cinfo->master_task);
          if (cfg_.probe != nullptr)
            cfg_.probe->on_commit_applied(cinfo->ticket, self,
                                          static_cast<std::uint64_t>(start),
                                          dir_lookup_locked(ra.master_region).version);
        }
      }
      // Vouch even for a retired ticket: the master re-acks, which is what
      // stops the exec node's resend loop.
      vouches.push_back(VouchMsg{cinfo->ticket, start, src});
    }
    if (!vouches.empty() && cfg_.mutation.drop_first_vouch && !mut_vouch_dropped_) {
      // Seeded fault: the home forgets to vouch for one committed region.
      mut_vouch_dropped_ = true;
      stats_.incr("cluster.mutation_vouch_dropped");
      vouches.erase(vouches.begin());
    }
  }
  for (const VouchMsg& v : vouches)
    net_->endpoint(self).am_coalesced(0, kDoneVouch, &v, sizeof(v));
}

void ClusterRuntime::handle_done_vouch(std::uint64_t ticket, std::uintptr_t start,
                                       int exec_node) {
  // Master half: a ticket completes only once every distinct written region
  // has been vouched by its home — a successor dispatched before that could
  // read a stale directory version.
  RemoteTaskInfo* info = nullptr;
  Task* t = nullptr;
  bool ack = false;
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(ticket);
    if (cfg_.probe != nullptr)
      cfg_.probe->on_vouch(ticket, static_cast<std::uint64_t>(start), exec_node);
    if (it == in_flight_tasks_.end()) {
      ack = true;  // retired ticket: re-ack so the exec node stops resending
    } else {
      RemoteTaskInfo* cand = it->second;
      cand->vouched.insert(start);
      if (static_cast<int>(cand->vouched.size()) >= cand->expected_writes) {
        ack = true;
        info = cand;
        in_flight_tasks_.erase(it);
        if (cfg_.probe != nullptr) cfg_.probe->on_ticket_retired(ticket);
        t = info->master_task;
        const int node = info->target_node;
        stats_.add("cluster.exec_latency", clock_.now() - info->sent_at);
        --nodes_[static_cast<std::size_t>(node)].sent;
        try_send_locked(node);
        if (info->regen) {
          NodeDirEntry& e = dir_lookup_locked(info->regen_region);
          if (!e.pending_regens.empty() && e.pending_regens.front() == t)
            e.pending_regens.pop_front();
          advance_recovery_locked(e, actions);
        }
      }
    }
  }
  if (ack) {
    std::lock_guard<std::mutex> lk(mu_);
    queue_done_ack_locked(exec_node, ticket);
  }
  if (info != nullptr && !info->regen) domain_->on_complete(t);
  for (auto& a : actions) a();
  comm_mon_.notify_all();
}

void ClusterRuntime::handle_stage_req(int self, const void* payload, std::size_t bytes) {
  auto msg = read_msg<StageReqMsg>(payload, bytes);
  std::function<void()> action;
  {
    std::lock_guard<std::mutex> lk(mu_);
    NodeDirEntry* e = dir_find_locked(msg.start);
    if (e == nullptr) return;
    // Failure recovery may have cancelled the staging (or re-homed the
    // entry) between the master's request and its arrival — only act while
    // the destination is still registered.
    if (e->staging_to.count(msg.dst_node) == 0) return;
    action =
        wire_action_resolved_locked(*e, common::Region(msg.start, msg.size), msg.dst_node, self);
  }
  if (action) action();
}

void ClusterRuntime::handle_early_commit(int self, const void* payload, std::size_t bytes) {
  auto msg = read_msg<EarlyCommitMsg>(payload, bytes);
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(msg.ticket);
    if (it == in_flight_tasks_.end()) return;  // retired (node death): too late
    RemoteTaskInfo* live = it->second;
    // Re-homed shard (original home died): the task-end DIR_COMMIT resend
    // recomputes homes and will reach the new one; dropping here is safe
    // because nothing was released against the stale home's directory.
    if (home_node_locked(msg.start) != self) return;
    const common::Region region(msg.start, msg.size);
    // Exactly-once against both a duplicate early commit and the final
    // DIR_COMMIT: whoever inserts first does the bump, everyone else skips.
    if (live->committed.insert(msg.start).second) {
      record_write_locked(region, msg.exec_node, live->master_task);
      stats_.incr("cluster.early_commits_applied");
      fresh = true;
      // Mark the released access on the *master* task: resilience must not
      // re-execute a task whose outputs successors may already have consumed.
      const auto& accesses = live->master_task->accesses();
      for (std::size_t i = 0; i < accesses.size() && i < 64; ++i) {
        if (accesses[i].region == region)
          live->master_task->released_mask.fetch_or(1ull << i, std::memory_order_acq_rel);
      }
    }
  }
  if (!fresh) return;
  // Vouch to the master so it releases the arcs.  The commit above
  // happened-before this send, so a successor the master releases resolves
  // its staging against the already-bumped directory entry.
  EarlyCommitMsg v = msg;
  net_->endpoint(self).am_coalesced(0, kEarlyVouch, &v, sizeof(v));
}

void ClusterRuntime::handle_early_vouch(const void* payload, std::size_t bytes) {
  auto msg = read_msg<EarlyCommitMsg>(payload, bytes);
  Task* t = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(msg.ticket);
    if (it == in_flight_tasks_.end()) return;  // retired: arcs already settled
    t = it->second->master_task;
    // NOT inserted into `vouched`: completion stays gated on the end-of-task
    // vouches.  An early vouch counting toward expected_writes could retire
    // the ticket — and complete the master task — while its body still runs.
  }
  // Outside mu_: release_region takes the domain lock and may fire ready
  // callbacks that re-enter placement (which takes mu_).
  stats_.incr("cluster.early_releases");
  domain_->release_region(t, common::Region(msg.start, msg.size));
  comm_mon_.notify_all();
}

void ClusterRuntime::handle_forward(int self, int /*src*/, const void* payload,
                                    std::size_t bytes) {
  auto msg = read_msg<ForwardMsg>(payload, bytes);
  // Run off the RX thread: the flush may involve a GPU transfer, and the RX
  // thread must stay responsive for incoming traffic.
  post_comm_job(self, [this, self, msg] {
    Runtime& rt = *nodes_[static_cast<std::size_t>(self)].rt;
    // The current version may live on this node's GPU: bring it to node
    // memory before putting it on the wire.
    rt.coherence().flush_region(common::Region(msg.src_addr, msg.size));
    simnet::Network* net = net_.get();
    const std::uintptr_t start = msg.start;
    const std::size_t size = msg.size;
    const int dst = msg.dst_node;
    // The ack goes to whichever node orchestrated this staging — the master
    // in the centralized protocol, the region's home node under sharding.
    const int ack_node = msg.ack_node;
    net->endpoint(self).put(dst, msg.dst_addr, msg.src_addr, size, nullptr,
                            [net, start, size, dst, ack_node] {
                              StageDoneMsg ack{start, size, dst};
                              net->endpoint(dst).am_coalesced(ack_node, kStageDone, &ack,
                                                              sizeof(ack));
                            });
  });
}

void ClusterRuntime::handle_pull(int self, const void* payload, std::size_t bytes) {
  auto msg = read_msg<PullMsg>(payload, bytes);
  post_comm_job(self, [this, self, msg] {
    Runtime& rt = *nodes_[static_cast<std::size_t>(self)].rt;
    rt.coherence().flush_region(common::Region(msg.src_addr, msg.size));
    simnet::Network* net = net_.get();
    ClusterRuntime* self_ptr = this;
    const common::Region region(msg.start, msg.size);
    net->endpoint(self).put(0, msg.master_addr, msg.src_addr, msg.size, nullptr,
                            [self_ptr, region] {
                              // Master RX thread: the region is home again.
                              self_ptr->nodes_[0].rt->coherence().host_overwritten(region);
                              std::vector<std::function<void()>> cbs;
                              {
                                std::lock_guard<std::mutex> lk(self_ptr->mu_);
                                self_ptr->staged_locked(region, 0, cbs);
                              }
                              for (auto& cb : cbs) cb();
                            });
  });
}

void ClusterRuntime::taskwait_on(const common::Region& r) {
  domain_->wait_on(r);
  Runtime* master = nodes_[0].rt.get();
  vt::CountLatch latch(clock_);
  auto stage_cb = [&latch, master](bool ok) {
    if (!ok)
      master->record_task_error(std::make_exception_ptr(std::runtime_error(
          "cluster: taskwait on(...) failed — region lost to node failure")));
    latch.done();
  };
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (NodeDirEntry* ep = dir_find_locked(r.start)) {
      NodeDirEntry& e = *ep;
      if (e.lost) {
        master->record_task_error(std::make_exception_ptr(std::runtime_error(
            "cluster: taskwait on(...) failed — region lost to node failure")));
      } else if (e.valid.count(0) == 0 || e.recovering) {
        latch.add();
        auto action = stage_region_locked(e.region, 0, stage_cb);
        if (action) actions.push_back(std::move(action));
      }
    }
  }
  for (auto& a : actions) a();
  latch.wait();
  nodes_[0].rt->coherence().flush_region(r);
  master->rethrow_task_error();
}

void ClusterRuntime::taskwait(bool flush) {
  domain_->wait_all();
  // Surface task failures from any node (first one wins) — but a dead
  // node's local errors are noise: its tasks were retried or already failed
  // with a master-side error.
  auto surface_errors = [this] {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      bool dead;
      {
        std::lock_guard<std::mutex> lk(mu_);
        dead = nodes_[i].dead;
      }
      if (dead) continue;
      nodes_[i].rt->rethrow_task_error();
    }
  };
  if (!flush) {
    if (verify::coherence_enabled(verify_mode_)) verify_invariants("taskwait_noflush", false);
    surface_errors();
    return;
  }
  Runtime* master = nodes_[0].rt.get();
  vt::CountLatch latch(clock_);
  auto stage_cb = [&latch, master](bool ok) {
    if (!ok)
      master->record_task_error(std::make_exception_ptr(std::runtime_error(
          "cluster: taskwait flush failed — region lost to node failure")));
    latch.done();
  };
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& shard : dir_) {
      for (auto& [start, entry] : shard) {
        NodeDirEntry& e = entry.value;
        if (e.lost) {
          master->record_task_error(std::make_exception_ptr(std::runtime_error(
              "cluster: region lost to node failure and not recovered (resilience=" +
              cfg_.resilience.mode + ")")));
          continue;
        }
        // During recovery the home copy holds the stale replay base — stage
        // (defers until the chain finishes) rather than trusting valid={0}.
        if (e.valid.count(0) != 0 && !e.recovering) continue;
        latch.add();
        auto action = stage_region_locked(e.region, 0, stage_cb);
        if (action) actions.push_back(std::move(action));
      }
    }
  }
  for (auto& a : actions) a();
  latch.wait();
  nodes_[0].rt->coherence().flush_all();
  net_->topology().publish(stats_, clock_.now());
  if (verify::coherence_enabled(verify_mode_)) verify_invariants("taskwait", true);
  surface_errors();
}

}  // namespace nanos
