#include "nanos/coherence.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace nanos {

CachePolicy parse_cache_policy(const std::string& s) {
  if (s == "nocache") return CachePolicy::kNoCache;
  if (s == "wt") return CachePolicy::kWriteThrough;
  if (s == "wb") return CachePolicy::kWriteBack;
  throw std::invalid_argument("unknown cache policy '" + s + "' (nocache|wt|wb)");
}

const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::kNoCache: return "nocache";
    case CachePolicy::kWriteThrough: return "wt";
    case CachePolicy::kWriteBack: return "wb";
  }
  return "?";
}

CoherenceManager::CoherenceManager(vt::Clock& clock, simcuda::Platform& platform,
                                   CachePolicy policy, bool overlap,
                                   double host_memcpy_bandwidth, common::Stats& stats,
                                   double eviction_overhead)
    : clock_(clock),
      platform_(platform),
      policy_(policy),
      overlap_(overlap),
      host_bw_(host_memcpy_bandwidth),
      eviction_overhead_(eviction_overhead),
      stats_(stats),
      busy_mon_(clock) {
  xfer_streams_.reserve(static_cast<std::size_t>(platform_.device_count()));
  for (int g = 0; g < platform_.device_count(); ++g)
    xfer_streams_.push_back(platform_.device(g).create_stream());
}

CoherenceManager::~CoherenceManager() = default;

void CoherenceManager::register_region(const common::Region& r) {
  std::lock_guard<std::mutex> lk(mu_);
  (void)lookup_locked(r);
}

std::vector<CoherenceManager::RegionInfo*> CoherenceManager::overlapping_locked(
    const common::Region& r) {
  std::vector<RegionInfo*> out;
  if (regions_.empty() || r.empty()) return out;
  auto it = regions_.lower_bound(r.end());
  while (it != regions_.begin()) {
    --it;
    if (it->second.region.overlaps(r)) out.push_back(&it->second);
  }
  return out;
}

CoherenceManager::RegionInfo& CoherenceManager::lookup_locked(const common::Region& r) {
  auto [it, inserted] = regions_.try_emplace(r.start);
  if (inserted) {
    it->second.region = r;
    // Partial overlap with neighbours is unsupported (paper §II-A3): the
    // clause regions must tile, not straddle.
    auto next = std::next(it);
    if (next != regions_.end() && next->second.region.overlaps(r))
      throw std::logic_error("coherence: partially overlapping copy regions are not supported");
    if (it != regions_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.region.overlaps(r))
        throw std::logic_error("coherence: partially overlapping copy regions are not supported");
    }
  } else if (!(it->second.region == r)) {
    throw std::logic_error("coherence: copy region re-used with a different size");
  }
  return it->second;
}

void CoherenceManager::lock_region(std::unique_lock<std::mutex>& lk, RegionInfo& info) {
  busy_mon_.wait(lk, [&info] { return !info.busy; });
  info.busy = true;
}

void CoherenceManager::unlock_region(RegionInfo& info) {
  info.busy = false;  // caller holds mu_
  busy_mon_.notify_all();
}

void CoherenceManager::host_to_device(RegionInfo& info, int space, void* dev_ptr) {
  simcuda::Device& d = dev(space);
  simcuda::Stream* st = xfer_streams_[static_cast<std::size_t>(space - 1)];
  const std::size_t n = info.region.size;
  double trace_begin = trace_ ? trace_->begin() : 0;
  stats_.incr("coh.h2d");
  stats_.add("coh.h2d_bytes", static_cast<double>(n));
  if (overlap_) {
    // Stage through a page-locked buffer (allocated per datum, freed after
    // the copy, §III-D2) so the transfer can overlap kernel execution.  The
    // staging memcpy itself costs host-memory bandwidth.
    void* pin = platform_.host_alloc_pinned(n);
    std::memcpy(pin, info.region.ptr(), n);
    clock_.sleep_for(static_cast<double>(n) / host_bw_);
    d.memcpy_h2d_async(*st, dev_ptr, pin, n);
    simcuda::Platform* plat = &platform_;
    d.add_callback(*st, [plat, pin] { plat->host_free_pinned(pin); });
  } else {
    // Direct copy from user memory: blocks and serializes with kernels.
    d.memcpy_h2d_async(*st, dev_ptr, info.region.ptr(), n);
  }
  if (trace_)
    trace_->record("transfer", "gpu" + std::to_string(space - 1) + ".xfer", "h2d", trace_begin);
}

void CoherenceManager::device_to_host(RegionInfo& info, int space, void* dev_ptr) {
  simcuda::Device& d = dev(space);
  simcuda::Stream* st = xfer_streams_[static_cast<std::size_t>(space - 1)];
  const std::size_t n = info.region.size;
  double trace_begin = trace_ ? trace_->begin() : 0;
  stats_.incr("coh.d2h");
  stats_.add("coh.d2h_bytes", static_cast<double>(n));
  if (overlap_) {
    // Writebacks complete synchronously (the host copy must not be declared
    // valid before data lands) but still run on the copy engine, so they
    // overlap unrelated kernel work.
    void* pin = platform_.host_alloc_pinned(n);
    d.memcpy_d2h_async(*st, pin, dev_ptr, n);
    st->synchronize();
    std::memcpy(info.region.ptr(), pin, n);
    clock_.sleep_for(static_cast<double>(n) / host_bw_);
    platform_.host_free_pinned(pin);
  } else {
    d.memcpy_d2h_async(*st, info.region.ptr(), dev_ptr, n);  // blocking (unpinned)
  }
  if (trace_)
    trace_->record("transfer", "gpu" + std::to_string(space - 1) + ".xfer", "d2h", trace_begin);
}

void CoherenceManager::fetch_to_host(RegionInfo& info) {
  // Pick any GPU holding the current version.
  int holder = -1;
  for (int s : info.valid) {
    if (s != kHostSpace) {
      holder = s;
      break;
    }
  }
  if (holder < 0)
    throw std::logic_error("coherence: region has no valid copy anywhere");
  Copy& c = info.copies.at(holder);
  device_to_host(info, holder, c.dev_ptr);
  c.dirty = false;
}

void* CoherenceManager::alloc_on_device(std::unique_lock<std::mutex>& lk, int space,
                                        std::size_t bytes) {
  for (;;) {
    void* p = dev(space).malloc(bytes);
    if (p != nullptr) return p;
    // Evict the least-recently-used unpinned, non-busy entry on this device.
    RegionInfo* victim_info = nullptr;
    std::uint64_t best = UINT64_MAX;
    for (auto& [start, info] : regions_) {
      if (info.busy) continue;
      auto it = info.copies.find(space);
      if (it == info.copies.end() || it->second.pins > 0 || it->second.dev_ptr == nullptr)
        continue;
      if (it->second.lru < best) {
        best = it->second.lru;
        victim_info = &info;
      }
    }
    if (victim_info == nullptr)
      throw std::runtime_error("coherence: device out of memory and nothing evictable");
    stats_.incr("coh.evictions");
    victim_info->busy = true;
    Copy victim = victim_info->copies.at(space);
    const bool only_current_copy = victim.version == victim_info->version &&
                                   victim_info->valid.count(space) != 0 &&
                                   victim_info->valid.count(kHostSpace) == 0;
    lk.unlock();
    // Replacement-mechanism bookkeeping (victim scan, directory update),
    // then the writeback if the victim holds the only current copy.
    if (eviction_overhead_ > 0) clock_.sleep_for(eviction_overhead_);
    if (only_current_copy) device_to_host(*victim_info, space, victim.dev_ptr);
    dev(space).free(victim.dev_ptr);
    lk.lock();
    if (only_current_copy) victim_info->valid.insert(kHostSpace);
    victim_info->valid.erase(space);
    victim_info->copies.erase(space);
    unlock_region(*victim_info);
  }
}

std::vector<void*> CoherenceManager::acquire(Task& t, int space) {
  std::vector<void*> out;
  out.reserve(t.accesses().size());
  for (const Access& a : t.accesses()) {
    if (!a.copy || a.region.empty()) {
      out.push_back(a.region.ptr());
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (space == kHostSpace) {
      // Host access: make every overlapping device-held region current at
      // home.  Works on the overlapping set so a parent's whole-array access
      // composes with children's sub-block copies.
      if (reads(a.mode)) {
        for (RegionInfo* sub : overlapping_locked(a.region)) {
          lock_region(lk, *sub);
          if (sub->valid.count(kHostSpace) == 0) {
            stats_.incr("coh.host_misses");
            lk.unlock();
            fetch_to_host(*sub);
            lk.lock();
            sub->valid.insert(kHostSpace);
          }
          unlock_region(*sub);
        }
      }
      out.push_back(a.region.ptr());
    } else {
      RegionInfo& info = lookup_locked(a.region);
      lock_region(lk, info);
      auto it = info.copies.find(space);
      const bool have_entry = it != info.copies.end() && it->second.dev_ptr != nullptr;
      const bool hit = have_entry && it->second.version == info.version &&
                       info.valid.count(space) != 0;
      if (reads(a.mode) && !hit) {
        stats_.incr("coh.misses");
        if (info.valid.count(kHostSpace) == 0) {
          // Current data lives on another GPU: stage through the host
          // (GPU -> host -> target GPU, the paper's hierarchical path).
          lk.unlock();
          fetch_to_host(info);
          lk.lock();
          info.valid.insert(kHostSpace);
        }
        void* dptr = have_entry ? it->second.dev_ptr : alloc_on_device(lk, space, a.region.size);
        lk.unlock();
        host_to_device(info, space, dptr);
        lk.lock();
        Copy& c = info.copies[space];
        c.dev_ptr = dptr;
        c.version = info.version;
        c.dirty = false;
        info.valid.insert(space);
      } else if (reads(a.mode)) {
        stats_.incr("coh.hits");
      } else if (!have_entry) {
        // Pure output: allocate space, no transfer in.
        void* dptr = alloc_on_device(lk, space, a.region.size);
        Copy& c = info.copies[space];
        c.dev_ptr = dptr;
        c.version = info.version;  // stale until release bumps it
        c.dirty = false;
      }
      Copy& c = info.copies.at(space);
      ++c.pins;
      c.lru = ++lru_tick_;
      out.push_back(c.dev_ptr);
      unlock_region(info);
    }
  }
  return out;
}

void CoherenceManager::release(Task& t, int space) {
  for (const Access& a : t.accesses()) {
    if (!a.copy || a.region.empty()) continue;
    std::unique_lock<std::mutex> lk(mu_);
    if (space == kHostSpace) {
      if (!writes(a.mode)) continue;
      // A host write invalidates device copies.  Only an exact-identity
      // region is clobbered; entries strictly *contained* in the written
      // range belong to child tasks whose device-resident results must be
      // preserved (the nested-decomposition pattern of §III-D1).
      for (RegionInfo* sub : overlapping_locked(a.region)) {
        if (!(sub->region == a.region)) continue;
        lock_region(lk, *sub);
        ++sub->version;
        sub->valid.clear();
        sub->valid.insert(kHostSpace);
        unlock_region(*sub);
      }
      continue;
    }
    RegionInfo& info = lookup_locked(a.region);
    lock_region(lk, info);
    if (writes(a.mode)) {
      ++info.version;
      info.valid.clear();
      info.valid.insert(space);
      Copy& cw = info.copies.at(space);
      cw.version = info.version;
      cw.dirty = true;
    }
    {
      Copy& c = info.copies.at(space);
      const bool wrote = writes(a.mode);
      const bool propagate = (policy_ == CachePolicy::kNoCache ||
                              policy_ == CachePolicy::kWriteThrough) &&
                             wrote;
      if (propagate) {
        lk.unlock();
        device_to_host(info, space, c.dev_ptr);
        lk.lock();
        info.valid.insert(kHostSpace);
        c.dirty = false;
      }
      --c.pins;
      if (policy_ == CachePolicy::kNoCache && c.pins == 0) {
        // Data moves out after every task: drop the device copy entirely.
        void* dptr = c.dev_ptr;
        info.valid.erase(space);
        if (wrote || info.valid.count(kHostSpace) != 0) {
          info.copies.erase(space);
          dev(space).free(dptr);
        }
      }
    }
    unlock_region(info);
  }
}

void CoherenceManager::sync_transfers(int space) {
  if (space == kHostSpace) return;
  xfer_streams_.at(static_cast<std::size_t>(space - 1))->synchronize();
}

void CoherenceManager::host_overwritten(const common::Region& r) {
  std::unique_lock<std::mutex> lk(mu_);
  for (RegionInfo* info : overlapping_locked(r)) {
    lock_region(lk, *info);
    ++info->version;
    info->valid.clear();
    info->valid.insert(kHostSpace);
    unlock_region(*info);
  }
}

void CoherenceManager::flush_region(const common::Region& r) {
  std::unique_lock<std::mutex> lk(mu_);
  for (RegionInfo* info : overlapping_locked(r)) {
    lock_region(lk, *info);
    if (info->valid.count(kHostSpace) == 0) {
      lk.unlock();
      fetch_to_host(*info);
      lk.lock();
      info->valid.insert(kHostSpace);
    }
    unlock_region(*info);
  }
}

void CoherenceManager::flush_all() {
  // Group dirty regions by holding device and drain each device's list on
  // its own thread: flushes of different GPUs proceed in parallel (only the
  // per-device transfer stream serializes), which matters when a taskwait
  // flush sits on the critical path (e.g. the Perlin Flush variant).
  std::vector<std::vector<common::Region>> per_dev(
      static_cast<std::size_t>(platform_.device_count()));
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [start, info] : regions_) {
      if (info.valid.count(kHostSpace) != 0) continue;
      for (int s : info.valid) {
        if (s != kHostSpace) {
          per_dev[static_cast<std::size_t>(s - 1)].push_back(info.region);
          break;
        }
      }
    }
  }
  std::vector<vt::Thread> flushers;
  for (std::size_t d = 0; d < per_dev.size(); ++d) {
    if (per_dev[d].empty()) continue;
    auto list = std::move(per_dev[d]);
    flushers.emplace_back(clock_, "flush" + std::to_string(d), [this, list = std::move(list)] {
      for (const common::Region& r : list) flush_region(r);
    });
  }
  for (auto& t : flushers) t.join();
}

double CoherenceManager::affinity_bytes(const Task& t, int space) const {
  std::lock_guard<std::mutex> lk(mu_);
  double bytes = 0;
  for (const Access& a : t.accesses()) {
    if (!a.copy) continue;
    // Written regions dominate the score: keeping an accumulation chain
    // where its output lives avoids the round trip of a dirty tile, which
    // is costlier than re-fetching a read-only input.
    const double weight = writes(a.mode) ? 4.0 : 1.0;
    auto it = regions_.find(a.region.start);
    if (it == regions_.end()) {
      // Data the runtime never moved lives in host memory.
      if (space == kHostSpace) bytes += static_cast<double>(a.region.size);
      continue;
    }
    const RegionInfo& info = it->second;
    if (space == kHostSpace) {
      if (info.valid.count(kHostSpace) != 0) bytes += static_cast<double>(a.region.size);
    } else {
      auto c = info.copies.find(space);
      if (c != info.copies.end() && c->second.version == info.version &&
          info.valid.count(space) != 0)
        bytes += weight * static_cast<double>(a.region.size);
    }
  }
  return bytes;
}

}  // namespace nanos
