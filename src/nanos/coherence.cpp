#include "nanos/coherence.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace nanos {

CachePolicy parse_cache_policy(const std::string& s) {
  if (s == "nocache") return CachePolicy::kNoCache;
  if (s == "wt") return CachePolicy::kWriteThrough;
  if (s == "wb") return CachePolicy::kWriteBack;
  throw std::invalid_argument("unknown cache policy '" + s + "' (nocache|wt|wb)");
}

const char* to_string(CachePolicy p) {
  switch (p) {
    case CachePolicy::kNoCache: return "nocache";
    case CachePolicy::kWriteThrough: return "wt";
    case CachePolicy::kWriteBack: return "wb";
  }
  return "?";
}

CoherenceManager::CoherenceManager(vt::Clock& clock, simcuda::Platform& platform,
                                   CachePolicy policy, bool overlap,
                                   double host_memcpy_bandwidth, common::Stats& stats,
                                   double eviction_overhead)
    : clock_(clock),
      platform_(platform),
      policy_(policy),
      overlap_(overlap),
      host_bw_(host_memcpy_bandwidth),
      eviction_overhead_(eviction_overhead),
      stats_(stats) {
  shards_.reserve(kNumShards);
  for (std::size_t i = 0; i < kNumShards; ++i) shards_.push_back(std::make_unique<Shard>(clock));
  xfer_streams_.reserve(static_cast<std::size_t>(platform_.device_count()));
  for (int g = 0; g < platform_.device_count(); ++g)
    xfer_streams_.push_back(platform_.device(g).create_stream());
}

CoherenceManager::~CoherenceManager() {
  std::lock_guard<std::mutex> lk(index_mu_);
  publish_stats_locked();
}

void CoherenceManager::register_region(const common::Region& r) {
  std::lock_guard<std::mutex> lk(index_mu_);
  (void)lookup_locked(r);
}

std::vector<CoherenceManager::RegionInfo*> CoherenceManager::overlapping_locked(
    const common::Region& r) {
  std::vector<RegionInfo*> out;
  ++dir_lookups_;
  dir_scanned_ += regions_.for_overlapping(
      r, [&out](common::IntervalMap<RegionInfo>::Entry& e) { out.push_back(&e.value); });
  return out;
}

CoherenceManager::RegionInfo& CoherenceManager::lookup_locked(const common::Region& r) {
  ++dir_lookups_;
  auto [it, inserted] = regions_.try_emplace(r);
  RegionInfo& info = it->second.value;
  if (inserted) {
    info.region = r;
    // Partial overlap with neighbours is unsupported (paper §II-A3): the
    // clause regions must tile, not straddle.  Entries are start-sorted and
    // non-overlapping by induction, so checking the two neighbours suffices.
    auto next = std::next(it);
    if (next != regions_.end() && next->second.region.overlaps(r))
      throw std::logic_error("coherence: partially overlapping copy regions are not supported");
    if (it != regions_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.region.overlaps(r))
        throw std::logic_error("coherence: partially overlapping copy regions are not supported");
    }
  } else if (!(info.region == r)) {
    throw std::logic_error("coherence: copy region re-used with a different size");
  }
  return info;
}

void CoherenceManager::publish_stats_locked() {
  if (dir_lookups_ != published_lookups_) {
    stats_.add("coh.dir_lookups", static_cast<double>(dir_lookups_ - published_lookups_));
    published_lookups_ = dir_lookups_;
  }
  if (dir_scanned_ != published_scanned_) {
    stats_.add("coh.dir_records_scanned",
               static_cast<double>(dir_scanned_ - published_scanned_));
    published_scanned_ = dir_scanned_;
  }
  if (shard_collisions_ != published_collisions_) {
    stats_.add("coh.lock_shard_collisions",
               static_cast<double>(shard_collisions_ - published_collisions_));
    published_collisions_ = shard_collisions_;
  }
  const std::uint64_t walks = incr_walks_.load(std::memory_order_relaxed);
  if (walks != published_incr_walks_) {
    stats_.add("verify.incr_walks", static_cast<double>(walks - published_incr_walks_));
    published_incr_walks_ = walks;
  }
  const std::uint64_t entries = incr_entries_checked_.load(std::memory_order_relaxed);
  if (entries != published_incr_entries_) {
    stats_.add("verify.incr_entries_checked",
               static_cast<double>(entries - published_incr_entries_));
    published_incr_entries_ = entries;
  }
}

void CoherenceManager::lock_region(Shard& sh, std::unique_lock<std::mutex>& lk,
                                   RegionInfo& info) {
  sh.busy_mon.wait(lk, [&info] { return !info.busy; });
  info.busy = true;
}

void CoherenceManager::unlock_region(Shard& sh, RegionInfo& info) {
  info.busy = false;  // caller holds the shard mutex
  sh.busy_mon.notify_all();
}

void CoherenceManager::mark_dirty_locked(Shard& sh, RegionInfo& info) {
  // Only verify=all runs per-release incremental walks; under any other mode
  // nothing would ever drain the queue.
  if (verify_mode_ != verify::VerifyMode::kAll || info.check_pending) return;
  info.check_pending = true;
  sh.dirty.push_back(&info);
  sh.has_dirty.store(true, std::memory_order_release);
}

void CoherenceManager::host_to_device(RegionInfo& info, int space, void* dev_ptr) {
  simcuda::Device& d = dev(space);
  simcuda::Stream* st = xfer_streams_[static_cast<std::size_t>(space - 1)];
  const std::size_t n = info.region.size;
  double trace_begin = trace_ ? trace_->begin() : 0;
  stats_.incr("coh.h2d");
  stats_.add("coh.h2d_bytes", static_cast<double>(n));
  if (overlap_) {
    // Stage through a page-locked buffer (allocated per datum, freed after
    // the copy, §III-D2) so the transfer can overlap kernel execution.  The
    // staging memcpy itself costs host-memory bandwidth.
    void* pin = platform_.host_alloc_pinned(n);
    std::memcpy(pin, info.region.ptr(), n);
    clock_.sleep_for(static_cast<double>(n) / host_bw_);
    d.memcpy_h2d_async(*st, dev_ptr, pin, n);
    simcuda::Platform* plat = &platform_;
    d.add_callback(*st, [plat, pin] { plat->host_free_pinned(pin); });
  } else {
    // Direct copy from user memory: blocks and serializes with kernels.
    d.memcpy_h2d_async(*st, dev_ptr, info.region.ptr(), n);
  }
  if (trace_)
    trace_->record("transfer", "gpu" + std::to_string(space - 1) + ".xfer", "h2d", trace_begin);
}

void CoherenceManager::device_to_host(RegionInfo& info, int space, void* dev_ptr) {
  simcuda::Device& d = dev(space);
  simcuda::Stream* st = xfer_streams_[static_cast<std::size_t>(space - 1)];
  const std::size_t n = info.region.size;
  double trace_begin = trace_ ? trace_->begin() : 0;
  stats_.incr("coh.d2h");
  stats_.add("coh.d2h_bytes", static_cast<double>(n));
  if (overlap_) {
    // Writebacks complete synchronously (the host copy must not be declared
    // valid before data lands) but still run on the copy engine, so they
    // overlap unrelated kernel work.
    void* pin = platform_.host_alloc_pinned(n);
    d.memcpy_d2h_async(*st, pin, dev_ptr, n);
    st->synchronize();
    std::memcpy(info.region.ptr(), pin, n);
    clock_.sleep_for(static_cast<double>(n) / host_bw_);
    platform_.host_free_pinned(pin);
  } else {
    d.memcpy_d2h_async(*st, info.region.ptr(), dev_ptr, n);  // blocking (unpinned)
  }
  if (trace_)
    trace_->record("transfer", "gpu" + std::to_string(space - 1) + ".xfer", "d2h", trace_begin);
}

void CoherenceManager::fetch_to_host(RegionInfo& info) {
  // The caller holds only the busy flag, which serializes same-region wire
  // operations — but flush_region/flush_all reach here from a different
  // thread than the releasing GPU manager, so the metadata reads (valid set,
  // dev_ptr) and the dirty-bit clear still need the shard mutex.  The copy
  // itself cannot be erased mid-flight: eviction skips busy entries and
  // release waits on the busy flag.
  Shard& sh = shard_of(info);
  int holder = -1;
  void* dev_ptr = nullptr;
  {
    std::lock_guard<std::mutex> cl(sh.mu);
    // Pick any GPU holding the current version.
    for (int s : info.valid) {
      if (s != kHostSpace) {
        holder = s;
        break;
      }
    }
    if (holder < 0)
      throw std::logic_error("coherence: region has no valid copy anywhere");
    dev_ptr = info.copies.at(holder).dev_ptr;
  }
  device_to_host(info, holder, dev_ptr);
  {
    std::lock_guard<std::mutex> cl(sh.mu);
    info.copies.at(holder).dirty = false;
  }
}

void* CoherenceManager::alloc_on_device(std::unique_lock<std::mutex>& lk, int space,
                                        std::size_t bytes,
                                        const std::map<const RegionInfo*, int>* self_pins) {
  // The acquiring region's busy flag keeps its metadata ours; drop its shard
  // lock so the victim hunt can take other shards (never two at once).
  lk.unlock();
  // An empty victim scan is only a *hard* OOM when no candidate was merely
  // transient (pinned by a running task, busy with a transfer, or behind a
  // contended shard).  Transient candidates free up when their task releases,
  // so wait-and-rescan a bounded number of times before giving up.  A
  // candidate pinned only by the *acquiring task itself* (earlier accesses of
  // the same acquire) is not transient: those pins drop after the task runs,
  // which needs this allocation first — waiting would just burn the retry
  // budget before failing anyway.
  constexpr int kMaxEvictRetries = 64;
  constexpr double kEvictRetryBackoff = 5e-6;
  int retries = 0;
  void* result = nullptr;
  while (result == nullptr) {
    void* p = dev(space).malloc(bytes);
    if (p != nullptr) {
      result = p;
      break;
    }
    // Scan for the least-recently-used unpinned, non-busy copy on this
    // device.  The index lock orders the walk; each candidate's shard is
    // try-locked — a held shard is skipped and counted as a collision
    // rather than stalling the scan.
    RegionInfo* victim_info = nullptr;
    Shard* victim_shard = nullptr;
    bool transient = false;
    bool self_pinned = false;
    std::uint64_t best = UINT64_MAX;
    {
      std::lock_guard<std::mutex> ix(index_mu_);
      for (auto& [start, entry] : regions_) {
        RegionInfo& info = entry.value;
        Shard& sh = shard_of(info);
        std::unique_lock<std::mutex> cl(sh.mu, std::try_to_lock);
        if (!cl.owns_lock()) {
          ++shard_collisions_;
          transient = true;  // whoever holds the shard may be freeing a copy
          continue;
        }
        auto itc = info.copies.find(space);
        if (itc == info.copies.end() || itc->second.dev_ptr == nullptr) continue;
        if (info.busy || itc->second.pins > 0) {
          int own = 0;
          if (self_pins != nullptr) {
            auto sp = self_pins->find(&info);
            if (sp != self_pins->end()) own = sp->second;
          }
          if (info.busy || itc->second.pins > own)
            transient = true;  // evictable once the transfer/task lets go
          else
            self_pinned = true;  // every pin is ours; waiting cannot free it
          continue;
        }
        if (itc->second.lru < best) {
          best = itc->second.lru;
          victim_info = &info;
          victim_shard = &sh;
        }
      }
    }
    if (victim_info == nullptr) {
      if (!transient) {
        if (self_pinned)
          throw std::runtime_error(
              "coherence: device out of memory; the only evictable copies are "
              "pinned by the acquiring task itself (working set exceeds device "
              "memory)");
        throw std::runtime_error("coherence: device out of memory and nothing evictable");
      }
      if (++retries > kMaxEvictRetries)
        throw std::runtime_error(
            "coherence: device out of memory and nothing evictable after " +
            std::to_string(kMaxEvictRetries) +
            " eviction retries (every candidate stayed pinned or busy)");
      stats_.incr("coh.evict_retries");
      clock_.sleep_for(kEvictRetryBackoff);
      continue;
    }
    // Claim the victim: revalidate under its shard lock (its state may have
    // moved since the scan), then mark it busy for the writeback.
    bool only_current_copy = false;
    Copy victim;
    {
      std::lock_guard<std::mutex> cl(victim_shard->mu);
      RegionInfo& vi = *victim_info;
      auto itc = vi.copies.find(space);
      if (vi.busy || itc == vi.copies.end() || itc->second.pins > 0 ||
          itc->second.dev_ptr == nullptr)
        continue;  // lost the race; rescan
      vi.busy = true;
      victim = itc->second;
      only_current_copy = victim.version == vi.version && vi.valid.count(space) != 0 &&
                          vi.valid.count(kHostSpace) == 0;
    }
    stats_.incr("coh.evictions");
    // Replacement-mechanism bookkeeping (victim scan, directory update),
    // then the writeback if the victim holds the only current copy.
    if (eviction_overhead_ > 0) clock_.sleep_for(eviction_overhead_);
    if (only_current_copy) device_to_host(*victim_info, space, victim.dev_ptr);
    dev(space).free(victim.dev_ptr);
    {
      std::lock_guard<std::mutex> cl(victim_shard->mu);
      if (only_current_copy) victim_info->valid.insert(kHostSpace);
      victim_info->valid.erase(space);
      victim_info->copies.erase(space);
      mark_dirty_locked(*victim_shard, *victim_info);
      unlock_region(*victim_shard, *victim_info);
    }
  }
  lk.lock();
  return result;
}

std::vector<void*> CoherenceManager::acquire(Task& t, int space) {
  std::vector<void*> out;
  out.reserve(t.accesses().size());
  // Entries pinned by the accesses handled so far, so the eviction path can
  // tell the caller's own pins apart from other running tasks' (self-pins
  // never transition to evictable while this acquire waits).
  std::map<const RegionInfo*, int> self_pins;
  for (const Access& a : t.accesses()) {
    if (!a.copy || a.region.empty()) {
      out.push_back(a.region.ptr());
      continue;
    }
    if (space == kHostSpace) {
      // Host access: make every overlapping device-held region current at
      // home.  Works on the overlapping set so a parent's whole-array access
      // composes with children's sub-block copies.
      if (reads(a.mode)) {
        std::vector<RegionInfo*> subs;
        {
          std::lock_guard<std::mutex> ix(index_mu_);
          subs = overlapping_locked(a.region);
        }
        for (RegionInfo* sub : subs) {
          Shard& sh = shard_of(*sub);
          std::unique_lock<std::mutex> lk(sh.mu);
          lock_region(sh, lk, *sub);
          if (sub->valid.count(kHostSpace) == 0) {
            stats_.incr("coh.host_misses");
            lk.unlock();
            fetch_to_host(*sub);
            lk.lock();
            sub->valid.insert(kHostSpace);
            mark_dirty_locked(sh, *sub);
          }
          unlock_region(sh, *sub);
        }
      }
      out.push_back(a.region.ptr());
      continue;
    }
    RegionInfo* infop;
    {
      std::lock_guard<std::mutex> ix(index_mu_);
      infop = &lookup_locked(a.region);
    }
    RegionInfo& info = *infop;
    Shard& sh = shard_of(info);
    std::unique_lock<std::mutex> lk(sh.mu);
    lock_region(sh, lk, info);
    auto it = info.copies.find(space);
    const bool have_entry = it != info.copies.end() && it->second.dev_ptr != nullptr;
    const bool hit = have_entry && it->second.version == info.version &&
                     info.valid.count(space) != 0;
    if (reads(a.mode) && !hit) {
      stats_.incr("coh.misses");
      if (info.valid.count(kHostSpace) == 0) {
        // Current data lives on another GPU: stage through the host
        // (GPU -> host -> target GPU, the paper's hierarchical path).
        lk.unlock();
        fetch_to_host(info);
        lk.lock();
        info.valid.insert(kHostSpace);
      }
      void* dptr = have_entry ? it->second.dev_ptr
                              : alloc_on_device(lk, space, a.region.size, &self_pins);
      lk.unlock();
      host_to_device(info, space, dptr);
      lk.lock();
      Copy& c = info.copies[space];
      c.dev_ptr = dptr;
      c.version = info.version;
      c.dirty = false;
      info.valid.insert(space);
    } else if (reads(a.mode)) {
      stats_.incr("coh.hits");
    } else if (!have_entry) {
      // Pure output: allocate space, no transfer in.
      void* dptr = alloc_on_device(lk, space, a.region.size, &self_pins);
      Copy& c = info.copies[space];
      c.dev_ptr = dptr;
      c.version = info.version;  // stale until release bumps it
      c.dirty = false;
    }
    Copy& c = info.copies.at(space);
    ++c.pins;
    ++self_pins[&info];
    c.lru = lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    out.push_back(c.dev_ptr);
    mark_dirty_locked(sh, info);
    unlock_region(sh, info);
  }
  return out;
}

void CoherenceManager::release(Task& t, int space) {
  // Accesses the body released early were committed (version bumped) by
  // commit_host_write back then, and a successor may have produced a newer
  // version since: bumping again here would crown the stale producer copy.
  // Device entries still get unpinned below.
  const std::uint64_t early_mask = t.released_mask.load(std::memory_order_acquire);
  const auto& accesses = t.accesses();
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const Access& a = accesses[i];
    const bool early = i < 64 && (early_mask & (1ull << i)) != 0;
    if (!a.copy || a.region.empty()) continue;
    if (space == kHostSpace) {
      if (!writes(a.mode) || early) continue;
      // A host write invalidates device copies.  Only an exact-identity
      // region is clobbered; entries strictly *contained* in the written
      // range belong to child tasks whose device-resident results must be
      // preserved (the nested-decomposition pattern of §III-D1).
      std::vector<RegionInfo*> subs;
      {
        std::lock_guard<std::mutex> ix(index_mu_);
        subs = overlapping_locked(a.region);
      }
      for (RegionInfo* sub : subs) {
        if (!(sub->region == a.region)) continue;
        Shard& sh = shard_of(*sub);
        std::unique_lock<std::mutex> lk(sh.mu);
        lock_region(sh, lk, *sub);
        ++sub->version;
        sub->valid.clear();
        sub->valid.insert(kHostSpace);
        // Shadowed device copies hold garbage now: they must never be
        // written back (invariant: a dirty copy is the current version).
        for (auto& [s, c] : sub->copies) c.dirty = false;
        mark_dirty_locked(sh, *sub);
        unlock_region(sh, *sub);
      }
      continue;
    }
    RegionInfo* infop;
    {
      std::lock_guard<std::mutex> ix(index_mu_);
      infop = &lookup_locked(a.region);
    }
    RegionInfo& info = *infop;
    Shard& sh = shard_of(info);
    std::unique_lock<std::mutex> lk(sh.mu);
    lock_region(sh, lk, info);
    if (writes(a.mode) && !early) {
      ++info.version;
      info.valid.clear();
      info.valid.insert(space);
      Copy& cw = info.copies.at(space);
      cw.version = info.version;
      cw.dirty = true;
    }
    {
      Copy& c = info.copies.at(space);
      const bool wrote = writes(a.mode) && !early;
      const bool propagate = (policy_ == CachePolicy::kNoCache ||
                              policy_ == CachePolicy::kWriteThrough) &&
                             wrote;
      if (propagate) {
        lk.unlock();
        device_to_host(info, space, c.dev_ptr);
        lk.lock();
        info.valid.insert(kHostSpace);
        c.dirty = false;
      }
      --c.pins;
      if (policy_ == CachePolicy::kNoCache && c.pins == 0) {
        // Data moves out after every task: drop the device copy entirely.
        void* dptr = c.dev_ptr;
        info.valid.erase(space);
        if (wrote || info.valid.count(kHostSpace) != 0) {
          info.copies.erase(space);
          dev(space).free(dptr);
        }
      }
    }
    mark_dirty_locked(sh, info);
    unlock_region(sh, info);
  }
  // Per-event checking: under `all`, re-assert the protocol invariants over
  // the entries this release touched (the full walk stays at taskwait
  // quiesce points as the backstop).
  if (verify_mode_ == verify::VerifyMode::kAll) verify_touched("release");
}

void CoherenceManager::commit_host_write(const common::Region& r) {
  // Same exact-identity clobber as the host-write branch of release(), run
  // while the producer is still executing: the host bytes of `r` are final,
  // so the host copy becomes the current version and device copies go stale.
  // Entries strictly contained in `r` (child sub-blocks) are preserved.
  std::vector<RegionInfo*> subs;
  {
    std::lock_guard<std::mutex> ix(index_mu_);
    subs = overlapping_locked(r);
  }
  for (RegionInfo* sub : subs) {
    if (!(sub->region == r)) continue;
    Shard& sh = shard_of(*sub);
    std::unique_lock<std::mutex> lk(sh.mu);
    lock_region(sh, lk, *sub);
    ++sub->version;
    sub->valid.clear();
    sub->valid.insert(kHostSpace);
    for (auto& [s, c] : sub->copies) c.dirty = false;  // shadowed: never write back
    mark_dirty_locked(sh, *sub);
    unlock_region(sh, *sub);
  }
  if (verify_mode_ == verify::VerifyMode::kAll) verify_touched("early_release");
}

void CoherenceManager::sync_transfers(int space) {
  if (space == kHostSpace) return;
  xfer_streams_.at(static_cast<std::size_t>(space - 1))->synchronize();
}

void CoherenceManager::host_overwritten(const common::Region& r) {
  std::vector<RegionInfo*> subs;
  {
    std::lock_guard<std::mutex> ix(index_mu_);
    subs = overlapping_locked(r);
  }
  for (RegionInfo* info : subs) {
    Shard& sh = shard_of(*info);
    std::unique_lock<std::mutex> lk(sh.mu);
    lock_region(sh, lk, *info);
    ++info->version;
    info->valid.clear();
    info->valid.insert(kHostSpace);
    for (auto& [s, c] : info->copies) c.dirty = false;  // shadowed: never write back
    mark_dirty_locked(sh, *info);
    unlock_region(sh, *info);
  }
}

void CoherenceManager::flush_region(const common::Region& r) {
  std::vector<RegionInfo*> subs;
  {
    std::lock_guard<std::mutex> ix(index_mu_);
    subs = overlapping_locked(r);
  }
  for (RegionInfo* info : subs) {
    Shard& sh = shard_of(*info);
    std::unique_lock<std::mutex> lk(sh.mu);
    lock_region(sh, lk, *info);
    if (info->valid.count(kHostSpace) == 0) {
      lk.unlock();
      fetch_to_host(*info);
      lk.lock();
      info->valid.insert(kHostSpace);
      mark_dirty_locked(sh, *info);
    }
    unlock_region(sh, *info);
  }
}

void CoherenceManager::flush_all() {
  // Group dirty regions by holding device and drain each device's list on
  // its own thread: flushes of different GPUs proceed in parallel (only the
  // per-device transfer stream serializes), which matters when a taskwait
  // flush sits on the critical path (e.g. the Perlin Flush variant).
  std::vector<std::vector<common::Region>> per_dev(
      static_cast<std::size_t>(platform_.device_count()));
  {
    std::lock_guard<std::mutex> ix(index_mu_);
    publish_stats_locked();
    for (auto& [start, entry] : regions_) {
      RegionInfo& info = entry.value;
      // Reading the valid set needs the entry's shard lock (index_mu_ only
      // guards the map structure).  One shard at a time; shard holders never
      // wait on index_mu_, so this nesting cannot deadlock.
      std::lock_guard<std::mutex> cl(shard_of(info).mu);
      if (info.valid.count(kHostSpace) != 0) continue;
      for (int s : info.valid) {
        if (s != kHostSpace) {
          per_dev[static_cast<std::size_t>(s - 1)].push_back(info.region);
          break;
        }
      }
    }
  }
  std::vector<vt::Thread> flushers;
  for (std::size_t d = 0; d < per_dev.size(); ++d) {
    if (per_dev[d].empty()) continue;
    auto list = std::move(per_dev[d]);
    flushers.emplace_back(clock_, "flush" + std::to_string(d), [this, list = std::move(list)] {
      for (const common::Region& r : list) flush_region(r);
    });
  }
  for (auto& t : flushers) t.join();
  if (verify::coherence_enabled(verify_mode_)) verify_invariants("flush_all");
}

std::vector<double> CoherenceManager::affinity_bytes_all(const Task& t) const {
  std::vector<double> bytes(static_cast<std::size_t>(platform_.device_count() + 1), 0.0);
  for (const Access& a : t.accesses()) {
    if (!a.copy) continue;
    // Written regions dominate the score: keeping an accumulation chain
    // where its output lives avoids the round trip of a dirty tile, which
    // is costlier than re-fetching a read-only input.
    const double weight = writes(a.mode) ? 4.0 : 1.0;
    const double sz = static_cast<double>(a.region.size);
    const RegionInfo* info = nullptr;
    Shard* sh = nullptr;
    {
      std::lock_guard<std::mutex> ix(index_mu_);
      ++dir_lookups_;
      auto it = regions_.find(a.region.start);
      if (it != regions_.end()) {
        info = &it->second.value;
        sh = &shard_of(it->second.value);
      }
    }
    if (info == nullptr) {
      // Data the runtime never moved lives in host memory.
      bytes[kHostSpace] += sz;
      continue;
    }
    std::lock_guard<std::mutex> cl(sh->mu);
    if (info->valid.count(kHostSpace) != 0) bytes[kHostSpace] += sz;
    for (const auto& [s, c] : info->copies) {
      if (s != kHostSpace && c.version == info->version && info->valid.count(s) != 0)
        bytes[static_cast<std::size_t>(s)] += weight * sz;
    }
  }
  return bytes;
}

double CoherenceManager::affinity_bytes(const Task& t, int space) const {
  return affinity_bytes_all(t).at(static_cast<std::size_t>(space));
}

}  // namespace nanos
