// Coherence layer: directory + per-device software caches (paper §III-C3).
//
// A directory entry per user region tracks the current version number and the
// set of address spaces holding that version (space 0 = host, 1+g = GPU g).
// Each GPU has a software cache of device copies.  Three policies:
//
//  * no-cache      — data moves in before and out after every task; device
//                    copies are freed immediately (the paper's baseline).
//  * write-through — writes propagate to host memory at task completion, but
//                    read copies stay cached for reuse.
//  * write-back    — writes stay on the device until the copy is evicted, a
//                    host consumer needs it, or a taskwait flushes (default).
//
// Capacity: device allocations go through simcuda's bounded allocator; on
// failure the least-recently-used unpinned entry is evicted (written back
// first if it holds the only current copy).  This is the mechanism behind the
// paper's N-Body result, where eviction pressure makes no-cache win (Fig. 8).
//
// Transfers: with `overlap` enabled, copies stage through page-locked buffers
// (allocated per datum and freed after use, §III-D2) so they can run on the
// copy engine concurrently with kernels; the staging memcpy is charged at
// host-memory bandwidth.  With overlap disabled, copies go directly from/to
// user memory: simcuda then serializes them with kernels, like CUDA does.
//
// Locking, three levels (lock order is strictly top-down, one shard at most):
//
//  1. `index_mu_` guards the *structure* of the region directory (an
//     interval index; entries are node-stable and never erased).  Held only
//     for lookups/inserts/iteration — never while waiting on a busy flag.
//  2. 64 lock shards, hashed by region start, guard entry *metadata*
//     (version/valid/copies/pins).  Acquire/release on regions in different
//     shards — e.g. different GPU managers working different tiles — no
//     longer serialize on one global mutex.
//  3. Per-region `busy` flags (waited on via the shard's monitor) serialize
//     same-region wire operations; transfers always run with all mutexes
//     released and only `busy` held.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/interval_map.hpp"
#include "common/stats.hpp"
#include "nanos/task.hpp"
#include "nanos/trace.hpp"
#include "nanos/verify/verify.hpp"
#include "simcuda/simcuda.hpp"
#include "vt/sync.hpp"

namespace nanos {

namespace verify {
class InvariantReporter;
}

enum class CachePolicy { kNoCache, kWriteThrough, kWriteBack };

CachePolicy parse_cache_policy(const std::string& s);
const char* to_string(CachePolicy p);

class CoherenceManager {
public:
  static constexpr int kHostSpace = 0;

  /// `eviction_overhead`: simulated seconds of cache-replacement bookkeeping
  /// charged per evicted entry (victim scan, directory update, allocator
  /// churn) — the cost of the paper's "replacement mechanism", visible when
  /// the working set exceeds device memory (Fig. 8).
  CoherenceManager(vt::Clock& clock, simcuda::Platform& platform, CachePolicy policy,
                   bool overlap, double host_memcpy_bandwidth, common::Stats& stats,
                   double eviction_overhead = 20e-6);
  ~CoherenceManager();

  CoherenceManager(const CoherenceManager&) = delete;
  CoherenceManager& operator=(const CoherenceManager&) = delete;

  /// Makes every copy access of `t` valid in `space` and returns the
  /// translated pointer per access (host pointer for dependence-only or SMP).
  /// Issues/waits transfers as needed; pins device entries until release().
  std::vector<void*> acquire(Task& t, int space);

  /// Post-execution bookkeeping: bumps versions for written regions, applies
  /// the cache policy (write-through/no-cache writebacks), unpins entries.
  /// Accesses in `t`'s released_mask were already committed by an early
  /// release: their version bump is skipped (a successor may have produced a
  /// newer version since), but device entries are still unpinned.
  void release(Task& t, int space);

  /// Early-release commit of a host write: the running producer declares the
  /// bytes of `r` final, making the host copy the current version now (same
  /// exact-identity clobber as the host branch of release(): entries strictly
  /// contained in `r` belong to child tasks and are preserved).  Called
  /// before the dependence arcs over `r` drop, so a successor staging the
  /// region sees settled data.
  void commit_host_write(const common::Region& r);

  /// Makes the host copy of every region current (taskwait's implicit flush).
  /// Also publishes the directory counters into the stats sink.
  void flush_all();

  /// Flushes one region to the host (taskwait on(...)).  Unknown regions are
  /// a no-op: data that never moved is already current.
  void flush_region(const common::Region& r);

  /// Blocks until all transfers issued for GPU `space` have completed.  GPU
  /// managers call this between acquire() and the kernel launch; with
  /// overlap+prefetch the wait usually lands while the previous kernel runs.
  void sync_transfers(int space);

  /// Host bytes of `t`'s copy accesses already valid in `space` — the
  /// locality-aware scheduler's affinity score input.
  double affinity_bytes(const Task& t, int space) const;

  /// Scores for *every* space (index 0 = host, 1+g = GPU g) in one directory
  /// pass — one lookup per access instead of one per access per resource.
  /// The affinity scheduler uses this to place a task without re-walking the
  /// directory for each candidate.
  std::vector<double> affinity_bytes_all(const Task& t) const;

  /// Registers a region explicitly (optional; acquire auto-registers).
  void register_region(const common::Region& r);

  /// Declares that the host bytes of `r` were replaced from outside this
  /// manager (e.g. the cluster layer staged fresh data into the node): any
  /// device copy becomes stale.  Unknown regions are a no-op.
  void host_overwritten(const common::Region& r);

  CachePolicy policy() const { return policy_; }

  /// Optional instrumentation sink for transfer intervals.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // -- taskcheck pass 2 (implemented in verify/coherence_check.cpp) ----------

  /// Enables the coherence invariant checker: the full directory/cache walk
  /// runs at every flush_all() (taskwait quiesce) and, under `all`, an
  /// *incremental* walk over just-touched entries runs after every release().
  /// Call before worker threads start touching this manager.  A null `sink`
  /// makes violations throw at the detection site (tests).  `crosscheck` is
  /// the debug assertion mode: every incremental walk is followed by a silent
  /// full walk and a discrepancy (the full walk finding violations the
  /// incremental one missed) is itself reported as a violation.
  void set_verify(verify::VerifyMode mode, verify::ErrorSink sink, bool crosscheck = false);

  /// Walks the whole directory + caches asserting the protocol invariants
  /// (see docs/verifier.md); `where` tags the diagnostic with the quiesce
  /// point.  Busy entries (a transfer in flight) are skipped.  Clears any
  /// pending incremental marks it subsumes.
  void verify_invariants(const char* where);

  /// Incremental walk: checks only entries mutated since the last walk (the
  /// per-shard dirty sets maintained by the protocol paths under verify=all).
  /// Busy entries stay queued for the next walk.  This is what release()
  /// runs, making verify=all affordable on directory-heavy workloads.
  void verify_touched(const char* where);

  /// True when every overlapping registered region has a current host copy
  /// (unregistered data never moved, so it is trivially current).  The
  /// cluster checker uses this for master-directory/node-cache agreement.
  bool host_current(const common::Region& r);

  /// Test hook: corrupts the directory entry for `r` (marks a space valid
  /// that holds no copy) so tests can prove the checker catches it.  With
  /// `mark=false` the entry is NOT queued for the incremental walk —
  /// modelling a buggy mutation path that the crosscheck mode must catch.
  void debug_corrupt_region(const common::Region& r, bool mark = true);

private:
  struct Copy {
    void* dev_ptr = nullptr;
    unsigned version = 0;
    bool dirty = false;
    int pins = 0;
    std::uint64_t lru = 0;
  };
  struct RegionInfo {
    common::Region region;
    unsigned version = 0;
    std::set<int> valid{kHostSpace};  // spaces holding the current version
    std::map<int, Copy> copies;       // gpu space -> device copy
    bool busy = false;                // a transfer for this region is running
    bool check_pending = false;       // queued in its shard's dirty set
    // Version-monotonicity state for the invariant walks (shard mutex held,
    // like the rest of the entry — keeping it here lets the incremental walk
    // run without the global index lock).
    unsigned verify_last_version = 0;
    bool verify_seen = false;
  };
  struct Shard {
    explicit Shard(vt::Clock& c) : busy_mon(c) {}
    std::mutex mu;
    vt::Monitor busy_mon;  // signalled when a region in this shard goes idle
    /// Entries mutated since the last invariant walk (verify=all only);
    /// guarded by `mu`, deduplicated via RegionInfo::check_pending.  The
    /// atomic flag lets verify_touched() skip clean shards without taking mu.
    std::vector<RegionInfo*> dirty;
    std::atomic<bool> has_dirty{false};
  };

  static constexpr std::size_t kNumShards = 64;

  simcuda::Device& dev(int space) { return platform_.device(space - 1); }
  Shard& shard_of(std::uintptr_t start) const {
    // Regions are typically tile-aligned; drop the low bits before mixing.
    return *shards_[(start >> 6) * 0x9E3779B97F4A7C15ull >> 58];
  }
  Shard& shard_of(const RegionInfo& info) const { return shard_of(info.region.start); }

  // Directory structure operations. index_mu_ held.
  RegionInfo& lookup_locked(const common::Region& r);
  /// Every registered region overlapping `r`.  Host-side operations
  /// (acquire/release on SMP, flushes, external overwrites) work on the
  /// overlapping set so a parent task's whole-array access composes with its
  /// children's sub-block device copies.
  std::vector<RegionInfo*> overlapping_locked(const common::Region& r);
  void publish_stats_locked();

  // Busy-flag protocol. The region's shard mutex held (via `lk`).
  void lock_region(Shard& sh, std::unique_lock<std::mutex>& lk, RegionInfo& info);
  void unlock_region(Shard& sh, RegionInfo& info);

  /// Queues `info` for the next incremental invariant walk.  `sh`'s mutex
  /// held; no-op unless verify=all (the only mode running per-release walks).
  void mark_dirty_locked(Shard& sh, RegionInfo& info);

  // Invariant-walk internals (verify/coherence_check.cpp).
  /// Full directory walk; index_mu_ held (it iterates the interval map).
  void full_walk_locked(verify::InvariantReporter& rep);
  /// Per-entry protocol invariants; the entry's shard mutex held.
  void check_entry_locked(verify::InvariantReporter& rep, RegionInfo& info);

  // Wire operations; called with `info.busy` held and no mutex held.
  void host_to_device(RegionInfo& info, int space, void* dev_ptr);
  void device_to_host(RegionInfo& info, int space, void* dev_ptr);
  // Ensures host holds the current version. busy held.
  void fetch_to_host(RegionInfo& info);

  /// Allocates device memory for `bytes` on `space`, evicting LRU unpinned
  /// entries (with writeback) until it fits.  Called with the acquiring
  /// region's shard lock held via `lk` and its busy flag set; the lock is
  /// dropped during the victim hunt (never two shards at once) and re-taken
  /// before returning.  `self_pins` maps entries to the pin count the
  /// *acquiring task* already holds on them (earlier accesses of the same
  /// acquire): a candidate whose pins are all the caller's own can never be
  /// freed by waiting — it is a hard OOM, not a transient one.
  void* alloc_on_device(std::unique_lock<std::mutex>& lk, int space, std::size_t bytes,
                        const std::map<const RegionInfo*, int>* self_pins = nullptr);

  vt::Clock& clock_;
  simcuda::Platform& platform_;
  CachePolicy policy_;
  bool overlap_;
  double host_bw_;
  double eviction_overhead_;
  common::Stats& stats_;
  TraceRecorder* trace_ = nullptr;

  // taskcheck state.  The mode is set once before concurrent use; the
  // per-entry monotonicity state lives in RegionInfo (shard-guarded).
  verify::VerifyMode verify_mode_ = verify::VerifyMode::kOff;
  verify::ErrorSink verify_sink_;
  bool verify_crosscheck_ = false;

  mutable std::mutex index_mu_;
  common::IntervalMap<RegionInfo> regions_;  // structure under index_mu_
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> lru_tick_{0};
  std::vector<simcuda::Stream*> xfer_streams_;  // one per device

  // Hot-path counters (index_mu_ held); deltas published to stats_ as
  // "coh.dir_lookups" / "coh.dir_records_scanned" / "coh.lock_shard_collisions".
  mutable std::uint64_t dir_lookups_ = 0;
  mutable std::uint64_t dir_scanned_ = 0;
  std::uint64_t shard_collisions_ = 0;
  std::uint64_t published_lookups_ = 0;
  std::uint64_t published_scanned_ = 0;
  std::uint64_t published_collisions_ = 0;
  // Incremental-walk counters; published as "verify.incr_walks" /
  // "verify.incr_entries_checked".  Deferred like the directory counters (a
  // Stats add per release would cost more than the walk it measures), atomic
  // because verify_touched runs without index_mu_.
  std::atomic<std::uint64_t> incr_walks_{0};
  std::atomic<std::uint64_t> incr_entries_checked_{0};
  std::uint64_t published_incr_walks_ = 0;
  std::uint64_t published_incr_entries_ = 0;
};

}  // namespace nanos
