// Execution tracing (the Nanos++ instrumentation layer's analogue).
//
// Nanos++ ships an instrumentation plugin that emits Paraver traces; here we
// record the same events — task execution intervals per resource, data
// transfers, and runtime phases — in virtual time, and write them as a
// Chrome trace-event JSON (load it in chrome://tracing or Perfetto).
//
// Enable per runtime with RuntimeConfig::trace_path (config key `trace`).
// Recording is thread-safe and cheap: one vector append under a mutex per
// event, with all timestamps taken from the virtual clock, so the trace is
// exactly reproducible.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "vt/clock.hpp"

namespace nanos {

class TraceRecorder {
public:
  explicit TraceRecorder(vt::Clock& clock) : clock_(clock) {}

  struct Event {
    std::string name;      ///< task label / transfer kind
    std::string category;  ///< "task" | "transfer" | "runtime"
    std::string resource;  ///< "smp3", "gpu1", "node2.comm", …
    double begin = 0;      ///< virtual seconds
    double end = 0;
  };

  /// Opens an interval; returns its begin timestamp (pass to end_event).
  double begin() const;
  void record(const std::string& category, const std::string& resource, std::string name,
              double begin_time);

  std::vector<Event> events() const;
  std::size_t event_count() const;

  /// Chrome trace-event format ("traceEvents" array of complete events,
  /// microsecond timestamps, one tid per resource).
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

private:
  vt::Clock& clock_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace nanos
