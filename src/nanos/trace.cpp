#include "nanos/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace nanos {

double TraceRecorder::begin() const { return clock_.now(); }

void TraceRecorder::record(const std::string& category, const std::string& resource,
                           std::string name, double begin_time) {
  Event e;
  e.name = std::move(name);
  e.category = category;
  e.resource = resource;
  e.begin = begin_time;
  e.end = clock_.now();
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(std::move(e));
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::string TraceRecorder::to_chrome_json() const {
  auto evs = events();
  std::sort(evs.begin(), evs.end(),
            [](const Event& a, const Event& b) { return a.begin < b.begin; });
  // Stable tid per resource, in first-seen order.
  std::map<std::string, int> tids;
  for (const Event& e : evs) tids.emplace(e.resource, static_cast<int>(tids.size()) + 1);

  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : evs) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[e.resource]
       << ",\"ts\":" << e.begin * 1e6 << ",\"dur\":" << (e.end - e.begin) * 1e6 << "}";
  }
  // Thread-name metadata so viewers label rows by resource.
  for (const auto& [resource, tid] : tids) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << resource << "\"}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace nanos
