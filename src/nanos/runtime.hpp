// The Nanos++ runtime (single node): ties together the dependency layer, the
// scheduler, the coherence layer and the simulated GPU platform.
//
// Execution flow of a task (paper §III-C): submitted to the dependency
// graph → when its inputs are settled, handed to the scheduler → a worker
// (SMP) or GPU manager thread picks it → the coherence layer stages its data
// into the executing address space → it runs → the graph releases its
// successors.
//
// One GPU manager thread per GPU (paper §III-D2) launches kernels, issues
// transfers, and — when prefetch is enabled — acquires the *next* task's data
// while the current kernel executes, which only pays off combined with the
// overlap option (pinned staging), exactly as the paper observes.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "nanos/coherence.hpp"
#include "nanos/dep.hpp"
#include "nanos/scheduler.hpp"
#include "nanos/task.hpp"
#include "nanos/trace.hpp"
#include "nanos/verify/raceoracle.hpp"
#include "simcuda/simcuda.hpp"
#include "vt/clock.hpp"

namespace nanos {

struct RuntimeConfig {
  std::string scheduler = "dep";      ///< bf | dep | affinity
  std::string cache_policy = "wb";    ///< nocache | wt | wb
  bool overlap = false;               ///< pinned staging + async transfers
  bool prefetch = false;              ///< GPU managers pre-acquire next task
  int smp_workers = 4;
  std::vector<simcuda::DeviceProps> gpus;
  double smp_gflops = 10.0;           ///< per-core rate pricing SMP tasks
  double host_memcpy_bandwidth = 8.0e9;
  double eviction_overhead = 20.0e-6; ///< replacement bookkeeping per victim

  /// Non-empty: record a Chrome trace of task/transfer intervals and write
  /// it here when the runtime shuts down (the instrumentation layer).
  std::string trace_path;

  /// taskcheck passes: off | race | coherence | all (see docs/verifier.md).
  std::string verify = "off";
  /// Race oracle sampling: conflict-check every Nth task (deterministic by
  /// task id; every task's accesses are still recorded).  1 checks all.
  int verify_sample = 1;
  /// Debug assertion mode: follow every incremental coherence walk with a
  /// silent full walk and flag any discrepancy (a protocol path that mutated
  /// an entry without marking it).  Expensive; for tests and soak runs.
  bool verify_crosscheck = false;

  /// Honour TaskContext::release() calls: commit the released bytes and drop
  /// the dependence arcs they guard while the producer is still running.
  /// Off by default — bodies that release and then touch the bytes again are
  /// broken, and only the race oracle (verify=race|all) can prove they don't.
  bool early_release = false;

  // Cluster-only knobs (consumed by ClusterRuntime).
  int presend = 0;                    ///< tasks sent ahead per remote node
  bool slave_to_slave = true;         ///< direct transfers between slaves
  int node_id = 0;                    ///< this runtime's cluster node id

  /// Reads the keys above from a common::Config (e.g. parsed from NX_ARGS).
  static RuntimeConfig from(const common::Config& c);
};

class Runtime {
public:
  Runtime(vt::Clock& clock, RuntimeConfig cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Creates a task.  Called from an application thread it spawns into the
  /// root domain; called from inside a task body it spawns a child of that
  /// task (sibling-only dependences, paper §III-C1).
  Task* spawn(TaskDesc desc);

  /// Waits for all tasks of the current domain; then, unless `flush` is
  /// false (the paper's `taskwait noflush`), makes host data current.
  /// If any task body threw, the *first* captured exception is rethrown here
  /// (after all tasks settled); the runtime remains usable.
  void taskwait(bool flush = true);

  /// The paper's `taskwait on(...)`: waits only for the producers of `r` and
  /// flushes just that region to the host.
  void taskwait_on(const common::Region& r);

  vt::Clock& clock() { return clock_; }
  const RuntimeConfig& config() const { return cfg_; }
  common::Stats& stats() { return stats_; }
  simcuda::Platform& gpu_platform() { return platform_; }
  CoherenceManager& coherence() { return *coherence_; }
  /// Non-null when tracing was enabled via RuntimeConfig::trace_path.
  TraceRecorder* trace() { return trace_.get(); }
  /// Non-null when `verify` enables the race pass.
  verify::RaceOracle* race_oracle() { return oracle_.get(); }

  /// True if a task body threw and the error has not been consumed yet.
  bool has_task_error() const;
  /// Captures `e` as this runtime's pending task error (first one wins).
  void record_task_error(std::exception_ptr e);
  /// Rethrows and clears the pending error, if any.
  void rethrow_task_error();

  int gpu_count() const { return platform_.device_count(); }

  /// Task executed on the calling thread right now (nullptr outside bodies).
  static Task* current_task();
  /// Runtime executing the calling thread's current task (nullptr outside
  /// bodies).  On a cluster this is the *node's* runtime, so API-level
  /// nested spawns land in the right image.
  static Runtime* current_runtime();

  /// Cluster hook: hands an already-dependency-released task straight to this
  /// node's scheduler (its domain pointer must already be set).
  void submit_external(Task* t, int releaser_resource);

  /// Cluster hook: creates a Task owned by this runtime without submitting it
  /// to any domain.
  Task* allocate_task(TaskDesc desc);

  /// Implements TaskContext::release(): commits the declared accesses of `t`
  /// that `r` fully covers (written copy data becomes host-current) and
  /// releases their dependence arcs ahead of task completion.  No-op when the
  /// `early_release` config key is off or `r` covers no not-yet-released
  /// access.  Thread-safe per task: concurrent calls race only on the
  /// released-access bitmask; each access is committed and released once.
  void early_release(Task& t, const common::Region& r);

private:
  friend class ClusterRuntime;

  void worker_loop(int resource);
  void gpu_manager_loop(int resource, int gpu);
  void run_smp_task(Task* t, int resource);
  void finish_task(Task* t, int resource);
  void on_ready(Task* t, Task* releaser);
  DependencyDomain& domain_for_spawn();

  vt::Clock& clock_;
  RuntimeConfig cfg_;
  common::Stats stats_;
  simcuda::Platform platform_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<CoherenceManager> coherence_;
  std::unique_ptr<verify::RaceOracle> oracle_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<DependencyDomain> root_domain_;

  std::mutex tasks_mu_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::uint64_t next_task_id_ = 1;

  mutable std::mutex error_mu_;
  std::exception_ptr task_error_;

  std::vector<simcuda::Stream*> compute_streams_;  // one per GPU
  std::vector<vt::Thread> threads_;
};

}  // namespace nanos
