#include "nanos/runtime.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace nanos {

namespace {
thread_local Task* t_current_task = nullptr;
thread_local Runtime* t_current_runtime = nullptr;

struct CurrentTaskScope {
  CurrentTaskScope(Runtime* rt, Task* t)
      : prev_task(t_current_task), prev_rt(t_current_runtime) {
    t_current_task = t;
    t_current_runtime = rt;
  }
  ~CurrentTaskScope() {
    t_current_task = prev_task;
    t_current_runtime = prev_rt;
  }
  Task* prev_task;
  Runtime* prev_rt;
};
}  // namespace

RuntimeConfig RuntimeConfig::from(const common::Config& c) {
  RuntimeConfig cfg;
  cfg.scheduler = c.get_string("scheduler", cfg.scheduler);
  cfg.cache_policy = c.get_string("cache", cfg.cache_policy);
  cfg.overlap = c.get_bool("overlap", cfg.overlap);
  cfg.prefetch = c.get_bool("prefetch", cfg.prefetch);
  cfg.smp_workers = static_cast<int>(c.get_int("smp_workers", cfg.smp_workers));
  cfg.smp_gflops = c.get_double("smp_gflops", cfg.smp_gflops);
  cfg.host_memcpy_bandwidth = c.get_double("host_bw", cfg.host_memcpy_bandwidth);
  cfg.trace_path = c.get_string("trace", cfg.trace_path);
  cfg.verify = c.get_string("verify", cfg.verify);
  cfg.verify_sample = static_cast<int>(c.get_int("verify_sample", cfg.verify_sample));
  cfg.verify_crosscheck = c.get_bool("verify_crosscheck", cfg.verify_crosscheck);
  cfg.early_release = c.get_bool("early_release", cfg.early_release);
  cfg.presend = static_cast<int>(c.get_int("presend", cfg.presend));
  cfg.slave_to_slave = c.get_bool("stos", cfg.slave_to_slave);
  int gpus = static_cast<int>(c.get_int("gpus", 0));
  for (int i = 0; i < gpus; ++i) cfg.gpus.emplace_back();
  return cfg;
}

Task* Runtime::current_task() { return t_current_task; }

Runtime* Runtime::current_runtime() { return t_current_runtime; }

Runtime::Runtime(vt::Clock& clock, RuntimeConfig cfg)
    : clock_(clock), cfg_(std::move(cfg)), platform_(clock, cfg_.gpus) {
  if (!cfg_.trace_path.empty()) trace_ = std::make_unique<TraceRecorder>(clock_);
  coherence_ = std::make_unique<CoherenceManager>(
      clock_, platform_, parse_cache_policy(cfg_.cache_policy), cfg_.overlap,
      cfg_.host_memcpy_bandwidth, stats_, cfg_.eviction_overhead);
  coherence_->set_trace(trace_.get());

  // taskcheck wiring: violations surface like task-body exceptions — recorded
  // here, rethrown at the next taskwait.
  const verify::VerifyMode vmode = verify::parse_verify_mode(cfg_.verify);
  verify::ErrorSink vsink = [this](std::exception_ptr e) { record_task_error(std::move(e)); };
  if (verify::coherence_enabled(vmode))
    coherence_->set_verify(vmode, vsink, cfg_.verify_crosscheck);
  if (verify::races_enabled(vmode))
    oracle_ = std::make_unique<verify::RaceOracle>(
        vsink, &stats_, static_cast<std::uint64_t>(std::max(1, cfg_.verify_sample)));

  // Injected device faults (kernel aborts, failed copies) surface exactly
  // like task-body exceptions: captured here, rethrown at the next taskwait.
  for (int g = 0; g < platform_.device_count(); ++g) {
    platform_.device(g).set_fault_handler([this](const simcuda::DeviceError& e) {
      record_task_error(std::make_exception_ptr(e));
    });
  }

  std::vector<DeviceKind> kinds;
  for (int i = 0; i < cfg_.smp_workers; ++i) kinds.push_back(DeviceKind::kSmp);
  for (int g = 0; g < platform_.device_count(); ++g) kinds.push_back(DeviceKind::kCuda);

  const int smp_workers = cfg_.smp_workers;
  AffinityFn affinity = [this, smp_workers](const Task& t, int resource) {
    int space = resource < smp_workers ? CoherenceManager::kHostSpace
                                       : resource - smp_workers + 1;
    return coherence_->affinity_bytes(t, space);
  };
  // Batch oracle: one directory pass prices every resource (the per-resource
  // oracle above stays as the scheduler's fallback).
  const std::size_t n_resources = kinds.size();
  AffinityBatchFn affinity_batch = [this, smp_workers, n_resources](const Task& t) {
    const std::vector<double> per_space = coherence_->affinity_bytes_all(t);
    std::vector<double> per_resource(n_resources, 0.0);
    for (std::size_t r = 0; r < n_resources; ++r) {
      const int space = static_cast<int>(r) < smp_workers
                            ? CoherenceManager::kHostSpace
                            : static_cast<int>(r) - smp_workers + 1;
      per_resource[r] = per_space.at(static_cast<std::size_t>(space));
    }
    return per_resource;
  };
  sched_ = Scheduler::create(cfg_.scheduler, clock_, kinds, std::move(affinity),
                             std::move(affinity_batch), &stats_);

  root_domain_ = std::make_unique<DependencyDomain>(
      clock_, [this](Task* t, Task* releaser) { on_ready(t, releaser); }, &stats_);
  root_domain_->set_race_oracle(oracle_.get());

  vt::Hold hold(clock_);
  for (int g = 0; g < platform_.device_count(); ++g)
    compute_streams_.push_back(platform_.device(g).create_stream());
  for (int i = 0; i < cfg_.smp_workers; ++i) {
    threads_.emplace_back(
        clock_, "smp" + std::to_string(i), [this, i] { worker_loop(i); }, /*service=*/true);
  }
  for (int g = 0; g < platform_.device_count(); ++g) {
    int resource = cfg_.smp_workers + g;
    threads_.emplace_back(
        clock_, "gpumgr" + std::to_string(g),
        [this, resource, g] { gpu_manager_loop(resource, g); }, /*service=*/true);
  }
}

Runtime::~Runtime() {
  sched_->shutdown();
  for (auto& t : threads_) t.join();
  if (trace_ && !trace_->write(cfg_.trace_path))
    LOG_WARN("could not write trace to ", cfg_.trace_path);
}

DependencyDomain& Runtime::domain_for_spawn() {
  Task* cur = current_task();
  if (cur == nullptr) return *root_domain_;
  if (!cur->child_domain) {
    cur->child_domain = std::make_unique<DependencyDomain>(
        clock_, [this](Task* t, Task* releaser) { on_ready(t, releaser); }, &stats_);
    cur->child_domain->set_race_oracle(oracle_.get());
  }
  return *cur->child_domain;
}

Task* Runtime::allocate_task(TaskDesc desc) {
  std::lock_guard<std::mutex> lk(tasks_mu_);
  tasks_.push_back(std::make_unique<Task>(next_task_id_++, std::move(desc), clock_));
  return tasks_.back().get();
}

Task* Runtime::spawn(TaskDesc desc) {
  Task* t = allocate_task(std::move(desc));
  stats_.incr("tasks.spawned");
  domain_for_spawn().submit(t);
  return t;
}

void Runtime::on_ready(Task* t, Task* releaser) {
  sched_->submit(t, releaser != nullptr ? releaser->resource : -1);
}

bool Runtime::has_task_error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return task_error_ != nullptr;
}

void Runtime::record_task_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> lk(error_mu_);
  if (!task_error_) task_error_ = std::move(e);  // first error wins
  stats_.incr("tasks.failed");
}

void Runtime::rethrow_task_error() {
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    std::swap(e, task_error_);
  }
  if (e) std::rethrow_exception(e);
}

void Runtime::taskwait(bool flush) {
  Task* cur = current_task();
  if (cur != nullptr) {
    if (cur->child_domain) cur->child_domain->wait_all();
  } else {
    root_domain_->wait_all();
  }
  if (flush) coherence_->flush_all();
  // Quiesce point: counters accumulated since the last taskwait become
  // visible even when this is a `noflush` wait (flush_all would otherwise be
  // the only publisher this side of shutdown).
  sched_->flush_stats();
  if (oracle_) oracle_->flush_stats();
  rethrow_task_error();
}

void Runtime::taskwait_on(const common::Region& r) {
  Task* cur = current_task();
  DependencyDomain& dom =
      cur != nullptr && cur->child_domain ? *cur->child_domain : *root_domain_;
  dom.wait_on(r);
  coherence_->flush_region(r);
}

void Runtime::worker_loop(int resource) {
  for (;;) {
    Task* t = sched_->get(resource);
    if (t == nullptr) return;
    run_smp_task(t, resource);
  }
}

void Runtime::run_smp_task(Task* t, int resource) {
  double trace_begin = trace_ ? trace_->begin() : 0;
  std::vector<void*> ptrs = coherence_->acquire(*t, CoherenceManager::kHostSpace);
  // SMP compute time from the cost model (real body work is free in vt).
  double duration = t->desc().cost.flops / (cfg_.smp_gflops * 1e9);
  if (duration > 0) clock_.sleep_for(duration);
  {
    CurrentTaskScope scope(this, t);
    TaskContext ctx(*this, *t, std::move(ptrs), nullptr, nullptr, cfg_.node_id);
    try {
      if (t->desc().fn) t->desc().fn(ctx);
    } catch (const vt::Cancelled&) {
      throw;  // simulation unwinding, not an application error
    } catch (...) {
      // A failing task must not kill the worker: capture the error, let the
      // graph settle, and surface it at the next taskwait.
      record_task_error(std::current_exception());
    }
    // Implicit wait for children: a parent is not complete before its
    // descendants are (the data they produced is part of its effects).
    if (t->child_domain) t->child_domain->wait_all();
  }
  coherence_->release(*t, CoherenceManager::kHostSpace);
  if (trace_) trace_->record("task", "smp" + std::to_string(resource), t->label(), trace_begin);
  finish_task(t, resource);
}

void Runtime::gpu_manager_loop(int resource, int gpu) {
  const int space = gpu + 1;
  simcuda::Device& dev = platform_.device(gpu);
  simcuda::Stream* compute = compute_streams_[static_cast<std::size_t>(gpu)];

  Task* next = nullptr;
  std::vector<void*> next_ptrs;
  for (;;) {
    Task* t;
    std::vector<void*> ptrs;
    if (next != nullptr) {
      t = next;
      ptrs = std::move(next_ptrs);
      next = nullptr;
    } else {
      t = sched_->get(resource);
      if (t == nullptr) return;
      ptrs = coherence_->acquire(*t, space);
    }
    double trace_begin = trace_ ? trace_->begin() : 0;
    // Inputs must be resident before the kernel starts.
    coherence_->sync_transfers(space);

    simcuda::Event done(clock_);
    {
      // The task body runs as the kernel payload on the device, operating on
      // the translated (device-memory) pointers.
      TaskContext ctx(*this, *t, std::move(ptrs), &dev, compute, cfg_.node_id);
      TaskFn fn = t->desc().fn;
      Runtime* rt = this;
      dev.launch_kernel(*compute, t->desc().cost, [rt, fn = std::move(fn), ctx]() mutable {
        try {
          if (fn) fn(ctx);
        } catch (...) {
          // Kernel payloads run on the device engine; a failure there must
          // not kill the engine thread either.
          rt->record_task_error(std::current_exception());
        }
      });
    }
    dev.record_event(*compute, done);

    if (cfg_.prefetch) {
      // Acquire the next task's data while the kernel runs (paper §III-D2).
      next = sched_->try_get(resource);
      if (next != nullptr) next_ptrs = coherence_->acquire(*next, space);
    }

    done.synchronize();
    coherence_->release(*t, space);
    if (trace_) trace_->record("task", "gpu" + std::to_string(gpu), t->label(), trace_begin);
    finish_task(t, resource);
  }
}

void Runtime::finish_task(Task* t, int resource) {
  stats_.incr("tasks.executed");
  t->resource = resource;
  if (t->desc().completion_cb) t->desc().completion_cb();
  t->domain->on_complete(t);
}

void Runtime::submit_external(Task* t, int releaser_resource) {
  sched_->submit(t, releaser_resource);
}

void Runtime::early_release(Task& t, const common::Region& r) {
  if (!cfg_.early_release) return;
  // Gate on fully covered accesses: commit and mask are per-access, so a
  // range covering only part of an access releases nothing (conservative —
  // the body may still touch the uncovered bytes, and the access's arcs
  // guard the whole region).
  const auto& accesses = t.accesses();
  const std::size_t n = std::min<std::size_t>(accesses.size(), 64);
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!accesses[i].region.empty() && r.contains(accesses[i].region)) bits |= 1ull << i;
  }
  if (bits == 0) return;
  const std::uint64_t prev = t.released_mask.fetch_or(bits, std::memory_order_acq_rel);
  const std::uint64_t fresh = bits & ~prev;
  if (fresh == 0) return;  // double release of the same range: idempotent
  stats_.incr("tasks.early_releases");
  // Commit written data before any arc drops: the moment a successor's last
  // arc falls it may run and overwrite the bytes.
  for (std::size_t i = 0; i < n; ++i) {
    if ((fresh & (1ull << i)) == 0) continue;
    const Access& a = accesses[i];
    if (writes(a.mode) && a.copy) coherence_->commit_host_write(a.region);
  }
  // Cluster hook next (node-directory commit + vouch to the master), still
  // ahead of the local arc release for the same reason.  Once per *fresh*
  // access — never per released range — so overlapping release calls commit
  // each access exactly once.
  if (t.desc().release_cb) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((fresh & (1ull << i)) != 0) t.desc().release_cb(accesses[i].region);
    }
  }
  if (t.domain != nullptr) t.domain->release_region(&t, r);
}

}  // namespace nanos
