// Wait-free ready queue: bounded lock-free ring + mutex-guarded overflow.
//
// The scheduler hot path (publish a ready task, pick/steal one) used to take
// a per-queue std::mutex on every operation.  Under streaming ingestion
// (bench/str01_servicebench) those locks are the dominant cost: every worker
// and every releasing task serializes on the same handful of queues.  This
// queue makes the common case mutex-free:
//
//  * a bounded MPMC ring (Vyukov-style, per-slot sequence numbers) absorbs
//    pushes and pops with one CAS each — no locks, no spurious failure when
//    the ring is neither full nor empty;
//  * an overflow list (std::mutex + deque) catches pushes that find the ring
//    full, so push() never fails and never spins.  The lock is touched only
//    while the overflow list is actually in use — a correctly sized ring
//    keeps it cold.
//
// Ordering is FIFO: ring entries are always older than overflow entries
// (pushes divert to the overflow list whenever it is non-empty, so ring and
// overflow never interleave out of age order), and pops drain the ring
// first.  The check is racy across concurrent pushers, so two tasks
// published at the same instant may swap — schedulers only promise rough
// FIFO anyway.
//
// The queue is single-ended: thieves pop the same (oldest) end the owner
// does.  The previous deque stole from the back ("least-affine recent
// work"); oldest-first stealing trades that affinity heuristic for bounded
// waiting time under sustained load, which the streaming scenario cares
// about more.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

namespace nanos {

class Task;

namespace detail {

class ReadyQueue {
public:
  /// `capacity` is rounded up to a power of two (minimum 4).
  explicit ReadyQueue(std::size_t capacity = 512) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
    mask_ = cap - 1;
  }

  ReadyQueue(const ReadyQueue&) = delete;
  ReadyQueue& operator=(const ReadyQueue&) = delete;
  ReadyQueue(ReadyQueue&&) = delete;

  /// Publishes `t`.  Lock-free unless the ring is full or the overflow list
  /// is already in use; never fails.
  void push(Task* t) {
    // Overflow entries are younger than every ring entry; keep it that way
    // (FIFO) by diverting new pushes while any overflow remains.
    if (overflow_size_.load(std::memory_order_acquire) == 0 && try_push_ring(t)) return;
    std::lock_guard<std::mutex> lk(overflow_mu_);
    overflow_.push_back(t);
    overflow_size_.fetch_add(1, std::memory_order_release);
  }

  /// Pops the oldest task, or nullptr when the queue is empty.  Lock-free on
  /// the ring; takes the overflow lock only when the overflow list is
  /// non-empty.
  Task* try_pop() {
    if (Task* t = try_pop_ring()) return t;
    if (overflow_size_.load(std::memory_order_acquire) == 0) return nullptr;
    std::lock_guard<std::mutex> lk(overflow_mu_);
    return pop_overflow_locked();
  }

  /// Non-blocking steal probe: like try_pop(), but the overflow lock is only
  /// try-locked.  When the probe comes up empty *because* the lock was held,
  /// `*collided` is set — the caller must re-sweep with try_pop() before
  /// concluding the queue is empty (skipping could strand the only runnable
  /// task and deadlock the virtual clock).
  Task* try_pop_weak(bool* collided) {
    if (Task* t = try_pop_ring()) return t;
    if (overflow_size_.load(std::memory_order_acquire) == 0) return nullptr;
    std::unique_lock<std::mutex> lk(overflow_mu_, std::try_to_lock);
    if (!lk.owns_lock()) {
      if (collided != nullptr) *collided = true;
      return nullptr;
    }
    return pop_overflow_locked();
  }

  /// Approximate emptiness (racy by nature; used for placement heuristics).
  bool empty() const {
    if (overflow_size_.load(std::memory_order_acquire) != 0) return false;
    const std::size_t pos = head_.load(std::memory_order_acquire);
    const Cell& c = cells_[pos & mask_];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    return static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) < 0;
  }

private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    Task* task = nullptr;
  };

  bool try_push_ring(Task* t) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::size_t seq = c.seq.load(std::memory_order_acquire);
      const std::intptr_t dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          c.task = t;
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  Task* try_pop_ring() {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::size_t seq = c.seq.load(std::memory_order_acquire);
      const std::intptr_t dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          Task* t = c.task;
          c.seq.store(pos + mask_ + 1, std::memory_order_release);
          return t;
        }
      } else if (dif < 0) {
        return nullptr;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  Task* pop_overflow_locked() {
    if (overflow_.empty()) return nullptr;
    Task* t = overflow_.front();
    overflow_.pop_front();
    overflow_size_.fetch_sub(1, std::memory_order_release);
    return t;
  }

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> overflow_size_{0};
  std::mutex overflow_mu_;
  std::deque<Task*> overflow_;
};

}  // namespace detail
}  // namespace nanos
