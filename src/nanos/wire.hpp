// Wire-message layouts of the cluster protocol.
//
// These structs are the exact bodies the cluster layer sends as active
// messages (see the Handler enum in cluster.hpp for which handler carries
// which).  They live in their own header so protocol tooling — simcheck's
// message classifier, wire-trace decoders — can parse fabric traffic without
// reaching into the runtime's internals.  The simulation shares one address
// space, so pointers travel raw (a real implementation would serialize
// segment offsets the way the paper's GASNet layer does).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace nanos::wire {

/// kStageDone: a staged region landed on `node` (destination -> resolver).
struct StageDoneMsg {
  std::uintptr_t start;
  std::size_t size;
  int node;
};

/// kForward: resolver -> holder, put the region to a third node.
struct ForwardMsg {
  std::uintptr_t start;  // master-side region identity
  std::size_t size;
  void* src_addr;   // copy location on the holding node
  int dst_node;
  void* dst_addr;   // copy location on the destination node
  int ack_node;     // where the landed copy is acknowledged (home or master)
};

/// kStageReq: master -> home, resolve a transfer source and forward.
struct StageReqMsg {
  std::uintptr_t start;
  std::size_t size;
  int dst_node;
};

/// kDoneVouch: home -> master, a region's commit is in the directory.
struct VouchMsg {
  std::uint64_t ticket;
  std::uintptr_t start;
  int exec_node;
};

/// kEarlyCommit (exec node -> home) and kEarlyVouch (home -> master): a
/// still-running task released one written region early.  Carries the size —
/// unlike VouchMsg — because the master releases the region's dependence
/// arcs, which needs the full extent, not just the directory key.
struct EarlyCommitMsg {
  std::uint64_t ticket;
  std::uintptr_t start;
  std::size_t size;
  int exec_node;
};

/// kDoneAck: a count-prefixed batch of completion tickets.  Only the used
/// prefix travels on the wire (sizeof(count) + count * 8 bytes).
constexpr int kAckVecMax = 32;
struct DoneAckMsg {
  std::uint64_t count = 0;
  std::uint64_t tickets[kAckVecMax] = {};
};
constexpr std::size_t ack_msg_bytes(std::uint64_t count) {
  return sizeof(std::uint64_t) * (1 + count);
}

/// kPull: master -> holder, put the region back to master memory.
struct PullMsg {
  std::uintptr_t start;
  std::size_t size;
  void* src_addr;     // copy location on the holding node
  void* master_addr;  // the region's home in master memory
};

template <typename T>
T read_msg(const void* payload, std::size_t bytes) {
  T msg;
  assert(bytes == sizeof(T));
  (void)bytes;
  std::memcpy(&msg, payload, sizeof(T));
  return msg;
}

}  // namespace nanos::wire
