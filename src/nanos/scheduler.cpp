#include "nanos/scheduler.hpp"

#include <stdexcept>

namespace nanos {
namespace detail {

// ---------------------------------------------------------------------------
// SchedulerBase

SchedulerBase::~SchedulerBase() { flush_stats(); }

void SchedulerBase::publish_stats_locked() {
  if (stats_ == nullptr) return;
  const std::uint64_t steals = steals_.load(std::memory_order_relaxed);
  if (steals != published_steals_) {
    stats_->add("sched.steals", static_cast<double>(steals - published_steals_));
    published_steals_ = steals;
  }
  const std::uint64_t coll = lock_collisions_.load(std::memory_order_relaxed);
  if (coll != published_collisions_) {
    stats_->add("sched.lock_collisions", static_cast<double>(coll - published_collisions_));
    published_collisions_ = coll;
  }
  const std::uint64_t spurious = spurious_wakes_.load(std::memory_order_relaxed);
  if (spurious != published_spurious_) {
    stats_->add("sched.spurious_wakes", static_cast<double>(spurious - published_spurious_));
    published_spurious_ = spurious;
  }
}

void SchedulerBase::flush_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  publish_stats_locked();
}

void SchedulerBase::submit(Task* t, int releaser_resource) {
  queued_count_.fetch_add(1, std::memory_order_relaxed);
  const DeviceKind kind = t->device();
  place(t, releaser_resource);
  // Dekker-style pairing with get(): the waiter bumps waiters (seq_cst)
  // *before* re-scanning the queues; we publish the task (ring release
  // store) *before* this seq_cst load.  Either we observe the waiter and
  // notify, or the waiter's re-scan observes the task — a sleep can't
  // swallow a submit.  One published task wakes ONE worker of the task's
  // kind; waking them all is a thundering herd (every loser re-scans the
  // queues, finds nothing, and goes back to sleep).
  WaitSlot& ws = wait_for(kind);
  if (ws.waiters.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(ws.mu);
    ws.mon.notify_one();
  }
}

Task* SchedulerBase::get(int resource) {
  if (Task* t = pick(resource)) {
    queued_count_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  WaitSlot& ws = wait_for(kind_of(resource));
  std::unique_lock<std::mutex> lk(ws.mu);
  ws.waiters.fetch_add(1, std::memory_order_seq_cst);
  Task* t = nullptr;
  bool slept = false;
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) break;
    t = pick(resource);
    if (t != nullptr) break;
    // Woken but found nothing: either another getter raced us to the task
    // or the wake had no cause.  With one notify_one per published task
    // this stays near zero (asserted in sched_test).
    if (slept) spurious_wakes_.fetch_add(1, std::memory_order_relaxed);
    ws.mon.wait(lk);
    slept = true;
  }
  ws.waiters.fetch_sub(1, std::memory_order_relaxed);
  if (t != nullptr) queued_count_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

Task* SchedulerBase::try_get(int resource) {
  if (shutdown_.load(std::memory_order_acquire)) return nullptr;
  Task* t = pick(resource);
  if (t != nullptr) queued_count_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

void SchedulerBase::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (WaitSlot* ws : {&wait_smp_, &wait_cuda_}) {
    std::lock_guard<std::mutex> lk(ws->mu);
    ws->mon.notify_all();
  }
  flush_stats();
}

std::size_t SchedulerBase::queued() const {
  return queued_count_.load(std::memory_order_relaxed);
}

Task* SchedulerBase::steal_local(int resource) {
  // First pass: non-blocking probes only — an overflow-lock collision is
  // counted and remembered, never blocked on mid-sweep.
  bool collided_any = false;
  for (std::size_t r = 0; r < resource_count(); ++r) {
    if (static_cast<int>(r) == resource || kind_of(static_cast<int>(r)) != kind_of(resource))
      continue;
    bool collided = false;
    if (Task* t = local_[r].try_pop_weak(&collided)) {
      t->resource = resource;
      steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
    if (collided) {
      lock_collisions_.fetch_add(1, std::memory_order_relaxed);
      collided_any = true;
    }
  }
  // Second pass, only when a collision may have hidden work: blocking pops.
  // Returning empty-handed past a held lock could strand the only runnable
  // task and deadlock the virtual clock.
  if (collided_any) {
    for (std::size_t r = 0; r < resource_count(); ++r) {
      if (static_cast<int>(r) == resource || kind_of(static_cast<int>(r)) != kind_of(resource))
        continue;
      if (Task* t = local_[r].try_pop()) {
        t->resource = resource;
        steals_.fetch_add(1, std::memory_order_relaxed);
        return t;
      }
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// breadth-first

void BreadthFirstScheduler::place(Task* t, int) { push_shared(t); }

Task* BreadthFirstScheduler::pick(int resource) { return pop_shared(resource); }

// ---------------------------------------------------------------------------
// dependencies (successor-first)

void DependenciesScheduler::place(Task* t, int releaser_resource) {
  if (releaser_resource >= 0 &&
      kind_of(releaser_resource) == (t->device() == DeviceKind::kCuda ? DeviceKind::kCuda
                                                                      : DeviceKind::kSmp)) {
    // *One* successor of the just-finished task runs next on its resource
    // (they share data).  Further released successors go to the global
    // queue — reserving them all would starve the other resources.  The
    // empty check is racy across concurrent releasers; the worst case is
    // two successors parked in the slot, which the FIFO drain absorbs.
    ReadyQueue& slot = local_[static_cast<std::size_t>(releaser_resource)];
    if (slot.empty()) {
      slot.push(t);
      return;
    }
  }
  push_shared(t);
}

Task* DependenciesScheduler::pick(int resource) {
  if (Task* t = local_[static_cast<std::size_t>(resource)].try_pop()) {
    t->resource = resource;
    return t;
  }
  if (Task* t = BreadthFirstScheduler::pick(resource)) return t;
  // A successor slot is normally drained by its own resource right after the
  // releaser finishes — but an early-releasing task keeps its resource busy
  // long after parking a successor there.  Idle peers must be able to take it.
  return steal_local(resource);
}

// ---------------------------------------------------------------------------
// locality-aware (affinity)

void AffinityScheduler::place(Task* t, int) {
  // Score every resource of the matching kind; the task goes to the clear
  // winner's local queue, or to the global queue when nobody stands out.
  // The batch oracle prices all resources in one directory pass.
  const DeviceKind kind = t->device();
  std::vector<double> scores;
  if (batch_) scores = batch_(*t);
  double best = 0.0;
  int best_resource = -1;
  bool tie = false;
  for (std::size_t r = 0; r < resource_count(); ++r) {
    if (kind_of(static_cast<int>(r)) != kind) continue;
    double score = 0.0;
    if (r < scores.size()) {
      score = scores[r];
    } else if (affinity_) {
      score = affinity_(*t, static_cast<int>(r));
    }
    if (score > best) {
      best = score;
      best_resource = static_cast<int>(r);
      tie = false;
    } else if (score == best && best > 0.0) {
      tie = true;
    }
  }
  if (best_resource >= 0 && !tie) {
    local_[static_cast<std::size_t>(best_resource)].push(t);
  } else {
    push_shared(t);
  }
}

Task* AffinityScheduler::pick(int resource) {
  // 1. own local queue
  if (Task* t = local_[static_cast<std::size_t>(resource)].try_pop()) {
    t->resource = resource;
    return t;
  }
  // 2. global queue of my kind
  if (Task* t = pop_shared(resource)) return t;
  // 3. steal from a peer's local queue (load balance).
  return steal_local(resource);
}

}  // namespace detail

std::unique_ptr<Scheduler> Scheduler::create(const std::string& policy, vt::Clock& clock,
                                             std::vector<DeviceKind> resource_kinds,
                                             AffinityFn affinity, AffinityBatchFn affinity_batch,
                                             common::Stats* stats) {
  if (policy == "bf")
    return std::make_unique<detail::BreadthFirstScheduler>(clock, std::move(resource_kinds),
                                                           stats);
  if (policy == "dep" || policy == "default" || policy == "dependencies")
    return std::make_unique<detail::DependenciesScheduler>(clock, std::move(resource_kinds),
                                                           stats);
  if (policy == "affinity" || policy == "locality")
    return std::make_unique<detail::AffinityScheduler>(clock, std::move(resource_kinds),
                                                       std::move(affinity),
                                                       std::move(affinity_batch), stats);
  throw std::invalid_argument("unknown scheduler policy '" + policy + "' (bf|dep|affinity)");
}

}  // namespace nanos
