#include "nanos/scheduler.hpp"

#include <stdexcept>

namespace nanos {
namespace detail {

// ---------------------------------------------------------------------------
// SchedulerBase

void SchedulerBase::submit(Task* t, int releaser_resource) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    place_locked(t, releaser_resource);
    ++queued_count_;
  }
  mon_.notify_all();
}

Task* SchedulerBase::get(int resource) {
  std::unique_lock<std::mutex> lk(mu_);
  Task* t = nullptr;
  mon_.wait(lk, [&] {
    if (shutdown_) return true;
    t = pick_locked(resource);
    return t != nullptr;
  });
  if (t != nullptr) --queued_count_;
  return t;
}

Task* SchedulerBase::try_get(int resource) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_) return nullptr;
  Task* t = pick_locked(resource);
  if (t != nullptr) --queued_count_;
  return t;
}

void SchedulerBase::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  mon_.notify_all();
}

std::size_t SchedulerBase::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_count_;
}

// ---------------------------------------------------------------------------
// breadth-first

void BreadthFirstScheduler::place_locked(Task* t, int) {
  (t->device() == DeviceKind::kCuda ? cuda_queue_ : smp_queue_).push_back(t);
}

Task* BreadthFirstScheduler::pick_locked(int resource) {
  auto& q = kind_of(resource) == DeviceKind::kCuda ? cuda_queue_ : smp_queue_;
  if (q.empty()) return nullptr;
  Task* t = q.front();
  q.pop_front();
  t->resource = resource;
  return t;
}

// ---------------------------------------------------------------------------
// dependencies (successor-first)

void DependenciesScheduler::place_locked(Task* t, int releaser_resource) {
  if (releaser_resource >= 0 &&
      kind_of(releaser_resource) == (t->device() == DeviceKind::kCuda ? DeviceKind::kCuda
                                                                      : DeviceKind::kSmp) &&
      next_for_[static_cast<std::size_t>(releaser_resource)].empty()) {
    // *One* successor of the just-finished task runs next on its resource
    // (they share data).  Further released successors go to the global
    // queue — reserving them all would starve the other resources.
    next_for_[static_cast<std::size_t>(releaser_resource)].push_back(t);
    return;
  }
  BreadthFirstScheduler::place_locked(t, releaser_resource);
}

Task* DependenciesScheduler::pick_locked(int resource) {
  auto& slot = next_for_[static_cast<std::size_t>(resource)];
  if (!slot.empty()) {
    Task* t = slot.front();
    slot.pop_front();
    t->resource = resource;
    return t;
  }
  return BreadthFirstScheduler::pick_locked(resource);
}

// ---------------------------------------------------------------------------
// locality-aware (affinity)

void AffinityScheduler::place_locked(Task* t, int) {
  // Score every resource of the matching kind; the task goes to the clear
  // winner's local queue, or to the global queue when nobody stands out.
  const DeviceKind kind = t->device();
  double best = 0.0;
  int best_resource = -1;
  bool tie = false;
  for (std::size_t r = 0; r < resource_count(); ++r) {
    if (kind_of(static_cast<int>(r)) != kind) continue;
    double score = affinity_ ? affinity_(*t, static_cast<int>(r)) : 0.0;
    if (score > best) {
      best = score;
      best_resource = static_cast<int>(r);
      tie = false;
    } else if (score == best && best > 0.0) {
      tie = true;
    }
  }
  if (best_resource >= 0 && !tie) {
    local_[static_cast<std::size_t>(best_resource)].push_back(t);
  } else {
    (kind == DeviceKind::kCuda ? global_cuda_ : global_smp_).push_back(t);
  }
}

Task* AffinityScheduler::pick_locked(int resource) {
  // 1. own local queue
  auto& mine = local_[static_cast<std::size_t>(resource)];
  if (!mine.empty()) {
    Task* t = mine.front();
    mine.pop_front();
    t->resource = resource;
    return t;
  }
  // 2. global queue of my kind
  auto& global = kind_of(resource) == DeviceKind::kCuda ? global_cuda_ : global_smp_;
  if (!global.empty()) {
    Task* t = global.front();
    global.pop_front();
    t->resource = resource;
    return t;
  }
  // 3. steal from the back of a peer's local queue (load balance)
  for (std::size_t r = 0; r < resource_count(); ++r) {
    if (static_cast<int>(r) == resource || kind_of(static_cast<int>(r)) != kind_of(resource))
      continue;
    auto& q = local_[r];
    if (!q.empty()) {
      Task* t = q.back();
      q.pop_back();
      t->resource = resource;
      return t;
    }
  }
  return nullptr;
}

}  // namespace detail

std::unique_ptr<Scheduler> Scheduler::create(const std::string& policy, vt::Clock& clock,
                                             std::vector<DeviceKind> resource_kinds,
                                             AffinityFn affinity) {
  if (policy == "bf")
    return std::make_unique<detail::BreadthFirstScheduler>(clock, std::move(resource_kinds));
  if (policy == "dep" || policy == "default" || policy == "dependencies")
    return std::make_unique<detail::DependenciesScheduler>(clock, std::move(resource_kinds));
  if (policy == "affinity" || policy == "locality")
    return std::make_unique<detail::AffinityScheduler>(clock, std::move(resource_kinds),
                                                       std::move(affinity));
  throw std::invalid_argument("unknown scheduler policy '" + policy + "' (bf|dep|affinity)");
}

}  // namespace nanos
