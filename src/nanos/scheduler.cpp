#include "nanos/scheduler.hpp"

#include <stdexcept>

namespace nanos {
namespace detail {

// ---------------------------------------------------------------------------
// SchedulerBase

SchedulerBase::~SchedulerBase() { publish_stats(); }

void SchedulerBase::publish_stats() {
  if (stats_ == nullptr) return;
  const std::uint64_t steals = steals_.load(std::memory_order_relaxed);
  if (steals != published_steals_) {
    stats_->add("sched.steals", static_cast<double>(steals - published_steals_));
    published_steals_ = steals;
  }
  const std::uint64_t coll = lock_collisions_.load(std::memory_order_relaxed);
  if (coll != published_collisions_) {
    stats_->add("sched.lock_collisions", static_cast<double>(coll - published_collisions_));
    published_collisions_ = coll;
  }
}

void SchedulerBase::submit(Task* t, int releaser_resource) {
  queued_count_.fetch_add(1, std::memory_order_relaxed);
  place(t, releaser_resource);
  // Dekker-style pairing with get(): the waiter bumps waiters_ (seq_cst)
  // *before* re-scanning the queues; we publish the task (queue unlock)
  // *before* this seq_cst load.  Either we observe the waiter and notify, or
  // the waiter's re-scan observes the task — a sleep can't swallow a submit.
  if (waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(wait_mu_);
    mon_.notify_all();
  }
}

Task* SchedulerBase::get(int resource) {
  if (Task* t = pick(resource)) {
    queued_count_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  std::unique_lock<std::mutex> lk(wait_mu_);
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  Task* t = nullptr;
  mon_.wait(lk, [&] {
    if (shutdown_.load(std::memory_order_acquire)) return true;
    t = pick(resource);
    return t != nullptr;
  });
  waiters_.fetch_sub(1, std::memory_order_relaxed);
  if (t != nullptr) queued_count_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

Task* SchedulerBase::try_get(int resource) {
  if (shutdown_.load(std::memory_order_acquire)) return nullptr;
  Task* t = pick(resource);
  if (t != nullptr) queued_count_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

void SchedulerBase::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    mon_.notify_all();
  }
  publish_stats();
}

std::size_t SchedulerBase::queued() const {
  return queued_count_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// breadth-first

void BreadthFirstScheduler::place(Task* t, int) { push_shared(t); }

Task* BreadthFirstScheduler::pick(int resource) { return pop_shared(resource); }

// ---------------------------------------------------------------------------
// dependencies (successor-first)

void DependenciesScheduler::place(Task* t, int releaser_resource) {
  if (releaser_resource >= 0 &&
      kind_of(releaser_resource) == (t->device() == DeviceKind::kCuda ? DeviceKind::kCuda
                                                                      : DeviceKind::kSmp)) {
    // *One* successor of the just-finished task runs next on its resource
    // (they share data).  Further released successors go to the global
    // queue — reserving them all would starve the other resources.
    TaskQueue& slot = local_[static_cast<std::size_t>(releaser_resource)];
    std::unique_lock<std::mutex> lk(slot.mu);
    if (slot.q.empty()) {
      slot.q.push_back(t);
      return;
    }
  }
  push_shared(t);
}

Task* DependenciesScheduler::pick(int resource) {
  TaskQueue& slot = local_[static_cast<std::size_t>(resource)];
  {
    std::lock_guard<std::mutex> lk(slot.mu);
    if (!slot.q.empty()) {
      Task* t = slot.q.front();
      slot.q.pop_front();
      t->resource = resource;
      return t;
    }
  }
  return BreadthFirstScheduler::pick(resource);
}

// ---------------------------------------------------------------------------
// locality-aware (affinity)

void AffinityScheduler::place(Task* t, int) {
  // Score every resource of the matching kind; the task goes to the clear
  // winner's local queue, or to the global queue when nobody stands out.
  // The batch oracle prices all resources in one directory pass.
  const DeviceKind kind = t->device();
  std::vector<double> scores;
  if (batch_) scores = batch_(*t);
  double best = 0.0;
  int best_resource = -1;
  bool tie = false;
  for (std::size_t r = 0; r < resource_count(); ++r) {
    if (kind_of(static_cast<int>(r)) != kind) continue;
    double score = 0.0;
    if (r < scores.size()) {
      score = scores[r];
    } else if (affinity_) {
      score = affinity_(*t, static_cast<int>(r));
    }
    if (score > best) {
      best = score;
      best_resource = static_cast<int>(r);
      tie = false;
    } else if (score == best && best > 0.0) {
      tie = true;
    }
  }
  if (best_resource >= 0 && !tie) {
    TaskQueue& tq = local_[static_cast<std::size_t>(best_resource)];
    std::lock_guard<std::mutex> lk(tq.mu);
    tq.q.push_back(t);
  } else {
    push_shared(t);
  }
}

Task* AffinityScheduler::pick(int resource) {
  // 1. own local queue
  {
    TaskQueue& mine = local_[static_cast<std::size_t>(resource)];
    std::lock_guard<std::mutex> lk(mine.mu);
    if (!mine.q.empty()) {
      Task* t = mine.q.front();
      mine.q.pop_front();
      t->resource = resource;
      return t;
    }
  }
  // 2. global queue of my kind
  if (Task* t = pop_shared(resource)) return t;
  // 3. steal from the back of a peer's local queue (load balance).  Peer
  // queues are try-locked; on collision we count it and take the blocking
  // lock anyway — skipping could strand the only runnable task and
  // deadlock the virtual clock.
  for (std::size_t r = 0; r < resource_count(); ++r) {
    if (static_cast<int>(r) == resource || kind_of(static_cast<int>(r)) != kind_of(resource))
      continue;
    TaskQueue& peer = local_[r];
    std::unique_lock<std::mutex> lk(peer.mu, std::try_to_lock);
    if (!lk.owns_lock()) {
      lock_collisions_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
    }
    if (!peer.q.empty()) {
      Task* t = peer.q.back();
      peer.q.pop_back();
      t->resource = resource;
      steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

}  // namespace detail

std::unique_ptr<Scheduler> Scheduler::create(const std::string& policy, vt::Clock& clock,
                                             std::vector<DeviceKind> resource_kinds,
                                             AffinityFn affinity, AffinityBatchFn affinity_batch,
                                             common::Stats* stats) {
  if (policy == "bf")
    return std::make_unique<detail::BreadthFirstScheduler>(clock, std::move(resource_kinds),
                                                           stats);
  if (policy == "dep" || policy == "default" || policy == "dependencies")
    return std::make_unique<detail::DependenciesScheduler>(clock, std::move(resource_kinds),
                                                           stats);
  if (policy == "affinity" || policy == "locality")
    return std::make_unique<detail::AffinityScheduler>(clock, std::move(resource_kinds),
                                                       std::move(affinity),
                                                       std::move(affinity_batch), stats);
  throw std::invalid_argument("unknown scheduler policy '" + policy + "' (bf|dep|affinity)");
}

}  // namespace nanos
