// Node-failure recovery for the cluster runtime (see docs/resilience.md).
//
// Invariants this file maintains:
//
//  * Exactly-once commit.  A task's writes enter the directory only when its
//    TASK_DONE is processed against a live ticket; purging a ticket (node
//    death) before re-executing the task elsewhere means a straggler DONE
//    from a falsely-declared node is ignored, never double-committed.
//  * No hang.  Every code path that abandons work fires its waiters with
//    ok=false and completes the affected tasks in the dependency domain with
//    a recorded master-side error, so taskwait always returns — and throws.
//  * Replay soundness.  A lost region is rebuilt by replaying its redo log
//    from the master's stale home copy.  Each redo entry recorded the
//    versions of the inputs its task read; replay only proceeds while those
//    versions are still reproducible (current, or themselves recovering to
//    the same version).  Anything else marks the region permanently lost —
//    a clean error, not silent corruption.
#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "common/log.hpp"
#include "nanos/cluster.hpp"

namespace nanos {

void ClusterRuntime::send_pings() {
  for (int n = 1; n < cfg_.nodes; ++n) {
    bool dead;
    {
      std::lock_guard<std::mutex> lk(mu_);
      dead = nodes_[static_cast<std::size_t>(n)].dead;
    }
    if (dead) continue;
    int self = 0;
    net_->endpoint(0).am_short(n, kPing, &self, sizeof(self));
  }
}

void ClusterRuntime::fail_task_locked(Task* t, const std::string& why,
                                      std::vector<Task*>& to_complete) {
  stats_.incr("res.tasks_failed");
  nodes_[0].rt->record_task_error(std::make_exception_ptr(std::runtime_error(why)));
  to_complete.push_back(t);
}

void ClusterRuntime::retry_or_fail_task(Task* t) {
  if (t->released_mask.load(std::memory_order_acquire) != 0) {
    // The task released outputs early: its arcs were dropped and a successor
    // may already have consumed — or overwritten — the released bytes.
    // Re-executing it would commit a second copy of data the graph has moved
    // past, so this failure is terminal regardless of the retry budget.
    std::vector<Task*> failures;
    {
      std::lock_guard<std::mutex> lk(mu_);
      fail_task_locked(t, "cluster: task '" + t->label() +
                              "' lost to node failure after an early release "
                              "(not retryable)", failures);
    }
    for (Task* f : failures) domain_->on_complete(f);
    return;
  }
  if (cfg_.resilience.retry() && ++t->retries <= cfg_.resilience.max_task_retries) {
    stats_.incr("res.tasks_retried");
    on_ready(t, nullptr);  // re-place on a surviving node
    return;
  }
  std::vector<Task*> failures;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fail_task_locked(t, "cluster: task '" + t->label() + "' lost to node failure (resilience=" +
                            cfg_.resilience.mode + ")", failures);
  }
  for (Task* f : failures) domain_->on_complete(f);
}

void ClusterRuntime::fail_staging_async(const common::Region& region, int node) {
  std::vector<std::function<void()>> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (NodeDirEntry* e = dir_find_locked(region.start)) fail_staging_locked(*e, node, out);
  }
  for (auto& a : out) a();
}

void ClusterRuntime::fail_staging_locked(NodeDirEntry& e, int node,
                                         std::vector<std::function<void()>>& out) {
  e.staging_to.erase(node);
  e.stage_src.erase(node);
  active_stagings_.erase({e.region.start, node});
  e.stage_retries.erase(node);
  stats_.incr("res.stagings_failed");
  auto range = region_waiters_.equal_range({e.region.start, node});
  for (auto w = range.first; w != range.second; ++w)
    out.push_back([cb = std::move(w->second)] { cb(false); });
  region_waiters_.erase(range.first, range.second);
  // Deferred destinations were waiting on this copy; re-issue them directly
  // from the surviving holders instead of abandoning them — unless no source
  // survives at all, in which case they fail too.
  if (!e.deferred.empty()) {
    std::vector<int> deferred = std::move(e.deferred);
    e.deferred.clear();
    const double now = clock_.now();
    for (int d : deferred) {
      if (!node_alive_locked(d)) continue;
      if (e.valid.empty()) {
        fail_staging_locked(e, d, out);  // deferred list is empty: no recursion
        continue;
      }
      auto ds = e.staging_to.find(d);
      if (ds != e.staging_to.end()) ds->second = now;
      auto a = make_wire_action_locked(e, e.region, d);
      if (a) out.push_back(std::move(a));
    }
  }
}

void ClusterRuntime::mark_lost_locked(NodeDirEntry& e,
                                      std::vector<std::function<void()>>& actions) {
  if (e.lost) return;
  e.lost = true;
  e.recovering = false;
  e.pending_regens.clear();
  e.redo_log.clear();
  e.deferred.clear();  // no sound source exists; their stagings fail below
  stats_.incr("res.regions_unrecoverable");
  if (cfg_.probe != nullptr)
    cfg_.probe->on_region_lost(static_cast<std::uint64_t>(e.region.start));
  LOG_WARN("resilience: region @", e.region.start, " (", e.region.size,
           " bytes) lost permanently");
  nodes_[0].rt->record_task_error(std::make_exception_ptr(std::runtime_error(
      "cluster: region lost to node failure and not recoverable (resilience=" +
      cfg_.resilience.mode + ")")));
  // Deferred stagings re-enter stage_region, hit e.lost, and fail cleanly.
  for (auto& w : e.recovery_waiters) actions.push_back(std::move(w));
  e.recovery_waiters.clear();
  // In-flight transfers of this region have no sound source any more.
  std::vector<int> dsts;
  for (const auto& [n, ts] : e.staging_to) dsts.push_back(n);
  for (int n : dsts) fail_staging_locked(e, n, actions);
}

int ClusterRuntime::pick_regen_node_locked() {
  for (int k = 1; k < cfg_.nodes; ++k) {
    int n = 1 + static_cast<int>(regen_rr_++ % static_cast<std::uint64_t>(cfg_.nodes - 1));
    if (node_alive_locked(n)) return n;
  }
  return -1;
}

void ClusterRuntime::advance_recovery_locked(NodeDirEntry& e,
                                             std::vector<std::function<void()>>& actions) {
  if (!e.recovering) return;
  if (e.pending_regens.empty()) {
    e.recovering = false;
    stats_.incr("res.regions_recovered");
    stats_.add("res.recovery_vt", clock_.now() - e.recover_started);
    if (TraceRecorder* tr = nodes_[0].rt->trace())
      tr->record("resilience", "master", "recover", e.recover_started);
    for (auto& w : e.recovery_waiters) actions.push_back(std::move(w));
    e.recovery_waiters.clear();
    return;
  }
  Task* t = e.pending_regens.front();
  int node = pick_regen_node_locked();
  if (node < 0) {
    // No surviving slave to replay on.  Master-local replay would need the
    // chain's inputs home and a private dispatch path; out of scope — give
    // up cleanly instead.
    mark_lost_locked(e, actions);
    return;
  }
  common::Region r = e.region;
  actions.push_back([this, t, node, r] { dispatch_remote(t, node, /*regen=*/true, r); });
}

void ClusterRuntime::schedule_recovery_locked(NodeDirEntry& e,
                                              std::vector<std::function<void()>>& actions) {
  // Full chain to replay: producers committed since the home copy was
  // current, plus whatever an interrupted recovery still had pending.
  std::deque<Task*> chain;
  bool sound = true;
  for (const NodeDirEntry::Redo& rd : e.redo_log) {
    chain.push_back(rd.task);
    for (const auto& [in_region, in_version] : rd.inputs) {
      const NodeDirEntry* ip = dir_find_locked(in_region.start);
      if (ip == nullptr) {
        if (in_version != 0) sound = false;
        continue;
      }
      const NodeDirEntry& ie = *ip;
      // The input's version once any pending regeneration of *it* finishes.
      // version + pending_regens.size() holds in every state — an idle entry
      // has no pending regens, and a lost-but-unscheduled entry satisfies
      // version == master_version + redo_log.size(), which its own rollback
      // replays back to the same number.
      const unsigned projected =
          ie.version + static_cast<unsigned>(ie.pending_regens.size());
      if (ie.lost || projected != in_version) sound = false;
    }
  }
  for (Task* t : e.pending_regens) chain.push_back(t);
  if (!sound) {
    // An input was overwritten (or itself lost beyond recovery) since the
    // producer ran: replaying would compute different data.
    mark_lost_locked(e, actions);
    return;
  }
  if (!e.recovering) {
    e.recovering = true;
    e.recover_started = clock_.now();
    stats_.incr("res.recoveries");
  }
  e.redo_log.clear();
  e.pending_regens = std::move(chain);
  // In-flight consumer stagings of this region are unsound now (their source
  // died, or re-issuing would ship the stale base): convert them into
  // recovery waiters that restage once the chain finished.
  std::vector<std::pair<int, std::function<void(bool)>>> converted;
  for (const auto& [d, ts] : e.staging_to) {
    auto range = region_waiters_.equal_range({e.region.start, d});
    for (auto w = range.first; w != range.second; ++w)
      converted.emplace_back(d, std::move(w->second));
    region_waiters_.erase(range.first, range.second);
    active_stagings_.erase({e.region.start, d});
  }
  e.staging_to.clear();
  e.stage_src.clear();
  e.stage_retries.clear();
  e.deferred.clear();
  const common::Region region = e.region;
  for (auto& [d, cb] : converted) {
    const int dst = d;
    e.recovery_waiters.push_back([this, region, dst, cb2 = std::move(cb)] {
      stage_region_async(region, dst, cb2);
    });
  }
  // Roll back to the stale home base; each replayed commit re-advances the
  // version and rebuilds the redo log.
  e.version = e.master_version;
  if (cfg_.probe != nullptr)
    cfg_.probe->on_region_recovery(static_cast<std::uint64_t>(e.region.start), e.version);
  e.valid.clear();
  e.valid.insert(0);
  advance_recovery_locked(e, actions);
}

void ClusterRuntime::abort_dispatch(RemoteTaskInfo* info) {
  std::vector<std::function<void()>> actions;
  std::vector<Task*> failures;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = in_flight_tasks_.find(info->ticket);
    if (it == in_flight_tasks_.end()) return;  // already purged by a node death
    in_flight_tasks_.erase(it);
    --nodes_[static_cast<std::size_t>(info->target_node)].preparing;
    if (info->regen) {
      if (NodeDirEntry* e = dir_find_locked(info->regen_region.start))
        mark_lost_locked(*e, actions);
    } else {
      fail_task_locked(info->master_task,
                       "cluster: staging failed for task '" + info->master_task->label() +
                           "' after node failure", failures);
    }
  }
  for (auto& a : actions) a();
  for (Task* f : failures) domain_->on_complete(f);
  comm_mon_.notify_all();
}

void ClusterRuntime::on_node_failure(int node) {
  std::vector<std::function<void()>> actions;
  std::vector<Task*> retries;
  std::vector<common::Region> regen_restarts;
  const bool retry = cfg_.resilience.retry();
  {
    std::lock_guard<std::mutex> lk(mu_);
    NodeState& ns = nodes_[static_cast<std::size_t>(node)];
    if (ns.dead) return;
    ns.dead = true;
    stats_.incr("res.failures_detected");
    if (cfg_.probe != nullptr) cfg_.probe->on_node_declared_dead(node);
    const double now = clock_.now();
    for (const auto& k : net_->fault_plan().kills) {
      if (k.node == node && k.time <= now) stats_.add("res.detect_latency", now - k.time);
    }
    if (TraceRecorder* tr = nodes_[0].rt->trace())
      tr->record("resilience", "master", "node" + std::to_string(node) + ".failure", now);

    // 1. Reclaim every task bound to the node: queued, staging, ready to
    //    send, or sent-but-unreported.  Their tickets retire here — a
    //    straggler TASK_DONE (false-positive death) is ignored later.
    for (Task* t : ns.queue) retries.push_back(t);
    ns.queue.clear();
    std::vector<RemoteTaskInfo*> purged;
    for (auto it = in_flight_tasks_.begin(); it != in_flight_tasks_.end();) {
      if (it->second->target_node == node) {
        purged.push_back(it->second);
        it = in_flight_tasks_.erase(it);
      } else {
        ++it;
      }
    }
    for (RemoteTaskInfo* info : purged) {
      if (info->regen)
        regen_restarts.push_back(info->regen_region);
      else
        retries.push_back(info->master_task);
    }
    ns.ready_to_send.clear();
    ns.preparing = 0;
    ns.sent = 0;
    ns.comm_jobs.clear();

    // 2. Waiters for copies that were landing on the dead node dissolve —
    //    the dispatches they served are being retried or failed.
    for (auto it = region_waiters_.begin(); it != region_waiters_.end();) {
      if (it->first.second == node)
        it = region_waiters_.erase(it);
      else
        ++it;
    }

    // 3. Shard handoff: directory entries the dead node homed move to the
    //    next live node in the probe sequence (home_node_locked now skips
    //    the dead node, so shard_locked lands every entry at its new home).
    //    The entry state itself survives — it lives in master memory; only
    //    the serving node changes.  In-flight protocol traffic addressed to
    //    the old home (STAGE_REQ not yet served, STAGE_DONE acks in its RX
    //    queue) died with it, so every in-flight staging of a re-homed
    //    entry is re-issued below.
    std::set<std::uintptr_t> rehomed;
    if (sharded_) {
      auto& dead_shard = dir_[static_cast<std::size_t>(node)];
      if (!dead_shard.empty()) {
        std::vector<std::pair<common::Region, NodeDirEntry>> moved;
        for (auto& [start, slot] : dead_shard)
          moved.emplace_back(slot.region, std::move(slot.value));
        dead_shard = common::IntervalMap<NodeDirEntry>();
        for (auto& [region, value] : moved) {
          auto [slot, inserted] = shard_locked(region.start).try_emplace(region);
          slot->second.value = std::move(value);
          rehomed.insert(region.start);
          stats_.incr("cluster.shards_rehomed");
        }
      }
    }

    // 4. Directory purge: the node holds nothing, sources nothing, and any
    //    region whose only valid copy it held is regenerated or declared
    //    lost.
    for (auto& shard : dir_) {
      for (auto& [start, slot] : shard) {
        NodeDirEntry& e = slot.value;
        e.valid.erase(node);
        e.addr.erase(node);
        if (e.staging_to.erase(node) > 0) active_stagings_.erase({e.region.start, node});
        e.stage_src.erase(node);
        e.stage_retries.erase(node);
        e.deferred.erase(std::remove(e.deferred.begin(), e.deferred.end(), node),
                         e.deferred.end());
        if (e.version > 0 && e.valid.empty() && !e.lost) {
          stats_.incr("res.regions_lost");
          if (retry)
            schedule_recovery_locked(e, actions);
          else
            mark_lost_locked(e, actions);
          continue;  // stagings were converted to recovery waiters (or failed)
        }
        // Transfers the dead node was sourcing never arrive, and transfers of
        // a re-homed entry may have lost their STAGE_REQ or STAGE_DONE with
        // the old home; re-issue each one from a surviving holder (the purge
        // above removed the dead node, so make_wire only considers sound
        // sources).  A duplicate arrival is idempotent — staged_locked
        // tolerates it.  This is the only transfer loss a kill can cause —
        // no timers needed.
        const bool was_rehomed = rehomed.count(e.region.start) != 0;
        std::vector<int> orphaned;
        for (const auto& [d, ts] : e.staging_to) {
          // Deferred destinations have no transfer in flight yet.
          if (std::find(e.deferred.begin(), e.deferred.end(), d) != e.deferred.end()) continue;
          auto s = e.stage_src.find(d);
          if ((s != e.stage_src.end() && s->second == node) || was_rehomed) orphaned.push_back(d);
        }
        for (int d : orphaned) {
          if (!node_alive_locked(d)) continue;
          if (e.valid.count(d) != 0) {
            // The destination committed a fresher copy itself mid-flight: the
            // transfer is moot, settle its waiters as landed.
            staged_locked(e.region, d, actions);
            continue;
          }
          // A transfer whose *source* died needs the retry machinery; one
          // that merely lost its re-homed orchestrator (STAGE_REQ or ack in
          // the dead home's queues) still has a live source, and re-driving
          // it is protocol continuation — allowed in every resilience mode.
          auto s = e.stage_src.find(d);
          const bool src_died = s != e.stage_src.end() && s->second == node;
          if (e.valid.empty() || (src_died && !retry)) {
            fail_staging_locked(e, d, actions);
            continue;
          }
          stats_.incr("res.msg_retries");
          e.staging_to[d] = now;
          auto a = make_wire_action_locked(e, e.region, d);
          if (a) actions.push_back(std::move(a));
        }
      }
    }

    // 5. Regeneration chains that were executing on the dead node and still
    //    have a live base copy (rolled back, first replay in flight): move
    //    them to another node.  Chains whose partial state died entirely
    //    were already rescheduled by the purge above.
    for (const common::Region& r : regen_restarts) {
      NodeDirEntry* e = dir_find_locked(r.start);
      if (e == nullptr) continue;
      if (e->recovering && !e->valid.empty()) advance_recovery_locked(*e, actions);
    }
  }
  for (auto& a : actions) a();
  for (Task* t : retries) retry_or_fail_task(t);
  comm_mon_.notify_all();
  worker_mon_.notify_all();
}

void ClusterRuntime::monitor_tick() {
  const ResilienceConfig& rc = cfg_.resilience;
  // Timer-based retransmission only makes sense when individual messages can
  // vanish (drop/delay models).  In a fault-free or kill-only simnet a
  // message from a live node always arrives — under load (NIC queues deep
  // with bulk puts) a fixed deadline can only misfire, and the spurious
  // duplicates make the congestion worse.  Kill-induced transfer loss is
  // handled source-exactly in on_node_failure via stage_src instead.
  if (!net_->fault_plan().lossy()) return;
  const double now = clock_.now();
  std::vector<std::function<void()>> actions;
  std::vector<Task*> failures;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // 1. Region transfers silent past the stage timeout: re-issue from the
    //    (purged, so surviving) holder set, a bounded number of times.  A
    //    duplicate arrival is idempotent — staged_locked tolerates it.
    //    The deadline scales with the modelled transfer time so a slow bulk
    //    put is not mistaken for a lost one (margin covers NIC queueing).
    std::vector<std::pair<std::uintptr_t, int>> expired;
    for (const auto& key : active_stagings_) {
      const NodeDirEntry* dp = dir_find_locked(key.first);
      if (dp == nullptr) continue;
      const NodeDirEntry& de = *dp;
      auto st = de.staging_to.find(key.second);
      if (st == de.staging_to.end()) continue;
      const double expect =
          cfg_.link.latency + static_cast<double>(de.region.size) / cfg_.link.bandwidth;
      if (now - st->second > rc.effective_stage_timeout() + 4.0 * expect)
        expired.push_back(key);
    }
    for (const auto& key : expired) {
      NodeDirEntry* ep = dir_find_locked(key.first);
      if (ep == nullptr) continue;
      NodeDirEntry& e = *ep;
      const int dst = key.second;
      int& tries = e.stage_retries[dst];
      if (!rc.retry() || ++tries > rc.max_task_retries) {
        fail_staging_locked(e, dst, actions);
        continue;
      }
      stats_.incr("res.msg_retries");
      e.staging_to[dst] = now;
      // If the destination sat in the deferred list (waiting on a transfer
      // that never completed), re-issue directly instead.
      e.deferred.erase(std::remove(e.deferred.begin(), e.deferred.end(), dst),
                       e.deferred.end());
      auto a = make_wire_action_locked(e, e.region, dst);
      if (a) actions.push_back(std::move(a));
    }

    // 2. NEW_TASK sends with no receipt ack: retransmit with exponential
    //    backoff (the slave dedups by ticket).
    std::vector<RemoteTaskInfo*> give_up;
    for (auto& [ticket, info] : in_flight_tasks_) {
      if (info->last_send <= 0 || info->recv_acked) continue;
      if (nodes_[static_cast<std::size_t>(info->target_node)].dead) continue;
      const int shift = std::min(info->send_attempts > 0 ? info->send_attempts - 1 : 0, 6);
      const double base = std::max(rc.effective_ack_timeout(), 8.0 * cfg_.link.latency);
      if (now - info->last_send <= base * (1 << shift)) continue;
      if (!rc.retry() || info->send_attempts > rc.max_task_retries + 1) {
        give_up.push_back(info);
        continue;
      }
      stats_.incr("res.msg_retries");
      ++info->send_attempts;
      info->last_send = now;
      RemoteTaskInfo* p = info;
      const int dst = info->target_node;
      actions.push_back([this, p, dst] {
        net_->endpoint(0).am_short(dst, kNewTask, &p, sizeof(p));
      });
    }
    for (RemoteTaskInfo* info : give_up) {
      in_flight_tasks_.erase(info->ticket);
      --nodes_[static_cast<std::size_t>(info->target_node)].sent;
      try_send_locked(info->target_node);
      fail_task_locked(info->master_task,
                       "cluster: NEW_TASK for '" + info->master_task->label() +
                           "' repeatedly lost (resilience=" + rc.mode + ")", failures);
    }
  }
  for (auto& a : actions) a();
  for (Task* t : failures) domain_->on_complete(t);
  if (!failures.empty()) comm_mon_.notify_all();
}

}  // namespace nanos
