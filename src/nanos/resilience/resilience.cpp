#include "nanos/resilience/resilience.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "nanos/cluster.hpp"

namespace nanos {

ResilienceConfig ResilienceConfig::from(const common::Config& c) {
  ResilienceConfig r;
  r.mode = c.get_string("resilience", r.mode);
  if (r.mode != "off" && r.mode != "retry")
    throw std::invalid_argument("resilience: unknown mode '" + r.mode +
                                "' (expected off|retry)");
  r.max_task_retries = static_cast<int>(c.get_int("max_task_retries", r.max_task_retries));
  r.heartbeat_period = c.get_double("heartbeat_period", r.heartbeat_period);
  r.node_lease = c.get_double("node_lease", r.node_lease);
  r.stage_timeout = c.get_double("stage_timeout", r.stage_timeout);
  r.ack_timeout = c.get_double("ack_timeout", r.ack_timeout);
  return r;
}

ResilienceManager::ResilienceManager(ClusterRuntime& rt, vt::Clock& clock, int nodes,
                                     ResilienceConfig cfg)
    : rt_(rt), clock_(clock), cfg_(std::move(cfg)), mon_(clock),
      last_pong_(static_cast<std::size_t>(nodes), 0.0),
      declared_(static_cast<std::size_t>(nodes), 0) {}

ResilienceManager::~ResilienceManager() { stop(); }

void ResilienceManager::start() {
  if (thread_ || last_pong_.size() < 2) return;
  thread_ = std::make_unique<vt::Thread>(clock_, "resilience.monitor",
                                         [this] { monitor_loop(); }, /*service=*/true);
}

void ResilienceManager::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  mon_.notify_all();
  if (thread_) thread_->join();
}

void ResilienceManager::on_alive(int node) {
  std::lock_guard<std::mutex> lk(mu_);
  if (node >= 0 && node < static_cast<int>(last_pong_.size()))
    last_pong_[static_cast<std::size_t>(node)] = clock_.now();
}

void ResilienceManager::monitor_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  // Leases start at thread launch: a slave that never answers anything is
  // declared dead one lease after startup.
  for (auto& t : last_pong_) t = clock_.now();
  for (;;) {
    mon_.wait_for(lk, cfg_.heartbeat_period, [&] { return stop_; });
    if (stop_) return;
    const double now = clock_.now();
    std::vector<int> expired;
    for (int n = 1; n < static_cast<int>(last_pong_.size()); ++n) {
      if (declared_[static_cast<std::size_t>(n)]) continue;
      if (now - last_pong_[static_cast<std::size_t>(n)] > cfg_.node_lease) {
        declared_[static_cast<std::size_t>(n)] = 1;
        expired.push_back(n);
      }
    }
    lk.unlock();
    for (int n : expired) {
      LOG_WARN("resilience: node ", n, " lease expired at t=", now, " — declaring dead");
      rt_.on_node_failure(n);
    }
    rt_.monitor_tick();
    rt_.send_pings();
    lk.lock();
  }
}

}  // namespace nanos
