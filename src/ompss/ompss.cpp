#include "ompss/ompss.hpp"

#include <stdexcept>

namespace ompss {

namespace {
Env* g_current = nullptr;

nanos::ClusterConfig cluster_config_from(const common::Config& c) {
  nanos::ClusterConfig cfg;
  cfg.nodes = static_cast<int>(c.get_int("nodes", 1));
  cfg.node = nanos::RuntimeConfig::from(c);
  cfg.presend = cfg.node.presend;
  cfg.slave_to_slave = cfg.node.slave_to_slave;
  cfg.node_scheduler = c.get_string("node_scheduler", "affinity");
  cfg.segment_bytes = c.get_size("segment_mb", 256) << 20;
  cfg.link.bandwidth = c.get_double("net_bw", cfg.link.bandwidth);
  cfg.link.latency = c.get_double("net_latency", cfg.link.latency);
  cfg.topology.racks = static_cast<int>(c.get_int("racks", cfg.topology.racks));
  cfg.topology.nodes_per_rack =
      static_cast<int>(c.get_int("nodes_per_rack", cfg.topology.nodes_per_rack));
  cfg.topology.rack_link_bw = c.get_double("rack_link_bw", cfg.topology.rack_link_bw);
  cfg.topology.core_link_bw = c.get_double("core_link_bw", cfg.topology.core_link_bw);
  cfg.topology.core_latency = c.get_double("core_latency", cfg.topology.core_latency);
  cfg.rack_aware = c.get_bool("rack_aware", cfg.rack_aware);
  cfg.resilience = nanos::ResilienceConfig::from(c);
  return cfg;
}
}  // namespace

Env::Env(const common::Config& cfg) {
  clock_ = std::make_unique<vt::Clock>();
  if (cfg.get_int("nodes", 1) > 1) {
    cluster_ = std::make_unique<nanos::ClusterRuntime>(*clock_, cluster_config_from(cfg));
  } else {
    local_ = std::make_unique<nanos::Runtime>(*clock_, nanos::RuntimeConfig::from(cfg));
  }
}

Env::Env(nanos::RuntimeConfig cfg) {
  clock_ = std::make_unique<vt::Clock>();
  local_ = std::make_unique<nanos::Runtime>(*clock_, std::move(cfg));
}

Env::Env(nanos::ClusterConfig cfg) {
  clock_ = std::make_unique<vt::Clock>();
  if (cfg.nodes > 1) {
    cluster_ = std::make_unique<nanos::ClusterRuntime>(*clock_, std::move(cfg));
  } else {
    local_ = std::make_unique<nanos::Runtime>(*clock_, std::move(cfg.node));
  }
}

Env::~Env() {
  if (g_current == this) g_current = nullptr;
  // Runtimes join their workers before the clock is destroyed.
  cluster_.reset();
  local_.reset();
}

Env* Env::current() { return g_current; }

void Env::run(const std::function<void()>& body) {
  if (g_current != nullptr && g_current != this)
    throw std::logic_error("ompss: another Env is already running");
  g_current = this;
  vt::Thread driver(*clock_, "app-main", body);
  driver.join();
  g_current = nullptr;
}

nanos::Runtime& Env::node_runtime(int node) {
  if (cluster_) return cluster_->node_runtime(node);
  if (node != 0) throw std::out_of_range("ompss: single-node Env has only node 0");
  return *local_;
}

common::Stats& Env::stats() { return cluster_ ? cluster_->stats() : local_->stats(); }

nanos::Task* Env::spawn(nanos::TaskDesc desc) {
  if (cluster_) return cluster_->spawn(std::move(desc));
  return local_->spawn(std::move(desc));
}

void Env::taskwait(bool flush) {
  if (cluster_) {
    cluster_->taskwait(flush);
  } else {
    local_->taskwait(flush);
  }
}

void Env::taskwait_on(const common::Region& r) {
  if (cluster_) {
    cluster_->taskwait_on(r);
  } else {
    local_->taskwait_on(r);
  }
}

nanos::Task* TaskBuilder::run(nanos::TaskFn fn) {
  Env* env = Env::current();
  desc_.fn = std::move(fn);
  // Inside a task body, spawn through the *executing* runtime — on a cluster
  // that is the node's own image, so nested decomposition stays node-local
  // (paper §III-D1: remote tasks create local subtasks).
  if (nanos::Runtime* rt = nanos::Runtime::current_runtime())
    return rt->spawn(std::move(desc_));
  if (env == nullptr) throw std::logic_error("ompss: task() outside Env::run()");
  return env->spawn(std::move(desc_));
}

void taskwait() {
  Env* env = Env::current();
  // Inside a task body: wait this task's children on its own node.
  if (nanos::Runtime* rt = nanos::Runtime::current_runtime()) {
    rt->taskwait(true);
    return;
  }
  if (env == nullptr) throw std::logic_error("ompss: taskwait() outside Env::run()");
  env->taskwait(true);
}

void taskwait_noflush() {
  Env* env = Env::current();
  if (env == nullptr) throw std::logic_error("ompss: taskwait() outside Env::run()");
  env->taskwait(false);
}

void taskwait_on(const void* p, std::size_t n) {
  Env* env = Env::current();
  if (env == nullptr) throw std::logic_error("ompss: taskwait_on() outside Env::run()");
  env->taskwait_on(common::Region(p, n));
}

}  // namespace ompss
