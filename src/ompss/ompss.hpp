// ompss — the public programming interface.
//
// This is the layer the Mercurium compiler targets: each `#pragma omp task`
// becomes a TaskBuilder chain, `#pragma omp target device(cuda)` a
// .device(Device::kCuda), the dependence clauses .in/.out/.inout calls, and
// `#pragma omp taskwait [on(...)] [noflush]` the taskwait functions.  The
// mcc mini-compiler in src/mcc emits exactly this API; applications may also
// use it directly (as the examples/ do).
//
// An Env owns one simulated execution: the virtual clock, and either a
// single-node Runtime or a ClusterRuntime, selected by the "nodes" config
// key.  Env::run() executes the application body on an attached driver
// thread; inside it the free functions (ompss::task(), ompss::taskwait(), …)
// address the active Env.
//
// Example (the paper's Fig. 1 matmul tile loop):
//
//   ompss::Env env(cfg);
//   env.run([&] {
//     for (i…) for (j…) for (k…)
//       ompss::task()
//           .device(ompss::Device::kCuda)
//           .in(a[i][k], bs).in(b[k][j], bs).inout(c[i][j], bs)
//           .flops(2.0 * BS * BS * BS)
//           .run([=](ompss::Ctx& ctx) { sgemm_kernel(ctx); });
//     ompss::taskwait();
//   });
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "nanos/cluster.hpp"
#include "nanos/runtime.hpp"

namespace ompss {

using Ctx = nanos::TaskContext;
using Device = nanos::DeviceKind;

/// One simulated execution environment (clock + runtime(s)).
class Env {
public:
  /// Config keys: nodes (default 1), gpus, smp_workers, scheduler, cache,
  /// overlap, prefetch, presend, stos, node_scheduler, segment_mb, plus the
  /// link/device model keys (see RuntimeConfig::from and platform presets).
  explicit Env(const common::Config& cfg);
  /// Full-control constructors used by the benchmark harness.
  Env(nanos::RuntimeConfig cfg);
  Env(nanos::ClusterConfig cfg);
  ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Runs `body` as the application's main on an attached driver thread and
  /// joins it.  While it runs, the ompss:: free functions address this Env.
  void run(const std::function<void()>& body);

  vt::Clock& clock() { return *clock_; }
  bool is_cluster() const { return cluster_ != nullptr; }
  int node_count() const { return cluster_ ? cluster_->node_count() : 1; }
  nanos::Runtime& node_runtime(int node = 0);
  nanos::ClusterRuntime* cluster() { return cluster_.get(); }
  common::Stats& stats();

  nanos::Task* spawn(nanos::TaskDesc desc);
  void taskwait(bool flush);
  void taskwait_on(const common::Region& r);

  /// The Env whose run() is active (set for the driver and all its workers'
  /// task bodies via the runtime).  Null outside run().
  static Env* current();

private:
  std::unique_ptr<vt::Clock> clock_;
  std::unique_ptr<nanos::Runtime> local_;
  std::unique_ptr<nanos::ClusterRuntime> cluster_;
};

/// Fluent task construction mirroring the pragma clauses.
class TaskBuilder {
public:
  TaskBuilder() = default;

  TaskBuilder& device(Device d) {
    desc_.device = d;
    return *this;
  }
  /// input([n] p) clause with copy semantics (copy_deps).
  TaskBuilder& in(const void* p, std::size_t n) {
    desc_.accesses.push_back(nanos::Access::in(p, n));
    return *this;
  }
  /// output([n] p) clause.
  TaskBuilder& out(void* p, std::size_t n) {
    desc_.accesses.push_back(nanos::Access::out(p, n));
    return *this;
  }
  /// inout([n] p) clause.
  TaskBuilder& inout(void* p, std::size_t n) {
    desc_.accesses.push_back(nanos::Access::inout(p, n));
    return *this;
  }
  /// Dependence-only access (no copy semantics — a task without copy_deps).
  TaskBuilder& dep(const void* p, std::size_t n, nanos::AccessMode mode) {
    nanos::Access a;
    a.region = common::Region(p, n);
    a.mode = mode;
    a.copy = false;
    desc_.accesses.push_back(a);
    return *this;
  }
  /// Work volume: prices the kernel (CUDA) or compute time (SMP).
  TaskBuilder& flops(double f) {
    desc_.cost.flops = f;
    return *this;
  }
  TaskBuilder& bytes(double b) {
    desc_.cost.bytes = b;
    return *this;
  }
  TaskBuilder& label(std::string s) {
    desc_.label = std::move(s);
    return *this;
  }

  /// Finalizes and spawns the task with `fn` as its body.
  nanos::Task* run(nanos::TaskFn fn);

private:
  nanos::TaskDesc desc_;
};

/// Starts a task definition (the `#pragma omp task` entry point).
inline TaskBuilder task() { return {}; }

/// `#pragma omp taskwait`
void taskwait();
/// `#pragma omp taskwait noflush`
void taskwait_noflush();
/// `#pragma omp taskwait on(p[0;n])`
void taskwait_on(const void* p, std::size_t n);

}  // namespace ompss
