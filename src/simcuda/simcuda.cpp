#include "simcuda/simcuda.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace simcuda {

// ---------------------------------------------------------------------------
// Stream

void Stream::synchronize() {
  std::shared_ptr<detail::Op> last;
  {
    std::lock_guard<std::mutex> lk(device_.mu_);
    if (queue_.empty()) return;
    last = queue_.back();
  }
  last->done.wait();
}

// ---------------------------------------------------------------------------
// Device

Device::Device(Platform& platform, int id, const DeviceProps& props)
    : platform_(platform),
      id_(id),
      props_(props),
      slab_(new char[props.memory_bytes]),
      mem_(props.memory_bytes),
      work_mon_(platform.clock()) {
  default_stream_ = create_stream();
  const std::string prefix = "gpu" + std::to_string(id_);
  kernel_engine_ = vt::Thread(
      platform_.clock(), prefix + ".kernel",
      [this] { engine_loop(detail::Op::Kind::kKernel); }, /*service=*/true);
  copy_engine_ = vt::Thread(
      platform_.clock(), prefix + ".copy",
      [this] { engine_loop(detail::Op::Kind::kCopyH2D); }, /*service=*/true);
}

Device::~Device() {
  synchronize();
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_mon_.notify_all();
  kernel_engine_.join();
  copy_engine_.join();
}

void* Device::malloc(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  std::lock_guard<std::mutex> lk(mem_mu_);
  auto offset = mem_.allocate(bytes);
  if (!offset) return nullptr;  // caller must evict and retry
  return slab_.get() + *offset;
}

void Device::free(void* ptr) {
  if (ptr == nullptr) return;
  if (!owns(ptr))
    throw std::invalid_argument("simcuda: free() of a pointer not allocated on this device");
  std::lock_guard<std::mutex> lk(mem_mu_);
  mem_.deallocate(static_cast<std::size_t>(static_cast<char*>(ptr) - slab_.get()));
}

std::size_t Device::free_bytes() const {
  std::lock_guard<std::mutex> lk(mem_mu_);
  return mem_.free_bytes();
}

std::size_t Device::largest_free_block() const {
  std::lock_guard<std::mutex> lk(mem_mu_);
  return mem_.largest_free_block();
}

bool Device::owns(const void* ptr) const {
  const char* p = static_cast<const char*>(ptr);
  return p >= slab_.get() && p < slab_.get() + props_.memory_bytes;
}

Stream* Device::create_stream() {
  std::lock_guard<std::mutex> lk(mu_);
  streams_.emplace_back(new Stream(*this));
  return streams_.back().get();
}

void Device::destroy_stream(Stream* s) {
  if (s == default_stream_)
    throw std::invalid_argument("simcuda: cannot destroy the default stream");
  s->synchronize();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = streams_.begin(); it != streams_.end(); ++it) {
    if (it->get() == s) {
      if (!(*it)->queue_.empty())
        throw std::logic_error("simcuda: destroying a stream with pending work");
      streams_.erase(it);
      return;
    }
  }
  throw std::invalid_argument("simcuda: destroy_stream of a foreign stream");
}

void Device::enqueue(Stream& s, std::shared_ptr<detail::Op> op, bool blocking) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) throw std::logic_error("simcuda: enqueue after shutdown");
    // Fault injection bookkeeping: ops are numbered at enqueue (deterministic
    // w.r.t. submission order); the matching op fails on its engine.
    if (op->kind == detail::Op::Kind::kKernel) {
      if (kernel_seq_++ == faults_.abort_kernel) {
        op->faulty = true;
        op->fault_what = "simcuda: injected kernel abort";
      }
    } else if (op->kind == detail::Op::Kind::kCopyH2D ||
               op->kind == detail::Op::Kind::kCopyD2H) {
      if (copy_seq_++ == faults_.fail_copy) {
        op->faulty = true;
        op->fault_what = "simcuda: injected async-copy failure";
      }
    }
    s.queue_.push_back(op);
  }
  work_mon_.notify_all();
  if (blocking) op->done.wait();
}

void Device::inject_faults(const DeviceFaults& f) {
  std::lock_guard<std::mutex> lk(mu_);
  faults_ = f;
}

void Device::set_fault_handler(std::function<void(const DeviceError&)> h) {
  std::lock_guard<std::mutex> lk(mu_);
  fault_cb_ = std::move(h);
}

std::uint64_t Device::kernels_enqueued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return kernel_seq_;
}

std::uint64_t Device::copies_enqueued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return copy_seq_;
}

void Device::memcpy_h2d_async(Stream& s, void* dst_dev, const void* src_host, std::size_t bytes) {
  assert(owns(dst_dev));
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kCopyH2D;
  op->duration = props_.copy_overhead + static_cast<double>(bytes) / props_.pcie_bandwidth;
  op->payload = [dst_dev, src_host, bytes] { std::memcpy(dst_dev, src_host, bytes); };
  stats_.incr("h2d_ops");
  stats_.add("h2d_bytes", static_cast<double>(bytes));
  // CUDA executes async copies synchronously when the host buffer is not
  // page-locked; reproducing that is what motivates the runtime's pinned
  // staging buffers (paper §III-D2).
  const bool blocking = !platform_.is_pinned(src_host, bytes);
  if (blocking) {
    stats_.incr("h2d_unpinned_ops");
    op->on_kernel_engine = true;
  }
  enqueue(s, std::move(op), blocking);
}

void Device::memcpy_d2h_async(Stream& s, void* dst_host, const void* src_dev, std::size_t bytes) {
  assert(owns(src_dev));
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kCopyD2H;
  op->duration = props_.copy_overhead + static_cast<double>(bytes) / props_.pcie_bandwidth;
  op->payload = [dst_host, src_dev, bytes] { std::memcpy(dst_host, src_dev, bytes); };
  stats_.incr("d2h_ops");
  stats_.add("d2h_bytes", static_cast<double>(bytes));
  const bool blocking = !platform_.is_pinned(dst_host, bytes);
  if (blocking) {
    stats_.incr("d2h_unpinned_ops");
    op->on_kernel_engine = true;
  }
  enqueue(s, std::move(op), blocking);
}

void Device::memcpy_h2d(void* dst_dev, const void* src_host, std::size_t bytes) {
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kCopyH2D;
  op->duration = props_.copy_overhead + static_cast<double>(bytes) / props_.pcie_bandwidth;
  op->payload = [dst_dev, src_host, bytes] { std::memcpy(dst_dev, src_host, bytes); };
  stats_.incr("h2d_ops");
  stats_.add("h2d_bytes", static_cast<double>(bytes));
  enqueue(default_stream(), std::move(op), /*blocking=*/true);
}

void Device::memcpy_d2h(void* dst_host, const void* src_dev, std::size_t bytes) {
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kCopyD2H;
  op->duration = props_.copy_overhead + static_cast<double>(bytes) / props_.pcie_bandwidth;
  op->payload = [dst_host, src_dev, bytes] { std::memcpy(dst_host, src_dev, bytes); };
  stats_.incr("d2h_ops");
  stats_.add("d2h_bytes", static_cast<double>(bytes));
  enqueue(default_stream(), std::move(op), /*blocking=*/true);
}

void Device::launch_kernel(Stream& s, const KernelCost& cost, KernelFn fn) {
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kKernel;
  double compute = cost.flops / (props_.gflops * 1e9);
  double memory = cost.bytes / props_.mem_bandwidth;
  op->duration = props_.kernel_launch_overhead + std::max(compute, memory);
  op->payload = std::move(fn);
  stats_.incr("kernels");
  stats_.add("kernel_flops", cost.flops);
  enqueue(s, std::move(op), /*blocking=*/false);
}

void Device::record_event(Stream& s, Event& ev) {
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kEventRecord;
  op->event = &ev;
  enqueue(s, std::move(op), /*blocking=*/false);
}

void Device::add_callback(Stream& s, std::function<void()> fn) {
  auto op = std::make_shared<detail::Op>(platform_.clock());
  op->kind = detail::Op::Kind::kCallback;
  op->payload = std::move(fn);
  enqueue(s, std::move(op), /*blocking=*/false);
}

void Device::synchronize() {
  // Snapshot the streams, then synchronize each.  New work submitted
  // concurrently is the caller's responsibility (same contract as CUDA).
  std::vector<Stream*> snapshot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snapshot.reserve(streams_.size());
    for (auto& s : streams_) snapshot.push_back(s.get());
  }
  for (Stream* s : snapshot) s->synchronize();
}

std::shared_ptr<detail::Op> Device::pick_op_locked(bool want_copy, Stream** out_stream) {
  const std::size_t n = streams_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Stream* s = streams_[(rr_cursor_ + k) % n].get();
    if (s->queue_.empty()) continue;
    auto& op = s->queue_.front();
    if (op->claimed) continue;
    bool is_copy = (op->kind == detail::Op::Kind::kCopyH2D ||
                    op->kind == detail::Op::Kind::kCopyD2H) &&
                   !op->on_kernel_engine;
    bool is_kernel = op->kind == detail::Op::Kind::kKernel || op->on_kernel_engine;
    bool is_misc = !is_copy && !is_kernel;  // events/callbacks: either engine
    if ((want_copy && (is_copy || is_misc)) || (!want_copy && (is_kernel || is_misc))) {
      *out_stream = s;
      rr_cursor_ = (rr_cursor_ + k + 1) % n;
      return op;
    }
  }
  return nullptr;
}

void Device::complete_op_locked(Stream& s) {
  assert(!s.queue_.empty());
  s.queue_.pop_front();
}

void Device::engine_loop(detail::Op::Kind kind) {
  const bool want_copy = kind == detail::Op::Kind::kCopyH2D;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    Stream* stream = nullptr;
    std::shared_ptr<detail::Op> op;
    work_mon_.wait(lk, [&] {
      if (shutdown_) return true;
      op = pick_op_locked(want_copy, &stream);
      return op != nullptr;
    });
    if (op == nullptr) return;  // shutdown
    op->claimed = true;
    lk.unlock();

    if (op->duration > 0) platform_.clock().sleep_for(op->duration);
    if (op->faulty) {
      // The op occupied the engine but its effects never happen: an aborted
      // kernel ran no body, a failed copy moved no bytes.  Report and move
      // on — the engine itself survives.
      stats_.incr("faults_injected");
      std::function<void(const DeviceError&)> cb;
      {
        std::lock_guard<std::mutex> flk(mu_);
        cb = fault_cb_;
      }
      if (cb) cb(DeviceError(op->fault_what != nullptr ? op->fault_what
                                                       : "simcuda: injected device fault"));
    } else {
      if (op->payload) op->payload();
    }
    if (op->event != nullptr) op->event->complete(platform_.clock().now());

    lk.lock();
    complete_op_locked(*stream);
    lk.unlock();
    op->done.set();
    // The next op in that stream may now be eligible — possibly for the
    // *other* engine, so wake everyone.
    work_mon_.notify_all();
    lk.lock();
  }
}

// ---------------------------------------------------------------------------
// Platform

Platform::Platform(vt::Clock& clock, std::vector<DeviceProps> devices) : clock_(clock) {
  vt::Hold hold(clock_);  // engines must not trip the clock during startup
  devices_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i)
    devices_.emplace_back(std::make_unique<Device>(*this, static_cast<int>(i), devices[i]));
}

Platform::~Platform() = default;

void* Platform::host_alloc_pinned(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  char* p = new char[bytes];
  std::lock_guard<std::mutex> lk(pin_mu_);
  pinned_[reinterpret_cast<std::uintptr_t>(p)] = bytes;
  return p;
}

void Platform::host_free_pinned(void* ptr) {
  if (ptr == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(pin_mu_);
    auto it = pinned_.find(reinterpret_cast<std::uintptr_t>(ptr));
    if (it == pinned_.end())
      throw std::invalid_argument("simcuda: host_free_pinned of a non-pinned pointer");
    pinned_.erase(it);
  }
  delete[] static_cast<char*>(ptr);
}

bool Platform::is_pinned(const void* ptr, std::size_t bytes) const {
  std::lock_guard<std::mutex> lk(pin_mu_);
  auto start = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = pinned_.upper_bound(start);
  if (it == pinned_.begin()) return false;
  --it;
  return start >= it->first && start + bytes <= it->first + it->second;
}

std::size_t Platform::pinned_bytes() const {
  std::lock_guard<std::mutex> lk(pin_mu_);
  std::size_t total = 0;
  for (const auto& [p, s] : pinned_) total += s;
  return total;
}

}  // namespace simcuda
