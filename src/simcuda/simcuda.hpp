// simcuda — a simulated CUDA platform.
//
// The paper's runtime sits on top of the CUDA driver: streams, events, async
// copies, page-locked host memory and per-GPU memory of limited size.  This
// module reproduces that API surface on the virtual-time layer:
//
//  * A Device owns a real host-memory slab of configurable capacity managed
//    by a first-fit allocator — "device pointers" are real pointers into the
//    slab, so kernels compute real results and capacity pressure triggers
//    genuine out-of-memory conditions (the effect behind the paper's N-Body
//    cache-policy result, Fig. 8).
//  * Each device has one kernel engine and one copy engine (vt threads).
//    Operations in the same stream execute in FIFO order; operations in
//    different streams may overlap across engines — exactly the condition
//    under which the paper's transfer/computation overlap pays off.
//  * Async copies whose host-side buffer is NOT page-locked block the calling
//    thread until the copy completes, mirroring CUDA's fallback behaviour.
//    This is what makes the runtime's pinned intermediate buffers
//    (paper §III-D2) meaningful.
//  * Durations come from a cost model: copies take bytes/pcie_bandwidth,
//    kernels take max(flops/gflops, bytes/mem_bandwidth) plus launch
//    overhead.  Wall-clock cost is zero — everything advances virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/allocator.hpp"
#include "common/stats.hpp"
#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace simcuda {

/// Performance/capacity description of one simulated GPU.
struct DeviceProps {
  std::string name = "SimGPU";
  double gflops = 1030.0;              ///< single-precision GFLOP/s
  double mem_bandwidth = 148.0e9;      ///< device-memory bytes/s
  double pcie_bandwidth = 6.0e9;       ///< host<->device bytes/s per direction
  std::size_t memory_bytes = 512u << 20;  ///< device memory capacity
  double kernel_launch_overhead = 8.0e-6;
  double copy_overhead = 2.0e-6;
};

/// Work attributed to a kernel launch; drives its simulated duration.
struct KernelCost {
  double flops = 0.0;
  double bytes = 0.0;
};

/// Injected device faults (the resilience subsystem's device-level fault
/// model).  Indices are 0-based counts over the device's lifetime; the
/// matching operation occupies its engine for the full modelled duration and
/// then fails: a faulted kernel's body never runs, a faulted copy moves no
/// bytes.  The registered fault handler is invoked from the engine thread —
/// the engine itself survives (CUDA's sticky-error model is left to the
/// layer above).
struct DeviceFaults {
  static constexpr std::uint64_t kNever = ~0ull;
  std::uint64_t abort_kernel = kNever;  ///< which kernel launch aborts
  std::uint64_t fail_copy = kNever;     ///< which (h2d or d2h) copy fails
};

/// Reported to the device fault handler when an injected fault fires.
class DeviceError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

using KernelFn = std::function<void()>;

class Device;
class Event;
class Platform;
class Stream;

namespace detail {

struct Op {
  enum class Kind { kCopyH2D, kCopyD2H, kKernel, kEventRecord, kCallback };

  explicit Op(vt::Clock& clock) : done(clock) {}

  Kind kind = Kind::kKernel;
  double duration = 0.0;       // simulated seconds on the engine
  std::function<void()> payload;  // real work: memcpy / kernel body / callback
  simcuda::Event* event = nullptr;
  bool claimed = false;        // an engine is executing it
  bool faulty = false;         // injected fault: occupy the engine, skip payload
  const char* fault_what = nullptr;
  /// Copies from/to non-page-locked host memory go through the kernel engine:
  /// they cannot overlap kernel execution (CUDA stages them synchronously),
  /// which is why the runtime's pinned buffers + overlap option matter.
  bool on_kernel_engine = false;
  vt::Flag done;
};

}  // namespace detail

/// CUDA-event analogue: recorded into a stream, completed when the engine
/// reaches it; carries the virtual completion timestamp.
class Event {
public:
  explicit Event(vt::Clock& clock) : flag_(clock) {}

  bool query() const { return flag_.is_set(); }
  void synchronize() { flag_.wait(); }
  /// Virtual time at which the event completed (valid once query()).
  double timestamp() const { return timestamp_; }

private:
  friend class Device;
  void complete(double t) {
    timestamp_ = t;
    flag_.set();
  }

  vt::Flag flag_;
  double timestamp_ = 0.0;
};

/// An in-order operation queue on a device.  Create via Device::create_stream.
class Stream {
public:
  /// Blocks until every operation enqueued so far has completed.
  void synchronize();

  Device& device() { return device_; }

private:
  friend class Device;
  explicit Stream(Device& d) : device_(d) {}

  Device& device_;
  std::deque<std::shared_ptr<detail::Op>> queue_;  // guarded by Device::mu_
};

class Device {
public:
  Device(Platform& platform, int id, const DeviceProps& props);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  const DeviceProps& props() const { return props_; }

  /// Allocates device memory; returns nullptr when no sufficient block exists
  /// (the caller — typically the software cache — must evict and retry).
  void* malloc(std::size_t bytes);
  void free(void* ptr);
  std::size_t capacity() const { return props_.memory_bytes; }
  std::size_t free_bytes() const;
  std::size_t largest_free_block() const;
  /// True if `ptr` points into this device's memory slab.
  bool owns(const void* ptr) const;

  Stream* create_stream();
  void destroy_stream(Stream* s);
  Stream& default_stream() { return *default_stream_; }

  /// Async host-to-device copy.  If `src_host` is not page-locked the call
  /// blocks until the copy completes (CUDA's unpinned-memory behaviour).
  void memcpy_h2d_async(Stream& s, void* dst_dev, const void* src_host, std::size_t bytes);
  /// Async device-to-host copy; same pinned-memory rule applies to dst_host.
  void memcpy_d2h_async(Stream& s, void* dst_host, const void* src_dev, std::size_t bytes);
  /// Synchronous copies on the default stream.
  void memcpy_h2d(void* dst_dev, const void* src_host, std::size_t bytes);
  void memcpy_d2h(void* dst_host, const void* src_dev, std::size_t bytes);

  /// Enqueues a kernel: `fn` runs (with real effects) when the kernel engine
  /// reaches it; the engine then advances virtual time by the modelled cost.
  void launch_kernel(Stream& s, const KernelCost& cost, KernelFn fn);

  void record_event(Stream& s, Event& ev);
  /// Runs `fn` on an engine thread once prior work in the stream completed.
  void add_callback(Stream& s, std::function<void()> fn);

  /// Blocks until all work on all streams of this device completed.
  void synchronize();

  /// Installs an injected-fault schedule (see DeviceFaults).  May be called
  /// at any point; indices count operations enqueued since device creation.
  void inject_faults(const DeviceFaults& f);
  /// Registers the handler invoked (from an engine thread) when an injected
  /// fault fires.  Register before traffic starts.
  void set_fault_handler(std::function<void(const DeviceError&)> h);
  std::uint64_t kernels_enqueued() const;
  std::uint64_t copies_enqueued() const;

  common::Stats& stats() { return stats_; }
  Platform& platform() { return platform_; }

private:
  friend class Stream;

  void enqueue(Stream& s, std::shared_ptr<detail::Op> op, bool blocking);
  void engine_loop(detail::Op::Kind copy_or_kernel);
  std::shared_ptr<detail::Op> pick_op_locked(bool want_copy, Stream** out_stream);
  void complete_op_locked(Stream& s);

  Platform& platform_;
  const int id_;
  const DeviceProps props_;

  // Device memory slab managed by a first-fit allocator.
  std::unique_ptr<char[]> slab_;
  mutable std::mutex mem_mu_;
  common::FirstFitAllocator mem_;

  mutable std::mutex mu_;   // guards streams/queues
  vt::Monitor work_mon_;    // engines wait here
  std::vector<std::unique_ptr<Stream>> streams_;
  Stream* default_stream_ = nullptr;
  bool shutdown_ = false;
  std::size_t rr_cursor_ = 0;  // round-robin fairness over streams

  // Fault injection (guarded by mu_).
  DeviceFaults faults_;
  std::uint64_t kernel_seq_ = 0;
  std::uint64_t copy_seq_ = 0;
  std::function<void(const DeviceError&)> fault_cb_;

  common::Stats stats_;

  vt::Thread kernel_engine_;
  vt::Thread copy_engine_;
};

/// The collection of simulated GPUs visible to one (simulated) node, plus the
/// page-locked host-memory registry.
class Platform {
public:
  Platform(vt::Clock& clock, std::vector<DeviceProps> devices);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  vt::Clock& clock() { return clock_; }
  int device_count() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }

  /// cudaMallocHost analogue: page-locked host memory.
  void* host_alloc_pinned(std::size_t bytes);
  void host_free_pinned(void* ptr);
  bool is_pinned(const void* ptr, std::size_t bytes) const;
  std::size_t pinned_bytes() const;

private:
  vt::Clock& clock_;
  std::vector<std::unique_ptr<Device>> devices_;

  mutable std::mutex pin_mu_;
  std::map<std::uintptr_t, std::size_t> pinned_;  // start -> size
};

}  // namespace simcuda
