#include "simnet/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace simnet {

namespace {
// A flow with less than half a byte left is finished; guards float drift in
// the progressive drain (sub-byte residue carries no wire time).
constexpr double kEpsBytes = 0.5;
// Effective capacity used when the config leaves a tier unconstrained.
constexpr double kUnlimited = 1e18;
}  // namespace

Topology::Topology(vt::Clock& clock, const TopologyConfig& cfg, int nodes)
    : clock_(clock), cfg_(cfg), mon_(clock) {
  if (cfg_.racks > nodes) cfg_.racks = nodes;
  racks_ = std::max(1, cfg_.racks);
  if (cfg_.flat()) {
    nodes_per_rack_ = nodes;
    return;
  }
  nodes_per_rack_ = cfg_.nodes_per_rack > 0 ? cfg_.nodes_per_rack
                                            : (nodes + racks_ - 1) / racks_;
  if (nodes_per_rack_ * racks_ < nodes)
    throw std::invalid_argument("simnet: topology racks*nodes_per_rack < nodes");
  rack_bw_ = cfg_.rack_link_bw > 0 ? cfg_.rack_link_bw : kUnlimited;
  core_bw_ = cfg_.core_link_bw > 0 ? cfg_.core_link_bw
                                   : std::min(kUnlimited, rack_bw_ * racks_);
  rack_scale_.assign(static_cast<std::size_t>(racks_), 1.0);
  uplink_busy_.assign(static_cast<std::size_t>(racks_), 0.0);
}

void Topology::advance_locked(double now) {
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0 || flows_.empty()) return;
  std::vector<bool> rack_active(static_cast<std::size_t>(racks_), false);
  for (auto& f : flows_) {
    f->remaining = std::max(0.0, f->remaining - f->rate * dt);
    rack_active[static_cast<std::size_t>(f->src_rack)] = true;
    rack_active[static_cast<std::size_t>(f->dst_rack)] = true;
  }
  for (int r = 0; r < racks_; ++r) {
    if (rack_active[static_cast<std::size_t>(r)])
      uplink_busy_[static_cast<std::size_t>(r)] += dt;
  }
  core_busy_ += dt;
}

void Topology::recompute_locked() {
  if (flows_.empty()) return;
  std::vector<int> up(static_cast<std::size_t>(racks_), 0);
  std::vector<int> down(static_cast<std::size_t>(racks_), 0);
  for (const auto& f : flows_) {
    ++up[static_cast<std::size_t>(f->src_rack)];
    ++down[static_cast<std::size_t>(f->dst_rack)];
  }
  const int in_core = static_cast<int>(flows_.size());
  for (auto& f : flows_) {
    const double up_cap = rack_bw_ * rack_scale_[static_cast<std::size_t>(f->src_rack)];
    const double down_cap = rack_bw_ * rack_scale_[static_cast<std::size_t>(f->dst_rack)];
    f->rate = std::min({up_cap / up[static_cast<std::size_t>(f->src_rack)],
                        core_bw_ / in_core,
                        down_cap / down[static_cast<std::size_t>(f->dst_rack)]});
    f->rate = std::max(f->rate, 1.0);  // a fully degraded uplink still trickles
  }
}

void Topology::transit(int src, int dst, std::size_t bytes) {
  if (flat() || bytes == 0 || same_rack(src, dst)) return;
  const double begin = clock_.now();
  auto flow = std::make_shared<Flow>();
  flow->remaining = static_cast<double>(bytes);
  flow->src_rack = rack_of(src);
  flow->dst_rack = rack_of(dst);
  TraceFn trace;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) return;
    advance_locked(begin);
    flows_.push_back(flow);
    recompute_locked();
    // Membership changed: every blocked transit must re-derive its finish
    // time from its new (smaller) share.
    mon_.notify_all();
    while (flow->remaining > kEpsBytes) {
      const double finish = clock_.now() + flow->remaining / flow->rate;
      // An effectively-unlimited tier can leave a residue whose drain time
      // underflows the clock's resolution at the current timestamp; treat a
      // finish that cannot move the clock as already drained.
      if (finish <= clock_.now()) break;
      mon_.wait_until(lk, finish);
      if (stop_) break;
      advance_locked(clock_.now());
    }
    flows_.erase(std::remove(flows_.begin(), flows_.end(), flow), flows_.end());
    recompute_locked();
    mon_.notify_all();
    if (stop_) return;
    trace = trace_;
  }
  if (trace) trace(flow->src_rack, flow->dst_rack, bytes, begin);
}

void Topology::degrade_rack(int rack, double bandwidth_factor) {
  if (flat() || rack < 0 || rack >= racks_) return;
  std::lock_guard<std::mutex> lk(mu_);
  advance_locked(clock_.now());
  rack_scale_[static_cast<std::size_t>(rack)] = bandwidth_factor > 0 ? bandwidth_factor : 0.0;
  recompute_locked();
  mon_.notify_all();
  stats_.incr("rack_degrades");
}

void Topology::account(int src, int dst, std::size_t bytes) {
  if (flat() || src == dst) return;
  if (same_rack(src, dst)) {
    stats_.add("rack_bytes", static_cast<double>(bytes));
  } else {
    stats_.add("core_bytes", static_cast<double>(bytes));
    stats_.incr("transits");
  }
}

void Topology::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  mon_.notify_all();
}

void Topology::set_trace(TraceFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  trace_ = std::move(fn);
}

double Topology::uplink_busy_frac(double now) const {
  if (flat() || now <= 0) return 0.0;
  std::lock_guard<std::mutex> lk(mu_);
  double busy = 0;
  for (double b : uplink_busy_) busy += b;
  return busy / (static_cast<double>(racks_) * now);
}

void Topology::publish(common::Stats& out, double now) {
  if (flat()) return;
  double rack_b, core_b, frac;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rack_b = stats_.sum("rack_bytes") - pub_rack_bytes_;
    core_b = stats_.sum("core_bytes") - pub_core_bytes_;
    pub_rack_bytes_ += rack_b;
    pub_core_bytes_ += core_b;
    double busy = 0;
    for (double b : uplink_busy_) busy += b;
    frac = now > 0 ? busy / (static_cast<double>(racks_) * now) : 0.0;
  }
  if (rack_b > 0) out.add("net.rack_bytes", rack_b);
  if (core_b > 0) out.add("net.core_bytes", core_b);
  out.add("net.uplink_busy_frac", frac);
}

}  // namespace simnet
