#include "simnet/simnet.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace simnet {

namespace {

// splitmix64: the standard 64-bit mixer — enough entropy to decorrelate the
// per-message fault rolls while staying a pure function of its input.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

}  // namespace

// ---------------------------------------------------------------------------
// Endpoint

Endpoint::Endpoint(Network& net, int node)
    : net_(net), node_(node), tx_mon_(net.clock()), rx_mon_(net.clock()) {}

void Endpoint::start() {
  const std::string prefix = "node" + std::to_string(node_);
  tx_thread_ = vt::Thread(net_.clock(), prefix + ".tx", [this] { tx_loop(); }, /*service=*/true);
  rx_thread_ = vt::Thread(net_.clock(), prefix + ".rx", [this] { rx_loop(); }, /*service=*/true);
}

void Endpoint::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  tx_mon_.notify_all();
  rx_mon_.notify_all();
  if (tx_thread_.joinable()) tx_thread_.join();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void Endpoint::kill() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return;
    dead_ = true;
    // Everything queued dies with the NIC: no transmissions, no deliveries,
    // no completion callbacks.  Messages an engine already popped were "on
    // the wire" at the instant of death and still go through.
    tx_shorts_.clear();
    tx_bulk_.clear();
    rx_shorts_.clear();
    rx_bulk_.clear();
    coalesce_.clear();
  }
  stats_.incr("killed");
  tx_mon_.notify_all();
  rx_mon_.notify_all();
}

void Endpoint::degrade(double bandwidth_factor) {
  std::lock_guard<std::mutex> lk(mu_);
  bw_scale_ = bandwidth_factor > 0 ? bandwidth_factor : 1.0;
}

bool Endpoint::dead() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dead_;
}

void Endpoint::register_handler(int id, AmHandler handler) {
  std::lock_guard<std::mutex> lk(handlers_mu_);
  if (id < 0) throw std::invalid_argument("simnet: handler id must be >= 0");
  if (handlers_.size() <= static_cast<std::size_t>(id))
    handlers_.resize(static_cast<std::size_t>(id) + 1);
  handlers_[static_cast<std::size_t>(id)] = std::move(handler);
}

void Endpoint::am_short(int dst, int handler, const void* payload, std::size_t bytes) {
  auto m = std::make_shared<Message>();
  m->src = node_;
  m->dst = dst;
  m->handler = handler;
  if (bytes > 0) {
    m->inline_payload.resize(bytes);
    std::memcpy(m->inline_payload.data(), payload, bytes);
  }
  m->bytes = bytes;
  stats_.incr("am_short");
  enqueue_tx(std::move(m));
}

void Endpoint::am_coalesced(int dst, int handler, const void* payload, std::size_t bytes) {
  const LinkProps& link = net_.props();
  // Self-sends are free on the wire and batching would only add the window's
  // latency; a disabled window degrades to the plain path entirely.
  if (dst == node_ || link.coalesce_window <= 0) {
    am_short(dst, handler, payload, bytes);
    return;
  }
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_ || shutdown_) {
      stats_.incr(dead_ ? "tx_dropped_dead" : "tx_dropped_shutdown");
      return;
    }
    PendingBatch& b = coalesce_[dst];
    if (b.subs.empty()) b.deadline = net_.clock().now() + link.coalesce_window;
    Message::Sub sub;
    sub.handler = handler;
    if (bytes > 0) {
      sub.payload.resize(bytes);
      std::memcpy(sub.payload.data(), payload, bytes);
    }
    b.bytes += bytes;
    b.subs.push_back(std::move(sub));
    stats_.incr("am_coalesced");
    DeliveryArbiter* arb = net_.arbiter();
    if (static_cast<int>(b.subs.size()) >= link.coalesce_max_msgs ||
        b.bytes >= link.coalesce_max_bytes ||
        (arb != nullptr &&
         arb->force_flush(node_, dst, static_cast<int>(b.subs.size()), b.bytes))) {
      flush_batch_locked(dst);
      flush_now = true;
    }
  }
  // Waking the TX thread is only needed when something became transmittable
  // (a flushed batch) or a new flush deadline must be armed.
  tx_mon_.notify_all();
  (void)flush_now;
}

// Moves `dst`'s pending batch onto the short queue as one wire message.  A
// single-sub batch travels as a plain short so lone stragglers pay no batch
// framing (and tests see identical small-run behavior).
void Endpoint::flush_batch_locked(int dst) {
  auto it = coalesce_.find(dst);
  if (it == coalesce_.end()) return;
  PendingBatch b = std::move(it->second);
  coalesce_.erase(it);
  auto m = std::make_shared<Message>();
  m->src = node_;
  m->dst = dst;
  if (b.subs.size() == 1) {
    m->handler = b.subs[0].handler;
    m->inline_payload = std::move(b.subs[0].payload);
    m->bytes = m->inline_payload.size();
  } else {
    m->is_batch = true;
    m->bytes = b.bytes;
    stats_.incr("am_batch");
    stats_.add("am_batch_subs", static_cast<double>(b.subs.size()));
    m->subs = std::move(b.subs);
  }
  tx_shorts_.push_back(std::move(m));
}

void Endpoint::flush_expired_batches_locked(double now) {
  for (auto it = coalesce_.begin(); it != coalesce_.end();) {
    if (it->second.deadline <= now) {
      int dst = it->first;
      ++it;  // flush_batch_locked erases `dst`; advance past it first
      flush_batch_locked(dst);
    } else {
      ++it;
    }
  }
}

void Endpoint::put(int dst, void* dst_addr, const void* src, std::size_t bytes,
                   std::function<void()> on_local_complete,
                   std::function<void()> on_remote_complete, int handler) {
  auto m = std::make_shared<Message>();
  m->src = node_;
  m->dst = dst;
  m->handler = handler;
  m->src_addr = src;
  m->dst_addr = dst_addr;
  m->bytes = bytes;
  m->is_put = true;
  m->on_local_complete = std::move(on_local_complete);
  m->on_remote_complete = std::move(on_remote_complete);
  stats_.incr("put_ops");
  stats_.add("put_bytes", static_cast<double>(bytes));
  enqueue_tx(std::move(m));
}

void Endpoint::enqueue_tx(MessagePtr m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) {
      // A dead node's sends vanish silently — callers cannot observe their
      // own death, the failure detector on the other side must.
      stats_.incr("tx_dropped_dead");
      return;
    }
    if (shutdown_) {
      // Heartbeat-style traffic flows right up to teardown: an RX thread
      // draining its last messages may answer one (ping → pong) after the
      // shutdown flag went up.  Dropping at teardown is fine, same as RX.
      stats_.incr("tx_dropped_shutdown");
      return;
    }
    if (m->is_put && m->bytes > 0) {
      tx_bulk_.push_back(std::move(m));
      stats_.add("tx_bulk_qlen", static_cast<double>(tx_bulk_.size()));
    } else {
      // A plain short must not overtake coalesced traffic it was sent after:
      // flush any pending batch to the same destination ahead of it.
      flush_batch_locked(m->dst);
      tx_shorts_.push_back(std::move(m));
    }
  }
  tx_mon_.notify_all();
}

void Endpoint::enqueue_rx(MessagePtr m) {
  // An installed arbiter may take the message here — after transmission and
  // the fault roll, before it enters the inbound queue — and admit() it
  // later in an order of its choosing.
  if (DeliveryArbiter* arb = net_.arbiter()) {
    if (arb->intercept(m)) return;
  }
  enqueue_rx_direct(std::move(m));
}

void Endpoint::enqueue_rx_direct(MessagePtr m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) {
      stats_.incr("rx_dropped_dead");
      return;  // arrives at a silent NIC: no delivery, no completion
    }
    if (shutdown_) return;  // dropping at teardown is fine
    if (m->is_put && m->bytes > 0) {
      rx_bulk_.push_back(std::move(m));
      stats_.add("rx_bulk_qlen", static_cast<double>(rx_bulk_.size()));
    } else {
      rx_shorts_.push_back(std::move(m));
    }
  }
  rx_mon_.notify_all();
}

void Endpoint::tx_loop() {
  vt::Clock& clock = net_.clock();
  const LinkProps& link = net_.props();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    flush_expired_batches_locked(clock.now());
    if (tx_shorts_.empty() && tx_bulk_.empty()) {
      if (shutdown_) return;  // pending batches are discarded at teardown
      if (!coalesce_.empty()) {
        // Sleep until the earliest batch must flush (or new traffic wakes us).
        double deadline = coalesce_.begin()->second.deadline;
        for (const auto& [dst, b] : coalesce_) deadline = std::min(deadline, b.deadline);
        tx_mon_.wait_until(lk, deadline);
      } else {
        tx_mon_.wait(lk, [this] {
          return shutdown_ || !tx_shorts_.empty() || !tx_bulk_.empty() || !coalesce_.empty();
        });
      }
      continue;
    }
    auto& q = !tx_shorts_.empty() ? tx_shorts_ : tx_bulk_;
    MessagePtr m = q.front();
    q.pop_front();
    const double scale = bw_scale_;
    const std::uint64_t seq = tx_seq_++;
    lk.unlock();

    m->tx_start = clock.now();
    // Outbound NIC occupancy: serialized by this very loop.  Every message
    // pays the fixed AM overhead; puts and coalesced batches add their
    // payload's bandwidth term (a batch pays ONE overhead for all its subs —
    // the point of coalescing).
    double occupancy = link.am_overhead;
    if (m->is_put || m->is_batch)
      occupancy += static_cast<double>(m->bytes) / (link.bandwidth * scale);
    if (m->src != m->dst && occupancy > 0) clock.sleep_for(occupancy);
    if (m->is_put) {
      // Data leaves the source buffer as it is transmitted; once the whole
      // message is on the wire the buffer is reusable (local completion).
      if (m->bytes > 0) {
        m->inline_payload.resize(m->bytes);
        std::memcpy(m->inline_payload.data(), m->src_addr, m->bytes);
      }
      stats_.add("tx_bytes", static_cast<double>(m->bytes));
      if (m->on_local_complete) m->on_local_complete();
    }
    if (m->src != m->dst) {
      net_.topology().account(m->src, m->dst, m->bytes);
      // Cross-rack payloads traverse the shared fabric at their fair-share
      // rate; the TX thread rides along (store-and-forward through the rack
      // switch), so a congested uplink back-pressures the sender exactly the
      // way a saturated NIC does.  Shorts carry no payload worth shaping —
      // they pay only the extra core latency (applied on the RX side).
      if (m->is_put || m->is_batch) net_.topology().transit(m->src, m->dst, m->bytes);
    }
    // Fault model: the wire may lose, duplicate or delay the message.  The
    // decision is a pure function of (plan seed, src, tx sequence number),
    // so a fixed plan replays identically given the same traffic order.
    FaultDecision fd = net_.fault_decision(node_, seq);
    if (fd.drop) {
      stats_.incr("tx_fault_dropped");
    } else {
      m->extra_delay = fd.extra_delay;
      if (fd.duplicate) {
        stats_.incr("tx_fault_duplicated");
        net_.endpoint(m->dst).enqueue_rx(m);
      }
      net_.endpoint(m->dst).enqueue_rx(std::move(m));
    }

    lk.lock();
  }
}

void Endpoint::rx_loop() {
  vt::Clock& clock = net_.clock();
  const LinkProps& link = net_.props();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    rx_mon_.wait(lk,
                 [this] { return shutdown_ || !rx_shorts_.empty() || !rx_bulk_.empty(); });
    if (shutdown_) return;
    auto& q = !rx_shorts_.empty() ? rx_shorts_ : rx_bulk_;
    MessagePtr m = q.front();
    q.pop_front();
    const double scale = bw_scale_;
    lk.unlock();

    if (m->src != m->dst) {
      // Wire latency relative to transmission start (usually already past),
      // then inbound NIC occupancy, serialized by this loop.  Cross-rack
      // messages pay the extra switch-hop latency of the core tier.
      double wire = link.latency + m->extra_delay;
      if (!net_.topology().same_rack(m->src, m->dst)) wire += net_.topology().core_latency();
      clock.sleep_until(m->tx_start + wire);
      double occupancy = link.am_overhead;
      if (m->is_put || m->is_batch)
        occupancy += static_cast<double>(m->bytes) / (link.bandwidth * scale);
      if (occupancy > 0) clock.sleep_for(occupancy);
    }
    deliver(m);

    lk.lock();
  }
}

void Endpoint::deliver(const MessagePtr& m) {
  stats_.add("rx_bytes", static_cast<double>(m->bytes));
  if (m->is_batch) {
    // Each sub-message is delivered exactly as its own short AM would be —
    // same handler table, same FIFO order within the batch.
    for (const Message::Sub& sub : m->subs) {
      AmHandler handler;
      {
        std::lock_guard<std::mutex> lk(handlers_mu_);
        if (sub.handler >= 0 && static_cast<std::size_t>(sub.handler) < handlers_.size())
          handler = handlers_[static_cast<std::size_t>(sub.handler)];
      }
      if (!handler) {
        LOG_ERROR("simnet: node ", node_, " received batched AM for unregistered handler ",
                  sub.handler);
        continue;
      }
      handler(m->src, sub.payload.data(), sub.payload.size());
    }
    return;
  }
  const void* body = m->inline_payload.data();
  if (m->is_put) {
    if (m->bytes > 0) std::memcpy(m->dst_addr, m->inline_payload.data(), m->bytes);
    body = m->dst_addr;
    if (m->on_remote_complete) m->on_remote_complete();
  }
  if (m->handler >= 0) {
    AmHandler handler;
    {
      std::lock_guard<std::mutex> lk(handlers_mu_);
      if (static_cast<std::size_t>(m->handler) < handlers_.size())
        handler = handlers_[static_cast<std::size_t>(m->handler)];
    }
    if (!handler) {
      LOG_ERROR("simnet: node ", node_, " received AM for unregistered handler ", m->handler);
      return;
    }
    handler(m->src, body, m->bytes);
  }
}

// ---------------------------------------------------------------------------
// Network

Network::Network(vt::Clock& clock, int nodes, const LinkProps& props,
                 const TopologyConfig& topology)
    : clock_(clock), props_(props), fault_mon_(clock) {
  if (nodes <= 0) throw std::invalid_argument("simnet: node count must be positive");
  topo_ = std::make_unique<Topology>(clock_, topology, nodes);
  vt::Hold hold(clock_);
  endpoints_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) endpoints_.emplace_back(new Endpoint(*this, i));
  for (auto& ep : endpoints_) ep->start();
}

Network::~Network() { shutdown(); }

void Network::shutdown() {
  {
    std::lock_guard<std::mutex> lk(fault_mu_);
    fault_stop_ = true;
  }
  fault_mon_.notify_all();
  if (fault_thread_.joinable()) fault_thread_.join();
  // Release TX threads blocked mid-transit in the fabric before joining them.
  topo_->stop();
  for (auto& ep : endpoints_) ep->stop();
}

void Network::set_fault_plan(FaultPlan plan) {
  if (fault_thread_.joinable())
    throw std::logic_error("simnet: fault plan already installed");
  plan_ = std::move(plan);
  lossy_ = plan_.drop_fraction > 0 || plan_.duplicate_fraction > 0 || plan_.delay_fraction > 0;
  if (!plan_.kills.empty() || !plan_.degrades.empty() || !plan_.rack_kills.empty() ||
      !plan_.rack_degrades.empty()) {
    vt::Hold hold(clock_);
    fault_thread_ = vt::Thread(clock_, "simnet.faults", [this] { fault_driver_loop(); },
                               /*service=*/true);
  }
}

void Network::kill_node(int node) { endpoint(node).kill(); }

FaultDecision Network::fault_decision(int src, std::uint64_t seq) const {
  FaultDecision fd;
  if (!lossy_) return fd;
  std::uint64_t h = mix64(plan_.seed ^ mix64((static_cast<std::uint64_t>(src) << 32) | seq));
  // Three decorrelated unit rolls from one hash chain.
  double r_drop = to_unit(h);
  h = mix64(h);
  double r_dup = to_unit(h);
  h = mix64(h);
  double r_delay = to_unit(h);
  fd.drop = r_drop < plan_.drop_fraction;
  fd.duplicate = !fd.drop && r_dup < plan_.duplicate_fraction;
  if (r_delay < plan_.delay_fraction) fd.extra_delay = plan_.delay_seconds;
  return fd;
}

void Network::fault_driver_loop() {
  // Merge node and rack events into one virtual-time-ordered schedule.
  struct Ev {
    double time;
    int target;  // node id, or rack id when `rack`
    bool kill;
    bool rack;
    double factor;
  };
  std::vector<Ev> sched;
  for (const auto& k : plan_.kills) sched.push_back({k.time, k.node, true, false, 0.0});
  for (const auto& d : plan_.degrades)
    sched.push_back({d.time, d.node, false, false, d.bandwidth_factor});
  for (const auto& k : plan_.rack_kills) sched.push_back({k.time, k.rack, true, true, 0.0});
  for (const auto& d : plan_.rack_degrades)
    sched.push_back({d.time, d.rack, false, true, d.bandwidth_factor});
  std::stable_sort(sched.begin(), sched.end(),
                   [](const Ev& a, const Ev& b) { return a.time < b.time; });

  std::unique_lock<std::mutex> lk(fault_mu_);
  for (const Ev& ev : sched) {
    // Sleep until the event's virtual time (or teardown).
    while (!fault_stop_ && clock_.now() < ev.time) fault_mon_.wait_until(lk, ev.time);
    if (fault_stop_) return;
    lk.unlock();
    if (ev.rack) {
      // Rack-granular events resolve membership through the topology.  The
      // schedule applies to every node n with rack_of(n) == target.
      if (ev.target >= 0 && ev.target < topo_->racks()) {
        if (ev.kill) {
          LOG_INFO("simnet: fault plan kills rack ", ev.target, " at t=", clock_.now());
          for (int n = 0; n < node_count(); ++n) {
            if (topo_->rack_of(n) == ev.target) endpoint(n).kill();
          }
        } else if (!topo_->flat()) {
          LOG_INFO("simnet: fault plan degrades rack ", ev.target, " uplink to ", ev.factor,
                   "x at t=", clock_.now());
          topo_->degrade_rack(ev.target, ev.factor);
        } else {
          // No uplinks on a flat network: "the rack got slower" falls back to
          // degrading the member NICs.
          for (int n = 0; n < node_count(); ++n) {
            if (topo_->rack_of(n) == ev.target) endpoint(n).degrade(ev.factor);
          }
        }
      }
    } else if (ev.target >= 0 && ev.target < node_count()) {
      if (ev.kill) {
        LOG_INFO("simnet: fault plan kills node ", ev.target, " at t=", clock_.now());
        endpoint(ev.target).kill();
      } else {
        LOG_INFO("simnet: fault plan degrades node ", ev.target, " NIC to ", ev.factor,
                 "x at t=", clock_.now());
        endpoint(ev.target).degrade(ev.factor);
      }
    }
    lk.lock();
  }
}

}  // namespace simnet
