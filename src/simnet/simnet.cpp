#include "simnet/simnet.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace simnet {

// ---------------------------------------------------------------------------
// Endpoint

Endpoint::Endpoint(Network& net, int node)
    : net_(net), node_(node), tx_mon_(net.clock()), rx_mon_(net.clock()) {}

void Endpoint::start() {
  const std::string prefix = "node" + std::to_string(node_);
  tx_thread_ = vt::Thread(net_.clock(), prefix + ".tx", [this] { tx_loop(); }, /*service=*/true);
  rx_thread_ = vt::Thread(net_.clock(), prefix + ".rx", [this] { rx_loop(); }, /*service=*/true);
}

void Endpoint::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  tx_mon_.notify_all();
  rx_mon_.notify_all();
  if (tx_thread_.joinable()) tx_thread_.join();
  if (rx_thread_.joinable()) rx_thread_.join();
}

void Endpoint::register_handler(int id, AmHandler handler) {
  std::lock_guard<std::mutex> lk(handlers_mu_);
  if (id < 0) throw std::invalid_argument("simnet: handler id must be >= 0");
  if (handlers_.size() <= static_cast<std::size_t>(id))
    handlers_.resize(static_cast<std::size_t>(id) + 1);
  handlers_[static_cast<std::size_t>(id)] = std::move(handler);
}

void Endpoint::am_short(int dst, int handler, const void* payload, std::size_t bytes) {
  auto m = std::make_shared<Message>();
  m->src = node_;
  m->dst = dst;
  m->handler = handler;
  if (bytes > 0) {
    m->inline_payload.resize(bytes);
    std::memcpy(m->inline_payload.data(), payload, bytes);
  }
  m->bytes = bytes;
  stats_.incr("am_short");
  enqueue_tx(std::move(m));
}

void Endpoint::put(int dst, void* dst_addr, const void* src, std::size_t bytes,
                   std::function<void()> on_local_complete,
                   std::function<void()> on_remote_complete, int handler) {
  auto m = std::make_shared<Message>();
  m->src = node_;
  m->dst = dst;
  m->handler = handler;
  m->src_addr = src;
  m->dst_addr = dst_addr;
  m->bytes = bytes;
  m->is_put = true;
  m->on_local_complete = std::move(on_local_complete);
  m->on_remote_complete = std::move(on_remote_complete);
  stats_.incr("put_ops");
  stats_.add("put_bytes", static_cast<double>(bytes));
  enqueue_tx(std::move(m));
}

void Endpoint::enqueue_tx(MessagePtr m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) throw std::logic_error("simnet: send after shutdown");
    if (m->is_put && m->bytes > 0) {
      tx_bulk_.push_back(std::move(m));
      stats_.add("tx_bulk_qlen", static_cast<double>(tx_bulk_.size()));
    } else {
      tx_shorts_.push_back(std::move(m));
    }
  }
  tx_mon_.notify_all();
}

void Endpoint::enqueue_rx(MessagePtr m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;  // dropping at teardown is fine
    if (m->is_put && m->bytes > 0) {
      rx_bulk_.push_back(std::move(m));
      stats_.add("rx_bulk_qlen", static_cast<double>(rx_bulk_.size()));
    } else {
      rx_shorts_.push_back(std::move(m));
    }
  }
  rx_mon_.notify_all();
}

void Endpoint::tx_loop() {
  vt::Clock& clock = net_.clock();
  const LinkProps& link = net_.props();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    tx_mon_.wait(lk,
                 [this] { return shutdown_ || !tx_shorts_.empty() || !tx_bulk_.empty(); });
    if (shutdown_ && tx_shorts_.empty() && tx_bulk_.empty()) return;
    auto& q = !tx_shorts_.empty() ? tx_shorts_ : tx_bulk_;
    MessagePtr m = q.front();
    q.pop_front();
    lk.unlock();

    m->tx_start = clock.now();
    // Outbound NIC occupancy: serialized by this very loop.  Every message
    // pays the fixed AM overhead; puts add their bandwidth term.
    double occupancy = link.am_overhead;
    if (m->is_put) occupancy += static_cast<double>(m->bytes) / link.bandwidth;
    if (m->src != m->dst && occupancy > 0) clock.sleep_for(occupancy);
    if (m->is_put) {
      // Data leaves the source buffer as it is transmitted; once the whole
      // message is on the wire the buffer is reusable (local completion).
      if (m->bytes > 0) {
        m->inline_payload.resize(m->bytes);
        std::memcpy(m->inline_payload.data(), m->src_addr, m->bytes);
      }
      stats_.add("tx_bytes", static_cast<double>(m->bytes));
      if (m->on_local_complete) m->on_local_complete();
    }
    net_.endpoint(m->dst).enqueue_rx(std::move(m));

    lk.lock();
  }
}

void Endpoint::rx_loop() {
  vt::Clock& clock = net_.clock();
  const LinkProps& link = net_.props();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    rx_mon_.wait(lk,
                 [this] { return shutdown_ || !rx_shorts_.empty() || !rx_bulk_.empty(); });
    if (shutdown_) return;
    auto& q = !rx_shorts_.empty() ? rx_shorts_ : rx_bulk_;
    MessagePtr m = q.front();
    q.pop_front();
    lk.unlock();

    if (m->src != m->dst) {
      // Wire latency relative to transmission start (usually already past),
      // then inbound NIC occupancy, serialized by this loop.
      clock.sleep_until(m->tx_start + link.latency);
      double occupancy = link.am_overhead;
      if (m->is_put) occupancy += static_cast<double>(m->bytes) / link.bandwidth;
      if (occupancy > 0) clock.sleep_for(occupancy);
    }
    deliver(m);

    lk.lock();
  }
}

void Endpoint::deliver(const MessagePtr& m) {
  stats_.add("rx_bytes", static_cast<double>(m->bytes));
  const void* body = m->inline_payload.data();
  if (m->is_put) {
    if (m->bytes > 0) std::memcpy(m->dst_addr, m->inline_payload.data(), m->bytes);
    body = m->dst_addr;
    if (m->on_remote_complete) m->on_remote_complete();
  }
  if (m->handler >= 0) {
    AmHandler handler;
    {
      std::lock_guard<std::mutex> lk(handlers_mu_);
      if (static_cast<std::size_t>(m->handler) < handlers_.size())
        handler = handlers_[static_cast<std::size_t>(m->handler)];
    }
    if (!handler) {
      LOG_ERROR("simnet: node ", node_, " received AM for unregistered handler ", m->handler);
      return;
    }
    handler(m->src, body, m->bytes);
  }
}

// ---------------------------------------------------------------------------
// Network

Network::Network(vt::Clock& clock, int nodes, const LinkProps& props)
    : clock_(clock), props_(props) {
  if (nodes <= 0) throw std::invalid_argument("simnet: node count must be positive");
  vt::Hold hold(clock_);
  endpoints_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) endpoints_.emplace_back(new Endpoint(*this, i));
  for (auto& ep : endpoints_) ep->start();
}

Network::~Network() {
  for (auto& ep : endpoints_) ep->stop();
}

}  // namespace simnet
