// Two-tier cluster fabric: per-rack switches behind an oversubscribed core.
//
// simnet's flat model gives every node an independent full-duplex NIC — fine
// for the paper's single-switch measurements, but production clusters hang
// racks of nodes off a shared uplink into a core layer whose aggregate
// capacity is a fraction of the sum of rack demands (the oversubscription
// ratio).  Topology models exactly that second tier:
//
//  * Nodes are assigned to racks contiguously: node n lives in rack
//    n / nodes_per_rack.  Intra-rack traffic never leaves the rack switch
//    and sees only the NIC model.
//  * A cross-rack transfer additionally traverses three shared resources —
//    the source rack's uplink, the core, and the destination rack's uplink —
//    and is granted the minimum equal share of each: a flow's rate is
//    min(rack_link_bw / flows-up, core_link_bw / flows-in-core,
//    rack_link_bw / flows-down), recomputed in virtual time whenever a flow
//    starts or finishes, so concurrent transfers contend deterministically.
//  * distance(a, b) is 0 (self), 1 (same rack) or 2 (cross-rack); the
//    cluster layer uses it to keep placement, presend sources and directory
//    homes rack-local.
//
// With racks <= 1 the whole subsystem is inert: transit() returns
// immediately and the NIC-only model is bit-identical to the flat network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace simnet {

/// Shape and capacity of the two-tier fabric.  Defaults describe a flat
/// (single-switch) network, which disables the fabric entirely.
struct TopologyConfig {
  int racks = 1;           ///< rack switches; <= 1 means flat (no fabric)
  int nodes_per_rack = 0;  ///< 0: derived as ceil(nodes / racks)
  /// Uplink capacity between one rack switch and the core, bytes/s each
  /// direction.  0 picks an effectively unconstrained uplink.
  double rack_link_bw = 0.0;
  /// Aggregate core capacity shared by all cross-rack flows, bytes/s.
  /// 0 picks racks * rack_link_bw (a non-blocking, 1:1 core).
  double core_link_bw = 0.0;
  /// Extra one-way latency paid by every cross-rack message (the additional
  /// switch hops), on top of LinkProps::latency.
  double core_latency = 0.0;

  bool flat() const { return racks <= 1; }
  /// Aggregate rack demand over core capacity (e.g. 4.0 for a 4:1 fabric).
  double oversubscription() const {
    if (flat() || rack_link_bw <= 0 || core_link_bw <= 0) return 1.0;
    return static_cast<double>(racks) * rack_link_bw / core_link_bw;
  }
};

/// The fabric instance owned by a Network.  Thread-safe; all blocking goes
/// through the virtual clock.
class Topology {
public:
  /// Trace hook: invoked (outside the fabric lock) when a cross-rack transit
  /// completes, with the racks involved, the byte count and the virtual time
  /// the transit began.
  using TraceFn =
      std::function<void(int src_rack, int dst_rack, std::size_t bytes, double begin)>;

  Topology(vt::Clock& clock, const TopologyConfig& cfg, int nodes);

  const TopologyConfig& config() const { return cfg_; }
  bool flat() const { return cfg_.flat(); }
  int racks() const { return racks_; }
  int nodes_per_rack() const { return nodes_per_rack_; }
  double core_latency() const { return cfg_.core_latency; }

  int rack_of(int node) const { return flat() ? 0 : node / nodes_per_rack_; }
  bool same_rack(int a, int b) const { return rack_of(a) == rack_of(b); }
  /// Link distance: 0 self, 1 same rack (one switch), 2 cross-rack (uplink +
  /// core + uplink).
  int distance(int a, int b) const {
    if (a == b) return 0;
    return same_rack(a, b) ? 1 : 2;
  }

  /// Blocks (in virtual time) while `bytes` traverse the fabric from `src`
  /// to `dst` at the fair-share rate described above.  Returns immediately
  /// for intra-rack traffic, a flat topology, or zero bytes.  Called from
  /// simnet TX threads; safe to call concurrently.
  void transit(int src, int dst, std::size_t bytes);

  /// Scales rack `rack`'s uplink capacity by `bandwidth_factor` (both
  /// directions) — the fabric half of FaultPlan::RackDegrade.
  void degrade_rack(int rack, double bandwidth_factor);

  /// Accounts message bytes to the tier they travel on (rack_bytes vs
  /// core_bytes).  Called once per wire message by the TX path.
  void account(int src, int dst, std::size_t bytes);

  /// Unblocks every in-flight transit (their remaining bytes are discarded).
  /// Called by Network::shutdown before joining TX threads.
  void stop();

  void set_trace(TraceFn fn);

  /// Raw fabric accumulators: rack_bytes, core_bytes, transits,
  /// uplink_busy.r<i> (seconds the rack's uplink carried at least one flow).
  common::Stats& stats() { return stats_; }

  /// Fraction of [0, now] the average rack uplink spent busy.
  double uplink_busy_frac(double now) const;

  /// Copies the per-tier counters into `out` under `net.`-prefixed names
  /// (net.rack_bytes, net.core_bytes, net.uplink_busy_frac, ...).  Deltas
  /// since the previous publish are added, so repeated calls accumulate
  /// instead of double-counting; the busy fraction is re-derived each call.
  void publish(common::Stats& out, double now);

private:
  struct Flow {
    double remaining = 0;  // bytes still in the fabric
    int src_rack = 0;
    int dst_rack = 0;
    double rate = 0;  // bytes/s granted by the current share computation
  };

  /// Drains every flow at the rates in effect since the last advance and
  /// accrues per-uplink/core busy time.  Caller holds mu_.
  void advance_locked(double now);
  /// Recomputes every flow's fair-share rate from current membership and
  /// uplink degradation factors.  Caller holds mu_.
  void recompute_locked();

  vt::Clock& clock_;
  TopologyConfig cfg_;
  int racks_ = 1;
  int nodes_per_rack_ = 1;
  double rack_bw_ = 0;  // effective uplink capacity (0 config resolved)
  double core_bw_ = 0;  // effective core capacity

  mutable std::mutex mu_;
  vt::Monitor mon_;
  std::vector<std::shared_ptr<Flow>> flows_;
  std::vector<double> rack_scale_;  // per-rack uplink degradation factor
  double last_advance_ = 0;
  bool stop_ = false;
  TraceFn trace_;

  common::Stats stats_;
  std::vector<double> uplink_busy_;  // seconds with >= 1 flow on the uplink
  double core_busy_ = 0;
  // publish() deltas
  double pub_rack_bytes_ = 0;
  double pub_core_bytes_ = 0;
};

}  // namespace simnet
