// simnet — a simulated cluster interconnect with GASNet-style active
// messages.
//
// The paper's cluster layer is built on GASNet: control information travels
// as short active messages, bulk data as puts into remote memory, and
// handlers run on the receiving side's polling thread.  simnet reproduces
// that model over the virtual clock:
//
//  * Each node has an Endpoint with one TX thread and one RX thread.  The TX
//    thread transmits queued messages in FIFO order, occupying the node's
//    outbound NIC for bytes/bandwidth per message; the RX thread receives in
//    arrival order, occupying the inbound NIC likewise, then runs the
//    registered handler inline (GASNet's rule: handlers must be short).
//  * Because both NIC directions serialize, a master node that sources every
//    transfer becomes a bottleneck exactly the way Fig. 9's MtoS (no
//    slave-to-slave) configuration does in the paper — and enabling direct
//    slave-to-slave puts relieves it.
//  * Messages between a given (src, dst) pair are delivered in FIFO order —
//    the guarantee the cluster runtime's protocol relies on.
//  * put() writes into destination-node memory identified by a raw pointer
//    (the cluster layer hands out addresses from per-node segments).  The
//    local-completion callback fires once the source buffer has been read
//    (safe to reuse); the remote-completion callback fires on the RX thread
//    after the data landed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "simnet/topology.hpp"
#include "vt/clock.hpp"
#include "vt/sync.hpp"

namespace simnet {

/// Performance model of one node's network interface.
struct LinkProps {
  double bandwidth = 1.0e9;   ///< bytes/s, each direction independently
  double latency = 2.0e-6;    ///< wire latency per message
  double am_overhead = 3.0e-6;  ///< fixed processing cost of a short AM

  /// Coalescing of am_coalesced() traffic: messages to the same destination
  /// are batched into one wire AM (one am_overhead for the whole batch).  A
  /// batch is flushed when it ages past `coalesce_window`, grows to
  /// `coalesce_max_msgs` sub-messages or `coalesce_max_bytes` of payload, or
  /// when a plain short to the same destination must not overtake it.  A
  /// window <= 0 disables coalescing (am_coalesced degrades to am_short).
  /// Plain am_short()/put() traffic is never coalesced.
  double coalesce_window = 5.0e-6;
  int coalesce_max_msgs = 16;
  std::size_t coalesce_max_bytes = 4096;
};

/// Deterministic fault-injection schedule for a Network.  All times are
/// virtual seconds; all randomness derives from `seed` plus per-endpoint
/// transmit sequence numbers, so a fixed plan replays the same faults on
/// every run with the same traffic order.
struct FaultPlan {
  /// Node `node` dies at virtual time `time`: its NIC goes silent in both
  /// directions (messages to it vanish on arrival, its queued and future
  /// sends are discarded, no completion callbacks fire).  Compute threads on
  /// the node keep running — a partitioned node is indistinguishable from a
  /// dead one to the rest of the cluster, which is exactly what the failure
  /// detector must cope with.
  struct NodeKill {
    int node = -1;
    double time = 0.0;
  };
  /// Node `node`'s NIC drops to `bandwidth_factor` of its configured
  /// bandwidth (both directions) at `time` — a degraded link, not a dead one.
  struct NicDegrade {
    int node = -1;
    double time = 0.0;
    double bandwidth_factor = 1.0;
  };

  /// Every node in rack `rack` dies at `time` (a rack-level power or switch
  /// failure).  Requires a non-flat topology; ignored otherwise.
  struct RackKill {
    int rack = -1;
    double time = 0.0;
  };
  /// Rack `rack`'s uplink drops to `bandwidth_factor` of its configured
  /// capacity at `time` — a hot or oversubscribed rack, not a dead one.
  /// With a flat topology (no uplinks) the degradation falls back to the
  /// member NICs, preserving "this rack got slower" semantics.
  struct RackDegrade {
    int rack = -1;
    double time = 0.0;
    double bandwidth_factor = 1.0;
  };

  std::vector<NodeKill> kills;
  std::vector<NicDegrade> degrades;
  std::vector<RackKill> rack_kills;
  std::vector<RackDegrade> rack_degrades;

  /// Schedules the death of every node in `rack` at `time`.
  FaultPlan& kill_rack(int rack, double time) {
    rack_kills.push_back({rack, time});
    return *this;
  }
  /// Schedules rack `rack`'s uplink to degrade to `factor` at `time`.
  FaultPlan& degrade_rack(int rack, double time, double factor) {
    rack_degrades.push_back({rack, time, factor});
    return *this;
  }
  /// Hot-rack straggler preset: rack `rack`'s uplink collapses to `factor`
  /// (default one quarter) at `time` and stays there — the sustained
  /// contention scenario a straggler-tolerant scheduler must survive.
  static FaultPlan hot_rack(int rack, double time, double factor = 0.25) {
    FaultPlan p;
    p.degrade_rack(rack, time, factor);
    return p;
  }

  /// Per-message loss model, applied independently to every transmitted
  /// message (shorts and puts alike) while the source node is alive.
  double drop_fraction = 0.0;       ///< message vanishes after transmission
  double duplicate_fraction = 0.0;  ///< message is delivered twice
  double delay_fraction = 0.0;      ///< message arrives `delay_seconds` late
  double delay_seconds = 0.0;
  std::uint64_t seed = 1;

  bool empty() const {
    return kills.empty() && degrades.empty() && rack_kills.empty() &&
           rack_degrades.empty() && drop_fraction == 0.0 && duplicate_fraction == 0.0 &&
           delay_fraction == 0.0;
  }

  /// True when individual messages can be lost or reordered in flight.  A
  /// kill-only plan is NOT lossy: messages from live nodes always arrive, so
  /// timer-based retransmission would only ever misfire.
  bool lossy() const {
    return drop_fraction > 0.0 || duplicate_fraction > 0.0 || delay_fraction > 0.0;
  }
};

/// Per-message fault decision derived from a FaultPlan (see
/// Network::fault_decision).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay = 0.0;
};

/// Active-message handler: runs on the destination's RX thread.
/// `payload`/`bytes` describe the message body (inline data for shorts, the
/// destination buffer for puts with a completion handler).
using AmHandler = std::function<void(int src_node, const void* payload, std::size_t bytes)>;

class Network;

/// One in-flight wire message (short AM, coalesced batch, or put).
struct Message {
  /// One coalesced sub-message: delivered as if it were its own short AM.
  struct Sub {
    int handler = -1;
    std::vector<char> payload;
  };

  int src = 0;
  int dst = 0;
  int handler = -1;
  std::vector<char> inline_payload;  // short AM body
  const void* src_addr = nullptr;    // put source
  void* dst_addr = nullptr;          // put destination
  std::size_t bytes = 0;
  bool is_put = false;
  bool is_batch = false;             // coalesced batch of shorts
  std::vector<Sub> subs;             // batch contents (is_batch only)
  double tx_start = 0.0;
  double extra_delay = 0.0;          // fault-injected in-flight delay
  std::function<void()> on_local_complete;
  std::function<void()> on_remote_complete;
};
using MessagePtr = std::shared_ptr<Message>;

/// Pluggable delivery arbitration for schedule exploration (simcheck).
///
/// When installed on a Network, the arbiter sees every message at the moment
/// it would enter its destination's inbound queue — after transmission, NIC
/// occupancy and the fault roll, i.e. with all timing costs already paid.
/// Returning true from intercept() takes ownership: the message is *held*
/// instead of queued, and the arbiter releases it later (in an order of its
/// choosing) through Network::admit().  Per-(src, dst) FIFO and all other
/// delivery semantics become whatever the arbiter enforces — this is the
/// instrument that turns the fabric's one source of schedule freedom into an
/// explicit choice point.
///
/// force_flush() is consulted whenever an am_coalesced() sub-message joins a
/// pending batch that is not yet full: returning true flushes the batch
/// immediately, letting an explorer drive coalesce-window timing instead of
/// the virtual-time deadline.  Called with the endpoint's internal mutex
/// held — implementations must be non-blocking and must not call back into
/// the endpoint.
class DeliveryArbiter {
public:
  virtual ~DeliveryArbiter() = default;
  virtual bool intercept(const MessagePtr& m) = 0;
  virtual bool force_flush(int src, int dst, int batch_msgs, std::size_t batch_bytes) = 0;
};

class Endpoint {
public:
  int node() const { return node_; }

  /// Registers `handler` under `id` (node-local table).  Not thread-safe
  /// against concurrent delivery; register everything before traffic starts.
  void register_handler(int id, AmHandler handler);

  /// Sends a short active message.  The payload (small, control-sized) is
  /// copied immediately; the call never blocks.
  void am_short(int dst, int handler, const void* payload, std::size_t bytes);

  /// Like am_short, but the message may be coalesced with other am_coalesced
  /// traffic to the same destination into one wire AM (see
  /// LinkProps::coalesce_window).  Delivery semantics are identical — the
  /// handler runs per sub-message on the destination's RX thread, and FIFO
  /// order against the sender's plain shorts is preserved (a plain short
  /// flushes any pending batch ahead of itself).  Use for high-rate control
  /// messages whose per-message latency can tolerate the flush window.
  void am_coalesced(int dst, int handler, const void* payload, std::size_t bytes);

  /// Writes `bytes` from `src` into `dst_addr` on node `dst`.
  ///  - on_local_complete: source buffer has been read; safe to reuse.
  ///  - on_remote_complete: data landed at the destination.
  ///  - handler >= 0: additionally invoke that handler on the destination
  ///    with (src_node, dst_addr, bytes) — GASNet's AMLong.
  void put(int dst, void* dst_addr, const void* src, std::size_t bytes,
           std::function<void()> on_local_complete = nullptr,
           std::function<void()> on_remote_complete = nullptr, int handler = -1);

  common::Stats& stats() { return stats_; }

  /// True once the fault plan killed this node (see FaultPlan::NodeKill).
  bool dead() const;

private:
  friend class Network;

  /// A per-destination accumulation of am_coalesced sub-messages awaiting a
  /// flush trigger (age, size, count, or an ordering-forced flush).
  struct PendingBatch {
    std::vector<Message::Sub> subs;
    std::size_t bytes = 0;
    double deadline = 0.0;  // first enqueue time + coalesce_window
  };

  Endpoint(Network& net, int node);
  void start();
  void stop();
  void kill();            // FaultPlan node death: NIC silent, queues discarded
  void degrade(double bandwidth_factor);
  void tx_loop();
  void rx_loop();
  void enqueue_tx(MessagePtr m);
  void enqueue_rx(MessagePtr m);
  void enqueue_rx_direct(MessagePtr m);  // bypasses the delivery arbiter
  void deliver(const MessagePtr& m);
  void flush_batch_locked(int dst);
  void flush_expired_batches_locked(double now);
  double bw_scale_locked() const { return bw_scale_; }

  Network& net_;
  int node_;

  mutable std::mutex mu_;
  vt::Monitor tx_mon_;
  vt::Monitor rx_mon_;
  // Short AMs bypass queued bulk puts (packet-granular interleaving on the
  // wire): a completion ack must not wait for megabytes of unrelated data.
  // FIFO order still holds within each class per (src, dst) pair.
  std::deque<MessagePtr> tx_shorts_;
  std::deque<MessagePtr> tx_bulk_;
  std::deque<MessagePtr> rx_shorts_;
  std::deque<MessagePtr> rx_bulk_;
  std::map<int, PendingBatch> coalesce_;  // pending batches keyed by dst
  bool shutdown_ = false;
  bool dead_ = false;           // fault-injected node death
  double bw_scale_ = 1.0;       // fault-injected NIC degradation
  std::uint64_t tx_seq_ = 0;    // per-endpoint transmit counter (fault hashing)

  std::mutex handlers_mu_;
  std::vector<AmHandler> handlers_;

  common::Stats stats_;

  vt::Thread tx_thread_;
  vt::Thread rx_thread_;
};

/// A cluster of `nodes` endpoints sharing one link model and one fabric
/// topology (flat by default).
class Network {
public:
  Network(vt::Clock& clock, int nodes, const LinkProps& props = {},
          const TopologyConfig& topology = {});
  ~Network();

  /// Joins every endpoint's TX/RX thread (and the fault driver); undelivered
  /// messages are discarded.  Idempotent.  Owners whose AM handlers touch
  /// state destroyed before the Network member call this first, so no
  /// handler can fire into a dead object during teardown.
  void shutdown();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  vt::Clock& clock() { return clock_; }
  const LinkProps& props() const { return props_; }
  Topology& topology() { return *topo_; }
  const Topology& topology() const { return *topo_; }
  int node_count() const { return static_cast<int>(endpoints_.size()); }
  Endpoint& endpoint(int node) { return *endpoints_.at(static_cast<std::size_t>(node)); }

  /// Installs a fault plan and starts its schedule driver (a service thread
  /// that applies kills/degrades at their virtual times).  Call once, before
  /// traffic starts.  The per-message loss model takes effect immediately.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Kills `node` immediately (also reachable through the plan's schedule).
  void kill_node(int node);
  bool node_dead(int node) { return endpoint(node).dead(); }

  /// Installs (or clears, with nullptr) a delivery arbiter.  The arbiter
  /// sees every inbound message via DeliveryArbiter::intercept before it is
  /// queued; install/clear only while the fabric is quiescent.
  void set_arbiter(DeliveryArbiter* arbiter) {
    arbiter_.store(arbiter, std::memory_order_release);
  }
  DeliveryArbiter* arbiter() const { return arbiter_.load(std::memory_order_acquire); }

  /// Hands a message previously taken by the arbiter to its destination's
  /// inbound queue, bypassing further arbitration.  Normal dead/shutdown
  /// drops still apply — a message admitted to a node that died while it
  /// was held vanishes, same as one arriving at a silent NIC.
  void admit(MessagePtr m) { endpoint(m->dst).enqueue_rx_direct(std::move(m)); }

  /// Deterministic per-message fault roll for message number `seq` leaving
  /// `src` — pure function of (plan seed, src, seq).
  FaultDecision fault_decision(int src, std::uint64_t seq) const;

private:
  void fault_driver_loop();

  vt::Clock& clock_;
  LinkProps props_;
  std::unique_ptr<Topology> topo_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  FaultPlan plan_;
  bool lossy_ = false;  // plan has a nonzero per-message loss model
  std::atomic<DeliveryArbiter*> arbiter_{nullptr};
  std::mutex fault_mu_;
  vt::Monitor fault_mon_;
  bool fault_stop_ = false;
  vt::Thread fault_thread_;
};

}  // namespace simnet
