// The four STREAM kernels, shared by all versions (paper Fig. 3 shows the
// CUDA wrapper around kernels like these).
#include "apps/stream/stream.hpp"

namespace apps::stream {

void copy_kernel(const double* a, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
}

void scale_kernel(double* b, const double* c, double scalar, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = scalar * c[i];
}

void add_kernel(const double* a, const double* b, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}

void triad_kernel(double* a, const double* b, const double* c, double scalar, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
}

}  // namespace apps::stream
