// MPI+CUDA STREAM: the original MPI structure with handmade CUDA kernels
// (paper §IV-A2).  Each rank owns its slice of the vectors; there is no
// inter-node traffic — only barriers delimiting the timed region.
#include "apps/stream/stream.hpp"

namespace apps::stream {

Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu) {
  simnet::Network net(clock, ranks, link);
  minimpi::World world(net);
  simcuda::Platform platform(clock, std::vector<simcuda::DeviceProps>(
                                        static_cast<std::size_t>(ranks), gpu));

  // The paper scales STREAM with the machine: 768 MB per GPU, so each rank
  // gets `blocks_per_gpu` blocks regardless of the rank count.
  const int blocks = p.blocks_per_gpu;
  const std::size_t bn = p.block_phys;
  const std::size_t n = static_cast<std::size_t>(blocks) * bn;
  const double lb = p.block_logical * sizeof(double);

  Result r;
  std::vector<double> rank_seconds(static_cast<std::size_t>(ranks), 0.0);
  double checksum = 0.0;

  std::vector<vt::Thread> rank_threads;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  for (int rank = 0; rank < ranks; ++rank) {
    rank_threads.emplace_back(clock, "mpirank" + std::to_string(rank), [&, rank] {
      minimpi::Comm comm = world.comm(rank);
      simcuda::Device& dev = platform.device(rank);

      std::vector<double> a(n), b(n, 0.0), c(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t gi = static_cast<std::size_t>(rank) * n + i;
        a[i] = 1.0 + static_cast<double>(gi % 97) / 97.0;
      }
      auto* da = static_cast<double*>(dev.malloc(n * sizeof(double)));
      auto* db = static_cast<double*>(dev.malloc(n * sizeof(double)));
      auto* dc = static_cast<double*>(dev.malloc(n * sizeof(double)));
      if (!da || !db || !dc) throw std::runtime_error("stream/mpicuda: GPU out of memory");

      // One-time device load, outside the timed region (the OmpSs version's
      // timed region likewise starts with the blocks already resident).
      dev.memcpy_h2d(da, a.data(), n * sizeof(double));
      dev.memcpy_h2d(db, b.data(), n * sizeof(double));
      dev.memcpy_h2d(dc, c.data(), n * sizeof(double));
      comm.barrier();
      double t0 = clock.now();
      const double scalar = p.scalar;
      for (int t = 0; t < p.ntimes; ++t) {
        for (int blk = 0; blk < blocks; ++blk) {
          std::size_t off = static_cast<std::size_t>(blk) * bn;
          dev.launch_kernel(dev.default_stream(), {0.0, 2.0 * lb},
                            [da, dc, off, bn] { copy_kernel(da + off, dc + off, bn); });
        }
        for (int blk = 0; blk < blocks; ++blk) {
          std::size_t off = static_cast<std::size_t>(blk) * bn;
          dev.launch_kernel(dev.default_stream(), {0.0, 2.0 * lb}, [db, dc, off, bn, scalar] {
            scale_kernel(db + off, dc + off, scalar, bn);
          });
        }
        for (int blk = 0; blk < blocks; ++blk) {
          std::size_t off = static_cast<std::size_t>(blk) * bn;
          dev.launch_kernel(dev.default_stream(), {0.0, 3.0 * lb}, [da, db, dc, off, bn] {
            add_kernel(da + off, db + off, dc + off, bn);
          });
        }
        for (int blk = 0; blk < blocks; ++blk) {
          std::size_t off = static_cast<std::size_t>(blk) * bn;
          dev.launch_kernel(dev.default_stream(), {0.0, 3.0 * lb}, [da, db, dc, off, bn, scalar] {
            triad_kernel(da + off, db + off, dc + off, scalar, bn);
          });
        }
      }
      dev.synchronize();
      dev.memcpy_d2h(a.data(), da, n * sizeof(double));
      comm.barrier();
      rank_seconds[static_cast<std::size_t>(rank)] = clock.now() - t0;

      double local_sum = 0;
      for (double v : a) local_sum += v;
      double global_sum = 0;
      comm.reduce_sum(&local_sum, &global_sum, 1, 0);
      if (rank == 0) checksum = global_sum;

      dev.free(da);
      dev.free(db);
      dev.free(dc);
    });
  }
  hold.reset();
  for (auto& t : rank_threads) t.join();

  r.seconds = *std::max_element(rank_seconds.begin(), rank_seconds.end());
  // Aggregate rate over all ranks' logical bytes.
  r.gbps = 10.0 * p.block_logical * blocks * ranks * sizeof(double) * p.ntimes / r.seconds / 1e9;
  r.checksum = checksum;
  return r;
}

}  // namespace apps::stream
