// Serial STREAM: the reference loop nest (and Table I's LoC baseline).
#include "apps/stream/stream.hpp"

namespace apps::stream {

Result run_serial(const Params& p) {
  const std::size_t n = p.n_phys();
  std::vector<double> a(n), b(n, 0.0), c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i] = 1.0 + static_cast<double>(i % 97) / 97.0;

  for (int t = 0; t < p.ntimes; ++t) {
    copy_kernel(a.data(), c.data(), n);
    scale_kernel(b.data(), c.data(), p.scalar, n);
    add_kernel(a.data(), b.data(), c.data(), n);
    triad_kernel(a.data(), b.data(), c.data(), p.scalar, n);
  }

  Result r;
  for (double v : a) r.checksum += v;
  return r;
}

}  // namespace apps::stream
