// Single-GPU CUDA STREAM: explicit device buffers, one kernel launch per
// block per operation, explicit copy-in/copy-out.
#include "apps/stream/stream.hpp"

namespace apps::stream {

Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu) {
  simcuda::Platform platform(clock, {gpu});
  simcuda::Device& dev = platform.device(0);

  const std::size_t n = p.n_phys();
  const std::size_t bn = p.block_phys;
  const int blocks = p.total_blocks();
  std::vector<double> a(n), b(n, 0.0), c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i] = 1.0 + static_cast<double>(i % 97) / 97.0;

  Result r;
  vt::AttachGuard guard(clock, "cuda-main");

  auto* da = static_cast<double*>(dev.malloc(n * sizeof(double)));
  auto* db = static_cast<double*>(dev.malloc(n * sizeof(double)));
  auto* dc = static_cast<double*>(dev.malloc(n * sizeof(double)));
  if (!da || !db || !dc) throw std::runtime_error("stream/cuda: GPU out of memory");

  double t0 = clock.now();
  dev.memcpy_h2d(da, a.data(), n * sizeof(double));
  dev.memcpy_h2d(db, b.data(), n * sizeof(double));
  dev.memcpy_h2d(dc, c.data(), n * sizeof(double));

  const double scalar = p.scalar;
  const double lb = p.block_logical * sizeof(double);
  for (int t = 0; t < p.ntimes; ++t) {
    for (int blk = 0; blk < blocks; ++blk) {
      std::size_t off = static_cast<std::size_t>(blk) * bn;
      dev.launch_kernel(dev.default_stream(), {0.0, 2.0 * lb},
                        [da, dc, off, bn] { copy_kernel(da + off, dc + off, bn); });
    }
    for (int blk = 0; blk < blocks; ++blk) {
      std::size_t off = static_cast<std::size_t>(blk) * bn;
      dev.launch_kernel(dev.default_stream(), {0.0, 2.0 * lb}, [db, dc, off, bn, scalar] {
        scale_kernel(db + off, dc + off, scalar, bn);
      });
    }
    for (int blk = 0; blk < blocks; ++blk) {
      std::size_t off = static_cast<std::size_t>(blk) * bn;
      dev.launch_kernel(dev.default_stream(), {0.0, 3.0 * lb},
                        [da, db, dc, off, bn] { add_kernel(da + off, db + off, dc + off, bn); });
    }
    for (int blk = 0; blk < blocks; ++blk) {
      std::size_t off = static_cast<std::size_t>(blk) * bn;
      dev.launch_kernel(dev.default_stream(), {0.0, 3.0 * lb}, [da, db, dc, off, bn, scalar] {
        triad_kernel(da + off, db + off, dc + off, scalar, bn);
      });
    }
  }
  dev.synchronize();
  dev.memcpy_d2h(a.data(), da, n * sizeof(double));
  double t1 = clock.now();

  dev.free(da);
  dev.free(db);
  dev.free(dc);

  r.seconds = t1 - t0;
  r.gbps = p.bytes_per_iter() * p.ntimes / r.seconds / 1e9;
  for (double v : a) r.checksum += v;
  return r;
}

}  // namespace apps::stream
