// STREAM benchmark (paper Fig. 2): copy / scale / add / triad over blocked
// vectors, NTIMES iterations.  The paper allocates 768 MB per GPU; tasks are
// BSIZE-element chunks of the three vectors.
//
// Versions (Table I):
//   serial.cpp   — the original loop nest.
//   cuda.cpp     — single GPU with explicit copies and kernel launches.
//   mpicuda.cpp  — one rank per node, each with its own arrays (STREAM has
//                  no inter-node traffic; barriers around iterations).
//   ompss.cpp    — the Fig. 2 code: four annotated functions, one task per
//                  block per operation.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/platform.hpp"
#include "minimpi/minimpi.hpp"
#include "ompss/ompss.hpp"

namespace apps::stream {

struct Params {
  int blocks_per_gpu = 32;       ///< tasks per vector per GPU per op
  int gpus = 1;                  ///< total GPUs (scales the vectors, like the paper)
  std::size_t block_phys = 2048; ///< physical doubles per block
  double block_logical = 1.0e6;  ///< logical doubles per block (8 MB)
  int ntimes = 10;
  double scalar = 3.0;

  int total_blocks() const { return blocks_per_gpu * gpus; }
  std::size_t n_phys() const { return static_cast<std::size_t>(total_blocks()) * block_phys; }
  double byte_scale() const { return block_logical / static_cast<double>(block_phys); }
  std::size_t block_bytes() const { return block_phys * sizeof(double); }
  /// Logical bytes moved per iteration (2+2+3+3 array touches).
  double bytes_per_iter() const {
    return 10.0 * block_logical * total_blocks() * sizeof(double);
  }
};

// Shared kernels — the "handmade kernels" of the paper's MPI+CUDA version.
void copy_kernel(const double* a, double* c, std::size_t n);
void scale_kernel(double* b, const double* c, double scalar, std::size_t n);
void add_kernel(const double* a, const double* b, double* c, std::size_t n);
void triad_kernel(double* a, const double* b, const double* c, double scalar, std::size_t n);

struct Result {
  double seconds = 0;
  double gbps = 0;       ///< logical GB/s over all iterations
  double checksum = 0;   ///< sum over a after the last iteration
};

Result run_serial(const Params& p);
Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu);
Result run_ompss(ompss::Env& env, const Params& p);
Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu);

}  // namespace apps::stream
