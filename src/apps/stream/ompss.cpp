// OmpSs STREAM — the paper's Fig. 2: copy/scale/add/triad annotated as
// function tasks; each invocation over a BSIZE block spawns a task and the
// runtime handles every transfer.
#include "apps/stream/stream.hpp"

namespace apps::stream {

Result run_ompss(ompss::Env& env, const Params& p) {
  const std::size_t n = p.n_phys();
  const std::size_t bn = p.block_phys;
  const std::size_t bb = p.block_bytes();
  const int blocks = p.total_blocks();
  std::vector<double> a(n), b(n, 0.0), c(n, 0.0);

  const double scalar = p.scalar;
  const double lb = p.block_logical * sizeof(double);

  Result r;
  env.run([&] {
    // Distributed first-touch initialization (one SMP task per block): on a
    // cluster each block is created on the node that will work on it, so the
    // timed region has no inter-node traffic — the property the paper's
    // Fig. 11 relies on.
    for (int blk = 0; blk < blocks; ++blk) {
      std::size_t off = static_cast<std::size_t>(blk) * bn;
      ompss::task()
          .device(ompss::Device::kSmp)
          .out(&a[off], bb)
          .label("init")
          .run([off, bn](ompss::Ctx& ctx) {
            auto* ap = static_cast<double*>(ctx.data(0));
            for (std::size_t i = 0; i < bn; ++i)
              ap[i] = 1.0 + static_cast<double>((off + i) % 97) / 97.0;
          });
    }
    ompss::taskwait_noflush();

    double t0 = env.clock().now();
    for (int t = 0; t < p.ntimes; ++t) {
      for (int blk = 0; blk < blocks; ++blk) {
        std::size_t off = static_cast<std::size_t>(blk) * bn;
        ompss::task()
            .device(ompss::Device::kCuda)
            .in(&a[off], bb)
            .out(&c[off], bb)
            .bytes(2.0 * lb)
            .label("copy")
            .run([bn](ompss::Ctx& ctx) {
              copy_kernel(static_cast<const double*>(ctx.data(0)),
                          static_cast<double*>(ctx.data(1)), bn);
            });
      }
      for (int blk = 0; blk < blocks; ++blk) {
        std::size_t off = static_cast<std::size_t>(blk) * bn;
        ompss::task()
            .device(ompss::Device::kCuda)
            .in(&c[off], bb)
            .out(&b[off], bb)
            .bytes(2.0 * lb)
            .label("scale")
            .run([bn, scalar](ompss::Ctx& ctx) {
              scale_kernel(static_cast<double*>(ctx.data(1)),
                           static_cast<const double*>(ctx.data(0)), scalar, bn);
            });
      }
      for (int blk = 0; blk < blocks; ++blk) {
        std::size_t off = static_cast<std::size_t>(blk) * bn;
        ompss::task()
            .device(ompss::Device::kCuda)
            .in(&a[off], bb)
            .in(&b[off], bb)
            .out(&c[off], bb)
            .bytes(3.0 * lb)
            .label("add")
            .run([bn](ompss::Ctx& ctx) {
              add_kernel(static_cast<const double*>(ctx.data(0)),
                         static_cast<const double*>(ctx.data(1)),
                         static_cast<double*>(ctx.data(2)), bn);
            });
      }
      for (int blk = 0; blk < blocks; ++blk) {
        std::size_t off = static_cast<std::size_t>(blk) * bn;
        ompss::task()
            .device(ompss::Device::kCuda)
            .in(&b[off], bb)
            .in(&c[off], bb)
            .out(&a[off], bb)
            .bytes(3.0 * lb)
            .label("triad")
            .run([bn, scalar](ompss::Ctx& ctx) {
              triad_kernel(static_cast<double*>(ctx.data(2)),
                           static_cast<const double*>(ctx.data(0)),
                           static_cast<const double*>(ctx.data(1)), scalar, bn);
            });
      }
    }
    ompss::taskwait_noflush();
    r.seconds = env.clock().now() - t0;
    ompss::taskwait();  // flush for verification, outside the measured phase
  });

  r.gbps = p.bytes_per_iter() * p.ntimes / r.seconds / 1e9;
  for (double v : a) r.checksum += v;
  return r;
}

}  // namespace apps::stream
