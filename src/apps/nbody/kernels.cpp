// Shared N-Body kernels (the paper uses the NVIDIA SDK example kernel).
#include "apps/nbody/nbody.hpp"

#include <cmath>

namespace apps::nbody {

void nbody_block_step(const float* const* pos_blocks, int nb, int block_bodies,
                      const float* pos_targets, float* vel_targets, float* pos_out, int tn,
                      float dt, float eps2) {
  for (int t = 0; t < tn; ++t) {
    const float px = pos_targets[t * 4 + 0];
    const float py = pos_targets[t * 4 + 1];
    const float pz = pos_targets[t * 4 + 2];
    const float pm = pos_targets[t * 4 + 3];
    float ax = 0, ay = 0, az = 0;
    // Source blocks in ascending order so every version (serial, CUDA, MPI,
    // OmpSs — wherever the blocks live) accumulates in the same order and
    // produces bit-identical floats.
    for (int b = 0; b < nb; ++b) {
      const float* src = pos_blocks[b];
      for (int s = 0; s < block_bodies; ++s) {
        float dx = src[s * 4 + 0] - px;
        float dy = src[s * 4 + 1] - py;
        float dz = src[s * 4 + 2] - pz;
        float r2 = dx * dx + dy * dy + dz * dz + eps2;
        float inv = 1.0f / std::sqrt(r2);
        float inv3 = inv * inv * inv * src[s * 4 + 3];
        ax += dx * inv3;
        ay += dy * inv3;
        az += dz * inv3;
      }
    }
    vel_targets[t * 4 + 0] += ax * dt;
    vel_targets[t * 4 + 1] += ay * dt;
    vel_targets[t * 4 + 2] += az * dt;
    pos_out[t * 4 + 0] = px + vel_targets[t * 4 + 0] * dt;
    pos_out[t * 4 + 1] = py + vel_targets[t * 4 + 1] * dt;
    pos_out[t * 4 + 2] = pz + vel_targets[t * 4 + 2] * dt;
    pos_out[t * 4 + 3] = pm;
  }
}

void init_bodies(float* pos, float* vel, int first, int count, unsigned seed) {
  unsigned state = seed * 2654435761u + 12345u;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>((state >> 8) & 0xFFFF) / 65536.0f - 0.5f;
  };
  // Skip the stream to this block's offset so initialization is identical
  // regardless of which version (or node) performs it.
  for (int i = 0; i < first * 7; ++i) next();
  for (int i = 0; i < count; ++i) {
    pos[i * 4 + 0] = next() * 10.0f;
    pos[i * 4 + 1] = next() * 10.0f;
    pos[i * 4 + 2] = next() * 10.0f;
    pos[i * 4 + 3] = 0.5f + (next() + 0.5f);  // mass in [0.5, 1.5)
    vel[i * 4 + 0] = next();
    vel[i * 4 + 1] = next();
    vel[i * 4 + 2] = next();
    vel[i * 4 + 3] = 0.0f;
  }
}

}  // namespace apps::nbody
