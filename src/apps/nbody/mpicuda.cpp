// MPI+CUDA N-Body: each rank owns a slice of the bodies; after every step
// the updated positions are allgathered to all ranks (the all-to-all
// communication pattern the paper says leaves no room for overlap).
#include "apps/nbody/nbody.hpp"

namespace apps::nbody {

Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu) {
  simnet::Network net(clock, ranks, link);
  minimpi::World world(net);
  simcuda::Platform platform(clock, std::vector<simcuda::DeviceProps>(
                                        static_cast<std::size_t>(ranks), gpu));

  if (p.nb % ranks != 0)
    throw std::invalid_argument("nbody/mpicuda: blocks must divide the rank count");
  const int blocks_per_rank = p.nb / ranks;
  const int bb = p.block_bodies();
  const int my_bodies = blocks_per_rank * bb;
  const std::size_t total_bytes = p.block_bytes() * static_cast<std::size_t>(p.nb);
  const std::size_t my_bytes = p.block_bytes() * static_cast<std::size_t>(blocks_per_rank);

  Result r;
  std::vector<double> rank_seconds(static_cast<std::size_t>(ranks), 0.0);
  double checksum = 0.0;

  std::vector<vt::Thread> rank_threads;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  for (int rank = 0; rank < ranks; ++rank) {
    rank_threads.emplace_back(clock, "mpirank" + std::to_string(rank), [&, rank] {
      minimpi::Comm comm = world.comm(rank);
      simcuda::Device& dev = platform.device(rank);

      const int first = rank * my_bodies;
      std::vector<float> all_pos(static_cast<std::size_t>(p.n_phys) * 4);
      std::vector<float> my_pos(static_cast<std::size_t>(my_bodies) * 4);
      std::vector<float> my_vel(static_cast<std::size_t>(my_bodies) * 4);
      init_bodies(my_pos.data(), my_vel.data(), first, my_bodies, p.seed);

      auto* dall = static_cast<float*>(dev.malloc(total_bytes));
      auto* dmine = static_cast<float*>(dev.malloc(my_bytes));
      auto* dvel = static_cast<float*>(dev.malloc(my_bytes));
      if (!dall || !dmine || !dvel) throw std::runtime_error("nbody/mpicuda: GPU out of memory");
      dev.memcpy_h2d(dvel, my_vel.data(), my_bytes);

      comm.barrier();
      double t0 = clock.now();
      const int nb = p.nb;
      const float dt = p.dt, eps2 = p.eps2;
      for (int it = 0; it < p.iters; ++it) {
        // Distribute the previous round's data to everyone (paper §IV-A2).
        comm.allgather(my_pos.data(), my_bytes, all_pos.data());
        dev.memcpy_h2d(dall, all_pos.data(), total_bytes);
        for (int lb = 0; lb < blocks_per_rank; ++lb) {
          int gb = rank * blocks_per_rank + lb;
          float* dall_cap = dall;
          float* tgt_out = dmine + static_cast<std::size_t>(lb * bb) * 4;
          float* tgt_vel = dvel + static_cast<std::size_t>(lb * bb) * 4;
          dev.launch_kernel(dev.default_stream(), {p.task_flops(), 0.0},
                            [dall_cap, tgt_out, tgt_vel, nb, bb, gb, dt, eps2] {
                              std::vector<const float*> srcs(static_cast<std::size_t>(nb));
                              for (int s = 0; s < nb; ++s)
                                srcs[static_cast<std::size_t>(s)] =
                                    dall_cap + static_cast<std::size_t>(s * bb) * 4;
                              nbody_block_step(srcs.data(), nb, bb,
                                               dall_cap + static_cast<std::size_t>(gb * bb) * 4,
                                               tgt_vel, tgt_out, bb, dt, eps2);
                            });
        }
        dev.synchronize();
        dev.memcpy_d2h(my_pos.data(), dmine, my_bytes);
      }
      comm.barrier();
      rank_seconds[static_cast<std::size_t>(rank)] = clock.now() - t0;

      double local_sum = 0;
      for (float v : my_pos) local_sum += v;
      double global_sum = 0;
      comm.reduce_sum(&local_sum, &global_sum, 1, 0);
      if (rank == 0) checksum = global_sum;

      dev.free(dall);
      dev.free(dmine);
      dev.free(dvel);
    });
  }
  hold.reset();
  for (auto& t : rank_threads) t.join();

  r.seconds = *std::max_element(rank_seconds.begin(), rank_seconds.end());
  r.gflops = p.total_flops() / r.seconds / 1e9;
  r.checksum = checksum;
  return r;
}

}  // namespace apps::nbody
