// Serial N-Body: the reference (and Table I's LoC baseline).
#include "apps/nbody/nbody.hpp"

namespace apps::nbody {

Result run_serial(const Params& p) {
  const int bb = p.block_bodies();
  std::vector<std::vector<float>> pos[2];
  std::vector<std::vector<float>> vel(static_cast<std::size_t>(p.nb),
                                      std::vector<float>(static_cast<std::size_t>(bb) * 4));
  for (auto& buf : pos)
    buf.assign(static_cast<std::size_t>(p.nb),
               std::vector<float>(static_cast<std::size_t>(bb) * 4));
  for (int b = 0; b < p.nb; ++b)
    init_bodies(pos[0][static_cast<std::size_t>(b)].data(),
                vel[static_cast<std::size_t>(b)].data(), b * bb, bb, p.seed);

  int cur = 0;
  for (int it = 0; it < p.iters; ++it) {
    std::vector<const float*> srcs(static_cast<std::size_t>(p.nb));
    for (int b = 0; b < p.nb; ++b) srcs[static_cast<std::size_t>(b)] =
        pos[cur][static_cast<std::size_t>(b)].data();
    for (int b = 0; b < p.nb; ++b) {
      nbody_block_step(srcs.data(), p.nb, bb, pos[cur][static_cast<std::size_t>(b)].data(),
                       vel[static_cast<std::size_t>(b)].data(),
                       pos[1 - cur][static_cast<std::size_t>(b)].data(), bb, p.dt, p.eps2);
    }
    cur = 1 - cur;
  }

  Result r;
  for (int b = 0; b < p.nb; ++b)
    for (float v : pos[cur][static_cast<std::size_t>(b)]) r.checksum += v;
  return r;
}

}  // namespace apps::nbody
