// OmpSs N-Body: one task per target block per step.  Each task reads every
// current-position block (the all-to-all that dominates this benchmark) and
// writes the next-position block; ping-pong buffers alternate per step.
#include "apps/nbody/nbody.hpp"

namespace apps::nbody {

Result run_ompss(ompss::Env& env, const Params& p) {
  const int bb = p.block_bodies();
  const std::size_t blk_bytes = p.block_bytes();
  std::vector<std::vector<float>> pos[2];
  std::vector<std::vector<float>> vel(static_cast<std::size_t>(p.nb),
                                      std::vector<float>(static_cast<std::size_t>(bb) * 4));
  for (auto& buf : pos)
    buf.assign(static_cast<std::size_t>(p.nb),
               std::vector<float>(static_cast<std::size_t>(bb) * 4));
  for (int b = 0; b < p.nb; ++b)
    init_bodies(pos[0][static_cast<std::size_t>(b)].data(),
                vel[static_cast<std::size_t>(b)].data(), b * bb, bb, p.seed);

  Result r;
  int cur = 0;
  env.run([&] {
    double t0 = env.clock().now();
    const int nb = p.nb;
    const float dt = p.dt, eps2 = p.eps2;
    for (int it = 0; it < p.iters; ++it) {
      for (int b = 0; b < nb; ++b) {
        auto builder = ompss::task().device(ompss::Device::kCuda);
        for (int s = 0; s < nb; ++s)
          builder.in(pos[cur][static_cast<std::size_t>(s)].data(), blk_bytes);
        builder.inout(vel[static_cast<std::size_t>(b)].data(), blk_bytes)
            .out(pos[1 - cur][static_cast<std::size_t>(b)].data(), blk_bytes)
            .flops(p.task_flops())
            .label("forces");
        builder.run([nb, bb, b, dt, eps2](ompss::Ctx& ctx) {
          std::vector<const float*> srcs(static_cast<std::size_t>(nb));
          for (int s = 0; s < nb; ++s)
            srcs[static_cast<std::size_t>(s)] = static_cast<const float*>(ctx.data(static_cast<std::size_t>(s)));
          auto* vel_blk = static_cast<float*>(ctx.data(static_cast<std::size_t>(nb)));
          auto* out_blk = static_cast<float*>(ctx.data(static_cast<std::size_t>(nb) + 1));
          nbody_block_step(srcs.data(), nb, bb, srcs[static_cast<std::size_t>(b)], vel_blk,
                           out_blk, bb, dt, eps2);
        });
      }
      cur = 1 - cur;
    }
    ompss::taskwait_noflush();
    r.seconds = env.clock().now() - t0;
    ompss::taskwait();  // flush for verification
  });

  r.gflops = p.total_flops() / r.seconds / 1e9;
  for (int b = 0; b < p.nb; ++b)
    for (float v : pos[cur][static_cast<std::size_t>(b)]) r.checksum += v;
  return r;
}

}  // namespace apps::nbody
