// N-Body simulation (paper §IV-A2): all-pairs gravitational interaction of
// 20000 bodies, 10 time steps.  After every step the updated positions must
// reach every GPU (all-to-all), which is what limits overlap on the cluster
// (Fig. 13) and creates device-memory pressure on the multi-GPU node
// (Fig. 8).
//
// Bodies are blocked; each step spawns one task per target block reading
// every source block of the current positions and producing the next
// positions (ping-pong buffers) plus updated velocities.
//
// Versions: serial.cpp, cuda.cpp, mpicuda.cpp, ompss.cpp (Table I).
#pragma once

#include <cstddef>
#include <vector>

#include "apps/platform.hpp"
#include "minimpi/minimpi.hpp"
#include "ompss/ompss.hpp"

namespace apps::nbody {

/// xyzm layout: 4 floats per body (position + mass); velocities separate.
struct Params {
  int n_phys = 1024;          ///< physical bodies
  double n_logical = 20000.0; ///< logical bodies (paper)
  int nb = 8;                 ///< blocks
  int iters = 10;
  float dt = 0.01f;
  float eps2 = 0.1f;
  unsigned seed = 7;

  int block_bodies() const { return n_phys / nb; }
  std::size_t block_bytes() const {
    return static_cast<std::size_t>(block_bodies()) * 4 * sizeof(float);
  }
  double byte_scale() const { return n_logical / n_phys; }
  double logical_block() const { return n_logical / nb; }
  /// ~20 flops per pairwise interaction, per target block per step.
  double task_flops() const { return 20.0 * logical_block() * n_logical; }
  double total_flops() const { return 20.0 * n_logical * n_logical * iters; }
};

/// Computes one step for `tn` target bodies: accumulate accelerations over
/// the `nb` source blocks (in ascending order, so every version produces
/// bit-identical sums), then integrate velocities and positions.
void nbody_block_step(const float* const* pos_blocks, int nb, int block_bodies,
                      const float* pos_targets, float* vel_targets, float* pos_out, int tn,
                      float dt, float eps2);

/// Deterministic initial conditions for bodies [first, first+count).
void init_bodies(float* pos, float* vel, int first, int count, unsigned seed);

struct Result {
  double seconds = 0;
  double gflops = 0;
  double checksum = 0;  ///< sum of final positions
};

Result run_serial(const Params& p);
Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu);
Result run_ompss(ompss::Env& env, const Params& p);
Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu);

}  // namespace apps::nbody
