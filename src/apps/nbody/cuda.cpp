// Single-GPU CUDA N-Body: explicit buffers, ping-pong on the device,
// copy-back at the end.
#include "apps/nbody/nbody.hpp"

namespace apps::nbody {

Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu) {
  simcuda::Platform platform(clock, {gpu});
  simcuda::Device& dev = platform.device(0);

  const int bb = p.block_bodies();
  const std::size_t blk_bytes = p.block_bytes();
  const std::size_t total_bytes = blk_bytes * static_cast<std::size_t>(p.nb);
  std::vector<float> pos(static_cast<std::size_t>(p.n_phys) * 4);
  std::vector<float> vel(static_cast<std::size_t>(p.n_phys) * 4);
  for (int b = 0; b < p.nb; ++b)
    init_bodies(&pos[static_cast<std::size_t>(b * bb) * 4], &vel[static_cast<std::size_t>(b * bb) * 4],
                b * bb, bb, p.seed);

  Result r;
  vt::AttachGuard guard(clock, "cuda-main");

  auto* dpos0 = static_cast<float*>(dev.malloc(total_bytes));
  auto* dpos1 = static_cast<float*>(dev.malloc(total_bytes));
  auto* dvel = static_cast<float*>(dev.malloc(total_bytes));
  if (!dpos0 || !dpos1 || !dvel) throw std::runtime_error("nbody/cuda: GPU out of memory");

  double t0 = clock.now();
  dev.memcpy_h2d(dpos0, pos.data(), total_bytes);
  dev.memcpy_h2d(dvel, vel.data(), total_bytes);

  float* cur = dpos0;
  float* nxt = dpos1;
  const int nb = p.nb;
  const float dt = p.dt, eps2 = p.eps2;
  for (int it = 0; it < p.iters; ++it) {
    for (int b = 0; b < nb; ++b) {
      float* cur_cap = cur;
      float* nxt_cap = nxt;
      float* vel_cap = dvel;
      dev.launch_kernel(dev.default_stream(), {p.task_flops(), 0.0},
                        [cur_cap, nxt_cap, vel_cap, nb, bb, b, dt, eps2] {
                          std::vector<const float*> srcs(static_cast<std::size_t>(nb));
                          for (int s = 0; s < nb; ++s)
                            srcs[static_cast<std::size_t>(s)] =
                                cur_cap + static_cast<std::size_t>(s * bb) * 4;
                          nbody_block_step(srcs.data(), nb, bb,
                                           cur_cap + static_cast<std::size_t>(b * bb) * 4,
                                           vel_cap + static_cast<std::size_t>(b * bb) * 4,
                                           nxt_cap + static_cast<std::size_t>(b * bb) * 4, bb, dt,
                                           eps2);
                        });
    }
    dev.synchronize();
    std::swap(cur, nxt);
  }
  dev.memcpy_d2h(pos.data(), cur, total_bytes);
  double t1 = clock.now();

  dev.free(dpos0);
  dev.free(dpos1);
  dev.free(dvel);

  r.seconds = t1 - t0;
  r.gflops = p.total_flops() / r.seconds / 1e9;
  for (float v : pos) r.checksum += v;
  return r;
}

}  // namespace apps::nbody
