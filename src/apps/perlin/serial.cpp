// Serial Perlin filter: the reference (and Table I's LoC baseline).
#include "apps/perlin/perlin.hpp"

namespace apps::perlin {

Result run_serial(const Params& p) {
  const int dim = p.dim_phys;
  std::vector<std::uint32_t> image(static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim));

  for (int step = 0; step < p.steps; ++step) {
    for (int b = 0; b < p.bands; ++b) {
      int row0 = b * p.rows_per_band();
      perlin_band(&image[static_cast<std::size_t>(row0) * static_cast<std::size_t>(dim)], dim,
                  row0, p.rows_per_band(), step);
    }
  }

  Result r;
  for (std::uint32_t v : image) r.checksum += static_cast<double>(v & 0xFFu);
  return r;
}

}  // namespace apps::perlin
