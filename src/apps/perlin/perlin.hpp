// Perlin-noise image filter (paper §IV-A2): generates gradient noise over a
// 1024x1024 image, applied `steps` times.  Two usage patterns matter:
//   * Flush   — the image returns to host memory after every step (as if a
//               different filter consumed it there).
//   * NoFlush — the image stays on the GPUs across steps (a GPU-resident
//               filter pipeline).
// Tasks are horizontal bands of rows.
//
// Versions: serial.cpp, cuda.cpp, mpicuda.cpp, ompss.cpp (Table I).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "apps/platform.hpp"
#include "minimpi/minimpi.hpp"
#include "ompss/ompss.hpp"

namespace apps::perlin {

struct Params {
  int dim_phys = 512;        ///< physical image edge (pixels)
  double dim_logical = 1024; ///< logical image edge (paper: 1024)
  int bands = 16;            ///< row-band tasks per step
  int steps = 10;
  bool flush = true;         ///< Flush vs NoFlush variant
  /// Logical per-pixel work: a production multi-octave turbulence filter
  /// runs several noise evaluations with fades and blends per pixel.
  double flops_per_pixel = 2000.0;

  double byte_scale() const {
    double r = dim_logical / dim_phys;
    return r * r;
  }
  int rows_per_band() const { return dim_phys / bands; }
  std::size_t band_pixels() const {
    return static_cast<std::size_t>(rows_per_band()) * static_cast<std::size_t>(dim_phys);
  }
  std::size_t band_bytes() const { return band_pixels() * sizeof(std::uint32_t); }
  /// Logical flops per band per step (the paper-scale kernel cost).
  double band_flops() const {
    return flops_per_pixel * dim_logical * dim_logical / bands;
  }
  double total_mpixels() const { return dim_logical * dim_logical * steps / 1e6; }
};

/// Computes one band of the filter for time-step `step` into `out`
/// (row-major ARGB pixels; `row0` is the band's first image row).
void perlin_band(std::uint32_t* out, int dim, int row0, int rows, int step);

struct Result {
  double seconds = 0;
  double mpixels_per_s = 0;  ///< logical Mpixels/s (the paper's Fig. 7 metric)
  double checksum = 0;
};

Result run_serial(const Params& p);
Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu);
Result run_ompss(ompss::Env& env, const Params& p);
Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu);

}  // namespace apps::perlin
