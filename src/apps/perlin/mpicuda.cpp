// MPI+CUDA Perlin: bands statically distributed across ranks, each with its
// own GPU.  The Flush variant gathers the whole image to rank 0 after every
// step (the host-consumer pattern); NoFlush gathers once at the end.
#include "apps/perlin/perlin.hpp"

#include <cstring>

namespace apps::perlin {

Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu) {
  simnet::Network net(clock, ranks, link);
  minimpi::World world(net);
  simcuda::Platform platform(clock, std::vector<simcuda::DeviceProps>(
                                        static_cast<std::size_t>(ranks), gpu));

  const int dim = p.dim_phys;
  if (p.bands % ranks != 0)
    throw std::invalid_argument("perlin/mpicuda: bands must divide the rank count");
  const int bands_per_rank = p.bands / ranks;
  const int rows = p.rows_per_band();
  const std::size_t band_bytes = p.band_bytes();

  Result r;
  std::vector<double> rank_seconds(static_cast<std::size_t>(ranks), 0.0);
  std::vector<std::uint32_t> image(static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim));

  std::vector<vt::Thread> rank_threads;
  std::optional<vt::Hold> hold;
  hold.emplace(clock);
  for (int rank = 0; rank < ranks; ++rank) {
    rank_threads.emplace_back(clock, "mpirank" + std::to_string(rank), [&, rank] {
      minimpi::Comm comm = world.comm(rank);
      simcuda::Device& dev = platform.device(rank);

      const int my_first_band = rank * bands_per_rank;
      std::vector<std::uint32_t> local(static_cast<std::size_t>(bands_per_rank) *
                                       p.band_pixels());
      auto* dlocal = static_cast<std::uint32_t*>(dev.malloc(local.size() * sizeof(std::uint32_t)));
      if (dlocal == nullptr) throw std::runtime_error("perlin/mpicuda: GPU out of memory");

      auto gather_to_root = [&] {
        dev.memcpy_d2h(local.data(), dlocal, local.size() * sizeof(std::uint32_t));
        if (rank == 0) {
          std::memcpy(image.data(), local.data(), local.size() * sizeof(std::uint32_t));
          for (int src = 1; src < ranks; ++src) {
            std::uint32_t* dst = &image[static_cast<std::size_t>(src) * bands_per_rank *
                                        p.band_pixels()];
            comm.recv(src, 7, dst, local.size() * sizeof(std::uint32_t));
          }
        } else {
          comm.send(0, 7, local.data(), local.size() * sizeof(std::uint32_t));
        }
      };

      comm.barrier();
      double t0 = clock.now();
      for (int step = 0; step < p.steps; ++step) {
        for (int lb = 0; lb < bands_per_rank; ++lb) {
          int row0 = (my_first_band + lb) * rows;
          std::uint32_t* band = dlocal + static_cast<std::size_t>(lb) * p.band_pixels();
          dev.launch_kernel(dev.default_stream(), {p.band_flops(), 0.0},
                            [band, dim, row0, rows, step] {
                              perlin_band(band, dim, row0, rows, step);
                            });
        }
        dev.synchronize();
        if (p.flush) gather_to_root();
      }
      if (!p.flush) gather_to_root();
      comm.barrier();
      rank_seconds[static_cast<std::size_t>(rank)] = clock.now() - t0;
      dev.free(dlocal);
      (void)band_bytes;
    });
  }
  hold.reset();
  for (auto& t : rank_threads) t.join();

  r.seconds = *std::max_element(rank_seconds.begin(), rank_seconds.end());
  r.mpixels_per_s = p.total_mpixels() / r.seconds;
  for (std::uint32_t v : image) r.checksum += static_cast<double>(v & 0xFFu);
  return r;
}

}  // namespace apps::perlin
