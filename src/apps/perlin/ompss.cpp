// OmpSs Perlin: one task per row band per step.  The Flush variant ends each
// step with a flushing taskwait (data back to host memory); NoFlush keeps the
// bands on the GPUs and only flushes once at the end.
#include "apps/perlin/perlin.hpp"

namespace apps::perlin {

Result run_ompss(ompss::Env& env, const Params& p) {
  const int dim = p.dim_phys;
  std::vector<std::uint32_t> image(static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim));

  Result r;
  env.run([&] {
    double t0 = env.clock().now();
    const int rows = p.rows_per_band();
    for (int step = 0; step < p.steps; ++step) {
      for (int b = 0; b < p.bands; ++b) {
        int row0 = b * rows;
        std::uint32_t* band =
            &image[static_cast<std::size_t>(row0) * static_cast<std::size_t>(dim)];
        ompss::task()
            .device(ompss::Device::kCuda)
            .out(band, p.band_bytes())
            .flops(p.band_flops())
            .label("perlin")
            .run([dim, row0, rows, step](ompss::Ctx& ctx) {
              perlin_band(static_cast<std::uint32_t*>(ctx.data(0)), dim, row0, rows, step);
            });
      }
      if (p.flush) {
        ompss::taskwait();  // image must be in host memory after each step
      } else {
        ompss::taskwait_noflush();
      }
    }
    if (!p.flush) ompss::taskwait();
    r.seconds = env.clock().now() - t0;
  });

  r.mpixels_per_s = p.total_mpixels() / r.seconds;
  for (std::uint32_t v : image) r.checksum += static_cast<double>(v & 0xFFu);
  return r;
}

}  // namespace apps::perlin
