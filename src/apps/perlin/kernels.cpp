// Classic 2D gradient-noise kernel (the per-pixel work every version runs).
#include "apps/perlin/perlin.hpp"

#include <cmath>

namespace apps::perlin {

namespace {

inline std::uint32_t hash2(int x, int y, int step) {
  std::uint32_t h = static_cast<std::uint32_t>(x) * 374761393u +
                    static_cast<std::uint32_t>(y) * 668265263u +
                    static_cast<std::uint32_t>(step) * 2246822519u;
  h = (h ^ (h >> 13)) * 1274126177u;
  return h ^ (h >> 16);
}

inline float grad_dot(std::uint32_t h, float fx, float fy) {
  // Eight gradient directions.
  switch (h & 7u) {
    case 0: return fx + fy;
    case 1: return fx - fy;
    case 2: return -fx + fy;
    case 3: return -fx - fy;
    case 4: return fx;
    case 5: return -fx;
    case 6: return fy;
    default: return -fy;
  }
}

inline float fade(float t) { return t * t * t * (t * (t * 6 - 15) + 10); }

}  // namespace

void perlin_band(std::uint32_t* out, int dim, int row0, int rows, int step) {
  const float cell = 16.0f;  // noise lattice period in pixels
  for (int r = 0; r < rows; ++r) {
    int y = row0 + r;
    float gy = static_cast<float>(y) / cell;
    int y0 = static_cast<int>(gy);
    float fy = gy - static_cast<float>(y0);
    float wy = fade(fy);
    for (int x = 0; x < dim; ++x) {
      float gx = static_cast<float>(x) / cell;
      int x0 = static_cast<int>(gx);
      float fx = gx - static_cast<float>(x0);
      float wx = fade(fx);
      float n00 = grad_dot(hash2(x0, y0, step), fx, fy);
      float n10 = grad_dot(hash2(x0 + 1, y0, step), fx - 1, fy);
      float n01 = grad_dot(hash2(x0, y0 + 1, step), fx, fy - 1);
      float n11 = grad_dot(hash2(x0 + 1, y0 + 1, step), fx - 1, fy - 1);
      float nx0 = n00 + wx * (n10 - n00);
      float nx1 = n01 + wx * (n11 - n01);
      float v = nx0 + wy * (nx1 - nx0);  // in roughly [-1, 1]
      auto level = static_cast<std::uint32_t>((v * 0.5f + 0.5f) * 255.0f) & 0xFFu;
      out[static_cast<std::size_t>(r) * static_cast<std::size_t>(dim) +
          static_cast<std::size_t>(x)] = 0xFF000000u | (level << 16) | (level << 8) | level;
    }
  }
}

}  // namespace apps::perlin
