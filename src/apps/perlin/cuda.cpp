// Single-GPU CUDA Perlin: explicit buffers and launches; in the Flush
// variant the image is copied back to the host after every step.
#include "apps/perlin/perlin.hpp"

namespace apps::perlin {

Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu) {
  simcuda::Platform platform(clock, {gpu});
  simcuda::Device& dev = platform.device(0);

  const int dim = p.dim_phys;
  const std::size_t bytes =
      static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim) * sizeof(std::uint32_t);
  std::vector<std::uint32_t> image(static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim));

  Result r;
  vt::AttachGuard guard(clock, "cuda-main");

  auto* dimg = static_cast<std::uint32_t*>(dev.malloc(bytes));
  if (dimg == nullptr) throw std::runtime_error("perlin/cuda: GPU out of memory");

  double t0 = clock.now();
  const int rows = p.rows_per_band();
  for (int step = 0; step < p.steps; ++step) {
    for (int b = 0; b < p.bands; ++b) {
      int row0 = b * rows;
      std::uint32_t* band = dimg + static_cast<std::size_t>(row0) * static_cast<std::size_t>(dim);
      dev.launch_kernel(dev.default_stream(), {p.band_flops(), 0.0},
                        [band, dim, row0, rows, step] {
                          perlin_band(band, dim, row0, rows, step);
                        });
    }
    dev.synchronize();
    if (p.flush) dev.memcpy_d2h(image.data(), dimg, bytes);
  }
  if (!p.flush) dev.memcpy_d2h(image.data(), dimg, bytes);
  double t1 = clock.now();
  dev.free(dimg);

  r.seconds = t1 - t0;
  r.mpixels_per_s = p.total_mpixels() / r.seconds;
  for (std::uint32_t v : image) r.checksum += static_cast<double>(v & 0xFFu);
  return r;
}

}  // namespace apps::perlin
