// Platform presets encoding the paper's two evaluation environments
// (§IV-A1), with the logical/physical byte-scale split applied.
//
// Applications compute on physically scaled-down arrays but charge the cost
// model with the paper's logical sizes.  Rather than tagging every transfer,
// the scaling is folded into the platform description: bandwidths and
// capacities are divided by `byte_scale` (the logical/physical byte ratio),
// so a physical transfer of n bytes costs exactly what the logical transfer
// of n*byte_scale bytes would.  Kernel flops are always given logically by
// the apps, so compute rates stay unscaled.
#pragma once

#include "nanos/cluster.hpp"
#include "nanos/runtime.hpp"
#include "simcuda/simcuda.hpp"
#include "simnet/simnet.hpp"

namespace apps {

/// Tesla S2050 (the 4-GPU node): 1.03 TFLOPS SP, 2.62 GB, PCIe ~6 GB/s.
simcuda::DeviceProps tesla_s2050(double byte_scale);

/// GTX 480 (one per cluster node): 1.35 TFLOPS SP, 1.5 GB, 177.4 GB/s.
simcuda::DeviceProps gtx480(double byte_scale);

/// QDR InfiniBand as the paper reports it: 8 Gbit/s peak, ~2 us latency.
simnet::LinkProps qdr_infiniband(double byte_scale);

/// The multi-GPU evaluation node: 2x Xeon E5440 (8 cores) + `gpus` S2050s.
nanos::RuntimeConfig multi_gpu_node(int gpus, double byte_scale);

/// The GPU cluster: per node 2x Xeon E5620 (8 cores) + 1 GTX480, QDR IB.
nanos::ClusterConfig gpu_cluster(int nodes, double byte_scale);

}  // namespace apps
