#include "apps/platform.hpp"

namespace apps {

simcuda::DeviceProps tesla_s2050(double byte_scale) {
  simcuda::DeviceProps p;
  p.name = "Tesla S2050 (sim)";
  p.gflops = 1030.0;
  p.mem_bandwidth = 148.0e9;
  p.pcie_bandwidth = 6.0e9 / byte_scale;
  p.memory_bytes = static_cast<std::size_t>(2.62e9 / byte_scale);
  p.kernel_launch_overhead = 8.0e-6;
  p.copy_overhead = 4.0e-6;
  return p;
}

simcuda::DeviceProps gtx480(double byte_scale) {
  simcuda::DeviceProps p;
  p.name = "GTX 480 (sim)";
  p.gflops = 1350.0;
  p.mem_bandwidth = 177.4e9;
  p.pcie_bandwidth = 6.0e9 / byte_scale;
  p.memory_bytes = static_cast<std::size_t>(1.5e9 / byte_scale);
  p.kernel_launch_overhead = 8.0e-6;
  p.copy_overhead = 4.0e-6;
  return p;
}

simnet::LinkProps qdr_infiniband(double byte_scale) {
  simnet::LinkProps p;
  p.bandwidth = 1.0e9 / byte_scale;  // the paper's "8 Gbits/s" peak
  p.latency = 2.0e-6;
  p.am_overhead = 3.0e-6;
  return p;
}

nanos::RuntimeConfig multi_gpu_node(int gpus, double byte_scale) {
  nanos::RuntimeConfig cfg;
  cfg.smp_workers = 8;  // 2x Xeon E5440
  cfg.smp_gflops = 9.0;
  cfg.host_memcpy_bandwidth = 8.0e9 / byte_scale;
  cfg.gpus.assign(static_cast<std::size_t>(gpus), tesla_s2050(byte_scale));
  return cfg;
}

nanos::ClusterConfig gpu_cluster(int nodes, double byte_scale) {
  nanos::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.link = qdr_infiniband(byte_scale);
  cfg.node.smp_workers = 8;  // 2x Xeon E5620
  cfg.node.smp_gflops = 10.0;
  cfg.node.host_memcpy_bandwidth = 8.0e9 / byte_scale;
  cfg.node.gpus.assign(1, gtx480(byte_scale));
  return cfg;
}

}  // namespace apps
