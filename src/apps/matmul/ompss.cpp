// OmpSs version — the paper's Fig. 1 expressed through the ompss:: API (the
// code Mercurium would generate from the pragmas).  One task per tile-gemm
// with input/input/inout clauses; the runtime moves the tiles.  The same
// code runs on one GPU, a 4-GPU node or a GPU cluster.
#include "apps/matmul/matmul.hpp"

namespace apps::matmul {

Result run_ompss(ompss::Env& env, const Params& p, InitMode init) {
  BlockMatrix a(p.nb, p.bs_phys), b(p.nb, p.bs_phys), c(p.nb, p.bs_phys);

  const std::size_t bb = p.block_bytes();
  const std::size_t bs = p.bs_phys;
  const int nb = p.nb;

  Result r;
  env.run([&] {
    // --- initialization (Fig. 9's seq / smp / gpu modes) -------------------
    auto spawn_init = [&](BlockMatrix& m, unsigned seed, ompss::Device dev) {
      for (int i = 0; i < nb; ++i) {
        for (int j = 0; j < nb; ++j) {
          float* blk = m.block(i, j);
          unsigned s = seed + static_cast<unsigned>(i * nb + j);
          ompss::task()
              .device(dev)
              .out(blk, bb)
              .flops(p.init_flops())
              .label("init")
              .run([blk, bs, s](ompss::Ctx& ctx) {
                init_block(static_cast<float*>(ctx.data(0)), bs, s);
                (void)blk;
              });
        }
      }
    };
    switch (init) {
      case InitMode::kSeq:
        a.fill(p.seed);
        b.fill(p.seed + 1000);
        c.zero();
        break;
      case InitMode::kSmp:
      case InitMode::kGpu: {
        ompss::Device dev =
            init == InitMode::kSmp ? ompss::Device::kSmp : ompss::Device::kCuda;
        spawn_init(a, p.seed, dev);
        spawn_init(b, p.seed + 1000, dev);
        break;
      }
    }
    // C must start at zero: for task-based init, overwrite with a zero task.
    if (init != InitMode::kSeq) {
      for (int i = 0; i < nb; ++i) {
        for (int j = 0; j < nb; ++j) {
          float* blk = c.block(i, j);
          ompss::Device dev =
              init == InitMode::kSmp ? ompss::Device::kSmp : ompss::Device::kCuda;
          ompss::task().device(dev).out(blk, bb).flops(p.init_flops()).label("zero").run(
              [bs](ompss::Ctx& ctx) {
                auto* f = static_cast<float*>(ctx.data(0));
                for (std::size_t x = 0; x < bs * bs; ++x) f[x] = 0.0f;
              });
        }
      }
    }
    ompss::taskwait_noflush();

    // --- the multiply (paper Fig. 1) ---------------------------------------
    double t0 = env.clock().now();
    for (int i = 0; i < nb; ++i) {
      for (int j = 0; j < nb; ++j) {
        for (int k = 0; k < nb; ++k) {
          const float* ta = a.block(i, k);
          const float* tb = b.block(k, j);
          float* tc = c.block(i, j);
          ompss::task()
              .device(ompss::Device::kCuda)
              .in(ta, bb)
              .in(tb, bb)
              .inout(tc, bb)
              .flops(p.task_flops())
              .label("sgemm")
              .run([bs](ompss::Ctx& ctx) {
                sgemm_block(static_cast<const float*>(ctx.data(0)),
                            static_cast<const float*>(ctx.data(1)),
                            static_cast<float*>(ctx.data(2)), bs);
              });
        }
      }
    }
    ompss::taskwait_noflush();
    r.seconds = env.clock().now() - t0;

    // Bring results home for verification (not part of the measured phase).
    ompss::taskwait();
  });

  r.gflops = p.total_flops() / r.seconds / 1e9;
  r.checksum = c.checksum();
  return r;
}

}  // namespace apps::matmul
