// Serial blocked matmul: the reference every other version is checked
// against, and the LoC baseline of Table I.
#include "apps/matmul/matmul.hpp"

namespace apps::matmul {

Result run_serial(const Params& p) {
  BlockMatrix a(p.nb, p.bs_phys), b(p.nb, p.bs_phys), c(p.nb, p.bs_phys);
  a.fill(p.seed);
  b.fill(p.seed + 1000);
  c.zero();

  for (int i = 0; i < p.nb; ++i)
    for (int j = 0; j < p.nb; ++j)
      for (int k = 0; k < p.nb; ++k)
        sgemm_block(a.block(i, k), b.block(k, j), c.block(i, j), p.bs_phys);

  Result r;
  r.checksum = c.checksum();
  return r;
}

}  // namespace apps::matmul
