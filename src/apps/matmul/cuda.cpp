// Single-GPU CUDA version: everything the OmpSs runtime automates is spelled
// out — device allocation, host-to-device copies per tile, kernel launches,
// synchronization, copy-back.
#include "apps/matmul/matmul.hpp"

namespace apps::matmul {

Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu) {
  simcuda::Platform platform(clock, {gpu});
  simcuda::Device& dev = platform.device(0);

  BlockMatrix a(p.nb, p.bs_phys), b(p.nb, p.bs_phys), c(p.nb, p.bs_phys);
  a.fill(p.seed);
  b.fill(p.seed + 1000);
  c.zero();

  const std::size_t bb = p.block_bytes();
  const int nb = p.nb;
  const std::size_t bs = p.bs_phys;

  Result r;
  vt::AttachGuard guard(clock, "cuda-main");

  // Device mirrors of the three matrices (tile-granular allocations).
  std::vector<float*> da(static_cast<std::size_t>(nb * nb));
  std::vector<float*> db(static_cast<std::size_t>(nb * nb));
  std::vector<float*> dc(static_cast<std::size_t>(nb * nb));
  auto at = [nb](int i, int j) { return static_cast<std::size_t>(i * nb + j); };
  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      da[at(i, j)] = static_cast<float*>(dev.malloc(bb));
      db[at(i, j)] = static_cast<float*>(dev.malloc(bb));
      dc[at(i, j)] = static_cast<float*>(dev.malloc(bb));
      if (da[at(i, j)] == nullptr || db[at(i, j)] == nullptr || dc[at(i, j)] == nullptr)
        throw std::runtime_error("matmul/cuda: GPU out of memory");
    }
  }

  double t0 = clock.now();
  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      dev.memcpy_h2d(da[at(i, j)], a.block(i, j), bb);
      dev.memcpy_h2d(db[at(i, j)], b.block(i, j), bb);
      dev.memcpy_h2d(dc[at(i, j)], c.block(i, j), bb);
    }
  }
  simcuda::KernelCost cost{p.task_flops(), 0.0};
  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      for (int k = 0; k < nb; ++k) {
        const float* ta = da[at(i, k)];
        const float* tb = db[at(k, j)];
        float* tc = dc[at(i, j)];
        dev.launch_kernel(dev.default_stream(), cost,
                          [ta, tb, tc, bs] { sgemm_block(ta, tb, tc, bs); });
      }
    }
  }
  dev.synchronize();
  for (int i = 0; i < nb; ++i)
    for (int j = 0; j < nb; ++j) dev.memcpy_d2h(c.block(i, j), dc[at(i, j)], bb);
  double t1 = clock.now();

  for (int i = 0; i < nb; ++i) {
    for (int j = 0; j < nb; ++j) {
      dev.free(da[at(i, j)]);
      dev.free(db[at(i, j)]);
      dev.free(dc[at(i, j)]);
    }
  }

  r.seconds = t1 - t0;
  r.gflops = p.total_flops() / r.seconds / 1e9;
  r.checksum = c.checksum();
  return r;
}

}  // namespace apps::matmul
