// Blocked single-precision matrix multiply — the paper's first benchmark.
//
// The matrix is stored in BSxBS tiles (paper: 12288x12288 floats in
// 1024x1024 tiles, computed with CUBLAS sgemm).  Four versions live in this
// directory, mirroring the paper's productivity comparison (Table I):
//   serial.cpp   — plain blocked loop nest.
//   cuda.cpp     — single GPU, explicit copies + kernel launches.
//   mpicuda.cpp  — SUMMA over minimpi ranks, one GPU per rank (paper [15]).
//   ompss.cpp    — the Fig. 1 code: one task per tile-gemm with
//                  input/input/inout clauses; runs unchanged on one GPU,
//                  multiple GPUs, or a cluster.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "apps/platform.hpp"
#include "minimpi/minimpi.hpp"
#include "ompss/ompss.hpp"

namespace apps::matmul {

struct Params {
  int nb = 8;                  ///< tiles per dimension
  std::size_t bs_phys = 64;    ///< physical tile edge (floats)
  double bs_logical = 1536.0;  ///< logical tile edge (paper: 12288/nb)
  unsigned seed = 42;

  double byte_scale() const {
    double r = bs_logical / static_cast<double>(bs_phys);
    return r * r;
  }
  double logical_n() const { return nb * bs_logical; }
  double total_flops() const { return 2.0 * logical_n() * logical_n() * logical_n(); }
  double task_flops() const { return 2.0 * bs_logical * bs_logical * bs_logical; }
  double task_bytes() const { return 3.0 * bs_logical * bs_logical * sizeof(float); }
  std::size_t block_bytes() const { return bs_phys * bs_phys * sizeof(float); }
  double init_flops() const { return 2.0 * bs_logical * bs_logical; }
};

/// Tile-major matrix: each BSxBS tile is contiguous (a coherence region).
class BlockMatrix {
public:
  BlockMatrix(int nb, std::size_t bs);

  float* block(int i, int j);
  const float* block(int i, int j) const;
  std::size_t block_bytes() const { return bs_ * bs_ * sizeof(float); }
  int nb() const { return nb_; }
  std::size_t bs() const { return bs_; }

  void fill(unsigned seed);
  void zero();
  double checksum() const;

private:
  int nb_;
  std::size_t bs_;
  std::vector<std::vector<float>> blocks_;
};

// Shared kernels (the stand-in for CUBLAS sgemm; all versions link these).
void sgemm_block(const float* a, const float* b, float* c, std::size_t bs);
void init_block(float* blk, std::size_t bs, unsigned seed);

struct Result {
  double seconds = 0;   ///< virtual seconds of the measured compute phase
  double gflops = 0;    ///< logical GFLOP/s
  double checksum = 0;  ///< sum over C for verification
};

/// Reference implementation (host, no runtime).
Result run_serial(const Params& p);

/// Single-GPU CUDA version: explicit allocation, copies and launches.
Result run_cuda(const Params& p, vt::Clock& clock, const simcuda::DeviceProps& gpu);

enum class InitMode { kSeq, kSmp, kGpu };

/// OmpSs version (the paper's Fig. 1).  The same code drives one GPU, a
/// multi-GPU node or a GPU cluster depending on how `env` was configured.
Result run_ompss(ompss::Env& env, const Params& p, InitMode init = InitMode::kSeq);

/// MPI+CUDA SUMMA baseline: `ranks` processes in a 2D grid, one GPU each.
Result run_mpicuda(const Params& p, vt::Clock& clock, int ranks,
                   const simnet::LinkProps& link, const simcuda::DeviceProps& gpu);

}  // namespace apps::matmul
