// Shared tile kernels — the stand-in for the CUBLAS calls the paper uses.
#include "apps/matmul/matmul.hpp"

namespace apps::matmul {

void sgemm_block(const float* a, const float* b, float* c, std::size_t bs) {
  // C += A * B, row-major tiles; ikj order for stride-1 inner loops.
  for (std::size_t i = 0; i < bs; ++i) {
    for (std::size_t k = 0; k < bs; ++k) {
      const float aik = a[i * bs + k];
      const float* brow = &b[k * bs];
      float* crow = &c[i * bs];
      for (std::size_t j = 0; j < bs; ++j) crow[j] += aik * brow[j];
    }
  }
}

void init_block(float* blk, std::size_t bs, unsigned seed) {
  // Deterministic per-element pseudo-random fill (reproducible across
  // versions regardless of which device initializes the tile).
  unsigned state = seed * 2654435761u + 97u;
  for (std::size_t i = 0; i < bs * bs; ++i) {
    state = state * 1664525u + 1013904223u;
    blk[i] = static_cast<float>((state >> 8) & 0xFFFF) / 65536.0f - 0.5f;
  }
}

BlockMatrix::BlockMatrix(int nb, std::size_t bs) : nb_(nb), bs_(bs) {
  blocks_.resize(static_cast<std::size_t>(nb) * static_cast<std::size_t>(nb));
  for (auto& blk : blocks_) blk.assign(bs * bs, 0.0f);
}

float* BlockMatrix::block(int i, int j) {
  return blocks_[static_cast<std::size_t>(i) * static_cast<std::size_t>(nb_) +
                 static_cast<std::size_t>(j)]
      .data();
}

const float* BlockMatrix::block(int i, int j) const {
  return blocks_[static_cast<std::size_t>(i) * static_cast<std::size_t>(nb_) +
                 static_cast<std::size_t>(j)]
      .data();
}

void BlockMatrix::fill(unsigned seed) {
  for (int i = 0; i < nb_; ++i)
    for (int j = 0; j < nb_; ++j)
      init_block(block(i, j), bs_, seed + static_cast<unsigned>(i * nb_ + j));
}

void BlockMatrix::zero() {
  for (auto& blk : blocks_) std::fill(blk.begin(), blk.end(), 0.0f);
}

double BlockMatrix::checksum() const {
  double sum = 0;
  for (const auto& blk : blocks_)
    for (float v : blk) sum += v;
  return sum;
}

}  // namespace apps::matmul
